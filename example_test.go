package pslocal_test

// Testable examples for the godoc of the public facade. Deterministic
// seeds make the outputs stable.

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"pslocal"
)

// ExampleNewSolver shows the context-first entry point: one Solver
// configured once carries the palette, oracle, worker pool and seed
// through every call, and solves both substrates (hypergraph reduction
// and graph MaxIS) through the same handle.
func ExampleNewSolver() {
	rng := rand.New(rand.NewSource(7))
	h, _, err := pslocal.PlantedCF(60, 24, 3, 3, 5, rng)
	if err != nil {
		fmt.Println("generator:", err)
		return
	}
	sv := pslocal.NewSolver(
		pslocal.WithK(3),
		pslocal.WithOracle("greedy-mindeg"),
		pslocal.WithWorkers(0), // GOMAXPROCS, the CLI -workers convention
	)
	ctx := context.Background()
	res, err := sv.Solve(ctx, h)
	if err != nil {
		fmt.Println("solve:", err)
		return
	}
	fmt.Println("phases:", len(res.Phases))
	fmt.Println("verified:", pslocal.VerifyReduction(h, res) == nil)

	is, err := sv.MaxIS(ctx, pslocal.Grid(4, 5))
	if err != nil {
		fmt.Println("maxis:", err)
		return
	}
	fmt.Println("|I|:", len(is.Set))
	// Output:
	// phases: 1
	// verified: true
	// |I|: 10
}

// ExampleSolver_SolveReader feeds a serialized instance straight into the
// Solver: the body is cached by content hash, so resubmitting the same
// bytes skips parsing (the mechanism behind cmd/cfserve's hot-instance
// path).
func ExampleSolver_SolveReader() {
	const doc = `{"type":"hypergraph","n":4,"edges":[[0,1,2],[1,2,3]]}`
	sv := pslocal.NewSolver(pslocal.WithK(2), pslocal.WithCache(16))
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		res, inst, err := sv.SolveReader(ctx, strings.NewReader(doc), pslocal.FormatAuto)
		if err != nil {
			fmt.Println("solve:", err)
			return
		}
		fmt.Printf("run %d: cache hit %v, colours %d\n", i+1, inst.CacheHit, res.TotalColors)
	}
	// Output:
	// run 1: cache hit false, colours 2
	// run 2: cache hit true, colours 2
}

// ExampleReduce runs the Theorem 1.1 reduction on a planted instance and
// verifies the result.
func ExampleReduce() {
	rng := rand.New(rand.NewSource(7))
	h, _, err := pslocal.PlantedCF(60, 24, 3, 3, 5, rng)
	if err != nil {
		fmt.Println("generator:", err)
		return
	}
	res, err := pslocal.Reduce(h, pslocal.ReduceOptions{K: 3, Mode: pslocal.ModeImplicitFirstFit})
	if err != nil {
		fmt.Println("reduce:", err)
		return
	}
	fmt.Println("phases:", len(res.Phases))
	fmt.Println("colours:", res.TotalColors)
	fmt.Println("verified:", pslocal.VerifyReduction(h, res) == nil)
	// Output:
	// phases: 1
	// colours: 3
	// verified: true
}

// ExampleColoringToIS demonstrates the Lemma 2.1(a) correspondence: a
// conflict-free colouring induces one conflict-graph triple per edge.
func ExampleColoringToIS() {
	h, err := pslocal.NewHypergraph(4, [][]int32{{0, 1, 2}, {1, 2, 3}})
	if err != nil {
		fmt.Println("hypergraph:", err)
		return
	}
	ix, err := pslocal.NewConflictIndex(h, 2)
	if err != nil {
		fmt.Println("index:", err)
		return
	}
	f := pslocal.Coloring{1, 2, 2, 1} // conflict-free: vertex 0 unique in e0, vertex 3 in e1
	is, err := pslocal.ColoringToIS(ix, f)
	if err != nil {
		fmt.Println("mapping:", err)
		return
	}
	fmt.Println("independent set size:", len(is))
	fmt.Println("first triple:", is[0])
	// Output:
	// independent set size: 2
	// first triple: (e0,v0,c1)
}

// ExampleBallCarvingMaxIS shows the containment direction: a
// (1+δ)-approximate maximum independent set with logarithmic locality.
func ExampleBallCarvingMaxIS() {
	g := pslocal.Grid(4, 5)
	res, err := pslocal.BallCarvingMaxIS(g, pslocal.CarvingOptions{Delta: 1.0})
	if err != nil {
		fmt.Println("carving:", err)
		return
	}
	opt, err := pslocal.ExactMaxIS(g)
	if err != nil {
		fmt.Println("exact:", err)
		return
	}
	fmt.Println("alpha:", len(opt))
	fmt.Println("carved at least half:", 2*len(res.Set) >= len(opt))
	fmt.Println("locality within bound:", res.Locality <= res.RadiusBound)
	// Output:
	// alpha: 10
	// carved at least half: true
	// locality within bound: true
}

// ExampleDyadicIntervalColoring colours line vertices so every interval
// hypergraph is conflict-free.
func ExampleDyadicIntervalColoring() {
	c := pslocal.DyadicIntervalColoring(7)
	fmt.Println(c)
	// Output:
	// [3 2 3 1 3 2 3]
}

// ExampleReadGraph parses a DIMACS .col document (the format published
// graph instances use) into the repository's CSR graph. FormatAuto
// sniffs the same input without being told the format.
func ExampleReadGraph() {
	const doc = `c a 5-cycle
p edge 5 5
e 1 2
e 2 3
e 3 4
e 4 5
e 5 1
`
	g, err := pslocal.ReadGraph(strings.NewReader(doc), pslocal.FormatDIMACS)
	if err != nil {
		fmt.Println("read:", err)
		return
	}
	fmt.Println(g)
	fmt.Println("edge {0,4}:", g.HasEdge(0, 4))
	// Output:
	// graph(n=5, m=5)
	// edge {0,4}: true
}

// ExampleNewOraclePortfolio races three oracles on the same graph and
// keeps the largest independent set; Reduce forwards its Engine options
// to the portfolio so one -workers setting drives the whole phase loop.
func ExampleNewOraclePortfolio() {
	members := make([]pslocal.Oracle, 0, 3)
	for _, name := range []string{"greedy-mindeg", "greedy-random", "clique-removal"} {
		o, err := pslocal.LookupOracle(name, 1)
		if err != nil {
			fmt.Println("lookup:", err)
			return
		}
		members = append(members, o)
	}
	p, err := pslocal.NewOraclePortfolio(members...)
	if err != nil {
		fmt.Println("portfolio:", err)
		return
	}
	fmt.Println("racing:", p.Name())

	g := pslocal.Grid(4, 5)
	set, err := p.Solve(g)
	if err != nil {
		fmt.Println("solve:", err)
		return
	}
	fmt.Println("|I|:", len(set))
	fmt.Println("independent:", pslocal.VerifyIndependentSet(g, set) == nil)
	// Output:
	// racing: portfolio:greedy-mindeg,greedy-random,clique-removal
	// |I|: 10
	// independent: true
}

// bench_test.go regenerates every experiment of DESIGN.md Section 4 as a
// testing.B benchmark: E1–E10 (the paper's claims), F1–F3 (figure
// equivalents) and A1–A3 (ablations), plus micro-benchmarks for the
// hot paths (conflict-graph construction, exact solving with and without
// the clique bound, implicit vs explicit first-fit). The benchmarks use
// the Quick grids; `cmd/psctab` prints the full grids.
package pslocal_test

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"pslocal"
	"pslocal/internal/core"
	"pslocal/internal/engine"
	"pslocal/internal/experiments"
	"pslocal/internal/hypergraph"
	"pslocal/internal/maxis"
)

var benchCfg = experiments.Config{Seed: 42, Quick: true}

// benchTable runs one experiment generator as a benchmark body and fails
// the benchmark if the paper's claim does not hold.
func benchTable(b *testing.B, fn func(experiments.Config) (*experiments.Table, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fn(benchCfg); err != nil {
			b.Fatalf("claim failed: %v", err)
		}
	}
}

func BenchmarkE1ConflictGraphSize(b *testing.B) { benchTable(b, experiments.E1ConflictGraphSize) }
func BenchmarkE2Lemma21a(b *testing.B)          { benchTable(b, experiments.E2Lemma21a) }
func BenchmarkE3Lemma21b(b *testing.B)          { benchTable(b, experiments.E3Lemma21b) }
func BenchmarkE4PhaseDecay(b *testing.B)        { benchTable(b, experiments.E4PhaseDecay) }
func BenchmarkE5ColorBudget(b *testing.B)       { benchTable(b, experiments.E5ColorBudget) }
func BenchmarkE6Containment(b *testing.B)       { benchTable(b, experiments.E6Containment) }
func BenchmarkE7OracleQuality(b *testing.B)     { benchTable(b, experiments.E7OracleQuality) }
func BenchmarkE8ModelBaselines(b *testing.B)    { benchTable(b, experiments.E8ModelBaselines) }
func BenchmarkE9NetDecomp(b *testing.B)         { benchTable(b, experiments.E9NetDecomp) }
func BenchmarkE10IntervalCF(b *testing.B)       { benchTable(b, experiments.E10IntervalCF) }
func BenchmarkE11DistributedPipeline(b *testing.B) {
	benchTable(b, experiments.E11DistributedPipeline)
}
func BenchmarkE12CompleteSiblings(b *testing.B) { benchTable(b, experiments.E12CompleteSiblings) }

func BenchmarkF1DecayCurve(b *testing.B)        { benchTable(b, experiments.F1DecayCurve) }
func BenchmarkF2LocalityHistogram(b *testing.B) { benchTable(b, experiments.F2LocalityHistogram) }
func BenchmarkF3LambdaVsDensity(b *testing.B)   { benchTable(b, experiments.F3LambdaVsDensity) }

func BenchmarkAblationImplicitVsExplicit(b *testing.B) {
	benchTable(b, experiments.A1ImplicitVsExplicit)
}
func BenchmarkAblationCliqueBound(b *testing.B) { benchTable(b, experiments.A2CliqueBound) }
func BenchmarkAblationOracleOrder(b *testing.B) { benchTable(b, experiments.A3OrderSensitivity) }

// --- micro-benchmarks for the hot paths ---

// benchInstance builds one shared planted instance and its index.
func benchInstance(b *testing.B, m, k int) (*hypergraph.Hypergraph, *core.Index) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	h, _, err := hypergraph.PlantedCF(30, m, k, 3, 5, rng)
	if err != nil {
		b.Fatalf("generator: %v", err)
	}
	ix, err := core.NewIndex(h, k)
	if err != nil {
		b.Fatalf("index: %v", err)
	}
	return h, ix
}

func BenchmarkConflictGraphBuild(b *testing.B) {
	_, ix := benchInstance(b, 20, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(ix); err != nil {
			b.Fatal(err)
		}
	}
}

// benchLargeIndex is the serial-vs-parallel construction instance of the
// engine acceptance criteria: PlantedCF with n≈2000, m≈800, k=3.
func benchLargeIndex(b *testing.B) *core.Index {
	b.Helper()
	rng := rand.New(rand.NewSource(21))
	h, _, err := hypergraph.PlantedCF(2000, 800, 3, 3, 5, rng)
	if err != nil {
		b.Fatalf("generator: %v", err)
	}
	ix, err := core.NewIndex(h, 3)
	if err != nil {
		b.Fatalf("index: %v", err)
	}
	return ix
}

func benchBuildLarge(b *testing.B, opts engine.Options) {
	ix := benchLargeIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := core.BuildOpts(ix, opts)
		if err != nil {
			b.Fatal(err)
		}
		if g.N() != ix.NumNodes() {
			b.Fatalf("built %d nodes, want %d", g.N(), ix.NumNodes())
		}
	}
}

func BenchmarkConflictGraphBuildLargeSerial(b *testing.B) {
	benchBuildLarge(b, engine.Options{Workers: 1})
}

func BenchmarkConflictGraphBuildLargeParallel(b *testing.B) {
	benchBuildLarge(b, engine.Parallel())
}

func BenchmarkImplicitFirstFit(b *testing.B) {
	_, ix := benchInstance(b, 20, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if set := core.FirstFitTriples(ix); len(set) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkExplicitFirstFit(b *testing.B) {
	_, ix := benchInstance(b, 20, 3)
	g, err := core.Build(ix)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set, err := maxis.FirstFitOracle{}.Solve(g)
		if err != nil || len(set) == 0 {
			b.Fatalf("solve: %v (%d nodes)", err, len(set))
		}
	}
}

func BenchmarkExactHinted(b *testing.B) {
	_, ix := benchInstance(b, 16, 3)
	g, err := core.Build(ix)
	if err != nil {
		b.Fatal(err)
	}
	hint := ix.EdgeCliqueHint()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := maxis.ExactOpts(g, maxis.ExactOptions{CliqueHint: hint}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactPlain(b *testing.B) {
	_, ix := benchInstance(b, 16, 3)
	g, err := core.Build(ix)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := maxis.Exact(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFirstFitScratchReuse(b *testing.B) {
	_, ix := benchInstance(b, 20, 3)
	var scratch core.FirstFitScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if set := scratch.FirstFit(ix); len(set) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkReduceImplicitEndToEnd(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	h, _, err := pslocal.PlantedCF(60, 40, 3, 3, 5, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pslocal.Reduce(h, pslocal.ReduceOptions{K: 3, Mode: pslocal.ModeImplicitFirstFit})
		if err != nil {
			b.Fatal(err)
		}
		if res.TotalColors == 0 {
			b.Fatal("no colours")
		}
	}
}

// benchPortfolio races the full greedy suite on a large materialised
// conflict graph, the per-phase workload of the oracle execution layer.
func benchPortfolio(b *testing.B, opts engine.Options) {
	ix := benchLargeIndex(b)
	g, err := core.BuildOpts(ix, engine.Parallel())
	if err != nil {
		b.Fatal(err)
	}
	// The greedy family only: clique-removal costs seconds per solve at
	// this size and would drown the fan-out signal.
	p, err := pslocal.LookupOracle("portfolio:greedy-mindeg,greedy-firstfit,greedy-random", 7)
	if err != nil {
		b.Fatal(err)
	}
	p.(*pslocal.OraclePortfolio).SetEngine(opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set, err := p.Solve(g)
		if err != nil || len(set) == 0 {
			b.Fatalf("solve: %v (%d nodes)", err, len(set))
		}
	}
}

func BenchmarkPortfolioOracleSerial(b *testing.B)   { benchPortfolio(b, engine.Options{Workers: 1}) }
func BenchmarkPortfolioOracleParallel(b *testing.B) { benchPortfolio(b, engine.Parallel()) }

// BenchmarkSLOCALGreedyMIS exercises the flat-array View scratch: a full
// SLOCAL pass over a mid-size random graph, one BFS ball per node.
func BenchmarkSLOCALGreedyMIS(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	g := pslocal.GnP(2000, 0.004, rng)
	order := pslocal.IdentityOrder(g.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mis, _, err := pslocal.SLOCALGreedyMIS(g, order)
		if err != nil || len(mis) == 0 {
			b.Fatalf("greedy MIS: %v (%d nodes)", err, len(mis))
		}
	}
}

func BenchmarkBallCarving(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	g := pslocal.GnP(80, 0.06, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pslocal.BallCarvingMaxIS(g, pslocal.CarvingOptions{Delta: 1.0}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetworkDecomposition(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	g := pslocal.GnP(200, 0.03, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pslocal.NetworkDecomposition(g, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Solver-backed pipeline (the serving path of cmd/cfserve) ---

// benchSolverBody serializes the benchmark reduction instance the way a
// cfserve client would post it.
func benchSolverBody(b *testing.B) []byte {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	h, _, err := pslocal.PlantedCF(60, 40, 3, 3, 5, rng)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pslocal.WriteHypergraph(&buf, h, pslocal.FormatEdgeList); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkSolverReduceCold measures the full serve path on a cache miss:
// admission, parse, and the reduction (a fresh single-entry cache per
// iteration keeps every submission cold).
func BenchmarkSolverReduceCold(b *testing.B) {
	body := benchSolverBody(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sv := pslocal.NewSolver(pslocal.WithK(3), pslocal.WithCache(1))
		res, inst, err := sv.SolveReader(ctx, bytes.NewReader(body), pslocal.FormatAuto)
		if err != nil {
			b.Fatalf("cold solve: %v", err)
		}
		if res.TotalColors == 0 || inst.CacheHit {
			b.Fatalf("cold solve: colours %d, hit %v", res.TotalColors, inst.CacheHit)
		}
	}
}

// BenchmarkSolverReduceCacheHit measures the hot-instance path: the same
// body resubmitted to one shared Solver skips parsing and CSR
// construction, so the delta against the cold benchmark is the cache win.
func BenchmarkSolverReduceCacheHit(b *testing.B) {
	body := benchSolverBody(b)
	ctx := context.Background()
	sv := pslocal.NewSolver(pslocal.WithK(3), pslocal.WithCache(4))
	if _, _, err := sv.SolveReader(ctx, bytes.NewReader(body), pslocal.FormatAuto); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, inst, err := sv.SolveReader(ctx, bytes.NewReader(body), pslocal.FormatAuto)
		if err != nil {
			b.Fatalf("hot solve: %v", err)
		}
		if res.TotalColors == 0 || !inst.CacheHit {
			b.Fatalf("hot solve: colours %d, hit %v", res.TotalColors, inst.CacheHit)
		}
	}
}

package pslocal

// jobs.go re-exports the asynchronous job subsystem (internal/jobs): a
// JobManager owns a bounded priority FIFO queue, a worker pool driving a
// shared Solver, and the full job lifecycle (queued → running → done |
// failed | cancelled) with deadlines, retry-on-transient policy,
// per-job cancellation and a persistent result store. cmd/cfserve
// surfaces it as the /v1/jobs API and cmd/cfbatch drives directory-scale
// sweeps through it.
//
//	sv := pslocal.NewSolver(pslocal.WithCache(128), pslocal.WithMaxInflight(-1))
//	jm, err := pslocal.NewJobManager(pslocal.JobConfig{
//		Solver: sv, Dir: "jobs-store", Workers: 4,
//	})
//	info, _, err := jm.Submit(pslocal.JobRequest{
//		Body:     instanceBytes,               // any graphio format
//		Params:   pslocal.JobParams{K: 3, Oracle: "greedy-mindeg"},
//		Priority: pslocal.JobPriorityHigh,
//	})
//	final, err := jm.Await(ctx, info.ID)       // or Watch for streaming events
//	res, err := jm.Result(info.ID)             // persisted as a graphio result doc
//
// Job identity is the SHA-256 content hash of format+parameters+body, so
// resubmissions are idempotent and completed jobs survive a restart of
// the manager over the same store directory.

import "pslocal/internal/jobs"

type (
	// JobManager orchestrates asynchronous reduction jobs: construct
	// with NewJobManager, submit with [JobManager.Submit], follow with
	// [JobManager.Get], [JobManager.Watch] or [JobManager.Await], and
	// stop with [JobManager.Close]. Safe for concurrent use.
	JobManager = jobs.Manager
	// JobConfig configures a JobManager (base Solver, store directory,
	// worker-pool width, queue capacity, retry classifier).
	JobConfig = jobs.Config
	// JobRequest describes one job to submit: instance body, format
	// directive, JobParams, priority, deadline, retry budget, label.
	JobRequest = jobs.Request
	// JobParams are the per-job solve options mirroring the Solver's
	// option set; zero fields inherit the base Solver's configuration.
	JobParams = jobs.Params
	// JobInfo is a point-in-time job snapshot.
	JobInfo = jobs.Info
	// JobState is the lifecycle state (JobQueued, JobRunning, JobDone,
	// JobFailed, JobCancelled).
	JobState = jobs.State
	// JobPriority selects the queue lane (JobPriorityLow/Normal/High).
	JobPriority = jobs.Priority
	// JobEvent is one lifecycle transition delivered by JobManager.Watch.
	JobEvent = jobs.Event
	// JobFilter selects jobs for JobManager.List.
	JobFilter = jobs.Filter
	// JobStats snapshots the manager's counters (cfserve merges them
	// into /statz).
	JobStats = jobs.Stats
)

// Job lifecycle states.
const (
	JobQueued    = jobs.StateQueued
	JobRunning   = jobs.StateRunning
	JobDone      = jobs.StateDone
	JobFailed    = jobs.StateFailed
	JobCancelled = jobs.StateCancelled
)

// Job queue lanes.
const (
	JobPriorityLow    = jobs.PriorityLow
	JobPriorityNormal = jobs.PriorityNormal
	JobPriorityHigh   = jobs.PriorityHigh
)

var (
	// ErrJobQueueFull reports a Submit rejected at the queue bound;
	// cfserve maps it to 503.
	ErrJobQueueFull = jobs.ErrQueueFull
	// ErrJobNotFound reports an unknown job id.
	ErrJobNotFound = jobs.ErrNotFound
	// ErrJobManagerClosed reports a Submit after Close.
	ErrJobManagerClosed = jobs.ErrClosed
	// ErrJobTransient tags failures the default retry policy re-runs.
	ErrJobTransient = jobs.ErrTransient
	// ErrNoJobResult reports a Result call on a job that has none.
	ErrNoJobResult = jobs.ErrNoResult
	// ErrJobDraining reports a Submit on a draining manager
	// ([JobManager.Drain]): running and queued jobs finish, new work is
	// refused. cfserve maps it to 503 with a Retry-After hint.
	ErrJobDraining = jobs.ErrDraining
)

// NewJobManager builds a JobManager: it creates the store directory,
// rescans it for jobs completed before a previous shutdown, and starts
// the worker pool.
func NewJobManager(cfg JobConfig) (*JobManager, error) { return jobs.New(cfg) }

// ParseJobPriority maps a flag or query spelling (low|normal|high, "" =
// normal) onto a JobPriority.
func ParseJobPriority(s string) (JobPriority, error) { return jobs.ParsePriority(s) }

// ParseJobState maps a filter spelling onto a JobState.
func ParseJobState(s string) (JobState, error) { return jobs.ParseState(s) }

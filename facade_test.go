// facade_test.go covers the public-surface helpers not exercised by the
// integration flows: constructors, generators, and the thin re-exports.
package pslocal_test

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"pslocal"
)

func TestFacadeGraphConstructors(t *testing.T) {
	b := pslocal.NewGraphBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Errorf("n=%d m=%d, want 3, 2", g.N(), g.M())
	}
	if c := pslocal.Cycle(7); c.M() != 7 {
		t.Errorf("Cycle(7).M() = %d", c.M())
	}
	if gr := pslocal.Grid(2, 5); gr.N() != 10 {
		t.Errorf("Grid(2,5).N() = %d", gr.N())
	}
	rng := rand.New(rand.NewSource(1))
	if gp := pslocal.GnP(12, 1, rng); gp.M() != 66 {
		t.Errorf("GnP(12,1).M() = %d, want 66", gp.M())
	}
}

func TestFacadePortfolioOracle(t *testing.T) {
	a, err := pslocal.LookupOracle("greedy-mindeg", 1)
	if err != nil {
		t.Fatalf("LookupOracle: %v", err)
	}
	b, err := pslocal.LookupOracle("greedy-firstfit", 1)
	if err != nil {
		t.Fatalf("LookupOracle: %v", err)
	}
	p, err := pslocal.NewOraclePortfolio(a, b)
	if err != nil {
		t.Fatalf("NewOraclePortfolio: %v", err)
	}
	p.SetEngine(pslocal.ParallelEngine())
	g := pslocal.Cycle(9)
	set, err := p.Solve(g)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := pslocal.VerifyIndependentSet(g, set); err != nil || len(set) != 4 {
		t.Errorf("portfolio on C9 = %v (%v), want a maximum IS of size 4", set, err)
	}
	named, err := pslocal.LookupOracle("portfolio:greedy-mindeg,greedy-firstfit", 1)
	if err != nil {
		t.Fatalf("LookupOracle portfolio: %v", err)
	}
	if _, ok := named.(*pslocal.OraclePortfolio); !ok {
		t.Errorf("registry portfolio has type %T", named)
	}
}

func TestFacadeHypergraphAndColourings(t *testing.T) {
	h, err := pslocal.NewHypergraph(4, [][]int32{{0, 1, 2}, {1, 2, 3}})
	if err != nil {
		t.Fatalf("NewHypergraph: %v", err)
	}
	if _, err := pslocal.NewHypergraph(2, [][]int32{{}}); err == nil {
		t.Error("empty edge accepted")
	}
	c := pslocal.Coloring{1, 2, 2, 1}
	if !pslocal.IsConflictFree(h, c) {
		t.Error("conflict-free colouring rejected")
	}
	mc := pslocal.Multicoloring{{1}, {}, {}, {2}}
	if !pslocal.IsConflictFreeMulti(h, mc) {
		t.Error("conflict-free multicolouring rejected")
	}
	if err := pslocal.VerifyConflictFreeMulti(h, mc); err != nil {
		t.Errorf("VerifyConflictFreeMulti: %v", err)
	}
	rng := rand.New(rand.NewSource(2))
	ih, err := pslocal.IntervalHypergraph(20, 10, 2, 6, rng)
	if err != nil {
		t.Fatalf("IntervalHypergraph: %v", err)
	}
	if !pslocal.IsConflictFree(ih, pslocal.DyadicIntervalColoring(20)) {
		t.Error("dyadic colouring not conflict-free on an interval hypergraph")
	}
}

func TestFacadeMaxISSolvers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := pslocal.GnP(35, 0.15, rng)
	exact, err := pslocal.ExactMaxIS(g)
	if err != nil {
		t.Fatalf("ExactMaxIS: %v", err)
	}
	greedy := pslocal.GreedyMaxIS(g)
	ramsey := pslocal.CliqueRemovalMaxIS(g)
	for name, set := range map[string][]int32{"exact": exact, "greedy": greedy, "ramsey": ramsey} {
		if err := pslocal.VerifyIndependentSet(g, set); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if len(exact) < len(greedy) || len(exact) < len(ramsey) {
		t.Errorf("exact %d smaller than a heuristic (greedy %d, ramsey %d)",
			len(exact), len(greedy), len(ramsey))
	}
}

func TestFacadeLoadgen(t *testing.T) {
	trace, err := pslocal.PlanLoad(pslocal.LoadSpec{
		Seed: 5, Requests: 12, Rate: 300, Arrival: pslocal.LoadArrivalGamma, Shape: 2,
		Classes: []pslocal.LoadClass{{
			Name: "maxis", Weight: 1, Endpoint: "maxis", Kind: "graph",
			Gen: "cycle", N: 12, Formats: []string{"edgelist"},
			Params: pslocal.LoadParams{Oracle: "greedy-mindeg"}, SLOMillis: 100,
		}},
	})
	if err != nil {
		t.Fatalf("PlanLoad: %v", err)
	}
	if len(trace.Records) != 12 {
		t.Fatalf("planned %d records", len(trace.Records))
	}
	var buf bytes.Buffer
	if err := pslocal.WriteLoadTrace(&buf, trace); err != nil {
		t.Fatalf("WriteLoadTrace: %v", err)
	}
	back, err := pslocal.ReadLoadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadLoadTrace: %v", err)
	}
	if len(back.Records) != 12 || back.Seed != 5 {
		t.Fatalf("round-trip lost the trace: %+v", back)
	}
	if _, err := pslocal.PlanLoad(pslocal.LoadSpec{}); !errors.Is(err, pslocal.ErrLoadSpec) {
		t.Fatalf("empty spec error = %v, want ErrLoadSpec", err)
	}
	if _, err := pslocal.ReadLoadTrace(strings.NewReader("junk\n")); !errors.Is(err, pslocal.ErrLoadTrace) {
		t.Fatalf("junk trace error = %v, want ErrLoadTrace", err)
	}
}

func TestFacadePhaseBoundAndOrders(t *testing.T) {
	if got := pslocal.PhaseBound(1, 1); got != 1 {
		t.Errorf("PhaseBound(1,1) = %d", got)
	}
	order := pslocal.IdentityOrder(4)
	for i, v := range order {
		if int(v) != i {
			t.Fatalf("IdentityOrder broken at %d", i)
		}
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: pslocal
cpu: whatever
BenchmarkConflictGraphBuild-8   	    1000	   1234567 ns/op	  345678 B/op	     901 allocs/op
BenchmarkPortfolioOracleParallel 	      54	  22222222.5 ns/op
PASS
ok  	pslocal	2.345s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("parseBench: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkConflictGraphBuild-8" || r.Iterations != 1000 || r.NsPerOp != 1234567 {
		t.Errorf("first result = %+v", r)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 345678 || r.AllocsPerOp == nil || *r.AllocsPerOp != 901 {
		t.Errorf("first result memory fields = %+v", r)
	}
	if results[1].BytesPerOp != nil || results[1].AllocsPerOp != nil {
		t.Errorf("missing -benchmem fields should be null, got %+v", results[1])
	}
	if results[1].NsPerOp != 22222222.5 {
		t.Errorf("fractional ns/op parsed as %v", results[1].NsPerOp)
	}
}

func TestRunAppendsAndReplacesBySHA(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH.json")
	if err := run(out, "sha1", 100, false, strings.NewReader(sample)); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if err := run(out, "sha2", 200, true, strings.NewReader(sample)); err != nil {
		t.Fatalf("second run: %v", err)
	}
	// Same SHA again with a full run: the quick entry is upgraded in
	// place, not duplicated.
	if err := run(out, "sha2", 300, false, strings.NewReader(sample)); err != nil {
		t.Fatalf("third run: %v", err)
	}
	traj, err := loadTrajectory(out)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if traj.Schema != 1 || len(traj.History) != 2 {
		t.Fatalf("trajectory = schema %d, %d entries; want schema 1 with 2 entries", traj.Schema, len(traj.History))
	}
	if traj.History[0].SHA != "sha1" || traj.History[1].SHA != "sha2" {
		t.Errorf("history order = %s, %s", traj.History[0].SHA, traj.History[1].SHA)
	}
	if traj.History[1].UnixTime != 300 || traj.History[1].Quick {
		t.Errorf("full rerun kept %+v, want time 300 quick=false (upgraded)", traj.History[1])
	}
	// A quick run must never replace a full measurement for the same SHA.
	if err := run(out, "sha1", 500, true, strings.NewReader(sample)); err != nil {
		t.Fatalf("quick-over-full run: %v", err)
	}
	traj, err = loadTrajectory(out)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if traj.History[0].UnixTime != 100 || traj.History[0].Quick {
		t.Errorf("quick run replaced full entry: %+v", traj.History[0])
	}
}

func TestLoadTrajectoryMigratesLegacyArray(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH.json")
	legacy := `[
  {"name":"BenchmarkOld","iterations":5,"ns_per_op":9.5,"bytes_per_op":null,"allocs_per_op":null}
]`
	if err := os.WriteFile(out, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(out, "new", 400, false, strings.NewReader(sample)); err != nil {
		t.Fatalf("run over legacy: %v", err)
	}
	traj, err := loadTrajectory(out)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(traj.History) != 2 || traj.History[0].SHA != "legacy" || traj.History[1].SHA != "new" {
		t.Fatalf("migrated history = %+v", traj.History)
	}
	if traj.History[0].Results[0].Name != "BenchmarkOld" {
		t.Errorf("legacy results lost: %+v", traj.History[0].Results)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH.json")
	if err := run(out, "sha", 1, false, strings.NewReader("no benchmarks here\n")); err == nil {
		t.Error("empty benchmark input accepted")
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Error("output written despite empty input")
	}
}

package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: pslocal
cpu: whatever
BenchmarkConflictGraphBuild-8   	    1000	   1234567 ns/op	  345678 B/op	     901 allocs/op
BenchmarkPortfolioOracleParallel 	      54	  22222222.5 ns/op
PASS
ok  	pslocal	2.345s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("parseBench: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkConflictGraphBuild-8" || r.Iterations != 1000 || r.NsPerOp != 1234567 {
		t.Errorf("first result = %+v", r)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 345678 || r.AllocsPerOp == nil || *r.AllocsPerOp != 901 {
		t.Errorf("first result memory fields = %+v", r)
	}
	if results[1].BytesPerOp != nil || results[1].AllocsPerOp != nil {
		t.Errorf("missing -benchmem fields should be null, got %+v", results[1])
	}
	if results[1].NsPerOp != 22222222.5 {
		t.Errorf("fractional ns/op parsed as %v", results[1].NsPerOp)
	}
}

func TestRunAppendsAndReplacesBySHA(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH.json")
	if err := run(out, "sha1", 100, false, "", "", strings.NewReader(sample)); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if err := run(out, "sha2", 200, true, "", "", strings.NewReader(sample)); err != nil {
		t.Fatalf("second run: %v", err)
	}
	// Same SHA again with a full run: the quick entry is upgraded in
	// place, not duplicated.
	if err := run(out, "sha2", 300, false, "", "", strings.NewReader(sample)); err != nil {
		t.Fatalf("third run: %v", err)
	}
	traj, err := loadTrajectory(out)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if traj.Schema != 1 || len(traj.History) != 2 {
		t.Fatalf("trajectory = schema %d, %d entries; want schema 1 with 2 entries", traj.Schema, len(traj.History))
	}
	if traj.History[0].SHA != "sha1" || traj.History[1].SHA != "sha2" {
		t.Errorf("history order = %s, %s", traj.History[0].SHA, traj.History[1].SHA)
	}
	if traj.History[1].UnixTime != 300 || traj.History[1].Quick {
		t.Errorf("full rerun kept %+v, want time 300 quick=false (upgraded)", traj.History[1])
	}
	// A quick run must never replace a full measurement for the same SHA.
	if err := run(out, "sha1", 500, true, "", "", strings.NewReader(sample)); err != nil {
		t.Fatalf("quick-over-full run: %v", err)
	}
	traj, err = loadTrajectory(out)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if traj.History[0].UnixTime != 100 || traj.History[0].Quick {
		t.Errorf("quick run replaced full entry: %+v", traj.History[0])
	}
}

func TestLoadTrajectoryMigratesLegacyArray(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH.json")
	legacy := `[
  {"name":"BenchmarkOld","iterations":5,"ns_per_op":9.5,"bytes_per_op":null,"allocs_per_op":null}
]`
	if err := os.WriteFile(out, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(out, "new", 400, false, "", "", strings.NewReader(sample)); err != nil {
		t.Fatalf("run over legacy: %v", err)
	}
	traj, err := loadTrajectory(out)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(traj.History) != 2 || traj.History[0].SHA != "legacy" || traj.History[1].SHA != "new" {
		t.Fatalf("migrated history = %+v", traj.History)
	}
	if traj.History[0].Results[0].Name != "BenchmarkOld" {
		t.Errorf("legacy results lost: %+v", traj.History[0].Results)
	}
}

// allocSample renders bench output for one -benchmem benchmark with the
// given allocs/op, under the GOMAXPROCS suffix of the caller's choosing.
func allocSample(name string, allocs int64) string {
	return fmt.Sprintf("Benchmark%s   \t     100\t   5000 ns/op\t     128 B/op\t       %d allocs/op\nPASS\n",
		name, allocs)
}

func TestAllocGate(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH.json")
	gate := "SolverCacheHitAllocs"
	// Baseline entry: zero allocs on the gated benchmark.
	if err := run(out, "base", 100, false, gate, "", strings.NewReader(allocSample("SolverCacheHitAllocs-8", 0))); err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	// Equal count passes, and a different GOMAXPROCS suffix still matches
	// the recorded baseline.
	if err := run(out, "next", 200, false, gate, "", strings.NewReader(allocSample("SolverCacheHitAllocs-16", 0))); err != nil {
		t.Fatalf("equal-alloc run rejected: %v", err)
	}
	// A regression fails and leaves the trajectory unwritten.
	err := run(out, "bad", 300, false, gate, "", strings.NewReader(allocSample("SolverCacheHitAllocs-8", 3)))
	if err == nil || !strings.Contains(err.Error(), "ALLOCATION GATE FAILED") {
		t.Fatalf("regressed run: err = %v, want gate failure", err)
	}
	traj, err := loadTrajectory(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range traj.History {
		if e.SHA == "bad" {
			t.Error("gate failure still wrote the regressed entry")
		}
	}
	// Ungated benchmarks regress freely.
	if err := run(out, "other", 400, false, gate, "", strings.NewReader(allocSample("SomethingElse-8", 999))); err != nil {
		t.Fatalf("ungated benchmark tripped the gate: %v", err)
	}
	// Re-running the baseline SHA compares against other entries, not the
	// entry this run replaces — so a same-SHA rerun with more allocs than
	// its own old entry but within the rest of history still fails here
	// (history has zero-alloc entries from other SHAs).
	err = run(out, "base", 500, false, gate, "", strings.NewReader(allocSample("SolverCacheHitAllocs-8", 1)))
	if err == nil {
		t.Error("regression on same-SHA rerun slipped past the gate")
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH.json")
	if err := run(out, "sha", 1, false, "", "", strings.NewReader("no benchmarks here\n")); err == nil {
		t.Error("empty benchmark input accepted")
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Error("output written despite empty input")
	}
}

// perfSample is a cfload -perf-out document as the runner emits it.
const perfSample = `{
  "schema": 1, "requests": 120, "errors": 2, "duration_s": 1.5,
  "throughput_rps": 80,
  "latency": {"mean_ms": 4.5, "p50_ms": 3, "p95_ms": 12, "p99_ms": 20, "max_ms": 35},
  "cache_hits": 50, "cache_misses": 70,
  "classes": [], "slo": {"attained": 110, "eligible": 118, "ratio": 0.932},
  "jobs": {"started": 20, "finished": 20, "wait_sum_ms": 40, "run_sum_ms": 100,
           "wait_mean_ms": 2, "run_mean_ms": 5}
}`

func TestRunIngestsLoadReport(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH.json")
	perf := filepath.Join(dir, "perf.json")
	if err := os.WriteFile(perf, []byte(perfSample), 0o644); err != nil {
		t.Fatal(err)
	}
	// Load-only merge: no bench lines on stdin.
	if err := run(out, "sha-load", 100, true, "", perf, strings.NewReader("")); err != nil {
		t.Fatalf("load-only merge: %v", err)
	}
	traj, err := loadTrajectory(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj.History) != 1 {
		t.Fatalf("history = %+v", traj.History)
	}
	got := map[string]Result{}
	for _, r := range traj.History[0].Results {
		got[r.Name] = r
	}
	if r := got["CfloadLatencyP50"]; r.NsPerOp != 3e6 || r.Iterations != 120 {
		t.Errorf("CfloadLatencyP50 = %+v, want 3ms over 120 requests", r)
	}
	if r := got["CfloadLatencyP99"]; r.NsPerOp != 20e6 {
		t.Errorf("CfloadLatencyP99 = %+v", r)
	}
	if r := got["CfloadThroughput"]; r.NsPerOp != 1e9/80 {
		t.Errorf("CfloadThroughput = %+v, want 1e9/80", r)
	}
	if r := got["CfloadSLOAttainedPct"]; r.NsPerOp < 93.1 || r.NsPerOp > 93.3 {
		t.Errorf("CfloadSLOAttainedPct = %+v", r)
	}
	if r := got["CfloadJobsWaitMean"]; r.NsPerOp != 2e6 || r.Iterations != 20 {
		t.Errorf("CfloadJobsWaitMean = %+v", r)
	}
	if r := got["CfloadJobsRunMean"]; r.NsPerOp != 5e6 {
		t.Errorf("CfloadJobsRunMean = %+v", r)
	}
	if r := got["CfloadCacheHitPct"]; r.Iterations != 120 || r.NsPerOp < 41.6 || r.NsPerOp > 41.7 {
		t.Errorf("CfloadCacheHitPct = %+v, want 50/120 over 120 dispositions", r)
	}

	// Bench lines and a load report merge into one entry.
	if err := run(out, "both", 200, false, "", perf, strings.NewReader(sample)); err != nil {
		t.Fatalf("combined merge: %v", err)
	}
	traj, err = loadTrajectory(out)
	if err != nil {
		t.Fatal(err)
	}
	e := traj.History[1]
	if len(e.Results) != 2+9 {
		t.Fatalf("combined entry has %d results: %+v", len(e.Results), e.Results)
	}

	// Malformed and empty reports fail without writing.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(out, "bad", 300, false, "", bad, strings.NewReader("")); err == nil {
		t.Error("malformed load report accepted")
	}
	if err := run(out, "gone", 300, false, "", filepath.Join(dir, "missing.json"), strings.NewReader("")); err == nil {
		t.Error("missing load report accepted")
	}
}

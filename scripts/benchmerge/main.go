// Command benchmerge parses `go test -bench` output on stdin and appends
// the results to the JSON perf trajectory (default BENCH_gk.json): a
// stable {"schema":1,"history":[...]} document with one entry per run,
// keyed by git SHA, so successive PRs accumulate a comparable history
// instead of overwriting each other. Re-running on the same SHA replaces
// that SHA's entry; a legacy flat-array file (the pre-history schema) is
// migrated into a single entry with sha "legacy".
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem . | go run ./scripts/benchmerge -out BENCH_gk.json -sha "$(git rev-parse HEAD)"
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"time"

	"pslocal/internal/loadgen"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op"`
	AllocsPerOp *int64  `json:"allocs_per_op"`
}

// Entry is one benchmark run in the trajectory.
type Entry struct {
	SHA      string `json:"sha"`
	UnixTime int64  `json:"unix_time"`
	// Quick marks 1-iteration CI-mode runs, whose timings must not be
	// compared against full measurements.
	Quick   bool     `json:"quick,omitempty"`
	Results []Result `json:"results"`
}

// Trajectory is the on-disk document.
type Trajectory struct {
	Schema  int     `json:"schema"`
	History []Entry `json:"history"`
}

func main() {
	var (
		out   = flag.String("out", "BENCH_gk.json", "trajectory file to update")
		sha   = flag.String("sha", "unknown", "git SHA keying this run's entry")
		unix  = flag.Int64("time", 0, "unix seconds of the run (0 = now)")
		quick = flag.Bool("quick", false, "mark the entry as a 1-iteration quick run")
		gate  = flag.String("alloc-gate", "",
			"regexp of benchmark names whose allocs_per_op must not grow vs the last recorded entry; a regression fails the merge")
		load = flag.String("load", "",
			"cfload perf report (the -perf-out JSON) to fold into the entry as Cfload* results; with -load, bench lines on stdin are optional")
	)
	flag.Parse()
	if err := run(*out, *sha, *unix, *quick, *gate, *load, os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "benchmerge:", err)
		os.Exit(1)
	}
}

func run(out, sha string, unix int64, quick bool, gate, load string, in io.Reader) error {
	results, err := parseBench(in)
	if err != nil {
		return err
	}
	if load != "" {
		loadResults, err := loadPerfResults(load)
		if err != nil {
			return err
		}
		results = append(results, loadResults...)
	}
	if len(results) == 0 {
		if load != "" {
			return errors.New("no benchmark lines on stdin and no results in the -load report")
		}
		return errors.New("no benchmark lines on stdin")
	}
	if unix == 0 {
		unix = time.Now().Unix()
	}
	traj, err := loadTrajectory(out)
	if err != nil {
		return err
	}
	if gate != "" {
		if err := checkAllocGate(traj, sha, results, gate); err != nil {
			return err
		}
	}
	merge(traj, Entry{SHA: sha, UnixTime: unix, Quick: quick, Results: results})
	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(data, '\n'), 0o644)
}

// baseName strips the -<GOMAXPROCS> suffix from a benchmark name so runs
// from machines with different core counts stay comparable.
var procSuffix = regexp.MustCompile(`-\d+$`)

func baseName(name string) string { return procSuffix.ReplaceAllString(name, "") }

// checkAllocGate enforces the serve-path allocation line: every new
// result whose name matches the gate pattern must not allocate more
// objects per op than the most recent prior entry (skipping entries for
// the same SHA, which this run replaces) that measured the same
// benchmark. Allocation counts are deterministic, so the gate is stable
// even under 1-iteration quick runs.
func checkAllocGate(traj *Trajectory, sha string, results []Result, gate string) error {
	re, err := regexp.Compile(gate)
	if err != nil {
		return fmt.Errorf("alloc-gate pattern: %w", err)
	}
	// Most recent recorded alloc count per gated benchmark base name.
	baseline := map[string]int64{}
	for _, e := range traj.History {
		if e.SHA == sha {
			continue
		}
		for _, r := range e.Results {
			if r.AllocsPerOp != nil && re.MatchString(r.Name) {
				baseline[baseName(r.Name)] = *r.AllocsPerOp
			}
		}
	}
	var regressions []string
	for _, r := range results {
		if r.AllocsPerOp == nil || !re.MatchString(r.Name) {
			continue
		}
		if prev, ok := baseline[baseName(r.Name)]; ok && *r.AllocsPerOp > prev {
			regressions = append(regressions,
				fmt.Sprintf("%s: %d allocs/op, was %d", baseName(r.Name), *r.AllocsPerOp, prev))
		}
	}
	if len(regressions) > 0 {
		msg := "ALLOCATION GATE FAILED — serve-path allocs/op grew vs the recorded trajectory:\n"
		for _, s := range regressions {
			msg += "  " + s + "\n"
		}
		return errors.New(msg + "fix the regression (or update the trajectory deliberately without -alloc-gate)")
	}
	return nil
}

// loadPerfResults maps a cfload perf report onto trajectory Results so
// load-test latency rides the same history as the micro-benchmarks.
// Latency quantiles and the jobs wait/run means become ns_per_op
// (milliseconds scaled to nanoseconds, one "op" = one request);
// CfloadThroughput records the mean inter-completion time (1e9 /
// requests-per-second); CfloadSLOAttainedPct abuses ns_per_op to carry
// the attainment percentage, which keeps the document schema unchanged.
func loadPerfResults(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("load report: %w", err)
	}
	var p loadgen.Perf
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("load report %s: %w", path, err)
	}
	if p.Requests == 0 {
		return nil, fmt.Errorf("load report %s: no requests", path)
	}
	n := int64(p.Requests)
	msToNs := func(ms float64) float64 { return ms * 1e6 }
	results := []Result{
		{Name: "CfloadLatencyP50", Iterations: n, NsPerOp: msToNs(p.Latency.P50MS)},
		{Name: "CfloadLatencyP95", Iterations: n, NsPerOp: msToNs(p.Latency.P95MS)},
		{Name: "CfloadLatencyP99", Iterations: n, NsPerOp: msToNs(p.Latency.P99MS)},
		{Name: "CfloadLatencyMean", Iterations: n, NsPerOp: msToNs(p.Latency.MeanMS)},
		{Name: "CfloadSLOAttainedPct", Iterations: n, NsPerOp: 100 * p.SLO.Ratio},
	}
	if seen := p.CacheHits + p.CacheMisses; seen > 0 {
		// Cache-hit percentage of responses reporting a disposition,
		// recomputed from the raw counts so reports predating the ratio
		// field ingest identically — the cluster-smoke run records it so
		// affinity routing's advantage over round-robin is visible in the
		// trajectory.
		results = append(results, Result{
			Name:       "CfloadCacheHitPct",
			Iterations: int64(seen),
			NsPerOp:    100 * float64(p.CacheHits) / float64(seen),
		})
	}
	if p.ThroughputRPS > 0 {
		results = append(results,
			Result{Name: "CfloadThroughput", Iterations: n, NsPerOp: 1e9 / p.ThroughputRPS})
	}
	if p.Jobs != nil {
		results = append(results,
			Result{Name: "CfloadJobsWaitMean", Iterations: int64(p.Jobs.Started), NsPerOp: msToNs(p.Jobs.WaitMeanMS)},
			Result{Name: "CfloadJobsRunMean", Iterations: int64(p.Jobs.Finished), NsPerOp: msToNs(p.Jobs.RunMeanMS)})
	}
	return results, nil
}

// benchLine matches `go test -bench` result lines, e.g.
// "BenchmarkFoo-8   954   1324332 ns/op   9536 B/op   6 allocs/op".
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// parseBench extracts the benchmark results from raw `go test` output.
func parseBench(in io.Reader) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("iterations in %q: %w", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("ns/op in %q: %w", sc.Text(), err)
		}
		r := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			b, _ := strconv.ParseInt(m[4], 10, 64)
			r.BytesPerOp = &b
		}
		if m[5] != "" {
			a, _ := strconv.ParseInt(m[5], 10, 64)
			r.AllocsPerOp = &a
		}
		results = append(results, r)
	}
	return results, sc.Err()
}

// loadTrajectory reads the existing file, accepting the current history
// schema, the legacy flat result array, or a missing/empty file.
func loadTrajectory(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) || (err == nil && len(data) == 0) {
		return &Trajectory{Schema: 1}, nil
	}
	if err != nil {
		return nil, err
	}
	var traj Trajectory
	if err := json.Unmarshal(data, &traj); err == nil && traj.History != nil {
		traj.Schema = 1
		return &traj, nil
	}
	var legacy []Result
	if err := json.Unmarshal(data, &legacy); err == nil {
		return &Trajectory{Schema: 1, History: []Entry{{SHA: "legacy", Results: legacy}}}, nil
	}
	return nil, fmt.Errorf("%s is neither a history document nor a legacy result array", path)
}

// merge appends e to the history, replacing any existing entry with the
// same SHA (re-running on one commit keeps a single entry) — except that
// a quick run never replaces a full measurement: 1-iteration noise must
// not destroy the numbers the trajectory exists to keep.
func merge(traj *Trajectory, e Entry) {
	for i := range traj.History {
		if traj.History[i].SHA == e.SHA {
			if e.Quick && !traj.History[i].Quick {
				return
			}
			traj.History[i] = e
			return
		}
	}
	traj.History = append(traj.History, e)
}

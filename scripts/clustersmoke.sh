#!/bin/sh
# End-to-end cluster smoke: three cfserve nodes sharing one job store
# behind a cfgate gateway. Three phases:
#
#   1. Control: record a cfload burst through a round-robin gateway on a
#      fresh fleet and capture its cache-hit ratio.
#   2. Affinity: restart the fleet with cold caches, replay the identical
#      trace through an affinity gateway, and require a strictly higher
#      cache-hit ratio (the point of content-hash routing). The shared
#      store carries phase-1 jobs over: the fresh fleet adopts them and
#      serves them by id through the gateway.
#   3. Drain: fire a paced burst at the affinity gateway and SIGTERM one
#      backend mid-burst. The gateway must reroute (rerouted > 0 in its
#      /statz), the killed node must drain and exit 0, and the client
#      must see zero failed requests.
#
# The affinity perf report lands in the trajectory as "<sha>-cluster"
# via scripts/benchmerge -load. Usage: scripts/clustersmoke.sh [output.json]
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_gk.json}"
work="$(mktemp -d)"
pids=""
cleanup() {
  for p in $pids; do kill "$p" 2>/dev/null || true; done
  rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/cfserve" ./cmd/cfserve
go build -o "$work/cfgate" ./cmd/cfgate
go build -o "$work/cfload" ./cmd/cfload

gate=127.0.0.1:8370
b1=127.0.0.1:8371
b2=127.0.0.1:8372
b3=127.0.0.1:8373
backends="http://$b1,http://$b2,http://$b3"
store="$work/jobs"

wait_ready() {
  for i in $(seq 1 50); do
    curl -fsS "http://$1/readyz" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  echo "clustersmoke: $1 never became ready" >&2
  return 1
}

start_fleet() {
  "$work/cfserve" -addr "$b1" -jobs-dir "$store" & pid1=$!
  "$work/cfserve" -addr "$b2" -jobs-dir "$store" & pid2=$!
  "$work/cfserve" -addr "$b3" -jobs-dir "$store" & pid3=$!
  pids="$pids $pid1 $pid2 $pid3"
  wait_ready "$b1"; wait_ready "$b2"; wait_ready "$b3"
}

start_gate() { # $1 = policy
  "$work/cfgate" -addr "$gate" -backends "$backends" -policy "$1" \
    -probe-interval 200ms -fail-after 2 & gate_pid=$!
  pids="$pids $gate_pid"
  wait_ready "$gate"
}

# --- Phase 1: round-robin control on a cold fleet ---------------------
start_fleet
start_gate round-robin
"$work/cfload" -addr "http://$gate" -requests 120 -rate 500 -seed 11 \
  -hit-ratio 0.6 -record "$work/burst.trace" -perf-out "$work/perf_rr.json" \
  > "$work/summary_rr.json"
jq -e '.failed == 0' "$work/summary_rr.json" >/dev/null
# Round-robin spreads responses across the fleet...
jq -e '.backends | length == 3' "$work/perf_rr.json" >/dev/null
rr_ratio=$(jq .cache_hit_ratio "$work/perf_rr.json")

# --- Phase 2: affinity on an equally cold fleet, same trace -----------
kill $pids 2>/dev/null || true
for p in $pids; do wait "$p" 2>/dev/null || true; done
pids=""
start_fleet
start_gate affinity
"$work/cfload" -addr "http://$gate" -replay "$work/burst.trace" \
  -perf-out "$work/perf_aff.json" > "$work/summary_aff.json"
jq -e '.failed == 0' "$work/summary_aff.json" >/dev/null
aff_ratio=$(jq .cache_hit_ratio "$work/perf_aff.json")
echo "clustersmoke: cache-hit ratio round-robin=$rr_ratio affinity=$aff_ratio"
# The acceptance criterion: affinity strictly beats the control.
awk "BEGIN { exit !($aff_ratio > $rr_ratio) }"

# Shared-store adoption: the cold fleet adopted phase-1 jobs, so the
# gateway's merged list sees them and any node answers a job id.
curl -fsS "http://$gate/v1/jobs" > "$work/jobs.json"
jq -e '.count > 0' "$work/jobs.json" >/dev/null
id=$(jq -r '.jobs[0].job.id' "$work/jobs.json")
curl -fsS "http://$gate/v1/jobs/$id" | jq -e '.job.state == "done"' >/dev/null

# Observability: a caller-supplied request id survives the whole path —
# echoed by the gateway, forwarded to the backend, stamped on the job's
# metadata — and both tiers serve scrape-valid Prometheus expositions.
rid="smoke-rid-$$"
curl -fsS -D "$work/submit.hdr" -X POST -H "X-Pslocal-Request-Id: $rid" \
  --data-binary @cmd/cfserve/testdata/quickstart.json \
  "http://$gate/v1/jobs?k=3&oracle=greedy-mindeg" > "$work/submit.json"
grep -qi "^X-Pslocal-Request-Id: $rid" "$work/submit.hdr"
jid=$(jq -r .job.id "$work/submit.json")
for i in $(seq 1 100); do
  state=$(curl -fsS "http://$gate/v1/jobs/$jid" | jq -r .job.state)
  [ "$state" = done ] && break
  sleep 0.1
done
curl -fsS "http://$gate/v1/jobs/$jid" \
  | jq -e --arg rid "$rid" '.job.request_id == $rid' >/dev/null
curl -fsS "http://$gate/metrics" | go run ./scripts/metricscheck \
  -require cfgate_requests_total,cfgate_proxy_duration_seconds,cfgate_backend_healthy,cfgate_healthy_backends
curl -fsS "http://$b1/metrics" | go run ./scripts/metricscheck \
  -require pslocal_requests_total,pslocal_request_duration_seconds

# --- Phase 3: SIGTERM one node mid-burst, zero failed requests --------
"$work/cfload" -addr "http://$gate" -requests 200 -rate 100 -seed 23 \
  -hit-ratio 0.6 -speed 1 > "$work/summary_drain.json" & load_pid=$!
sleep 0.7
kill -TERM "$pid3"
if ! wait "$load_pid"; then
  echo "clustersmoke: drain burst failed" >&2
  cat "$work/summary_drain.json" >&2
  exit 1
fi
# The drained node exits cleanly (running jobs finished, listener done).
if ! wait "$pid3"; then
  echo "clustersmoke: SIGTERMed backend exited non-zero" >&2
  exit 1
fi
jq -e '.failed == 0' "$work/summary_drain.json" >/dev/null
curl -fsS "http://$gate/statz" > "$work/gatestatz.json"
jq -e '.rerouted > 0' "$work/gatestatz.json" >/dev/null
jq -e '.policy == "affinity"' "$work/gatestatz.json" >/dev/null
# The gateway is still ready on the surviving nodes.
curl -fsS "http://$gate/readyz" >/dev/null

sha="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
if ! git diff-index --quiet HEAD -- 2>/dev/null; then
  sha="${sha}-dirty"
fi
go run ./scripts/benchmerge -out "$out" -sha "${sha}-cluster" -quick \
  -load "$work/perf_aff.json" < /dev/null
grep -q CfloadCacheHitPct "$out"
echo "cluster smoke passed; trajectory entry ${sha}-cluster written to $out"

#!/bin/sh
# End-to-end load smoke: build cfserve and cfload, fire a small mixed
# burst (reduce + maxis + async jobs, every wire format) at a live
# server, check the SLO report and the /statz latency histograms are
# populated, replay the recorded trace twice and require byte-identical
# summaries (the determinism contract), and fold the perf report into
# the benchmark trajectory through scripts/benchmerge -load. Usage:
# scripts/loadsmoke.sh [output.json]; the entry lands under "<sha>-load"
# so it never clobbers the micro-benchmark entry for the same commit.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_gk.json}"
work="$(mktemp -d)"
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/cfserve" ./cmd/cfserve
go build -o "$work/cfload" ./cmd/cfload

addr=127.0.0.1:8357
"$work/cfserve" -addr "$addr" &
server_pid=$!
for i in $(seq 1 50); do
  curl -fsS "http://$addr/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "http://$addr/healthz" >/dev/null

# Recorded burst: the built-in three-class mix covers /v1/reduce,
# /v1/maxis and /v1/jobs across edgelist, dimacs and json bodies.
"$work/cfload" -addr "http://$addr" -requests 60 -rate 500 -seed 7 \
  -hit-ratio 0.5 -record "$work/burst.trace" -perf-out "$work/perf.json" \
  > "$work/summary.json"

jq -e '.ok == 60 and .failed == 0' "$work/summary.json" >/dev/null
jq -e '.by_endpoint.reduce > 0 and .by_endpoint.maxis > 0 and .by_endpoint.jobs > 0' \
  "$work/summary.json" >/dev/null
# The SLO report is populated and nonzero (every built-in class has an
# objective), and the jobs wait/run split came through /statz.
jq -e '.slo.eligible == 60 and .slo.attained > 0' "$work/perf.json" >/dev/null
jq -e '.latency.p99_ms > 0 and .throughput_rps > 0' "$work/perf.json" >/dev/null
jq -e '.jobs.started > 0' "$work/perf.json" >/dev/null

# The server-side latency histograms saw the traffic, split by cache
# disposition (the reused instances must have produced hits).
curl -fsS "http://$addr/statz" > "$work/statz.json"
jq -e '.latency.reduce.count > 0 and .latency.maxis.count > 0 and .latency.jobs_submit.count > 0' \
  "$work/statz.json" >/dev/null
jq -e '.latency.cache_hit.count > 0 and .latency.cache_miss.count > 0' \
  "$work/statz.json" >/dev/null
jq -e '.latency.reduce.p99_ms >= .latency.reduce.p50_ms' "$work/statz.json" >/dev/null

# The Prometheus exposition the burst populated is scrape-valid.
curl -fsS "http://$addr/metrics" | go run ./scripts/metricscheck \
  -require pslocal_requests_total,pslocal_request_duration_seconds,pslocal_jobs_submitted_total

# Determinism: two replays of the recorded trace emit byte-identical
# summary JSON.
"$work/cfload" -addr "http://$addr" -replay "$work/burst.trace" -seed 1 > "$work/replay1.json"
"$work/cfload" -addr "http://$addr" -replay "$work/burst.trace" -seed 1 > "$work/replay2.json"
cmp "$work/replay1.json" "$work/replay2.json"

sha="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
if ! git diff-index --quiet HEAD -- 2>/dev/null; then
  sha="${sha}-dirty"
fi
go run ./scripts/benchmerge -out "$out" -sha "${sha}-load" -quick \
  -load "$work/perf.json" < /dev/null
grep -q CfloadLatencyP50 "$out"
grep -q CfloadSLOAttainedPct "$out"
echo "load smoke passed; trajectory entry ${sha}-load written to $out"

#!/bin/sh
# Guards the exported facade surface: api.txt is the checked-in golden
# listing of the pslocal package's exported API (go doc -short), and CI
# fails when the surface drifts without the golden being regenerated —
# an apidiff-style tripwire making API changes an explicit, reviewed act.
#
# Usage:
#   scripts/apicheck.sh           # compare the live surface against api.txt
#   scripts/apicheck.sh -update   # regenerate api.txt from the source
set -eu
cd "$(dirname "$0")/.."

gen() { go doc -short .; }

if [ "${1:-}" = "-update" ]; then
  gen > api.txt
  echo "wrote api.txt"
  exit 0
fi

if ! gen | diff -u api.txt -; then
  echo "" >&2
  echo "exported API surface changed: review the diff above and run" >&2
  echo "  scripts/apicheck.sh -update" >&2
  echo "to bless the new surface (api.txt)." >&2
  exit 1
fi

// Command metricscheck validates a Prometheus text-format exposition
// (version 0.0.4) read from stdin: HELP/TYPE syntax, sample-line
// parsing, duplicate-series detection, and the histogram invariants
// (cumulative buckets non-decreasing in le, the +Inf bucket equal to
// _count). CI pipes `curl /metrics` from cfserve and cfgate through it
// so the expositions both binaries serve stay scrape-valid.
//
//	curl -fsS http://localhost:8355/metrics | go run ./scripts/metricscheck \
//	  -require pslocal_requests_total,pslocal_request_duration_seconds
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "metricscheck:", err)
		os.Exit(1)
	}
}

// metricNameOK follows the Prometheus data model: [a-zA-Z_:] first,
// [a-zA-Z0-9_:] after.
func metricNameOK(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// labelNameOK is metricNameOK without the colon.
func labelNameOK(s string) bool {
	return metricNameOK(s) && !strings.ContainsRune(s, ':')
}

// sample is one parsed exposition line.
type sample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// parseLabels parses the `k="v",...` interior of a label block,
// honouring the \\, \" and \n escapes.
func parseLabels(s string, line int) (map[string]string, error) {
	labels := make(map[string]string)
	i := 0
	for i < len(s) {
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("line %d: label block %q: missing '='", line, s)
		}
		key := s[i : i+eq]
		if !labelNameOK(key) {
			return nil, fmt.Errorf("line %d: invalid label name %q", line, key)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return nil, fmt.Errorf("line %d: label %q value is not quoted", line, key)
		}
		i++
		var val strings.Builder
		closed := false
		for i < len(s) {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("line %d: dangling escape in label %q", line, key)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("line %d: bad escape \\%c in label %q", line, s[i+1], key)
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("line %d: unterminated label value for %q", line, key)
		}
		if _, dup := labels[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate label %q", line, key)
		}
		labels[key] = val.String()
		if i < len(s) {
			if s[i] != ',' {
				return nil, fmt.Errorf("line %d: expected ',' between labels, got %q", line, s[i:])
			}
			i++
		}
	}
	return labels, nil
}

// parseSample parses one non-comment line.
func parseSample(text string, line int) (sample, error) {
	s := sample{line: line}
	rest := text
	if brace := strings.IndexByte(text, '{'); brace >= 0 {
		s.name = text[:brace]
		end := strings.LastIndexByte(text, '}')
		if end < brace {
			return s, fmt.Errorf("line %d: unbalanced label braces", line)
		}
		var err error
		if s.labels, err = parseLabels(text[brace+1:end], line); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(text[end+1:])
	} else {
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return s, fmt.Errorf("line %d: want 'name value', got %q", line, text)
		}
		s.name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	if !metricNameOK(s.name) {
		return s, fmt.Errorf("line %d: invalid metric name %q", line, s.name)
	}
	// The value may be followed by an optional timestamp; take field one.
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("line %d: want 'value [timestamp]' after the name, got %q", line, rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("line %d: bad sample value %q", line, fields[0])
	}
	s.value = v
	return s, nil
}

// seriesKey canonicalizes name + labels for duplicate detection.
func seriesKey(name string, labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// histogramBase maps a histogram sample name onto its family name, or
// "" when the sample does not belong to a histogram suffix.
func histogramBase(name string) (base, suffix string) {
	for _, sfx := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, sfx) {
			return strings.TrimSuffix(name, sfx), sfx
		}
	}
	return "", ""
}

// bucketSeries accumulates one histogram series' buckets for the
// cumulativity check.
type bucketSeries struct {
	les    []float64
	counts []float64
	count  float64 // the _count sample
	hasCnt bool
}

func run() error {
	require := flag.String("require", "", "comma-separated metric families that must be present")
	flag.Parse()

	types := make(map[string]string)  // family -> TYPE
	helped := make(map[string]bool)   // family -> HELP seen
	seen := make(map[string]int)      // series key -> first line
	families := make(map[string]bool) // every family a sample appeared under
	hists := make(map[string]*bucketSeries)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	samples := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(text)
			if len(fields) < 2 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			if len(fields) < 3 || !metricNameOK(fields[2]) {
				return fmt.Errorf("line %d: malformed %s line: %q", line, fields[1], text)
			}
			name := fields[2]
			if fields[1] == "HELP" {
				if helped[name] {
					return fmt.Errorf("line %d: second HELP for %s", line, name)
				}
				helped[name] = true
				continue
			}
			if len(fields) != 4 {
				return fmt.Errorf("line %d: TYPE wants exactly 'TYPE name kind': %q", line, text)
			}
			kind := fields[3]
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown TYPE %q for %s", line, kind, name)
			}
			if prev, ok := types[name]; ok && prev != kind {
				return fmt.Errorf("line %d: %s re-typed from %s to %s", line, name, prev, kind)
			}
			types[name] = kind
			continue
		}
		s, err := parseSample(text, line)
		if err != nil {
			return err
		}
		samples++
		key := seriesKey(s.name, s.labels)
		if first, dup := seen[key]; dup {
			return fmt.Errorf("line %d: duplicate series %s (first at line %d)", line, key, first)
		}
		seen[key] = line

		family := s.name
		if base, sfx := histogramBase(s.name); base != "" && types[base] == "histogram" {
			family = base
			// Key the histogram series by its labels minus le.
			le, hasLE := s.labels["le"]
			rest := make(map[string]string, len(s.labels))
			for k, v := range s.labels {
				if k != "le" {
					rest[k] = v
				}
			}
			hkey := seriesKey(base, rest)
			hs := hists[hkey]
			if hs == nil {
				hs = &bucketSeries{}
				hists[hkey] = hs
			}
			switch sfx {
			case "_bucket":
				if !hasLE {
					return fmt.Errorf("line %d: histogram bucket without an le label: %s", line, text)
				}
				bound, err := parseLE(le)
				if err != nil {
					return fmt.Errorf("line %d: %v", line, err)
				}
				hs.les = append(hs.les, bound)
				hs.counts = append(hs.counts, s.value)
			case "_count":
				hs.count = s.value
				hs.hasCnt = true
			}
		} else if _, ok := s.labels["le"]; ok && types[s.name] != "histogram" {
			return fmt.Errorf("line %d: le label on non-histogram series %s", line, s.name)
		}
		families[family] = true
		if t, ok := types[family]; !ok {
			return fmt.Errorf("line %d: sample %s has no preceding TYPE", line, s.name)
		} else if t == "counter" && s.value < 0 {
			return fmt.Errorf("line %d: negative counter sample %s = %g", line, s.name, s.value)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples on stdin")
	}

	// Histogram invariants: at least one +Inf bucket per series, bucket
	// counts non-decreasing in le order, +Inf equal to _count.
	for hkey, hs := range hists {
		if len(hs.les) == 0 {
			return fmt.Errorf("histogram %s has no buckets", hkey)
		}
		type pair struct{ le, n float64 }
		pairs := make([]pair, len(hs.les))
		for i := range hs.les {
			pairs[i] = pair{hs.les[i], hs.counts[i]}
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].le < pairs[j].le })
		last := pairs[len(pairs)-1]
		if !isInf(last.le) {
			return fmt.Errorf("histogram %s is missing its +Inf bucket", hkey)
		}
		for i := 1; i < len(pairs); i++ {
			if pairs[i].n < pairs[i-1].n {
				return fmt.Errorf("histogram %s buckets not cumulative: le=%g count %g < le=%g count %g",
					hkey, pairs[i].le, pairs[i].n, pairs[i-1].le, pairs[i-1].n)
			}
		}
		if hs.hasCnt && last.n != hs.count {
			return fmt.Errorf("histogram %s: +Inf bucket %g != _count %g", hkey, last.n, hs.count)
		}
	}

	var missing []string
	for _, name := range strings.Split(*require, ",") {
		if name = strings.TrimSpace(name); name != "" && !families[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("required families missing: %s", strings.Join(missing, ", "))
	}
	fmt.Printf("ok: %d samples, %d families, %d histogram series\n", samples, len(families), len(hists))
	return nil
}

// parseLE parses a bucket bound ("+Inf" or a float).
func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le value %q", s)
	}
	return v, nil
}

func isInf(v float64) bool { return math.IsInf(v, 1) }

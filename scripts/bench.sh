#!/bin/sh
# Runs the conflict-graph construction and reduction benchmarks and writes
# their results as JSON (default BENCH_gk.json) so future PRs have a perf
# trajectory to compare against. Usage: scripts/bench.sh [output.json]
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_gk.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' \
  -bench 'ConflictGraphBuild|ImplicitFirstFit|FirstFitScratch|ReduceImplicit' \
  -benchmem -count=1 . | tee "$tmp"

awk '
  /^Benchmark/ {
    name = $1; iters = $2; ns = ""; bpo = "null"; apo = "null"
    for (i = 3; i < NF; i++) {
      if ($(i+1) == "ns/op")     ns  = $i
      if ($(i+1) == "B/op")      bpo = $i
      if ($(i+1) == "allocs/op") apo = $i
    }
    if (ns == "") next
    printf "%s  {\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}", sep, name, iters, ns, bpo, apo
    sep = ",\n"
  }
  BEGIN { print "[" }
  END   { print "\n]" }
' "$tmp" > "$out"
echo "wrote $out"

#!/bin/sh
# Runs the hot-path benchmarks (conflict-graph construction, reduction,
# oracle portfolio, SLOCAL simulator, Moser-Tardos splitting, span
# recording) and appends
# the results to the perf trajectory (default BENCH_gk.json): a stable
# {"schema":1,"history":[...]} document with one entry per run, keyed by
# git SHA (suffixed "-dirty" when the tree has uncommitted changes), so
# the cross-PR trajectory accumulates instead of being overwritten
# (scripts/benchmerge does the parsing and merging). Usage:
# scripts/bench.sh [output.json]; BENCH_QUICK=1 selects the 1-iteration
# CI mode, flagged in the entry so quick numbers are never mistaken for
# full measurements.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_gk.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

benchtime=""
quickflag=""
if [ "${BENCH_QUICK:-0}" = "1" ]; then
  benchtime="-benchtime=1x"
  quickflag="-quick"
fi

# No pipes around go test: plain sh has no pipefail, and a masked bench
# failure must not record a partial trajectory entry.
# shellcheck disable=SC2086  # benchtime is intentionally word-split
go test -run '^$' \
  -bench 'ConflictGraphBuild|ImplicitFirstFit|FirstFitScratch|ReduceImplicit|PortfolioOracle|BallCarving|NetworkDecomposition|SLOCALGreedyMIS|SolverReduce' \
  -benchmem -count=1 $benchtime . > "$tmp"
go test -run '^$' -bench 'MoserTardosLongResampling' -benchmem -count=1 $benchtime \
  ./internal/splitting/ >> "$tmp"
go test -run '^$' -bench 'OracleKernels|BipartiteExact|GreedyWeightedDense' -benchmem -count=1 $benchtime \
  ./internal/maxis/ >> "$tmp"
go test -run '^$' -bench 'SolverCacheHitAllocs|SolverMaxISReaderHot' -benchmem -count=1 $benchtime \
  ./internal/solver/ >> "$tmp"
go test -run '^$' -bench 'SpanRecord' -benchmem -count=1 $benchtime \
  ./internal/obs/ >> "$tmp"
cat "$tmp"

sha="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
if ! git diff-index --quiet HEAD -- 2>/dev/null; then
  sha="${sha}-dirty"
fi
# The alloc gate holds the zero-allocation serve line: if allocs/op on a
# serve-path benchmark grows vs the recorded trajectory, the merge fails.
# BENCH_LOAD_PERF can point at a cfload -perf-out report to fold Cfload*
# load-test results into the same entry (scripts/loadsmoke.sh records its
# own "<sha>-load" entry instead, so the two paths never collide).
loadflag=""
if [ -n "${BENCH_LOAD_PERF:-}" ]; then
  loadflag="-load $BENCH_LOAD_PERF"
fi
# shellcheck disable=SC2086  # quickflag/loadflag are intentionally word-split
go run ./scripts/benchmerge -out "$out" -sha "$sha" $quickflag $loadflag \
  -alloc-gate 'SolverCacheHitAllocs|SolverMaxISReaderHot|SpanRecord' < "$tmp"
echo "wrote $out"

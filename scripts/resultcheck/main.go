// Command resultcheck verifies that a persisted reduction-result
// document round-trips through graphio.ReadResult: it parses the file,
// checks the document is non-degenerate, and prints a one-line summary.
// The CI jobs-smoke job runs it against the result document a cfserve
// job persisted, pinning the store format end to end.
//
//	go run ./scripts/resultcheck <path/to/id.result.json>
package main

import (
	"fmt"
	"os"

	"pslocal/internal/graphio"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "resultcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	if len(os.Args) != 2 {
		return fmt.Errorf("usage: resultcheck <result-document.json>")
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		return err
	}
	defer f.Close()
	res, err := graphio.ReadResult(f)
	if err != nil {
		return err
	}
	if res.TotalColors < 1 || len(res.Phases) < 1 || len(res.Multicoloring) < 1 {
		return fmt.Errorf("degenerate result document: colors=%d phases=%d vertices=%d",
			res.TotalColors, len(res.Phases), len(res.Multicoloring))
	}
	fmt.Printf("ok: k=%d colors=%d phases=%d vertices=%d\n",
		res.K, res.TotalColors, len(res.Phases), len(res.Multicoloring))
	return nil
}

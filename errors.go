package pslocal

// errors.go exports the typed error taxonomy of the facade so callers
// branch with errors.Is instead of matching message strings. cmd/cfserve
// maps these onto HTTP status codes; library callers use them to tell a
// bad instance from a bad configuration from an abandoned call.

import (
	"pslocal/internal/core"
	"pslocal/internal/graphio"
	"pslocal/internal/maxis"
	"pslocal/internal/slocal"
	"pslocal/internal/solver"
)

var (
	// ErrCancelled reports a Solver call abandoned through its context.
	// Errors matching it also match the underlying context.Canceled or
	// context.DeadlineExceeded under errors.Is.
	ErrCancelled = solver.ErrCancelled
	// ErrUnknownOracle reports an oracle name with no registered factory
	// (WithOracle, LookupOracle, the cfserve oracle query parameter).
	ErrUnknownOracle = maxis.ErrUnknownOracle
	// ErrReadInstance reports a SolveReader/MaxISReader body read that
	// failed before parsing; the cause stays reachable via errors.As.
	ErrReadInstance = solver.ErrReadInstance
	// ErrMalformedInput reports instance bytes that do not parse in the
	// requested (or sniffed) graphio format.
	ErrMalformedInput = graphio.ErrFormat
	// ErrDuplicateEdge reports an instance listing the same (hyper)edge
	// twice — rejected rather than silently merged.
	ErrDuplicateEdge = graphio.ErrDuplicateEdge
	// ErrUnsupportedFormat reports a format/substrate combination with no
	// encoding (hypergraphs have no DIMACS representation).
	ErrUnsupportedFormat = graphio.ErrUnsupported
	// ErrUnknownFormat reports an unrecognised format name.
	ErrUnknownFormat = graphio.ErrUnknownFormat
	// ErrBadK reports a non-positive palette size.
	ErrBadK = core.ErrBadK
	// ErrNoOracle reports reduce options that configure no solving mode.
	ErrNoOracle = core.ErrNoOracle
	// ErrOracleNotIndependent reports an oracle that returned a
	// non-independent set — a contract violation, surfaced rather than
	// silently miscoloured.
	ErrOracleNotIndependent = core.ErrOracleNotIndependent
	// ErrNoProgress reports a reduction phase that made no edge happy.
	ErrNoProgress = core.ErrNoProgress
	// ErrPhaseBudget reports a reduction exceeding its phase bound.
	ErrPhaseBudget = core.ErrPhaseBudget
	// ErrBudgetExceeded reports an exact solve that ran out of its branch
	// budget; the returned set is the best found so far.
	ErrBudgetExceeded = maxis.ErrBudgetExceeded
	// ErrOracleInapplicable reports a partial oracle declining an
	// instance outside its class (bipartite-exact on a non-bipartite
	// graph). Inside a portfolio the member just drops out of the race;
	// standalone it surfaces here.
	ErrOracleInapplicable = maxis.ErrInapplicable
	// ErrBadDelta reports a non-positive carving growth slack.
	ErrBadDelta = slocal.ErrBadDelta
	// ErrBadOrder reports a processing order that is not a permutation of
	// the node set.
	ErrBadOrder = slocal.ErrBadOrder
)

# Developer entry points; CI runs the same steps (.github/workflows/ci.yml).

.PHONY: build test race vet fmt bench

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...

fmt:
	gofmt -l .

# bench runs the G_k construction and Reduce benchmarks and writes
# BENCH_gk.json so successive PRs have a perf trajectory.
bench:
	./scripts/bench.sh

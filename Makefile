# Developer entry points; CI runs the same steps (.github/workflows/ci.yml).

.PHONY: build test race vet fmt api api-update bench bench-quick load-smoke cluster-smoke

build:
	go build ./...

# api compares the exported facade surface against the checked-in golden
# api.txt; api-update blesses a reviewed surface change.
api:
	./scripts/apicheck.sh

api-update:
	./scripts/apicheck.sh -update

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...

fmt:
	gofmt -l .

# bench runs the hot-path benchmarks and appends this run to the
# BENCH_gk.json history (keyed by git SHA) so successive PRs have a perf
# trajectory. bench-quick is the 1-iteration CI mode, same schema.
bench:
	./scripts/bench.sh

bench-quick:
	BENCH_QUICK=1 ./scripts/bench.sh

# load-smoke drives a small cfload burst against a live cfserve, checks
# the SLO report and /statz latency histograms, verifies replay
# determinism, and records a "<sha>-load" entry in BENCH_gk.json.
load-smoke:
	./scripts/loadsmoke.sh

# cluster-smoke stands up three cfserve nodes sharing a job store behind
# cfgate, proves affinity routing beats a round-robin control on
# cache-hit ratio, SIGTERMs one node mid-burst with zero failed
# requests, and records a "<sha>-cluster" entry in BENCH_gk.json.
cluster-smoke:
	./scripts/clustersmoke.sh

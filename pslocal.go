// Package pslocal is the public API of this repository, a full
// reproduction of "P-SLOCAL-Completeness of Maximum Independent Set
// Approximation" (Yannic Maus, PODC 2019). It re-exports the supported
// surface of the internal packages:
//
//   - hypergraphs and conflict-free (multi)colourings, the source problem
//     of the paper's reduction;
//   - the conflict graph G_k of Section 2 with both directions of the
//     Lemma 2.1 correspondence;
//   - the Theorem 1.1 reduction (conflict-free multicolouring via an
//     approximate MaxIS oracle);
//   - the MaxIS oracle suite (exact, greedy family, Ramsey clique
//     removal);
//   - the LOCAL and SLOCAL model simulators with the paper's baseline
//     algorithms, including the ball-carving (1+δ)-approximation that
//     realises the containment direction.
//
// The entry point is the Solver (solver.go): constructed once via
// functional options, it owns the engine configuration, the oracle
// selection, a bounded admission gate and an instance cache, and every
// method takes a per-call context. Quick start (see examples/quickstart
// for a runnable version):
//
//	h, planted, _ := pslocal.PlantedCF(60, 24, 3, 3, 5, rng)
//	sv := pslocal.NewSolver(pslocal.WithK(3))
//	res, _ := sv.Solve(ctx, h)
//	err := pslocal.VerifyReduction(h, res) // nil: conflict-free multicolouring
//	_ = planted
//
// The flat solve functions (Reduce, ExactMaxIS, BallCarvingMaxIS, ...)
// predate the Solver and remain as thin deprecated wrappers.
package pslocal

import (
	"io"
	"math/rand"

	"pslocal/internal/cfcolor"
	"pslocal/internal/core"
	"pslocal/internal/domset"
	"pslocal/internal/engine"
	"pslocal/internal/experiments"
	"pslocal/internal/graph"
	"pslocal/internal/graphio"
	"pslocal/internal/hypergraph"
	"pslocal/internal/local"
	"pslocal/internal/maxis"
	"pslocal/internal/slocal"
	"pslocal/internal/splitting"
	"pslocal/internal/verify"
)

// Graph types and generators (substrate S1).
type (
	// Graph is an immutable simple undirected graph.
	Graph = graph.Graph
	// GraphBuilder accumulates edges for a Graph.
	GraphBuilder = graph.Builder
)

// NewGraphBuilder returns a builder for a graph on n nodes.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// MaxVertexWeight is the largest admissible vertex weight (shared by
// graphs and hypergraphs); the cap keeps every solver quantity in int64.
const MaxVertexWeight = graph.MaxWeight

// GraphWithWeights returns a graph sharing g's adjacency structure with
// the given vertex weights (nil restores the unweighted form; an
// all-unit vector normalises to unweighted). Weighted graphs flow
// through every oracle and the Solver unchanged — the objective becomes
// total set weight.
func GraphWithWeights(g *Graph, ws []int64) (*Graph, error) { return graph.WithWeights(g, ws) }

// GnP returns an Erdős–Rényi random graph.
func GnP(n int, p float64, rng *rand.Rand) *Graph { return graph.GnP(n, p, rng) }

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int) *Graph { return graph.Grid(rows, cols) }

// Cycle returns the n-cycle.
func Cycle(n int) *Graph { return graph.Cycle(n) }

// Hypergraph types and generators (substrate S2).
type (
	// Hypergraph is an immutable hypergraph with indexed hyperedges.
	Hypergraph = hypergraph.Hypergraph
)

// NewHypergraph builds a hypergraph on n vertices from hyperedges.
func NewHypergraph(n int, edges [][]int32) (*Hypergraph, error) {
	return hypergraph.New(n, edges)
}

// NewWeightedHypergraph builds a vertex-weighted hypergraph; a nil or
// all-unit weight vector yields the same instance as NewHypergraph.
func NewWeightedHypergraph(n int, edges [][]int32, ws []int64) (*Hypergraph, error) {
	return hypergraph.NewWeighted(n, edges, ws)
}

// HypergraphWithWeights returns a hypergraph sharing h's edge structure
// with the given vertex weights (nil restores the unweighted form).
func HypergraphWithWeights(h *Hypergraph, ws []int64) (*Hypergraph, error) {
	return hypergraph.WithWeights(h, ws)
}

// PlantedCF returns an almost-uniform hypergraph with a hidden
// conflict-free k-colouring — the instance family the reduction's analysis
// assumes (see DESIGN.md, Substitutions).
func PlantedCF(n, m, k, sizeLo, sizeHi int, rng *rand.Rand) (*Hypergraph, []int32, error) {
	return hypergraph.PlantedCF(n, m, k, sizeLo, sizeHi, rng)
}

// IntervalHypergraph returns a [DN18]-style interval hypergraph.
func IntervalHypergraph(n, m, lenLo, lenHi int, rng *rand.Rand) (*Hypergraph, error) {
	return hypergraph.Interval(n, m, lenLo, lenHi, rng)
}

// Graph I/O (the internal/graphio subsystem). Graphs and hypergraphs
// read and write in three interchangeable formats; the same files work
// with the CLI -in/-out flags and as cmd/cfserve request bodies.

// GraphFormat identifies a supported instance encoding.
type GraphFormat = graphio.Format

// The supported formats. FormatAuto sniffs the input on reads and
// selects the edge list on writes.
const (
	// FormatAuto sniffs the format from the input's first decisive line.
	FormatAuto = graphio.FormatAuto
	// FormatEdgeList is the native "graph n m" / "hypergraph n m" text
	// format.
	FormatEdgeList = graphio.FormatEdgeList
	// FormatDIMACS is the DIMACS .col format (graphs only).
	FormatDIMACS = graphio.FormatDIMACS
	// FormatJSON is the single-object JSON document format.
	FormatJSON = graphio.FormatJSON
)

// ParseGraphFormat maps a flag spelling ("auto", "edgelist", "dimacs",
// "json") onto a GraphFormat.
func ParseGraphFormat(s string) (GraphFormat, error) { return graphio.ParseFormat(s) }

// ReadGraph parses a graph from r (see ExampleReadGraph).
func ReadGraph(r io.Reader, f GraphFormat) (*Graph, error) { return graphio.ReadGraph(r, f) }

// WriteGraph writes g to w; the output round-trips bit-identically
// through ReadGraph.
func WriteGraph(w io.Writer, g *Graph, f GraphFormat) error { return graphio.WriteGraph(w, g, f) }

// ReadHypergraph parses a hypergraph from r (DIMACS is graphs-only).
func ReadHypergraph(r io.Reader, f GraphFormat) (*Hypergraph, error) {
	return graphio.ReadHypergraph(r, f)
}

// WriteHypergraph writes h to w.
func WriteHypergraph(w io.Writer, h *Hypergraph, f GraphFormat) error {
	return graphio.WriteHypergraph(w, h, f)
}

// WriteResult writes a reduction result as the JSON document shared by
// the cfreduce -out flag and the cfserve response body.
func WriteResult(w io.Writer, res *ReduceResult) error { return graphio.WriteResult(w, res) }

// ReadResult parses a reduction-result document written by WriteResult.
func ReadResult(r io.Reader) (*ReduceResult, error) { return graphio.ReadResult(r) }

// Colourings (substrate S11).
type (
	// Coloring is a partial vertex colouring (0 = uncoloured).
	Coloring = cfcolor.Coloring
	// Multicoloring assigns colour sets to vertices.
	Multicoloring = cfcolor.Multicoloring
)

// IsConflictFree reports whether every edge of h is happy under c.
func IsConflictFree(h *Hypergraph, c Coloring) bool { return cfcolor.IsConflictFree(h, c) }

// IsConflictFreeMulti reports whether every edge of h is happy under mc.
func IsConflictFreeMulti(h *Hypergraph, mc Multicoloring) bool {
	return cfcolor.IsConflictFreeMulti(h, mc)
}

// DyadicIntervalColoring returns the log-colour conflict-free colouring
// for all interval hypergraphs on n line vertices.
func DyadicIntervalColoring(n int) Coloring { return cfcolor.DyadicIntervalColoring(n) }

// The execution engine (options layer). EngineOptions carry the worker
// pool width and cancellation context through conflict-graph construction,
// the reduction and the experiment harness; the zero value is serial.
type EngineOptions = engine.Options

// ParallelEngine returns EngineOptions selecting GOMAXPROCS workers.
func ParallelEngine() EngineOptions { return engine.Parallel() }

// The conflict graph and Lemma 2.1 (the paper's Section 2).
type (
	// Triple is a conflict-graph node (e, v, c).
	Triple = core.Triple
	// ConflictIndex numbers the triples of G_k densely.
	ConflictIndex = core.Index
)

// NewConflictIndex builds the triple numbering of G_k.
func NewConflictIndex(h *Hypergraph, k int) (*ConflictIndex, error) { return core.NewIndex(h, k) }

// BuildConflictGraph materialises G_k on the serial path.
func BuildConflictGraph(ix *ConflictIndex) (*Graph, error) { return core.Build(ix) }

// BuildConflictGraphOpts materialises G_k on opts' worker pool; the CSR is
// identical to the serial path for every worker count.
func BuildConflictGraphOpts(ix *ConflictIndex, opts EngineOptions) (*Graph, error) {
	return core.BuildOpts(ix, opts)
}

// ConflictAdjacent answers adjacency in G_k straight from the definition.
func ConflictAdjacent(ix *ConflictIndex, t1, t2 Triple) (bool, error) {
	return core.Adjacent(ix, t1, t2)
}

// ColoringToIS implements Lemma 2.1(a).
func ColoringToIS(ix *ConflictIndex, f Coloring) ([]Triple, error) {
	return core.ColoringToIS(ix, f)
}

// ISToColoring implements Lemma 2.1(b).
func ISToColoring(ix *ConflictIndex, is []Triple) (Coloring, error) {
	return core.ISToColoring(ix, is)
}

// The Theorem 1.1 reduction.
type (
	// ReduceOptions configures the reduction.
	ReduceOptions = core.Options
	// ReduceResult is the reduction outcome with per-phase statistics.
	ReduceResult = core.Result
	// PhaseStat records one reduction phase.
	PhaseStat = core.PhaseStat
	// ReduceMode selects the per-phase MaxIS strategy.
	ReduceMode = core.Mode
)

// Reduction modes.
const (
	// ModeOracle materialises G_k and runs ReduceOptions.Oracle on it.
	ModeOracle = core.ModeOracle
	// ModeExactHinted solves each phase exactly (λ = 1).
	ModeExactHinted = core.ModeExactHinted
	// ModeImplicitFirstFit greedily solves the implicit G_k (scalable).
	ModeImplicitFirstFit = core.ModeImplicitFirstFit
)

// Reduce runs conflict-free multicolouring via iterated approximate MaxIS.
//
// Deprecated: construct a Solver and call [Solver.Solve] — it carries the
// configuration once, admits a per-call context, and shares the instance
// cache: NewSolver(WithK(3)).Solve(ctx, h).
func Reduce(h *Hypergraph, opts ReduceOptions) (*ReduceResult, error) {
	return core.Reduce(nil, h, opts)
}

// PhaseBound returns the paper's ρ = λ·ln(m)+1 phase bound.
func PhaseBound(lambda float64, m int) int { return core.PhaseBound(lambda, m) }

// LocalReduceResult is the outcome of the distributed randomized
// pipeline, with LOCAL-round accounting.
type LocalReduceResult = core.LocalResult

// ReduceLocalRandomized runs the fully distributed (LOCAL model,
// randomized) reduction: Luby's MIS over the implicit conflict graph,
// simulated on H's incidence structure, phase by phase.
func ReduceLocalRandomized(h *Hypergraph, k int, seed int64) (*LocalReduceResult, error) {
	return core.ReduceLocalRandomized(nil, h, k, seed)
}

// MaxIS oracles (substrate S5).
type (
	// Oracle is a MaxIS approximation algorithm.
	Oracle = maxis.Oracle
	// ExactOptions tunes the exact solver.
	ExactOptions = maxis.ExactOptions
)

// OracleFactory constructs a named oracle; deterministic oracles ignore
// the seed.
type OracleFactory = maxis.Factory

// OraclePortfolio races several member oracles per Solve call over the
// engine worker pool and keeps the largest independent set (the oracle
// execution layer; see DESIGN.md). The registry also resolves
// "portfolio:<a>,<b>,..." names to portfolios via LookupOracle.
type OraclePortfolio = maxis.Portfolio

// NewOraclePortfolio builds a portfolio over the given members; configure
// its fan-out with SetEngine (a non-zero ReduceOptions.Engine overrides
// it inside Reduce).
func NewOraclePortfolio(members ...Oracle) (*OraclePortfolio, error) {
	return maxis.NewPortfolio(members...)
}

// RegisterOracle adds a named oracle to the registry.
func RegisterOracle(name string, f OracleFactory) error { return maxis.Register(name, f) }

// LookupOracle constructs a registered oracle by name.
func LookupOracle(name string, seed int64) (Oracle, error) { return maxis.Lookup(name, seed) }

// OracleNames lists the registered oracle names in ascending order.
func OracleNames() []string { return maxis.Names() }

// IndependentSetWeight returns the total vertex weight of nodes:
// Σ w(v) on weighted graphs, |nodes| otherwise. It never allocates.
func IndependentSetWeight(g *Graph, nodes []int32) int64 { return maxis.SetWeight(g, nodes) }

// VerifyWeightedIndependentSet checks nodes is an independent set of g
// whose total weight equals reported.
func VerifyWeightedIndependentSet(g *Graph, nodes []int32, reported int64) error {
	return maxis.VerifyWeighted(g, nodes, reported)
}

// GreedyWeightedMaxIS returns the weight/(degree+1)-ordered greedy
// independent set — the weighted counterpart of GreedyMaxIS (identical
// to it on unweighted graphs up to tie order).
func GreedyWeightedMaxIS(g *Graph) []int32 { return maxis.GreedyWeighted(g) }

// ExactMaxIS returns a maximum independent set.
//
// Deprecated: use NewSolver(WithOracle("exact")).MaxIS(ctx, g) — the
// Solver path admits a context, so the branch-and-bound cancels
// cooperatively.
func ExactMaxIS(g *Graph) ([]int32, error) { return maxis.Exact(g) }

// GreedyMaxIS returns the min-degree greedy independent set.
//
// Deprecated: use NewSolver().MaxIS(ctx, g) — "greedy-mindeg" is the
// Solver's default MaxIS oracle.
func GreedyMaxIS(g *Graph) []int32 { return maxis.GreedyMinDegree(g) }

// CliqueRemovalMaxIS returns the Boppana–Halldórsson independent set.
//
// Deprecated: use NewSolver(WithOracle("clique-removal")).MaxIS(ctx, g).
func CliqueRemovalMaxIS(g *Graph) []int32 { return maxis.CliqueRemoval(g) }

// Model simulators (substrates S3, S4, S6, S7).
type (
	// LocalOptions configures a LOCAL model run.
	LocalOptions = local.Options
	// LocalResult reports rounds, messages and outputs.
	LocalResult = local.Result
	// CarvingOptions configures the SLOCAL ball-carving MaxIS.
	CarvingOptions = slocal.CarvingOptions
	// CarvingResult reports the carved independent set and locality.
	CarvingResult = slocal.CarvingResult
	// Decomposition is a (C, D) network decomposition.
	Decomposition = slocal.Decomposition
)

// LubyMIS runs Luby's randomized MIS in the LOCAL simulator.
func LubyMIS(g *Graph, seed int64, opts LocalOptions) ([]int32, *LocalResult, error) {
	return local.LubyMIS(g, seed, opts)
}

// SLOCALGreedyMIS runs the locality-1 greedy MIS of the paper's
// introduction and reports the measured locality.
func SLOCALGreedyMIS(g *Graph, order []int32) ([]int32, *slocal.Result, error) {
	return slocal.GreedyMIS(g, order)
}

// BallCarvingMaxIS runs the SLOCAL (1+δ)-approximation (containment
// direction of Theorem 1.1).
//
// Deprecated: use NewSolver(WithCarving(delta)).MaxIS(ctx, g) — the same
// algorithm behind the Solver handle, with budgeted per-ball exact solves
// and cooperative cancellation. Direct slocal access via this wrapper
// remains for callers that need a custom Inner solver or Order.
func BallCarvingMaxIS(g *Graph, opts CarvingOptions) (*CarvingResult, error) {
	return slocal.BallCarvingMaxIS(g, opts)
}

// NetworkDecomposition carves a (O(log n), O(log n)) decomposition.
func NetworkDecomposition(g *Graph, order []int32) (*Decomposition, error) {
	return slocal.NetworkDecomposition(g, order)
}

// IdentityOrder returns 0..n-1, the default SLOCAL processing order.
func IdentityOrder(n int) []int32 { return slocal.IdentityOrder(n) }

// DecompositionColouring derandomizes (Δ+1)-colouring through a network
// decomposition (the Section 1 blueprint).
func DecompositionColouring(g *Graph, d *Decomposition) ([]int32, error) {
	return slocal.DecompositionColouring(g, d)
}

// Sibling P-SLOCAL-complete problems (paper Section 1 list).

// GreedyDominatingSet returns a (ln(Δ+1)+1)-approximate dominating set.
func GreedyDominatingSet(g *Graph) ([]int32, error) { return domset.GreedyDominatingSet(g) }

// WeakSplitting 2-colours h so no hyperedge is monochromatic, via
// Moser–Tardos resampling.
func WeakSplitting(h *Hypergraph, rng *rand.Rand) ([]int32, error) {
	return splitting.MoserTardos(h, rng, 0)
}

// Verification.

// VerifyIndependentSet checks independence in g.
func VerifyIndependentSet(g *Graph, nodes []int32) error { return verify.IndependentSet(g, nodes) }

// VerifyReduction checks a reduction result end to end against its input.
func VerifyReduction(h *Hypergraph, res *ReduceResult) error { return verify.ReductionResult(h, res) }

// VerifyConflictFreeMulti checks a multicolouring.
func VerifyConflictFreeMulti(h *Hypergraph, mc Multicoloring) error {
	return verify.ConflictFreeMulti(h, mc)
}

// Experiments (the reproduction harness).
type (
	// ExperimentConfig seeds and sizes the experiment grids.
	ExperimentConfig = experiments.Config
	// ExperimentTable is a rendered experiment.
	ExperimentTable = experiments.Table
)

// AllExperiments regenerates tables E1–E10.
func AllExperiments(cfg ExperimentConfig) ([]*ExperimentTable, error) {
	return experiments.AllTables(cfg)
}

// AllFigures regenerates the figure-equivalents F1–F3.
func AllFigures(cfg ExperimentConfig) ([]*ExperimentTable, error) {
	return experiments.AllFigures(cfg)
}

// AllAblations regenerates the ablation tables A1–A3.
func AllAblations(cfg ExperimentConfig) ([]*ExperimentTable, error) {
	return experiments.AllAblations(cfg)
}

// RenderTables renders tables sequentially with blank-line separators.
func RenderTables(w io.Writer, tables []*ExperimentTable) error {
	for i, t := range tables {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

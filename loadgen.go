package pslocal

// loadgen.go re-exports the load-generation and trace-replay layer
// (internal/loadgen) behind cmd/cfload: a seeded LoadSpec expands into a
// deterministic open-loop request schedule (Poisson/Gamma/Weibull
// arrivals over a weighted class mix, with instance reuse steering the
// server's cache-hit ratio), a LoadClient executes it against a live
// cfserve, and the run splits into a replay-stable LoadSummary (counts
// plus outcome digests — byte-identical across replays of one trace)
// and a wall-clock LoadPerf report (latency quantiles, throughput,
// per-class SLO attainment, the jobs queue-wait/run split).
//
//	trace, err := pslocal.PlanLoad(pslocal.LoadSpec{
//		Seed: 7, Requests: 500, Rate: 200, Arrival: "poisson",
//		HitRatio: 0.5, Classes: []pslocal.LoadClass{...},
//	})
//	rep, err := (&pslocal.LoadClient{BaseURL: "http://localhost:8355"}).Run(ctx, trace)
//	err = pslocal.WriteLoadTrace(f, trace)   // versioned JSONL, replayable
//
// Traces store generator directives rather than bodies, so a replay
// rebuilds byte-identical requests (and therefore the same server-side
// content-hash cache keys) from a few hundred bytes per record.

import (
	"io"

	"pslocal/internal/loadgen"
)

type (
	// LoadSpec is a seeded workload description: request count, arrival
	// process, target hit ratio, and the weighted LoadClass mix.
	LoadSpec = loadgen.Spec
	// LoadClass is one workload class: endpoint, instance generator,
	// wire formats, solve parameters and an optional latency SLO.
	LoadClass = loadgen.Class
	// LoadParams are the per-request solve parameters a class carries.
	LoadParams = loadgen.Params
	// LoadTrace is a planned or executed request schedule.
	LoadTrace = loadgen.Trace
	// LoadRecord is one scheduled request in a trace.
	LoadRecord = loadgen.Record
	// LoadOutcome is the observed result of one executed request.
	LoadOutcome = loadgen.Outcome
	// LoadClient executes traces against one server (open-loop).
	LoadClient = loadgen.Client
	// LoadReport bundles an executed trace with its LoadSummary and
	// LoadPerf.
	LoadReport = loadgen.Report
	// LoadSummary is the deterministic outcome summary of a run.
	LoadSummary = loadgen.Summary
	// LoadPerf is the wall-clock timing report of a run.
	LoadPerf = loadgen.Perf
)

// Arrival distributions for LoadSpec.Arrival.
const (
	LoadArrivalPoisson = loadgen.ArrivalPoisson
	LoadArrivalGamma   = loadgen.ArrivalGamma
	LoadArrivalWeibull = loadgen.ArrivalWeibull
)

var (
	// ErrLoadSpec reports an invalid LoadSpec (empty mix, bad arrival
	// distribution, endpoint/instance-kind mismatch, out-of-range knobs).
	ErrLoadSpec = loadgen.ErrSpec
	// ErrLoadTrace reports a malformed trace file (truncation, bad
	// timestamps, out-of-order records, trailing garbage).
	ErrLoadTrace = loadgen.ErrTrace
	// ErrLoadTraceSchema reports a trace from an unknown schema version
	// or of the wrong kind.
	ErrLoadTraceSchema = loadgen.ErrTraceSchema
)

// PlanLoad expands a LoadSpec into a deterministic trace: the same spec
// always yields the same schedule, instances and reuse pattern.
func PlanLoad(spec LoadSpec) (*LoadTrace, error) { return loadgen.Plan(spec) }

// ReadLoadTrace parses a versioned JSONL trace, rejecting malformed
// input with ErrLoadTrace / ErrLoadTraceSchema.
func ReadLoadTrace(r io.Reader) (*LoadTrace, error) { return loadgen.ReadTrace(r) }

// WriteLoadTrace writes a trace in the versioned JSONL format;
// re-encoding a read trace is byte-identical.
func WriteLoadTrace(w io.Writer, t *LoadTrace) error { return loadgen.WriteTrace(w, t) }

package pslocal

// cluster.go re-exports the cluster gateway (internal/cluster): a
// reverse proxy fronting a fleet of cfserve backends, routing
// /v1/reduce, /v1/maxis and /v1/jobs traffic by cache affinity over a
// consistent-hash ring keyed on the instance cache key (InstanceKey —
// the same sha256 content hash the Solver's parsed-instance cache
// uses). Repeated submissions of one instance land on the same backend
// and hit its cache; the gateway forwards the precomputed key in
// HeaderInstanceKey so the backend's keyed readers skip re-hashing.
//
//	gw, err := pslocal.NewGateway(pslocal.GatewayConfig{
//		Backends: []string{"http://node1:8355", "http://node2:8355"},
//		Policy:   pslocal.PolicyAffinity,
//	})
//	go gw.Run(ctx)                       // health prober
//	http.ListenAndServe(":8360", gw)     // gw is an http.Handler
//
// Backends are probed at ProbeConfig.Path (cfserve's /readyz, which a
// draining node answers 503): consecutive failures eject, ejected
// backends re-probe under exponential backoff, and failed idempotent
// requests retry against the next ring candidates. cmd/cfgate is the
// CLI wrapper; DESIGN.md ("Cluster mode") records the design.

import "pslocal/internal/cluster"

type (
	// Gateway routes requests across a set of cfserve backends:
	// construct with NewGateway, start the health prober with
	// [Gateway.Run], and serve it as an http.Handler. Safe for
	// concurrent use.
	Gateway = cluster.Gateway
	// GatewayConfig configures a Gateway (backends, routing policy,
	// ring replicas, retry budget, body cap, probe settings).
	GatewayConfig = cluster.Config
	// GatewayStats is the gateway's /statz document.
	GatewayStats = cluster.GatewayStats
	// BackendStatz is one backend's row in GatewayStats.
	BackendStatz = cluster.BackendStatz
	// BackendHealth is the prober's view of one backend.
	BackendHealth = cluster.BackendHealth
	// RoutingPolicy selects how the gateway picks a backend
	// (PolicyAffinity, PolicyRoundRobin, PolicyLeastLoaded).
	RoutingPolicy = cluster.Policy
	// ProbeConfig configures backend health probing.
	ProbeConfig = cluster.ProbeConfig
	// HashRing is the consistent-hash ring behind affinity routing.
	HashRing = cluster.Ring
)

// Routing policies.
const (
	PolicyAffinity    = cluster.PolicyAffinity
	PolicyRoundRobin  = cluster.PolicyRoundRobin
	PolicyLeastLoaded = cluster.PolicyLeastLoaded
)

// Gateway protocol headers.
const (
	// HeaderInstanceKey carries the precomputed instance cache key from
	// gateway to backend; cfserve's keyed readers honour it and skip
	// re-hashing the body. Trusted: only a gateway that derived the key
	// from the same bytes should set it.
	HeaderInstanceKey = cluster.HeaderInstanceKey
	// HeaderBackend reports which backend served a proxied request.
	HeaderBackend = cluster.HeaderBackend
)

// NewGateway validates cfg and builds a Gateway.
func NewGateway(cfg GatewayConfig) (*Gateway, error) { return cluster.New(cfg) }

// NewHashRing builds a consistent-hash ring over the backend names with
// the given virtual-node count per backend (< 1 selects the default).
func NewHashRing(names []string, replicas int) *HashRing { return cluster.NewRing(names, replicas) }

// ParseRoutingPolicy maps a flag spelling (affinity|round-robin|
// least-loaded, "" = affinity) onto a RoutingPolicy.
func ParseRoutingPolicy(s string) (RoutingPolicy, bool) { return cluster.ParsePolicy(s) }

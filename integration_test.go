// integration_test.go exercises cross-module flows through the public
// facade: the full hardness pipeline (hypergraph → conflict graph →
// oracle → multicolouring), the containment algorithm against the exact
// optimum, the distributed pipeline, and the Lemma 2.1 round trip — each
// verified by the first-principles checkers.
package pslocal_test

import (
	"math"
	"math/rand"
	"testing"

	"pslocal"
	"pslocal/internal/maxis"
)

func TestIntegrationHardnessPipelineAllModes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h, planted, err := pslocal.PlantedCF(40, 30, 3, 3, 5, rng)
	if err != nil {
		t.Fatalf("PlantedCF: %v", err)
	}
	if !pslocal.IsConflictFree(h, planted) {
		t.Fatal("planted witness not conflict-free")
	}
	modes := map[string]pslocal.ReduceOptions{
		"exact":    {K: 3, Mode: pslocal.ModeExactHinted},
		"implicit": {K: 3, Mode: pslocal.ModeImplicitFirstFit},
		"greedy":   {K: 3, Mode: pslocal.ModeOracle, Oracle: maxis.MinDegreeOracle{}},
	}
	for name, opts := range modes {
		t.Run(name, func(t *testing.T) {
			res, err := pslocal.Reduce(h, opts)
			if err != nil {
				t.Fatalf("Reduce: %v", err)
			}
			if err := pslocal.VerifyReduction(h, res); err != nil {
				t.Fatalf("verification: %v", err)
			}
			// The planted witness guarantees α(G_k) = m, so the exact
			// oracle must finish in one phase with exactly k colours.
			if name == "exact" && (len(res.Phases) != 1 || res.TotalColors != 3) {
				t.Errorf("exact mode: phases=%d colours=%d, want 1 and 3",
					len(res.Phases), res.TotalColors)
			}
		})
	}
}

func TestIntegrationLemmaRoundTripViaFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h, planted, err := pslocal.PlantedCF(30, 15, 3, 3, 5, rng)
	if err != nil {
		t.Fatalf("PlantedCF: %v", err)
	}
	ix, err := pslocal.NewConflictIndex(h, 3)
	if err != nil {
		t.Fatalf("NewConflictIndex: %v", err)
	}
	is, err := pslocal.ColoringToIS(ix, planted)
	if err != nil {
		t.Fatalf("ColoringToIS: %v", err)
	}
	if len(is) != h.M() {
		t.Fatalf("|I_f| = %d, want m = %d (Lemma 2.1a)", len(is), h.M())
	}
	f, err := pslocal.ISToColoring(ix, is)
	if err != nil {
		t.Fatalf("ISToColoring: %v", err)
	}
	if !pslocal.IsConflictFree(h, f) {
		t.Fatal("round-trip colouring lost conflict-freeness")
	}
	// The explicit conflict graph agrees with the predicate for the
	// triples of the independent set.
	g, err := pslocal.BuildConflictGraph(ix)
	if err != nil {
		t.Fatalf("BuildConflictGraph: %v", err)
	}
	if g.N() != ix.NumNodes() {
		t.Errorf("graph nodes %d != index %d", g.N(), ix.NumNodes())
	}
	for i := 0; i < len(is) && i < 5; i++ {
		for j := i + 1; j < len(is) && j < 5; j++ {
			adj, err := pslocal.ConflictAdjacent(ix, is[i], is[j])
			if err != nil {
				t.Fatalf("ConflictAdjacent: %v", err)
			}
			if adj {
				t.Fatalf("independent-set triples %v and %v adjacent", is[i], is[j])
			}
		}
	}
}

func TestIntegrationContainmentAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, delta := range []float64{1.0, 0.5} {
		g := pslocal.GnP(70, 0.07, rng)
		res, err := pslocal.BallCarvingMaxIS(g, pslocal.CarvingOptions{Delta: delta})
		if err != nil {
			t.Fatalf("BallCarvingMaxIS: %v", err)
		}
		if err := pslocal.VerifyIndependentSet(g, res.Set); err != nil {
			t.Fatalf("carving output: %v", err)
		}
		opt, err := pslocal.ExactMaxIS(g)
		if err != nil {
			t.Fatalf("ExactMaxIS: %v", err)
		}
		if float64(len(res.Set))*(1+delta) < float64(len(opt))-1e-9 {
			t.Errorf("δ=%v: carving %d below α/(1+δ) with α=%d", delta, len(res.Set), len(opt))
		}
		bound := int(math.Ceil(math.Log(float64(g.N()))/math.Log(1+delta))) + 2
		if res.Locality > bound {
			t.Errorf("δ=%v: locality %d above O(log n) bound %d", delta, res.Locality, bound)
		}
	}
}

func TestIntegrationDistributedPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h, _, err := pslocal.PlantedCF(20, 40, 2, 3, 5, rng)
	if err != nil {
		t.Fatalf("PlantedCF: %v", err)
	}
	res, err := pslocal.ReduceLocalRandomized(h, 2, 99)
	if err != nil {
		t.Fatalf("ReduceLocalRandomized: %v", err)
	}
	if err := pslocal.VerifyConflictFreeMulti(h, res.Multicoloring); err != nil {
		t.Fatalf("verification: %v", err)
	}
	if res.VirtualRounds <= 0 || res.HostRounds <= res.VirtualRounds {
		t.Errorf("round accounting implausible: %+v", res)
	}
}

func TestIntegrationSiblingProblems(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := pslocal.GnP(50, 0.1, rng)
	ds, err := pslocal.GreedyDominatingSet(g)
	if err != nil {
		t.Fatalf("GreedyDominatingSet: %v", err)
	}
	if len(ds) == 0 {
		t.Error("empty dominating set on a non-empty graph")
	}
	h, err := pslocal.NewHypergraph(20, [][]int32{{0, 1, 2}, {3, 4, 5, 6}, {7, 8, 9}, {1, 5, 9, 13}})
	if err != nil {
		t.Fatalf("NewHypergraph: %v", err)
	}
	split, err := pslocal.WeakSplitting(h, rng)
	if err != nil {
		t.Fatalf("WeakSplitting: %v", err)
	}
	if len(split) != h.N() {
		t.Errorf("splitting covers %d vertices, want %d", len(split), h.N())
	}
	d, err := pslocal.NetworkDecomposition(g, nil)
	if err != nil {
		t.Fatalf("NetworkDecomposition: %v", err)
	}
	colours, err := pslocal.DecompositionColouring(g, d)
	if err != nil {
		t.Fatalf("DecompositionColouring: %v", err)
	}
	bad := false
	g.ForEachEdge(func(u, v int32) bool {
		if colours[u] == colours[v] {
			bad = true
			return false
		}
		return true
	})
	if bad {
		t.Error("decomposition colouring improper")
	}
}

func TestIntegrationModelContrast(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := pslocal.GnP(200, 0.02, rng)
	luby, lres, err := pslocal.LubyMIS(g, 3, pslocal.LocalOptions{})
	if err != nil {
		t.Fatalf("LubyMIS: %v", err)
	}
	greedy, sres, err := pslocal.SLOCALGreedyMIS(g, pslocal.IdentityOrder(g.N()))
	if err != nil {
		t.Fatalf("SLOCALGreedyMIS: %v", err)
	}
	if err := pslocal.VerifyIndependentSet(g, luby); err != nil {
		t.Errorf("luby: %v", err)
	}
	if err := pslocal.VerifyIndependentSet(g, greedy); err != nil {
		t.Errorf("greedy: %v", err)
	}
	if sres.Locality > 1 {
		t.Errorf("SLOCAL greedy locality %d, want <= 1", sres.Locality)
	}
	if lres.Rounds <= 0 || lres.Messages <= 0 {
		t.Errorf("LOCAL accounting implausible: %+v", lres)
	}
}

func TestIntegrationExperimentHarnessEndToEnd(t *testing.T) {
	cfg := pslocal.ExperimentConfig{Seed: 7, Quick: true}
	tables, err := pslocal.AllExperiments(cfg)
	if err != nil {
		t.Fatalf("a claim failed: %v", err)
	}
	figs, err := pslocal.AllFigures(cfg)
	if err != nil {
		t.Fatalf("a figure claim failed: %v", err)
	}
	abl, err := pslocal.AllAblations(cfg)
	if err != nil {
		t.Fatalf("an ablation failed: %v", err)
	}
	var sink nopWriter
	if err := pslocal.RenderTables(&sink, append(append(tables, figs...), abl...)); err != nil {
		t.Fatalf("render: %v", err)
	}
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }

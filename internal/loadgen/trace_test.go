package loadgen

// trace_test.go pins the JSONL trace format: byte-stable encoding, exact
// read→write→read round-trips, and strict rejection of malformed input
// (truncated files, bad timestamps, unknown schema versions, trailing
// garbage) with the typed trace errors.

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// sampleTrace is a small schedule with a mix of outcome-bearing and
// outcome-free records.
func sampleTrace() *Trace {
	return &Trace{
		Seed: 7,
		Records: []Record{
			{
				Seq: 0, AtUS: 0, Class: "reduce-small", Endpoint: EndpointReduce, Format: "edgelist",
				Inst:   InstSpec{Kind: KindHypergraph, Gen: "planted", N: 30, M: 12, K: 3, SizeLo: 3, SizeHi: 5, Seed: 11},
				Params: Params{K: 3, Oracle: "greedy-mindeg", Seed: 1, Workers: 1}, SLOMillis: 250,
				Outcome: &Outcome{Status: 200, OK: true, Cache: "miss", Verified: true, Size: 3, Key: "sha256:abc", LatencyUS: 1234},
			},
			{
				Seq: 1, AtUS: 1500, Class: "maxis-gnp", Endpoint: EndpointMaxIS, Format: "dimacs",
				Inst:   InstSpec{Kind: KindGraph, Gen: "gnp", N: 50, P: 0.1, Seed: 12},
				Params: Params{Oracle: "greedy-mindeg"}, SLOMillis: 100,
			},
			{
				Seq: 2, AtUS: 1500, Class: "jobs", Endpoint: EndpointJobs, Format: "json",
				Inst:   InstSpec{Kind: KindHypergraph, Gen: "uniform", N: 20, M: 8, SizeLo: 3, Seed: 13},
				Params: Params{K: 3, Priority: "high"},
				Outcome: &Outcome{Status: 202, OK: true, Key: strings.Repeat("ab", 32),
					LatencyUS: 88},
			},
		},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	first := buf.String()

	got, err := ReadTrace(strings.NewReader(first))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("read trace differs from written trace:\nwant %+v\ngot  %+v", tr, got)
	}

	// read → write → read: the re-encoding must be byte-identical and
	// parse back to the same structure.
	var buf2 bytes.Buffer
	if err := WriteTrace(&buf2, got); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if buf2.String() != first {
		t.Fatalf("re-encoding is not byte-stable:\nfirst:\n%s\nsecond:\n%s", first, buf2.String())
	}
	again, err := ReadTrace(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatalf("re-read: %v", err)
	}
	if !reflect.DeepEqual(got, again) {
		t.Fatal("second read differs from first")
	}
}

func TestWriteTraceByteStable(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteTrace(&a, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&b, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodings of the same trace differ")
	}
}

// validHeader and validRecord are building blocks for the malformed
// table below.
const (
	validHeader = `{"schema":1,"kind":"cfload-trace","seed":7,"requests":1}`
	validRecord = `{"seq":0,"at_us":10,"class":"c","endpoint":"reduce","format":"edgelist","inst":{"kind":"hypergraph","gen":"planted","n":10,"seed":1},"params":{}}`
)

func TestReadTraceMalformed(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  error
	}{
		{"empty input", "", ErrTrace},
		{"header not JSON", "not json\n", ErrTrace},
		{"unknown schema version", `{"schema":99,"kind":"cfload-trace","seed":0,"requests":0}` + "\n", ErrTraceSchema},
		{"wrong kind", `{"schema":1,"kind":"other-trace","seed":0,"requests":0}` + "\n", ErrTraceSchema},
		{"negative request count", `{"schema":1,"kind":"cfload-trace","seed":0,"requests":-1}` + "\n", ErrTrace},
		{"truncated: fewer records than declared", validHeader + "\n", ErrTrace},
		{"truncated record line", validHeader + "\n" + `{"seq":0,"at_us":10,"class":"c"`, ErrTrace},
		{"blank line between records", validHeader + "\n\n" + validRecord + "\n", ErrTrace},
		{"more records than declared", validHeader + "\n" + validRecord + "\n" +
			`{"seq":1,"at_us":20,"class":"c","endpoint":"reduce","format":"edgelist","inst":{"kind":"hypergraph","gen":"planted","n":10,"seed":1},"params":{}}` + "\n", ErrTrace},
		{"unknown record field", validHeader + "\n" +
			`{"seq":0,"at_us":10,"class":"c","endpoint":"reduce","format":"edgelist","inst":{"kind":"hypergraph","gen":"planted","n":10,"seed":1},"params":{},"bogus":1}` + "\n", ErrTrace},
		{"seq out of order", validHeader + "\n" +
			`{"seq":5,"at_us":10,"class":"c","endpoint":"reduce","format":"edgelist","inst":{"kind":"hypergraph","gen":"planted","n":10,"seed":1},"params":{}}` + "\n", ErrTrace},
		{"negative timestamp", validHeader + "\n" +
			`{"seq":0,"at_us":-5,"class":"c","endpoint":"reduce","format":"edgelist","inst":{"kind":"hypergraph","gen":"planted","n":10,"seed":1},"params":{}}` + "\n", ErrTrace},
		{"timestamps go backwards", `{"schema":1,"kind":"cfload-trace","seed":0,"requests":2}` + "\n" +
			`{"seq":0,"at_us":100,"class":"c","endpoint":"reduce","format":"edgelist","inst":{"kind":"hypergraph","gen":"planted","n":10,"seed":1},"params":{}}` + "\n" +
			`{"seq":1,"at_us":50,"class":"c","endpoint":"reduce","format":"edgelist","inst":{"kind":"hypergraph","gen":"planted","n":10,"seed":1},"params":{}}` + "\n", ErrTrace},
		{"bad timestamp type", validHeader + "\n" +
			`{"seq":0,"at_us":"noon","class":"c","endpoint":"reduce","format":"edgelist","inst":{"kind":"hypergraph","gen":"planted","n":10,"seed":1},"params":{}}` + "\n", ErrTrace},
		{"unknown endpoint", validHeader + "\n" +
			`{"seq":0,"at_us":10,"class":"c","endpoint":"teleport","format":"edgelist","inst":{"kind":"hypergraph","gen":"planted","n":10,"seed":1},"params":{}}` + "\n", ErrTrace},
		{"negative outcome latency", validHeader + "\n" +
			`{"seq":0,"at_us":10,"class":"c","endpoint":"reduce","format":"edgelist","inst":{"kind":"hypergraph","gen":"planted","n":10,"seed":1},"params":{},"outcome":{"status":200,"ok":true,"latency_us":-1}}` + "\n", ErrTrace},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadTrace(strings.NewReader(tc.input))
			if err == nil {
				t.Fatal("malformed input parsed without error")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v is not %v", err, tc.want)
			}
		})
	}
}

func TestReadTraceAcceptsValid(t *testing.T) {
	tr, err := ReadTrace(strings.NewReader(validHeader + "\n" + validRecord + "\n"))
	if err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if len(tr.Records) != 1 || tr.Seed != 7 {
		t.Fatalf("unexpected parse: %+v", tr)
	}
}

package loadgen

// summary.go builds the two run artifacts with deliberately different
// determinism contracts. Summary contains only replay-stable fields —
// counts, sizes and a digest over per-request (endpoint, format, ok,
// verified, size, key) tuples — so running the same trace twice yields
// byte-identical summaries; wall-clock latency, cache disposition
// (racing identical instances make hit/miss timing-dependent) and
// transport error text are all excluded. Perf is the complementary
// timing report: latency quantiles, throughput, per-class SLO
// attainment, and the jobs queue-wait/run split measured from the
// server's /statz counters; scripts/benchmerge ingests it into the
// BENCH_gk.json trajectory.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
)

// Summary is the deterministic outcome summary of a run.
type Summary struct {
	Schema   int   `json:"schema"`
	Seed     int64 `json:"seed"`
	Requests int   `json:"requests"`
	// OK counts 2xx responses; Failed is everything else including
	// transport errors.
	OK     int `json:"ok"`
	Failed int `json:"failed"`
	// Verified counts responses the server self-verified.
	Verified int `json:"verified"`
	// SizeSum accumulates the scalar results (total colors / IS sizes).
	SizeSum int64 `json:"size_sum"`
	// ByEndpoint and ByClass count requests per endpoint / class
	// (JSON-encoded with sorted keys, so the rendering is stable).
	ByEndpoint map[string]int `json:"by_endpoint"`
	ByClass    map[string]int `json:"by_class"`
	// TraceSHA256 fingerprints the request schedule (records with
	// outcomes stripped), tying a summary to the trace that produced it.
	TraceSHA256 string `json:"trace_sha256"`
	// OutcomeSHA256 digests the per-request outcome tuples
	// (seq|endpoint|class|format|ok|verified|size|key) in schedule
	// order — the byte-stable witness that two runs observed the same
	// outcomes.
	OutcomeSHA256 string `json:"outcome_sha256"`
}

// Quantiles summarizes a latency sample in milliseconds.
type Quantiles struct {
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// ClassPerf is the per-class slice of the timing report.
type ClassPerf struct {
	Name     string    `json:"name"`
	Requests int       `json:"requests"`
	OK       int       `json:"ok"`
	Latency  Quantiles `json:"latency"`
	// SLOMillis is the class objective; SLOAttained counts OK responses
	// at or under it, and SLORatio is their fraction of the class's
	// requests (1.0 when the class has no SLO).
	SLOMillis   float64 `json:"slo_ms,omitempty"`
	SLOAttained int     `json:"slo_attained"`
	SLORatio    float64 `json:"slo_ratio"`
}

// SLOReport aggregates attainment across classes.
type SLOReport struct {
	// Attained counts OK responses within their class SLO; Ratio is
	// Attained over all requests carrying an SLO.
	Attained int     `json:"attained"`
	Eligible int     `json:"eligible"`
	Ratio    float64 `json:"ratio"`
}

// JobsSplit is the queue-wait vs run-time split of the job subsystem
// over the run, measured as the delta of the server's /statz counters
// (jobs.Manager.Stats) between run start and end.
type JobsSplit struct {
	Started    uint64  `json:"started"`
	Finished   uint64  `json:"finished"`
	WaitSumMS  float64 `json:"wait_sum_ms"`
	RunSumMS   float64 `json:"run_sum_ms"`
	WaitMeanMS float64 `json:"wait_mean_ms"`
	RunMeanMS  float64 `json:"run_mean_ms"`
}

// Perf is the wall-clock timing report of a run.
type Perf struct {
	Schema   int `json:"schema"`
	Requests int `json:"requests"`
	Errors   int `json:"errors"`
	// DurationS spans the first dispatch to the last completion.
	DurationS     float64   `json:"duration_s"`
	ThroughputRPS float64   `json:"throughput_rps"`
	Latency       Quantiles `json:"latency"`
	CacheHits     int       `json:"cache_hits"`
	CacheMisses   int       `json:"cache_misses"`
	// CacheHitRatio is CacheHits over all responses reporting a cache
	// disposition — the cluster-smoke comparison of affinity routing
	// against the round-robin control reads this number.
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// Backends counts OK responses per serving node (the cfgate
	// X-Pslocal-Backend tag; absent when the run hit cfserve directly).
	Backends map[string]int `json:"backends,omitempty"`
	Classes  []ClassPerf    `json:"classes"`
	SLO      SLOReport      `json:"slo"`
	// Jobs is present when the run observed the server's /statz job
	// counters (nil when the probe failed or was disabled).
	Jobs *JobsSplit `json:"jobs,omitempty"`
}

// summarize builds the deterministic summary from an executed trace.
func summarize(t *Trace) Summary {
	s := Summary{
		Schema:      1,
		Seed:        t.Seed,
		Requests:    len(t.Records),
		ByEndpoint:  map[string]int{},
		ByClass:     map[string]int{},
		TraceSHA256: t.scheduleSHA256(),
	}
	h := sha256.New()
	for i := range t.Records {
		rec := &t.Records[i]
		s.ByEndpoint[rec.Endpoint]++
		s.ByClass[rec.Class]++
		var o Outcome
		if rec.Outcome != nil {
			o = *rec.Outcome
		}
		if o.OK {
			s.OK++
		} else {
			s.Failed++
		}
		if o.Verified {
			s.Verified++
		}
		s.SizeSum += int64(o.Size)
		fmt.Fprintf(h, "%d|%s|%s|%s|%t|%t|%d|%s\n",
			rec.Seq, rec.Endpoint, rec.Class, rec.Format, o.OK, o.Verified, o.Size, o.Key)
	}
	s.OutcomeSHA256 = hex.EncodeToString(h.Sum(nil))
	return s
}

// scheduleSHA256 fingerprints the request schedule independent of any
// recorded outcomes.
func (t *Trace) scheduleSHA256() string {
	h := sha256.New()
	fmt.Fprintf(h, "cfload-trace|%d|%d|%d\n", TraceSchema, t.Seed, len(t.Records))
	for i := range t.Records {
		rec := &t.Records[i]
		fmt.Fprintf(h, "%d|%d|%s|%s|%s|%+v|%+v|%g\n",
			rec.Seq, rec.AtUS, rec.Class, rec.Endpoint, rec.Format, rec.Inst, rec.Params, rec.SLOMillis)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// perfReport builds the timing report from an executed trace plus the
// observed run duration and the optional /statz jobs delta.
func perfReport(t *Trace, durationS float64, jobs *JobsSplit) Perf {
	p := Perf{Schema: 1, Requests: len(t.Records), DurationS: durationS, Jobs: jobs}
	var all []int64
	perClass := map[string][]int64{}
	seen := map[string]bool{}
	classOrder := []string{}
	classOK := map[string]int{}
	classAttained := map[string]int{}
	classSLO := map[string]float64{}
	for i := range t.Records {
		rec := &t.Records[i]
		if !seen[rec.Class] {
			seen[rec.Class] = true
			classOrder = append(classOrder, rec.Class)
			classSLO[rec.Class] = rec.SLOMillis
		}
		o := rec.Outcome
		if o == nil || !o.OK {
			p.Errors++
			continue
		}
		all = append(all, o.LatencyUS)
		perClass[rec.Class] = append(perClass[rec.Class], o.LatencyUS)
		classOK[rec.Class]++
		switch o.Cache {
		case "hit":
			p.CacheHits++
		case "miss":
			p.CacheMisses++
		}
		if o.Backend != "" {
			if p.Backends == nil {
				p.Backends = map[string]int{}
			}
			p.Backends[o.Backend]++
		}
		if rec.SLOMillis > 0 {
			p.SLO.Eligible++
			if float64(o.LatencyUS)/1000 <= rec.SLOMillis {
				p.SLO.Attained++
				classAttained[rec.Class]++
			}
		}
	}
	p.Latency = quantiles(all)
	if durationS > 0 {
		p.ThroughputRPS = float64(len(all)) / durationS
	}
	if seen := p.CacheHits + p.CacheMisses; seen > 0 {
		p.CacheHitRatio = float64(p.CacheHits) / float64(seen)
	}
	if p.SLO.Eligible > 0 {
		p.SLO.Ratio = float64(p.SLO.Attained) / float64(p.SLO.Eligible)
	}
	sort.Strings(classOrder)
	classCount := map[string]int{}
	for i := range t.Records {
		classCount[t.Records[i].Class]++
	}
	for _, name := range classOrder {
		cp := ClassPerf{
			Name:        name,
			Requests:    classCount[name],
			OK:          classOK[name],
			Latency:     quantiles(perClass[name]),
			SLOMillis:   classSLO[name],
			SLOAttained: classAttained[name],
		}
		if classSLO[name] <= 0 {
			cp.SLORatio = 1
		} else if cp.Requests > 0 {
			cp.SLORatio = float64(cp.SLOAttained) / float64(cp.Requests)
		}
		p.Classes = append(p.Classes, cp)
	}
	return p
}

// quantiles computes the latency quantiles of a sample in microseconds,
// reported in milliseconds. Quantile q is the ceil(q*n)-th smallest
// sample (the "nearest rank" definition).
func quantiles(us []int64) Quantiles {
	if len(us) == 0 {
		return Quantiles{}
	}
	sorted := make([]int64, len(us))
	copy(sorted, us)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum int64
	for _, v := range sorted {
		sum += v
	}
	rank := func(q float64) float64 {
		i := int(q*float64(len(sorted))+0.9999999) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return float64(sorted[i]) / 1000
	}
	return Quantiles{
		MeanMS: float64(sum) / float64(len(sorted)) / 1000,
		P50MS:  rank(0.50),
		P95MS:  rank(0.95),
		P99MS:  rank(0.99),
		MaxMS:  float64(sorted[len(sorted)-1]) / 1000,
	}
}

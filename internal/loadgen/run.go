package loadgen

// run.go executes a trace against a live cfserve: an open-loop
// dispatcher walks the schedule, sleeps until each record's arrival
// offset, and fires the request in its own goroutine — completions never
// gate arrivals, so server slowdowns surface as latency instead of
// silently reducing the offered load. A client-side in-flight cap
// (MaxInflight, generous by default) exists only to bound sockets and
// goroutines on a pathologically stuck server; waiting for it counts
// into the measured latency, exactly like any other queueing delay.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"pslocal/internal/cluster"
	"pslocal/internal/obs"
)

// Client drives a trace against one server.
type Client struct {
	// BaseURL is the server root, e.g. http://127.0.0.1:8355.
	BaseURL string
	// HTTP is the underlying client (nil = a default with a 30s timeout
	// and an uncapped connection pool per host).
	HTTP *http.Client
	// Speed scales the schedule: 1 replays arrival offsets as recorded,
	// 2 replays twice as fast, 0 disables pacing entirely (dispatch as
	// fast as the in-flight cap admits).
	Speed float64
	// MaxInflight bounds concurrently outstanding requests (0 = 512).
	MaxInflight int
	// Label tags job submissions (jobs endpoint only).
	Label string
	// ProbeStatz controls the /statz probe taken before and after the
	// run, whose delta yields the jobs queue-wait/run split.
	ProbeStatz bool
}

// DefaultHTTPClient builds the client Run uses when none is supplied:
// the given per-request timeout over a connection pool wide enough that
// open-loop bursts reuse sockets instead of exhausting ephemeral ports.
func DefaultHTTPClient(timeout time.Duration) *http.Client {
	return &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		},
	}
}

// Report is the outcome of one executed run.
type Report struct {
	// Trace is the executed schedule with every record's Outcome filled
	// in (the same pointer passed to Run).
	Trace *Trace
	// Summary is the deterministic outcome summary.
	Summary Summary
	// Perf is the wall-clock timing report.
	Perf Perf
}

// Run executes the trace open-loop and fills in every record's Outcome.
// Bodies are materialized (and memoized) before each request's timer
// starts. The context cancels outstanding requests; a cancelled run
// still returns its report with the outcomes observed so far.
func (c *Client) Run(ctx context.Context, t *Trace) (*Report, error) {
	httpc := c.HTTP
	if httpc == nil {
		httpc = DefaultHTTPClient(30 * time.Second)
	}
	maxInflight := c.MaxInflight
	if maxInflight <= 0 {
		maxInflight = 512
	}
	base, err := url.Parse(c.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: base URL: %w", err)
	}

	var before *statzJobs
	if c.ProbeStatz {
		before = c.probeStatz(ctx, httpc, base)
	}

	bodies := newBodyCache()
	sem := make(chan struct{}, maxInflight)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range t.Records {
		rec := &t.Records[i]
		if c.Speed > 0 {
			target := start.Add(time.Duration(float64(rec.AtUS)/c.Speed) * time.Microsecond)
			if d := time.Until(target); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
				}
			}
		}
		if ctx.Err() != nil {
			rec.Outcome = &Outcome{Err: ctx.Err().Error()}
			continue
		}
		wg.Add(1)
		go func(rec *Record) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			o := c.do(ctx, httpc, base, bodies, rec)
			rec.Outcome = &o
		}(rec)
	}
	wg.Wait()
	durationS := time.Since(start).Seconds()

	var split *JobsSplit
	if c.ProbeStatz && before != nil {
		if after := c.probeStatz(ctx, httpc, base); after != nil {
			split = jobsDelta(before, after)
		}
	}
	return &Report{
		Trace:   t,
		Summary: summarize(t),
		Perf:    perfReport(t, durationS, split),
	}, nil
}

// do issues one request and parses the minimal outcome fields.
func (c *Client) do(ctx context.Context, httpc *http.Client, base *url.URL, bodies *bodyCache, rec *Record) Outcome {
	body, err := bodies.get(rec.Inst, rec.Format)
	if err != nil {
		return Outcome{Err: err.Error()}
	}
	u := *base
	q := url.Values{}
	if rec.Format != "" {
		q.Set("format", rec.Format)
	}
	if rec.Params.K > 0 {
		q.Set("k", strconv.Itoa(rec.Params.K))
	}
	if rec.Params.Oracle != "" {
		q.Set("oracle", rec.Params.Oracle)
	}
	if rec.Params.Seed != 0 {
		q.Set("seed", strconv.FormatInt(rec.Params.Seed, 10))
	}
	if rec.Params.Workers != 0 {
		q.Set("workers", strconv.Itoa(rec.Params.Workers))
	}
	switch rec.Endpoint {
	case EndpointReduce:
		u.Path = "/v1/reduce"
	case EndpointMaxIS:
		u.Path = "/v1/maxis"
	case EndpointJobs:
		u.Path = "/v1/jobs"
		if rec.Params.Priority != "" {
			q.Set("priority", rec.Params.Priority)
		}
		if c.Label != "" {
			q.Set("label", c.Label)
		}
	}
	u.RawQuery = q.Encode()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u.String(), bytes.NewReader(body))
	if err != nil {
		return Outcome{Err: err.Error()}
	}
	started := time.Now()
	resp, err := httpc.Do(req)
	if err != nil {
		return Outcome{LatencyUS: time.Since(started).Microseconds(), Err: err.Error()}
	}
	defer resp.Body.Close()
	// Minimal response schema shared by the three endpoints; unknown
	// fields are ignored.
	var parsed struct {
		Instance struct {
			Cache string `json:"cache"`
			Key   string `json:"key"`
		} `json:"instance"`
		Verified bool `json:"verified"`
		Size     int  `json:"size"`
		Result   struct {
			TotalColors int `json:"total_colors"`
		} `json:"result"`
		Job struct {
			ID string `json:"id"`
		} `json:"job"`
		Error string `json:"error"`
	}
	decodeErr := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&parsed)
	// Latency covers the full response read: the decode above consumes
	// the body, which is part of serving the request.
	latency := time.Since(started).Microseconds()

	o := Outcome{
		Status:    resp.StatusCode,
		OK:        resp.StatusCode >= 200 && resp.StatusCode < 300,
		Cache:     parsed.Instance.Cache,
		Verified:  parsed.Verified,
		Key:       parsed.Instance.Key,
		LatencyUS: latency,
		Backend:   resp.Header.Get(cluster.HeaderBackend),
		RequestID: resp.Header.Get(obs.RequestIDHeader),
	}
	if decodeErr != nil {
		o.Err = "decode: " + decodeErr.Error()
		o.OK = false
		return o
	}
	switch rec.Endpoint {
	case EndpointReduce:
		o.Size = parsed.Result.TotalColors
	case EndpointMaxIS:
		o.Size = parsed.Size
	case EndpointJobs:
		o.Key = parsed.Job.ID
	}
	if !o.OK && parsed.Error != "" {
		o.Err = parsed.Error
	}
	return o
}

// statzJobs is the slice of /statz this package reads: the job
// subsystem's started/finished counters and wait/run latency sums.
type statzJobs struct {
	Jobs struct {
		Started   uint64  `json:"started"`
		Finished  uint64  `json:"finished"`
		WaitSumMS float64 `json:"wait_sum_ms"`
		RunSumMS  float64 `json:"run_sum_ms"`
	} `json:"jobs"`
}

// probeStatz reads /statz, returning nil on any failure — the split is
// an enrichment, never a reason to fail a run.
func (c *Client) probeStatz(ctx context.Context, httpc *http.Client, base *url.URL) *statzJobs {
	u := *base
	u.Path = "/statz"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return nil
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var s statzJobs
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&s); err != nil {
		return nil
	}
	return &s
}

// jobsDelta derives the run's queue-wait/run split from two /statz
// snapshots.
func jobsDelta(before, after *statzJobs) *JobsSplit {
	started := after.Jobs.Started - before.Jobs.Started
	finished := after.Jobs.Finished - before.Jobs.Finished
	if started == 0 && finished == 0 {
		return nil
	}
	s := &JobsSplit{
		Started:   started,
		Finished:  finished,
		WaitSumMS: after.Jobs.WaitSumMS - before.Jobs.WaitSumMS,
		RunSumMS:  after.Jobs.RunSumMS - before.Jobs.RunSumMS,
	}
	if started > 0 {
		s.WaitMeanMS = s.WaitSumMS / float64(started)
	}
	if finished > 0 {
		s.RunMeanMS = s.RunSumMS / float64(finished)
	}
	return s
}

package loadgen

// trace.go is the versioned JSONL trace format. Line 1 is the header
// ({"schema":1,"kind":"cfload-trace","seed":S,"requests":N}); every
// following line is one Record in schedule order. The writer is
// byte-stable — encoding a trace twice yields identical bytes, and a
// trace that came out of WriteTrace round-trips read → write → read
// unchanged — which is what lets replayed runs be compared byte for
// byte. The reader is strict in the graphio tradition: unknown schema
// versions, unknown fields, truncated files, out-of-order sequence
// numbers and non-monotonic timestamps are errors, never silent repairs.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// TraceSchema is the trace file schema version this package reads and
// writes.
const TraceSchema = 1

// traceKind is the header discriminator, so a trace file is never
// confused with another JSONL artifact.
const traceKind = "cfload-trace"

// Errors of the trace parser.
var (
	// ErrTrace reports a malformed trace file: bad header, unparsable or
	// truncated lines, sequence/timestamp violations, count mismatches.
	ErrTrace = errors.New("loadgen: malformed trace")
	// ErrTraceSchema reports a trace whose schema version (or kind) this
	// package does not understand.
	ErrTraceSchema = errors.New("loadgen: unsupported trace schema")
)

// Trace is a full request schedule: the unit of recording and replay.
type Trace struct {
	// Seed is the plan seed the schedule was expanded from (recorded for
	// provenance; replay does not re-draw anything from it).
	Seed int64
	// Records are the requests in schedule order.
	Records []Record
}

// Record is one scheduled request, plus its outcome once a run executed
// it.
type Record struct {
	// Seq is the record's position; ReadTrace requires 0,1,2,...
	Seq int `json:"seq"`
	// AtUS is the scheduled arrival offset from run start, microseconds.
	// ReadTrace requires offsets to be non-negative and non-decreasing.
	AtUS int64 `json:"at_us"`
	// Class names the workload class the request was drawn from.
	Class string `json:"class"`
	// Endpoint is reduce | maxis | jobs.
	Endpoint string `json:"endpoint"`
	// Format is the wire format the body is sent in.
	Format string `json:"format"`
	// Inst regenerates the request body deterministically.
	Inst InstSpec `json:"inst"`
	// Params are the query parameters.
	Params Params `json:"params"`
	// SLOMillis is the class latency objective at schedule time.
	SLOMillis float64 `json:"slo_ms,omitempty"`
	// Outcome is filled in by a run that executed the record (nil on a
	// freshly planned trace).
	Outcome *Outcome `json:"outcome,omitempty"`
}

// Outcome is what one executed request observed.
type Outcome struct {
	// Status is the HTTP status (0 = transport error, nothing received).
	Status int `json:"status"`
	// OK is true for 2xx responses. Deterministic across replays.
	OK bool `json:"ok"`
	// Cache is the server-reported disposition ("hit"/"miss"); racing
	// identical instances make it timing-dependent, so it is excluded
	// from the deterministic outcome digest.
	Cache string `json:"cache,omitempty"`
	// Verified echoes the server's self-verification flag.
	Verified bool `json:"verified,omitempty"`
	// Size is the endpoint's scalar result: total colors for reduce, IS
	// size for maxis, 0 for jobs submissions.
	Size int `json:"size,omitempty"`
	// Key is the server-side instance identity (content hash) — the
	// cache key for sync endpoints, the job id for submissions.
	Key string `json:"key,omitempty"`
	// LatencyUS is the observed request latency in microseconds.
	LatencyUS int64 `json:"latency_us"`
	// Backend is the serving node reported in X-Pslocal-Backend when the
	// run targets a cfgate gateway ("" direct against cfserve). Routing
	// depends on fleet health at dispatch time, so it is excluded from
	// the deterministic outcome digest.
	Backend string `json:"backend,omitempty"`
	// RequestID echoes the X-Pslocal-Request-Id the server (or gateway)
	// stamped on the response — the correlation handle into server logs
	// and /v1/traces. Minted per run, so it is excluded from the
	// deterministic outcome digest.
	RequestID string `json:"request_id,omitempty"`
	// Err is the transport error, if any (timing-dependent; excluded
	// from the outcome digest).
	Err string `json:"err,omitempty"`
}

// traceHeader is the first JSONL line.
type traceHeader struct {
	Schema   int    `json:"schema"`
	Kind     string `json:"kind"`
	Seed     int64  `json:"seed"`
	Requests int    `json:"requests"`
}

// WriteTrace encodes t as versioned JSONL. The encoding is byte-stable:
// the same trace always produces the same bytes.
func WriteTrace(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(traceHeader{Schema: TraceSchema, Kind: traceKind, Seed: t.Seed, Requests: len(t.Records)}); err != nil {
		return err
	}
	for i := range t.Records {
		if err := enc.Encode(&t.Records[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a versioned JSONL trace, strictly: the header must
// carry a known kind and schema, every line must decode with no unknown
// fields, sequence numbers must be consecutive from 0, arrival offsets
// must be non-negative and non-decreasing, and the record count must
// match the header — a short file is reported as truncated rather than
// returned as a shorter trace.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: empty input", ErrTrace)
	}
	var hdr traceHeader
	if err := strictUnmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrTrace, err)
	}
	if hdr.Kind != traceKind {
		return nil, fmt.Errorf("%w: kind %q (want %q)", ErrTraceSchema, hdr.Kind, traceKind)
	}
	if hdr.Schema != TraceSchema {
		return nil, fmt.Errorf("%w: schema %d (this build reads schema %d)", ErrTraceSchema, hdr.Schema, TraceSchema)
	}
	if hdr.Requests < 0 {
		return nil, fmt.Errorf("%w: negative request count %d", ErrTrace, hdr.Requests)
	}

	t := &Trace{Seed: hdr.Seed, Records: make([]Record, 0, hdr.Requests)}
	prevAt := int64(0)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			return nil, fmt.Errorf("%w: blank line after record %d", ErrTrace, len(t.Records))
		}
		if len(t.Records) == hdr.Requests {
			return nil, fmt.Errorf("%w: more records than the declared %d", ErrTrace, hdr.Requests)
		}
		var rec Record
		if err := strictUnmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrTrace, len(t.Records), err)
		}
		if rec.Seq != len(t.Records) {
			return nil, fmt.Errorf("%w: record %d carries seq %d", ErrTrace, len(t.Records), rec.Seq)
		}
		if rec.AtUS < 0 {
			return nil, fmt.Errorf("%w: record %d: negative arrival offset %d", ErrTrace, rec.Seq, rec.AtUS)
		}
		if rec.AtUS < prevAt {
			return nil, fmt.Errorf("%w: record %d: arrival offset %dus before predecessor's %dus", ErrTrace, rec.Seq, rec.AtUS, prevAt)
		}
		prevAt = rec.AtUS
		if rec.Outcome != nil && rec.Outcome.LatencyUS < 0 {
			return nil, fmt.Errorf("%w: record %d: negative latency", ErrTrace, rec.Seq)
		}
		switch rec.Endpoint {
		case EndpointReduce, EndpointMaxIS, EndpointJobs:
		default:
			return nil, fmt.Errorf("%w: record %d: unknown endpoint %q", ErrTrace, rec.Seq, rec.Endpoint)
		}
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(t.Records) != hdr.Requests {
		return nil, fmt.Errorf("%w: truncated: %d of %d declared records", ErrTrace, len(t.Records), hdr.Requests)
	}
	return t, nil
}

// strictUnmarshal decodes one JSONL line rejecting unknown fields and
// trailing garbage — a truncated or concatenated line must error, not
// half-parse.
func strictUnmarshal(line []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// Anything but EOF after the value is trailing garbage.
	if dec.More() {
		return errors.New("trailing data after JSON value")
	}
	return nil
}

// Package loadgen is the load-generation and trace-replay harness behind
// cmd/cfload: it exercises the cfserve HTTP service the way real traffic
// does, where the bench trajectory only covers in-process hot paths.
//
// The model is an open-loop arrival process (ServeGen-style): request
// arrival times are drawn from a configurable inter-arrival distribution
// (Poisson, Gamma or Weibull, all with a common mean rate) and requests
// are dispatched at their scheduled instants whether or not earlier
// requests have completed — so, unlike a closed-loop "N workers in a
// busy loop" driver, a slow server accumulates queueing delay instead of
// silently throttling the offered load. Each request belongs to a
// weighted workload Class naming an endpoint (/v1/reduce, /v1/maxis or
// /v1/jobs), a pscgen-style instance generator with its size parameters,
// the set of wire formats to rotate through, the solve parameters and a
// per-class latency SLO. A configurable fraction of arrivals reuses a
// previously issued instance (HitRatio), which is what steers the
// server-side content-hash cache-hit ratio.
//
// Everything is deterministic from Spec.Seed: Plan expands a Spec into a
// Trace — the full schedule of requests, each with its arrival offset,
// class, format and instance generator spec — without performing any
// I/O. A Trace serializes to a versioned JSONL file (WriteTrace) and
// back (ReadTrace, strict), byte-stably, so a recorded run replays
// exactly: replaying the same trace issues the identical request
// sequence, and the outcome summary (Report.Summary) is built only from
// deterministic response fields, making replay-twice byte-identical.
// DESIGN.md ("Load generation and trace replay") records the schema and
// the determinism contract.
package loadgen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"pslocal/internal/graphio"
)

// Errors of the load-generation layer. Trace parsing has its own pair in
// trace.go (ErrTrace, ErrTraceSchema).
var (
	// ErrSpec reports an invalid workload specification.
	ErrSpec = errors.New("loadgen: invalid spec")
)

// Endpoint spellings accepted by Class.Endpoint.
const (
	EndpointReduce = "reduce" // POST /v1/reduce, synchronous
	EndpointMaxIS  = "maxis"  // POST /v1/maxis, synchronous
	EndpointJobs   = "jobs"   // POST /v1/jobs, asynchronous submit
)

// Arrival distribution spellings accepted by Spec.Arrival. All are
// parameterized to the common mean rate Spec.Rate; Shape tunes the
// burstiness of Gamma and Weibull (1 = both degenerate to Poisson).
const (
	ArrivalPoisson = "poisson"
	ArrivalGamma   = "gamma"
	ArrivalWeibull = "weibull"
)

// Spec is a workload specification: everything Plan needs to expand a
// deterministic request schedule.
type Spec struct {
	// Seed drives every random choice in the plan (arrival gaps, class
	// picks, format rotation, instance seeds, reuse picks).
	Seed int64 `json:"seed"`
	// Requests is the total number of arrivals to schedule.
	Requests int `json:"requests"`
	// Rate is the mean arrival rate in requests per second.
	Rate float64 `json:"rate"`
	// Arrival selects the inter-arrival distribution (default poisson).
	Arrival string `json:"arrival,omitempty"`
	// Shape is the Gamma/Weibull shape parameter (default 1; ignored for
	// poisson). Shape < 1 is burstier than Poisson, > 1 smoother.
	Shape float64 `json:"shape,omitempty"`
	// HitRatio in [0,1) is the fraction of arrivals that reuse an
	// instance issued earlier in the run (per class), which is what the
	// server-side content-hash cache-hit ratio converges to.
	HitRatio float64 `json:"hit_ratio,omitempty"`
	// Classes are the weighted workload classes.
	Classes []Class `json:"classes"`
}

// Class is one weighted workload class.
type Class struct {
	// Name labels the class in traces, summaries and SLO reports.
	Name string `json:"name"`
	// Weight is the class's relative arrival share (> 0).
	Weight float64 `json:"weight"`
	// Endpoint is reduce | maxis | jobs.
	Endpoint string `json:"endpoint"`
	// Kind/Gen and the size fields parameterize the pscgen-style
	// instance generator (see InstSpec); each fresh arrival draws a new
	// instance seed, each reused arrival repeats an earlier spec.
	Kind   string  `json:"kind"` // graph | hypergraph
	Gen    string  `json:"gen"`  // gnp|grid|cycle|tree | planted|uniform|interval|star
	N      int     `json:"n"`
	M      int     `json:"m,omitempty"`
	K      int     `json:"k,omitempty"`
	SizeLo int     `json:"size_lo,omitempty"`
	SizeHi int     `json:"size_hi,omitempty"`
	P      float64 `json:"p,omitempty"`
	// Formats are the wire formats to rotate through (uniformly at
	// random). DIMACS is graphs-only, enforced by Plan.
	Formats []string `json:"formats"`
	// Params are the request query parameters.
	Params Params `json:"params"`
	// SLOMillis is the class's latency objective; the perf report counts
	// the fraction of requests at or under it (0 = no SLO for the class).
	SLOMillis float64 `json:"slo_ms,omitempty"`
}

// Params are the solve parameters a request carries as query parameters;
// zero fields are omitted from the URL and take the server defaults.
type Params struct {
	K       int    `json:"k,omitempty"`
	Oracle  string `json:"oracle,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	Workers int    `json:"workers,omitempty"`
	// Priority selects the queue lane for jobs submissions.
	Priority string `json:"priority,omitempty"`
}

// validate checks the spec and resolves defaults (returning a copy).
func (s Spec) validate() (Spec, error) {
	if s.Requests <= 0 {
		return s, fmt.Errorf("%w: requests must be positive (got %d)", ErrSpec, s.Requests)
	}
	if s.Rate <= 0 || math.IsNaN(s.Rate) || math.IsInf(s.Rate, 0) {
		return s, fmt.Errorf("%w: rate must be a positive number (got %v)", ErrSpec, s.Rate)
	}
	if s.Arrival == "" {
		s.Arrival = ArrivalPoisson
	}
	switch s.Arrival {
	case ArrivalPoisson, ArrivalGamma, ArrivalWeibull:
	default:
		return s, fmt.Errorf("%w: unknown arrival distribution %q (want poisson|gamma|weibull)", ErrSpec, s.Arrival)
	}
	if s.Shape == 0 {
		s.Shape = 1
	}
	if s.Shape <= 0 || math.IsNaN(s.Shape) {
		return s, fmt.Errorf("%w: shape must be positive (got %v)", ErrSpec, s.Shape)
	}
	if s.HitRatio < 0 || s.HitRatio >= 1 || math.IsNaN(s.HitRatio) {
		return s, fmt.Errorf("%w: hit ratio must be in [0,1) (got %v)", ErrSpec, s.HitRatio)
	}
	if len(s.Classes) == 0 {
		return s, fmt.Errorf("%w: at least one class required", ErrSpec)
	}
	for i, c := range s.Classes {
		if c.Name == "" {
			return s, fmt.Errorf("%w: class %d has no name", ErrSpec, i)
		}
		if c.Weight <= 0 || math.IsNaN(c.Weight) {
			return s, fmt.Errorf("%w: class %q weight must be positive", ErrSpec, c.Name)
		}
		switch c.Endpoint {
		case EndpointReduce, EndpointMaxIS, EndpointJobs:
		default:
			return s, fmt.Errorf("%w: class %q has unknown endpoint %q (want reduce|maxis|jobs)", ErrSpec, c.Name, c.Endpoint)
		}
		if err := (InstSpec{Kind: c.Kind, Gen: c.Gen, N: c.N, M: c.M, K: c.K,
			SizeLo: c.SizeLo, SizeHi: c.SizeHi, P: c.P}).validate(); err != nil {
			return s, fmt.Errorf("class %q: %w", c.Name, err)
		}
		if (c.Endpoint == EndpointReduce || c.Endpoint == EndpointJobs) && c.Kind != KindHypergraph {
			return s, fmt.Errorf("%w: class %q: endpoint %s takes hypergraph instances", ErrSpec, c.Name, c.Endpoint)
		}
		if c.Endpoint == EndpointMaxIS && c.Kind != KindGraph {
			return s, fmt.Errorf("%w: class %q: endpoint maxis takes graph instances", ErrSpec, c.Name)
		}
		if len(c.Formats) == 0 {
			return s, fmt.Errorf("%w: class %q lists no formats", ErrSpec, c.Name)
		}
		for _, fs := range c.Formats {
			f, err := graphio.ParseFormat(fs)
			if err != nil {
				return s, fmt.Errorf("class %q: %w", c.Name, err)
			}
			if f == graphio.FormatDIMACS && c.Kind == KindHypergraph {
				return s, fmt.Errorf("%w: class %q: hypergraphs have no DIMACS representation", ErrSpec, c.Name)
			}
		}
		if c.SLOMillis < 0 || math.IsNaN(c.SLOMillis) {
			return s, fmt.Errorf("%w: class %q: negative SLO", ErrSpec, c.Name)
		}
	}
	return s, nil
}

// Plan expands spec into the deterministic request schedule: arrival
// offsets drawn from the inter-arrival distribution, classes picked by
// weight, formats rotated uniformly, and instance specs that are fresh
// (new seed) or reused (HitRatio) per arrival. Plan performs no I/O; the
// returned trace's records carry no outcomes yet.
func Plan(spec Spec) (*Trace, error) {
	spec, err := spec.validate()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	next := arrivalSampler(spec.Arrival, spec.Rate, spec.Shape)

	total := 0.0
	for _, c := range spec.Classes {
		total += c.Weight
	}
	// Per-class pool of instance specs already issued, the reuse targets.
	pools := make([][]InstSpec, len(spec.Classes))

	tr := &Trace{Seed: spec.Seed, Records: make([]Record, 0, spec.Requests)}
	at := 0.0 // seconds since run start
	for i := 0; i < spec.Requests; i++ {
		at += next(rng)
		ci := pickClass(rng, spec.Classes, total)
		c := &spec.Classes[ci]
		format := c.Formats[rng.Intn(len(c.Formats))]
		var inst InstSpec
		if pool := pools[ci]; len(pool) > 0 && rng.Float64() < spec.HitRatio {
			inst = pool[rng.Intn(len(pool))]
		} else {
			inst = InstSpec{Kind: c.Kind, Gen: c.Gen, N: c.N, M: c.M, K: c.K,
				SizeLo: c.SizeLo, SizeHi: c.SizeHi, P: c.P, Seed: rng.Int63()}
			pools[ci] = append(pools[ci], inst)
		}
		tr.Records = append(tr.Records, Record{
			Seq:       i,
			AtUS:      int64(at * 1e6),
			Class:     c.Name,
			Endpoint:  c.Endpoint,
			Format:    format,
			Inst:      inst,
			Params:    c.Params,
			SLOMillis: c.SLOMillis,
		})
	}
	return tr, nil
}

// pickClass draws a class index proportionally to the weights.
func pickClass(rng *rand.Rand, classes []Class, total float64) int {
	x := rng.Float64() * total
	for i := range classes {
		x -= classes[i].Weight
		if x < 0 {
			return i
		}
	}
	return len(classes) - 1
}

// arrivalSampler returns a sampler of inter-arrival gaps in seconds with
// mean 1/rate under the named distribution.
func arrivalSampler(dist string, rate, shape float64) func(*rand.Rand) float64 {
	switch dist {
	case ArrivalGamma:
		// Gamma(shape k, scale th) has mean k*th; th = 1/(rate*k) keeps
		// the mean gap at 1/rate for every shape.
		scale := 1 / (rate * shape)
		return func(rng *rand.Rand) float64 { return gammaSample(rng, shape, scale) }
	case ArrivalWeibull:
		// Weibull(shape k, scale l) has mean l*Gamma(1+1/k).
		scale := 1 / (rate * math.Gamma(1+1/shape))
		return func(rng *rand.Rand) float64 {
			u := rng.Float64()
			return scale * math.Pow(-math.Log1p(-u), 1/shape)
		}
	default: // poisson: exponential gaps
		return func(rng *rand.Rand) float64 { return rng.ExpFloat64() / rate }
	}
}

// gammaSample draws Gamma(shape, scale) via Marsaglia–Tsang; shapes
// below 1 use the standard power-of-uniform boost.
func gammaSample(rng *rand.Rand, shape, scale float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

package loadgen

// loadgen_test.go covers the planning layer: spec validation, the
// deterministic expansion of a spec into a schedule, the statistical
// shape of the arrival samplers, and the instance-reuse mechanism that
// steers the server-side cache-hit ratio.

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// testSpec is a small three-class mixed workload.
func testSpec(seed int64) Spec {
	return Spec{
		Seed:     seed,
		Requests: 200,
		Rate:     1000,
		Arrival:  ArrivalPoisson,
		HitRatio: 0.5,
		Classes: []Class{
			{Name: "reduce-small", Weight: 2, Endpoint: EndpointReduce, Kind: KindHypergraph,
				Gen: "planted", N: 30, M: 12, K: 3, SizeLo: 3, SizeHi: 5,
				Formats: []string{"edgelist", "json"},
				Params:  Params{K: 3, Oracle: "greedy-mindeg", Seed: 1}, SLOMillis: 250},
			{Name: "maxis-gnp", Weight: 1, Endpoint: EndpointMaxIS, Kind: KindGraph,
				Gen: "gnp", N: 40, P: 0.1,
				Formats: []string{"edgelist", "dimacs", "json"},
				Params:  Params{Oracle: "greedy-mindeg", Seed: 1}, SLOMillis: 250},
			{Name: "jobs-planted", Weight: 1, Endpoint: EndpointJobs, Kind: KindHypergraph,
				Gen: "planted", N: 30, M: 12, K: 3, SizeLo: 3, SizeHi: 5,
				Formats: []string{"json"},
				Params:  Params{K: 3, Priority: "high"}, SLOMillis: 100},
		},
	}
}

func TestPlanDeterministic(t *testing.T) {
	a, err := Plan(testSpec(42))
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	b, err := Plan(testSpec(42))
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two plans from the same seed differ")
	}
	c, err := Plan(testSpec(43))
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestPlanScheduleShape(t *testing.T) {
	spec := testSpec(1)
	tr, err := Plan(spec)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if len(tr.Records) != spec.Requests {
		t.Fatalf("planned %d records, want %d", len(tr.Records), spec.Requests)
	}
	prev := int64(0)
	classes := map[string]int{}
	for i, rec := range tr.Records {
		if rec.Seq != i {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
		if rec.AtUS < prev {
			t.Fatalf("record %d: arrival %d before predecessor %d", i, rec.AtUS, prev)
		}
		prev = rec.AtUS
		classes[rec.Class]++
	}
	for _, c := range spec.Classes {
		if classes[c.Name] == 0 {
			t.Fatalf("class %q never drawn in %d requests", c.Name, spec.Requests)
		}
	}
	// Mean arrival gap should be near 1/rate = 1ms over 200 samples.
	meanUS := float64(tr.Records[len(tr.Records)-1].AtUS) / float64(len(tr.Records))
	if meanUS < 300 || meanUS > 3000 {
		t.Fatalf("mean inter-arrival %.0fus implausible for rate %.0f/s", meanUS, spec.Rate)
	}
}

func TestPlanHitRatioReuse(t *testing.T) {
	spec := testSpec(5)
	spec.HitRatio = 0.6
	tr, err := Plan(spec)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	seen := map[string]bool{}
	reused := 0
	for _, rec := range tr.Records {
		key := rec.Inst.cacheKey("")
		if seen[key] {
			reused++
		}
		seen[key] = true
	}
	// Instance-spec reuse converges toward the hit ratio; allow slack
	// for the warmup (early arrivals have nothing to reuse). Format
	// rotation means byte-level reuse is lower still, which is fine: the
	// ratio targets the server's per-(body,format) content-hash cache.
	ratio := float64(reused) / float64(len(tr.Records))
	if ratio < 0.35 || ratio > 0.75 {
		t.Fatalf("reuse ratio %.2f not near the configured 0.6", ratio)
	}

	spec.HitRatio = 0
	tr, err = Plan(spec)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	seen = map[string]bool{}
	for _, rec := range tr.Records {
		key := rec.Inst.cacheKey("")
		if seen[key] {
			t.Fatal("hit ratio 0 still reused an instance")
		}
		seen[key] = true
	}
}

func TestArrivalSamplerMeans(t *testing.T) {
	const rate = 100.0
	for _, tc := range []struct {
		dist  string
		shape float64
	}{
		{ArrivalPoisson, 1},
		{ArrivalGamma, 0.5},
		{ArrivalGamma, 3},
		{ArrivalWeibull, 0.7},
		{ArrivalWeibull, 2},
	} {
		rng := rand.New(rand.NewSource(99))
		next := arrivalSampler(tc.dist, rate, tc.shape)
		sum := 0.0
		const n = 20000
		for i := 0; i < n; i++ {
			gap := next(rng)
			if gap < 0 || math.IsNaN(gap) || math.IsInf(gap, 0) {
				t.Fatalf("%s(shape=%v): bad gap %v", tc.dist, tc.shape, gap)
			}
			sum += gap
		}
		mean := sum / n
		if mean < 0.8/rate || mean > 1.2/rate {
			t.Fatalf("%s(shape=%v): mean gap %.5fs, want ~%.5fs", tc.dist, tc.shape, mean, 1/rate)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	base := testSpec(1)
	mutate := func(f func(*Spec)) Spec {
		s := base
		s.Classes = append([]Class(nil), base.Classes...)
		f(&s)
		return s
	}
	cases := []struct {
		name string
		spec Spec
	}{
		{"zero requests", mutate(func(s *Spec) { s.Requests = 0 })},
		{"negative rate", mutate(func(s *Spec) { s.Rate = -1 })},
		{"unknown arrival", mutate(func(s *Spec) { s.Arrival = "bursty" })},
		{"hit ratio 1", mutate(func(s *Spec) { s.HitRatio = 1 })},
		{"no classes", mutate(func(s *Spec) { s.Classes = nil })},
		{"zero weight", mutate(func(s *Spec) { s.Classes[0].Weight = 0 })},
		{"unknown endpoint", mutate(func(s *Spec) { s.Classes[0].Endpoint = "warp" })},
		{"reduce with graph", mutate(func(s *Spec) { s.Classes[0].Kind = KindGraph; s.Classes[0].Gen = "gnp" })},
		{"maxis with hypergraph", mutate(func(s *Spec) { s.Classes[1].Kind = KindHypergraph; s.Classes[1].Gen = "planted" })},
		{"hypergraph in dimacs", mutate(func(s *Spec) { s.Classes[0].Formats = []string{"dimacs"} })},
		{"no formats", mutate(func(s *Spec) { s.Classes[0].Formats = nil })},
		{"unknown generator", mutate(func(s *Spec) { s.Classes[0].Gen = "fractal" })},
		{"negative SLO", mutate(func(s *Spec) { s.Classes[0].SLOMillis = -1 })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Plan(tc.spec); err == nil {
				t.Fatal("invalid spec accepted")
			}
		})
	}
	// The dedicated spec error is typed; format errors keep graphio's
	// own taxonomy.
	if _, err := Plan(mutate(func(s *Spec) { s.Requests = 0 })); !errors.Is(err, ErrSpec) {
		t.Fatalf("error %v is not ErrSpec", err)
	}
}

func TestInstSpecBuildDeterministic(t *testing.T) {
	specs := []InstSpec{
		{Kind: KindHypergraph, Gen: "planted", N: 30, M: 12, K: 3, SizeLo: 3, SizeHi: 5, Seed: 9},
		{Kind: KindHypergraph, Gen: "uniform", N: 20, M: 8, SizeLo: 3, Seed: 9},
		{Kind: KindHypergraph, Gen: "interval", N: 20, M: 8, SizeHi: 4, Seed: 9},
		{Kind: KindHypergraph, Gen: "star", N: 20, M: 4, SizeLo: 3, Seed: 9},
		{Kind: KindGraph, Gen: "gnp", N: 30, P: 0.2, Seed: 9},
		{Kind: KindGraph, Gen: "grid", N: 4, M: 5, Seed: 9},
		{Kind: KindGraph, Gen: "cycle", N: 10, Seed: 9},
		{Kind: KindGraph, Gen: "tree", N: 15, Seed: 9},
	}
	for _, s := range specs {
		formats := []string{"edgelist", "json"}
		if s.Kind == KindGraph {
			formats = append(formats, "dimacs")
		}
		for _, f := range formats {
			a, err := s.Build(f)
			if err != nil {
				t.Fatalf("%s/%s in %s: %v", s.Kind, s.Gen, f, err)
			}
			b, err := s.Build(f)
			if err != nil {
				t.Fatalf("%s/%s in %s: %v", s.Kind, s.Gen, f, err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("%s/%s in %s: two builds differ", s.Kind, s.Gen, f)
			}
			if len(a) == 0 {
				t.Fatalf("%s/%s in %s: empty body", s.Kind, s.Gen, f)
			}
		}
	}
}

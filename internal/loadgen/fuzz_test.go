package loadgen

// fuzz_test.go hardens ReadTrace against arbitrary input: the parser
// must never panic, and any input it accepts must round-trip through
// WriteTrace → ReadTrace to an equal structure with byte-identical
// re-encoding. Run with `go test -fuzz=FuzzReadTrace ./internal/loadgen`.

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func FuzzReadTrace(f *testing.F) {
	// Seed with a real trace, its building blocks, and the malformed
	// shapes the table tests reject.
	var well bytes.Buffer
	if err := WriteTrace(&well, sampleTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(well.String())
	f.Add(validHeader + "\n" + validRecord + "\n")
	f.Add(validHeader + "\n")
	f.Add(validHeader)
	f.Add(validRecord + "\n" + validHeader + "\n")
	f.Add(`{"schema":99,"kind":"cfload-trace","seed":0,"requests":0}` + "\n")
	f.Add(`{"schema":1,"kind":"other","seed":0,"requests":0}` + "\n")
	f.Add(`{"schema":1,"kind":"cfload-trace","seed":0,"requests":-1}` + "\n")
	f.Add(validHeader + "\n" + validRecord[:len(validRecord)/2])
	f.Add(validHeader + "\n\n" + validRecord + "\n")
	f.Add("")
	f.Add("\n\n\n")
	f.Add("not json at all")
	f.Add(strings.Repeat(validRecord+"\n", 3))

	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted input must round-trip losslessly.
		var out bytes.Buffer
		if err := WriteTrace(&out, tr); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		again, err := ReadTrace(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace rejected: %v\nencoding:\n%s", err, out.String())
		}
		if !reflect.DeepEqual(tr, again) {
			t.Fatalf("round-trip changed the trace:\nfirst  %+v\nsecond %+v", tr, again)
		}
		var out2 bytes.Buffer
		if err := WriteTrace(&out2, again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatal("re-encoding is not byte-stable")
		}
	})
}

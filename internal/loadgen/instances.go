package loadgen

// instances.go materializes the per-request instance bodies. A trace
// never stores raw instance bytes: each record carries an InstSpec — the
// pscgen-style generator directive plus its own seed — and the body is
// regenerated deterministically on demand. That keeps traces small and
// byte-stable, and makes "the same instance again" (the cache-hit
// mechanism) literally the same bytes, hence the same server-side
// content hash.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"

	"pslocal/internal/graph"
	"pslocal/internal/graphio"
	"pslocal/internal/hypergraph"
)

// Instance kinds.
const (
	KindGraph      = "graph"
	KindHypergraph = "hypergraph"
)

// InstSpec is a deterministic instance directive: generator name, size
// parameters and the instance's own seed. Two equal specs always
// materialize to identical bytes in a given format.
type InstSpec struct {
	Kind   string  `json:"kind"`
	Gen    string  `json:"gen"`
	N      int     `json:"n"`
	M      int     `json:"m,omitempty"`
	K      int     `json:"k,omitempty"`
	SizeLo int     `json:"size_lo,omitempty"`
	SizeHi int     `json:"size_hi,omitempty"`
	P      float64 `json:"p,omitempty"`
	Seed   int64   `json:"seed"`
}

// validate checks the generator directive without materializing it.
func (s InstSpec) validate() error {
	switch s.Kind {
	case KindGraph:
		switch s.Gen {
		case "gnp", "grid", "cycle", "tree":
		default:
			return fmt.Errorf("%w: unknown graph generator %q (want gnp|grid|cycle|tree)", ErrSpec, s.Gen)
		}
	case KindHypergraph:
		switch s.Gen {
		case "planted", "uniform", "interval", "star":
		default:
			return fmt.Errorf("%w: unknown hypergraph generator %q (want planted|uniform|interval|star)", ErrSpec, s.Gen)
		}
	default:
		return fmt.Errorf("%w: unknown instance kind %q (want graph|hypergraph)", ErrSpec, s.Kind)
	}
	if s.N <= 0 {
		return fmt.Errorf("%w: instance n must be positive (got %d)", ErrSpec, s.N)
	}
	return nil
}

// cacheKey identifies the (spec, format) pair in the body cache.
func (s InstSpec) cacheKey(format string) string {
	return fmt.Sprintf("%s/%s/n%d/m%d/k%d/s%d-%d/p%g/seed%d@%s",
		s.Kind, s.Gen, s.N, s.M, s.K, s.SizeLo, s.SizeHi, s.P, s.Seed, format)
}

// Build materializes the instance in the given wire format. The same
// spec and format always yield identical bytes.
func (s InstSpec) Build(format string) ([]byte, error) {
	f, err := graphio.ParseFormat(format)
	if err != nil {
		return nil, err
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	var buf bytes.Buffer
	switch s.Kind {
	case KindGraph:
		var g *graph.Graph
		switch s.Gen {
		case "gnp":
			g = graph.GnP(s.N, s.P, rng)
		case "grid":
			g = graph.Grid(s.N, max(s.M, 1))
		case "cycle":
			g = graph.Cycle(s.N)
		case "tree":
			g = graph.RandomTree(s.N, rng)
		}
		if err := graphio.WriteGraph(&buf, g, f); err != nil {
			return nil, err
		}
	case KindHypergraph:
		var h *hypergraph.Hypergraph
		switch s.Gen {
		case "planted":
			h, _, err = hypergraph.PlantedCF(s.N, s.M, max(s.K, 2), max(s.SizeLo, 2), max(s.SizeHi, 3), rng)
		case "uniform":
			h, err = hypergraph.Uniform(s.N, s.M, max(s.SizeLo, 2), rng)
		case "interval":
			h, err = hypergraph.Interval(s.N, s.M, 2, max(s.SizeHi, 3), rng)
		case "star":
			h, err = hypergraph.Star(s.N, s.M, max(s.SizeLo, 2), rng)
		}
		if err != nil {
			return nil, err
		}
		if err := graphio.WriteHypergraph(&buf, h, f); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// bodyCache memoizes materialized bodies so a reused instance (the
// cache-hit mechanism) is generated once per run, and body construction
// stays off the request timing path.
type bodyCache struct {
	mu     sync.Mutex
	bodies map[string][]byte
}

func newBodyCache() *bodyCache {
	return &bodyCache{bodies: make(map[string][]byte)}
}

// get returns the memoized body for (spec, format), building it on the
// first request.
func (c *bodyCache) get(spec InstSpec, format string) ([]byte, error) {
	key := spec.cacheKey(format)
	c.mu.Lock()
	body, ok := c.bodies[key]
	c.mu.Unlock()
	if ok {
		return body, nil
	}
	body, err := spec.Build(format)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.bodies[key] = body
	c.mu.Unlock()
	return body, nil
}

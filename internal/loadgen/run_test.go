package loadgen

// run_test.go exercises the open-loop runner against a deterministic
// stub of cfserve's surface, and pins the replay determinism contract:
// executing the same trace twice yields byte-identical outcome
// summaries, even across servers with different cache warmth.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// stubServe is a deterministic stand-in for cfserve: every response
// field the runner parses is a pure function of the request body hash,
// except the cache disposition, which (like the real server) depends on
// what the stub has seen before.
func stubServe(t *testing.T) *httptest.Server {
	t.Helper()
	var mu sync.Mutex
	seen := map[string]bool{}
	var jobsStarted, jobsFinished int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, `{"error":"read"}`, http.StatusBadRequest)
			return
		}
		sum := sha256.Sum256(body)
		hexSum := hex.EncodeToString(sum[:])
		key := "sha256:" + hexSum[:16]
		mu.Lock()
		cache := "miss"
		if seen[key] {
			cache = "hit"
		}
		seen[key] = true
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		switch r.URL.Path {
		case "/v1/reduce":
			fmt.Fprintf(w, `{"instance":{"cache":%q,"key":%q},"verified":true,"result":{"total_colors":%d}}`,
				cache, key, int(sum[0])%7+1)
		case "/v1/maxis":
			fmt.Fprintf(w, `{"instance":{"cache":%q,"key":%q},"verified":true,"size":%d}`,
				cache, key, int(sum[1])%9+1)
		case "/v1/jobs":
			mu.Lock()
			jobsStarted++
			jobsFinished++
			mu.Unlock()
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintf(w, `{"job":{"id":%q,"state":"queued"}}`, hexSum)
		case "/statz":
			mu.Lock()
			s, f := jobsStarted, jobsFinished
			mu.Unlock()
			fmt.Fprintf(w, `{"jobs":{"started":%d,"finished":%d,"wait_sum_ms":%d,"run_sum_ms":%d}}`,
				s, f, s*2, f*5)
		default:
			http.Error(w, `{"error":"no route"}`, http.StatusNotFound)
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

// runOnce executes tr against a fresh stub and returns the report.
func runOnce(t *testing.T, tr *Trace) *Report {
	t.Helper()
	srv := stubServe(t)
	c := &Client{BaseURL: srv.URL, Speed: 0, ProbeStatz: true,
		HTTP: &http.Client{Timeout: 10 * time.Second}}
	rep, err := c.Run(context.Background(), tr)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

func planSmall(t *testing.T, seed int64) *Trace {
	t.Helper()
	spec := testSpec(seed)
	spec.Requests = 60
	spec.Rate = 5000
	tr, err := Plan(spec)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	return tr
}

func TestRunFillsOutcomes(t *testing.T) {
	tr := planSmall(t, 3)
	rep := runOnce(t, tr)
	if rep.Summary.Requests != len(tr.Records) {
		t.Fatalf("summary covers %d requests, want %d", rep.Summary.Requests, len(tr.Records))
	}
	if rep.Summary.OK != len(tr.Records) {
		t.Fatalf("%d of %d requests ok: %+v", rep.Summary.OK, len(tr.Records), rep.Summary)
	}
	for i := range tr.Records {
		o := tr.Records[i].Outcome
		if o == nil {
			t.Fatalf("record %d has no outcome", i)
		}
		if !o.OK || o.LatencyUS <= 0 || o.Key == "" {
			t.Fatalf("record %d outcome implausible: %+v", i, o)
		}
	}
	if rep.Perf.Latency.P50MS <= 0 || rep.Perf.Latency.P99MS < rep.Perf.Latency.P50MS {
		t.Fatalf("implausible quantiles: %+v", rep.Perf.Latency)
	}
	if rep.Perf.ThroughputRPS <= 0 {
		t.Fatalf("no throughput: %+v", rep.Perf)
	}
	// The spec reuses instances (HitRatio 0.5), so the stub must have
	// reported some hits and some misses.
	if rep.Perf.CacheHits == 0 || rep.Perf.CacheMisses == 0 {
		t.Fatalf("cache split missing: hits=%d misses=%d", rep.Perf.CacheHits, rep.Perf.CacheMisses)
	}
	// Every class carries an SLO in testSpec, so attainment is reported.
	if rep.Perf.SLO.Eligible != len(tr.Records) || rep.Perf.SLO.Attained == 0 {
		t.Fatalf("SLO report implausible: %+v", rep.Perf.SLO)
	}
	// The jobs class ran, so the statz delta must carry the split.
	if rep.Perf.Jobs == nil || rep.Perf.Jobs.Started == 0 {
		t.Fatalf("jobs wait/run split missing: %+v", rep.Perf.Jobs)
	}
	if rep.Perf.Jobs.WaitMeanMS != 2 || rep.Perf.Jobs.RunMeanMS != 5 {
		t.Fatalf("split means wrong: %+v", rep.Perf.Jobs)
	}
}

// TestReplayDeterministicSummary is the golden determinism test: the
// same trace replayed twice — against servers with different cache
// warmth — produces byte-identical summary JSON.
func TestReplayDeterministicSummary(t *testing.T) {
	tr := planSmall(t, 8)
	// Recording run fills outcomes; replay re-executes the same
	// schedule (outcomes get overwritten).
	runOnce(t, tr)

	rep1 := runOnce(t, tr)
	sum1, err := json.MarshalIndent(rep1.Summary, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	rep2 := runOnce(t, tr)
	sum2, err := json.MarshalIndent(rep2.Summary, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(sum1) != string(sum2) {
		t.Fatalf("replay summaries differ:\n%s\n---\n%s", sum1, sum2)
	}
	if rep1.Summary.OutcomeSHA256 == "" || rep1.Summary.TraceSHA256 == "" {
		t.Fatalf("summary digests missing: %+v", rep1.Summary)
	}

	// A warmed server changes cache dispositions but must not change
	// the deterministic summary: run again on a shared server.
	srv := stubServe(t)
	c := &Client{BaseURL: srv.URL, Speed: 0}
	repA, err := c.Run(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	sumA, _ := json.Marshal(repA.Summary)
	repB, err := c.Run(context.Background(), tr) // fully warm now
	if err != nil {
		t.Fatal(err)
	}
	sumB, _ := json.Marshal(repB.Summary)
	if string(sumA) != string(sumB) {
		t.Fatalf("cache warmth leaked into the summary:\n%s\n---\n%s", sumA, sumB)
	}
	if repB.Perf.CacheHits <= repA.Perf.CacheHits {
		t.Fatalf("warm run should see more hits (%d vs %d)", repB.Perf.CacheHits, repA.Perf.CacheHits)
	}
}

// TestRecordReplayRoundTrip drives the full record → write → read →
// replay path the CLI uses.
func TestRecordReplayRoundTrip(t *testing.T) {
	tr := planSmall(t, 13)
	runOnce(t, tr)

	var buf1 struct{ b []byte }
	{
		var w writerBuf
		if err := WriteTrace(&w, tr); err != nil {
			t.Fatal(err)
		}
		buf1.b = w.b
	}
	loaded, err := ReadTrace(newReaderBuf(buf1.b))
	if err != nil {
		t.Fatalf("ReadTrace of recorded run: %v", err)
	}
	if loaded.scheduleSHA256() != tr.scheduleSHA256() {
		t.Fatal("loaded schedule fingerprint differs")
	}
	repA := runOnce(t, loaded)
	repB := runOnce(t, loaded)
	a, _ := json.Marshal(repA.Summary)
	b, _ := json.Marshal(repB.Summary)
	if string(a) != string(b) {
		t.Fatalf("replays of a recorded trace differ:\n%s\n---\n%s", a, b)
	}
}

// writerBuf/readerBuf are tiny io adapters (avoiding a bytes import
// dance in the test above).
type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }

type readerBuf struct {
	b []byte
	i int
}

func newReaderBuf(b []byte) *readerBuf { return &readerBuf{b: b} }

func (r *readerBuf) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

func TestRunPacing(t *testing.T) {
	// Three arrivals 30ms apart at speed 1 must take ≥ 60ms; at speed 0
	// the same schedule runs in well under that.
	mk := func() *Trace {
		return &Trace{Seed: 1, Records: []Record{
			{Seq: 0, AtUS: 0, Class: "c", Endpoint: EndpointMaxIS, Format: "edgelist",
				Inst: InstSpec{Kind: KindGraph, Gen: "cycle", N: 8, Seed: 1}},
			{Seq: 1, AtUS: 30000, Class: "c", Endpoint: EndpointMaxIS, Format: "edgelist",
				Inst: InstSpec{Kind: KindGraph, Gen: "cycle", N: 8, Seed: 2}},
			{Seq: 2, AtUS: 60000, Class: "c", Endpoint: EndpointMaxIS, Format: "edgelist",
				Inst: InstSpec{Kind: KindGraph, Gen: "cycle", N: 8, Seed: 3}},
		}}
	}
	srv := stubServe(t)
	paced := &Client{BaseURL: srv.URL, Speed: 1}
	started := time.Now()
	if _, err := paced.Run(context.Background(), mk()); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(started); d < 55*time.Millisecond {
		t.Fatalf("paced run finished in %v, schedule spans 60ms", d)
	}
	fast := &Client{BaseURL: srv.URL, Speed: 0}
	started = time.Now()
	if _, err := fast.Run(context.Background(), mk()); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(started); d > 5*time.Second {
		t.Fatalf("unpaced run took %v", d)
	}
}

func TestRunServerDown(t *testing.T) {
	tr := &Trace{Seed: 1, Records: []Record{
		{Seq: 0, AtUS: 0, Class: "c", Endpoint: EndpointReduce, Format: "edgelist",
			Inst: InstSpec{Kind: KindHypergraph, Gen: "planted", N: 10, M: 4, K: 3, SizeLo: 3, SizeHi: 4, Seed: 1}},
	}}
	c := &Client{BaseURL: "http://127.0.0.1:1", Speed: 0,
		HTTP: &http.Client{Timeout: 2 * time.Second}}
	rep, err := c.Run(context.Background(), tr)
	if err != nil {
		t.Fatalf("a down server must not fail the run: %v", err)
	}
	if rep.Summary.OK != 0 || rep.Summary.Failed != 1 {
		t.Fatalf("expected one failed outcome: %+v", rep.Summary)
	}
	if tr.Records[0].Outcome.Err == "" {
		t.Fatal("transport error not recorded")
	}
}

package domset

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"pslocal/internal/graph"
)

func TestGreedySetCoverBasic(t *testing.T) {
	in := &Instance{N: 5, Sets: [][]int32{{0, 1}, {2, 3}, {4}, {0, 1, 2, 3}}}
	chosen, err := GreedySetCover(in)
	if err != nil {
		t.Fatalf("GreedySetCover error: %v", err)
	}
	if err := VerifyCover(in, chosen); err != nil {
		t.Fatalf("cover invalid: %v", err)
	}
	if len(chosen) != 2 { // {0,1,2,3} then {4}
		t.Errorf("greedy picked %d sets (%v), want 2", len(chosen), chosen)
	}
}

func TestGreedySetCoverUncoverable(t *testing.T) {
	in := &Instance{N: 3, Sets: [][]int32{{0, 1}}}
	if _, err := GreedySetCover(in); !errors.Is(err, ErrNotCover) {
		t.Errorf("error = %v, want ErrNotCover", err)
	}
}

func TestInstanceValidate(t *testing.T) {
	bad := &Instance{N: 2, Sets: [][]int32{{5}}}
	if err := bad.Validate(); !errors.Is(err, ErrBadInstance) {
		t.Errorf("error = %v, want ErrBadInstance", err)
	}
	if err := (&Instance{N: -1}).Validate(); !errors.Is(err, ErrBadInstance) {
		t.Errorf("negative universe error = %v", err)
	}
}

func TestVerifyCoverErrors(t *testing.T) {
	in := &Instance{N: 2, Sets: [][]int32{{0}, {1}}}
	if err := VerifyCover(in, []int32{0}); !errors.Is(err, ErrNotCover) {
		t.Errorf("partial cover accepted: %v", err)
	}
	if err := VerifyCover(in, []int32{7}); !errors.Is(err, ErrBadInstance) {
		t.Errorf("bad index accepted: %v", err)
	}
	if err := VerifyCover(in, []int32{0, 1}); err != nil {
		t.Errorf("valid cover rejected: %v", err)
	}
}

func TestExactSetCoverKnown(t *testing.T) {
	tests := []struct {
		name string
		in   *Instance
		want int
	}{
		{"single set", &Instance{N: 3, Sets: [][]int32{{0, 1, 2}}}, 1},
		{"two halves", &Instance{N: 4, Sets: [][]int32{{0, 1}, {2, 3}, {0}, {1}, {2}}}, 2},
		{"greedy trap", &Instance{
			// Classic: greedy takes the big set then two more; optimum is 2.
			N:    6,
			Sets: [][]int32{{0, 1, 2, 3}, {0, 1, 4}, {2, 3, 5}, {4}, {5}},
		}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			chosen, err := ExactSetCover(tt.in)
			if err != nil {
				t.Fatalf("ExactSetCover error: %v", err)
			}
			if err := VerifyCover(tt.in, chosen); err != nil {
				t.Fatalf("cover invalid: %v", err)
			}
			if len(chosen) != tt.want {
				t.Errorf("optimum = %d (%v), want %d", len(chosen), chosen, tt.want)
			}
		})
	}
}

func TestExactSetCoverGuards(t *testing.T) {
	big := &Instance{N: 70, Sets: [][]int32{{0}}}
	if _, err := ExactSetCover(big); !errors.Is(err, ErrTooLarge) {
		t.Errorf("universe guard: %v", err)
	}
	sets := make([][]int32, 31)
	for i := range sets {
		sets[i] = []int32{0}
	}
	if _, err := ExactSetCover(&Instance{N: 1, Sets: sets}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("set-count guard: %v", err)
	}
	if _, err := ExactSetCover(&Instance{N: 2, Sets: [][]int32{{0}}}); !errors.Is(err, ErrNotCover) {
		t.Errorf("uncoverable: %v", err)
	}
}

// TestGreedyWithinHarmonicOfExact is the H_s guarantee, property-tested
// on random instances.
func TestGreedyWithinHarmonicOfExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		nSets := 3 + rng.Intn(10)
		in := &Instance{N: n, Sets: make([][]int32, nSets)}
		maxSize := 0
		for i := range in.Sets {
			size := 1 + rng.Intn(n)
			if size > maxSize {
				maxSize = size
			}
			perm := rng.Perm(n)
			s := make([]int32, size)
			for j := 0; j < size; j++ {
				s[j] = int32(perm[j])
			}
			in.Sets[i] = s
		}
		if !in.Coverable() {
			return true // vacuous
		}
		greedy, err := GreedySetCover(in)
		if err != nil {
			return false
		}
		exact, err := ExactSetCover(in)
		if err != nil {
			return false
		}
		return float64(len(greedy)) <= HarmonicBound(maxSize)*float64(len(exact))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGreedyDominatingSet(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		max  int // acceptable upper bound on greedy size
	}{
		{"star is centre", graph.Star(9), 1},
		{"complete", graph.Complete(7), 1},
		{"path9 needs 3", graph.Path(9), 3},
		{"cycle9 needs 3", graph.Cycle(9), 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ds, err := GreedyDominatingSet(tt.g)
			if err != nil {
				t.Fatalf("GreedyDominatingSet error: %v", err)
			}
			if err := VerifyDominating(tt.g, ds); err != nil {
				t.Fatalf("not dominating: %v", err)
			}
			if len(ds) > tt.max {
				t.Errorf("greedy size %d > %d", len(ds), tt.max)
			}
		})
	}
}

func TestGreedyDominatingSetOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		g := graph.GnP(5+rng.Intn(40), 0.1+rng.Float64()*0.3, rng)
		ds, err := GreedyDominatingSet(g)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := VerifyDominating(g, ds); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestVerifyDominatingErrors(t *testing.T) {
	g := graph.Path(4)
	if err := VerifyDominating(g, []int32{0}); !errors.Is(err, ErrNotDominating) {
		t.Errorf("undominated accepted: %v", err)
	}
	if err := VerifyDominating(g, []int32{9}); !errors.Is(err, ErrBadInstance) {
		t.Errorf("bad node accepted: %v", err)
	}
	if err := VerifyDominating(g, []int32{1, 3}); err != nil {
		t.Errorf("valid dominating set rejected: %v", err)
	}
}

func TestBounds(t *testing.T) {
	if h := HarmonicBound(1); h != 1 {
		t.Errorf("H_1 = %v, want 1", h)
	}
	if h := HarmonicBound(4); h < 2.08 || h > 2.09 {
		t.Errorf("H_4 = %v, want ~2.083", h)
	}
	if b := LnBound(0); b != 1 {
		t.Errorf("LnBound(0) = %v, want 1", b)
	}
}

// Package domset implements minimum dominating set and minimum set cover
// approximation — together with network decomposition and local
// splittings, the problems the paper lists as P-SLOCAL-complete
// ("approximations of dominating set and distributed set cover [GHK18]").
// The greedy algorithm attains the classic H_Δ ≈ ln Δ approximation
// guarantee; an exact branch-and-bound solver over small instances lets
// the experiment suite measure true ratios.
package domset

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"pslocal/internal/graph"
)

// Errors returned by the solvers and verifiers.
var (
	// ErrNotCover reports a set family that misses universe elements.
	ErrNotCover = errors.New("domset: sets do not cover the universe")
	// ErrNotDominating reports a vertex set leaving some node undominated.
	ErrNotDominating = errors.New("domset: set is not dominating")
	// ErrBadInstance reports malformed set-cover input.
	ErrBadInstance = errors.New("domset: malformed instance")
	// ErrTooLarge reports an exact-solver request beyond the guard.
	ErrTooLarge = errors.New("domset: instance too large for exact solving")
)

// Instance is a set-cover instance: a universe 0..N-1 and a family of
// subsets.
type Instance struct {
	// N is the universe size.
	N int
	// Sets is the family; each set lists universe elements.
	Sets [][]int32
}

// Validate checks element ranges.
func (in *Instance) Validate() error {
	if in.N < 0 {
		return fmt.Errorf("%w: negative universe", ErrBadInstance)
	}
	for i, s := range in.Sets {
		for _, e := range s {
			if e < 0 || int(e) >= in.N {
				return fmt.Errorf("%w: set %d contains %d outside [0,%d)", ErrBadInstance, i, e, in.N)
			}
		}
	}
	return nil
}

// Coverable reports whether the union of all sets is the universe.
func (in *Instance) Coverable() bool {
	covered := make([]bool, in.N)
	count := 0
	for _, s := range in.Sets {
		for _, e := range s {
			if !covered[e] {
				covered[e] = true
				count++
			}
		}
	}
	return count == in.N
}

// GreedySetCover repeatedly picks the set covering the most uncovered
// elements (ties to the lower index) and returns the chosen set indices.
// The classic guarantee is |greedy| <= H_s·opt with s the largest set
// size.
func GreedySetCover(in *Instance) ([]int32, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	covered := make([]bool, in.N)
	remaining := in.N
	var out []int32
	for remaining > 0 {
		best, bestGain := -1, 0
		for i, s := range in.Sets {
			gain := 0
			for _, e := range s {
				if !covered[e] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("%w: %d elements uncoverable", ErrNotCover, remaining)
		}
		out = append(out, int32(best))
		for _, e := range in.Sets[best] {
			if !covered[e] {
				covered[e] = true
				remaining--
			}
		}
	}
	return out, nil
}

// VerifyCover checks that the chosen sets cover the universe.
func VerifyCover(in *Instance, chosen []int32) error {
	if err := in.Validate(); err != nil {
		return err
	}
	covered := make([]bool, in.N)
	for _, i := range chosen {
		if i < 0 || int(i) >= len(in.Sets) {
			return fmt.Errorf("%w: set index %d out of range", ErrBadInstance, i)
		}
		for _, e := range in.Sets[i] {
			covered[e] = true
		}
	}
	for e, ok := range covered {
		if !ok {
			return fmt.Errorf("%w: element %d uncovered", ErrNotCover, e)
		}
	}
	return nil
}

// ExactSetCover finds a minimum cover by branch and bound; guarded to
// at most 30 sets.
func ExactSetCover(in *Instance) ([]int32, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if len(in.Sets) > 30 {
		return nil, fmt.Errorf("%w: %d sets", ErrTooLarge, len(in.Sets))
	}
	if in.N > 64 {
		return nil, fmt.Errorf("%w: universe %d > 64", ErrTooLarge, in.N)
	}
	if !in.Coverable() {
		return nil, ErrNotCover
	}
	masks := make([]uint64, len(in.Sets))
	for i, s := range in.Sets {
		for _, e := range s {
			masks[i] |= 1 << uint(e)
		}
	}
	full := uint64(0)
	if in.N == 64 {
		full = ^uint64(0)
	} else {
		full = (1 << uint(in.N)) - 1
	}
	// Order sets by size descending for earlier strong covers.
	order := make([]int, len(in.Sets))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return popcount(masks[order[a]]) > popcount(masks[order[b]])
	})
	best := make([]int32, 0, len(in.Sets))
	for _, i := range order {
		best = append(best, int32(i)) // all sets (in order) trivially cover
	}
	var cur []int32
	var rec func(covered uint64, idx int)
	rec = func(covered uint64, idx int) {
		if covered == full {
			if len(cur) < len(best) {
				best = append(best[:0], cur...)
			}
			return
		}
		if len(cur)+1 >= len(best) || idx == len(order) {
			return
		}
		// Bound: the largest remaining set covers at most maxGain new
		// elements per pick.
		uncovered := popcount(full &^ covered)
		maxGain := 0
		for _, i := range order[idx:] {
			if g := popcount(masks[i] &^ covered); g > maxGain {
				maxGain = g
			}
		}
		if maxGain == 0 {
			return
		}
		need := (uncovered + maxGain - 1) / maxGain
		if len(cur)+need >= len(best) {
			return
		}
		// Branch on the first element still uncovered: one of the sets
		// containing it must be picked.
		e := firstZero(covered, full)
		for _, i := range order[idx:] {
			if masks[i]&(1<<uint(e)) == 0 {
				continue
			}
			cur = append(cur, int32(i))
			rec(covered|masks[i], idx)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0, 0)
	sort.Slice(best, func(a, b int) bool { return best[a] < best[b] })
	return best, nil
}

func popcount(v uint64) int {
	c := 0
	for ; v != 0; v &= v - 1 {
		c++
	}
	return c
}

func firstZero(covered, full uint64) int {
	missing := full &^ covered
	i := 0
	for missing&1 == 0 {
		missing >>= 1
		i++
	}
	return i
}

// DominationInstance builds the set-cover view of dominating set: element
// v is covered by the sets of its closed neighbourhood.
func DominationInstance(g *graph.Graph) *Instance {
	in := &Instance{N: g.N(), Sets: make([][]int32, g.N())}
	for v := int32(0); int(v) < g.N(); v++ {
		s := append(g.Neighbors(v), v)
		sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
		in.Sets[v] = s
	}
	return in
}

// GreedyDominatingSet runs greedy set cover on the domination instance;
// the guarantee is |DS| <= (ln(Δ+1)+1)·γ(G).
func GreedyDominatingSet(g *graph.Graph) ([]int32, error) {
	return GreedySetCover(DominationInstance(g))
}

// VerifyDominating checks that every node is in the closed neighbourhood
// of the set.
func VerifyDominating(g *graph.Graph, set []int32) error {
	dominated := make([]bool, g.N())
	for _, v := range set {
		if v < 0 || int(v) >= g.N() {
			return fmt.Errorf("%w: node %d out of range", ErrBadInstance, v)
		}
		dominated[v] = true
		g.ForEachNeighbor(v, func(u int32) bool {
			dominated[u] = true
			return true
		})
	}
	for v, ok := range dominated {
		if !ok {
			return fmt.Errorf("%w: node %d", ErrNotDominating, v)
		}
	}
	return nil
}

// HarmonicBound returns H_s = 1 + 1/2 + ... + 1/s, the greedy set-cover
// guarantee for maximum set size s.
func HarmonicBound(s int) float64 {
	total := 0.0
	for i := 1; i <= s; i++ {
		total += 1 / float64(i)
	}
	return total
}

// LnBound returns ln(Δ+1)+1, the dominating-set form of the guarantee.
func LnBound(maxDegree int) float64 {
	return math.Log(float64(maxDegree+1)) + 1
}

// Package graphio is the graph I/O subsystem: parsing and serialization
// of the repository's two instance substrates — graph.Graph and
// hypergraph.Hypergraph — in three interchangeable formats, selected by a
// Format value or sniffed from the input itself:
//
//   - FormatEdgeList: the repository's native plain-text format
//     ("graph n m" / "hypergraph n m" header, one edge per line, '#'
//     comments), compatible with the files internal/encode historically
//     produced;
//   - FormatDIMACS: the DIMACS .col graph-colouring format ("c" comments,
//     "p edge n m" problem line, 1-based "e u v" edge lines) — graphs
//     only, hypergraphs have no DIMACS representation;
//   - FormatJSON: a single-object JSON document
//     {"type":"graph","n":N,"edges":[[u,v],...]} (hypergraph edges carry
//     any number of vertices), decoded token by token.
//
// Every reader streams: input is consumed line by line (or JSON token by
// token) through a fixed-size buffer, so the raw text is never held in
// memory — only the parsed int32 edge data, which the graph builders need
// anyway. Readers are strict: headers must match the data, vertex ids
// must fit in int32, and duplicate graph edges are reported as
// ErrDuplicateEdge rather than silently merged, because a mismatch at a
// service boundary (cmd/cfserve) is better rejected than papered over.
// Writers produce output that round-trips bit-identically through the
// matching reader; fuzz and property tests in this package pin that down.
//
// The reduction pipeline's result type (core.Result) has a JSON
// serialization here too (WriteResult/ReadResult), so the CLI -out flags,
// the pslocal facade and cmd/cfserve all speak the same schema.
package graphio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"pslocal/internal/graph"
	"pslocal/internal/hypergraph"
)

// Errors reported by the readers and writers.
var (
	// ErrFormat reports malformed input: bad headers, unparsable lines,
	// counts that contradict the data, or vertex ids outside int32.
	ErrFormat = errors.New("graphio: malformed input")
	// ErrDuplicateEdge reports a graph input listing the same undirected
	// edge twice (in either orientation). Graph inputs must be
	// duplicate-free; hypergraph inputs may repeat hyperedges, which are
	// semantically redundant but harmless.
	ErrDuplicateEdge = errors.New("graphio: duplicate edge")
	// ErrUnsupported reports a format/substrate combination with no
	// representation, e.g. a hypergraph in DIMACS.
	ErrUnsupported = errors.New("graphio: unsupported format")
	// ErrUnknownFormat reports a format name or sniffed input that matches
	// no supported format.
	ErrUnknownFormat = errors.New("graphio: unknown format")
)

// Format identifies a supported instance encoding.
type Format int

const (
	// FormatAuto sniffs the format from the first non-blank line of the
	// input ('{' → JSON, "c"/"p" → DIMACS, "graph"/"hypergraph"/'#' →
	// edge list). Writers treat it as FormatEdgeList.
	FormatAuto Format = iota
	// FormatEdgeList is the native plain-text format.
	FormatEdgeList
	// FormatDIMACS is the DIMACS .col graph format (graphs only).
	FormatDIMACS
	// FormatJSON is the single-object JSON document format.
	FormatJSON
)

// String returns the canonical flag spelling of f.
func (f Format) String() string {
	switch f {
	case FormatAuto:
		return "auto"
	case FormatEdgeList:
		return "edgelist"
	case FormatDIMACS:
		return "dimacs"
	case FormatJSON:
		return "json"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ParseFormat maps a flag or query-parameter spelling onto a Format. The
// empty string selects FormatAuto.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return FormatAuto, nil
	case "edgelist", "edge-list", "el", "text":
		return FormatEdgeList, nil
	case "dimacs", "col":
		return FormatDIMACS, nil
	case "json":
		return FormatJSON, nil
	default:
		return FormatAuto, fmt.Errorf("%w: %q (want auto|edgelist|dimacs|json)", ErrUnknownFormat, s)
	}
}

// FormatFromPath guesses a format from a file extension: .col/.dimacs →
// DIMACS, .json → JSON, .g/.hg/.el/.txt → edge list, anything else →
// FormatAuto (readers sniff, writers default to the edge list).
func FormatFromPath(path string) Format {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".col", ".dimacs":
		return FormatDIMACS
	case ".json":
		return FormatJSON
	case ".g", ".hg", ".el", ".txt":
		return FormatEdgeList
	default:
		return FormatAuto
	}
}

// ReadGraph parses a graph from r in the given format (FormatAuto
// sniffs). The input streams through a line or token buffer; the raw text
// is never held in memory.
func ReadGraph(r io.Reader, f Format) (*graph.Graph, error) {
	br := bufio.NewReader(r)
	f, err := resolveFormat(br, f)
	if err != nil {
		return nil, err
	}
	switch f {
	case FormatEdgeList:
		return readEdgeListGraph(br)
	case FormatDIMACS:
		return readDIMACSGraph(br)
	case FormatJSON:
		return readJSONGraph(br)
	default:
		return nil, fmt.Errorf("%w: %v", ErrUnknownFormat, f)
	}
}

// WriteGraph writes g to w in the given format (FormatAuto selects the
// edge list). The output round-trips bit-identically through ReadGraph.
func WriteGraph(w io.Writer, g *graph.Graph, f Format) error {
	switch f {
	case FormatAuto, FormatEdgeList:
		return writeEdgeListGraph(w, g)
	case FormatDIMACS:
		return writeDIMACSGraph(w, g)
	case FormatJSON:
		return writeJSONGraph(w, g)
	default:
		return fmt.Errorf("%w: %v", ErrUnknownFormat, f)
	}
}

// ReadHypergraph parses a hypergraph from r in the given format
// (FormatAuto sniffs). DIMACS input is rejected with ErrUnsupported.
func ReadHypergraph(r io.Reader, f Format) (*hypergraph.Hypergraph, error) {
	br := bufio.NewReader(r)
	f, err := resolveFormat(br, f)
	if err != nil {
		return nil, err
	}
	switch f {
	case FormatEdgeList:
		return readEdgeListHypergraph(br)
	case FormatDIMACS:
		return nil, fmt.Errorf("%w: hypergraphs have no DIMACS representation", ErrUnsupported)
	case FormatJSON:
		return readJSONHypergraph(br)
	default:
		return nil, fmt.Errorf("%w: %v", ErrUnknownFormat, f)
	}
}

// WriteHypergraph writes h to w in the given format (FormatAuto selects
// the edge list). DIMACS is rejected with ErrUnsupported.
func WriteHypergraph(w io.Writer, h *hypergraph.Hypergraph, f Format) error {
	switch f {
	case FormatAuto, FormatEdgeList:
		return writeEdgeListHypergraph(w, h)
	case FormatDIMACS:
		return fmt.Errorf("%w: hypergraphs have no DIMACS representation", ErrUnsupported)
	case FormatJSON:
		return writeJSONHypergraph(w, h)
	default:
		return fmt.Errorf("%w: %v", ErrUnknownFormat, f)
	}
}

// ReadGraphFile reads a graph from path, sniffing the format from the
// content (the extension is not trusted on the read path).
func ReadGraphFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadGraph(f, FormatAuto)
}

// WriteGraphFile writes g to path in the format implied by the extension
// (FormatFromPath; unknown extensions get the edge list).
func WriteGraphFile(path string, g *graph.Graph) (err error) {
	return writeFile(path, func(w io.Writer) error {
		return WriteGraph(w, g, FormatFromPath(path))
	})
}

// ReadHypergraphFile reads a hypergraph from path, sniffing the format
// from the content.
func ReadHypergraphFile(path string) (*hypergraph.Hypergraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadHypergraph(f, FormatAuto)
}

// WriteHypergraphFile writes h to path in the format implied by the
// extension.
func WriteHypergraphFile(path string, h *hypergraph.Hypergraph) error {
	return writeFile(path, func(w io.Writer) error {
		return WriteHypergraph(w, h, FormatFromPath(path))
	})
}

// writeFile funnels the Write*File helpers through one create/flush/close
// sequence that reports the first error.
func writeFile(path string, write func(io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return write(f)
}

// resolveFormat returns f unchanged unless it is FormatAuto, in which
// case it sniffs the format from the buffered reader without consuming
// input.
func resolveFormat(br *bufio.Reader, f Format) (Format, error) {
	if f != FormatAuto {
		return f, nil
	}
	return sniffFormat(br)
}

// sniffFormat peeks at the start of the input and classifies it by the
// first decisive line: '{' opens JSON, "c"/"p" lines are DIMACS,
// "graph"/"hypergraph" headers and '#' comments are the edge list.
func sniffFormat(br *bufio.Reader) (Format, error) {
	const window = 4096
	buf, err := br.Peek(window)
	if len(buf) == 0 {
		if err != nil && err != io.EOF {
			return FormatAuto, err
		}
		return FormatAuto, fmt.Errorf("%w: empty input", ErrFormat)
	}
	for _, line := range strings.Split(string(buf), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case line[0] == '{':
			return FormatJSON, nil
		case line[0] == '#':
			return FormatEdgeList, nil
		case line == "c" || strings.HasPrefix(line, "c ") || strings.HasPrefix(line, "p "):
			return FormatDIMACS, nil
		case strings.HasPrefix(line, "graph ") || strings.HasPrefix(line, "hypergraph "):
			return FormatEdgeList, nil
		default:
			return FormatAuto, fmt.Errorf("%w: unrecognised input starting %q", ErrUnknownFormat, line)
		}
	}
	return FormatAuto, fmt.Errorf("%w: no decisive line in the first %d bytes", ErrUnknownFormat, window)
}

// newScanner wraps br with the line scanner shared by the text formats:
// a 64 KiB initial buffer growing to 16 MiB for pathological lines.
func newScanner(br *bufio.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return sc
}

package graphio

// json.go implements the JSON document format, the one cmd/cfserve
// advertises as its default request body:
//
//	{"type":"graph","n":5,"edges":[[0,1],[1,2]]}
//	{"type":"hypergraph","n":6,"edges":[[0,1,2],[3,4,5]]}
//
// An optional "weights":[w0,...,w_{n-1}] key carries per-vertex weights;
// the writers emit it only on weighted instances, so unweighted documents
// round-trip byte-identically. The document is decoded token by token
// with json.Decoder, so only the parsed int32 edge data is ever resident
// — the raw text streams through the decoder's fixed buffer. Decoding is
// strict: unknown or repeated keys, a "type" that contradicts the
// requested substrate, fractional or out-of-range numbers, a weight
// vector of the wrong length, and trailing data after the closing brace
// are all reported as ErrFormat.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"pslocal/internal/graph"
	"pslocal/internal/hypergraph"
)

// readJSONGraph parses a {"type":"graph",...} document.
func readJSONGraph(br *bufio.Reader) (*graph.Graph, error) {
	n, edges, ws, err := readJSONInstance(br, "graph")
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(n)
	b.EdgeCapacityHint(len(edges))
	for i, e := range edges {
		if len(e) != 2 {
			return nil, fmt.Errorf("%w: edge %d has %d endpoints, want 2", ErrFormat, i, len(e))
		}
		b.AddEdge(e[0], e[1])
	}
	b.SetWeights(ws)
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if g.M() != len(edges) {
		return nil, fmt.Errorf("%w: %d of %d edges repeat an earlier edge", ErrDuplicateEdge, len(edges)-g.M(), len(edges))
	}
	return g, nil
}

// writeJSONGraph writes g as a single-object JSON document.
func writeJSONGraph(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `{"type":"graph","n":%d,"edges":[`, g.N())
	first := true
	var err error
	g.ForEachEdge(func(u, v int32) bool {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		_, err = fmt.Fprintf(bw, "[%d,%d]", u, v)
		return err == nil
	})
	if err != nil {
		return fmt.Errorf("graphio: writing JSON graph: %w", err)
	}
	bw.WriteByte(']')
	writeJSONWeights(bw, g.Weighted(), g.N(), g.Weight)
	bw.WriteString("}\n")
	return bw.Flush()
}

// readJSONHypergraph parses a {"type":"hypergraph",...} document.
func readJSONHypergraph(br *bufio.Reader) (*hypergraph.Hypergraph, error) {
	n, edges, ws, err := readJSONInstance(br, "hypergraph")
	if err != nil {
		return nil, err
	}
	h, err := hypergraph.NewWeighted(n, edges, ws)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	return h, nil
}

// writeJSONHypergraph writes h as a single-object JSON document.
func writeJSONHypergraph(w io.Writer, h *hypergraph.Hypergraph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `{"type":"hypergraph","n":%d,"edges":[`, h.N())
	for j := 0; j < h.M(); j++ {
		if j > 0 {
			bw.WriteByte(',')
		}
		bw.WriteByte('[')
		first := true
		h.ForEachEdgeVertex(j, func(v int32) bool {
			if !first {
				bw.WriteByte(',')
			}
			first = false
			bw.WriteString(strconv.Itoa(int(v)))
			return true
		})
		bw.WriteByte(']')
	}
	bw.WriteByte(']')
	writeJSONWeights(bw, h.Weighted(), h.N(), h.Weight)
	bw.WriteString("}\n")
	return bw.Flush()
}

// writeJSONWeights emits the `,"weights":[...]` member on weighted
// instances (all n entries, so the document is self-describing).
func writeJSONWeights(bw *bufio.Writer, weighted bool, n int, weight func(int32) int64) {
	if !weighted {
		return
	}
	bw.WriteString(`,"weights":[`)
	for v := 0; v < n; v++ {
		if v > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(strconv.FormatInt(weight(int32(v)), 10))
	}
	bw.WriteByte(']')
}

// readJSONInstance token-decodes one {"type","n","edges","weights"}
// document. "type", when present, must equal wantType; "n" is required;
// "edges" defaults to none; "weights" defaults to all-unit (nil). Keys may
// appear in any order but not twice.
func readJSONInstance(r io.Reader, wantType string) (n int, edges [][]int32, ws []int64, err error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	if err := expectDelim(dec, '{'); err != nil {
		return 0, nil, nil, err
	}
	seen := map[string]bool{}
	haveN := false
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			return 0, nil, nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		key, ok := tok.(string)
		if !ok {
			return 0, nil, nil, fmt.Errorf("%w: object key %v", ErrFormat, tok)
		}
		if seen[key] {
			return 0, nil, nil, fmt.Errorf("%w: repeated key %q", ErrFormat, key)
		}
		seen[key] = true
		switch key {
		case "type":
			tok, err := dec.Token()
			if err != nil {
				return 0, nil, nil, fmt.Errorf("%w: %v", ErrFormat, err)
			}
			typ, ok := tok.(string)
			if !ok || typ != wantType {
				return 0, nil, nil, fmt.Errorf("%w: type %v, want %q", ErrFormat, tok, wantType)
			}
		case "n":
			v, err := decodeInt32(dec)
			if err != nil {
				return 0, nil, nil, err
			}
			if v < 0 {
				return 0, nil, nil, fmt.Errorf("%w: negative n %d", ErrFormat, v)
			}
			n, haveN = int(v), true
		case "edges":
			edges, err = decodeEdges(dec)
			if err != nil {
				return 0, nil, nil, err
			}
		case "weights":
			ws, err = decodeWeights(dec)
			if err != nil {
				return 0, nil, nil, err
			}
		default:
			return 0, nil, nil, fmt.Errorf("%w: unknown key %q", ErrFormat, key)
		}
	}
	if err := expectDelim(dec, '}'); err != nil {
		return 0, nil, nil, err
	}
	if !haveN {
		return 0, nil, nil, fmt.Errorf("%w: missing key \"n\"", ErrFormat)
	}
	if ws != nil && len(ws) != n {
		return 0, nil, nil, fmt.Errorf("%w: %d weights for %d vertices", ErrFormat, len(ws), n)
	}
	if _, err := dec.Token(); err != io.EOF {
		return 0, nil, nil, fmt.Errorf("%w: trailing data after the document", ErrFormat)
	}
	return n, edges, ws, nil
}

// decodeEdges consumes [[...],[...],...], one inner array per edge.
func decodeEdges(dec *json.Decoder) ([][]int32, error) {
	if err := expectDelim(dec, '['); err != nil {
		return nil, err
	}
	var edges [][]int32
	for dec.More() {
		if err := expectDelim(dec, '['); err != nil {
			return nil, err
		}
		var edge []int32
		for dec.More() {
			v, err := decodeInt32(dec)
			if err != nil {
				return nil, err
			}
			edge = append(edge, v)
		}
		if err := expectDelim(dec, ']'); err != nil {
			return nil, err
		}
		edges = append(edges, edge)
	}
	if err := expectDelim(dec, ']'); err != nil {
		return nil, err
	}
	return edges, nil
}

// decodeWeights consumes [w0,w1,...], one int64 per vertex. The result is
// non-nil even when empty so the caller can length-check it against n.
func decodeWeights(dec *json.Decoder) ([]int64, error) {
	if err := expectDelim(dec, '['); err != nil {
		return nil, err
	}
	ws := []int64{}
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		num, ok := tok.(json.Number)
		if !ok {
			return nil, fmt.Errorf("%w: weight %v is not a number", ErrFormat, tok)
		}
		w, err := strconv.ParseInt(num.String(), 10, 64)
		if err != nil {
			if ne, ok := err.(*strconv.NumError); ok && ne.Err == strconv.ErrRange {
				return nil, fmt.Errorf("%w: weight %s overflows int64", ErrFormat, num)
			}
			return nil, fmt.Errorf("%w: non-integer weight %s", ErrFormat, num)
		}
		ws = append(ws, w)
	}
	if err := expectDelim(dec, ']'); err != nil {
		return nil, err
	}
	return ws, nil
}

// decodeInt32 consumes one number token that must be an integer fitting
// in int32 (overflow is an explicit error, not a wraparound).
func decodeInt32(dec *json.Decoder) (int32, error) {
	tok, err := dec.Token()
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	num, ok := tok.(json.Number)
	if !ok {
		return 0, fmt.Errorf("%w: %v is not a number", ErrFormat, tok)
	}
	v, err := strconv.ParseInt(num.String(), 10, 32)
	if err != nil {
		if ne, ok := err.(*strconv.NumError); ok && ne.Err == strconv.ErrRange {
			return 0, fmt.Errorf("%w: vertex id %s overflows int32", ErrFormat, num)
		}
		return 0, fmt.Errorf("%w: non-integer number %s", ErrFormat, num)
	}
	return int32(v), nil
}

// expectDelim consumes one token and checks it is the given delimiter.
func expectDelim(dec *json.Decoder, want rune) error {
	tok, err := dec.Token()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if d, ok := tok.(json.Delim); !ok || rune(d) != want {
		return fmt.Errorf("%w: token %v, want %q", ErrFormat, tok, want)
	}
	return nil
}

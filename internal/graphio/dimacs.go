package graphio

// dimacs.go implements the DIMACS .col graph-colouring format, the lingua
// franca of published graph instances:
//
//	c  an optional comment
//	p edge <n> <m>
//	n <id> <w>
//	e <u> <v>
//
// Vertices are 1-based in the file and mapped onto the repository's
// 0-based dense ids. "p col" is accepted as a problem-line synonym seen
// in the wild. "n id w" node lines carry vertex weights (the weighted-
// DIMACS convention); the writer emits one per vertex on weighted graphs
// and none otherwise, so unweighted instances round-trip byte-identically.
// Only graphs have a DIMACS representation; hypergraph calls report
// ErrUnsupported at the dispatch layer.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"pslocal/internal/graph"
)

// readDIMACSGraph parses a DIMACS .col document.
func readDIMACSGraph(br *bufio.Reader) (*graph.Graph, error) {
	sc := newScanner(br)
	var (
		b     *graph.Builder
		m     int
		edges int
		ln    int
	)
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch line[0] {
		case 'c':
			if line == "c" || line[1] == ' ' || line[1] == '\t' {
				continue
			}
			return nil, fmt.Errorf("%w: line %d: unrecognised line %q", ErrFormat, ln, line)
		case 'p':
			if b != nil {
				return nil, fmt.Errorf("%w: line %d: second problem line", ErrFormat, ln)
			}
			fields := strings.Fields(line)
			if len(fields) != 4 || (fields[1] != "edge" && fields[1] != "col") {
				return nil, fmt.Errorf("%w: line %d: problem line %q, want \"p edge n m\"", ErrFormat, ln, line)
			}
			n64, err1 := strconv.ParseInt(fields[2], 10, 32)
			m64, err2 := strconv.ParseInt(fields[3], 10, 64)
			if err1 != nil || err2 != nil || n64 < 0 || m64 < 0 {
				return nil, fmt.Errorf("%w: line %d: problem line %q", ErrFormat, ln, line)
			}
			m = int(m64)
			b = graph.NewBuilder(int(n64))
			b.EdgeCapacityHint(m)
		case 'n':
			if b == nil {
				return nil, fmt.Errorf("%w: line %d: node line before the problem line", ErrFormat, ln)
			}
			fields := strings.Fields(line)
			if len(fields) != 3 || fields[0] != "n" {
				return nil, fmt.Errorf("%w: line %d: want \"n id w\", got %q", ErrFormat, ln, line)
			}
			id, err1 := parseVertex(fields[1])
			w, err2 := parseWeight(fields[2])
			if err1 != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, ln, err1)
			}
			if err2 != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, ln, err2)
			}
			if id < 1 {
				return nil, fmt.Errorf("%w: line %d: DIMACS vertices are 1-based, got %q", ErrFormat, ln, line)
			}
			b.SetWeight(id-1, w)
		case 'e':
			if b == nil {
				return nil, fmt.Errorf("%w: line %d: edge before the problem line", ErrFormat, ln)
			}
			fields := strings.Fields(line)
			if len(fields) != 3 {
				return nil, fmt.Errorf("%w: line %d: want \"e u v\", got %q", ErrFormat, ln, line)
			}
			u, err1 := parseVertex(fields[1])
			v, err2 := parseVertex(fields[2])
			if err1 != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, ln, err1)
			}
			if err2 != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, ln, err2)
			}
			if u < 1 || v < 1 {
				return nil, fmt.Errorf("%w: line %d: DIMACS vertices are 1-based, got %q", ErrFormat, ln, line)
			}
			b.AddEdge(u-1, v-1)
			edges++
		default:
			return nil, fmt.Errorf("%w: line %d: unrecognised line %q", ErrFormat, ln, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: reading DIMACS: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("%w: missing \"p edge n m\" problem line", ErrFormat)
	}
	if edges != m {
		return nil, fmt.Errorf("%w: problem line promises %d edges, found %d", ErrFormat, m, edges)
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if g.M() != edges {
		return nil, fmt.Errorf("%w: %d of %d edge lines repeat an earlier edge", ErrDuplicateEdge, edges-g.M(), edges)
	}
	return g, nil
}

// writeDIMACSGraph writes g as a DIMACS .col document with 1-based
// vertices; weighted graphs get one "n id w" node line per vertex.
func writeDIMACSGraph(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p edge %d %d\n", g.N(), g.M())
	if g.Weighted() {
		for v := 0; v < g.N(); v++ {
			fmt.Fprintf(bw, "n %d %d\n", v+1, g.Weight(int32(v)))
		}
	}
	var err error
	g.ForEachEdge(func(u, v int32) bool {
		_, err = fmt.Fprintf(bw, "e %d %d\n", u+1, v+1)
		return err == nil
	})
	if err != nil {
		return fmt.Errorf("graphio: writing DIMACS: %w", err)
	}
	return bw.Flush()
}

package graphio

// weighted_test.go covers the weighted instance encodings: round trips of
// weighted graphs and hypergraphs through every supporting format, strict
// parse errors, and the contract that unweighted documents are
// byte-identical to the pre-weights schema.

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"pslocal/internal/core"
	"pslocal/internal/graph"
	"pslocal/internal/hypergraph"
)

// withRandomWeights attaches a skewed random weight vector to g.
func withRandomWeights(t *testing.T, g *graph.Graph, rng *rand.Rand) *graph.Graph {
	t.Helper()
	if g.N() == 0 {
		return g
	}
	ws := make([]int64, g.N())
	for i := range ws {
		ws[i] = 1 + rng.Int63n(1<<20)*rng.Int63n(2)
	}
	ws[0] = graph.MaxWeight // pin the extreme value through every format
	wg, err := graph.WithWeights(g, ws)
	if err != nil {
		t.Fatalf("WithWeights: %v", err)
	}
	return wg
}

func TestWeightedGraphRoundTripAllFormats(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for name, base := range testGraphs(t) {
		g := withRandomWeights(t, base, rng)
		if !g.Weighted() {
			continue // the empty graph cannot carry weights
		}
		for _, f := range []Format{FormatEdgeList, FormatDIMACS, FormatJSON} {
			var buf bytes.Buffer
			if err := WriteGraph(&buf, g, f); err != nil {
				t.Fatalf("%s/%v: write: %v", name, f, err)
			}
			encoded := buf.String()
			for _, rf := range []Format{f, FormatAuto} {
				got, err := ReadGraph(strings.NewReader(encoded), rf)
				if err != nil {
					t.Fatalf("%s/%v as %v: read: %v\n%s", name, f, rf, err, encoded)
				}
				if !graph.Equal(g, got) {
					t.Errorf("%s/%v as %v: round trip changed the weighted graph", name, f, rf)
				}
			}
			// Canonical form: re-encoding the parse is byte-identical.
			got, err := ReadGraph(strings.NewReader(encoded), f)
			if err != nil {
				t.Fatalf("%s/%v: reread: %v", name, f, err)
			}
			var buf2 bytes.Buffer
			if err := WriteGraph(&buf2, got, f); err != nil {
				t.Fatalf("%s/%v: rewrite: %v", name, f, err)
			}
			if buf2.String() != encoded {
				t.Errorf("%s/%v: weighted re-encoding not byte-identical", name, f)
			}
		}
	}
}

func TestWeightedHypergraphRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for name, base := range testHypergraphs(t) {
		ws := make([]int64, base.N())
		for i := range ws {
			ws[i] = 1 + rng.Int63n(999)
		}
		h, err := hypergraph.WithWeights(base, ws)
		if err != nil {
			t.Fatalf("%s: WithWeights: %v", name, err)
		}
		if !h.Weighted() {
			t.Fatalf("%s: weight vector normalised away unexpectedly", name)
		}
		for _, f := range []Format{FormatEdgeList, FormatJSON} {
			var buf bytes.Buffer
			if err := WriteHypergraph(&buf, h, f); err != nil {
				t.Fatalf("%s/%v: write: %v", name, f, err)
			}
			for _, rf := range []Format{f, FormatAuto} {
				got, err := ReadHypergraph(strings.NewReader(buf.String()), rf)
				if err != nil {
					t.Fatalf("%s/%v as %v: read: %v\n%s", name, f, rf, err, buf.String())
				}
				if got.N() != h.N() || !reflect.DeepEqual(got.Edges(), h.Edges()) {
					t.Errorf("%s/%v as %v: round trip changed the structure", name, f, rf)
				}
				if !reflect.DeepEqual(got.Weights(), h.Weights()) {
					t.Errorf("%s/%v as %v: round trip changed the weights: %v -> %v",
						name, f, rf, h.Weights(), got.Weights())
				}
			}
		}
	}
}

// TestUnweightedEncodingUnchanged pins the schema contract: writers emit
// weight syntax only for weighted instances, so unweighted documents are
// byte-identical to the pre-weights encoding (no "v" lines, no "n" lines,
// no "weights" key).
func TestUnweightedEncodingUnchanged(t *testing.T) {
	g := graph.Grid(3, 3)
	for f, needle := range map[Format]string{
		FormatEdgeList: "\nv ",
		FormatDIMACS:   "\nn ",
		FormatJSON:     `"weights"`,
	} {
		var buf bytes.Buffer
		if err := WriteGraph(&buf, g, f); err != nil {
			t.Fatalf("%v: write: %v", f, err)
		}
		if strings.Contains(buf.String(), needle) {
			t.Errorf("%v: unweighted document contains weight syntax %q:\n%s", f, needle, buf.String())
		}
	}
}

func TestWeightedGraphParseErrors(t *testing.T) {
	cases := []struct {
		name   string
		format Format
		input  string
	}{
		{"edgelist weight overflow", FormatEdgeList, "3 0\nv 0 99999999999999999999\n"},
		{"edgelist negative weight", FormatEdgeList, "3 0\nv 0 -2\n"},
		{"edgelist weight above cap", FormatEdgeList, "3 0\nv 0 2147483648\n"},
		{"edgelist vertex out of range", FormatEdgeList, "3 0\nv 7 2\n"},
		{"edgelist duplicate declaration", FormatEdgeList, "3 0\nv 1 2\nv 1 3\n"},
		{"edgelist bad weight token", FormatEdgeList, "3 0\nv 1 two\n"},
		{"dimacs negative weight", FormatDIMACS, "p edge 3 0\nn 1 -5\n"},
		{"dimacs weight overflow", FormatDIMACS, "p edge 3 0\nn 1 99999999999999999999\n"},
		{"dimacs node before problem line", FormatDIMACS, "n 1 5\np edge 3 0\n"},
		{"dimacs node id out of range", FormatDIMACS, "p edge 3 0\nn 4 5\n"},
		{"dimacs short node line", FormatDIMACS, "p edge 3 0\nn 1\n"},
		{"json weight length mismatch", FormatJSON, `{"type":"graph","n":3,"edges":[],"weights":[1,2]}`},
		{"json empty weights nonempty graph", FormatJSON, `{"type":"graph","n":3,"edges":[],"weights":[]}`},
		{"json negative weight", FormatJSON, `{"type":"graph","n":2,"edges":[],"weights":[1,-3]}`},
		{"json non-integer weight", FormatJSON, `{"type":"graph","n":2,"edges":[],"weights":[1,2.5]}`},
		{"json weight overflow", FormatJSON, `{"type":"graph","n":2,"edges":[],"weights":[1,99999999999999999999]}`},
	}
	for _, tc := range cases {
		if _, err := ReadGraph(strings.NewReader(tc.input), tc.format); !errors.Is(err, ErrFormat) {
			t.Errorf("%s: err = %v, want ErrFormat", tc.name, err)
		}
	}
}

func TestWeightedHypergraphParseErrors(t *testing.T) {
	cases := []struct {
		name   string
		format Format
		input  string
	}{
		{"edgelist negative weight", FormatEdgeList, "h 3 0\nv 0 -2\n"},
		{"edgelist duplicate declaration", FormatEdgeList, "h 3 0\nv 1 2\nv 1 3\n"},
		{"json weight length mismatch", FormatJSON, `{"type":"hypergraph","n":3,"edges":[],"weights":[1,2]}`},
	}
	for _, tc := range cases {
		if _, err := ReadHypergraph(strings.NewReader(tc.input), tc.format); !errors.Is(err, ErrFormat) {
			t.Errorf("%s: err = %v, want ErrFormat", tc.name, err)
		}
	}
}

// TestWeightedResultRoundTrip checks the weight fields of the result
// document survive a write/read cycle and stay absent when unweighted.
func TestWeightedResultRoundTrip(t *testing.T) {
	res := &core.Result{
		K:           2,
		TotalColors: 4,
		Weighted:    true,
		TotalWeight: 321,
		Phases: []core.PhaseStat{
			{Phase: 1, EdgesBefore: 5, ConflictNodes: 9, ConflictEdges: 12, ISSize: 3, ISWeight: 200, HappyRemoved: 4},
			{Phase: 2, EdgesBefore: 1, ConflictNodes: 2, ConflictEdges: 1, ISSize: 1, ISWeight: 121, HappyRemoved: 1},
		},
	}
	var buf bytes.Buffer
	if err := WriteResult(&buf, res); err != nil {
		t.Fatalf("WriteResult: %v", err)
	}
	got, err := ReadResult(&buf)
	if err != nil {
		t.Fatalf("ReadResult: %v", err)
	}
	if got.Weighted != res.Weighted || got.TotalWeight != res.TotalWeight {
		t.Errorf("weight fields lost: %+v", got)
	}
	if got.Phases[0].ISWeight != 200 || got.Phases[1].ISWeight != 121 {
		t.Errorf("phase weights lost: %+v", got.Phases)
	}

	// An unweighted result document must not mention the weight keys.
	var ubuf bytes.Buffer
	if err := WriteResult(&ubuf, &core.Result{K: 2, TotalColors: 2,
		Phases: []core.PhaseStat{{Phase: 1, EdgesBefore: 1, ISSize: 1, HappyRemoved: 1}}}); err != nil {
		t.Fatalf("WriteResult: %v", err)
	}
	for _, key := range []string{"weighted", "total_weight", "is_weight"} {
		if strings.Contains(ubuf.String(), key) {
			t.Errorf("unweighted result document contains %q:\n%s", key, ubuf.String())
		}
	}
}

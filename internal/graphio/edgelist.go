package graphio

// edgelist.go implements the repository's native plain-text format:
//
//	graph <n> <m>          hypergraph <n> <m>
//	v <id> <w>             v <id> <w>
//	u v                    v1 v2 v3 ...
//	...                    ...
//
// One edge per line, '#' starts a comment, blank lines are skipped.
// Vertex-declaration lines start with the keyword "v" and carry an
// optional weight column (default 1); writers emit them only for
// non-unit weights, so unweighted instances round-trip byte-identically
// to the historical format. The syntax otherwise matches the files
// internal/encode historically produced, so existing instances keep
// working; this reader is stricter in that graph inputs with duplicate
// edges are rejected (ErrDuplicateEdge) instead of silently merged.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"pslocal/internal/graph"
	"pslocal/internal/hypergraph"
)

// readEdgeListGraph parses the "graph n m" text format.
func readEdgeListGraph(br *bufio.Reader) (*graph.Graph, error) {
	sc := newScanner(br)
	n, m, ln, err := readEdgeListHeader(sc, "graph")
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(n)
	b.EdgeCapacityHint(m)
	edges := 0
	var declared map[int32]bool
	for sc.Scan() {
		ln++
		fields, skip := splitEdgeListLine(sc.Text())
		if skip {
			continue
		}
		if fields[0] == "v" {
			id, w, err := parseVertexDecl(fields, n)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, ln, err)
			}
			if declared == nil {
				declared = make(map[int32]bool)
			}
			if declared[id] {
				return nil, fmt.Errorf("%w: line %d: vertex %d declared twice", ErrFormat, ln, id)
			}
			declared[id] = true
			b.SetWeight(id, w)
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("%w: line %d: want \"u v\", got %q", ErrFormat, ln, sc.Text())
		}
		u, err1 := parseVertex(fields[0])
		v, err2 := parseVertex(fields[1])
		if err1 != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, ln, err1)
		}
		if err2 != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, ln, err2)
		}
		b.AddEdge(u, v)
		edges++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: reading graph: %w", err)
	}
	if edges != m {
		return nil, fmt.Errorf("%w: header promises %d edges, found %d", ErrFormat, m, edges)
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if g.M() != edges {
		return nil, fmt.Errorf("%w: %d of %d edge lines repeat an earlier edge", ErrDuplicateEdge, edges-g.M(), edges)
	}
	return g, nil
}

// writeEdgeListGraph writes g in the "graph n m" text format. Weighted
// graphs get one "v id w" declaration per non-unit-weight vertex.
func writeEdgeListGraph(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph %d %d\n", g.N(), g.M())
	writeEdgeListWeights(bw, g.Weighted(), g.N(), g.Weight)
	var err error
	g.ForEachEdge(func(u, v int32) bool {
		_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		return err == nil
	})
	if err != nil {
		return fmt.Errorf("graphio: writing graph: %w", err)
	}
	return bw.Flush()
}

// readEdgeListHypergraph parses the "hypergraph n m" text format.
func readEdgeListHypergraph(br *bufio.Reader) (*hypergraph.Hypergraph, error) {
	sc := newScanner(br)
	n, m, ln, err := readEdgeListHeader(sc, "hypergraph")
	if err != nil {
		return nil, err
	}
	edges := make([][]int32, 0, m)
	var ws []int64
	var declared map[int32]bool
	for sc.Scan() {
		ln++
		fields, skip := splitEdgeListLine(sc.Text())
		if skip {
			continue
		}
		if fields[0] == "v" {
			id, w, err := parseVertexDecl(fields, n)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, ln, err)
			}
			if declared == nil {
				declared = make(map[int32]bool)
			}
			if declared[id] {
				return nil, fmt.Errorf("%w: line %d: vertex %d declared twice", ErrFormat, ln, id)
			}
			declared[id] = true
			if ws == nil {
				ws = make([]int64, n)
				for i := range ws {
					ws[i] = 1
				}
			}
			ws[id] = w
			continue
		}
		edge := make([]int32, 0, len(fields))
		for _, f := range fields {
			v, err := parseVertex(f)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, ln, err)
			}
			edge = append(edge, v)
		}
		edges = append(edges, edge)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: reading hypergraph: %w", err)
	}
	if len(edges) != m {
		return nil, fmt.Errorf("%w: header promises %d edges, found %d", ErrFormat, m, len(edges))
	}
	h, err := hypergraph.NewWeighted(n, edges, ws)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	return h, nil
}

// writeEdgeListHypergraph writes h in the "hypergraph n m" text format.
// Weighted hypergraphs get one "v id w" declaration per non-unit-weight
// vertex.
func writeEdgeListHypergraph(w io.Writer, h *hypergraph.Hypergraph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "hypergraph %d %d\n", h.N(), h.M())
	writeEdgeListWeights(bw, h.Weighted(), h.N(), h.Weight)
	for j := 0; j < h.M(); j++ {
		parts := make([]string, 0, h.EdgeSize(j))
		h.ForEachEdgeVertex(j, func(v int32) bool {
			parts = append(parts, strconv.Itoa(int(v)))
			return true
		})
		if _, err := fmt.Fprintln(bw, strings.Join(parts, " ")); err != nil {
			return fmt.Errorf("graphio: writing hypergraph: %w", err)
		}
	}
	return bw.Flush()
}

// readEdgeListHeader consumes lines up to and including the
// "<kind> <n> <m>" header and returns n, m and the number of lines read.
func readEdgeListHeader(sc *bufio.Scanner, kind string) (n, m, ln int, err error) {
	for sc.Scan() {
		ln++
		fields, skip := splitEdgeListLine(sc.Text())
		if skip {
			continue
		}
		if len(fields) != 3 || fields[0] != kind {
			return 0, 0, ln, fmt.Errorf("%w: line %d: header %q, want %q n m", ErrFormat, ln, sc.Text(), kind)
		}
		n, err1 := strconv.Atoi(fields[1])
		m, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || n < 0 || m < 0 {
			return 0, 0, ln, fmt.Errorf("%w: line %d: header %q", ErrFormat, ln, sc.Text())
		}
		return n, m, ln, nil
	}
	if err := sc.Err(); err != nil {
		return 0, 0, ln, fmt.Errorf("graphio: reading header: %w", err)
	}
	return 0, 0, ln, fmt.Errorf("%w: missing %q header", ErrFormat, kind)
}

// splitEdgeListLine tokenises a line; skip is true for blanks and '#'
// comments.
func splitEdgeListLine(line string) (fields []string, skip bool) {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	fields = strings.Fields(line)
	return fields, len(fields) == 0
}

// parseVertexDecl parses a "v id [w]" vertex-declaration line (the weight
// column defaults to 1) and range-checks the id against n.
func parseVertexDecl(fields []string, n int) (id int32, w int64, err error) {
	if len(fields) != 2 && len(fields) != 3 {
		return 0, 0, fmt.Errorf("want \"v id [w]\", got %d fields", len(fields))
	}
	id, err = parseVertex(fields[1])
	if err != nil {
		return 0, 0, err
	}
	if id < 0 || int(id) >= n {
		return 0, 0, fmt.Errorf("vertex %d out of range [0,%d)", id, n)
	}
	w = 1
	if len(fields) == 3 {
		w, err = parseWeight(fields[2])
		if err != nil {
			return 0, 0, err
		}
	}
	return id, w, nil
}

// parseWeight parses a vertex weight, reporting overflow beyond int64
// explicitly; range validation ([0, MaxWeight]) is the substrate's job.
func parseWeight(s string) (int64, error) {
	w, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		if ne, ok := err.(*strconv.NumError); ok && ne.Err == strconv.ErrRange {
			return 0, fmt.Errorf("weight %q overflows int64", s)
		}
		return 0, fmt.Errorf("bad weight %q", s)
	}
	return w, nil
}

// writeEdgeListWeights emits one "v id w" line per non-unit-weight vertex.
func writeEdgeListWeights(bw *bufio.Writer, weighted bool, n int, weight func(int32) int64) {
	if !weighted {
		return
	}
	for v := 0; v < n; v++ {
		if w := weight(int32(v)); w != 1 {
			fmt.Fprintf(bw, "v %d %d\n", v, w)
		}
	}
}

// parseVertex parses a 0-based vertex id, reporting overflow beyond int32
// explicitly (the dense-id substrates cannot represent larger graphs).
func parseVertex(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 10, 32)
	if err != nil {
		if ne, ok := err.(*strconv.NumError); ok && ne.Err == strconv.ErrRange {
			return 0, fmt.Errorf("vertex id %q overflows int32", s)
		}
		return 0, fmt.Errorf("bad vertex id %q", s)
	}
	return int32(v), nil
}

package graphio

import (
	"bufio"
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pslocal/internal/core"
	"pslocal/internal/encode"
	"pslocal/internal/graph"
	"pslocal/internal/hypergraph"
)

// testGraphs returns a spread of graph shapes: empty, edgeless, sparse
// random, dense random, and structured.
func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	return map[string]*graph.Graph{
		"empty":    graph.NewBuilder(0).MustBuild(),
		"edgeless": graph.NewBuilder(5).MustBuild(),
		"sparse":   graph.GnP(40, 0.05, rng),
		"dense":    graph.GnP(25, 0.5, rng),
		"grid":     graph.Grid(4, 6),
		"cycle":    graph.Cycle(9),
	}
}

// testHypergraphs returns a spread of hypergraph instances.
func testHypergraphs(t *testing.T) map[string]*hypergraph.Hypergraph {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	planted, _, err := hypergraph.PlantedCF(30, 12, 3, 3, 5, rng)
	if err != nil {
		t.Fatalf("PlantedCF: %v", err)
	}
	interval, err := hypergraph.Interval(24, 10, 2, 6, rng)
	if err != nil {
		t.Fatalf("Interval: %v", err)
	}
	return map[string]*hypergraph.Hypergraph{
		"edgeless": hypergraph.MustNew(4, nil),
		"single":   hypergraph.MustNew(3, [][]int32{{0, 1, 2}}),
		"planted":  planted,
		"interval": interval,
	}
}

func TestGraphRoundTripAllFormats(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, f := range []Format{FormatEdgeList, FormatDIMACS, FormatJSON} {
			var buf bytes.Buffer
			if err := WriteGraph(&buf, g, f); err != nil {
				t.Fatalf("%s/%v: write: %v", name, f, err)
			}
			encoded := buf.String()

			got, err := ReadGraph(strings.NewReader(encoded), f)
			if err != nil {
				t.Fatalf("%s/%v: read: %v\n%s", name, f, err, encoded)
			}
			if !graph.Equal(g, got) {
				t.Errorf("%s/%v: round trip changed the graph: %v -> %v", name, f, g, got)
			}

			// Auto detection must land on the same parse.
			got, err = ReadGraph(strings.NewReader(encoded), FormatAuto)
			if err != nil {
				t.Fatalf("%s/%v: auto read: %v", name, f, err)
			}
			if !graph.Equal(g, got) {
				t.Errorf("%s/%v: auto round trip changed the graph", name, f)
			}

			// Re-encoding the parse must be byte-identical (canonical form).
			var buf2 bytes.Buffer
			if err := WriteGraph(&buf2, got, f); err != nil {
				t.Fatalf("%s/%v: rewrite: %v", name, f, err)
			}
			if buf2.String() != encoded {
				t.Errorf("%s/%v: re-encoding not byte-identical", name, f)
			}
		}
	}
}

func TestHypergraphRoundTrip(t *testing.T) {
	for name, h := range testHypergraphs(t) {
		for _, f := range []Format{FormatEdgeList, FormatJSON} {
			var buf bytes.Buffer
			if err := WriteHypergraph(&buf, h, f); err != nil {
				t.Fatalf("%s/%v: write: %v", name, f, err)
			}
			for _, rf := range []Format{f, FormatAuto} {
				got, err := ReadHypergraph(strings.NewReader(buf.String()), rf)
				if err != nil {
					t.Fatalf("%s/%v as %v: read: %v\n%s", name, f, rf, err, buf.String())
				}
				if got.N() != h.N() || !reflect.DeepEqual(got.Edges(), h.Edges()) {
					t.Errorf("%s/%v as %v: round trip changed the hypergraph", name, f, rf)
				}
			}
		}
	}
}

func TestHypergraphDIMACSUnsupported(t *testing.T) {
	h := hypergraph.MustNew(3, [][]int32{{0, 1, 2}})
	if err := WriteHypergraph(&bytes.Buffer{}, h, FormatDIMACS); !errors.Is(err, ErrUnsupported) {
		t.Errorf("WriteHypergraph(DIMACS) error = %v, want ErrUnsupported", err)
	}
	if _, err := ReadHypergraph(strings.NewReader("p edge 3 0\n"), FormatDIMACS); !errors.Is(err, ErrUnsupported) {
		t.Errorf("ReadHypergraph(DIMACS) error = %v, want ErrUnsupported", err)
	}
}

// TestEncodeCompat pins the compatibility guarantee: instances written by
// the legacy internal/encode package parse unchanged through graphio.
func TestEncodeCompat(t *testing.T) {
	g := graph.Grid(3, 4)
	var gb bytes.Buffer
	if err := encode.WriteGraph(&gb, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraph(&gb, FormatAuto)
	if err != nil {
		t.Fatalf("graphio cannot read encode output: %v", err)
	}
	if !graph.Equal(g, got) {
		t.Error("encode -> graphio round trip changed the graph")
	}

	h := hypergraph.MustNew(5, [][]int32{{0, 1}, {2, 3, 4}})
	var hb bytes.Buffer
	if err := encode.WriteHypergraph(&hb, h); err != nil {
		t.Fatal(err)
	}
	hGot, err := ReadHypergraph(&hb, FormatAuto)
	if err != nil {
		t.Fatalf("graphio cannot read encode hypergraph output: %v", err)
	}
	if hGot.N() != h.N() || !reflect.DeepEqual(hGot.Edges(), h.Edges()) {
		t.Error("encode -> graphio hypergraph round trip changed the instance")
	}
}

func TestMalformedGraphInputs(t *testing.T) {
	cases := []struct {
		name   string
		format Format
		input  string
		want   error
	}{
		// Edge list.
		{"edgelist/empty", FormatEdgeList, "", ErrFormat},
		{"edgelist/truncated header", FormatEdgeList, "graph 5\n0 1\n", ErrFormat},
		{"edgelist/wrong kind", FormatEdgeList, "hypergraph 5 1\n0 1\n", ErrFormat},
		{"edgelist/negative n", FormatEdgeList, "graph -5 0\n", ErrFormat},
		{"edgelist/count mismatch", FormatEdgeList, "graph 5 2\n0 1\n", ErrFormat},
		{"edgelist/bad endpoint count", FormatEdgeList, "graph 5 1\n0 1 2\n", ErrFormat},
		{"edgelist/bad vertex token", FormatEdgeList, "graph 5 1\n0 x\n", ErrFormat},
		{"edgelist/vertex overflow", FormatEdgeList, "graph 5 1\n0 5000000000\n", ErrFormat},
		{"edgelist/vertex out of range", FormatEdgeList, "graph 5 1\n0 5\n", ErrFormat},
		{"edgelist/self loop", FormatEdgeList, "graph 5 1\n2 2\n", ErrFormat},
		{"edgelist/duplicate edge", FormatEdgeList, "graph 5 2\n0 1\n1 0\n", ErrDuplicateEdge},
		// DIMACS.
		{"dimacs/missing p", FormatDIMACS, "c only a comment\n", ErrFormat},
		{"dimacs/truncated p", FormatDIMACS, "p edge 5\ne 1 2\n", ErrFormat},
		{"dimacs/second p", FormatDIMACS, "p edge 5 0\np edge 5 0\n", ErrFormat},
		{"dimacs/edge before p", FormatDIMACS, "e 1 2\np edge 5 1\n", ErrFormat},
		{"dimacs/count mismatch", FormatDIMACS, "p edge 5 2\ne 1 2\n", ErrFormat},
		{"dimacs/zero-based vertex", FormatDIMACS, "p edge 5 1\ne 0 1\n", ErrFormat},
		{"dimacs/vertex out of range", FormatDIMACS, "p edge 5 1\ne 1 6\n", ErrFormat},
		{"dimacs/vertex overflow", FormatDIMACS, "p edge 5 1\ne 1 5000000000\n", ErrFormat},
		{"dimacs/unknown line", FormatDIMACS, "p edge 5 1\nq 1 2\n", ErrFormat},
		{"dimacs/duplicate edge", FormatDIMACS, "p edge 5 2\ne 1 2\ne 2 1\n", ErrDuplicateEdge},
		// JSON.
		{"json/truncated", FormatJSON, `{"type":"graph","n":3`, ErrFormat},
		{"json/wrong type", FormatJSON, `{"type":"hypergraph","n":3,"edges":[]}`, ErrFormat},
		{"json/missing n", FormatJSON, `{"type":"graph","edges":[[0,1]]}`, ErrFormat},
		{"json/negative n", FormatJSON, `{"type":"graph","n":-1,"edges":[]}`, ErrFormat},
		{"json/repeated key", FormatJSON, `{"type":"graph","n":3,"n":3,"edges":[]}`, ErrFormat},
		{"json/unknown key", FormatJSON, `{"type":"graph","n":3,"weight":1,"edges":[]}`, ErrFormat},
		{"json/bad arity", FormatJSON, `{"type":"graph","n":3,"edges":[[0,1,2]]}`, ErrFormat},
		{"json/non-integer", FormatJSON, `{"type":"graph","n":3,"edges":[[0,1.5]]}`, ErrFormat},
		{"json/vertex overflow", FormatJSON, `{"type":"graph","n":3,"edges":[[0,5000000000]]}`, ErrFormat},
		{"json/vertex out of range", FormatJSON, `{"type":"graph","n":3,"edges":[[0,3]]}`, ErrFormat},
		{"json/trailing data", FormatJSON, `{"type":"graph","n":3,"edges":[]}{}`, ErrFormat},
		{"json/duplicate edge", FormatJSON, `{"type":"graph","n":3,"edges":[[0,1],[1,0]]}`, ErrDuplicateEdge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadGraph(strings.NewReader(tc.input), tc.format)
			if !errors.Is(err, tc.want) {
				t.Errorf("ReadGraph error = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestMalformedHypergraphInputs(t *testing.T) {
	cases := []struct {
		name   string
		format Format
		input  string
		want   error
	}{
		{"edgelist/truncated header", FormatEdgeList, "hypergraph 5\n0 1\n", ErrFormat},
		{"edgelist/wrong kind", FormatEdgeList, "graph 5 1\n0 1\n", ErrFormat},
		{"edgelist/count mismatch", FormatEdgeList, "hypergraph 5 2\n0 1 2\n", ErrFormat},
		{"edgelist/vertex overflow", FormatEdgeList, "hypergraph 5 1\n0 1 5000000000\n", ErrFormat},
		{"edgelist/vertex out of range", FormatEdgeList, "hypergraph 5 1\n0 1 7\n", ErrFormat},
		{"json/wrong type", FormatJSON, `{"type":"graph","n":3,"edges":[]}`, ErrFormat},
		{"json/empty edge", FormatJSON, `{"type":"hypergraph","n":3,"edges":[[]]}`, ErrFormat},
		{"json/vertex out of range", FormatJSON, `{"type":"hypergraph","n":3,"edges":[[0,1,3]]}`, ErrFormat},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadHypergraph(strings.NewReader(tc.input), tc.format)
			if !errors.Is(err, tc.want) {
				t.Errorf("ReadHypergraph error = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestSniffFormat(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  Format
		err   error
	}{
		{"json", `{"type":"graph","n":1,"edges":[]}`, FormatJSON, nil},
		{"json after blank lines", "\n\n  {\"n\":0}", FormatJSON, nil},
		{"dimacs comment", "c hello\np edge 2 1\ne 1 2\n", FormatDIMACS, nil},
		{"dimacs p line", "p edge 2 0\n", FormatDIMACS, nil},
		{"edgelist graph", "graph 2 1\n0 1\n", FormatEdgeList, nil},
		{"edgelist hypergraph", "hypergraph 2 1\n0 1\n", FormatEdgeList, nil},
		{"edgelist comment", "# instance\ngraph 2 1\n0 1\n", FormatEdgeList, nil},
		{"garbage", "bogus 1 2\n", FormatAuto, ErrUnknownFormat},
		{"empty", "", FormatAuto, ErrFormat},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := sniffFormat(bufio.NewReader(strings.NewReader(tc.input)))
			if tc.err != nil {
				if !errors.Is(err, tc.err) {
					t.Fatalf("sniffFormat error = %v, want %v", err, tc.err)
				}
				return
			}
			if err != nil {
				t.Fatalf("sniffFormat: %v", err)
			}
			if got != tc.want {
				t.Errorf("sniffFormat = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestParseFormat(t *testing.T) {
	for spelling, want := range map[string]Format{
		"": FormatAuto, "auto": FormatAuto, "edgelist": FormatEdgeList,
		"edge-list": FormatEdgeList, "DIMACS": FormatDIMACS, "col": FormatDIMACS,
		"json": FormatJSON,
	} {
		got, err := ParseFormat(spelling)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v; want %v", spelling, got, err, want)
		}
	}
	if _, err := ParseFormat("xml"); !errors.Is(err, ErrUnknownFormat) {
		t.Errorf("ParseFormat(xml) error = %v, want ErrUnknownFormat", err)
	}
}

func TestFormatFromPath(t *testing.T) {
	for path, want := range map[string]Format{
		"a.col": FormatDIMACS, "b.dimacs": FormatDIMACS, "c.json": FormatJSON,
		"d.hg": FormatEdgeList, "e.g": FormatEdgeList, "f": FormatAuto,
	} {
		if got := FormatFromPath(path); got != want {
			t.Errorf("FormatFromPath(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestFileHelpers(t *testing.T) {
	dir := t.TempDir()
	g := graph.Grid(3, 3)
	for _, name := range []string{"g.col", "g.json", "g.g", "g.unknownext"} {
		path := filepath.Join(dir, name)
		if err := WriteGraphFile(path, g); err != nil {
			t.Fatalf("WriteGraphFile(%s): %v", name, err)
		}
		got, err := ReadGraphFile(path)
		if err != nil {
			t.Fatalf("ReadGraphFile(%s): %v", name, err)
		}
		if !graph.Equal(g, got) {
			t.Errorf("%s: file round trip changed the graph", name)
		}
	}

	h := hypergraph.MustNew(6, [][]int32{{0, 1, 2}, {3, 4, 5}})
	for _, name := range []string{"h.hg", "h.json"} {
		path := filepath.Join(dir, name)
		if err := WriteHypergraphFile(path, h); err != nil {
			t.Fatalf("WriteHypergraphFile(%s): %v", name, err)
		}
		got, err := ReadHypergraphFile(path)
		if err != nil {
			t.Fatalf("ReadHypergraphFile(%s): %v", name, err)
		}
		if got.N() != h.N() || !reflect.DeepEqual(got.Edges(), h.Edges()) {
			t.Errorf("%s: file round trip changed the hypergraph", name)
		}
	}
}

func TestResultRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h, _, err := hypergraph.PlantedCF(30, 12, 3, 3, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Reduce(nil, h, core.Options{K: 3, Mode: core.ModeImplicitFirstFit})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteResult(&buf, res); err != nil {
		t.Fatalf("WriteResult: %v", err)
	}
	got, err := ReadResult(&buf)
	if err != nil {
		t.Fatalf("ReadResult: %v", err)
	}
	if !reflect.DeepEqual(res, got) {
		t.Errorf("result round trip changed the document:\n%+v\n%+v", res, got)
	}

	if _, err := ReadResult(strings.NewReader(`{"type":"graph","n":1}`)); !errors.Is(err, ErrFormat) {
		t.Errorf("ReadResult on a non-result document = %v, want ErrFormat", err)
	}
}

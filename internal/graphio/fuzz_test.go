package graphio

// fuzz_test.go backs the round-trip encoders with fuzzing: any input the
// readers accept must re-encode and re-parse to the identical structure,
// and no input may panic the parser. `go test` runs the seed corpus;
// `go test -fuzz=FuzzReadGraph ./internal/graphio` explores further.

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"pslocal/internal/graph"
)

func FuzzReadGraph(f *testing.F) {
	f.Add("graph 3 2\n0 1\n1 2\n")
	f.Add("graph 0 0\n")
	f.Add("# comment\ngraph 4 1\n2 3\n")
	f.Add("p edge 3 2\ne 1 2\ne 2 3\n")
	f.Add("c comment\np edge 5 0\n")
	f.Add(`{"type":"graph","n":3,"edges":[[0,1],[1,2]]}`)
	f.Add(`{"n":2,"edges":[[0,1]]}`)
	f.Add("graph 2 1\n0 5000000000\n")
	f.Add("p edge 2 2\ne 1 2\ne 2 1\n")
	f.Add(`{"type":"graph","n":1,"edges":[[0,0]]}`)
	f.Add("graph 3 1\nv 0 7\nv 2 2147483647\n0 1\n")
	f.Add("graph 2 0\nv 0 -1\n")
	f.Add("p edge 3 1\nn 1 5\nn 3 9\ne 1 2\n")
	f.Add("p edge 2 0\nn 1 99999999999999999999\n")
	f.Add(`{"type":"graph","n":3,"edges":[[0,1]],"weights":[4,1,9]}`)
	f.Add(`{"type":"graph","n":3,"edges":[],"weights":[1,2]}`)
	f.Fuzz(func(t *testing.T, input string) {
		for _, format := range []Format{FormatAuto, FormatEdgeList, FormatDIMACS, FormatJSON} {
			g, err := ReadGraph(strings.NewReader(input), format)
			if err != nil {
				continue // malformed input must error, not panic
			}
			// A successful parse must round-trip identically through
			// every writable format.
			for _, out := range []Format{FormatEdgeList, FormatDIMACS, FormatJSON} {
				var buf bytes.Buffer
				if err := WriteGraph(&buf, g, out); err != nil {
					t.Fatalf("format %v: write after successful parse: %v", out, err)
				}
				got, err := ReadGraph(bytes.NewReader(buf.Bytes()), out)
				if err != nil {
					t.Fatalf("format %v: reparse of own output: %v\n%s", out, err, buf.String())
				}
				if !graph.Equal(g, got) {
					t.Fatalf("format %v: round trip changed the graph", out)
				}
			}
		}
	})
}

func FuzzReadHypergraph(f *testing.F) {
	f.Add("hypergraph 4 2\n0 1 2\n2 3\n")
	f.Add("hypergraph 1 1\n0\n")
	f.Add(`{"type":"hypergraph","n":4,"edges":[[0,1,2],[2,3]]}`)
	f.Add(`{"n":3,"edges":[[0,1],[1,2,0]]}`)
	f.Add("hypergraph 2 1\n0 0 1\n")
	f.Add(`{"type":"hypergraph","n":3,"edges":[[]]}`)
	f.Add("hypergraph 4 1\nv 1 12\nv 3 3\n0 1 2\n")
	f.Add("hypergraph 2 0\nv 0 two\n")
	f.Add(`{"type":"hypergraph","n":3,"edges":[[0,1]],"weights":[5,1,2]}`)
	f.Add(`{"type":"hypergraph","n":2,"edges":[],"weights":[1,-4]}`)
	f.Fuzz(func(t *testing.T, input string) {
		for _, format := range []Format{FormatAuto, FormatEdgeList, FormatJSON} {
			h, err := ReadHypergraph(strings.NewReader(input), format)
			if err != nil {
				continue
			}
			for _, out := range []Format{FormatEdgeList, FormatJSON} {
				var buf bytes.Buffer
				if err := WriteHypergraph(&buf, h, out); err != nil {
					t.Fatalf("format %v: write after successful parse: %v", out, err)
				}
				got, err := ReadHypergraph(bytes.NewReader(buf.Bytes()), out)
				if err != nil {
					t.Fatalf("format %v: reparse of own output: %v\n%s", out, err, buf.String())
				}
				if got.N() != h.N() || !reflect.DeepEqual(got.Edges(), h.Edges()) ||
					!reflect.DeepEqual(got.Weights(), h.Weights()) {
					t.Fatalf("format %v: round trip changed the hypergraph", out)
				}
			}
		}
	})
}

package graphio

// result.go serializes the outcome of the Theorem 1.1 reduction
// (core.Result) as a JSON document, the schema shared by the cfreduce
// -out flag, pslocal.WriteResult and the cmd/cfserve response body:
//
//	{
//	  "type": "reduction-result",
//	  "k": 3,
//	  "total_colors": 3,
//	  "phases": [{"phase":1,"edges_before":24,...}],
//	  "multicoloring": [[1],[2,3],...]
//	}

import (
	"encoding/json"
	"fmt"
	"io"

	"pslocal/internal/core"
)

// resultDoc is the JSON shape of a core.Result. The weight fields appear
// only on weighted reductions, so unweighted documents are byte-identical
// to the pre-weights schema.
type resultDoc struct {
	Type          string     `json:"type"`
	K             int        `json:"k"`
	TotalColors   int        `json:"total_colors"`
	Weighted      bool       `json:"weighted,omitempty"`
	TotalWeight   int64      `json:"total_weight,omitempty"`
	Phases        []phaseDoc `json:"phases"`
	Multicoloring [][]int32  `json:"multicoloring"`
}

// phaseDoc is the JSON shape of a core.PhaseStat.
type phaseDoc struct {
	Phase         int   `json:"phase"`
	EdgesBefore   int   `json:"edges_before"`
	ConflictNodes int   `json:"conflict_nodes"`
	ConflictEdges int   `json:"conflict_edges"`
	ISSize        int   `json:"is_size"`
	ISWeight      int64 `json:"is_weight,omitempty"`
	HappyRemoved  int   `json:"happy_removed"`
}

// resultDocType tags reduction-result documents so mixed-up files fail
// loudly instead of decoding as an instance.
const resultDocType = "reduction-result"

// WriteResult writes res as an indented JSON document.
func WriteResult(w io.Writer, res *core.Result) error {
	doc := resultDoc{
		Type:          resultDocType,
		K:             res.K,
		TotalColors:   res.TotalColors,
		Weighted:      res.Weighted,
		TotalWeight:   res.TotalWeight,
		Phases:        make([]phaseDoc, len(res.Phases)),
		Multicoloring: res.Multicoloring,
	}
	for i, p := range res.Phases {
		doc.Phases[i] = phaseDoc{
			Phase:         p.Phase,
			EdgesBefore:   p.EdgesBefore,
			ConflictNodes: p.ConflictNodes,
			ConflictEdges: p.ConflictEdges,
			ISSize:        p.ISSize,
			ISWeight:      p.ISWeight,
			HappyRemoved:  p.HappyRemoved,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("graphio: writing result: %w", err)
	}
	return nil
}

// WriteResultFile writes res to path as the result document.
func WriteResultFile(path string, res *core.Result) error {
	return writeFile(path, func(w io.Writer) error {
		return WriteResult(w, res)
	})
}

// ReadResult parses a reduction-result document written by WriteResult.
func ReadResult(r io.Reader) (*core.Result, error) {
	dec := json.NewDecoder(r)
	var doc resultDoc
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if doc.Type != resultDocType {
		return nil, fmt.Errorf("%w: document type %q, want %q", ErrFormat, doc.Type, resultDocType)
	}
	res := &core.Result{
		K:             doc.K,
		TotalColors:   doc.TotalColors,
		Weighted:      doc.Weighted,
		TotalWeight:   doc.TotalWeight,
		Phases:        make([]core.PhaseStat, len(doc.Phases)),
		Multicoloring: doc.Multicoloring,
	}
	for i, p := range doc.Phases {
		res.Phases[i] = core.PhaseStat{
			Phase:         p.Phase,
			EdgesBefore:   p.EdgesBefore,
			ConflictNodes: p.ConflictNodes,
			ConflictEdges: p.ConflictEdges,
			ISSize:        p.ISSize,
			ISWeight:      p.ISWeight,
			HappyRemoved:  p.HappyRemoved,
		}
	}
	return res, nil
}

// Package encode reads and writes the plain-text instance formats used by
// the command-line tools:
//
//	graph <n> <m>          hypergraph <n> <m>
//	u v                    v1 v2 v3 ...
//	...                    ...
//
// One edge per line; '#' starts a comment; blank lines are skipped.
// Multicolourings are written as "v: c1 c2 ..." lines for human review.
package encode

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"pslocal/internal/cfcolor"
	"pslocal/internal/graph"
	"pslocal/internal/hypergraph"
)

// ErrFormat reports malformed input.
var ErrFormat = errors.New("encode: malformed input")

// WriteGraph writes g in the text format.
func WriteGraph(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph %d %d\n", g.N(), g.M())
	var err error
	g.ForEachEdge(func(u, v int32) bool {
		_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		return err == nil
	})
	if err != nil {
		return fmt.Errorf("encode: writing graph: %w", err)
	}
	return bw.Flush()
}

// ReadGraph parses the text format into a graph.
func ReadGraph(r io.Reader) (*graph.Graph, error) {
	sc, header, err := readHeader(r, "graph")
	if err != nil {
		return nil, err
	}
	n, m := header[0], header[1]
	b := graph.NewBuilder(n)
	edges := 0
	for sc.Scan() {
		fields, skip := splitLine(sc.Text())
		if skip {
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("%w: edge line %q", ErrFormat, sc.Text())
		}
		u, err1 := parseNode(fields[0])
		v, err2 := parseNode(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%w: edge line %q", ErrFormat, sc.Text())
		}
		b.AddEdge(u, v)
		edges++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("encode: reading graph: %w", err)
	}
	if edges != m {
		return nil, fmt.Errorf("%w: header promises %d edges, found %d", ErrFormat, m, edges)
	}
	return b.Build()
}

// WriteHypergraph writes h in the text format.
func WriteHypergraph(w io.Writer, h *hypergraph.Hypergraph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "hypergraph %d %d\n", h.N(), h.M())
	for j := 0; j < h.M(); j++ {
		parts := make([]string, 0, h.EdgeSize(j))
		h.ForEachEdgeVertex(j, func(v int32) bool {
			parts = append(parts, strconv.Itoa(int(v)))
			return true
		})
		if _, err := fmt.Fprintln(bw, strings.Join(parts, " ")); err != nil {
			return fmt.Errorf("encode: writing hypergraph: %w", err)
		}
	}
	return bw.Flush()
}

// ReadHypergraph parses the text format into a hypergraph.
func ReadHypergraph(r io.Reader) (*hypergraph.Hypergraph, error) {
	sc, header, err := readHeader(r, "hypergraph")
	if err != nil {
		return nil, err
	}
	n, m := header[0], header[1]
	var edges [][]int32
	for sc.Scan() {
		fields, skip := splitLine(sc.Text())
		if skip {
			continue
		}
		edge := make([]int32, 0, len(fields))
		for _, f := range fields {
			v, err := parseNode(f)
			if err != nil {
				return nil, fmt.Errorf("%w: edge line %q", ErrFormat, sc.Text())
			}
			edge = append(edge, v)
		}
		edges = append(edges, edge)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("encode: reading hypergraph: %w", err)
	}
	if len(edges) != m {
		return nil, fmt.Errorf("%w: header promises %d edges, found %d", ErrFormat, m, len(edges))
	}
	return hypergraph.New(n, edges)
}

// WriteMulticoloring writes mc as "v: c1 c2 ..." lines (uncoloured
// vertices are written with an empty colour list).
func WriteMulticoloring(w io.Writer, mc cfcolor.Multicoloring) error {
	bw := bufio.NewWriter(w)
	for v, cols := range mc {
		parts := make([]string, len(cols))
		for i, c := range cols {
			parts[i] = strconv.Itoa(int(c))
		}
		if _, err := fmt.Fprintf(bw, "%d: %s\n", v, strings.Join(parts, " ")); err != nil {
			return fmt.Errorf("encode: writing multicolouring: %w", err)
		}
	}
	return bw.Flush()
}

// readHeader validates the "<kind> <n> <m>" first line.
func readHeader(r io.Reader, kind string) (*bufio.Scanner, [2]int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		fields, skip := splitLine(sc.Text())
		if skip {
			continue
		}
		if len(fields) != 3 || fields[0] != kind {
			return nil, [2]int{}, fmt.Errorf("%w: header %q, want %q n m", ErrFormat, sc.Text(), kind)
		}
		n, err1 := strconv.Atoi(fields[1])
		m, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || n < 0 || m < 0 {
			return nil, [2]int{}, fmt.Errorf("%w: header %q", ErrFormat, sc.Text())
		}
		return sc, [2]int{n, m}, nil
	}
	if err := sc.Err(); err != nil {
		return nil, [2]int{}, fmt.Errorf("encode: reading header: %w", err)
	}
	return nil, [2]int{}, fmt.Errorf("%w: empty input", ErrFormat)
}

// splitLine tokenises a line; skip is true for blanks and comments.
func splitLine(line string) (fields []string, skip bool) {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	fields = strings.Fields(line)
	return fields, len(fields) == 0
}

func parseNode(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 10, 32)
	if err != nil {
		return 0, err
	}
	return int32(v), nil
}

package encode

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"pslocal/internal/cfcolor"
	"pslocal/internal/graph"
	"pslocal/internal/hypergraph"
)

func TestGraphRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g := graph.GnP(1+rng.Intn(30), rng.Float64()*0.5, rng)
		var sb strings.Builder
		if err := WriteGraph(&sb, g); err != nil {
			t.Fatalf("WriteGraph error: %v", err)
		}
		back, err := ReadGraph(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("ReadGraph error: %v\ninput:\n%s", err, sb.String())
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatalf("round trip n=%d m=%d, want n=%d m=%d", back.N(), back.M(), g.N(), g.M())
		}
		g.ForEachEdge(func(u, v int32) bool {
			if !back.HasEdge(u, v) {
				t.Errorf("edge (%d,%d) lost", u, v)
				return false
			}
			return true
		})
	}
}

func TestHypergraphRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		h, err := hypergraph.Uniform(5+rng.Intn(20), rng.Intn(15), 3, rng)
		if err != nil {
			t.Fatalf("Uniform error: %v", err)
		}
		var sb strings.Builder
		if err := WriteHypergraph(&sb, h); err != nil {
			t.Fatalf("WriteHypergraph error: %v", err)
		}
		back, err := ReadHypergraph(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("ReadHypergraph error: %v", err)
		}
		if back.N() != h.N() || back.M() != h.M() {
			t.Fatalf("round trip n=%d m=%d, want n=%d m=%d", back.N(), back.M(), h.N(), h.M())
		}
		for j := 0; j < h.M(); j++ {
			a, b := h.Edge(j), back.Edge(j)
			if len(a) != len(b) {
				t.Fatalf("edge %d sizes differ", j)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("edge %d differs: %v vs %v", j, a, b)
				}
			}
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	input := `
# a comment
graph 3 2

0 1   # trailing comment
1 2
`
	g, err := ReadGraph(strings.NewReader(input))
	if err != nil {
		t.Fatalf("ReadGraph error: %v", err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Errorf("n=%d m=%d, want 3, 2", g.N(), g.M())
	}
}

func TestReadErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"wrong kind", "hypergraph 2 0"},
		{"bad header counts", "graph x y"},
		{"negative n", "graph -1 0"},
		{"edge arity", "graph 3 1\n0 1 2"},
		{"edge not number", "graph 3 1\na b"},
		{"edge count mismatch", "graph 3 2\n0 1"},
		{"self loop surfaces", "graph 3 1\n1 1"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadGraph(strings.NewReader(tt.input)); err == nil {
				t.Errorf("input %q accepted", tt.input)
			}
		})
	}
	if _, err := ReadGraph(strings.NewReader("graph x y")); !errors.Is(err, ErrFormat) {
		t.Error("format errors should wrap ErrFormat")
	}
}

func TestReadHypergraphErrors(t *testing.T) {
	tests := []string{
		"",
		"graph 2 0",
		"hypergraph 3 1\n0 x",
		"hypergraph 3 2\n0 1",
		"hypergraph 3 1\n0 5", // out of range surfaces from hypergraph.New
	}
	for _, input := range tests {
		if _, err := ReadHypergraph(strings.NewReader(input)); err == nil {
			t.Errorf("input %q accepted", input)
		}
	}
}

func TestWriteMulticoloring(t *testing.T) {
	mc := cfcolor.NewMulticoloring(3)
	mc.Add(0, 2)
	mc.Add(0, 5)
	mc.Add(2, 1)
	var sb strings.Builder
	if err := WriteMulticoloring(&sb, mc); err != nil {
		t.Fatalf("WriteMulticoloring error: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"0: 2 5", "1: ", "2: 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

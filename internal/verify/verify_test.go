package verify

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"pslocal/internal/cfcolor"
	"pslocal/internal/core"
	"pslocal/internal/graph"
	"pslocal/internal/hypergraph"
)

func TestIndependentSet(t *testing.T) {
	g := graph.Path(4)
	tests := []struct {
		name  string
		nodes []int32
		fail  bool
	}{
		{"empty", nil, false},
		{"valid", []int32{0, 2}, false},
		{"adjacent", []int32{1, 2}, true},
		{"repeat", []int32{0, 0}, true},
		{"range", []int32{7}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := IndependentSet(g, tt.nodes)
			if (err != nil) != tt.fail {
				t.Errorf("IndependentSet(%v) = %v, fail=%v", tt.nodes, err, tt.fail)
			}
			if err != nil && !errors.Is(err, ErrNotIndependent) {
				t.Errorf("error %v should wrap ErrNotIndependent", err)
			}
		})
	}
}

func TestMaximalIndependentSet(t *testing.T) {
	g := graph.Path(5)
	if err := MaximalIndependentSet(g, []int32{0, 2, 4}); err != nil {
		t.Errorf("maximum set rejected: %v", err)
	}
	err := MaximalIndependentSet(g, []int32{0})
	if !errors.Is(err, ErrNotMaximal) {
		t.Errorf("error = %v, want ErrNotMaximal", err)
	}
	if err := MaximalIndependentSet(g, []int32{0, 1}); !errors.Is(err, ErrNotIndependent) {
		t.Errorf("error = %v, want ErrNotIndependent", err)
	}
}

func TestProperColoring(t *testing.T) {
	g := graph.Cycle(4)
	if err := ProperColoring(g, []int32{1, 2, 1, 2}); err != nil {
		t.Errorf("proper colouring rejected: %v", err)
	}
	if err := ProperColoring(g, []int32{1, 1, 2, 2}); !errors.Is(err, ErrNotProper) {
		t.Errorf("monochromatic edge: %v", err)
	}
	if err := ProperColoring(g, []int32{1, 2, 0, 2}); !errors.Is(err, ErrNotProper) {
		t.Errorf("uncoloured node: %v", err)
	}
	if err := ProperColoring(g, []int32{1, 2}); !errors.Is(err, ErrNotProper) {
		t.Errorf("short colouring: %v", err)
	}
}

func TestConflictFreeCheckers(t *testing.T) {
	h := hypergraph.MustNew(3, [][]int32{{0, 1, 2}})
	if err := ConflictFree(h, cfcolor.Coloring{1, 2, 2}); err != nil {
		t.Errorf("happy colouring rejected: %v", err)
	}
	if err := ConflictFree(h, cfcolor.Coloring{1, 1, 1}); !errors.Is(err, ErrNotConflictFree) {
		t.Errorf("unhappy colouring: %v", err)
	}
	mc := cfcolor.NewMulticoloring(3)
	mc.Add(0, 1)
	if err := ConflictFreeMulti(h, mc); err != nil {
		t.Errorf("happy multicolouring rejected: %v", err)
	}
	if err := ConflictFreeMulti(h, cfcolor.NewMulticoloring(3)); !errors.Is(err, ErrNotConflictFree) {
		t.Errorf("empty multicolouring: %v", err)
	}
}

func TestReductionResult(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h, _, err := hypergraph.PlantedCF(15, 8, 3, 2, 4, rng)
	if err != nil {
		t.Fatalf("PlantedCF error: %v", err)
	}
	res, err := core.Reduce(nil, h, core.Options{K: 3, Mode: core.ModeImplicitFirstFit})
	if err != nil {
		t.Fatalf("Reduce error: %v", err)
	}
	if err := ReductionResult(h, res); err != nil {
		t.Errorf("genuine reduction result rejected: %v", err)
	}
	// Corrupt the bookkeeping.
	bad := *res
	bad.Phases = append([]core.PhaseStat(nil), res.Phases...)
	bad.Phases[0].HappyRemoved++
	if err := ReductionResult(h, &bad); !errors.Is(err, ErrInconsistent) {
		t.Errorf("corrupted phases accepted: %v", err)
	}
	bad2 := *res
	bad2.TotalColors++
	if err := ReductionResult(h, &bad2); !errors.Is(err, ErrInconsistent) {
		t.Errorf("corrupted colour budget accepted: %v", err)
	}
}

func TestIndependentTriples(t *testing.T) {
	h := hypergraph.MustNew(3, [][]int32{{0, 1}, {1, 2}})
	ix, err := core.NewIndex(h, 2)
	if err != nil {
		t.Fatalf("NewIndex error: %v", err)
	}
	if err := IndependentTriples(ix, []core.Triple{{Edge: 0, Vertex: 0, Color: 1}}); err != nil {
		t.Errorf("singleton rejected: %v", err)
	}
	err = IndependentTriples(ix, []core.Triple{
		{Edge: 0, Vertex: 0, Color: 1},
		{Edge: 0, Vertex: 1, Color: 1},
	})
	if !errors.Is(err, ErrNotIndependent) {
		t.Errorf("same-edge pair: %v", err)
	}
}

func TestRatioDelegates(t *testing.T) {
	r, err := Ratio(9, 3)
	if err != nil || r != 3 {
		t.Errorf("Ratio = %v, %v", r, err)
	}
	if _, err := Ratio(1, 0); err == nil {
		t.Error("Ratio(1,0) should error")
	}
}

func TestReport(t *testing.T) {
	var r Report
	r.Add("first", nil)
	if !r.OK() || r.Err() != nil {
		t.Error("all-pass report should be OK")
	}
	r.Add("second", errors.New("boom"))
	r.Add("third", nil)
	if r.OK() {
		t.Error("failed check not reflected in OK()")
	}
	if err := r.Err(); err == nil {
		t.Error("Err() should aggregate failures")
	}
	out := r.String()
	if want := "PASS first"; !strings.Contains(out, want) {
		t.Errorf("output missing %q:\n%s", want, out)
	}
	if want := "FAIL second"; !strings.Contains(out, want) {
		t.Errorf("output missing %q:\n%s", want, out)
	}
}

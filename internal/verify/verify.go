// Package verify is the cross-cutting verification suite: every claim an
// experiment or CLI makes about an output — independence, maximality,
// proper or conflict-free colouring, decomposition validity, reduction
// bookkeeping — is checked here and reported as an error rather than
// assumed. Verifiers re-derive their answers from first principles (they
// do not call the algorithms under test).
package verify

import (
	"errors"
	"fmt"
	"strings"

	"pslocal/internal/cfcolor"
	"pslocal/internal/core"
	"pslocal/internal/graph"
	"pslocal/internal/hypergraph"
	"pslocal/internal/maxis"
)

// Check failures.
var (
	// ErrNotIndependent reports adjacent, repeated, or out-of-range nodes.
	ErrNotIndependent = errors.New("verify: not an independent set")
	// ErrNotMaximal reports an independent set with an addable node.
	ErrNotMaximal = errors.New("verify: independent set not maximal")
	// ErrNotProper reports a monochromatic edge or an uncoloured node.
	ErrNotProper = errors.New("verify: not a proper colouring")
	// ErrNotConflictFree reports an unhappy hyperedge.
	ErrNotConflictFree = errors.New("verify: not conflict-free")
	// ErrInconsistent reports bookkeeping that contradicts itself.
	ErrInconsistent = errors.New("verify: inconsistent result bookkeeping")
)

// IndependentSet checks that nodes form an independent set of g.
func IndependentSet(g *graph.Graph, nodes []int32) error {
	seen := make(map[int32]bool, len(nodes))
	for _, v := range nodes {
		if v < 0 || int(v) >= g.N() {
			return fmt.Errorf("%w: node %d out of range", ErrNotIndependent, v)
		}
		if seen[v] {
			return fmt.Errorf("%w: node %d repeated", ErrNotIndependent, v)
		}
		seen[v] = true
	}
	var err error
	g.ForEachEdge(func(u, v int32) bool {
		if seen[u] && seen[v] {
			err = fmt.Errorf("%w: edge {%d,%d} inside the set", ErrNotIndependent, u, v)
			return false
		}
		return true
	})
	return err
}

// MaximalIndependentSet checks independence and inclusion-maximality.
func MaximalIndependentSet(g *graph.Graph, nodes []int32) error {
	if err := IndependentSet(g, nodes); err != nil {
		return err
	}
	inSet := make([]bool, g.N())
	for _, v := range nodes {
		inSet[v] = true
	}
	for v := int32(0); int(v) < g.N(); v++ {
		if inSet[v] {
			continue
		}
		dominated := false
		g.ForEachNeighbor(v, func(u int32) bool {
			if inSet[u] {
				dominated = true
				return false
			}
			return true
		})
		if !dominated {
			return fmt.Errorf("%w: node %d addable", ErrNotMaximal, v)
		}
	}
	return nil
}

// ProperColoring checks a total proper vertex colouring (1-based colours).
func ProperColoring(g *graph.Graph, colours []int32) error {
	if len(colours) != g.N() {
		return fmt.Errorf("%w: %d colours for %d nodes", ErrNotProper, len(colours), g.N())
	}
	for v, c := range colours {
		if c < 1 {
			return fmt.Errorf("%w: node %d uncoloured", ErrNotProper, v)
		}
	}
	var err error
	g.ForEachEdge(func(u, v int32) bool {
		if colours[u] == colours[v] {
			err = fmt.Errorf("%w: edge {%d,%d} monochromatic (%d)", ErrNotProper, u, v, colours[u])
			return false
		}
		return true
	})
	return err
}

// ConflictFree checks that every edge of h is happy under c.
func ConflictFree(h *hypergraph.Hypergraph, c cfcolor.Coloring) error {
	if err := c.Validate(h); err != nil {
		return err
	}
	for j := 0; j < h.M(); j++ {
		if !cfcolor.EdgeHappy(h, j, c) {
			return fmt.Errorf("%w: edge %d (%v)", ErrNotConflictFree, j, h.Edge(j))
		}
	}
	return nil
}

// ConflictFreeMulti checks that every edge of h is happy under mc.
func ConflictFreeMulti(h *hypergraph.Hypergraph, mc cfcolor.Multicoloring) error {
	if err := mc.Validate(h); err != nil {
		return err
	}
	for j := 0; j < h.M(); j++ {
		if !cfcolor.EdgeHappyMulti(h, j, mc) {
			return fmt.Errorf("%w: edge %d (%v)", ErrNotConflictFree, j, h.Edge(j))
		}
	}
	return nil
}

// ReductionResult checks a Theorem 1.1 reduction output end to end: the
// multicolouring is conflict-free on the original input, phase bookkeeping
// chains correctly (E_{i+1} = E_i − removed, ending at zero), every phase
// satisfies the Lemma 2.1(b) inequality removed >= |I_i|, and the colour
// budget matches k·phases.
func ReductionResult(h *hypergraph.Hypergraph, res *core.Result) error {
	if err := ConflictFreeMulti(h, res.Multicoloring); err != nil {
		return err
	}
	edges := h.M()
	for _, ph := range res.Phases {
		if ph.EdgesBefore != edges {
			return fmt.Errorf("%w: phase %d starts at %d edges, expected %d",
				ErrInconsistent, ph.Phase, ph.EdgesBefore, edges)
		}
		if ph.HappyRemoved < ph.ISSize {
			return fmt.Errorf("%w: phase %d removed %d < |I| = %d",
				ErrInconsistent, ph.Phase, ph.HappyRemoved, ph.ISSize)
		}
		if ph.HappyRemoved < 1 {
			return fmt.Errorf("%w: phase %d made no progress", ErrInconsistent, ph.Phase)
		}
		edges -= ph.HappyRemoved
	}
	if edges != 0 {
		return fmt.Errorf("%w: %d edges unaccounted after final phase", ErrInconsistent, edges)
	}
	if res.TotalColors != res.K*len(res.Phases) {
		return fmt.Errorf("%w: TotalColors %d != K·phases = %d",
			ErrInconsistent, res.TotalColors, res.K*len(res.Phases))
	}
	if got := res.Multicoloring.NumDistinctColors(); got > res.TotalColors {
		return fmt.Errorf("%w: %d distinct colours exceed budget %d",
			ErrInconsistent, got, res.TotalColors)
	}
	return nil
}

// IndependentTriples checks that triples are pairwise non-adjacent in the
// conflict graph indexed by ix.
func IndependentTriples(ix *core.Index, ts []core.Triple) error {
	ok, err := core.IsIndependentTriples(ix, ts)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: triple set has an internal conflict-graph edge", ErrNotIndependent)
	}
	return nil
}

// Ratio returns optimal/approx as the empirical λ, delegating to maxis.
func Ratio(optimalSize, approxSize int) (float64, error) {
	return maxis.Ratio(optimalSize, approxSize)
}

// Report aggregates named checks for CLI-style output.
type Report struct {
	checks []namedCheck
}

type namedCheck struct {
	name string
	err  error
}

// Add records the outcome of one named check.
func (r *Report) Add(name string, err error) {
	r.checks = append(r.checks, namedCheck{name: name, err: err})
}

// OK reports whether every recorded check passed.
func (r *Report) OK() bool {
	for _, c := range r.checks {
		if c.err != nil {
			return false
		}
	}
	return true
}

// Err returns an aggregate error listing the failed checks, or nil.
func (r *Report) Err() error {
	var failed []string
	for _, c := range r.checks {
		if c.err != nil {
			failed = append(failed, fmt.Sprintf("%s: %v", c.name, c.err))
		}
	}
	if len(failed) == 0 {
		return nil
	}
	return fmt.Errorf("verify: %d check(s) failed: %s", len(failed), strings.Join(failed, "; "))
}

// String renders one line per check, PASS or FAIL.
func (r *Report) String() string {
	var b strings.Builder
	for _, c := range r.checks {
		if c.err != nil {
			fmt.Fprintf(&b, "FAIL %-32s %v\n", c.name, c.err)
		} else {
			fmt.Fprintf(&b, "PASS %s\n", c.name)
		}
	}
	return b.String()
}

package hypergraph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewBasic(t *testing.T) {
	h, err := New(5, [][]int32{{0, 1, 2}, {2, 3}, {4}})
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	if h.N() != 5 || h.M() != 3 {
		t.Fatalf("n=%d m=%d, want 5,3", h.N(), h.M())
	}
	if h.EdgeSize(0) != 3 || h.EdgeSize(2) != 1 {
		t.Errorf("edge sizes %d,%d want 3,1", h.EdgeSize(0), h.EdgeSize(2))
	}
	if err := h.Validate(); err != nil {
		t.Errorf("Validate() = %v", err)
	}
}

func TestNewSortsAndDedups(t *testing.T) {
	h, err := New(4, [][]int32{{3, 1, 3, 0, 1}})
	if err != nil {
		t.Fatalf("New error: %v", err)
	}
	got := h.Edge(0)
	want := []int32{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("Edge(0) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Edge(0) = %v, want %v", got, want)
		}
	}
}

func TestNewErrors(t *testing.T) {
	tests := []struct {
		name    string
		n       int
		edges   [][]int32
		wantErr error
	}{
		{"empty edge", 3, [][]int32{{}}, ErrEmptyEdge},
		{"vertex too high", 3, [][]int32{{0, 3}}, ErrVertexRange},
		{"vertex negative", 3, [][]int32{{-1}}, ErrVertexRange},
		{"negative n", -2, nil, ErrNegativeSize},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.n, tt.edges); !errors.Is(err, tt.wantErr) {
				t.Errorf("error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestEdgeIsACopy(t *testing.T) {
	h := MustNew(3, [][]int32{{0, 1}})
	e := h.Edge(0)
	e[0] = 2
	if h.Edge(0)[0] != 0 {
		t.Error("mutating Edge result leaked into the hypergraph")
	}
}

func TestIncidence(t *testing.T) {
	h := MustNew(4, [][]int32{{0, 1}, {1, 2}, {1, 3}, {0, 3}})
	if h.Degree(1) != 3 {
		t.Errorf("Degree(1) = %d, want 3", h.Degree(1))
	}
	inc := h.IncidentEdges(1)
	want := []int32{0, 1, 2}
	for i := range want {
		if inc[i] != want[i] {
			t.Fatalf("IncidentEdges(1) = %v, want %v", inc, want)
		}
	}
	if h.Degree(2) != 1 {
		t.Errorf("Degree(2) = %d, want 1", h.Degree(2))
	}
}

func TestEdgeContains(t *testing.T) {
	h := MustNew(6, [][]int32{{0, 2, 4}})
	for _, tt := range []struct {
		v    int32
		want bool
	}{{0, true}, {2, true}, {4, true}, {1, false}, {3, false}, {5, false}} {
		if got := h.EdgeContains(0, tt.v); got != tt.want {
			t.Errorf("EdgeContains(0, %d) = %v, want %v", tt.v, got, tt.want)
		}
	}
}

func TestSizeStats(t *testing.T) {
	h := MustNew(6, [][]int32{{0, 1}, {1, 2, 3}, {0, 1, 2, 3, 4}})
	if h.MinEdgeSize() != 2 || h.MaxEdgeSize() != 5 || h.TotalEdgeSize() != 10 {
		t.Errorf("min=%d max=%d total=%d, want 2,5,10", h.MinEdgeSize(), h.MaxEdgeSize(), h.TotalEdgeSize())
	}
	empty := MustNew(3, nil)
	if empty.MinEdgeSize() != 0 || empty.MaxEdgeSize() != 0 {
		t.Error("edge-size stats of empty hypergraph should be 0")
	}
}

func TestIsAlmostUniform(t *testing.T) {
	tests := []struct {
		name   string
		edges  [][]int32
		eps    float64
		wantK  int
		wantOK bool
	}{
		{"uniform", [][]int32{{0, 1}, {2, 3}}, 0.5, 2, true},
		{"within eps", [][]int32{{0, 1}, {2, 3, 4}}, 0.5, 2, true},
		{"outside eps", [][]int32{{0, 1}, {1, 2, 3, 4}}, 0.5, 0, false},
		{"eps=1 doubles", [][]int32{{0, 1}, {1, 2, 3, 4}}, 1.0, 2, true},
		{"bad eps", [][]int32{{0, 1}}, 0, 0, false},
		{"no edges", nil, 0.5, 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h := MustNew(5, tt.edges)
			k, ok := h.IsAlmostUniform(tt.eps)
			if k != tt.wantK || ok != tt.wantOK {
				t.Errorf("IsAlmostUniform = (%d,%v), want (%d,%v)", k, ok, tt.wantK, tt.wantOK)
			}
		})
	}
}

func TestKeepEdges(t *testing.T) {
	h := MustNew(5, [][]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	sub, err := h.KeepEdges([]int32{0, 2})
	if err != nil {
		t.Fatalf("KeepEdges error: %v", err)
	}
	if sub.N() != 5 || sub.M() != 2 {
		t.Fatalf("sub n=%d m=%d, want 5,2", sub.N(), sub.M())
	}
	if sub.Edge(1)[0] != 2 || sub.Edge(1)[1] != 3 {
		t.Errorf("sub.Edge(1) = %v, want [2 3]", sub.Edge(1))
	}
	if _, err := h.KeepEdges([]int32{9}); err == nil {
		t.Error("KeepEdges with bad index should error")
	}
	if _, err := h.KeepEdges([]int32{-1}); err == nil {
		t.Error("KeepEdges with negative index should error")
	}
}

func TestKeepEdgesEmptyGivesEdgelessHypergraph(t *testing.T) {
	h := MustNew(3, [][]int32{{0, 1}})
	sub, err := h.KeepEdges(nil)
	if err != nil {
		t.Fatalf("KeepEdges(nil) error: %v", err)
	}
	if sub.M() != 0 || sub.N() != 3 {
		t.Errorf("sub n=%d m=%d, want 3,0", sub.N(), sub.M())
	}
}

func TestForEachEarlyStop(t *testing.T) {
	h := MustNew(5, [][]int32{{0, 1, 2, 3, 4}, {0, 1}, {0, 2}})
	count := 0
	h.ForEachEdgeVertex(0, func(v int32) bool { count++; return count < 3 })
	if count != 3 {
		t.Errorf("edge-vertex early stop visited %d, want 3", count)
	}
	count = 0
	h.ForEachIncidentEdge(0, func(j int32) bool { count++; return false })
	if count != 1 {
		t.Errorf("incident-edge early stop visited %d, want 1", count)
	}
}

// TestIncidencePropertyRandom cross-checks incidence lists against edge
// membership on random hypergraphs.
func TestIncidencePropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		m := rng.Intn(15)
		edges := make([][]int32, m)
		for j := range edges {
			size := 1 + rng.Intn(n)
			edges[j] = randomSubset(n, size, rng)
		}
		h, err := New(n, edges)
		if err != nil {
			return false
		}
		if h.Validate() != nil {
			return false
		}
		for v := int32(0); int(v) < n; v++ {
			count := 0
			for j := 0; j < m; j++ {
				if h.EdgeContains(j, v) {
					count++
				}
			}
			if count != h.Degree(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

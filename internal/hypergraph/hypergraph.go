// Package hypergraph provides the hypergraph substrate for conflict-free
// (multi)colouring, the source problem of the paper's reduction (Theorem 1.2
// in the paper, quoted from [GKM17]).
//
// A hypergraph H = (V, E) has dense int32 vertices 0..N()-1 and a list of
// hyperedges, each a non-empty sorted set of vertices. The structure is
// immutable after construction; phase i of the reduction derives
// H_i = (V, E_i) via KeepEdges without copying vertex data.
package hypergraph

import (
	"errors"
	"fmt"
	"sort"
)

// Errors returned by constructors.
var (
	// ErrVertexRange reports a vertex outside 0..n-1.
	ErrVertexRange = errors.New("hypergraph: vertex out of range")
	// ErrEmptyEdge reports a hyperedge with no vertices; conflict-free
	// colouring is undefined for empty edges.
	ErrEmptyEdge = errors.New("hypergraph: empty hyperedge")
	// ErrNegativeSize reports a negative vertex count.
	ErrNegativeSize = errors.New("hypergraph: negative vertex count")
)

// Hypergraph is an immutable hypergraph with dense vertices and indexed
// hyperedges.
type Hypergraph struct {
	n         int
	edges     [][]int32 // each sorted, duplicate-free, non-empty
	incidence [][]int32 // incidence[v] = ascending edge indices containing v
	weights   []int64   // optional vertex weights; nil means all-unit (see weights.go)
}

// New builds a hypergraph on n vertices from the given hyperedges. Each
// edge is copied, sorted and de-duplicated. Empty edges and out-of-range
// vertices are errors.
func New(n int, edges [][]int32) (*Hypergraph, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: %d", ErrNegativeSize, n)
	}
	h := &Hypergraph{n: n, edges: make([][]int32, len(edges))}
	for j, e := range edges {
		if len(e) == 0 {
			return nil, fmt.Errorf("%w: edge %d", ErrEmptyEdge, j)
		}
		cp := make([]int32, len(e))
		copy(cp, e)
		sort.Slice(cp, func(a, b int) bool { return cp[a] < cp[b] })
		w := 1
		for i := 1; i < len(cp); i++ {
			if cp[i] != cp[i-1] {
				cp[w] = cp[i]
				w++
			}
		}
		cp = cp[:w]
		if cp[0] < 0 || int(cp[w-1]) >= n {
			return nil, fmt.Errorf("%w: edge %d", ErrVertexRange, j)
		}
		h.edges[j] = cp
	}
	h.buildIncidence()
	return h, nil
}

// MustNew is New for statically correct construction sites (generators,
// tests); it panics on error.
func MustNew(n int, edges [][]int32) *Hypergraph {
	h, err := New(n, edges)
	if err != nil {
		panic(err)
	}
	return h
}

func (h *Hypergraph) buildIncidence() {
	h.incidence = make([][]int32, h.n)
	for j, e := range h.edges {
		for _, v := range e {
			h.incidence[v] = append(h.incidence[v], int32(j))
		}
	}
}

// N returns the number of vertices.
func (h *Hypergraph) N() int { return h.n }

// M returns the number of hyperedges.
func (h *Hypergraph) M() int { return len(h.edges) }

// EdgeSize returns |e_j|.
func (h *Hypergraph) EdgeSize(j int) int { return len(h.edges[j]) }

// Edge returns a fresh copy of the sorted vertex list of edge j.
func (h *Hypergraph) Edge(j int) []int32 {
	out := make([]int32, len(h.edges[j]))
	copy(out, h.edges[j])
	return out
}

// AppendEdge appends the sorted vertex list of edge j to dst and returns
// the extended slice, avoiding an allocation when dst has capacity. The hot
// construction loops of internal/core use it instead of Edge.
func (h *Hypergraph) AppendEdge(dst []int32, j int) []int32 {
	return append(dst, h.edges[j]...)
}

// AppendIncidentEdges appends the ascending edge indices containing v to
// dst and returns the extended slice, avoiding an allocation when dst has
// capacity.
func (h *Hypergraph) AppendIncidentEdges(dst []int32, v int32) []int32 {
	return append(dst, h.incidence[v]...)
}

// Edges returns a deep copy of the hyperedge list, each edge sorted and
// duplicate-free — the whole-structure accessor for external serializers
// and for comparing instances across an I/O round trip (graphio's tests
// do). Iteration call sites should prefer ForEachEdgeVertex or
// AppendEdge, which do not allocate per edge.
func (h *Hypergraph) Edges() [][]int32 {
	out := make([][]int32, len(h.edges))
	for j, e := range h.edges {
		cp := make([]int32, len(e))
		copy(cp, e)
		out[j] = cp
	}
	return out
}

// ForEachEdgeVertex calls fn for every vertex of edge j in ascending order;
// it stops early if fn returns false.
func (h *Hypergraph) ForEachEdgeVertex(j int, fn func(v int32) bool) {
	for _, v := range h.edges[j] {
		if !fn(v) {
			return
		}
	}
}

// EdgeContains reports whether vertex v belongs to edge j.
func (h *Hypergraph) EdgeContains(j int, v int32) bool {
	e := h.edges[j]
	i := sort.Search(len(e), func(i int) bool { return e[i] >= v })
	return i < len(e) && e[i] == v
}

// Degree returns the number of hyperedges containing v.
func (h *Hypergraph) Degree(v int32) int { return len(h.incidence[v]) }

// IncidentEdges returns a fresh copy of the ascending edge indices
// containing v.
func (h *Hypergraph) IncidentEdges(v int32) []int32 {
	out := make([]int32, len(h.incidence[v]))
	copy(out, h.incidence[v])
	return out
}

// ForEachIncidentEdge calls fn for every edge index containing v in
// ascending order; it stops early if fn returns false.
func (h *Hypergraph) ForEachIncidentEdge(v int32, fn func(j int32) bool) {
	for _, j := range h.incidence[v] {
		if !fn(j) {
			return
		}
	}
}

// MinEdgeSize returns the smallest hyperedge size, or 0 if there are no
// edges.
func (h *Hypergraph) MinEdgeSize() int {
	if len(h.edges) == 0 {
		return 0
	}
	min := len(h.edges[0])
	for _, e := range h.edges[1:] {
		if len(e) < min {
			min = len(e)
		}
	}
	return min
}

// MaxEdgeSize returns the largest hyperedge size, or 0 if there are no
// edges.
func (h *Hypergraph) MaxEdgeSize() int {
	max := 0
	for _, e := range h.edges {
		if len(e) > max {
			max = len(e)
		}
	}
	return max
}

// TotalEdgeSize returns Σ_e |e|, which is also |V(G_k)|/k for the conflict
// graph of Section 2.
func (h *Hypergraph) TotalEdgeSize() int {
	total := 0
	for _, e := range h.edges {
		total += len(e)
	}
	return total
}

// IsAlmostUniform reports whether there is a k with k <= |e| <= (1+eps)·k
// for every edge e (the paper's definition before Theorem 1.2), and returns
// the witness k = MinEdgeSize when it holds.
func (h *Hypergraph) IsAlmostUniform(eps float64) (k int, ok bool) {
	if eps <= 0 || eps > 1 {
		return 0, false
	}
	if h.M() == 0 {
		return 0, true
	}
	k = h.MinEdgeSize()
	if float64(h.MaxEdgeSize()) <= (1+eps)*float64(k) {
		return k, true
	}
	return 0, false
}

// KeepEdges returns the sub-hypergraph H' = (V, E') where E' consists of
// the edges whose indices appear in keep (in the given order). Vertex
// weights carry over. This is the H_{i+1} = H_i minus happy edges step of
// the Theorem 1.1 reduction.
func (h *Hypergraph) KeepEdges(keep []int32) (*Hypergraph, error) {
	edges := make([][]int32, 0, len(keep))
	for _, j := range keep {
		if j < 0 || int(j) >= h.M() {
			return nil, fmt.Errorf("hypergraph: KeepEdges index %d out of range [0,%d)", j, h.M())
		}
		edges = append(edges, h.edges[j])
	}
	sub, err := New(h.n, edges)
	if err != nil {
		return nil, err
	}
	sub.weights = h.weights // already normalised; shared because immutable
	return sub, nil
}

// Validate checks the representation invariants: sorted duplicate-free
// non-empty edges in range, and an incidence structure consistent with the
// edge list. It returns nil for every hypergraph produced by New.
func (h *Hypergraph) Validate() error {
	if h.weights != nil {
		if len(h.weights) != h.n {
			return fmt.Errorf("%w: %d weights for %d vertices", ErrWeightLength, len(h.weights), h.n)
		}
		for v, w := range h.weights {
			if w < 0 || w > MaxWeight {
				return fmt.Errorf("%w: weight %d of vertex %d", ErrBadWeight, w, v)
			}
		}
	}
	for j, e := range h.edges {
		if len(e) == 0 {
			return fmt.Errorf("%w: edge %d", ErrEmptyEdge, j)
		}
		for i, v := range e {
			if v < 0 || int(v) >= h.n {
				return fmt.Errorf("%w: edge %d vertex %d", ErrVertexRange, j, v)
			}
			if i > 0 && e[i-1] >= v {
				return fmt.Errorf("hypergraph: edge %d not strictly sorted", j)
			}
		}
	}
	count := 0
	for v := int32(0); int(v) < h.n; v++ {
		for i, j := range h.incidence[v] {
			if !h.EdgeContains(int(j), v) {
				return fmt.Errorf("hypergraph: incidence of vertex %d lists edge %d not containing it", v, j)
			}
			if i > 0 && h.incidence[v][i-1] >= j {
				return fmt.Errorf("hypergraph: incidence of vertex %d not strictly sorted", v)
			}
			count++
		}
	}
	if count != h.TotalEdgeSize() {
		return fmt.Errorf("hypergraph: incidence size %d != total edge size %d", count, h.TotalEdgeSize())
	}
	return nil
}

// String returns a short summary such as "hypergraph(n=10, m=4, |e|∈[2,3])".
func (h *Hypergraph) String() string {
	return fmt.Sprintf("hypergraph(n=%d, m=%d, |e|∈[%d,%d])", h.n, h.M(), h.MinEdgeSize(), h.MaxEdgeSize())
}

package hypergraph

// weights.go implements optional vertex weights, mirroring the graph
// package's contract (see internal/graph/weights.go): weights are part of
// the instance, constructors normalise an all-unit vector to nil, and
// Weighted() is a single pointer test. The reduction of Theorem 1.1
// transfers these weights onto the conflict graph G_k — triple (e,v,c)
// inherits w_H(v) — so a weight-aware MaxIS oracle optimises the weighted
// conflict-free colouring objective without any change to the phase logic.

import (
	"errors"
	"fmt"
	"math"
)

// MaxWeight is the largest admissible vertex weight; it matches
// graph.MaxWeight so conflict-graph construction never needs to clamp.
const MaxWeight = math.MaxInt32

// Weight errors returned by NewWeighted and WithWeights.
var (
	// ErrBadWeight reports a negative vertex weight or one above MaxWeight.
	ErrBadWeight = errors.New("hypergraph: vertex weight out of range")
	// ErrWeightLength reports a weight vector whose length is not the
	// vertex count.
	ErrWeightLength = errors.New("hypergraph: weight vector length mismatch")
)

// NewWeighted builds a vertex-weighted hypergraph. A nil weight vector (or
// an all-unit one, which is normalised away) yields the same hypergraph as
// New; otherwise ws must have exactly n entries in [0, MaxWeight].
func NewWeighted(n int, edges [][]int32, ws []int64) (*Hypergraph, error) {
	h, err := New(n, edges)
	if err != nil {
		return nil, err
	}
	h.weights, err = normalizeWeights(n, ws)
	if err != nil {
		return nil, err
	}
	return h, nil
}

// WithWeights returns a hypergraph sharing h's edge structure with the
// given weight vector (nil restores the unweighted form). The vector must
// have N() entries within [0, MaxWeight]; it is copied and normalised
// (all-unit collapses to nil).
func WithWeights(h *Hypergraph, ws []int64) (*Hypergraph, error) {
	norm, err := normalizeWeights(h.n, ws)
	if err != nil {
		return nil, err
	}
	return &Hypergraph{n: h.n, edges: h.edges, incidence: h.incidence, weights: norm}, nil
}

// Weighted reports whether h carries non-unit vertex weights. Constructors
// normalise all-unit weight vectors away, so false means every weight is
// exactly 1 and the unweighted fast paths apply.
func (h *Hypergraph) Weighted() bool { return h.weights != nil }

// Weight returns the weight of v: 1 on unweighted hypergraphs.
func (h *Hypergraph) Weight(v int32) int64 {
	if h.weights == nil {
		return 1
	}
	return h.weights[v]
}

// Weights returns a fresh copy of the per-vertex weight vector, or nil for
// an unweighted hypergraph (every weight 1). The caller owns the result.
func (h *Hypergraph) Weights() []int64 {
	if h.weights == nil {
		return nil
	}
	out := make([]int64, len(h.weights))
	copy(out, h.weights)
	return out
}

// AppendWeights appends the effective per-vertex weights (all 1 on
// unweighted hypergraphs) to dst and returns the extended slice.
func (h *Hypergraph) AppendWeights(dst []int64) []int64 {
	if h.weights != nil {
		return append(dst, h.weights...)
	}
	for i := 0; i < h.n; i++ {
		dst = append(dst, 1)
	}
	return dst
}

// TotalWeight returns the sum of all vertex weights; on unweighted
// hypergraphs it equals N().
func (h *Hypergraph) TotalWeight() int64 {
	if h.weights == nil {
		return int64(h.n)
	}
	total := int64(0)
	for _, w := range h.weights {
		total += w
	}
	return total
}

// normalizeWeights validates ws against n vertices and returns a private
// normalised copy: nil when ws is nil or all-unit.
func normalizeWeights(n int, ws []int64) ([]int64, error) {
	if ws == nil {
		return nil, nil
	}
	if len(ws) != n {
		return nil, fmt.Errorf("%w: %d weights for %d vertices", ErrWeightLength, len(ws), n)
	}
	unit := true
	for v, w := range ws {
		if w < 0 || w > MaxWeight {
			return nil, fmt.Errorf("%w: weight %d of vertex %d", ErrBadWeight, w, v)
		}
		if w != 1 {
			unit = false
		}
	}
	if unit {
		return nil, nil
	}
	out := make([]int64, len(ws))
	copy(out, ws)
	return out, nil
}

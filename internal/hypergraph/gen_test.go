package hypergraph

import (
	"math/rand"
	"testing"
)

func TestUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h, err := Uniform(20, 15, 4, rng)
	if err != nil {
		t.Fatalf("Uniform error: %v", err)
	}
	if h.M() != 15 {
		t.Fatalf("M() = %d, want 15", h.M())
	}
	for j := 0; j < h.M(); j++ {
		if h.EdgeSize(j) != 4 {
			t.Errorf("edge %d size %d, want 4", j, h.EdgeSize(j))
		}
	}
	if err := h.Validate(); err != nil {
		t.Errorf("Validate() = %v", err)
	}
	if _, err := Uniform(3, 1, 4, rng); err == nil {
		t.Error("Uniform with r > n should error")
	}
	if _, err := Uniform(3, 1, 0, rng); err == nil {
		t.Error("Uniform with r < 1 should error")
	}
}

func TestAlmostUniformSizesInBand(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	k, eps := 4, 0.5
	h, err := AlmostUniform(30, 40, k, eps, rng)
	if err != nil {
		t.Fatalf("AlmostUniform error: %v", err)
	}
	gotK, ok := h.IsAlmostUniform(eps)
	if !ok {
		t.Fatalf("generated hypergraph not almost-uniform: sizes [%d,%d]", h.MinEdgeSize(), h.MaxEdgeSize())
	}
	if gotK < k || gotK > int(float64(k)*(1+eps)) {
		t.Errorf("witness k = %d outside [%d, %d]", gotK, k, int(float64(k)*(1+eps)))
	}
	if _, err := AlmostUniform(5, 1, 4, 1.0, rng); err == nil {
		t.Error("AlmostUniform with (1+eps)k > n should error")
	}
}

// edgeHappy reports whether edge j of h has a vertex whose colour (1-based,
// 0 = uncoloured) is unique within the edge — the paper's happiness
// condition, re-implemented locally to keep this package dependency-free.
func edgeHappy(h *Hypergraph, j int, colour []int32) bool {
	counts := map[int32]int{}
	h.ForEachEdgeVertex(j, func(v int32) bool {
		if colour[v] != 0 {
			counts[colour[v]]++
		}
		return true
	})
	for _, c := range counts {
		if c == 1 {
			return true
		}
	}
	return false
}

func TestPlantedCFAllEdgesHappy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(40)
		m := 5 + rng.Intn(40)
		k := 2 + rng.Intn(4)
		h, colour, err := PlantedCF(n, m, k, 3, 6, rng)
		if err != nil {
			t.Fatalf("PlantedCF error: %v", err)
		}
		if len(colour) != n {
			t.Fatalf("colour length %d, want %d", len(colour), n)
		}
		for v := 0; v < n; v++ {
			if colour[v] < 1 || colour[v] > int32(k) {
				t.Fatalf("vertex %d colour %d outside 1..%d", v, colour[v], k)
			}
		}
		for j := 0; j < h.M(); j++ {
			if !edgeHappy(h, j, colour) {
				t.Errorf("trial %d: edge %d (%v) not happy under planted colouring", trial, j, h.Edge(j))
			}
		}
	}
}

func TestPlantedCFErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, _, err := PlantedCF(10, 5, 1, 2, 3, rng); err == nil {
		t.Error("k=1 should error")
	}
	if _, _, err := PlantedCF(10, 5, 3, 0, 3, rng); err == nil {
		t.Error("sizeLo=0 should error")
	}
	if _, _, err := PlantedCF(10, 5, 3, 4, 3, rng); err == nil {
		t.Error("sizeLo > sizeHi should error")
	}
	if _, _, err := PlantedCF(2, 5, 3, 1, 2, rng); err == nil {
		t.Error("n < k should error")
	}
}

func TestPlantedCFClampsOversizeEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// n=4, k=2: each colour class has 2 vertices, so the "other colour" pool
	// has exactly 2 entries and edges clamp to size <= 3.
	h, _, err := PlantedCF(4, 10, 2, 3, 8, rng)
	if err != nil {
		t.Fatalf("PlantedCF error: %v", err)
	}
	if h.MaxEdgeSize() > 3 {
		t.Errorf("max edge size %d, want <= 3 after clamping", h.MaxEdgeSize())
	}
}

func TestIntervalEdgesAreIntervals(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	h, err := Interval(50, 30, 2, 7, rng)
	if err != nil {
		t.Fatalf("Interval error: %v", err)
	}
	for j := 0; j < h.M(); j++ {
		e := h.Edge(j)
		for i := 1; i < len(e); i++ {
			if e[i] != e[i-1]+1 {
				t.Fatalf("edge %d = %v is not contiguous", j, e)
			}
		}
		if len(e) < 2 || len(e) > 7 {
			t.Errorf("edge %d length %d outside [2,7]", j, len(e))
		}
	}
	if _, err := Interval(5, 1, 3, 9, rng); err == nil {
		t.Error("lenHi > n should error")
	}
}

func TestStarEdgesContainCentre(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h, err := Star(20, 12, 4, rng)
	if err != nil {
		t.Fatalf("Star error: %v", err)
	}
	for j := 0; j < h.M(); j++ {
		if !h.EdgeContains(j, 0) {
			t.Errorf("edge %d misses the centre", j)
		}
		if h.EdgeSize(j) != 4 {
			t.Errorf("edge %d size %d, want 4", j, h.EdgeSize(j))
		}
	}
	if h.Degree(0) != 12 {
		t.Errorf("centre degree %d, want 12", h.Degree(0))
	}
}

func TestFromGraphEdges(t *testing.T) {
	h, err := FromGraphEdges(4, [][2]int32{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatalf("FromGraphEdges error: %v", err)
	}
	if h.M() != 2 || h.MinEdgeSize() != 2 || h.MaxEdgeSize() != 2 {
		t.Errorf("not 2-uniform: %v", h)
	}
}

func TestRandomSubsetIsASubsetWithoutRepeats(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(30)
		r := 1 + rng.Intn(n)
		s := randomSubset(n, r, rng)
		if len(s) != r {
			t.Fatalf("len = %d, want %d", len(s), r)
		}
		seen := map[int32]bool{}
		for _, v := range s {
			if v < 0 || int(v) >= n {
				t.Fatalf("element %d out of range", v)
			}
			if seen[v] {
				t.Fatalf("repeated element %d", v)
			}
			seen[v] = true
		}
	}
}

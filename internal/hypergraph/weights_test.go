package hypergraph

import (
	"errors"
	"testing"
)

func TestNewWeighted(t *testing.T) {
	h, err := NewWeighted(4, [][]int32{{0, 1}, {1, 2, 3}}, []int64{5, 1, 1, 2})
	if err != nil {
		t.Fatalf("NewWeighted: %v", err)
	}
	if !h.Weighted() {
		t.Fatal("weighted hypergraph reports unweighted")
	}
	if h.Weight(0) != 5 || h.Weight(1) != 1 || h.Weight(3) != 2 {
		t.Errorf("Weights = %v, want [5 1 1 2]", h.Weights())
	}
	if h.TotalWeight() != 9 {
		t.Errorf("TotalWeight = %d, want 9", h.TotalWeight())
	}
	if err := h.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNewWeightedNormalizesUnitVector(t *testing.T) {
	h, err := NewWeighted(3, [][]int32{{0, 1, 2}}, []int64{1, 1, 1})
	if err != nil {
		t.Fatalf("NewWeighted: %v", err)
	}
	if h.Weighted() {
		t.Error("all-ones weight vector not normalised to nil")
	}
	if h.Weights() != nil {
		t.Errorf("Weights = %v, want nil", h.Weights())
	}
	if h.TotalWeight() != 3 {
		t.Errorf("TotalWeight = %d, want 3", h.TotalWeight())
	}
}

func TestNewWeightedErrors(t *testing.T) {
	if _, err := NewWeighted(3, nil, []int64{1, 2}); !errors.Is(err, ErrWeightLength) {
		t.Errorf("short vector err = %v, want ErrWeightLength", err)
	}
	if _, err := NewWeighted(3, nil, []int64{1, -2, 1}); !errors.Is(err, ErrBadWeight) {
		t.Errorf("negative weight err = %v, want ErrBadWeight", err)
	}
	if _, err := NewWeighted(3, nil, []int64{1, MaxWeight + 1, 1}); !errors.Is(err, ErrBadWeight) {
		t.Errorf("overflow weight err = %v, want ErrBadWeight", err)
	}
}

func TestWithWeightsSharesStructure(t *testing.T) {
	h, err := New(4, [][]int32{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	wh, err := WithWeights(h, []int64{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("WithWeights: %v", err)
	}
	if !wh.Weighted() || wh.N() != h.N() || wh.M() != h.M() {
		t.Error("WithWeights changed the structure or dropped weights")
	}
	if h.Weighted() {
		t.Error("WithWeights mutated the original")
	}
	uh, err := WithWeights(wh, nil)
	if err != nil {
		t.Fatalf("WithWeights(nil): %v", err)
	}
	if uh.Weighted() {
		t.Error("WithWeights(nil) left the hypergraph weighted")
	}
}

func TestKeepEdgesPreservesWeights(t *testing.T) {
	h, err := NewWeighted(4, [][]int32{{0, 1}, {1, 2}, {2, 3}}, []int64{9, 1, 1, 7})
	if err != nil {
		t.Fatalf("NewWeighted: %v", err)
	}
	sub, err := h.KeepEdges([]int32{0, 2})
	if err != nil {
		t.Fatalf("KeepEdges: %v", err)
	}
	if !sub.Weighted() {
		t.Fatal("residual hypergraph dropped its weights")
	}
	for v := int32(0); int(v) < h.N(); v++ {
		if sub.Weight(v) != h.Weight(v) {
			t.Errorf("vertex %d: weight %d, want %d", v, sub.Weight(v), h.Weight(v))
		}
	}
}

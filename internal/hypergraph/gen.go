package hypergraph

// gen.go provides deterministic-seeded hypergraph generators, including the
// planted conflict-free-colourable almost-uniform family that substitutes
// for the (non-constructive) hardness instances of [GKM17] Theorem 1.2 —
// see DESIGN.md "Substitutions".

import (
	"fmt"
	"math/rand"
)

// Uniform returns a hypergraph with m hyperedges, each a uniformly random
// r-subset of the n vertices. Requires 1 <= r <= n.
func Uniform(n, m, r int, rng *rand.Rand) (*Hypergraph, error) {
	if r < 1 || r > n {
		return nil, fmt.Errorf("hypergraph: Uniform needs 1 <= r <= n, got r=%d n=%d", r, n)
	}
	edges := make([][]int32, m)
	for j := range edges {
		edges[j] = randomSubset(n, r, rng)
	}
	return New(n, edges)
}

// AlmostUniform returns a hypergraph with m hyperedges whose sizes are
// uniform in [k, floor((1+eps)k)], matching the paper's almost-uniform
// definition. Requires 1 <= k and (1+eps)k <= n.
func AlmostUniform(n, m, k int, eps float64, rng *rand.Rand) (*Hypergraph, error) {
	hi := int(float64(k) * (1 + eps))
	if k < 1 || hi > n {
		return nil, fmt.Errorf("hypergraph: AlmostUniform needs 1 <= k and (1+eps)k <= n, got k=%d hi=%d n=%d", k, hi, n)
	}
	edges := make([][]int32, m)
	for j := range edges {
		size := k + rng.Intn(hi-k+1)
		edges[j] = randomSubset(n, size, rng)
	}
	return New(n, edges)
}

// PlantedCF returns an almost-uniform hypergraph together with a hidden
// conflict-free k-colouring (one colour per vertex, colours 1..k) under
// which every edge is happy. Edge sizes are uniform in [sizeLo, sizeHi].
//
// Construction: vertices are coloured round-robin (so every colour class is
// non-empty); each edge picks a designated vertex v and fills the rest of
// the edge with vertices whose colour differs from f(v), making v uniquely
// coloured inside the edge. This guarantees the property the reduction's
// analysis needs: every sub-hypergraph admits a CF k-colouring, hence
// α(G_k(H_i)) = |E_i| by Lemma 2.1(a).
func PlantedCF(n, m, k, sizeLo, sizeHi int, rng *rand.Rand) (*Hypergraph, []int32, error) {
	if k < 2 {
		return nil, nil, fmt.Errorf("hypergraph: PlantedCF needs k >= 2, got %d", k)
	}
	if sizeLo < 1 || sizeLo > sizeHi {
		return nil, nil, fmt.Errorf("hypergraph: PlantedCF needs 1 <= sizeLo <= sizeHi, got [%d,%d]", sizeLo, sizeHi)
	}
	if n < k {
		return nil, nil, fmt.Errorf("hypergraph: PlantedCF needs n >= k, got n=%d k=%d", n, k)
	}
	colour := make([]int32, n)
	perm := rng.Perm(n)
	for i, v := range perm {
		colour[v] = int32(i%k) + 1
	}
	// byOther[c] lists vertices whose colour is NOT c+1.
	byOther := make([][]int32, k)
	for c := 0; c < k; c++ {
		for v := 0; v < n; v++ {
			if colour[v] != int32(c)+1 {
				byOther[c] = append(byOther[c], int32(v))
			}
		}
	}
	edges := make([][]int32, m)
	for j := range edges {
		v := int32(rng.Intn(n))
		pool := byOther[colour[v]-1]
		size := sizeLo + rng.Intn(sizeHi-sizeLo+1)
		if size-1 > len(pool) {
			size = len(pool) + 1
		}
		e := make([]int32, 0, size)
		e = append(e, v)
		for _, idx := range rng.Perm(len(pool))[:size-1] {
			e = append(e, pool[idx])
		}
		edges[j] = e
	}
	h, err := New(n, edges)
	if err != nil {
		return nil, nil, err
	}
	return h, colour, nil
}

// Interval returns an interval hypergraph in the sense of [DN18]: vertices
// 0..n-1 lie on a line and every hyperedge is a contiguous interval
// [a, a+len-1] with len uniform in [lenLo, lenHi].
func Interval(n, m, lenLo, lenHi int, rng *rand.Rand) (*Hypergraph, error) {
	if lenLo < 1 || lenLo > lenHi || lenHi > n {
		return nil, fmt.Errorf("hypergraph: Interval needs 1 <= lenLo <= lenHi <= n, got [%d,%d] n=%d", lenLo, lenHi, n)
	}
	edges := make([][]int32, m)
	for j := range edges {
		length := lenLo + rng.Intn(lenHi-lenLo+1)
		start := rng.Intn(n - length + 1)
		e := make([]int32, length)
		for i := range e {
			e[i] = int32(start + i)
		}
		edges[j] = e
	}
	return New(n, edges)
}

// Star returns a hypergraph in which every edge contains the centre vertex 0
// plus r-1 other random vertices. Stars stress the E_vertex/E_color parts of
// the conflict graph because all edges intersect.
func Star(n, m, r int, rng *rand.Rand) (*Hypergraph, error) {
	if r < 1 || r > n {
		return nil, fmt.Errorf("hypergraph: Star needs 1 <= r <= n, got r=%d n=%d", r, n)
	}
	edges := make([][]int32, m)
	for j := range edges {
		e := randomSubsetFrom(1, n-1, r-1, rng)
		edges[j] = append(e, 0)
	}
	return New(n, edges)
}

// FromGraphEdges returns the 2-uniform hypergraph whose hyperedges are the
// given graph edges. Conflict-free colouring of a 2-uniform hypergraph is
// exactly proper "partial unique" colouring of the graph, a useful sanity
// domain.
func FromGraphEdges(n int, graphEdges [][2]int32) (*Hypergraph, error) {
	edges := make([][]int32, len(graphEdges))
	for j, e := range graphEdges {
		edges[j] = []int32{e[0], e[1]}
	}
	return New(n, edges)
}

// randomSubset returns a uniformly random r-subset of {0..n-1}.
func randomSubset(n, r int, rng *rand.Rand) []int32 {
	return randomSubsetFrom(0, n, r, rng)
}

// randomSubsetFrom returns a uniformly random r-subset of
// {base..base+n-1} using a partial Fisher-Yates shuffle.
func randomSubsetFrom(base, n, r int, rng *rand.Rand) []int32 {
	pool := make([]int32, n)
	for i := range pool {
		pool[i] = int32(base + i)
	}
	for i := 0; i < r; i++ {
		j := i + rng.Intn(n-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	return pool[:r]
}

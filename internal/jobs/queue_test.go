package jobs

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// qjob makes a registry-less job for queue-only tests.
func qjob(label string, p Priority) *job {
	return &job{info: Info{ID: label, Label: label, Priority: p, State: StateQueued}}
}

func TestQueueFIFOWithinLane(t *testing.T) {
	q := newQueue(8)
	for _, l := range []string{"a", "b", "c"} {
		if err := q.push(qjob(l, PriorityNormal)); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []string{"a", "b", "c"} {
		j, ok := q.pop()
		if !ok || j.info.Label != want {
			t.Fatalf("pop = %v/%v, want %s", j, ok, want)
		}
	}
}

func TestQueuePriorityLanes(t *testing.T) {
	q := newQueue(8)
	for _, j := range []*job{
		qjob("low1", PriorityLow),
		qjob("norm1", PriorityNormal),
		qjob("high1", PriorityHigh),
		qjob("high2", PriorityHigh),
		qjob("norm2", PriorityNormal),
	} {
		if err := q.push(j); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	for range 5 {
		j, ok := q.pop()
		if !ok {
			t.Fatal("queue drained early")
		}
		got = append(got, j.info.Label)
	}
	want := []string{"high1", "high2", "norm1", "norm2", "low1"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestQueueBound(t *testing.T) {
	q := newQueue(2)
	if err := q.push(qjob("a", PriorityLow)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob("b", PriorityHigh)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob("c", PriorityHigh)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity push error = %v, want ErrQueueFull", err)
	}
	if q.depth() != 2 {
		t.Fatalf("depth = %d, want 2", q.depth())
	}
	// Popping frees capacity.
	if _, ok := q.pop(); !ok {
		t.Fatal("pop failed")
	}
	if err := q.push(qjob("c", PriorityHigh)); err != nil {
		t.Fatalf("push after pop: %v", err)
	}
}

func TestQueueRemove(t *testing.T) {
	q := newQueue(4)
	a, b := qjob("a", PriorityNormal), qjob("b", PriorityNormal)
	if err := q.push(a); err != nil {
		t.Fatal(err)
	}
	if err := q.push(b); err != nil {
		t.Fatal(err)
	}
	if !q.remove(a) {
		t.Fatal("remove of a queued job reported not found")
	}
	if q.remove(a) {
		t.Fatal("double remove reported found")
	}
	j, ok := q.pop()
	if !ok || j != b {
		t.Fatalf("pop after remove = %v, want b", j.info.Label)
	}
}

func TestQueuePopBlocksUntilPushOrClose(t *testing.T) {
	q := newQueue(4)
	got := make(chan *job, 1)
	go func() {
		j, ok := q.pop()
		if ok {
			got <- j
		} else {
			got <- nil
		}
	}()
	select {
	case <-got:
		t.Fatal("pop returned on an empty open queue")
	case <-time.After(20 * time.Millisecond):
	}
	if err := q.push(qjob("x", PriorityNormal)); err != nil {
		t.Fatal(err)
	}
	select {
	case j := <-got:
		if j == nil || j.info.Label != "x" {
			t.Fatalf("blocked pop woke with %v", j)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pop never woke after push")
	}

	// Close wakes every blocked popper with ok=false, even with items left.
	if err := q.push(qjob("left", PriorityNormal)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make(chan bool, 3)
	for range 3 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, ok := q.pop()
			results <- ok
		}()
	}
	q.close()
	wg.Wait()
	close(results)
	for ok := range results {
		if ok {
			t.Error("pop returned an item after close")
		}
	}
	if err := q.push(qjob("y", PriorityNormal)); !errors.Is(err, ErrClosed) {
		t.Errorf("push after close error = %v, want ErrClosed", err)
	}
}

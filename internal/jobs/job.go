// Package jobs is the asynchronous job-orchestration subsystem: a
// bounded priority FIFO queue, a worker pool driving one shared
// solver.Solver, and a full job lifecycle (queued → running → done |
// failed | cancelled) with deadlines, retry-on-transient policy and
// per-job cooperative cancellation.
//
// A job is one Theorem 1.1 reduction over a serialized hypergraph body
// (any graphio format). Jobs are identified by the SHA-256 content hash
// of their kind, format directive, solve parameters and body — so
// resubmitting an identical job is idempotent — and completed jobs
// persist their result as a graphio reduction-result document under the
// manager's store directory, named by that hash. On restart the store is
// rescanned and terminal jobs reappear with their results readable, which
// is what turns the long-running reduction service from a
// hold-the-socket-open model into submit/poll/stream.
//
// cmd/cfserve surfaces the subsystem as the /v1/jobs API (submit, get,
// list, cancel, SSE events) and cmd/cfbatch drives directory-scale sweeps
// through it; the facade re-exports the manager as pslocal.JobManager.
// DESIGN.md ("Async job subsystem") records the design.
package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"pslocal/internal/obs"
	"pslocal/internal/solver"
)

// Errors of the job layer. Solve failures inside a job keep their own
// taxonomy (solver.ErrCancelled, graphio.ErrFormat, ...) and surface
// through Info.Error.
var (
	// ErrQueueFull reports a Submit rejected because the bounded queue is
	// at capacity; the caller should retry later (cfserve maps it to 503).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrNotFound reports an unknown job id.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrClosed reports an operation on a closed manager.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrDraining reports a Submit on a draining manager: running and
	// queued jobs are being finished, new work is refused (cfserve maps it
	// to 503 so a gateway retries against another node).
	ErrDraining = errors.New("jobs: manager draining")
	// ErrTransient tags a failure worth retrying: the default retry
	// policy retries exactly the errors matching it under errors.Is.
	// Oracles and custom Retryable hooks wrap it around recoverable
	// faults (a flaky remote backend, a lost lease).
	ErrTransient = errors.New("jobs: transient failure")
	// ErrNoResult reports a Result call on a job that has none (not done,
	// or its store entry vanished).
	ErrNoResult = errors.New("jobs: no result")
)

// State is a lifecycle state. Transitions are strictly
// queued → running → done | failed | cancelled (a queued job may also go
// straight to cancelled).
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether s is an end state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// ParseState maps a query-parameter spelling onto a State ("" matches
// nothing and is the "no filter" value of Filter.State).
func ParseState(s string) (State, error) {
	switch State(strings.ToLower(strings.TrimSpace(s))) {
	case StateQueued, StateRunning, StateDone, StateFailed, StateCancelled:
		return State(strings.ToLower(strings.TrimSpace(s))), nil
	default:
		return "", fmt.Errorf("jobs: unknown state %q (want queued|running|done|failed|cancelled)", s)
	}
}

// Priority selects the queue lane. Higher priorities pop first; within a
// lane jobs stay FIFO.
type Priority int

const (
	PriorityLow    Priority = 0
	PriorityNormal Priority = 1
	PriorityHigh   Priority = 2

	numPriorities = 3
)

// String returns the flag/query spelling of p.
func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityNormal:
		return "normal"
	case PriorityHigh:
		return "high"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// MarshalJSON renders p by its flag spelling, the form the /v1/jobs
// responses and the persisted job documents carry.
func (p Priority) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.String())
}

// UnmarshalJSON accepts the flag spellings (recovery reads them back).
func (p *Priority) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	parsed, err := ParsePriority(s)
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}

// ParsePriority maps a flag or query-parameter spelling onto a Priority;
// the empty string selects PriorityNormal.
func ParsePriority(s string) (Priority, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "normal":
		return PriorityNormal, nil
	case "low":
		return PriorityLow, nil
	case "high":
		return PriorityHigh, nil
	default:
		return PriorityNormal, fmt.Errorf("jobs: unknown priority %q (want low|normal|high)", s)
	}
}

// Params are the per-job solve options, mirroring the Solver's option
// set; zero values inherit the manager's base Solver configuration. They
// are part of the job's identity hash, so the same body under different
// parameters is a different job.
type Params struct {
	// K is the per-phase palette size (0 = the base Solver's).
	K int `json:"k,omitempty"`
	// Oracle is the registry strategy name, incl. portfolio:<a>,<b>,...
	// ("" = the base Solver's).
	Oracle string `json:"oracle,omitempty"`
	// Seed feeds randomized oracles (0 = the base Solver's).
	Seed int64 `json:"seed,omitempty"`
	// Workers is the per-job worker width under the CLI convention
	// (-1 = GOMAXPROCS, 0 = the base Solver's).
	Workers int `json:"workers,omitempty"`
}

// options lowers p onto the Solver's option set, leaving unset fields to
// the base configuration.
func (p Params) options() []solver.Option {
	var opts []solver.Option
	if p.K > 0 {
		opts = append(opts, solver.WithK(p.K))
	}
	if p.Oracle != "" {
		opts = append(opts, solver.WithOracle(p.Oracle))
	}
	if p.Seed != 0 {
		opts = append(opts, solver.WithSeed(p.Seed))
	}
	if p.Workers != 0 {
		opts = append(opts, solver.WithWorkers(max(p.Workers, 0)))
	}
	return opts
}

// canonical renders p for the identity hash; every field participates so
// parameter changes change the job id.
func (p Params) canonical() string {
	return fmt.Sprintf("k=%d;oracle=%s;seed=%d;workers=%d", p.K, p.Oracle, p.Seed, p.Workers)
}

// Request describes one job to submit.
type Request struct {
	// Body is the serialized hypergraph instance, in any graphio format.
	Body []byte
	// Format is the parse directive (FormatAuto sniffs). It participates
	// in the job id, matching the instance cache's keying.
	Format string
	// Params are the solve options (zero fields inherit the base Solver).
	Params Params
	// Priority selects the queue lane (default PriorityNormal... the zero
	// value is PriorityLow, so callers coming from flags should go
	// through ParsePriority).
	Priority Priority
	// Deadline bounds the job's total run time (all retry attempts
	// included) once a worker picks it up; 0 means unbounded. An expired
	// deadline fails the job — cancelled is reserved for explicit Cancel.
	Deadline time.Duration
	// MaxRetries is how many times a transient failure re-runs the solve
	// before the job fails (0 = no retries).
	MaxRetries int
	// Label is a free-form tag (cfbatch uses the file name); it is not
	// part of the job id.
	Label string
	// RequestID is the observability correlation id of the submitting
	// request (see obs.RequestIDHeader). Like Label it is not part of the
	// job id: resubmitting the same body under a new request id must
	// dedupe onto the existing job.
	RequestID string
}

// id derives the job's content-hash identity.
func (r *Request) id() string {
	h := sha256.New()
	h.Write([]byte("reduce\x00"))
	h.Write([]byte(r.Format))
	h.Write([]byte{0})
	h.Write([]byte(r.Params.canonical()))
	h.Write([]byte{0})
	h.Write(r.Body)
	return hex.EncodeToString(h.Sum(nil))
}

// Info is a point-in-time snapshot of a job, safe to hold after the job
// moves on.
type Info struct {
	// ID is the job's content hash (64 hex digits), also the stem of its
	// store file names.
	ID string `json:"id"`
	// Label echoes Request.Label.
	Label string `json:"label,omitempty"`
	// State is the lifecycle state at snapshot time.
	State State `json:"state"`
	// Priority is the queue lane.
	Priority Priority `json:"priority"`
	// Params echo the solve options.
	Params Params `json:"params"`
	// Format is the requested parse directive.
	Format string `json:"format"`
	// N and M are the parsed instance's vertex and hyperedge counts
	// (0 until the job first runs).
	N int `json:"n,omitempty"`
	M int `json:"m,omitempty"`
	// Error is the terminal failure message (failed/cancelled only).
	Error string `json:"error,omitempty"`
	// Retries counts re-runs consumed by the transient-retry policy.
	Retries int `json:"retries,omitempty"`
	// TotalColors and PhaseCount summarize a done job's result.
	TotalColors int `json:"total_colors,omitempty"`
	PhaseCount  int `json:"phase_count,omitempty"`
	// Recovered marks a job restored from the store by a restart rescan.
	Recovered bool `json:"recovered,omitempty"`
	// RequestID is the correlation id of the submitting request; it ties
	// the job to the gateway/backend logs and traces that carried it.
	RequestID string `json:"request_id,omitempty"`
	// Trace is the per-phase span tree of the job's solve, recorded on the
	// run that reached a terminal state (nil while queued/running).
	Trace *obs.TraceSnapshot `json:"trace,omitempty"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
}

// WaitMS is the queue latency: submit → first run (0 while queued).
func (i Info) WaitMS() float64 {
	if i.StartedAt.IsZero() {
		return 0
	}
	return float64(i.StartedAt.Sub(i.SubmittedAt).Microseconds()) / 1000
}

// RunMS is the run latency: first run → terminal (0 before terminal).
func (i Info) RunMS() float64 {
	if i.StartedAt.IsZero() || i.FinishedAt.IsZero() {
		return 0
	}
	return float64(i.FinishedAt.Sub(i.StartedAt).Microseconds()) / 1000
}

// Event is one lifecycle transition, delivered through Manager.Watch; the
// first event of a watch reports the state at subscription time.
type Event struct {
	ID    string    `json:"id"`
	State State     `json:"state"`
	Error string    `json:"error,omitempty"`
	At    time.Time `json:"at"`
}

// Filter selects jobs for Manager.List.
type Filter struct {
	// State keeps only jobs in that state ("" = all).
	State State
	// Label keeps only jobs with exactly that label ("" = all).
	Label string
	// Limit bounds the result length (0 = unbounded).
	Limit int
}

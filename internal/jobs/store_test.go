package jobs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pslocal/internal/core"
)

// sampleResult builds a small real reduction result to persist.
func sampleResult(t *testing.T) *core.Result {
	t.Helper()
	h := testHypergraph(t, 1)
	res, err := core.Reduce(nil, h, core.Options{K: 2, Mode: core.ModeImplicitFirstFit})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestStoreResultRoundTrip(t *testing.T) {
	st, err := newStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := sampleResult(t)
	const id = "deadbeef"
	if err := st.writeResult(id, res); err != nil {
		t.Fatal(err)
	}
	back, err := st.readResult(id)
	if err != nil {
		t.Fatal(err)
	}
	if back.K != res.K || back.TotalColors != res.TotalColors || len(back.Phases) != len(res.Phases) {
		t.Errorf("round trip changed the result: %+v vs %+v", back, res)
	}
	if got := st.resultPath(id); !strings.HasSuffix(got, id+resultSuffix) {
		t.Errorf("resultPath = %q", got)
	}
}

func TestStoreJobDocRoundTrip(t *testing.T) {
	st, err := newStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	info := Info{
		ID:       "cafe01",
		Label:    "batch/x.hg",
		State:    StateFailed,
		Priority: PriorityHigh,
		Params:   Params{K: 2, Oracle: "greedy-mindeg", Seed: 7, Workers: 2},
		Format:   "auto",
		N:        24, M: 10,
		Error:       "boom",
		Retries:     2,
		SubmittedAt: time.Now().Truncate(time.Millisecond),
	}
	if err := st.writeJob(info); err != nil {
		t.Fatal(err)
	}
	back, err := st.readJob(filepath.Join(st.dir, info.ID+jobSuffix))
	if err != nil {
		t.Fatal(err)
	}
	if back.State != StateFailed || back.Priority != PriorityHigh || back.Error != "boom" ||
		back.Params != info.Params || back.Retries != 2 || back.Label != info.Label {
		t.Errorf("job doc round trip changed the snapshot: %+v", back)
	}
}

func TestStoreRecover(t *testing.T) {
	dir := t.TempDir()
	st, err := newStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	res := sampleResult(t)
	// A complete done job: result + metadata.
	if err := st.writeResult("jobdone", res); err != nil {
		t.Fatal(err)
	}
	if err := st.writeJob(Info{ID: "jobdone", State: StateDone, Priority: PriorityNormal,
		TotalColors: res.TotalColors, PhaseCount: len(res.Phases)}); err != nil {
		t.Fatal(err)
	}
	// A failed job: metadata only.
	if err := st.writeJob(Info{ID: "jobfail", State: StateFailed, Priority: PriorityLow, Error: "x"}); err != nil {
		t.Fatal(err)
	}
	// An orphan result (crash between the two writes) is adopted as done —
	// but only under a name shaped like a real content hash.
	orphanID := strings.Repeat("ab", 32)
	if err := st.writeResult(orphanID, res); err != nil {
		t.Fatal(err)
	}
	// Garbage that must be skipped, not fatal: unparsable docs, a
	// non-hash orphan name (a stray copied file), a wrong-type result.
	if err := os.WriteFile(filepath.Join(dir, "junk.job.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.writeResult("backup copy", res); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, strings.Repeat("cd", 32)+".result.json"), []byte(`{"type":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}

	infos, err := st.recover()
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]Info{}
	for _, info := range infos {
		byID[info.ID] = info
	}
	if len(byID) != 3 {
		t.Fatalf("recovered %d jobs (%v), want 3", len(byID), byID)
	}
	if byID["jobdone"].State != StateDone || byID["jobdone"].TotalColors != res.TotalColors {
		t.Errorf("jobdone = %+v", byID["jobdone"])
	}
	if byID["jobfail"].State != StateFailed || byID["jobfail"].Error != "x" {
		t.Errorf("jobfail = %+v", byID["jobfail"])
	}
	if byID[orphanID].State != StateDone || byID[orphanID].PhaseCount != len(res.Phases) {
		t.Errorf("orphan = %+v", byID[orphanID])
	}
}

func TestStoreAtomicWriteLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	st, err := newStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.writeResult("x", sampleResult(t)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}

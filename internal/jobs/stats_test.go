package jobs

// stats_test.go pins the wait/run latency accounting under concurrency:
// parallel submitters and cancellers hammer a small worker pool while a
// reader polls Stats, and at quiescence the started/finished counters
// must reconcile exactly with the terminal outcomes. Run under -race in
// CI, this is the guard against torn or misattributed latency sums.

import (
	"sync"
	"testing"
)

func TestStatsWaitRunAccountingUnderLoad(t *testing.T) {
	m := newManager(t, Config{Workers: 3, QueueCap: 64})

	const (
		submitters   = 4
		perSubmitter = 8
	)
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		ids []string
	)
	// Parallel submitters with distinct instances (no dedupe), plus a
	// canceller racing the workers and a Stats poller racing everything.
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				body := testBody(t, int64(1000+s*perSubmitter+i))
				info, accepted, err := m.Submit(Request{Body: body, Params: Params{K: 2}})
				if err != nil || !accepted {
					t.Errorf("submit: accepted=%v err=%v", accepted, err)
					return
				}
				mu.Lock()
				ids = append(ids, info.ID)
				mu.Unlock()
				if i%3 == 0 {
					// Racing cancellation: may land while queued, running,
					// or already done — all are legal.
					_, _ = m.Cancel(info.ID)
				}
			}
		}(s)
	}
	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		for i := 0; i < 1000; i++ {
			st := m.Stats()
			if st.Started < st.Finished {
				t.Errorf("finished (%d) overtook started (%d)", st.Finished, st.Started)
				return
			}
			if st.WaitSumMS < 0 || st.RunSumMS < 0 {
				t.Errorf("negative latency sums: %+v", st)
				return
			}
		}
	}()
	wg.Wait()
	<-pollDone

	for _, id := range ids {
		if _, err := m.Await(awaitCtx(t), id); err != nil {
			t.Fatalf("await %s: %v", id, err)
		}
	}

	st := m.Stats()
	total := submitters * perSubmitter
	if st.Submitted != uint64(total) {
		t.Fatalf("submitted = %d, want %d", st.Submitted, total)
	}
	// Every job is terminal, so every started job has finished its run.
	if st.Started != st.Finished {
		t.Fatalf("started (%d) != finished (%d) at quiescence", st.Started, st.Finished)
	}
	// Jobs cancelled while still queued never start; everything else
	// does. The split must cover all terminal outcomes exactly.
	if st.Completed+st.Failed+st.Cancelled != uint64(total) {
		t.Fatalf("terminal outcomes %d+%d+%d don't cover %d jobs",
			st.Completed, st.Failed, st.Cancelled, total)
	}
	if st.Started > uint64(total) {
		t.Fatalf("started (%d) exceeds submissions (%d)", st.Started, total)
	}
	if st.Started < st.Completed {
		t.Fatalf("completed (%d) jobs that never started (%d)", st.Completed, st.Started)
	}
	if st.Completed == 0 {
		t.Fatal("no job completed — cancellation starved the test")
	}
	if st.RunSumMS <= 0 {
		t.Fatalf("finished %d jobs with zero run-time sum", st.Finished)
	}
	if st.MeanRunMS() <= 0 || st.MeanRunMS() != st.RunSumMS/float64(st.Finished) {
		t.Fatalf("mean run %.4f inconsistent with sum %.4f / %d", st.MeanRunMS(), st.RunSumMS, st.Finished)
	}
	if st.MeanWaitMS() != st.WaitSumMS/float64(st.Started) {
		t.Fatalf("mean wait %.4f inconsistent with sum %.4f / %d", st.MeanWaitMS(), st.WaitSumMS, st.Started)
	}
	if st.Running != 0 || st.QueueDepth != 0 {
		t.Fatalf("gauges not drained at quiescence: %+v", st)
	}
}

func TestStatsMeansEmpty(t *testing.T) {
	var st Stats
	if st.MeanWaitMS() != 0 || st.MeanRunMS() != 0 {
		t.Fatalf("zero-value Stats must report zero means: %+v", st)
	}
}

package jobs

// queue.go implements the bounded priority FIFO queue the worker pool
// pops from: one lane per Priority, highest lane first, strict FIFO
// within a lane, one total capacity bound across lanes. Cancellation of a
// queued job removes it eagerly (remove), so a cancelled job never
// reaches a worker through the queue; the pop path still re-checks the
// job state as a belt-and-braces guard.

import "sync"

// queue is the bounded priority FIFO. All methods are safe for
// concurrent use; pop blocks until an item or close.
type queue struct {
	mu       sync.Mutex
	nonEmpty *sync.Cond
	lanes    [numPriorities][]*job
	n        int
	cap      int
	closed   bool
}

// newQueue returns a queue bounded to capacity items across all lanes.
func newQueue(capacity int) *queue {
	q := &queue{cap: capacity}
	q.nonEmpty = sync.NewCond(&q.mu)
	return q
}

// push appends j to its priority lane, reporting ErrQueueFull at the
// bound and ErrClosed after close.
func (q *queue) push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.n >= q.cap {
		return ErrQueueFull
	}
	lane := j.info.Priority
	if lane < 0 || lane >= numPriorities {
		lane = PriorityNormal
	}
	q.lanes[lane] = append(q.lanes[lane], j)
	q.n++
	q.nonEmpty.Signal()
	return nil
}

// pop removes and returns the oldest job of the highest non-empty lane,
// blocking while the queue is empty. ok is false once the queue is
// closed; remaining items are abandoned (their jobs stay queued in the
// registry, which Close then resolves).
func (q *queue) pop() (j *job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.nonEmpty.Wait()
	}
	if q.closed {
		return nil, false
	}
	for lane := numPriorities - 1; lane >= 0; lane-- {
		if len(q.lanes[lane]) == 0 {
			continue
		}
		j = q.lanes[lane][0]
		q.lanes[lane][0] = nil // release the reference behind the head
		q.lanes[lane] = q.lanes[lane][1:]
		q.n--
		return j, true
	}
	// n > 0 with all lanes empty cannot happen; fail closed.
	panic("jobs: queue accounting out of sync")
}

// remove deletes j from its lane, reporting whether it was still queued
// (false means a worker already popped it).
func (q *queue) remove(j *job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	lane := j.info.Priority
	if lane < 0 || lane >= numPriorities {
		lane = PriorityNormal
	}
	for i, queued := range q.lanes[lane] {
		if queued == j {
			q.lanes[lane] = append(q.lanes[lane][:i], q.lanes[lane][i+1:]...)
			q.n--
			return true
		}
	}
	return false
}

// depth returns the number of queued items.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// close wakes every blocked pop; subsequent pushes fail with ErrClosed
// and pops return ok=false immediately.
func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.nonEmpty.Broadcast()
}

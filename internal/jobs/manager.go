package jobs

// manager.go is the orchestration core: Manager owns the registry of
// jobs, the bounded priority queue, the worker pool driving the shared
// Solver, the store, and the counters. Locking is three-tiered and never
// nested the wrong way: Manager.mu guards the registry (id → job,
// submission order), queue.mu guards the lanes, and each job's own mutex
// guards its mutable state and subscriber list. The only place two of
// them overlap is Submit (Manager.mu → queue.mu), fixing the order.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pslocal/internal/core"
	"pslocal/internal/engine"
	"pslocal/internal/graphio"
	"pslocal/internal/obs"
	"pslocal/internal/solver"
)

// job is the internal mutable record behind an Info snapshot.
type job struct {
	mu   sync.Mutex
	info Info
	req  Request
	// format is the parsed directive (Info.Format is its spelling).
	format graphio.Format
	// cancelRequested distinguishes an explicit Cancel from a deadline or
	// shutdown, so only user cancellations end in StateCancelled.
	cancelRequested bool
	// cancel aborts the running solve; set by the worker at pickup.
	cancel context.CancelFunc
	// result is the in-memory result of a done job (recovered jobs load
	// it lazily from the store).
	result *core.Result
	// subs are the live Watch channels; closed at the terminal event.
	subs []chan Event
}

// snapshot copies the job's Info under its lock.
func (j *job) snapshot() Info {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.info
}

// Config configures a Manager.
type Config struct {
	// Solver is the base solver jobs derive from per-job (Solver.With),
	// sharing its instance cache and admission gate with every other
	// user; nil constructs a default solver.New().
	Solver *solver.Solver
	// Dir is the persistent store directory. "" keeps jobs in memory
	// only — no result documents, no crash recovery.
	Dir string
	// Workers is the pool width under the CLI -workers convention:
	// 0 (and negatives) select GOMAXPROCS, any positive value is the
	// literal count.
	Workers int
	// QueueCap bounds the queue across all priority lanes (0 = 1024).
	QueueCap int
	// Retryable classifies errors worth re-running; nil retries exactly
	// the errors matching ErrTransient. Cancellations never retry.
	Retryable func(error) bool
	// Traces, when non-nil, receives the span snapshot of every job run
	// that reaches a terminal state (the same ring cfserve serves through
	// GET /v1/traces). Nil disables job tracing.
	Traces *obs.Ring
}

// Manager is the job orchestrator. Construct with New, submit with
// Submit, and stop with Close; all methods are safe for concurrent use.
type Manager struct {
	base      *solver.Solver
	store     *store // nil when persistence is off
	queue     *queue
	met       metrics
	retryable func(error) bool
	workers   int
	queueCap  int
	traces    *obs.Ring // nil when job tracing is off

	mu    sync.Mutex
	jobs  map[string]*job
	order []string // submission order, for List

	baseCtx  context.Context
	stopBase context.CancelFunc
	wg       sync.WaitGroup
	closed   atomic.Bool
	draining atomic.Bool
}

// New builds the manager: it creates the store directory, rescans it for
// jobs that reached a terminal state before a previous shutdown, and
// starts the worker pool.
func New(cfg Config) (*Manager, error) {
	base := cfg.Solver
	if base == nil {
		base = solver.New()
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = engine.Parallel().WorkerCount()
	}
	queueCap := cfg.QueueCap
	if queueCap < 1 {
		queueCap = 1024
	}
	retryable := cfg.Retryable
	if retryable == nil {
		retryable = func(err error) bool { return errors.Is(err, ErrTransient) }
	}
	m := &Manager{
		base:      base,
		queue:     newQueue(queueCap),
		retryable: retryable,
		workers:   workers,
		queueCap:  queueCap,
		traces:    cfg.Traces,
		jobs:      make(map[string]*job),
	}
	m.baseCtx, m.stopBase = context.WithCancel(context.Background())
	if cfg.Dir != "" {
		st, err := newStore(cfg.Dir)
		if err != nil {
			return nil, err
		}
		m.store = st
		infos, err := st.recover()
		if err != nil {
			return nil, err
		}
		for _, info := range infos {
			if !info.State.Terminal() {
				// Only terminal jobs persist, but a hand-edited document
				// must not resurrect as runnable: there is no body to run.
				info.State = StateFailed
				info.Error = "jobs: non-terminal state recovered without a body"
			}
			info.Recovered = true
			j := &job{info: info, format: graphio.FormatAuto}
			m.jobs[info.ID] = j
			m.order = append(m.order, info.ID)
			m.met.recovered.Add(1)
		}
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// Submit enqueues req, returning the job snapshot and whether it was
// newly accepted: submitting a body+parameter combination whose content
// hash is already registered — queued, running or terminal, including
// recovered — returns the existing job with accepted=false, which is what
// makes retried submissions and post-restart resubmissions idempotent.
func (m *Manager) Submit(req Request) (Info, bool, error) {
	if m.closed.Load() {
		return Info{}, false, ErrClosed
	}
	if m.draining.Load() {
		return Info{}, false, ErrDraining
	}
	if len(req.Body) == 0 {
		return Info{}, false, fmt.Errorf("%w: empty job body", graphio.ErrFormat)
	}
	f, err := graphio.ParseFormat(req.Format)
	if err != nil {
		return Info{}, false, err
	}
	req.Format = f.String() // canonicalize before hashing
	if req.Priority < 0 || req.Priority >= numPriorities {
		return Info{}, false, fmt.Errorf("jobs: priority %d out of range", req.Priority)
	}
	if req.MaxRetries < 0 {
		req.MaxRetries = 0
	}
	if req.Deadline < 0 {
		req.Deadline = 0
	}
	id := req.id()

	m.mu.Lock()
	defer m.mu.Unlock()
	if existing, ok := m.jobs[id]; ok {
		// Done, queued and running jobs dedupe; a failed or cancelled job
		// re-runs — resubmitting after a failure IS the retry, and a
		// permanent dedupe onto a stale failure would make the id
		// unrunnable forever (recovered failures have no body at all
		// until a resubmission brings one).
		if info, requeued, err := m.resubmit(existing, req, f); requeued || err != nil {
			return info, requeued, err
		}
		m.met.deduped.Add(1)
		return existing.snapshot(), false, nil
	}
	j := &job{
		req:    req,
		format: f,
		info: Info{
			ID:          id,
			Label:       req.Label,
			State:       StateQueued,
			Priority:    req.Priority,
			Params:      req.Params,
			Format:      req.Format,
			RequestID:   req.RequestID,
			SubmittedAt: time.Now(),
		},
	}
	// Snapshot before the push: the moment the job is queued a worker may
	// pop it and start mutating its info.
	info := j.info
	if err := m.queue.push(j); err != nil {
		return Info{}, false, err
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.met.submitted.Add(1)
	return info, true, nil
}

// resubmit re-enqueues a failed or cancelled job under a fresh request
// (same content hash by construction). Callers hold m.mu; requeued is
// false when the job's state dedupes instead.
func (m *Manager) resubmit(j *job, req Request, f graphio.Format) (Info, bool, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.info.State != StateFailed && j.info.State != StateCancelled {
		return Info{}, false, nil
	}
	prev := j.info
	j.req = req
	j.format = f
	j.result = nil
	j.cancelRequested = false
	j.cancel = nil
	j.info = Info{
		ID:          prev.ID,
		Label:       req.Label,
		State:       StateQueued,
		Priority:    req.Priority,
		Params:      req.Params,
		Format:      req.Format,
		RequestID:   req.RequestID,
		SubmittedAt: time.Now(),
	}
	info := j.info
	if err := m.queue.push(j); err != nil {
		j.info = prev // the bound rejected the re-run; keep the old outcome
		return Info{}, false, err
	}
	m.met.submitted.Add(1)
	m.publishLocked(j)
	return info, true, nil
}

// Get returns the job's current snapshot. An id the registry does not
// know is looked up in the store before 404ing: with a shared store
// directory another node may have run and persisted the job, and a hit
// adopts it here (see Rescan).
func (m *Manager) Get(id string) (Info, error) {
	j, ok := m.lookup(id)
	if !ok {
		if j, ok = m.adoptFromStore(id); !ok {
			return Info{}, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
	}
	return j.snapshot(), nil
}

// List returns snapshots in submission order, filtered by f.
func (m *Manager) List(f Filter) []Info {
	m.mu.Lock()
	ids := make([]string, len(m.order))
	copy(ids, m.order)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()

	infos := make([]Info, 0, len(jobs))
	for _, j := range jobs {
		info := j.snapshot()
		if f.State != "" && info.State != f.State {
			continue
		}
		if f.Label != "" && info.Label != f.Label {
			continue
		}
		infos = append(infos, info)
		if f.Limit > 0 && len(infos) == f.Limit {
			break
		}
	}
	return infos
}

// Result returns a done job's reduction result, reading it back from the
// store for jobs recovered after a restart.
func (m *Manager) Result(id string) (*core.Result, error) {
	j, ok := m.lookup(id)
	if !ok {
		if j, ok = m.adoptFromStore(id); !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.info.State != StateDone {
		return nil, fmt.Errorf("%w: job %s is %s", ErrNoResult, id, j.info.State)
	}
	if j.result != nil {
		return j.result, nil
	}
	if m.store == nil {
		return nil, fmt.Errorf("%w: job %s has no in-memory result and no store", ErrNoResult, id)
	}
	// Deliberately not memoized: re-reading keeps the registry's memory
	// bounded, and result fetches are rare next to solves.
	res, err := m.store.readResult(id)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoResult, err)
	}
	return res, nil
}

// ResultPath returns the store path of the job's result document ("" when
// persistence is off). The file exists once the job is done.
func (m *Manager) ResultPath(id string) string {
	if m.store == nil {
		return ""
	}
	return m.store.resultPath(id)
}

// Cancel requests cooperative cancellation: a queued job transitions to
// cancelled immediately; a running job has its context cancelled and
// transitions once the solve unwinds; a terminal job is left as is. The
// returned snapshot reflects the state after the request.
func (m *Manager) Cancel(id string) (Info, error) {
	j, ok := m.lookup(id)
	if !ok {
		return Info{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	j.mu.Lock()
	switch j.info.State {
	case StateQueued:
		// Eager removal under the job lock: a worker that popped the job
		// concurrently blocks on j.mu in run() and then skips it on the
		// state check, and a racing resubmit cannot interleave between
		// the removal and the transition.
		m.queue.remove(j)
		j.cancelRequested = true
		j.info.State = StateCancelled
		j.info.Error = "cancelled before running"
		j.info.FinishedAt = time.Now()
		j.req.Body = nil
		m.met.cancelled.Add(1)
		m.publishLocked(j)
		info := j.info
		j.mu.Unlock()
		m.persist(info)
		return info, nil
	case StateRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
		info := j.info
		j.mu.Unlock()
		return info, nil
	default:
		info := j.info
		j.mu.Unlock()
		return info, nil
	}
}

// Watch subscribes to the job's lifecycle. The first event reports the
// state at subscription time; the channel closes after the terminal
// event. The returned stop function detaches the subscription early.
func (m *Manager) Watch(id string) (<-chan Event, func(), error) {
	j, ok := m.lookup(id)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	ch := make(chan Event, 8)
	j.mu.Lock()
	ch <- Event{ID: j.info.ID, State: j.info.State, Error: j.info.Error, At: time.Now()}
	if j.info.State.Terminal() {
		close(ch)
		j.mu.Unlock()
		return ch, func() {}, nil
	}
	j.subs = append(j.subs, ch)
	j.mu.Unlock()
	stop := func() {
		j.mu.Lock()
		for i, c := range j.subs {
			if c == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				break
			}
		}
		j.mu.Unlock()
	}
	return ch, stop, nil
}

// Await blocks until the job reaches a terminal state (returning its
// final snapshot) or ctx is done.
func (m *Manager) Await(ctx context.Context, id string) (Info, error) {
	ch, stop, err := m.Watch(id)
	if err != nil {
		return Info{}, err
	}
	defer stop()
	for {
		select {
		case ev, ok := <-ch:
			// Channel closure is the authoritative terminal signal: even
			// if an event were dropped on a full buffer, the close after
			// the terminal transition wakes this loop.
			if !ok || ev.State.Terminal() {
				return m.Get(id)
			}
		case <-ctx.Done():
			return Info{}, ctx.Err()
		}
	}
}

// Stats snapshots the counters.
func (m *Manager) Stats() Stats {
	return m.met.snapshot(m.queue.depth(), m.queueCap, m.workers, m.draining.Load())
}

// Draining reports whether Drain has been requested (true until Close —
// a drained manager does not resume admissions).
func (m *Manager) Draining() bool { return m.draining.Load() }

// Drain stops admitting new jobs and waits until every registered job
// has reached a terminal state: queued jobs still run (the worker pool
// keeps popping), running jobs finish, and only then does Drain return.
// ctx bounds the wait — on expiry the manager stays draining (admissions
// stay refused) and the remaining jobs keep running until Close cancels
// them. Drain is idempotent and safe to call concurrently with Close.
func (m *Manager) Drain(ctx context.Context) error {
	m.draining.Store(true)
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if !m.anyActive() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// anyActive reports whether any registered job is still queued or
// running.
func (m *Manager) anyActive() bool {
	m.mu.Lock()
	jobs := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		if !j.snapshot().State.Terminal() {
			return true
		}
	}
	return false
}

// Rescan re-reads the store directory and adopts terminal jobs another
// manager (or a previous process) persisted there: the jobs store is a
// shared substrate, so a node pointed at a directory a drained peer
// wrote picks up its finished work without re-running it. Jobs whose
// content-hash id is already registered are skipped (the sha256 identity
// is the dedupe key); the adopted count is returned. Without a store,
// Rescan is a no-op.
func (m *Manager) Rescan() (int, error) {
	if m.store == nil {
		return 0, nil
	}
	infos, err := m.store.recover()
	if err != nil {
		return 0, err
	}
	adopted := 0
	for _, info := range infos {
		if !info.State.Terminal() {
			continue
		}
		if m.adopt(info) {
			adopted++
		}
	}
	return adopted, nil
}

// adopt registers a terminal Info read from the store, reporting whether
// it was new (false = the id was already registered and the existing job
// wins).
func (m *Manager) adopt(info Info) bool {
	info.Recovered = true
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.jobs[info.ID]; ok {
		return false
	}
	m.jobs[info.ID] = &job{info: info, format: graphio.FormatAuto}
	m.order = append(m.order, info.ID)
	m.met.adopted.Add(1)
	return true
}

// adoptFromStore is the targeted (single-id) version of Rescan, used by
// Get and Result on a registry miss: another node sharing the store may
// have finished this job. Returns the adopted or already-registered job.
func (m *Manager) adoptFromStore(id string) (*job, bool) {
	if m.store == nil || !validJobID(id) {
		return nil, false
	}
	info, ok := m.store.loadTerminal(id)
	if !ok {
		return nil, false
	}
	m.adopt(info) // a racing adopt keeps the existing registration
	return m.lookup(id)
}

// Close stops the pool: no new submissions, queued jobs transition to
// cancelled, running jobs are cancelled cooperatively and awaited. Jobs
// interrupted by Close are not persisted as failures — after a restart
// over the same store they resubmit and run fresh.
func (m *Manager) Close() {
	if !m.closed.CompareAndSwap(false, true) {
		return
	}
	m.queue.close()
	m.stopBase()
	m.wg.Wait()
	m.mu.Lock()
	jobs := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		if j.info.State == StateQueued {
			j.info.State = StateCancelled
			j.info.Error = "manager closed"
			j.info.FinishedAt = time.Now()
			j.req.Body = nil
			m.met.cancelled.Add(1)
			m.publishLocked(j)
		}
		j.mu.Unlock()
	}
}

// lookup finds a job by id.
func (m *Manager) lookup(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// persist writes the terminal metadata document, best effort: a metadata
// write failure must not fail a job whose result is already durable.
func (m *Manager) persist(info Info) {
	if m.store != nil {
		_ = m.store.writeJob(info)
	}
}

// publishLocked delivers the job's current state to every subscriber
// (non-blocking — the close below is the authoritative terminal signal
// for a subscriber whose buffer is full) and closes them on a terminal
// state. Callers hold j.mu, which is what orders concurrent transitions.
func (m *Manager) publishLocked(j *job) {
	ev := Event{ID: j.info.ID, State: j.info.State, Error: j.info.Error, At: time.Now()}
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	if j.info.State.Terminal() {
		for _, ch := range j.subs {
			close(ch)
		}
		j.subs = nil
	}
}

// worker is one pool goroutine: pop, run, repeat until close.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		j, ok := m.queue.pop()
		if !ok {
			return
		}
		m.run(j)
	}
}

// run drives one job through its lifecycle: transition to running, solve
// with retry-on-transient under the job deadline, persist, transition to
// its terminal state.
func (m *Manager) run(j *job) {
	j.mu.Lock()
	if j.info.State != StateQueued { // cancelled while queued, pop raced
		j.mu.Unlock()
		return
	}
	started := time.Now()
	j.info.State = StateRunning
	j.info.StartedAt = started
	ctx := m.baseCtx
	var cancel context.CancelFunc
	if j.req.Deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, j.req.Deadline)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	j.cancel = cancel
	m.publishLocked(j)
	wait := started.Sub(j.info.SubmittedAt)
	j.mu.Unlock()
	defer cancel()
	m.met.waitNS.Add(int64(wait))
	m.met.started.Add(1)
	m.met.running.Add(1)
	defer m.met.running.Add(-1)

	sv := m.base.With(j.req.Params.options()...)
	// Job tracing is on only when the manager has a ring to publish into:
	// a nil trace makes every span below a no-op.
	var tr *obs.Trace
	if m.traces != nil {
		tr = obs.NewTrace("job", j.req.RequestID)
		ctx = obs.ContextWithTrace(ctx, tr)
	}
	var (
		res  *core.Result
		inst *solver.Instance
		err  error
	)
	for attempt := 0; ; attempt++ {
		res, inst, err = sv.SolveReader(ctx, bytes.NewReader(j.req.Body), j.format)
		if err == nil || attempt >= j.req.MaxRetries || ctx.Err() != nil || !m.retryable(err) {
			break
		}
		m.met.retries.Add(1)
		j.mu.Lock()
		j.info.Retries++
		j.mu.Unlock()
	}
	tr.Finish()
	// Persist the result before announcing done: a watcher that sees the
	// terminal event can immediately read the document.
	if err == nil && m.store != nil {
		if perr := m.store.writeResult(j.info.ID, res); perr != nil {
			err = fmt.Errorf("jobs: persisting result: %w", perr)
		}
	}

	finished := time.Now()
	j.mu.Lock()
	if inst != nil {
		j.info.N, j.info.M = inst.N, inst.M
	}
	if tr != nil {
		j.info.Trace = tr.Snapshot()
		m.traces.Push(j.info.Trace)
	}
	j.info.FinishedAt = finished
	cancelRequested := j.cancelRequested
	switch {
	case err == nil:
		j.info.State = StateDone
		j.info.TotalColors = res.TotalColors
		j.info.PhaseCount = len(res.Phases)
		j.result = res
		m.met.completed.Add(1)
	case cancelRequested:
		j.info.State = StateCancelled
		j.info.Error = err.Error()
		m.met.cancelled.Add(1)
	default:
		j.info.State = StateFailed
		j.info.Error = err.Error()
		m.met.failed.Add(1)
	}
	m.met.runNS.Add(int64(finished.Sub(started)))
	m.met.finished.Add(1)
	// Terminal jobs stop pinning their request body (a resubmission
	// brings a fresh one), and a persisted result lives in the store —
	// without this, a long-lived manager would hold every body (up to
	// the server's body cap each) and result forever.
	j.req.Body = nil
	if j.info.State == StateDone && m.store != nil {
		j.result = nil
	}
	info := j.info
	m.publishLocked(j)
	j.mu.Unlock()

	// Shutdown interruptions stay unpersisted (see Close); every other
	// terminal state is durable.
	if m.closed.Load() && err != nil && !cancelRequested && errors.Is(err, solver.ErrCancelled) {
		return
	}
	m.persist(info)
}

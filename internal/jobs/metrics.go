package jobs

// metrics.go carries the subsystem's counters: submissions, terminal
// outcomes, retries, queue/running gauges and latency sums. cfserve's
// /statz merges a Stats snapshot in, and cfbatch prints one as its final
// summary.

import "sync/atomic"

// metrics is the internal atomic counter set.
type metrics struct {
	submitted atomic.Uint64
	deduped   atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	cancelled atomic.Uint64
	retries   atomic.Uint64
	recovered atomic.Uint64
	adopted   atomic.Uint64
	running   atomic.Int64
	started   atomic.Uint64
	finished  atomic.Uint64
	waitNS    atomic.Int64
	runNS     atomic.Int64
}

// Stats is a point-in-time snapshot of the manager's counters.
type Stats struct {
	// Submitted counts accepted Submit calls (dedupe hits excluded).
	Submitted uint64 `json:"submitted"`
	// Deduped counts Submits answered by an existing job with the same
	// content hash.
	Deduped uint64 `json:"deduped"`
	// Completed/Failed/Cancelled count terminal transitions in this
	// process (recovered jobs are counted separately).
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	// Retries counts transient re-runs across all jobs.
	Retries uint64 `json:"retries"`
	// Recovered counts jobs restored from the store at construction.
	Recovered uint64 `json:"recovered"`
	// Adopted counts jobs adopted after construction from a shared store
	// another manager wrote (Rescan or a Get/Result store fallback).
	Adopted uint64 `json:"adopted"`
	// Draining reports that Drain has stopped admissions.
	Draining bool `json:"draining,omitempty"`
	// QueueDepth and Running are gauges; QueueCap and Workers are the
	// configured bounds.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	Running    int `json:"running"`
	Workers    int `json:"workers"`
	// Started and Finished count jobs that left the queue for a worker
	// and jobs whose worker run reached a terminal state (jobs cancelled
	// while still queued count as neither) — the denominators for
	// WaitSumMS and RunSumMS respectively.
	Started  uint64 `json:"started"`
	Finished uint64 `json:"finished"`
	// WaitSumMS and RunSumMS accumulate queue-wait and run latency over
	// every job that started / finished here; divide by the matching
	// counters for means.
	WaitSumMS float64 `json:"wait_sum_ms"`
	RunSumMS  float64 `json:"run_sum_ms"`
}

// MeanWaitMS is the mean queue wait per started job (0 when none
// started).
func (s Stats) MeanWaitMS() float64 {
	if s.Started == 0 {
		return 0
	}
	return s.WaitSumMS / float64(s.Started)
}

// MeanRunMS is the mean run time per finished job (0 when none
// finished).
func (s Stats) MeanRunMS() float64 {
	if s.Finished == 0 {
		return 0
	}
	return s.RunSumMS / float64(s.Finished)
}

// snapshot assembles a Stats from the counters plus the live gauges.
func (m *metrics) snapshot(queueDepth, queueCap, workers int, draining bool) Stats {
	return Stats{
		Submitted:  m.submitted.Load(),
		Deduped:    m.deduped.Load(),
		Completed:  m.completed.Load(),
		Failed:     m.failed.Load(),
		Cancelled:  m.cancelled.Load(),
		Retries:    m.retries.Load(),
		Recovered:  m.recovered.Load(),
		Adopted:    m.adopted.Load(),
		Draining:   draining,
		QueueDepth: queueDepth,
		QueueCap:   queueCap,
		Running:    int(m.running.Load()),
		Workers:    workers,
		Started:    m.started.Load(),
		Finished:   m.finished.Load(),
		WaitSumMS:  float64(m.waitNS.Load()) / 1e6,
		RunSumMS:   float64(m.runNS.Load()) / 1e6,
	}
}

package jobs

// store.go persists jobs under one directory, named by content hash:
//
//	<id>.result.json   the graphio reduction-result document (done jobs)
//	<id>.job.json      the job metadata document (all terminal states)
//
// Writes are atomic (temp file + rename), the result document lands
// before the metadata document, and recovery rescans the directory on
// manager construction — so a restart finds every job that reached a
// terminal state before the crash, and an interrupted write leaves at
// worst an orphan result document, which recovery adopts as a done job.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pslocal/internal/core"
	"pslocal/internal/graphio"
)

const (
	resultSuffix = ".result.json"
	jobSuffix    = ".job.json"
	// jobDocType tags persisted job documents, mirroring the graphio
	// result document's "type" discriminator.
	jobDocType = "job"
)

// validJobID reports whether s has the shape of a job id: the 64-digit
// lowercase hex SHA-256 content hash.
func validJobID(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// jobDoc is the persisted metadata shape: the Info snapshot plus a type
// tag so mixed-up files fail loudly.
type jobDoc struct {
	Type string `json:"type"`
	Info
}

// store owns the directory. Methods are safe for concurrent use as long
// as no two writers target the same id, which the manager guarantees (a
// job is persisted once, at its terminal transition).
type store struct{ dir string }

// newStore creates dir (and parents) and returns the store.
func newStore(dir string) (*store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: creating store: %w", err)
	}
	return &store{dir: dir}, nil
}

// atomicWrite writes data next to path and renames it into place.
func (st *store) atomicWrite(path string, write func(*os.File) error) error {
	tmp, err := os.CreateTemp(st.dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// writeResult persists res as the job's graphio result document.
func (st *store) writeResult(id string, res *core.Result) error {
	return st.atomicWrite(filepath.Join(st.dir, id+resultSuffix), func(f *os.File) error {
		return graphio.WriteResult(f, res)
	})
}

// readResult loads the job's result document back.
func (st *store) readResult(id string) (*core.Result, error) {
	f, err := os.Open(filepath.Join(st.dir, id+resultSuffix))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graphio.ReadResult(f)
}

// resultPath returns the path GET responses and the CLI report for a
// done job's document.
func (st *store) resultPath(id string) string {
	return filepath.Join(st.dir, id+resultSuffix)
}

// writeJob persists the terminal metadata snapshot.
func (st *store) writeJob(info Info) error {
	return st.atomicWrite(filepath.Join(st.dir, info.ID+jobSuffix), func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(jobDoc{Type: jobDocType, Info: info})
	})
}

// readJob loads one metadata document.
func (st *store) readJob(path string) (Info, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Info{}, err
	}
	var doc jobDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		return Info{}, fmt.Errorf("jobs: parsing %s: %w", filepath.Base(path), err)
	}
	if doc.Type != jobDocType {
		return Info{}, fmt.Errorf("jobs: %s: document type %q, want %q", filepath.Base(path), doc.Type, jobDocType)
	}
	return doc.Info, nil
}

// loadTerminal reads one job's persisted state by id: the metadata
// document when present, otherwise an orphan result document adopted as
// a done job (mirroring recover's per-file logic). ok is false when the
// store holds nothing usable for the id, or what it holds is
// non-terminal or mislabeled.
func (st *store) loadTerminal(id string) (Info, bool) {
	if info, err := st.readJob(filepath.Join(st.dir, id+jobSuffix)); err == nil {
		if info.ID == id && info.State.Terminal() {
			return info, true
		}
		return Info{}, false
	}
	res, err := st.readResult(id)
	if err != nil {
		return Info{}, false
	}
	return Info{
		ID:          id,
		State:       StateDone,
		Priority:    PriorityNormal,
		TotalColors: res.TotalColors,
		PhaseCount:  len(res.Phases),
	}, true
}

// recover rescans the store: every readable job document yields its Info,
// and result documents without metadata (a crash between the two writes)
// are adopted as done jobs. Unreadable files are skipped — recovery
// restores what it can rather than refusing to start.
func (st *store) recover() ([]Info, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("jobs: rescanning store: %w", err)
	}
	var infos []Info
	seen := make(map[string]bool)
	var orphans []string
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, jobSuffix):
			info, err := st.readJob(filepath.Join(st.dir, name))
			if err != nil || info.ID != strings.TrimSuffix(name, jobSuffix) {
				continue
			}
			infos = append(infos, info)
			seen[info.ID] = true
		case strings.HasSuffix(name, resultSuffix):
			orphans = append(orphans, strings.TrimSuffix(name, resultSuffix))
		}
	}
	for _, id := range orphans {
		if seen[id] {
			continue
		}
		// Validate before adopting: the stem must look like a job id (the
		// 64-hex content hash — a stray renamed file must not resurface
		// as a phantom job) and a truncated write must not come back as a
		// done job with an unreadable result.
		if !validJobID(id) {
			continue
		}
		res, err := st.readResult(id)
		if err != nil {
			continue
		}
		infos = append(infos, Info{
			ID:          id,
			State:       StateDone,
			Priority:    PriorityNormal,
			TotalColors: res.TotalColors,
			PhaseCount:  len(res.Phases),
		})
	}
	return infos, nil
}

package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pslocal/internal/engine"
	"pslocal/internal/graph"
	"pslocal/internal/graphio"
	"pslocal/internal/hypergraph"
	"pslocal/internal/maxis"
	"pslocal/internal/solver"
	"pslocal/internal/verify"
)

// testHypergraph returns a small planted instance.
func testHypergraph(t *testing.T, seed int64) *hypergraph.Hypergraph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	h, _, err := hypergraph.PlantedCF(24, 10, 2, 2, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// testBody serializes the seed's instance as an edge list.
func testBody(t *testing.T, seed int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := graphio.WriteHypergraph(&buf, testHypergraph(t, seed), graphio.FormatEdgeList); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// awaitCtx is the per-assertion watchdog.
func awaitCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	t.Cleanup(cancel)
	return ctx
}

var oracleSeq atomic.Int64

// registerOracle installs o under a unique registry name for this test
// run (the registry is global and permanent).
func registerOracle(t *testing.T, o maxis.Oracle) string {
	t.Helper()
	name := fmt.Sprintf("jobs-test-%d", oracleSeq.Add(1))
	maxis.MustRegister(name, func(int64) maxis.Oracle { return o })
	return name
}

// gateOracle signals each Solve entry and parks until released (or its
// engine context dies), then delegates to a real oracle — so tests hold a
// worker mid-job deterministically and still let the job complete.
type gateOracle struct {
	mu      sync.Mutex
	eng     engine.Options
	started chan struct{}
	release chan struct{}
	inner   maxis.Oracle
}

func newGateOracle(t *testing.T) *gateOracle {
	t.Helper()
	inner, err := maxis.Lookup("greedy-mindeg", 1)
	if err != nil {
		t.Fatal(err)
	}
	return &gateOracle{
		started: make(chan struct{}, 64),
		release: make(chan struct{}),
		inner:   inner,
	}
}

func (o *gateOracle) Name() string { return "jobs-test-gate" }

func (o *gateOracle) SetEngine(e engine.Options) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.eng = e
}

func (o *gateOracle) Solve(g *graph.Graph) ([]int32, error) {
	o.mu.Lock()
	ctx := o.eng.Context()
	o.mu.Unlock()
	select {
	case o.started <- struct{}{}:
	default:
	}
	select {
	case <-o.release:
		return o.inner.Solve(g)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// flakyOracle fails its first n Solve calls with a transient error, then
// delegates.
type flakyOracle struct {
	fails atomic.Int32
	inner maxis.Oracle
}

func newFlakyOracle(t *testing.T, fails int32) *flakyOracle {
	t.Helper()
	inner, err := maxis.Lookup("greedy-mindeg", 1)
	if err != nil {
		t.Fatal(err)
	}
	o := &flakyOracle{inner: inner}
	o.fails.Store(fails)
	return o
}

func (o *flakyOracle) Name() string { return "jobs-test-flaky" }

func (o *flakyOracle) Solve(g *graph.Graph) ([]int32, error) {
	if o.fails.Add(-1) >= 0 {
		return nil, fmt.Errorf("%w: synthetic backend fault", ErrTransient)
	}
	return o.inner.Solve(g)
}

func newManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func TestJobLifecycleDone(t *testing.T) {
	dir := t.TempDir()
	m := newManager(t, Config{Dir: dir, Workers: 2, QueueCap: 8})
	body := testBody(t, 1)
	info, accepted, err := m.Submit(Request{Body: body, Params: Params{K: 2}, Priority: PriorityNormal})
	if err != nil || !accepted {
		t.Fatalf("Submit = %+v, %v, %v", info, accepted, err)
	}
	if info.State != StateQueued || len(info.ID) != 64 {
		t.Fatalf("submitted info = %+v", info)
	}

	final, err := m.Await(awaitCtx(t), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Error != "" {
		t.Fatalf("final = %+v", final)
	}
	if final.N != 24 || final.M != 10 || final.TotalColors == 0 || final.PhaseCount == 0 {
		t.Errorf("result summary = %+v", final)
	}
	if final.StartedAt.IsZero() || final.FinishedAt.Before(final.StartedAt) {
		t.Errorf("timestamps out of order: %+v", final)
	}

	res, err := m.Result(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.ConflictFreeMulti(testHypergraph(t, 1), res.Multicoloring); err != nil {
		t.Errorf("job result not conflict-free: %v", err)
	}
	// The persisted document exists and round-trips through ReadResult.
	f, err := os.Open(m.ResultPath(info.ID))
	if err != nil {
		t.Fatalf("persisted result missing: %v", err)
	}
	defer f.Close()
	back, err := graphio.ReadResult(f)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalColors != res.TotalColors || len(back.Phases) != len(res.Phases) {
		t.Errorf("persisted doc %+v differs from result %+v", back, res)
	}

	st := m.Stats()
	if st.Submitted != 1 || st.Completed != 1 || st.Failed != 0 || st.Running != 0 || st.QueueDepth != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSubmitDedupe(t *testing.T) {
	m := newManager(t, Config{Workers: 1, QueueCap: 8})
	body := testBody(t, 2)
	req := Request{Body: body, Params: Params{K: 2, Oracle: "greedy-mindeg"}, Priority: PriorityNormal}
	first, accepted, err := m.Submit(req)
	if err != nil || !accepted {
		t.Fatalf("first submit: %v %v", accepted, err)
	}
	if _, err := m.Await(awaitCtx(t), first.ID); err != nil {
		t.Fatal(err)
	}
	second, accepted, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if accepted || second.ID != first.ID || second.State != StateDone {
		t.Errorf("resubmission = %+v accepted=%v, want dedupe onto %s", second, accepted, first.ID)
	}
	// Different parameters are a different job.
	third, accepted, err := m.Submit(Request{Body: body, Params: Params{K: 3, Oracle: "greedy-mindeg"}})
	if err != nil || !accepted || third.ID == first.ID {
		t.Errorf("changed params: id %s accepted=%v err=%v", third.ID, accepted, err)
	}
	if st := m.Stats(); st.Deduped != 1 || st.Submitted != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSubmitValidation(t *testing.T) {
	m := newManager(t, Config{Workers: 1})
	if _, _, err := m.Submit(Request{}); !errors.Is(err, graphio.ErrFormat) {
		t.Errorf("empty body error = %v, want ErrFormat", err)
	}
	if _, _, err := m.Submit(Request{Body: []byte("x"), Format: "xml"}); !errors.Is(err, graphio.ErrUnknownFormat) {
		t.Errorf("bad format error = %v, want ErrUnknownFormat", err)
	}
	if _, _, err := m.Submit(Request{Body: []byte("x"), Priority: Priority(9)}); err == nil {
		t.Error("out-of-range priority accepted")
	}
}

func TestQueueFullSurfacesAtSubmit(t *testing.T) {
	gate := newGateOracle(t)
	name := registerOracle(t, gate)
	m := newManager(t, Config{Workers: 1, QueueCap: 1})
	// Occupy the single worker.
	if _, _, err := m.Submit(Request{Body: testBody(t, 3), Params: Params{K: 2, Oracle: name}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-gate.started:
	case <-time.After(10 * time.Second):
		t.Fatal("gate job never started")
	}
	// Fill the queue, then overflow it.
	if _, _, err := m.Submit(Request{Body: testBody(t, 4), Params: Params{K: 2}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Submit(Request{Body: testBody(t, 5), Params: Params{K: 2}}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow error = %v, want ErrQueueFull", err)
	}
	close(gate.release)
}

func TestCancelQueuedJob(t *testing.T) {
	gate := newGateOracle(t)
	name := registerOracle(t, gate)
	m := newManager(t, Config{Workers: 1, QueueCap: 8})
	if _, _, err := m.Submit(Request{Body: testBody(t, 6), Params: Params{K: 2, Oracle: name}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-gate.started:
	case <-time.After(10 * time.Second):
		t.Fatal("gate job never started")
	}
	queued, _, err := m.Submit(Request{Body: testBody(t, 7), Params: Params{K: 2}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled || got.FinishedAt.IsZero() {
		t.Fatalf("cancelled queued job = %+v", got)
	}
	// Cancel is idempotent on terminal jobs.
	again, err := m.Cancel(queued.ID)
	if err != nil || again.State != StateCancelled {
		t.Errorf("second cancel = %+v, %v", again, err)
	}
	close(gate.release)
	if st := m.Stats(); st.Cancelled != 1 {
		t.Errorf("stats = %+v", st)
	}
	if _, err := m.Cancel("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel of unknown id = %v, want ErrNotFound", err)
	}
}

func TestCancelRunningJob(t *testing.T) {
	gate := newGateOracle(t)
	name := registerOracle(t, gate)
	m := newManager(t, Config{Workers: 1, QueueCap: 8})
	info, _, err := m.Submit(Request{Body: testBody(t, 8), Params: Params{K: 2, Oracle: name}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-gate.started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started")
	}
	if got, err := m.Cancel(info.ID); err != nil || got.State != StateRunning {
		t.Fatalf("cancel of running job = %+v, %v (transition is asynchronous)", got, err)
	}
	final, err := m.Await(awaitCtx(t), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCancelled || final.Error == "" {
		t.Fatalf("final = %+v, want cancelled with an error message", final)
	}
}

func TestDeadlineFailsJob(t *testing.T) {
	gate := newGateOracle(t) // never released: the deadline must fire
	name := registerOracle(t, gate)
	m := newManager(t, Config{Workers: 1, QueueCap: 8})
	info, _, err := m.Submit(Request{
		Body:     testBody(t, 9),
		Params:   Params{K: 2, Oracle: name},
		Deadline: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := m.Await(awaitCtx(t), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateFailed {
		t.Fatalf("deadline-expired job = %+v, want failed (cancelled is reserved for explicit Cancel)", final)
	}
	if !strings.Contains(final.Error, "cancel") && !strings.Contains(final.Error, "deadline") {
		t.Errorf("error %q does not mention the deadline", final.Error)
	}
}

func TestRetryOnTransient(t *testing.T) {
	flaky := newFlakyOracle(t, 2)
	name := registerOracle(t, flaky)
	m := newManager(t, Config{Workers: 1, QueueCap: 8})
	info, _, err := m.Submit(Request{
		Body:       testBody(t, 10),
		Params:     Params{K: 2, Oracle: name},
		MaxRetries: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := m.Await(awaitCtx(t), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("final = %+v, want done after transient retries", final)
	}
	if final.Retries != 2 {
		t.Errorf("retries = %d, want 2", final.Retries)
	}
	if st := m.Stats(); st.Retries != 2 || st.Completed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNoRetryWithoutBudget(t *testing.T) {
	flaky := newFlakyOracle(t, 1)
	name := registerOracle(t, flaky)
	m := newManager(t, Config{Workers: 1, QueueCap: 8})
	info, _, err := m.Submit(Request{Body: testBody(t, 11), Params: Params{K: 2, Oracle: name}})
	if err != nil {
		t.Fatal(err)
	}
	final, err := m.Await(awaitCtx(t), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateFailed || final.Retries != 0 {
		t.Fatalf("final = %+v, want failed with no retries", final)
	}
	if !errors.Is(ErrTransient, ErrTransient) || !strings.Contains(final.Error, "transient") {
		t.Errorf("error %q lost the transient cause", final.Error)
	}
}

// TestResubmitAfterFailureReruns pins the retry-by-resubmission
// contract: done jobs dedupe forever, but a failed (or cancelled) job is
// re-enqueued by an identical Submit — otherwise one transient outage
// would make that instance permanently unrunnable against the store.
func TestResubmitAfterFailureReruns(t *testing.T) {
	flaky := newFlakyOracle(t, 1) // first run fails, any later run succeeds
	name := registerOracle(t, flaky)
	m := newManager(t, Config{Workers: 1, QueueCap: 8})
	req := Request{Body: testBody(t, 50), Params: Params{K: 2, Oracle: name}}
	first, _, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if final, err := m.Await(awaitCtx(t), first.ID); err != nil || final.State != StateFailed {
		t.Fatalf("first run = %+v, %v, want failed", final, err)
	}
	again, accepted, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if !accepted || again.ID != first.ID || again.State != StateQueued {
		t.Fatalf("resubmission = %+v accepted=%v, want the same id re-enqueued", again, accepted)
	}
	final, err := m.Await(awaitCtx(t), again.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Error != "" || final.Retries != 0 {
		t.Fatalf("re-run = %+v, want a clean done", final)
	}
	if st := m.Stats(); st.Submitted != 2 || st.Deduped != 0 || st.Failed != 1 || st.Completed != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Now that it is done, further identical submissions dedupe.
	if _, accepted, _ := m.Submit(req); accepted {
		t.Error("resubmission of a done job re-ran it")
	}
}

func TestNonTransientNeverRetries(t *testing.T) {
	m := newManager(t, Config{Workers: 1, QueueCap: 8})
	info, _, err := m.Submit(Request{
		Body:       testBody(t, 12),
		Params:     Params{K: 2, Oracle: "nonesuch"},
		MaxRetries: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := m.Await(awaitCtx(t), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateFailed || final.Retries != 0 {
		t.Fatalf("final = %+v, want failed without retries", final)
	}
}

func TestWatchDeliversLifecycle(t *testing.T) {
	gate := newGateOracle(t)
	name := registerOracle(t, gate)
	m := newManager(t, Config{Workers: 1, QueueCap: 8})
	info, _, err := m.Submit(Request{Body: testBody(t, 13), Params: Params{K: 2, Oracle: name}})
	if err != nil {
		t.Fatal(err)
	}
	ch, stop, err := m.Watch(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	close(gate.release)

	var states []State
	deadline := time.After(15 * time.Second)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				if states[len(states)-1] != StateDone {
					t.Fatalf("event states %v do not end in done", states)
				}
				// The first event reports the state at subscription time;
				// every following transition arrives in order.
				for i := 1; i < len(states); i++ {
					if states[i-1] == StateDone {
						t.Fatalf("events after terminal: %v", states)
					}
				}
				if _, _, err := m.Watch(info.ID); err != nil {
					t.Fatalf("watch of terminal job: %v", err)
				}
				return
			}
			if ev.ID != info.ID {
				t.Fatalf("event for wrong job: %+v", ev)
			}
			states = append(states, ev.State)
		case <-deadline:
			t.Fatalf("watch never terminated; states so far %v", states)
		}
	}
}

func TestWatchOfTerminalJobClosesImmediately(t *testing.T) {
	m := newManager(t, Config{Workers: 1, QueueCap: 8})
	info, _, err := m.Submit(Request{Body: testBody(t, 14), Params: Params{K: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Await(awaitCtx(t), info.ID); err != nil {
		t.Fatal(err)
	}
	ch, stop, err := m.Watch(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	ev, ok := <-ch
	if !ok || ev.State != StateDone {
		t.Fatalf("first event = %+v/%v, want the terminal state", ev, ok)
	}
	if _, ok := <-ch; ok {
		t.Fatal("channel stayed open after the terminal event")
	}
}

func TestPriorityOrdering(t *testing.T) {
	gate := newGateOracle(t)
	name := registerOracle(t, gate)
	m := newManager(t, Config{Workers: 1, QueueCap: 8})
	// Hold the single worker so the next submissions queue up.
	blocker, _, err := m.Submit(Request{Body: testBody(t, 15), Params: Params{K: 2, Oracle: name}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-gate.started:
	case <-time.After(10 * time.Second):
		t.Fatal("blocker never started")
	}
	low, _, err := m.Submit(Request{Body: testBody(t, 16), Params: Params{K: 2}, Priority: PriorityLow})
	if err != nil {
		t.Fatal(err)
	}
	high, _, err := m.Submit(Request{Body: testBody(t, 17), Params: Params{K: 2}, Priority: PriorityHigh})
	if err != nil {
		t.Fatal(err)
	}
	close(gate.release)
	for _, id := range []string{blocker.ID, low.ID, high.ID} {
		if final, err := m.Await(awaitCtx(t), id); err != nil || final.State != StateDone {
			t.Fatalf("job %s: %+v, %v", id, final, err)
		}
	}
	lowInfo, _ := m.Get(low.ID)
	highInfo, _ := m.Get(high.ID)
	if !highInfo.StartedAt.Before(lowInfo.StartedAt) {
		t.Errorf("high-priority job started %v, after low-priority %v",
			highInfo.StartedAt, lowInfo.StartedAt)
	}
}

func TestListFilters(t *testing.T) {
	m := newManager(t, Config{Workers: 2, QueueCap: 16})
	var ids []string
	for i := int64(20); i < 24; i++ {
		label := "even"
		if i%2 == 1 {
			label = "odd"
		}
		info, _, err := m.Submit(Request{Body: testBody(t, i), Params: Params{K: 2}, Label: label})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	bad, _, err := m.Submit(Request{Body: testBody(t, 24), Params: Params{K: 2, Oracle: "nonesuch"}, Label: "bad"})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range append(ids, bad.ID) {
		if _, err := m.Await(awaitCtx(t), id); err != nil {
			t.Fatal(err)
		}
	}
	if all := m.List(Filter{}); len(all) != 5 {
		t.Fatalf("List() = %d jobs, want 5", len(all))
	}
	if done := m.List(Filter{State: StateDone}); len(done) != 4 {
		t.Errorf("done filter = %d, want 4", len(done))
	}
	if failed := m.List(Filter{State: StateFailed}); len(failed) != 1 || failed[0].ID != bad.ID {
		t.Errorf("failed filter = %+v", failed)
	}
	if odd := m.List(Filter{Label: "odd"}); len(odd) != 2 {
		t.Errorf("label filter = %d, want 2", len(odd))
	}
	if limited := m.List(Filter{Limit: 2}); len(limited) != 2 || limited[0].ID != ids[0] {
		t.Errorf("limit filter = %+v, want the 2 oldest", limited)
	}
}

// TestRecoveryAcrossRestart is the acceptance criterion: a completed job
// survives a manager restart over the same store directory — the rescan
// restores it, its result document reads back, and resubmitting the same
// body dedupes onto the recovered job instead of re-running it.
func TestRecoveryAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	body := testBody(t, 30)
	req := Request{Body: body, Params: Params{K: 2, Oracle: "greedy-mindeg"}, Priority: PriorityHigh}

	first, err := New(Config{Dir: dir, Workers: 1, QueueCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	info, _, err := first.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Await(awaitCtx(t), info.ID); err != nil {
		t.Fatal(err)
	}
	first.Close()

	second, err := New(Config{Dir: dir, Workers: 1, QueueCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	got, err := second.Get(info.ID)
	if err != nil {
		t.Fatalf("recovered job not found: %v", err)
	}
	if got.State != StateDone || !got.Recovered || got.Priority != PriorityHigh ||
		got.Params != req.Params || got.N != 24 {
		t.Fatalf("recovered job = %+v", got)
	}
	res, err := second.Result(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.ConflictFreeMulti(testHypergraph(t, 30), res.Multicoloring); err != nil {
		t.Errorf("recovered result not conflict-free: %v", err)
	}
	resub, accepted, err := second.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if accepted || resub.ID != info.ID {
		t.Errorf("resubmission after restart re-ran the job: %+v accepted=%v", resub, accepted)
	}
	if st := second.Stats(); st.Recovered != 1 || st.Deduped != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCloseResolvesQueuedAndRunning(t *testing.T) {
	gate := newGateOracle(t) // never released: Close must cancel it
	name := registerOracle(t, gate)
	m, err := New(Config{Workers: 1, QueueCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	running, _, err := m.Submit(Request{Body: testBody(t, 31), Params: Params{K: 2, Oracle: name}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-gate.started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started")
	}
	queued, _, err := m.Submit(Request{Body: testBody(t, 32), Params: Params{K: 2}})
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if got, _ := m.Get(queued.ID); got.State != StateCancelled {
		t.Errorf("queued job after Close = %+v, want cancelled", got)
	}
	if got, _ := m.Get(running.ID); !got.State.Terminal() {
		t.Errorf("running job after Close = %+v, want terminal", got)
	}
	if _, _, err := m.Submit(Request{Body: testBody(t, 33)}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after Close = %v, want ErrClosed", err)
	}
	m.Close() // idempotent
}

// TestConcurrentSubmitters hammers one manager from many goroutines —
// the race detector (CI runs this package under -race) is the real
// assertion.
func TestConcurrentSubmitters(t *testing.T) {
	m := newManager(t, Config{Workers: 4, QueueCap: 256, Solver: solver.New(solver.WithCache(16))})
	const callers = 8
	var wg sync.WaitGroup
	errs := make(chan error, callers*4)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := int64(0); i < 3; i++ {
				info, _, err := m.Submit(Request{
					Body:     testBody(t, 40+i), // deliberately colliding ids across goroutines
					Params:   Params{K: 2},
					Priority: Priority(int(i) % numPriorities),
				})
				if err != nil {
					errs <- err
					return
				}
				if _, err := m.Await(awaitCtx(t), info.ID); err != nil {
					errs <- err
					return
				}
				if _, err := m.Get(info.ID); err != nil {
					errs <- err
				}
				m.List(Filter{State: StateDone})
				m.Stats()
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := m.Stats()
	if st.Submitted+st.Deduped != callers*3 {
		t.Errorf("submitted %d + deduped %d, want %d total", st.Submitted, st.Deduped, callers*3)
	}
	if st.Submitted != 3 || st.Completed != 3 {
		t.Errorf("stats = %+v, want 3 unique jobs completed", st)
	}
}

package jobs

// adopt_test.go covers the cluster-mode store semantics: Drain finishing
// in-flight work while refusing new submissions, and the store as a
// shared substrate — a manager pointed at a directory another manager
// wrote adopts its terminal results (by full Rescan or by the targeted
// Get/Result fallback) instead of re-running them.

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDrainWaitsForRunningJob holds a job mid-solve with the gate
// oracle, starts Drain, checks Drain refuses new submissions while
// waiting, releases the oracle, and requires Drain to return with the
// job done and persisted.
func TestDrainWaitsForRunningJob(t *testing.T) {
	dir := t.TempDir()
	oracle := newGateOracle(t)
	name := registerOracle(t, oracle)
	m := newManager(t, Config{Dir: dir, Workers: 1})

	info, accepted, err := m.Submit(Request{Body: testBody(t, 1), Params: Params{Oracle: name}})
	if err != nil || !accepted {
		t.Fatalf("Submit: accepted=%t err=%v", accepted, err)
	}
	select {
	case <-oracle.started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started solving")
	}

	ctx := awaitCtx(t)
	drained := make(chan error, 1)
	go func() { drained <- m.Drain(ctx) }()

	// Drain must mark the manager before it returns; poll for the flag,
	// then check admissions are refused while the job is still running.
	deadline := time.Now().Add(5 * time.Second)
	for !m.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("Drain never set the draining flag")
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, err := m.Submit(Request{Body: testBody(t, 2), Params: Params{Oracle: name}}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit during drain: err=%v, want ErrDraining", err)
	}
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v while a job was still running", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(oracle.release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	final, err := m.Get(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("job after drain: state %s (error %q), want done", final.State, final.Error)
	}
	if _, err := m.Result(info.ID); err != nil {
		t.Fatalf("Result after drain: %v", err)
	}
	if !m.Stats().Draining {
		t.Fatal("Stats().Draining = false after Drain")
	}
}

// TestDrainContextExpiry bounds Drain with an already-short context
// while a job is parked and checks the context error surfaces without
// the manager un-draining.
func TestDrainContextExpiry(t *testing.T) {
	oracle := newGateOracle(t)
	name := registerOracle(t, oracle)
	m := newManager(t, Config{Workers: 1})
	if _, _, err := m.Submit(Request{Body: testBody(t, 1), Params: Params{Oracle: name}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-oracle.started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started solving")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := m.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with expired context: %v", err)
	}
	if !m.Draining() {
		t.Fatal("manager un-drained after a bounded Drain expired")
	}
	close(oracle.release)
}

// TestRescanAdoptsPeerResults runs jobs to completion under one manager
// and checks a second manager over the same directory serves them by id
// after Rescan — without re-running anything (its own counters stay at
// zero starts).
func TestRescanAdoptsPeerResults(t *testing.T) {
	dir := t.TempDir()
	writer := newManager(t, Config{Dir: dir, Workers: 2})
	ids := make([]string, 0, 3)
	for seed := int64(1); seed <= 3; seed++ {
		info, _, err := writer.Submit(Request{Body: testBody(t, seed)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	for _, id := range ids {
		final, err := writer.Await(awaitCtx(t), id)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != StateDone {
			t.Fatalf("writer job %s: state %s", id, final.State)
		}
	}

	// The reader joins over the same directory: construction recovery
	// picks up the three finished jobs, and a fourth job the writer
	// finishes AFTER the reader exists exercises the post-construction
	// adoption paths (Get fallback, then Rescan).
	reader := newManager(t, Config{Dir: dir, Workers: 2})
	lateInfo, _, err := writer.Submit(Request{Body: testBody(t, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if final, err := writer.Await(awaitCtx(t), lateInfo.ID); err != nil || final.State != StateDone {
		t.Fatalf("late job: %v / %v", final, err)
	}
	if _, err := reader.Get(lateInfo.ID); err != nil {
		// The Get fallback may already adopt it; only a hard failure on
		// both paths is a bug. Force the explicit Rescan path too.
		t.Fatalf("reader Get(late) before rescan: %v", err)
	}

	adopted, err := reader.Rescan()
	if err != nil {
		t.Fatal(err)
	}
	if adopted != 0 {
		// Everything was already visible (construction recovery + the Get
		// fallback); Rescan must dedupe on the sha256 id, not duplicate.
		t.Fatalf("Rescan adopted %d jobs that were already registered", adopted)
	}
	for _, id := range append(ids, lateInfo.ID) {
		info, err := reader.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State != StateDone || !info.Recovered {
			t.Fatalf("reader job %s: state=%s recovered=%t", id, info.State, info.Recovered)
		}
		res, err := reader.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalColors < 1 {
			t.Fatalf("adopted result for %s has no colors", id)
		}
	}
	if st := reader.Stats(); st.Started != 0 {
		t.Fatalf("reader ran %d jobs; adoption must not re-run", st.Started)
	}
	// Resubmitting an adopted done job dedupes onto it.
	info, accepted, err := reader.Submit(Request{Body: testBody(t, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if accepted || info.State != StateDone {
		t.Fatalf("resubmission of adopted job: accepted=%t state=%s", accepted, info.State)
	}
}

// TestRescanAdoptsConcurrently hammers Rescan and Get from several
// goroutines while a peer manager is still writing — the adoption paths
// must be race-clean and never double-register an id.
func TestRescanAdoptsConcurrently(t *testing.T) {
	dir := t.TempDir()
	writer := newManager(t, Config{Dir: dir, Workers: 2})
	reader := newManager(t, Config{Dir: dir, Workers: 2})

	ids := make([]string, 0, 6)
	for seed := int64(10); seed < 16; seed++ {
		info, _, err := writer.Submit(Request{Body: testBody(t, seed)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 20; n++ {
				if _, err := reader.Rescan(); err != nil {
					t.Error(err)
					return
				}
				for _, id := range ids {
					_, _ = reader.Get(id) // miss is fine while the writer runs
				}
			}
		}()
	}
	for _, id := range ids {
		if _, err := writer.Await(awaitCtx(t), id); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if _, err := reader.Rescan(); err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, info := range reader.List(Filter{}) {
		seen[info.ID]++
	}
	for _, id := range ids {
		if seen[id] != 1 {
			t.Fatalf("job %s registered %d times after concurrent adoption", id, seen[id])
		}
	}
}

// TestGetFallbackIgnoresGarbageIDs checks the store fallback validates
// ids before touching the filesystem.
func TestGetFallbackIgnoresGarbageIDs(t *testing.T) {
	m := newManager(t, Config{Dir: t.TempDir()})
	for _, id := range []string{"", "nope", strings.Repeat("z", 64), "../../etc/passwd"} {
		if _, err := m.Get(id); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get(%q): %v, want ErrNotFound", id, err)
		}
	}
	// A path-shaped id must never escape the store directory.
	if p := m.ResultPath(strings.Repeat("a", 64)); !strings.HasPrefix(p, filepath.Clean(m.store.dir)) {
		t.Fatalf("ResultPath escaped the store: %s", p)
	}
}

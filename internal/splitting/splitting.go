// Package splitting implements (weak) hypergraph splitting — listed by
// the paper, alongside network decompositions, among the first known
// P-SLOCAL-complete problems [GKM17]. A (weak) splitting 2-colours the
// vertices so that no hyperedge is monochromatic (each edge "sees" both
// colours); for edges of size >= 2 with bounded edge-degree the
// Lovász-local-lemma regime applies and the Moser–Tardos resampling
// algorithm finds a splitting in expected linear time.
package splitting

import (
	"errors"
	"fmt"
	"math/rand"

	"pslocal/internal/hypergraph"
)

// Side labels of a splitting. Colour values are 1 and 2 (0 is unused, per
// the repository-wide "0 = unset" convention).
const (
	// Left is side 1.
	Left int32 = 1
	// Right is side 2.
	Right int32 = 2
)

// Errors returned by the splitter and verifier.
var (
	// ErrSingleton reports an edge of size 1, which can never see two
	// colours.
	ErrSingleton = errors.New("splitting: singleton edge cannot be split")
	// ErrMonochromatic reports an edge seeing only one colour.
	ErrMonochromatic = errors.New("splitting: monochromatic edge")
	// ErrBudget reports that resampling did not converge within the
	// budget.
	ErrBudget = errors.New("splitting: resampling budget exhausted")
)

// Verify checks that colours is a valid weak splitting of h: every vertex
// carries side 1 or 2 and no edge is monochromatic.
func Verify(h *hypergraph.Hypergraph, colours []int32) error {
	if len(colours) != h.N() {
		return fmt.Errorf("splitting: %d colours for %d vertices", len(colours), h.N())
	}
	for v, c := range colours {
		if c != Left && c != Right {
			return fmt.Errorf("splitting: vertex %d has side %d, want %d or %d", v, c, Left, Right)
		}
	}
	for j := 0; j < h.M(); j++ {
		if h.EdgeSize(j) < 2 {
			return fmt.Errorf("%w: edge %d", ErrSingleton, j)
		}
		first := int32(0)
		mono := true
		h.ForEachEdgeVertex(j, func(v int32) bool {
			if first == 0 {
				first = colours[v]
				return true
			}
			if colours[v] != first {
				mono = false
				return false
			}
			return true
		})
		if mono {
			return fmt.Errorf("%w: edge %d (%v)", ErrMonochromatic, j, h.Edge(j))
		}
	}
	return nil
}

// MoserTardos finds a weak splitting by resampling: start from a uniform
// 2-colouring and, while some edge is monochromatic, re-randomise that
// edge's vertices. In the local-lemma regime (e·2^{1-s}·(d+1) < 1 for
// edge size s and edge-degree d) the expected number of resamplings is
// linear; maxResamples guards the pathological regimes (0 selects
// 64·(m+1) + 256).
func MoserTardos(h *hypergraph.Hypergraph, rng *rand.Rand, maxResamples int) ([]int32, error) {
	for j := 0; j < h.M(); j++ {
		if h.EdgeSize(j) < 2 {
			return nil, fmt.Errorf("%w: edge %d", ErrSingleton, j)
		}
	}
	if maxResamples <= 0 {
		maxResamples = 64*(h.M()+1) + 256
	}
	colours := make([]int32, h.N())
	for v := range colours {
		colours[v] = Left + int32(rng.Intn(2))
	}
	// Queue of possibly-monochromatic edges; start with all.
	queue := make([]int32, h.M())
	inQueue := make([]bool, h.M())
	for j := range queue {
		queue[j] = int32(j)
		inQueue[j] = true
	}
	resamples := 0
	// Pop via head index instead of queue = queue[1:]: re-slicing from the
	// front pins the whole backing array for the run's lifetime while
	// appends keep growing a new one, so long resampling runs held O(total
	// enqueues) memory. Compacting once the dead prefix dominates keeps the
	// buffer at O(live entries).
	head := 0
	for head < len(queue) {
		if head > 256 && head > len(queue)/2 {
			queue = queue[:copy(queue, queue[head:])]
			head = 0
		}
		j := queue[head]
		head++
		inQueue[j] = false
		if !monochromatic(h, int(j), colours) {
			continue
		}
		if resamples++; resamples > maxResamples {
			return nil, fmt.Errorf("%w: %d resamples", ErrBudget, maxResamples)
		}
		// Resample the edge and requeue every edge sharing a vertex.
		h.ForEachEdgeVertex(int(j), func(v int32) bool {
			colours[v] = Left + int32(rng.Intn(2))
			h.ForEachIncidentEdge(v, func(g int32) bool {
				if !inQueue[g] {
					inQueue[g] = true
					queue = append(queue, g)
				}
				return true
			})
			return true
		})
	}
	return colours, nil
}

// Greedy finds a weak splitting deterministically when one is easy:
// process edges by increasing size and fix the colours of the first two
// undecided vertices of any edge whose decided vertices are
// single-coloured. It can fail (returns ErrMonochromatic) where the
// randomized splitter succeeds; it exists as the deterministic baseline.
func Greedy(h *hypergraph.Hypergraph) ([]int32, error) {
	for j := 0; j < h.M(); j++ {
		if h.EdgeSize(j) < 2 {
			return nil, fmt.Errorf("%w: edge %d", ErrSingleton, j)
		}
	}
	colours := make([]int32, h.N())
	// Edges in increasing size order: small edges are the tightest.
	order := make([]int, h.M())
	for j := range order {
		order[j] = j
	}
	for i := 1; i < len(order); i++ {
		for p := i; p > 0 && h.EdgeSize(order[p-1]) > h.EdgeSize(order[p]); p-- {
			order[p-1], order[p] = order[p], order[p-1]
		}
	}
	for _, j := range order {
		var seen [3]bool // seen[Left], seen[Right]
		var undecided []int32
		h.ForEachEdgeVertex(j, func(v int32) bool {
			if colours[v] == 0 {
				undecided = append(undecided, v)
			} else {
				seen[colours[v]] = true
			}
			return true
		})
		switch {
		case seen[Left] && seen[Right]:
			// Already split.
		case len(undecided) == 0:
			return nil, fmt.Errorf("%w: edge %d", ErrMonochromatic, j)
		case seen[Left]:
			colours[undecided[0]] = Right
		case seen[Right]:
			colours[undecided[0]] = Left
		default: // nothing decided yet: fix two vertices apart
			colours[undecided[0]] = Left
			if len(undecided) > 1 {
				colours[undecided[1]] = Right
			} else {
				return nil, fmt.Errorf("%w: edge %d", ErrMonochromatic, j)
			}
		}
	}
	// Undecided vertices default to Left.
	for v := range colours {
		if colours[v] == 0 {
			colours[v] = Left
		}
	}
	if err := Verify(h, colours); err != nil {
		return nil, err
	}
	return colours, nil
}

func monochromatic(h *hypergraph.Hypergraph, j int, colours []int32) bool {
	first := int32(0)
	mono := true
	h.ForEachEdgeVertex(j, func(v int32) bool {
		if first == 0 {
			first = colours[v]
			return true
		}
		if colours[v] != first {
			mono = false
			return false
		}
		return true
	})
	return mono
}

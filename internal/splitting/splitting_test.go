package splitting

import (
	"errors"
	"math/rand"
	"testing"

	"pslocal/internal/hypergraph"
)

func TestMoserTardosSplitsRandomHypergraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 15; trial++ {
		n := 10 + rng.Intn(40)
		m := 5 + rng.Intn(40)
		r := 3 + rng.Intn(4) // edges of size >= 3: LLL regime for modest overlap
		h, err := hypergraph.Uniform(n, m, r, rng)
		if err != nil {
			t.Fatalf("Uniform error: %v", err)
		}
		colours, err := MoserTardos(h, rng, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := Verify(h, colours); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestMoserTardosRejectsSingletons(t *testing.T) {
	h := hypergraph.MustNew(2, [][]int32{{0}})
	rng := rand.New(rand.NewSource(2))
	if _, err := MoserTardos(h, rng, 0); !errors.Is(err, ErrSingleton) {
		t.Errorf("error = %v, want ErrSingleton", err)
	}
}

func TestMoserTardosPairEdges(t *testing.T) {
	// 2-uniform splitting = proper 2-colouring of the underlying graph;
	// an even cycle is 2-colourable, so resampling must converge.
	edges := [][]int32{}
	n := 8
	for v := 0; v < n; v++ {
		edges = append(edges, []int32{int32(v), int32((v + 1) % n)})
	}
	h := hypergraph.MustNew(n, edges)
	rng := rand.New(rand.NewSource(3))
	colours, err := MoserTardos(h, rng, 0)
	if err != nil {
		t.Fatalf("MoserTardos error: %v", err)
	}
	if err := Verify(h, colours); err != nil {
		t.Fatalf("Verify error: %v", err)
	}
}

// longResampler returns the star instance {0,i} for i in 1..n-1: every
// resample of an edge re-randomises the hub, re-queueing all n-1 edges,
// so the queue churns through far more pops than m — the regression
// regime for the head-index pop (the former queue = queue[1:] retained
// every popped slot for the run's lifetime).
func longResampler(n int) *hypergraph.Hypergraph {
	edges := make([][]int32, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, []int32{0, int32(v)})
	}
	return hypergraph.MustNew(n, edges)
}

func TestMoserTardosLongResamplingRun(t *testing.T) {
	h := longResampler(120)
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		colours, err := MoserTardos(h, rng, 200000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := Verify(h, colours); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func BenchmarkMoserTardosLongResampling(b *testing.B) {
	h := longResampler(120)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		if _, err := MoserTardos(h, rng, 200000); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMoserTardosBudget(t *testing.T) {
	// An odd cycle of pair-edges has no proper 2-colouring: resampling
	// can never converge and must hit the budget.
	edges := [][]int32{{0, 1}, {1, 2}, {0, 2}}
	h := hypergraph.MustNew(3, edges)
	rng := rand.New(rand.NewSource(4))
	if _, err := MoserTardos(h, rng, 50); !errors.Is(err, ErrBudget) {
		t.Errorf("error = %v, want ErrBudget", err)
	}
}

func TestVerify(t *testing.T) {
	h := hypergraph.MustNew(4, [][]int32{{0, 1}, {2, 3}})
	if err := Verify(h, []int32{Left, Right, Left, Right}); err != nil {
		t.Errorf("valid splitting rejected: %v", err)
	}
	if err := Verify(h, []int32{Left, Left, Left, Right}); !errors.Is(err, ErrMonochromatic) {
		t.Errorf("monochromatic accepted: %v", err)
	}
	if err := Verify(h, []int32{Left, Right, Left}); err == nil {
		t.Error("short colouring accepted")
	}
	if err := Verify(h, []int32{Left, Right, 0, Right}); err == nil {
		t.Error("unset side accepted")
	}
	single := hypergraph.MustNew(1, [][]int32{{0}})
	if err := Verify(single, []int32{Left}); !errors.Is(err, ErrSingleton) {
		t.Errorf("singleton accepted: %v", err)
	}
}

func TestGreedySplitsDisjointEdges(t *testing.T) {
	h := hypergraph.MustNew(6, [][]int32{{0, 1}, {2, 3}, {4, 5}})
	colours, err := Greedy(h)
	if err != nil {
		t.Fatalf("Greedy error: %v", err)
	}
	if err := Verify(h, colours); err != nil {
		t.Fatalf("Verify error: %v", err)
	}
}

func TestGreedyOnLargerRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ok := 0
	for trial := 0; trial < 10; trial++ {
		h, err := hypergraph.Uniform(30, 15, 4, rng)
		if err != nil {
			t.Fatalf("Uniform error: %v", err)
		}
		colours, err := Greedy(h)
		if err != nil {
			continue // the deterministic baseline may fail; that is documented
		}
		if verr := Verify(h, colours); verr != nil {
			t.Fatalf("trial %d: greedy returned an invalid splitting: %v", trial, verr)
		}
		ok++
	}
	if ok == 0 {
		t.Error("greedy failed on every instance; expected it to handle most sparse ones")
	}
}

func TestGreedyRejectsSingletons(t *testing.T) {
	h := hypergraph.MustNew(2, [][]int32{{0}, {0, 1}})
	if _, err := Greedy(h); !errors.Is(err, ErrSingleton) {
		t.Errorf("error = %v, want ErrSingleton", err)
	}
}

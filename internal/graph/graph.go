// Package graph provides the simple-undirected-graph substrate used by every
// other package in this repository: conflict graphs (paper Section 2), the
// LOCAL and SLOCAL model simulators (paper Section 1), and the maximum
// independent set solvers that instantiate the approximation oracle of
// Theorem 1.1.
//
// Graphs are immutable once built. Nodes are dense int32 identifiers
// 0..N()-1 and adjacency is stored in compressed sparse row (CSR) form with
// sorted neighbour lists, so HasEdge is O(log deg) and iteration is
// allocation free.
package graph

import (
	"errors"
	"fmt"
	"slices"
	"sort"

	"pslocal/internal/engine"
)

// Errors returned by Builder.Build and graph constructors.
var (
	// ErrNodeRange reports an endpoint outside 0..n-1.
	ErrNodeRange = errors.New("graph: node out of range")
	// ErrSelfLoop reports an edge {v,v}; simple graphs forbid loops.
	ErrSelfLoop = errors.New("graph: self loop")
	// ErrNegativeSize reports a negative node count.
	ErrNegativeSize = errors.New("graph: negative node count")
	// ErrDuplicateNode reports a repeated node in a node-list argument.
	ErrDuplicateNode = errors.New("graph: duplicate node")
)

// Graph is an immutable simple undirected graph.
//
// The zero value is the empty graph on zero nodes and is ready to use.
type Graph struct {
	offsets []int32 // len N()+1; adjacency of v is targets[offsets[v]:offsets[v+1]]
	targets []int32 // concatenated sorted neighbour lists, both directions
	weights []int64 // optional per-vertex weights; nil means all-unit (see weights.go)
}

// N returns the number of nodes.
func (g *Graph) N() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.targets) / 2 }

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// MaxDegree returns the maximum degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(int32(v)); d > max {
			max = d
		}
	}
	return max
}

// Neighbors returns a fresh copy of v's sorted neighbour list. The caller
// owns the returned slice. For allocation-free iteration use ForEachNeighbor.
func (g *Graph) Neighbors(v int32) []int32 {
	view := g.targets[g.offsets[v]:g.offsets[v+1]]
	out := make([]int32, len(view))
	copy(out, view)
	return out
}

// AppendNeighbors appends v's sorted neighbours to dst and returns the
// extended slice, avoiding an allocation when dst has capacity.
func (g *Graph) AppendNeighbors(dst []int32, v int32) []int32 {
	return append(dst, g.targets[g.offsets[v]:g.offsets[v+1]]...)
}

// ForEachNeighbor calls fn for every neighbour of v in ascending order.
// It stops early if fn returns false.
func (g *Graph) ForEachNeighbor(v int32, fn func(u int32) bool) {
	for _, u := range g.targets[g.offsets[v]:g.offsets[v+1]] {
		if !fn(u) {
			return
		}
	}
}

// HasEdge reports whether {u,v} is an edge. HasEdge(v,v) is always false.
func (g *Graph) HasEdge(u, v int32) bool {
	if u == v {
		return false
	}
	// Search the shorter list.
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	adj := g.targets[g.offsets[u]:g.offsets[u+1]]
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// ForEachEdge calls fn once per undirected edge with u < v, in ascending
// (u, v) order. It stops early if fn returns false.
func (g *Graph) ForEachEdge(fn func(u, v int32) bool) {
	for u := int32(0); int(u) < g.N(); u++ {
		for _, v := range g.targets[g.offsets[u]:g.offsets[u+1]] {
			if v <= u {
				continue
			}
			if !fn(u, v) {
				return
			}
		}
	}
}

// Edges returns all undirected edges as [2]int32{u, v} pairs with u < v.
func (g *Graph) Edges() [][2]int32 {
	out := make([][2]int32, 0, g.M())
	g.ForEachEdge(func(u, v int32) bool {
		out = append(out, [2]int32{u, v})
		return true
	})
	return out
}

// DegreeHistogram returns a slice h where h[d] counts nodes of degree d.
func (g *Graph) DegreeHistogram() []int {
	h := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.N(); v++ {
		h[g.Degree(int32(v))]++
	}
	return h
}

// Validate checks the structural invariants of the CSR representation:
// monotone offsets, sorted duplicate-free neighbour lists, no self loops,
// and symmetry. It returns nil for every graph produced by Builder.
func (g *Graph) Validate() error {
	n := g.N()
	if len(g.offsets) > 0 && g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offsets[0])
	}
	if g.weights != nil {
		if len(g.weights) != n {
			return fmt.Errorf("%w: %d weights for %d nodes", ErrWeightLength, len(g.weights), n)
		}
		for v, w := range g.weights {
			if w < 0 || w > MaxWeight {
				return fmt.Errorf("%w: weight %d of node %d", ErrBadWeight, w, v)
			}
		}
	}
	for v := 0; v < n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		if lo > hi {
			return fmt.Errorf("graph: offsets not monotone at node %d", v)
		}
		adj := g.targets[lo:hi]
		for i, u := range adj {
			if u < 0 || int(u) >= n {
				return fmt.Errorf("%w: neighbour %d of node %d", ErrNodeRange, u, v)
			}
			if int(u) == v {
				return fmt.Errorf("%w: node %d", ErrSelfLoop, v)
			}
			if i > 0 && adj[i-1] >= u {
				return fmt.Errorf("graph: adjacency of node %d not strictly sorted", v)
			}
			if !g.HasEdge(u, int32(v)) {
				return fmt.Errorf("graph: edge {%d,%d} not symmetric", v, u)
			}
		}
	}
	return nil
}

// String returns a short human-readable summary, e.g. "graph(n=5, m=4)".
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.N(), g.M())
}

// Equal reports whether a and b are the same graph: the same node count,
// identical adjacency, and identical vertex weights. Builder canonicalises
// the CSR (sorted, duplicate-free neighbour lists) and the weight vector
// (all-unit collapses to nil), so structural equality is exactly
// representation equality; the I/O round-trip tests rely on this.
func Equal(a, b *Graph) bool {
	if a.N() != b.N() {
		return false
	}
	if !slices.Equal(a.weights, b.weights) {
		return false
	}
	if a.N() == 0 {
		return true
	}
	return slices.Equal(a.offsets, b.offsets) && slices.Equal(a.targets, b.targets)
}

// Builder accumulates edges (and optional vertex weights, see weights.go)
// and produces an immutable Graph. Parallel edges are merged silently;
// self loops, out-of-range endpoints and bad weights surface as errors
// from Build. A Builder must be created with NewBuilder.
type Builder struct {
	n            int
	us           []int32
	vs           []int32
	errs         []error
	weights      []int64 // nil until SetWeight/SetWeights; all-unit normalised away at Build
	badWeightLen bool    // SetWeights saw a wrong-length vector; reported at Build
}

// NewBuilder returns a Builder for a graph on n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// EdgeCapacityHint grows the internal edge buffers so at least m further
// AddEdge calls proceed without reallocation. Generators that know their
// edge volume up front (conflict-graph construction knows its clique sizes
// exactly) use it to keep the emission loop allocation-lean.
func (b *Builder) EdgeCapacityHint(m int) {
	if m <= 0 {
		return
	}
	b.us = slices.Grow(b.us, m)
	b.vs = slices.Grow(b.vs, m)
}

// AddEdge records the undirected edge {u,v}. Errors are deferred to Build so
// generators can add edges without per-call error handling.
func (b *Builder) AddEdge(u, v int32) {
	switch {
	case b.n < 0:
		// Build reports ErrNegativeSize; nothing to record.
	case u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n:
		b.errs = append(b.errs, fmt.Errorf("%w: edge {%d,%d} with n=%d", ErrNodeRange, u, v, b.n))
	case u == v:
		b.errs = append(b.errs, fmt.Errorf("%w: node %d", ErrSelfLoop, u))
	default:
		b.us = append(b.us, u)
		b.vs = append(b.vs, v)
	}
}

// Build assembles the graph through the two-pass CSR assembler (count
// degrees, prefix-sum, scatter, per-node sort+dedupe — see DESIGN.md,
// "Execution engine"). After Build the builder can be reused only by
// discarding it; Build does not reset internal state.
func (b *Builder) Build() (*Graph, error) {
	return assembleCSR(b.n, []*Builder{b}, engine.Options{Workers: 1})
}

// MustBuild is Build for statically correct construction sites (generators,
// tests); it panics on error, which only a programming bug can trigger there.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges builds a graph on n nodes from an explicit edge list.
func FromEdges(n int, edges [][2]int32) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// Complement returns the complement graph: {u,v} is an edge of the result
// iff u != v and {u,v} is not an edge of g. Vertex weights carry over
// unchanged. Quadratic in n; intended for small graphs (tests and
// exact-solver cross-checks).
func Complement(g *Graph) *Graph {
	n := g.N()
	b := NewBuilder(n)
	for u := int32(0); int(u) < n; u++ {
		for v := u + 1; int(v) < n; v++ {
			if !g.HasEdge(u, v) {
				b.AddEdge(u, v)
			}
		}
	}
	b.SetWeights(g.weights)
	return b.MustBuild()
}

// Union returns the disjoint union of a and b; nodes of b are shifted by
// a.N(). When either side is weighted the result carries the concatenated
// weight vectors (unit weights filling the unweighted side).
func Union(a, b *Graph) *Graph {
	shift := int32(a.N())
	bl := NewBuilder(a.N() + b.N())
	a.ForEachEdge(func(u, v int32) bool { bl.AddEdge(u, v); return true })
	b.ForEachEdge(func(u, v int32) bool { bl.AddEdge(u+shift, v+shift); return true })
	if a.Weighted() || b.Weighted() {
		ws := a.AppendWeights(make([]int64, 0, a.N()+b.N()))
		bl.SetWeights(b.AppendWeights(ws))
	}
	return bl.MustBuild()
}

package graph

// gen.go provides the deterministic-seeded instance generators used by the
// experiment harness (DESIGN.md Section 4). Every random generator takes an
// explicit *rand.Rand so experiments are reproducible.

import (
	"math/rand"
)

// Empty returns the edgeless graph on n nodes.
func Empty(n int) *Graph { return NewBuilder(n).MustBuild() }

// Complete returns K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(int32(u), int32(v))
		}
	}
	return b.MustBuild()
}

// Path returns the path 0-1-...-(n-1).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(int32(v-1), int32(v))
	}
	return b.MustBuild()
}

// Cycle returns the cycle C_n for n >= 3; for n < 3 it returns a path.
func Cycle(n int) *Graph {
	if n < 3 {
		return Path(n)
	}
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(int32(v), int32((v+1)%n))
	}
	return b.MustBuild()
}

// Star returns the star K_{1,n-1} with centre 0.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, int32(v))
	}
	return b.MustBuild()
}

// Grid returns the rows x cols grid graph; node (r,c) has id r*cols+c.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.MustBuild()
}

// CompleteBipartite returns K_{a,b}; the left side is 0..a-1.
func CompleteBipartite(a, b int) *Graph {
	bl := NewBuilder(a + b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			bl.AddEdge(int32(u), int32(a+v))
		}
	}
	return bl.MustBuild()
}

// GnP returns an Erdős–Rényi random graph G(n, p).
func GnP(n int, p float64, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	if p > 0 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < p {
					b.AddEdge(int32(u), int32(v))
				}
			}
		}
	}
	return b.MustBuild()
}

// RandomTree returns a uniformly random labelled tree on n nodes via a
// random Prüfer-like attachment: node v >= 1 attaches to a uniform earlier
// node. (Uniform over recursive trees, which suffices for the experiments.)
func RandomTree(n int, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(int32(v), int32(rng.Intn(v)))
	}
	return b.MustBuild()
}

// PreferentialAttachment returns a Barabási–Albert-style graph: nodes arrive
// one at a time and attach to k distinct earlier nodes chosen with
// probability proportional to current degree (plus one, so isolated seeds
// stay reachable).
func PreferentialAttachment(n, k int, rng *rand.Rand) *Graph {
	if k < 1 {
		k = 1
	}
	b := NewBuilder(n)
	// endpointPool holds one entry per half-edge plus one per node, giving
	// the degree-plus-one distribution when sampled uniformly.
	endpointPool := make([]int32, 0, 2*n*k+n)
	endpointPool = append(endpointPool, 0)
	for v := 1; v < n; v++ {
		want := k
		if v < k {
			want = v
		}
		chosen := make(map[int32]bool, want)
		for len(chosen) < want {
			u := endpointPool[rng.Intn(len(endpointPool))]
			if int32(v) != u {
				chosen[u] = true
			}
		}
		for u := range chosen {
			b.AddEdge(int32(v), u)
			endpointPool = append(endpointPool, u)
		}
		for i := 0; i < len(chosen); i++ {
			endpointPool = append(endpointPool, int32(v))
		}
		endpointPool = append(endpointPool, int32(v))
	}
	return b.MustBuild()
}

// RandomBipartite returns a random bipartite graph with sides a and b and
// edge probability p; the left side is 0..a-1.
func RandomBipartite(a, b int, p float64, rng *rand.Rand) *Graph {
	bl := NewBuilder(a + b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			if rng.Float64() < p {
				bl.AddEdge(int32(u), int32(a+v))
			}
		}
	}
	return bl.MustBuild()
}

// CliquePartitionGraph returns a graph that is a disjoint union of cliques
// of the given sizes plus, optionally, random "crossing" edges added with
// probability pCross between distinct cliques. With pCross = 0 its
// independence number is exactly the number of cliques, which makes it a
// useful exact-solver fixture.
func CliquePartitionGraph(sizes []int, pCross float64, rng *rand.Rand) *Graph {
	total := 0
	for _, s := range sizes {
		total += s
	}
	b := NewBuilder(total)
	starts := make([]int, len(sizes))
	off := 0
	for i, s := range sizes {
		starts[i] = off
		for u := 0; u < s; u++ {
			for v := u + 1; v < s; v++ {
				b.AddEdge(int32(off+u), int32(off+v))
			}
		}
		off += s
	}
	if pCross > 0 && rng != nil {
		for i := range sizes {
			for j := i + 1; j < len(sizes); j++ {
				for u := 0; u < sizes[i]; u++ {
					for v := 0; v < sizes[j]; v++ {
						if rng.Float64() < pCross {
							b.AddEdge(int32(starts[i]+u), int32(starts[j]+v))
						}
					}
				}
			}
		}
	}
	return b.MustBuild()
}

package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyGraphZeroValue(t *testing.T) {
	var g Graph
	if g.N() != 0 {
		t.Errorf("zero-value N() = %d, want 0", g.N())
	}
	if g.M() != 0 {
		t.Errorf("zero-value M() = %d, want 0", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("zero-value Validate() = %v, want nil", err)
	}
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build() error: %v", err)
	}
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("got n=%d m=%d, want n=4 m=4", g.N(), g.M())
	}
	for v := int32(0); v < 4; v++ {
		if d := g.Degree(v); d != 2 {
			t.Errorf("Degree(%d) = %d, want 2", v, d)
		}
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate() = %v", err)
	}
}

func TestBuilderDeduplicatesParallelEdges(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build() error: %v", err)
	}
	if g.M() != 1 {
		t.Errorf("M() = %d, want 1 after dedup", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Errorf("degrees = %d,%d,%d, want 1,1,0", g.Degree(0), g.Degree(1), g.Degree(2))
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name    string
		n       int
		edges   [][2]int32
		wantErr error
	}{
		{name: "self loop", n: 3, edges: [][2]int32{{1, 1}}, wantErr: ErrSelfLoop},
		{name: "out of range high", n: 3, edges: [][2]int32{{0, 3}}, wantErr: ErrNodeRange},
		{name: "out of range negative", n: 3, edges: [][2]int32{{-1, 0}}, wantErr: ErrNodeRange},
		{name: "negative size", n: -1, edges: nil, wantErr: ErrNegativeSize},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := FromEdges(tt.n, tt.edges)
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("FromEdges error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestHasEdge(t *testing.T) {
	g := MustFromEdges(t, 5, [][2]int32{{0, 1}, {1, 2}, {0, 4}})
	tests := []struct {
		u, v int32
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {1, 2, true}, {0, 4, true}, {4, 0, true},
		{0, 2, false}, {3, 4, false}, {2, 2, false}, {0, 0, false},
	}
	for _, tt := range tests {
		if got := g.HasEdge(tt.u, tt.v); got != tt.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", tt.u, tt.v, got, tt.want)
		}
	}
}

func TestNeighborsIsACopy(t *testing.T) {
	g := MustFromEdges(t, 3, [][2]int32{{0, 1}, {0, 2}})
	nbr := g.Neighbors(0)
	nbr[0] = 99
	if got := g.Neighbors(0); got[0] == 99 {
		t.Error("mutating Neighbors result leaked into the graph")
	}
}

func TestForEachNeighborEarlyStop(t *testing.T) {
	g := Complete(6)
	count := 0
	g.ForEachNeighbor(0, func(u int32) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d neighbours, want 2", count)
	}
}

func TestForEachEdgeOrderAndCount(t *testing.T) {
	g := Cycle(5)
	var prev [2]int32 = [2]int32{-1, -1}
	count := 0
	g.ForEachEdge(func(u, v int32) bool {
		if u >= v {
			t.Errorf("edge (%d,%d) not normalised u<v", u, v)
		}
		if u < prev[0] || (u == prev[0] && v <= prev[1]) {
			t.Errorf("edges out of order: (%d,%d) after (%d,%d)", u, v, prev[0], prev[1])
		}
		prev = [2]int32{u, v}
		count++
		return true
	})
	if count != 5 {
		t.Errorf("visited %d edges, want 5", count)
	}
}

func TestAppendNeighbors(t *testing.T) {
	g := Star(4)
	buf := make([]int32, 0, 8)
	buf = g.AppendNeighbors(buf, 0)
	if len(buf) != 3 {
		t.Fatalf("AppendNeighbors len = %d, want 3", len(buf))
	}
	buf = g.AppendNeighbors(buf, 1)
	if len(buf) != 4 || buf[3] != 0 {
		t.Errorf("AppendNeighbors second call = %v, want trailing 0", buf)
	}
}

func TestComplement(t *testing.T) {
	g := Path(4) // edges 01,12,23
	c := Complement(g)
	if c.M() != 3 { // complement of P4 has C(4,2)-3 = 3 edges
		t.Fatalf("complement M() = %d, want 3", c.M())
	}
	wantEdges := [][2]int32{{0, 2}, {0, 3}, {1, 3}}
	for _, e := range wantEdges {
		if !c.HasEdge(e[0], e[1]) {
			t.Errorf("complement missing edge %v", e)
		}
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate() = %v", err)
	}
}

func TestUnion(t *testing.T) {
	g := Union(Complete(3), Path(3))
	if g.N() != 6 {
		t.Fatalf("union N() = %d, want 6", g.N())
	}
	if g.M() != 3+2 {
		t.Fatalf("union M() = %d, want 5", g.M())
	}
	if g.HasEdge(2, 3) {
		t.Error("union must not connect the two parts")
	}
	if !g.HasEdge(3, 4) || !g.HasEdge(4, 5) {
		t.Error("union lost shifted path edges")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := Star(5)
	h := g.DegreeHistogram()
	if h[1] != 4 || h[4] != 1 {
		t.Errorf("histogram = %v, want 4 leaves and 1 centre", h)
	}
}

func TestMaxDegree(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"empty", Empty(4), 0},
		{"path", Path(5), 2},
		{"star", Star(7), 6},
		{"complete", Complete(5), 4},
		{"zero nodes", Empty(0), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.MaxDegree(); got != tt.want {
				t.Errorf("MaxDegree() = %d, want %d", got, tt.want)
			}
		})
	}
}

// TestBuilderPropertyRandom checks, for random edge multisets, that Build
// produces a graph passing Validate and preserving exactly the distinct
// non-loop edges.
func TestBuilderPropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		nEdges := rng.Intn(80)
		type key struct{ u, v int32 }
		want := map[key]bool{}
		b := NewBuilder(n)
		for i := 0; i < nEdges; i++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if u == v {
				continue
			}
			b.AddEdge(u, v)
			if u > v {
				u, v = v, u
			}
			want[key{u, v}] = true
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		if g.M() != len(want) {
			return false
		}
		ok := true
		g.ForEachEdge(func(u, v int32) bool {
			if !want[key{u, v}] {
				ok = false
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// MustFromEdges is a test helper that fails the test on construction error.
func MustFromEdges(t *testing.T, n int, edges [][2]int32) *Graph {
	t.Helper()
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatalf("FromEdges(%d, %v) error: %v", n, edges, err)
	}
	return g
}

func TestEqual(t *testing.T) {
	a := MustFromEdges(t, 4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	b := MustFromEdges(t, 4, [][2]int32{{2, 3}, {1, 0}, {2, 1}}) // same edges, different order
	c := MustFromEdges(t, 4, [][2]int32{{0, 1}, {1, 2}})
	d := MustFromEdges(t, 5, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	if !Equal(a, b) {
		t.Error("Equal should be insensitive to edge insertion order")
	}
	if Equal(a, c) {
		t.Error("graphs with different edge sets compared equal")
	}
	if Equal(a, d) {
		t.Error("graphs with different node counts compared equal")
	}
	if !Equal(&Graph{}, NewBuilder(0).MustBuild()) {
		t.Error("zero-value graph should equal the built empty graph")
	}
}

package graph

import (
	"errors"
	"testing"

	"pslocal/internal/engine"
)

func TestUnweightedAccessors(t *testing.T) {
	g := Path(4)
	if g.Weighted() {
		t.Error("plain graph reports Weighted")
	}
	if g.Weight(2) != 1 {
		t.Errorf("Weight = %d, want 1", g.Weight(2))
	}
	if g.Weights() != nil {
		t.Errorf("Weights = %v, want nil", g.Weights())
	}
	if g.TotalWeight() != int64(g.N()) {
		t.Errorf("TotalWeight = %d, want %d", g.TotalWeight(), g.N())
	}
	ws := g.AppendWeights(nil)
	if len(ws) != g.N() {
		t.Fatalf("AppendWeights length %d, want %d", len(ws), g.N())
	}
	for _, w := range ws {
		if w != 1 {
			t.Fatalf("AppendWeights = %v, want all ones", ws)
		}
	}
}

func TestBuilderSetWeight(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.SetWeight(2, 7)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !g.Weighted() {
		t.Fatal("graph with a non-unit weight reports unweighted")
	}
	if got := g.Weights(); got[0] != 1 || got[1] != 1 || got[2] != 7 {
		t.Errorf("Weights = %v, want [1 1 7]", got)
	}
	if g.TotalWeight() != 9 {
		t.Errorf("TotalWeight = %d, want 9", g.TotalWeight())
	}
}

func TestBuilderWeightErrors(t *testing.T) {
	cases := []struct {
		name string
		prep func(b *Builder)
		want error
	}{
		{"negative weight", func(b *Builder) { b.SetWeight(0, -4) }, ErrBadWeight},
		{"overflow weight", func(b *Builder) { b.SetWeight(0, MaxWeight+1) }, ErrBadWeight},
		{"vertex out of range", func(b *Builder) { b.SetWeight(9, 2) }, ErrNodeRange},
		{"negative vertex", func(b *Builder) { b.SetWeight(-1, 2) }, ErrNodeRange},
		{"short vector", func(b *Builder) { b.SetWeights([]int64{1, 2}) }, ErrWeightLength},
	}
	for _, tc := range cases {
		b := NewBuilder(3)
		tc.prep(b)
		if _, err := b.Build(); !errors.Is(err, tc.want) {
			t.Errorf("%s: Build err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestSetWeightsNormalizesUnitVector(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.SetWeights([]int64{1, 1, 1})
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.Weighted() {
		t.Error("all-ones weight vector not normalised to nil")
	}
	// A nil vector resets earlier weights.
	b = NewBuilder(2)
	b.SetWeight(0, 5)
	b.SetWeights(nil)
	g, err = b.Build()
	if err != nil {
		t.Fatalf("Build after reset: %v", err)
	}
	if g.Weighted() {
		t.Error("SetWeights(nil) did not reset weights")
	}
}

func TestWithWeights(t *testing.T) {
	g := Cycle(5)
	wg, err := WithWeights(g, []int64{5, 4, 3, 2, 1})
	if err != nil {
		t.Fatalf("WithWeights: %v", err)
	}
	if !wg.Weighted() || wg.Weight(0) != 5 || wg.Weight(4) != 1 {
		t.Errorf("weights not attached: %v", wg.Weights())
	}
	if wg.N() != g.N() || wg.M() != g.M() {
		t.Error("WithWeights changed the topology")
	}
	// Stripping weights gives back an unweighted view.
	uw, err := WithWeights(wg, nil)
	if err != nil {
		t.Fatalf("WithWeights(nil): %v", err)
	}
	if uw.Weighted() {
		t.Error("WithWeights(nil) left the graph weighted")
	}
	if _, err := WithWeights(g, []int64{1, 2}); !errors.Is(err, ErrWeightLength) {
		t.Errorf("short vector err = %v, want ErrWeightLength", err)
	}
	if _, err := WithWeights(g, []int64{1, 2, 3, 4, -1}); !errors.Is(err, ErrBadWeight) {
		t.Errorf("negative weight err = %v, want ErrBadWeight", err)
	}
	// Zero weights are admissible (only negative and overflow are errors).
	if zg, err := WithWeights(g, []int64{0, 1, 1, 1, 1}); err != nil || !zg.Weighted() {
		t.Errorf("zero weight rejected: %v", err)
	}
}

func TestEqualDistinguishesWeights(t *testing.T) {
	g := Path(3)
	a, err := WithWeights(g, []int64{1, 2, 3})
	if err != nil {
		t.Fatalf("WithWeights: %v", err)
	}
	b, err := WithWeights(g, []int64{1, 2, 4})
	if err != nil {
		t.Fatalf("WithWeights: %v", err)
	}
	if Equal(g, a) || Equal(a, b) {
		t.Error("Equal ignores weight vectors")
	}
	c, err := WithWeights(g, []int64{1, 2, 3})
	if err != nil {
		t.Fatalf("WithWeights: %v", err)
	}
	if !Equal(a, c) {
		t.Error("Equal rejects identical weighted graphs")
	}
}

func TestInducedCarriesWeights(t *testing.T) {
	g, err := WithWeights(Path(5), []int64{10, 20, 30, 40, 50})
	if err != nil {
		t.Fatalf("WithWeights: %v", err)
	}
	sub, orig, err := Induced(g, []int32{1, 3, 4})
	if err != nil {
		t.Fatalf("Induced: %v", err)
	}
	if !sub.Weighted() {
		t.Fatal("induced subgraph of a weighted graph is unweighted")
	}
	for i, o := range orig {
		if sub.Weight(int32(i)) != g.Weight(o) {
			t.Errorf("sub vertex %d: weight %d, want %d", i, sub.Weight(int32(i)), g.Weight(o))
		}
	}
	// Unweighted input stays unweighted.
	usub, _, err := Induced(Path(5), []int32{1, 3})
	if err != nil {
		t.Fatalf("Induced: %v", err)
	}
	if usub.Weighted() {
		t.Error("induced subgraph of an unweighted graph carries weights")
	}
}

func TestComplementAndUnionWeights(t *testing.T) {
	g, err := WithWeights(Path(3), []int64{7, 8, 9})
	if err != nil {
		t.Fatalf("WithWeights: %v", err)
	}
	comp := Complement(g)
	if !comp.Weighted() || comp.Weight(1) != 8 {
		t.Errorf("Complement weights = %v, want [7 8 9]", comp.Weights())
	}
	u := Union(g, Path(2))
	if !u.Weighted() {
		t.Fatal("union with a weighted side is unweighted")
	}
	want := []int64{7, 8, 9, 1, 1}
	for i, w := range want {
		if u.Weight(int32(i)) != w {
			t.Errorf("union vertex %d: weight %d, want %d", i, u.Weight(int32(i)), w)
		}
	}
	uu := Union(Path(2), Path(2))
	if uu.Weighted() {
		t.Error("union of unweighted graphs carries weights")
	}
}

func TestShardedBuilderWeights(t *testing.T) {
	sb := NewShardedBuilder(4, 2)
	sb.Shard(0).AddEdge(0, 1)
	sb.Shard(1).AddEdge(2, 3)
	sb.SetWeight(3, 11)
	g, err := sb.ParallelBuild(engine.Options{Workers: 2})
	if err != nil {
		t.Fatalf("ParallelBuild: %v", err)
	}
	if !g.Weighted() || g.Weight(3) != 11 {
		t.Errorf("sharded weights = %v, want vertex 3 at 11", g.Weights())
	}
	// Two shards both claiming the weight vector is a build error.
	sb = NewShardedBuilder(2, 2)
	sb.Shard(0).SetWeight(0, 2)
	sb.Shard(1).SetWeight(1, 3)
	if _, err := sb.Build(); err == nil {
		t.Error("weights on two shards built successfully, want error")
	}
}

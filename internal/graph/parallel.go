package graph

// parallel.go implements the sharded CSR assembly path (DESIGN.md,
// "Execution engine"). Edge emission is partitioned across workers, each
// appending into a private per-shard buffer; the shards are then merged by
// the two-pass assembler without locks:
//
//	pass 1  per-shard degree counts              (parallel over shards)
//	merge   global prefix sum + per-shard cursor (serial, O(W·n))
//	pass 2  scatter into disjoint cursor ranges  (parallel over shards)
//	finish  per-node sort + dedupe               (parallel over node ranges)
//
// The merge step assigns every (shard, node) pair its own half-open slice
// of the targets array, so the scatter needs no atomics: shard w writes
// node v's entries at cursor[w][v]..cursor[w][v]+deg_w(v), ranges that are
// disjoint by construction. The final adjacency is sorted and duplicate
// free, so the assembled CSR is identical regardless of shard count or
// emission order — the property the equivalence tests assert.

import (
	"errors"
	"fmt"
	"slices"

	"pslocal/internal/engine"
)

// ShardedBuilder accumulates edges into per-shard buffers so multiple
// workers can emit concurrently without synchronisation. Distinct shards
// may be used from distinct goroutines at the same time; a single shard is
// not itself concurrency safe.
type ShardedBuilder struct {
	n      int
	shards []Builder
}

// NewShardedBuilder returns a builder for a graph on n nodes with the given
// number of independent emission shards (at least 1).
func NewShardedBuilder(n, shards int) *ShardedBuilder {
	if shards < 1 {
		shards = 1
	}
	sb := &ShardedBuilder{n: n, shards: make([]Builder, shards)}
	for i := range sb.shards {
		sb.shards[i].n = n
	}
	return sb
}

// NumShards returns the number of emission shards.
func (sb *ShardedBuilder) NumShards() int { return len(sb.shards) }

// Shard returns shard i's Builder. Each shard accepts AddEdge and
// EdgeCapacityHint exactly like a standalone Builder; errors are deferred
// to Build.
func (sb *ShardedBuilder) Shard(i int) *Builder { return &sb.shards[i] }

// Build assembles the graph serially (one merge worker).
func (sb *ShardedBuilder) Build() (*Graph, error) {
	return sb.ParallelBuild(engine.Options{Workers: 1})
}

// ParallelBuild assembles the graph on opts' worker pool. The result is
// byte-for-byte identical to the serial Build of the same edge multiset.
func (sb *ShardedBuilder) ParallelBuild(opts engine.Options) (*Graph, error) {
	shards := make([]*Builder, len(sb.shards))
	for i := range sb.shards {
		shards[i] = &sb.shards[i]
	}
	return assembleCSR(sb.n, shards, opts)
}

// assembleCSR is the two-pass CSR assembler shared by Builder.Build (one
// shard, one worker) and ShardedBuilder.ParallelBuild.
func assembleCSR(n int, shards []*Builder, opts engine.Options) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: %d", ErrNegativeSize, n)
	}
	var errs []error
	var weights []int64
	for _, sh := range shards {
		errs = append(errs, sh.errs...)
		if sh.badWeightLen {
			errs = append(errs, fmt.Errorf("%w: SetWeights vector for %d nodes", ErrWeightLength, n))
		}
		if sh.weights != nil {
			if weights != nil {
				errs = append(errs, fmt.Errorf("graph: weights set on more than one shard"))
			}
			weights = sh.weights
		}
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	weights, werr := normalizeWeights(n, weights)
	if werr != nil {
		return nil, werr
	}
	if err := opts.Err(); err != nil {
		return nil, err
	}
	w := len(shards)

	// Pass 1: per-shard degree counts, each into a private array.
	degs := make([][]int32, w)
	err := opts.ForEachShard(w, func(_ int, s engine.Shard) error {
		for i := s.Lo; i < s.Hi; i++ {
			sh := shards[i]
			d := make([]int32, n)
			for j := range sh.us {
				d[sh.us[j]]++
				d[sh.vs[j]]++
			}
			degs[i] = d
		}
		return opts.Err()
	})
	if err != nil {
		return nil, err
	}

	// Merge: global offsets by prefix sum, rewriting each degs[w][v] in
	// place into shard w's private write cursor for node v. The cursor
	// ranges tile targets exactly, which is what makes pass 2 lock free.
	offsets := make([]int32, n+1)
	total := int32(0)
	for v := 0; v < n; v++ {
		offsets[v] = total
		for i := 0; i < w; i++ {
			c := degs[i][v]
			degs[i][v] = total
			total += c
		}
	}
	offsets[n] = total

	// Pass 2: scatter, each shard through its own cursors.
	targets := make([]int32, total)
	err = opts.ForEachShard(w, func(_ int, s engine.Shard) error {
		for i := s.Lo; i < s.Hi; i++ {
			sh, cur := shards[i], degs[i]
			for j := range sh.us {
				u, v := sh.us[j], sh.vs[j]
				targets[cur[u]] = v
				cur[u]++
				targets[cur[v]] = u
				cur[v]++
			}
		}
		return opts.Err()
	})
	if err != nil {
		return nil, err
	}

	// Finish: per-node sort plus unique count (parallel over node ranges;
	// every node's adjacency slice is disjoint), then a serial prefix sum
	// and a parallel compaction into the final targets array.
	uniq := make([]int32, n)
	err = opts.ForEachShard(n, func(_ int, s engine.Shard) error {
		for v := s.Lo; v < s.Hi; v++ {
			adj := targets[offsets[v]:offsets[v+1]]
			slices.Sort(adj)
			c := int32(0)
			for i, u := range adj {
				if i == 0 || adj[i-1] != u {
					c++
				}
			}
			uniq[v] = c
		}
		return opts.Err()
	})
	if err != nil {
		return nil, err
	}
	newOffsets := make([]int32, n+1)
	for v := 0; v < n; v++ {
		newOffsets[v+1] = newOffsets[v] + uniq[v]
	}
	if newOffsets[n] == total {
		// No duplicates anywhere: the sorted scatter is already final.
		return &Graph{offsets: offsets, targets: targets, weights: weights}, nil
	}
	newTargets := make([]int32, newOffsets[n])
	err = opts.ForEachShard(n, func(_ int, s engine.Shard) error {
		for v := s.Lo; v < s.Hi; v++ {
			adj := targets[offsets[v]:offsets[v+1]]
			write := newOffsets[v]
			for i, u := range adj {
				if i == 0 || adj[i-1] != u {
					newTargets[write] = u
					write++
				}
			}
		}
		return opts.Err()
	})
	if err != nil {
		return nil, err
	}
	return &Graph{offsets: newOffsets, targets: newTargets, weights: weights}, nil
}

package graph

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"pslocal/internal/engine"
)

// requireSameCSR asserts byte-for-byte CSR equality, the contract of the
// sharded assembly path.
func requireSameCSR(t *testing.T, got, want *Graph) {
	t.Helper()
	if len(got.offsets) != len(want.offsets) {
		t.Fatalf("offsets length %d, want %d", len(got.offsets), len(want.offsets))
	}
	for i := range want.offsets {
		if got.offsets[i] != want.offsets[i] {
			t.Fatalf("offsets[%d] = %d, want %d", i, got.offsets[i], want.offsets[i])
		}
	}
	if len(got.targets) != len(want.targets) {
		t.Fatalf("targets length %d, want %d", len(got.targets), len(want.targets))
	}
	for i := range want.targets {
		if got.targets[i] != want.targets[i] {
			t.Fatalf("targets[%d] = %d, want %d", i, got.targets[i], want.targets[i])
		}
	}
}

// randomEdges returns a multiset of valid edges with deliberate duplicates.
func randomEdges(n, m int, rng *rand.Rand) [][2]int32 {
	if n < 2 {
		return nil // a simple graph on < 2 nodes has no edges
	}
	out := make([][2]int32, 0, m)
	for len(out) < m {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		out = append(out, [2]int32{u, v})
		if rng.Intn(4) == 0 { // duplicate, sometimes flipped
			out = append(out, [2]int32{v, u})
		}
	}
	return out
}

func TestParallelBuildEquivalentToSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(60)
		m := rng.Intn(4 * n)
		edges := randomEdges(n, m, rng)

		serial := NewBuilder(n)
		for _, e := range edges {
			serial.AddEdge(e[0], e[1])
		}
		want, err := serial.Build()
		if err != nil {
			t.Fatalf("serial build: %v", err)
		}
		if err := want.Validate(); err != nil {
			t.Fatalf("serial invariants: %v", err)
		}

		for _, shards := range []int{1, 2, 3, 8} {
			for _, workers := range []int{1, 2, 4} {
				sb := NewShardedBuilder(n, shards)
				for i, e := range edges {
					sb.Shard(i%shards).AddEdge(e[0], e[1])
				}
				got, err := sb.ParallelBuild(engine.Options{Workers: workers})
				if err != nil {
					t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
				}
				requireSameCSR(t, got, want)
			}
		}
	}
}

func TestShardedBuilderErrorsSurface(t *testing.T) {
	sb := NewShardedBuilder(4, 3)
	sb.Shard(0).AddEdge(0, 1)
	sb.Shard(1).AddEdge(2, 9) // out of range
	sb.Shard(2).AddEdge(3, 3) // self loop
	_, err := sb.ParallelBuild(engine.Options{Workers: 2})
	if !errors.Is(err, ErrNodeRange) {
		t.Errorf("missing ErrNodeRange: %v", err)
	}
	if !errors.Is(err, ErrSelfLoop) {
		t.Errorf("missing ErrSelfLoop: %v", err)
	}
}

func TestShardedBuilderNegativeSize(t *testing.T) {
	sb := NewShardedBuilder(-1, 2)
	if _, err := sb.Build(); !errors.Is(err, ErrNegativeSize) {
		t.Errorf("err = %v, want ErrNegativeSize", err)
	}
}

func TestParallelBuildCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sb := NewShardedBuilder(4, 2)
	sb.Shard(0).AddEdge(0, 1)
	_, err := sb.ParallelBuild(engine.Options{Workers: 2, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestEdgeCapacityHintPreservesResult(t *testing.T) {
	b1 := NewBuilder(10)
	b2 := NewBuilder(10)
	b2.EdgeCapacityHint(64)
	b2.EdgeCapacityHint(-1) // no-op
	rng := rand.New(rand.NewSource(9))
	for _, e := range randomEdges(10, 30, rng) {
		b1.AddEdge(e[0], e[1])
		b2.AddEdge(e[0], e[1])
	}
	g1 := b1.MustBuild()
	g2 := b2.MustBuild()
	requireSameCSR(t, g2, g1)
}

func TestParallelBuildNoDuplicatesFastPath(t *testing.T) {
	// A duplicate-free emission takes the "already final" branch; the
	// invariants must still hold.
	sb := NewShardedBuilder(5, 2)
	sb.Shard(0).AddEdge(0, 1)
	sb.Shard(0).AddEdge(1, 2)
	sb.Shard(1).AddEdge(3, 4)
	g, err := sb.ParallelBuild(engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if g.M() != 3 {
		t.Errorf("M = %d, want 3", g.M())
	}
}

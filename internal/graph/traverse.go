package graph

// traverse.go implements breadth-first search, r-hop balls B(v,r) (the view
// primitive of the SLOCAL model, paper Section 1), connected components, and
// induced subgraphs.

// BFS returns the hop distance from src to every node, with -1 for
// unreachable nodes.
func BFS(g *Graph, src int32) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		g.ForEachNeighbor(v, func(u int32) bool {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
			return true
		})
	}
	return dist
}

// Ball returns the nodes of B(v, r) = {u : dist(v,u) <= r} in ascending
// order. Ball(v, 0) = {v}.
func Ball(g *Graph, v int32, r int) []int32 {
	nodes, _ := BallWithDist(g, v, r)
	return nodes
}

// BallWithDist returns the nodes of B(v, r) in ascending order together with
// a parallel slice of their distances from v.
func BallWithDist(g *Graph, v int32, r int) (nodes []int32, dist []int32) {
	if r < 0 {
		return nil, nil
	}
	seen := map[int32]int32{v: 0}
	frontier := []int32{v}
	for d := int32(1); int(d) <= r && len(frontier) > 0; d++ {
		var next []int32
		for _, w := range frontier {
			g.ForEachNeighbor(w, func(u int32) bool {
				if _, ok := seen[u]; !ok {
					seen[u] = d
					next = append(next, u)
				}
				return true
			})
		}
		frontier = next
	}
	nodes = make([]int32, 0, len(seen))
	for u := range seen {
		nodes = append(nodes, u)
	}
	sortInt32(nodes)
	dist = make([]int32, len(nodes))
	for i, u := range nodes {
		dist[i] = seen[u]
	}
	return nodes, dist
}

// BallSize returns |B(v, r)| without materialising the node list beyond the
// visited set.
func BallSize(g *Graph, v int32, r int) int {
	nodes, _ := BallWithDist(g, v, r)
	return len(nodes)
}

// Components labels every node with a component id in 0..count-1 (ids are
// assigned in order of the smallest node of each component) and returns the
// labels and the component count.
func Components(g *Graph) (comp []int32, count int) {
	n := g.N()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []int32
	for s := int32(0); int(s) < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := int32(count)
		count++
		comp[s] = id
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			g.ForEachNeighbor(v, func(u int32) bool {
				if comp[u] < 0 {
					comp[u] = id
					queue = append(queue, u)
				}
				return true
			})
		}
	}
	return comp, count
}

// Eccentricity returns the greatest BFS distance from v to any reachable
// node.
func Eccentricity(g *Graph, v int32) int {
	dist := BFS(g, v)
	ecc := 0
	for _, d := range dist {
		if int(d) > ecc {
			ecc = int(d)
		}
	}
	return ecc
}

// Diameter returns the largest eccentricity over all nodes of a connected
// graph; for a disconnected graph it returns the largest eccentricity within
// any component. O(n·m); intended for the modest graph sizes of the
// experiment suite.
func Diameter(g *Graph) int {
	diam := 0
	for v := 0; v < g.N(); v++ {
		if e := Eccentricity(g, int32(v)); e > diam {
			diam = e
		}
	}
	return diam
}

// Induced returns the subgraph induced by nodes, plus the mapping
// orig[newID] = oldID. Vertex weights carry over to the subgraph. The
// nodes slice may be unsorted but must not contain duplicates or
// out-of-range ids; violations are reported via error.
func Induced(g *Graph, nodes []int32) (*Graph, []int32, error) {
	orig := make([]int32, len(nodes))
	copy(orig, nodes)
	sortInt32(orig)
	toNew := make(map[int32]int32, len(orig))
	for i, v := range orig {
		if v < 0 || int(v) >= g.N() {
			return nil, nil, ErrNodeRange
		}
		if i > 0 && orig[i-1] == v {
			return nil, nil, ErrDuplicateNode
		}
		toNew[v] = int32(i)
	}
	b := NewBuilder(len(orig))
	for i, v := range orig {
		g.ForEachNeighbor(v, func(u int32) bool {
			if j, ok := toNew[u]; ok && j > int32(i) {
				b.AddEdge(int32(i), j)
			}
			return true
		})
	}
	if g.Weighted() {
		ws := make([]int64, len(orig))
		for i, v := range orig {
			ws[i] = g.Weight(v)
		}
		b.SetWeights(ws)
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return sub, orig, nil
}

// sortInt32 sorts a slice of int32 in ascending order.
func sortInt32(s []int32) {
	// Insertion sort below a small threshold, otherwise delegate; ball and
	// induced-subgraph node lists are usually tiny.
	if len(s) <= 24 {
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j-1] > s[j]; j-- {
				s[j-1], s[j] = s[j], s[j-1]
			}
		}
		return
	}
	quickSortInt32(s)
}

func quickSortInt32(s []int32) {
	for len(s) > 24 {
		p := partitionInt32(s)
		if p < len(s)-p {
			quickSortInt32(s[:p])
			s = s[p:]
		} else {
			quickSortInt32(s[p:])
			s = s[:p]
		}
	}
	sortInt32(s)
}

func partitionInt32(s []int32) int {
	mid := len(s) / 2
	// Median-of-three pivot to dodge adversarial (sorted) inputs.
	if s[0] > s[mid] {
		s[0], s[mid] = s[mid], s[0]
	}
	if s[0] > s[len(s)-1] {
		s[0], s[len(s)-1] = s[len(s)-1], s[0]
	}
	if s[mid] > s[len(s)-1] {
		s[mid], s[len(s)-1] = s[len(s)-1], s[mid]
	}
	pivot := s[mid]
	i, j := 0, len(s)-1
	for {
		for s[i] < pivot {
			i++
		}
		for s[j] > pivot {
			j--
		}
		if i >= j {
			return j + 1
		}
		s[i], s[j] = s[j], s[i]
		i++
		j--
	}
}

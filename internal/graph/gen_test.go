package graph

import (
	"math/rand"
	"testing"
)

func TestGeneratorShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		name  string
		g     *Graph
		n, m  int
		degOK func(h []int) bool
	}{
		{"empty", Empty(5), 5, 0, nil},
		{"complete", Complete(6), 6, 15, nil},
		{"path", Path(6), 6, 5, nil},
		{"cycle", Cycle(6), 6, 6, func(h []int) bool { return h[2] == 6 }},
		{"cycle small falls back to path", Cycle(2), 2, 1, nil},
		{"star", Star(5), 5, 4, func(h []int) bool { return h[1] == 4 && h[4] == 1 }},
		{"grid", Grid(3, 4), 12, 17, nil},
		{"bipartite", CompleteBipartite(2, 3), 5, 6, nil},
		{"tree", RandomTree(40, rng), 40, 39, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.g.N() != tt.n {
				t.Errorf("N() = %d, want %d", tt.g.N(), tt.n)
			}
			if tt.g.M() != tt.m {
				t.Errorf("M() = %d, want %d", tt.g.M(), tt.m)
			}
			if err := tt.g.Validate(); err != nil {
				t.Errorf("Validate() = %v", err)
			}
			if tt.degOK != nil && !tt.degOK(tt.g.DegreeHistogram()) {
				t.Errorf("degree histogram %v unexpected", tt.g.DegreeHistogram())
			}
		})
	}
}

func TestGnPDeterministicForSeed(t *testing.T) {
	a := GnP(30, 0.2, rand.New(rand.NewSource(42)))
	b := GnP(30, 0.2, rand.New(rand.NewSource(42)))
	if a.M() != b.M() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.M(), b.M())
	}
	a.ForEachEdge(func(u, v int32) bool {
		if !b.HasEdge(u, v) {
			t.Errorf("edge (%d,%d) only in first graph", u, v)
			return false
		}
		return true
	})
}

func TestGnPExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if g := GnP(20, 0, rng); g.M() != 0 {
		t.Errorf("G(n,0) has %d edges, want 0", g.M())
	}
	if g := GnP(20, 1, rng); g.M() != 190 {
		t.Errorf("G(n,1) has %d edges, want 190", g.M())
	}
}

func TestGnPEdgeCountPlausible(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, p := 200, 0.1
	g := GnP(n, p, rng)
	mean := p * float64(n*(n-1)/2)
	if got := float64(g.M()); got < mean*0.7 || got > mean*1.3 {
		t.Errorf("G(%d,%.2f) has %v edges, implausibly far from mean %.0f", n, p, got, mean)
	}
}

func TestRandomTreeIsConnectedAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(60)
		g := RandomTree(n, rng)
		if g.M() != n-1 {
			t.Fatalf("tree on %d nodes has %d edges", n, g.M())
		}
		if _, count := Components(g); count != 1 {
			t.Fatalf("tree on %d nodes has %d components", n, count)
		}
	}
}

func TestPreferentialAttachment(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := PreferentialAttachment(80, 3, rng)
	if g.N() != 80 {
		t.Fatalf("N() = %d, want 80", g.N())
	}
	if _, count := Components(g); count != 1 {
		t.Errorf("preferential attachment graph disconnected: %d components", count)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate() = %v", err)
	}
	// k=0 is clamped to 1, still a connected tree-like graph.
	g0 := PreferentialAttachment(10, 0, rng)
	if _, count := Components(g0); count != 1 {
		t.Errorf("k=0 graph disconnected")
	}
}

func TestRandomBipartiteHasNoIntraSideEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a, b := 12, 17
	g := RandomBipartite(a, b, 0.4, rng)
	g.ForEachEdge(func(u, v int32) bool {
		if (int(u) < a) == (int(v) < a) {
			t.Errorf("intra-side edge (%d,%d)", u, v)
		}
		return true
	})
}

func TestCliquePartitionGraph(t *testing.T) {
	g := CliquePartitionGraph([]int{3, 4, 2}, 0, nil)
	if g.N() != 9 {
		t.Fatalf("N() = %d, want 9", g.N())
	}
	if g.M() != 3+6+1 {
		t.Fatalf("M() = %d, want 10", g.M())
	}
	if g.HasEdge(0, 3) {
		t.Error("cliques must be disjoint with pCross=0")
	}
	rng := rand.New(rand.NewSource(17))
	gc := CliquePartitionGraph([]int{3, 3}, 1.0, rng)
	if gc.M() != 3+3+9 {
		t.Errorf("pCross=1 M() = %d, want 15", gc.M())
	}
}

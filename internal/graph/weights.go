package graph

// weights.go implements optional vertex weights, the substrate of the
// vertex-weighted MaxIS objective. Weights are part of the instance, not a
// solver mode: a Graph either carries a non-unit weight vector or it does
// not, and every consumer branches on Weighted().
//
// The nil-weights fast path is a hard contract (DESIGN.md, "Weighted
// instances"): constructors normalise an all-unit weight vector to nil, so
// "weighted" is a single pointer test, unweighted graphs pay no storage,
// and code paths keyed on Weighted() are bit-identical to the pre-weights
// behaviour whenever every weight is 1.

import (
	"errors"
	"fmt"
	"math"
)

// MaxWeight is the largest admissible vertex weight. Capping per-vertex
// weights at 2^31−1 keeps every quantity the solvers compute in int64
// without overflow checks: a total over at most 2^31 vertices stays below
// 2^62, and the greedy ratio cross-products w(u)·(deg(v)+1) stay below
// 2^62 as well.
const MaxWeight = math.MaxInt32

// Weight errors returned by Build and WithWeights.
var (
	// ErrBadWeight reports a negative vertex weight or one above MaxWeight.
	ErrBadWeight = errors.New("graph: vertex weight out of range")
	// ErrWeightLength reports a weight vector whose length is not the node
	// count.
	ErrWeightLength = errors.New("graph: weight vector length mismatch")
)

// Weighted reports whether g carries non-unit vertex weights. Constructors
// normalise all-unit weight vectors away, so false means every weight is
// exactly 1 and the unweighted fast paths apply.
func (g *Graph) Weighted() bool { return g.weights != nil }

// Weight returns the weight of v: 1 on unweighted graphs.
func (g *Graph) Weight(v int32) int64 {
	if g.weights == nil {
		return 1
	}
	return g.weights[v]
}

// Weights returns a fresh copy of the per-vertex weight vector, or nil for
// an unweighted graph (every weight 1). The caller owns the result.
func (g *Graph) Weights() []int64 {
	if g.weights == nil {
		return nil
	}
	out := make([]int64, len(g.weights))
	copy(out, g.weights)
	return out
}

// AppendWeights appends the effective per-vertex weights (all 1 on
// unweighted graphs) to dst and returns the extended slice, avoiding an
// allocation when dst has capacity.
func (g *Graph) AppendWeights(dst []int64) []int64 {
	if g.weights != nil {
		return append(dst, g.weights...)
	}
	for i := 0; i < g.N(); i++ {
		dst = append(dst, 1)
	}
	return dst
}

// TotalWeight returns the sum of all vertex weights; on unweighted graphs
// it equals N().
func (g *Graph) TotalWeight() int64 {
	if g.weights == nil {
		return int64(g.N())
	}
	total := int64(0)
	for _, w := range g.weights {
		total += w
	}
	return total
}

// SetWeight records the weight of vertex v (default 1). Like AddEdge,
// range errors are deferred to Build.
func (b *Builder) SetWeight(v int32, w int64) {
	switch {
	case b.n < 0:
		// Build reports ErrNegativeSize; nothing to record.
	case v < 0 || int(v) >= b.n:
		b.errs = append(b.errs, fmt.Errorf("%w: SetWeight(%d) with n=%d", ErrNodeRange, v, b.n))
	default:
		if b.weights == nil {
			b.weights = unitWeights(b.n)
		}
		b.weights[v] = w
	}
}

// SetWeights records the whole weight vector at once; it must have exactly
// n entries (checked at Build). The slice is copied.
func (b *Builder) SetWeights(ws []int64) {
	if ws == nil {
		b.weights = nil
		b.badWeightLen = false
		return
	}
	if len(ws) != b.n {
		b.badWeightLen = true
		b.weights = nil
		return
	}
	b.badWeightLen = false
	b.weights = append(b.weights[:0], ws...)
}

// SetWeight records a vertex weight; it forwards to shard 0, the
// designated owner of the builder's weight vector (weights are per-vertex
// state, not per-edge, so they are not sharded).
func (sb *ShardedBuilder) SetWeight(v int32, w int64) { sb.shards[0].SetWeight(v, w) }

// SetWeights records the whole weight vector at once (see
// Builder.SetWeights); it forwards to shard 0.
func (sb *ShardedBuilder) SetWeights(ws []int64) { sb.shards[0].SetWeights(ws) }

// WithWeights returns a graph sharing g's adjacency structure with the
// given weight vector (nil restores the unweighted form). The vector must
// have N() entries within [0, MaxWeight]; it is copied and normalised
// (all-unit collapses to nil).
func WithWeights(g *Graph, ws []int64) (*Graph, error) {
	norm, err := normalizeWeights(g.N(), ws)
	if err != nil {
		return nil, err
	}
	return &Graph{offsets: g.offsets, targets: g.targets, weights: norm}, nil
}

// normalizeWeights validates ws against n nodes and returns a private
// normalised copy: nil when ws is nil or all-unit.
func normalizeWeights(n int, ws []int64) ([]int64, error) {
	if ws == nil {
		return nil, nil
	}
	if len(ws) != n {
		return nil, fmt.Errorf("%w: %d weights for %d nodes", ErrWeightLength, len(ws), n)
	}
	unit := true
	for v, w := range ws {
		if w < 0 || w > MaxWeight {
			return nil, fmt.Errorf("%w: weight %d of node %d", ErrBadWeight, w, v)
		}
		if w != 1 {
			unit = false
		}
	}
	if unit {
		return nil, nil
	}
	out := make([]int64, len(ws))
	copy(out, ws)
	return out, nil
}

// unitWeights returns a fresh all-ones vector of length n.
func unitWeights(n int) []int64 {
	ws := make([]int64, n)
	for i := range ws {
		ws[i] = 1
	}
	return ws
}

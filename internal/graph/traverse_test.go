package graph

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBFSPath(t *testing.T) {
	g := Path(5)
	dist := BFS(g, 0)
	for v, want := range []int32{0, 1, 2, 3, 4} {
		if dist[v] != want {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], want)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := Union(Path(3), Path(2))
	dist := BFS(g, 0)
	if dist[3] != -1 || dist[4] != -1 {
		t.Errorf("unreachable nodes have dist %d,%d, want -1,-1", dist[3], dist[4])
	}
}

func TestBallGrid(t *testing.T) {
	g := Grid(5, 5)
	centre := int32(12) // middle of the grid
	tests := []struct {
		r    int
		want int // |B(v,r)| for the L1 ball in a 5x5 grid centre
	}{
		{0, 1}, {1, 5}, {2, 13}, {3, 21}, {4, 25}, {10, 25},
	}
	for _, tt := range tests {
		if got := BallSize(g, centre, tt.r); got != tt.want {
			t.Errorf("BallSize(centre, %d) = %d, want %d", tt.r, got, tt.want)
		}
	}
}

func TestBallWithDistSortedAndConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := GnP(60, 0.08, rng)
	full := BFS(g, 17)
	nodes, dist := BallWithDist(g, 17, 3)
	if !sort.SliceIsSorted(nodes, func(i, j int) bool { return nodes[i] < nodes[j] }) {
		t.Fatal("ball nodes not sorted")
	}
	inBall := map[int32]bool{}
	for i, v := range nodes {
		inBall[v] = true
		if dist[i] != full[v] {
			t.Errorf("ball dist of %d = %d, BFS says %d", v, dist[i], full[v])
		}
		if dist[i] > 3 {
			t.Errorf("node %d at dist %d > radius", v, dist[i])
		}
	}
	for v := int32(0); int(v) < g.N(); v++ {
		if full[v] >= 0 && full[v] <= 3 && !inBall[v] {
			t.Errorf("node %d at dist %d missing from ball", v, full[v])
		}
	}
}

func TestBallNegativeRadius(t *testing.T) {
	g := Path(3)
	if got := Ball(g, 0, -1); got != nil {
		t.Errorf("Ball(r=-1) = %v, want nil", got)
	}
}

func TestComponents(t *testing.T) {
	g := Union(Union(Cycle(3), Path(4)), Empty(2))
	comp, count := Components(g)
	if count != 4 {
		t.Fatalf("count = %d, want 4 (cycle, path, 2 isolated)", count)
	}
	if comp[0] != comp[1] || comp[0] != comp[2] {
		t.Error("cycle nodes split across components")
	}
	if comp[3] != comp[6] {
		t.Error("path nodes split across components")
	}
	if comp[7] == comp[8] {
		t.Error("isolated nodes merged")
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		diam int
	}{
		{"path5", Path(5), 4},
		{"cycle6", Cycle(6), 3},
		{"complete4", Complete(4), 1},
		{"star6", Star(6), 2},
		{"grid3x4", Grid(3, 4), 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Diameter(tt.g); got != tt.diam {
				t.Errorf("Diameter = %d, want %d", got, tt.diam)
			}
		})
	}
	if e := Eccentricity(Path(5), 2); e != 2 {
		t.Errorf("Eccentricity(mid of P5) = %d, want 2", e)
	}
}

func TestInduced(t *testing.T) {
	g := Cycle(6)
	sub, orig, err := Induced(g, []int32{0, 1, 2, 4})
	if err != nil {
		t.Fatalf("Induced error: %v", err)
	}
	if sub.N() != 4 {
		t.Fatalf("sub.N() = %d, want 4", sub.N())
	}
	// Edges among {0,1,2,4} in C6: {0,1}, {1,2}. Node 4 is isolated here.
	if sub.M() != 2 {
		t.Fatalf("sub.M() = %d, want 2", sub.M())
	}
	for newID, oldID := range orig {
		if g.Degree(oldID) != 2 {
			t.Errorf("orig mapping broken for new %d -> old %d", newID, oldID)
		}
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.HasEdge(2, 3) {
		t.Error("induced edges wrong")
	}
}

func TestInducedErrors(t *testing.T) {
	g := Path(4)
	if _, _, err := Induced(g, []int32{0, 0}); !errors.Is(err, ErrDuplicateNode) {
		t.Errorf("duplicate node error = %v, want ErrDuplicateNode", err)
	}
	if _, _, err := Induced(g, []int32{0, 9}); !errors.Is(err, ErrNodeRange) {
		t.Errorf("range error = %v, want ErrNodeRange", err)
	}
}

// TestInducedPropertyPreservesAdjacency: for random graphs and random node
// subsets, adjacency in the induced subgraph must match the original.
func TestInducedPropertyPreservesAdjacency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := GnP(2+rng.Intn(25), 0.3, rng)
		var nodes []int32
		for v := 0; v < g.N(); v++ {
			if rng.Float64() < 0.5 {
				nodes = append(nodes, int32(v))
			}
		}
		sub, orig, err := Induced(g, nodes)
		if err != nil {
			return false
		}
		for i := 0; i < sub.N(); i++ {
			for j := i + 1; j < sub.N(); j++ {
				if sub.HasEdge(int32(i), int32(j)) != g.HasEdge(orig[i], orig[j]) {
					return false
				}
			}
		}
		return sub.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSortInt32(t *testing.T) {
	f := func(vals []int32) bool {
		s := make([]int32, len(vals))
		copy(s, vals)
		sortInt32(s)
		if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i] < s[j] }) {
			return false
		}
		// Same multiset.
		want := make([]int32, len(vals))
		copy(want, vals)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if want[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Exercise the quicksort path explicitly with a large adversarial input.
	big := make([]int32, 500)
	for i := range big {
		big[i] = int32(len(big) - i)
	}
	sortInt32(big)
	for i := 1; i < len(big); i++ {
		if big[i-1] > big[i] {
			t.Fatal("large descending input not sorted")
		}
	}
}

package cluster

// metrics.go is the gateway's metrics surface: one obs.Registry renders
// GET /metrics in the Prometheus text format. The request counters are
// the same handles Stats() (the /statz document) reads, so the two
// expositions can never disagree; per-backend series — proxy-attempt
// latency, retried attempts, health, ejections, in-flight and proxied
// totals — are labeled by backend URL and either hit typed handles on
// the proxy path or read through func-backed series at scrape time.

import (
	"pslocal/internal/obs"
)

// gatewayMetrics owns the registry and the hot-path handles.
type gatewayMetrics struct {
	reg *obs.Registry

	requests *obs.Counter // all requests, any endpoint
	rerouted *obs.Counter // attempts routed past the first candidate
	failures *obs.Counter // requests answered 4xx/5xx or given up on

	// proxy times each upstream attempt; retries counts attempts a
	// backend failed or declined (the request moved to the next
	// candidate). Both are per backend.
	proxy   map[string]*obs.Histogram
	retries map[string]*obs.Counter
}

// newGatewayMetrics builds the registry over the gateway's fixed backend
// set; the func-backed series read health, load and proxied state at
// scrape time.
func newGatewayMetrics(g *Gateway) *gatewayMetrics {
	reg := obs.NewRegistry()
	m := &gatewayMetrics{
		reg:      reg,
		requests: reg.Counter("cfgate_requests_total", "HTTP requests received, any endpoint."),
		rerouted: reg.Counter("cfgate_rerouted_total", "Proxy attempts routed past the first candidate."),
		failures: reg.Counter("cfgate_failures_total", "Requests answered 4xx/5xx or exhausted every candidate."),
		proxy:    make(map[string]*obs.Histogram),
		retries:  make(map[string]*obs.Counter),
	}
	for _, b := range g.ring.Backends() {
		backend := b
		label := obs.Label{Key: "backend", Value: backend}
		m.proxy[backend] = reg.Histogram("cfgate_proxy_duration_seconds",
			"Upstream attempt latency by backend.", label)
		m.retries[backend] = reg.Counter("cfgate_backend_retries_total",
			"Attempts this backend failed or declined (the request moved on).", label)
		reg.GaugeFunc("cfgate_backend_healthy", "Whether the backend is admitted (1) or ejected (0).",
			func() float64 {
				if g.hlth.healthy(backend) {
					return 1
				}
				return 0
			}, label)
		reg.CounterFunc("cfgate_backend_ejections_total", "Healthy-to-ejected transitions.",
			func() float64 { return float64(g.hlth.snapshot()[backend].Ejections) }, label)
		reg.GaugeFunc("cfgate_backend_inflight", "Requests currently proxied to the backend.",
			func() float64 { return float64(g.loads.load(backend)) }, label)
		reg.CounterFunc("cfgate_backend_proxied_total", "Requests this backend answered.",
			func() float64 {
				g.proxiedMu.Lock()
				c, ok := g.proxied[backend]
				g.proxiedMu.Unlock()
				if !ok {
					return 0
				}
				return float64(c.Load())
			}, label)
	}
	reg.GaugeFunc("cfgate_healthy_backends", "Backends currently admitted for routing.",
		func() float64 { return float64(len(g.bal.healthyBackends())) })
	return m
}

package cluster

// obs_test.go covers the gateway's observability surface: request-id
// propagation (minted when absent, forwarded verbatim when valid, both
// echoed on the response) and the Prometheus exposition on GET /metrics.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"pslocal/internal/obs"
)

func TestGatewayRequestIDPropagation(t *testing.T) {
	var seenID atomic.Value // string: the request id the backend received
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		seenID.Store(r.Header.Get(obs.RequestIDHeader))
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"ok":true}`+"\n")
	}))
	defer backend.Close()
	g := newTestGateway(t, Config{Backends: []string{backend.URL}})

	body := "hypergraph 3 1\n0 1 2\n"

	// No client id: the gateway mints one, forwards it, and echoes it.
	rec := postReduce(t, g, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	minted := rec.Header().Get(obs.RequestIDHeader)
	if !obs.ValidRequestID(minted) {
		t.Fatalf("gateway echoed invalid minted id %q", minted)
	}
	if got, _ := seenID.Load().(string); got != minted {
		t.Fatalf("backend saw id %q, gateway echoed %q", got, minted)
	}

	// A valid client id survives the proxy hop untouched.
	req := httptest.NewRequest(http.MethodPost, "/v1/reduce?k=2", strings.NewReader(body))
	req.Header.Set(obs.RequestIDHeader, "gw-test-0001")
	rr := httptest.NewRecorder()
	g.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body)
	}
	if got := rr.Header().Get(obs.RequestIDHeader); got != "gw-test-0001" {
		t.Fatalf("client id not echoed: got %q", got)
	}
	if got, _ := seenID.Load().(string); got != "gw-test-0001" {
		t.Fatalf("backend saw id %q, want the client's gw-test-0001", got)
	}

	// An invalid client id is replaced before it reaches the backend.
	req = httptest.NewRequest(http.MethodPost, "/v1/reduce?k=2", strings.NewReader(body))
	req.Header.Set(obs.RequestIDHeader, "not a valid id!")
	rr = httptest.NewRecorder()
	g.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body)
	}
	replaced := rr.Header().Get(obs.RequestIDHeader)
	if replaced == "not a valid id!" || !obs.ValidRequestID(replaced) {
		t.Fatalf("invalid id not replaced: got %q", replaced)
	}
	if got, _ := seenID.Load().(string); got != replaced {
		t.Fatalf("backend saw id %q, gateway echoed %q", got, replaced)
	}
}

func TestGatewayMetricsEndpoint(t *testing.T) {
	b1, b2 := newSolveBackend(t, "b1"), newSolveBackend(t, "b2")
	g := newTestGateway(t, Config{Backends: []string{b1.srv.URL, b2.srv.URL}})

	body := "hypergraph 3 1\n0 1 2\n"
	if rec := postReduce(t, g, body); rec.Code != http.StatusOK {
		t.Fatalf("reduce status %d: %s", rec.Code, rec.Body)
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q, want the 0.0.4 text exposition", ct)
	}
	text := rec.Body.String()
	for _, want := range []string{
		"# TYPE cfgate_requests_total counter",
		"# TYPE cfgate_proxy_duration_seconds histogram",
		"cfgate_requests_total 2", // the reduce above plus this scrape
		"cfgate_healthy_backends 2",
		`cfgate_backend_healthy{backend="` + b1.srv.URL + `"} 1`,
		`cfgate_backend_healthy{backend="` + b2.srv.URL + `"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Exactly one backend served the reduce; its proxy histogram counted it.
	count := strings.Count(text, "cfgate_proxy_duration_seconds_count")
	if count != 2 {
		t.Errorf("want one proxy histogram per backend (2), found %d _count series", count)
	}
}

package cluster

// balancer.go turns "who could serve this" into "who serves this":
// per-backend in-flight tracking, the three routing policies, and the
// attempt plan a proxied request walks. Affinity is the default — the
// ring owner first so repeated instances hit its parsed-instance cache
// — with saturation spilling onto the least-loaded healthy backend
// rather than queueing behind a hot key.

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Policy selects how the gateway picks a backend.
type Policy string

const (
	// PolicyAffinity routes by the content-hash ring (cache affinity),
	// spilling to the least-loaded healthy backend when the owner is
	// saturated or down.
	PolicyAffinity Policy = "affinity"
	// PolicyRoundRobin rotates over healthy backends, ignoring the ring —
	// the control arm cache-hit comparisons run against.
	PolicyRoundRobin Policy = "round-robin"
	// PolicyLeastLoaded always picks the healthy backend with the fewest
	// gateway-tracked in-flight requests.
	PolicyLeastLoaded Policy = "least-loaded"
)

// ParsePolicy maps the -policy flag spelling onto a Policy; the empty
// string selects PolicyAffinity.
func ParsePolicy(s string) (Policy, bool) {
	switch Policy(s) {
	case "", PolicyAffinity:
		return PolicyAffinity, true
	case PolicyRoundRobin:
		return PolicyRoundRobin, true
	case PolicyLeastLoaded:
		return PolicyLeastLoaded, true
	}
	return "", false
}

// loadTracker counts in-flight proxied requests per backend. The counts
// are the gateway's own view (not the backend's total load), which is
// exactly what least-loaded spill needs: relative pressure from here.
type loadTracker struct {
	mu     sync.Mutex
	counts map[string]*atomic.Int64
}

func newLoadTracker(backends []string) *loadTracker {
	lt := &loadTracker{counts: make(map[string]*atomic.Int64, len(backends))}
	for _, b := range backends {
		lt.counts[b] = new(atomic.Int64)
	}
	return lt
}

// acquire marks one request in flight on backend and returns its
// release.
func (lt *loadTracker) acquire(backend string) func() {
	c := lt.counter(backend)
	c.Add(1)
	var once sync.Once
	return func() { once.Do(func() { c.Add(-1) }) }
}

func (lt *loadTracker) counter(backend string) *atomic.Int64 {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	c, ok := lt.counts[backend]
	if !ok {
		c = new(atomic.Int64)
		lt.counts[backend] = c
	}
	return c
}

// load returns the in-flight count of backend.
func (lt *loadTracker) load(backend string) int64 {
	return lt.counter(backend).Load()
}

// balancer composes ring, health and load into attempt plans.
type balancer struct {
	ring   *Ring
	health *health
	loads  *loadTracker
	// saturation is the per-backend in-flight count past which affinity
	// spills; 0 disables spilling.
	saturation int64
	rr         atomic.Uint64
}

// healthyBackends returns the admitted backends, sorted.
func (b *balancer) healthyBackends() []string {
	var out []string
	for _, name := range b.ring.Backends() {
		if b.health.healthy(name) {
			out = append(out, name)
		}
	}
	return out
}

// plan returns the ordered backends one request should attempt: the
// preferred backend per policy first, then fallbacks. Unhealthy
// backends are planned last rather than dropped — with every backend
// ejected, trying one beats refusing outright (the probe may simply not
// have caught a recovery yet).
func (b *balancer) plan(key string, policy Policy) []string {
	all := b.ring.Backends()
	if len(all) == 0 {
		return nil
	}
	var ordered []string
	switch policy {
	case PolicyRoundRobin:
		start := int(b.rr.Add(1)-1) % len(all)
		for i := range all {
			ordered = append(ordered, all[(start+i)%len(all)])
		}
	case PolicyLeastLoaded:
		ordered = append(ordered, all...)
		sort.SliceStable(ordered, func(i, j int) bool {
			return b.loads.load(ordered[i]) < b.loads.load(ordered[j])
		})
	default: // PolicyAffinity
		ordered = b.ring.Candidates(key)
		// A saturated owner spills: the least-loaded other backend leads
		// and the owner shifts to second (still the cache-affine retry if
		// the spill target fails).
		if b.saturation > 0 && len(ordered) > 1 &&
			(!b.health.healthy(ordered[0]) || b.loads.load(ordered[0]) >= b.saturation) {
			min := 1
			for i := 2; i < len(ordered); i++ {
				if b.loads.load(ordered[i]) < b.loads.load(ordered[min]) {
					min = i
				}
			}
			target := ordered[min]
			copy(ordered[1:min+1], ordered[0:min])
			ordered[0] = target
		}
	}
	// Stable partition: healthy candidates keep their order up front,
	// ejected ones trail as a last resort.
	healthy := make([]string, 0, len(ordered))
	var ejected []string
	for _, name := range ordered {
		if b.health.healthy(name) {
			healthy = append(healthy, name)
		} else {
			ejected = append(ejected, name)
		}
	}
	return append(healthy, ejected...)
}

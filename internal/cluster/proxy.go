package cluster

// proxy.go is the gateway's HTTP surface: it terminates the client
// request, derives the instance cache key from the buffered body (the
// same sha256 the backend's solver would compute — forwarded in
// X-Pslocal-Instance-Key so the backend skips re-hashing), walks the
// balancer's attempt plan with bounded retry, and reports the serving
// backend in X-Pslocal-Backend. Every proxied endpoint is idempotent by
// content-hash semantics — solves are pure functions of the body and
// job submission dedupes on the job id — which is what makes retrying
// against the next candidate safe.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/textproto"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pslocal/internal/graphio"
	"pslocal/internal/obs"
	"pslocal/internal/solver"
)

// Headers of the gateway protocol.
const (
	// HeaderInstanceKey carries the precomputed instance cache key from
	// gateway to backend (trusted: only a gateway that derived the key
	// from the same bytes should set it).
	HeaderInstanceKey = "X-Pslocal-Instance-Key"
	// HeaderBackend reports which backend served a proxied request back
	// to the client.
	HeaderBackend = "X-Pslocal-Backend"
)

// Config configures a Gateway.
type Config struct {
	// Backends are the cfserve base URLs ("http://host:port", no
	// trailing slash required). At least one is required.
	Backends []string
	// Policy picks the routing policy (default PolicyAffinity).
	Policy Policy
	// Replicas is the ring's virtual-node count per backend (default
	// DefaultReplicas).
	Replicas int
	// Retries is how many additional candidates a failed idempotent
	// request tries (default 2; 0 disables retry).
	Retries int
	// MaxBodyBytes bounds buffered request bodies (default 64 MiB).
	MaxBodyBytes int64
	// BackendInflight is the per-backend in-flight count past which
	// affinity spills to the least-loaded backend (0 = never spill).
	BackendInflight int
	// Probe configures health checking.
	Probe ProbeConfig
	// Transport overrides the proxy transport (tests; nil = default).
	Transport http.RoundTripper
	// Logger receives structured request logs (nil = slog.Default).
	Logger *slog.Logger
	// SlowThreshold is the proxied-request duration at which a
	// structured warning is logged (0 disables slow logging).
	SlowThreshold time.Duration
}

// Gateway routes requests across the configured backends. Construct
// with New, start probing with Run, serve through ServeHTTP.
type Gateway struct {
	cfg    Config
	ring   *Ring
	hlth   *health
	bal    *balancer
	loads  *loadTracker
	client *http.Client
	mux    *http.ServeMux
	start  time.Time
	logger *slog.Logger

	// met owns the request counters (shared by /statz and /metrics) and
	// the per-backend proxy series. Built after the ring in New.
	met *gatewayMetrics

	proxiedMu sync.Mutex
	proxied   map[string]*atomic.Uint64
}

// New validates cfg and builds the gateway.
func New(cfg Config) (*Gateway, error) {
	var backends []string
	for _, b := range cfg.Backends {
		b = strings.TrimRight(strings.TrimSpace(b), "/")
		if b == "" {
			continue
		}
		if !strings.HasPrefix(b, "http://") && !strings.HasPrefix(b, "https://") {
			return nil, fmt.Errorf("cluster: backend %q is not an http(s) URL", b)
		}
		backends = append(backends, b)
	}
	if len(backends) == 0 {
		return nil, errors.New("cluster: no backends configured")
	}
	policy, ok := ParsePolicy(string(cfg.Policy))
	if !ok {
		return nil, fmt.Errorf("cluster: unknown policy %q (want affinity|round-robin|least-loaded)", cfg.Policy)
	}
	cfg.Policy = policy
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	ring := NewRing(backends, cfg.Replicas)
	hlth := newHealth(ring.Backends(), cfg.Probe, cfg.Transport)
	loads := newLoadTracker(ring.Backends())
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	g := &Gateway{
		cfg:    cfg,
		ring:   ring,
		hlth:   hlth,
		loads:  loads,
		bal:    &balancer{ring: ring, health: hlth, loads: loads, saturation: int64(cfg.BackendInflight)},
		client: &http.Client{Transport: cfg.Transport}, // no client timeout: solves are long; contexts bound them
		mux:    http.NewServeMux(),
		start:  time.Now(),
		logger: logger,
		proxied: func() map[string]*atomic.Uint64 {
			m := make(map[string]*atomic.Uint64, len(backends))
			for _, b := range backends {
				m[b] = new(atomic.Uint64)
			}
			return m
		}(),
	}
	g.met = newGatewayMetrics(g)
	g.mux.HandleFunc("POST /v1/reduce", g.solveHandler(solver.KindHypergraph, true))
	g.mux.HandleFunc("POST /v1/maxis", g.solveHandler(solver.KindGraph, true))
	g.mux.HandleFunc("POST /v1/jobs", g.solveHandler(solver.KindHypergraph, false))
	g.mux.HandleFunc("GET /v1/jobs", g.handleJobList)
	g.mux.HandleFunc("GET /v1/jobs/{id}", g.handleJobByID)
	g.mux.HandleFunc("DELETE /v1/jobs/{id}", g.handleJobByID)
	g.mux.HandleFunc("GET /v1/jobs/{id}/events", g.handleJobByID)
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /readyz", g.handleReadyz)
	g.mux.HandleFunc("GET /statz", g.handleStatz)
	g.mux.Handle("GET /metrics", g.met.reg.Handler())
	return g, nil
}

// Ring exposes the routing ring (statz, tests).
func (g *Gateway) Ring() *Ring { return g.ring }

// Run drives the health prober until ctx is done (callers run it in a
// goroutine next to the HTTP server).
func (g *Gateway) Run(ctx context.Context) { g.hlth.run(ctx) }

// ServeHTTP implements http.Handler. Requests no pattern matches stay
// with the mux's own fallback — which distinguishes unknown paths (404)
// from known paths hit with the wrong method (405 + Allow) — through a
// rewriting writer that turns its plain-text body into the gateway's
// JSON error envelope.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.met.requests.Inc()
	// Every request gets a correlation id here, at the cluster's edge: a
	// valid caller-supplied X-Pslocal-Request-Id survives, anything else
	// is replaced with a fresh one. Setting it on r.Header makes it ride
	// every proxy attempt (it is end-to-end, not hop-by-hop), and the
	// response echoes it whether a backend answers or the gateway
	// synthesizes the error.
	rid := obs.EnsureRequestID(r.Header.Get(obs.RequestIDHeader))
	r.Header.Set(obs.RequestIDHeader, rid)
	w.Header().Set(obs.RequestIDHeader, rid)
	if _, pattern := g.mux.Handler(r); pattern == "" {
		g.met.failures.Inc()
		g.mux.ServeHTTP(&jsonErrorRewriter{w: w}, r)
		return
	}
	g.mux.ServeHTTP(w, r)
}

// jsonErrorRewriter wraps a ResponseWriter so the ServeMux's built-in
// plain-text 404/405 bodies come out as the JSON error envelope,
// preserving the status and the 405's Allow header (same shape as
// cfserve's fallback rewriting, so gateway and backend errors match).
type jsonErrorRewriter struct {
	w     http.ResponseWriter
	wrote bool
}

func (j *jsonErrorRewriter) Header() http.Header { return j.w.Header() }

func (j *jsonErrorRewriter) WriteHeader(status int) {
	j.w.Header().Set("Content-Type", "application/json")
	j.w.WriteHeader(status)
}

func (j *jsonErrorRewriter) Write(p []byte) (int, error) {
	if !j.wrote {
		j.wrote = true
		body, err := json.Marshal(map[string]string{"error": strings.TrimSpace(string(p))})
		if err != nil {
			return 0, err
		}
		if _, err := j.w.Write(append(body, '\n')); err != nil {
			return 0, err
		}
	}
	// Report the caller's bytes as consumed either way: the envelope
	// replaces the text body rather than appending to it.
	return len(p), nil
}

// writeError emits the service's JSON error envelope.
func (g *Gateway) writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// markProxied counts one served request on backend.
func (g *Gateway) markProxied(backend string) {
	g.proxiedMu.Lock()
	c, ok := g.proxied[backend]
	if !ok {
		c = new(atomic.Uint64)
		g.proxied[backend] = c
	}
	g.proxiedMu.Unlock()
	c.Add(1)
}

// observeAttempt records one upstream attempt's latency on the
// backend's proxy-duration series.
func (g *Gateway) observeAttempt(backend string, d time.Duration) {
	if h, ok := g.met.proxy[backend]; ok {
		h.Observe(d)
	}
}

// countRetry counts an attempt the backend failed or declined (the
// request moved to the next candidate, or ran out of them).
func (g *Gateway) countRetry(backend string) {
	if c, ok := g.met.retries[backend]; ok {
		c.Inc()
	}
}

// logSlow emits a structured warning for proxied requests at or above
// the configured slow threshold (0 disables). backend is "" when no
// candidate answered.
func (g *Gateway) logSlow(r *http.Request, backend string, d time.Duration) {
	if g.cfg.SlowThreshold <= 0 || d < g.cfg.SlowThreshold {
		return
	}
	g.logger.Warn("slow proxied request",
		"path", r.URL.Path,
		"backend", backend,
		"dur_ms", float64(d.Microseconds())/1000,
		"request_id", r.Header.Get(obs.RequestIDHeader))
}

// retryableStatus reports a response worth rerouting: the backend is
// shedding (queue full, draining) or the hop in front of it broke.
func retryableStatus(code int) bool {
	return code == http.StatusBadGateway ||
		code == http.StatusServiceUnavailable ||
		code == http.StatusGatewayTimeout
}

// solveHandler proxies one of the POST endpoints. The body is buffered
// (bounded) both to derive the routing key and to make retry possible;
// withKey forwards the derived instance key to the backend's keyed
// readers (the job endpoint routes by the same key but the backend
// derives its own job identity, so the header stays off there).
func (g *Gateway) solveHandler(kind string, withKey bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		format, err := graphio.ParseFormat(r.URL.Query().Get("format"))
		if err != nil {
			g.met.failures.Inc()
			g.writeError(w, http.StatusBadRequest, err)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
		if err != nil {
			g.met.failures.Inc()
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				g.writeError(w, http.StatusRequestEntityTooLarge, err)
			} else {
				g.writeError(w, http.StatusBadRequest, err)
			}
			return
		}
		key := solver.InstanceKey(kind, format.String(), body)
		var hdr http.Header
		if withKey {
			hdr = http.Header{HeaderInstanceKey: {key}}
		}
		plan := g.bal.plan(key, g.cfg.Policy)
		attempts := g.cfg.Retries + 1
		if attempts > len(plan) {
			attempts = len(plan)
		}
		g.forward(w, r, plan[:attempts], hdr, body, nil)
	}
}

// handleJobByID proxies GET/DELETE /v1/jobs/{id} and the SSE events
// stream. The job id is a different hash than the instance key, so the
// backend that ran the job is not derivable here — the id's ring order
// gives a deterministic search sequence, a 404 moves to the next
// backend (with a shared store any node can answer via adoption; without
// one, the scan finds the runner), and every healthy backend is tried
// before giving up.
func (g *Gateway) handleJobByID(w http.ResponseWriter, r *http.Request) {
	plan := g.bal.plan(r.PathValue("id"), PolicyAffinity)
	notFound := func(resp *http.Response) bool { return resp.StatusCode == http.StatusNotFound }
	g.forward(w, r, plan, nil, nil, notFound)
}

// hopByHop are the connection-scoped request headers a proxy must not
// forward (RFC 9110 §7.6.1); Host and Content-Length belong to the
// transport, and the instance-key header is the gateway's to set — a
// client-supplied copy is untrusted and stripped.
var hopByHop = map[string]bool{
	"Connection":          true,
	"Keep-Alive":          true,
	"Proxy-Authenticate":  true,
	"Proxy-Authorization": true,
	"Te":                  true,
	"Trailer":             true,
	"Transfer-Encoding":   true,
	"Upgrade":             true,
	"Host":                true,
	"Content-Length":      true,
	HeaderInstanceKey:     true,
}

// copyClientHeaders forwards the client's request headers onto the
// outbound request, dropping hop-by-hop headers (including any named by
// Connection) so end-to-end metadata — Accept, Last-Event-ID on SSE
// reconnects, auth headers a deployment adds — survives the proxy hop.
func copyClientHeaders(dst, src http.Header) {
	var connDrop []string
	for _, v := range src.Values("Connection") {
		for _, name := range strings.Split(v, ",") {
			if name = strings.TrimSpace(name); name != "" {
				connDrop = append(connDrop, textproto.CanonicalMIMEHeaderKey(name))
			}
		}
	}
	for k, vs := range src {
		if hopByHop[k] || slices.Contains(connDrop, k) {
			continue
		}
		dst[k] = append([]string(nil), vs...)
	}
}

// forward walks the attempt plan: transport failures eject passively
// and move on, retryable statuses reroute, 404s reroute when skipNext
// says so, and the first real answer streams back to the client tagged
// with its backend. A nil body means "no body to resend" (GET/DELETE).
// The client's end-to-end headers ride along on every attempt, with hdr
// overlaid on top (the gateway-owned instance key).
func (g *Gateway) forward(w http.ResponseWriter, r *http.Request, plan []string, hdr http.Header, body []byte, skipNext func(*http.Response) bool) {
	if len(plan) == 0 {
		g.met.failures.Inc()
		w.Header().Set("Retry-After", "1")
		g.writeError(w, http.StatusServiceUnavailable, errors.New("cluster: no backends available"))
		return
	}
	started := time.Now()
	var lastStatus int
	var lastResp *http.Response
	closeLast := func() {
		if lastResp != nil {
			io.Copy(io.Discard, lastResp.Body)
			lastResp.Body.Close()
			lastResp = nil
		}
	}
	defer closeLast()
	for i, backend := range plan {
		if i > 0 {
			g.met.rerouted.Inc()
		}
		release := g.loads.acquire(backend)
		var reqBody io.Reader
		if body != nil {
			reqBody = bytes.NewReader(body)
		}
		target := backend + r.URL.Path
		if r.URL.RawQuery != "" {
			target += "?" + r.URL.RawQuery
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, target, reqBody)
		if err != nil {
			release()
			g.met.failures.Inc()
			g.writeError(w, http.StatusInternalServerError, err)
			return
		}
		copyClientHeaders(req.Header, r.Header)
		for k, vs := range hdr {
			req.Header[k] = vs
		}
		attemptStart := time.Now()
		resp, err := g.client.Do(req)
		g.observeAttempt(backend, time.Since(attemptStart))
		if err != nil {
			release()
			// The client went away: not the backend's fault, stop here.
			if r.Context().Err() != nil {
				g.met.failures.Inc()
				return
			}
			g.hlth.reportFailure(backend)
			g.countRetry(backend)
			lastStatus = http.StatusBadGateway
			continue
		}
		if retryableStatus(resp.StatusCode) || (skipNext != nil && skipNext(resp) && i < len(plan)-1) {
			// Keep the response: if every candidate declines, the last
			// answer (its status and body) is more useful than a generic
			// 502 — a unanimous 404 must stay a 404.
			closeLast()
			lastStatus = resp.StatusCode
			lastResp = resp
			release()
			g.countRetry(backend)
			continue
		}
		g.hlth.reportSuccess(backend)
		g.markProxied(backend)
		g.copyResponse(w, resp, backend)
		release()
		g.logSlow(r, backend, time.Since(started))
		return
	}
	// Every candidate failed or declined. Relay the last declined
	// response verbatim when there is one; otherwise synthesize.
	g.met.failures.Inc()
	g.logSlow(r, "", time.Since(started))
	if lastResp != nil {
		resp := lastResp
		lastResp = nil
		g.copyResponse(w, resp, "")
		return
	}
	status := http.StatusBadGateway
	if lastStatus == http.StatusServiceUnavailable {
		status = lastStatus
		w.Header().Set("Retry-After", "1")
	}
	g.writeError(w, status, errors.New("cluster: all backends failed"))
}

// copyResponse relays resp to the client, flushing per write so SSE
// streams pass through live. backend tags the response ("" leaves the
// header off for synthesized relays).
func (g *Gateway) copyResponse(w http.ResponseWriter, resp *http.Response, backend string) {
	defer resp.Body.Close()
	h := w.Header()
	for k, vs := range resp.Header {
		h[k] = vs
	}
	if backend != "" {
		h.Set(HeaderBackend, backend)
	}
	w.WriteHeader(resp.StatusCode)
	var dst io.Writer = w
	if f, ok := w.(http.Flusher); ok {
		dst = &flushWriter{w: w, f: f}
	}
	io.Copy(dst, resp.Body)
}

// flushWriter flushes after every write — what keeps proxied SSE events
// flowing instead of pooling in the gateway's buffers.
type flushWriter struct {
	w io.Writer
	f http.Flusher
}

func (fw *flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	fw.f.Flush()
	return n, err
}

// handleJobList fans GET /v1/jobs out to every healthy backend and
// merges the answers, deduplicating by job id (a job may be visible on
// several nodes through a shared store — the first answer wins).
func (g *Gateway) handleJobList(w http.ResponseWriter, r *http.Request) {
	backends := g.bal.healthyBackends()
	if len(backends) == 0 {
		backends = g.ring.Backends()
	}
	type listResp struct {
		backend string
		jobs    []json.RawMessage
		err     error
	}
	results := make([]listResp, len(backends))
	var wg sync.WaitGroup
	for i, backend := range backends {
		wg.Add(1)
		go func(i int, backend string) {
			defer wg.Done()
			target := backend + r.URL.Path
			if r.URL.RawQuery != "" {
				target += "?" + r.URL.RawQuery
			}
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, target, nil)
			if err != nil {
				results[i] = listResp{backend: backend, err: err}
				return
			}
			resp, err := g.client.Do(req)
			if err != nil {
				g.hlth.reportFailure(backend)
				results[i] = listResp{backend: backend, err: err}
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				io.Copy(io.Discard, resp.Body)
				results[i] = listResp{backend: backend, err: fmt.Errorf("status %d", resp.StatusCode)}
				return
			}
			var doc struct {
				Jobs []json.RawMessage `json:"jobs"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
				results[i] = listResp{backend: backend, err: err}
				return
			}
			g.hlth.reportSuccess(backend)
			results[i] = listResp{backend: backend, jobs: doc.Jobs}
		}(i, backend)
	}
	wg.Wait()

	seen := make(map[string]bool)
	var merged []json.RawMessage
	answered := 0
	for _, res := range results {
		if res.err != nil {
			continue
		}
		answered++
		for _, raw := range res.jobs {
			var probe struct {
				Job struct {
					ID string `json:"id"`
				} `json:"job"`
			}
			if err := json.Unmarshal(raw, &probe); err != nil || probe.Job.ID == "" || seen[probe.Job.ID] {
				continue
			}
			seen[probe.Job.ID] = true
			merged = append(merged, raw)
		}
	}
	if answered == 0 {
		g.met.failures.Inc()
		g.writeError(w, http.StatusBadGateway, errors.New("cluster: no backend answered the list"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"count": len(merged), "jobs": merged})
}

// handleHealthz is the gateway's own liveness.
func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"status": "ok", "service": "cfgate"})
}

// handleReadyz reports readiness: at least one healthy backend.
func (g *Gateway) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	healthy := g.bal.healthyBackends()
	w.Header().Set("Content-Type", "application/json")
	if len(healthy) == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"status": "no healthy backends"})
		return
	}
	json.NewEncoder(w).Encode(map[string]any{"status": "ready", "healthy_backends": len(healthy)})
}

// BackendStatz is one backend's statz row.
type BackendStatz struct {
	BackendHealth
	InFlight int64  `json:"in_flight"`
	Proxied  uint64 `json:"proxied"`
}

// GatewayStats is the gateway's /statz document.
type GatewayStats struct {
	Service  string         `json:"service"`
	Policy   Policy         `json:"policy"`
	UptimeMS float64        `json:"uptime_ms"`
	Requests uint64         `json:"requests"`
	Rerouted uint64         `json:"rerouted"`
	Failures uint64         `json:"failures"`
	Backends []BackendStatz `json:"backends"`
}

// Stats snapshots the gateway (the /statz payload).
func (g *Gateway) Stats() GatewayStats {
	hs := g.hlth.snapshot()
	names := make([]string, 0, len(hs))
	for name := range hs {
		names = append(names, name)
	}
	sort.Strings(names)
	rows := make([]BackendStatz, 0, len(names))
	g.proxiedMu.Lock()
	for _, name := range names {
		var proxied uint64
		if c, ok := g.proxied[name]; ok {
			proxied = c.Load()
		}
		rows = append(rows, BackendStatz{
			BackendHealth: hs[name],
			InFlight:      g.loads.load(name),
			Proxied:       proxied,
		})
	}
	g.proxiedMu.Unlock()
	return GatewayStats{
		Service:  "cfgate",
		Policy:   g.cfg.Policy,
		UptimeMS: float64(time.Since(g.start).Microseconds()) / 1000,
		Requests: g.met.requests.Value(),
		Rerouted: g.met.rerouted.Value(),
		Failures: g.met.failures.Value(),
		Backends: rows,
	}
}

// handleStatz serves the stats document.
func (g *Gateway) handleStatz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(g.Stats())
}

package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pslocal/internal/graphio"
	"pslocal/internal/solver"
)

func TestRingDeterministicAndComplete(t *testing.T) {
	names := []string{"http://c", "http://a", "http://b"}
	r1 := NewRing(names, 64)
	r2 := NewRing([]string{"http://b", "http://a", "http://c"}, 64)
	for _, key := range []string{"k1", "k2", "deadbeef", ""} {
		if r1.Owner(key) != r2.Owner(key) {
			t.Fatalf("owner of %q depends on input order", key)
		}
		c := r1.Candidates(key)
		if len(c) != 3 {
			t.Fatalf("candidates(%q) = %v, want all 3 backends", key, c)
		}
		seen := map[string]bool{}
		for _, b := range c {
			seen[b] = true
		}
		if len(seen) != 3 {
			t.Fatalf("candidates(%q) repeat: %v", key, c)
		}
		if c[0] != r1.Owner(key) {
			t.Fatalf("candidates(%q)[0] = %s, owner = %s", key, c[0], r1.Owner(key))
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	r := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for b, n := range counts {
		if n < 500 { // perfectly even would be 1000
			t.Errorf("backend %s owns only %d/3000 keys", b, n)
		}
	}
}

func TestRingStabilityUnderRemoval(t *testing.T) {
	full := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	partial := NewRing([]string{"http://a", "http://b"}, 0)
	moved := 0
	const n = 2000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		if full.Owner(key) != "http://c" && full.Owner(key) != partial.Owner(key) {
			moved++
		}
	}
	if moved > n/10 {
		t.Errorf("removing one backend moved %d/%d keys owned by others", moved, n)
	}
}

func TestHealthEjectionAndReadmission(t *testing.T) {
	h := newHealth([]string{"b1", "b2"}, ProbeConfig{FailAfter: 2, Interval: 10 * time.Millisecond}, nil)
	if !h.healthy("b1") {
		t.Fatal("backends must start healthy")
	}
	h.reportFailure("b1")
	if !h.healthy("b1") {
		t.Fatal("one failure must not eject at FailAfter=2")
	}
	h.reportFailure("b1")
	if h.healthy("b1") {
		t.Fatal("b1 should be ejected after 2 consecutive failures")
	}
	if snap := h.snapshot()["b1"]; snap.Ejections != 1 {
		t.Fatalf("ejections = %d, want 1", snap.Ejections)
	}
	// Failures while ejected grow the backoff; success re-admits.
	h.reportFailure("b1")
	h.reportSuccess("b1")
	if !h.healthy("b1") {
		t.Fatal("success must re-admit")
	}
	if snap := h.snapshot()["b1"]; snap.Fails != 0 {
		t.Fatalf("fails = %d after success, want 0", snap.Fails)
	}
	// A success in between resets the consecutive counter.
	h.reportFailure("b2")
	h.reportSuccess("b2")
	h.reportFailure("b2")
	if !h.healthy("b2") {
		t.Fatal("non-consecutive failures must not eject")
	}
}

func TestHealthProberEjectsAndReadmits(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			t.Errorf("probe hit %s, want /readyz", r.URL.Path)
		}
		if !ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer backend.Close()

	h := newHealth([]string{backend.URL}, ProbeConfig{
		Interval:   5 * time.Millisecond,
		FailAfter:  2,
		MaxBackoff: 20 * time.Millisecond,
	}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); h.run(ctx) }()

	waitFor := func(want bool, msg string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for h.healthy(backend.URL) != want {
			if time.Now().After(deadline) {
				t.Fatal(msg)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	ready.Store(false)
	waitFor(false, "prober never ejected a 503ing backend")
	ready.Store(true)
	waitFor(true, "prober never re-admitted a recovered backend")
	cancel()
	<-done
}

// solveBackend is a stub cfserve: it records instance-key headers and
// serves a canned JSON body, optionally refusing with 503.
type solveBackend struct {
	name     string
	srv      *httptest.Server
	hits     atomic.Int64
	lastKey  atomic.Value // string
	refusing atomic.Bool
}

func newSolveBackend(t *testing.T, name string) *solveBackend {
	t.Helper()
	b := &solveBackend{name: name}
	b.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		if b.refusing.Load() {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		b.hits.Add(1)
		b.lastKey.Store(r.Header.Get(HeaderInstanceKey))
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"served_by":%q}`+"\n", b.name)
	}))
	t.Cleanup(b.srv.Close)
	return b
}

func newTestGateway(t *testing.T, cfg Config) *Gateway {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func postReduce(t *testing.T, g *Gateway, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/reduce?k=2", strings.NewReader(body))
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, req)
	return rec
}

func TestGatewayAffinityPinsInstances(t *testing.T) {
	b1, b2, b3 := newSolveBackend(t, "b1"), newSolveBackend(t, "b2"), newSolveBackend(t, "b3")
	g := newTestGateway(t, Config{Backends: []string{b1.srv.URL, b2.srv.URL, b3.srv.URL}})

	body := "hypergraph 3 1\n0 1 2\n"
	var first string
	for i := 0; i < 8; i++ {
		rec := postReduce(t, g, body)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
		backend := rec.Header().Get(HeaderBackend)
		if backend == "" {
			t.Fatal("response missing backend header")
		}
		if first == "" {
			first = backend
		} else if backend != first {
			t.Fatalf("same body routed to %s then %s", first, backend)
		}
	}
	// The forwarded key matches the solver's own derivation.
	wantKey := solver.InstanceKey(solver.KindHypergraph, graphio.FormatAuto.String(), []byte(body))
	total := b1.hits.Load() + b2.hits.Load() + b3.hits.Load()
	if total != 8 {
		t.Fatalf("backends saw %d requests, want 8", total)
	}
	for _, b := range []*solveBackend{b1, b2, b3} {
		if b.hits.Load() > 0 {
			if got, _ := b.lastKey.Load().(string); got != wantKey {
				t.Fatalf("backend %s saw key %q, want %q", b.name, got, wantKey)
			}
		}
	}
}

func TestGatewayRoundRobinSpreads(t *testing.T) {
	b1, b2 := newSolveBackend(t, "b1"), newSolveBackend(t, "b2")
	g := newTestGateway(t, Config{
		Backends: []string{b1.srv.URL, b2.srv.URL},
		Policy:   PolicyRoundRobin,
	})
	body := "hypergraph 3 1\n0 1 2\n"
	for i := 0; i < 6; i++ {
		if rec := postReduce(t, g, body); rec.Code != http.StatusOK {
			t.Fatalf("status %d", rec.Code)
		}
	}
	if b1.hits.Load() != 3 || b2.hits.Load() != 3 {
		t.Fatalf("round-robin split %d/%d, want 3/3", b1.hits.Load(), b2.hits.Load())
	}
}

func TestGatewayRetriesRefusingBackend(t *testing.T) {
	b1, b2, b3 := newSolveBackend(t, "b1"), newSolveBackend(t, "b2"), newSolveBackend(t, "b3")
	g := newTestGateway(t, Config{Backends: []string{b1.srv.URL, b2.srv.URL, b3.srv.URL}, Retries: 2})

	body := "hypergraph 3 1\n0 1 2\n"
	rec := postReduce(t, g, body)
	owner := rec.Header().Get(HeaderBackend)
	byURL := map[string]*solveBackend{b1.srv.URL: b1, b2.srv.URL: b2, b3.srv.URL: b3}

	// The affinity owner starts refusing (draining): requests reroute to
	// the next candidate with zero client-visible failures.
	byURL[owner].refusing.Store(true)
	rec = postReduce(t, g, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d after owner started refusing: %s", rec.Code, rec.Body)
	}
	if next := rec.Header().Get(HeaderBackend); next == owner || next == "" {
		t.Fatalf("rerouted to %q, want a different backend", next)
	}
	if g.Stats().Rerouted == 0 {
		t.Fatal("reroute not counted")
	}
}

func TestGatewayRetriesDeadBackendAndEjects(t *testing.T) {
	b1, b2, b3 := newSolveBackend(t, "b1"), newSolveBackend(t, "b2"), newSolveBackend(t, "b3")
	g := newTestGateway(t, Config{
		Backends: []string{b1.srv.URL, b2.srv.URL, b3.srv.URL},
		Retries:  2,
		Probe:    ProbeConfig{FailAfter: 1},
	})
	body := "hypergraph 3 1\n0 1 2\n"
	owner := postReduce(t, g, body).Header().Get(HeaderBackend)
	byURL := map[string]*solveBackend{b1.srv.URL: b1, b2.srv.URL: b2, b3.srv.URL: b3}
	byURL[owner].srv.Close() // SIGKILL equivalent: connection refused

	rec := postReduce(t, g, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d after owner died: %s", rec.Code, rec.Body)
	}
	// The transport failure ejected the owner passively (FailAfter=1), so
	// the next request skips it outright.
	if g.hlth.healthy(owner) {
		t.Fatal("dead backend still admitted after a transport failure")
	}
	rec = postReduce(t, g, body)
	if rec.Code != http.StatusOK || rec.Header().Get(HeaderBackend) == owner {
		t.Fatalf("status %d backend %q: dead owner not skipped", rec.Code, rec.Header().Get(HeaderBackend))
	}
}

func TestGatewayAllBackendsDown(t *testing.T) {
	b := newSolveBackend(t, "b1")
	g := newTestGateway(t, Config{Backends: []string{b.srv.URL}, Retries: 2})
	b.refusing.Store(true)
	rec := postReduce(t, g, "hypergraph 2 1\n0 1\n")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d with every backend refusing, want 503", rec.Code)
	}
	// The backend's own 503 (with its Retry-After) is relayed verbatim.
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("relayed 503 lost its Retry-After header")
	}
	if g.Stats().Failures == 0 {
		t.Fatal("exhausted plan not counted as a failure")
	}
}

func TestGatewayJobGet404Failover(t *testing.T) {
	const id = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
	mkBackend := func(has bool) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/readyz" {
				w.WriteHeader(http.StatusOK)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			if !has {
				w.WriteHeader(http.StatusNotFound)
				fmt.Fprintln(w, `{"error":"jobs: no such job"}`)
				return
			}
			fmt.Fprintf(w, `{"job":{"id":%q,"state":"done"}}`+"\n", id)
		}))
	}
	misses1, misses2, owner := mkBackend(false), mkBackend(false), mkBackend(true)
	defer misses1.Close()
	defer misses2.Close()
	defer owner.Close()
	g := newTestGateway(t, Config{Backends: []string{misses1.URL, misses2.URL, owner.URL}})

	req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+id, nil)
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want the 404s skipped: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get(HeaderBackend) != owner.URL {
		t.Fatalf("served by %q, want the owning backend", rec.Header().Get(HeaderBackend))
	}

	// Unknown everywhere stays a 404 for the client.
	req = httptest.NewRequest(http.MethodGet, "/v1/jobs/"+strings.Repeat("b", 64), nil)
	rec = httptest.NewRecorder()
	gAllMiss := newTestGateway(t, Config{Backends: []string{misses1.URL, misses2.URL}})
	gAllMiss.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d for a job no backend knows, want 404", rec.Code)
	}
}

func TestGatewayJobListMergesAndDedupes(t *testing.T) {
	mkBackend := func(ids ...string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/readyz" {
				w.WriteHeader(http.StatusOK)
				return
			}
			jobs := make([]map[string]any, 0, len(ids))
			for _, id := range ids {
				jobs = append(jobs, map[string]any{"job": map[string]any{"id": id, "state": "done"}})
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{"count": len(jobs), "jobs": jobs})
		}))
	}
	s1, s2 := mkBackend("id-a", "id-b"), mkBackend("id-b", "id-c")
	defer s1.Close()
	defer s2.Close()
	g := newTestGateway(t, Config{Backends: []string{s1.URL, s2.URL}})

	req := httptest.NewRequest(http.MethodGet, "/v1/jobs", nil)
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var doc struct {
		Count int `json:"count"`
		Jobs  []struct {
			Job struct {
				ID string `json:"id"`
			} `json:"job"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Count != 3 || len(doc.Jobs) != 3 {
		t.Fatalf("merged %d jobs, want 3 (id-b deduped): %s", doc.Count, rec.Body)
	}
	seen := map[string]bool{}
	for _, j := range doc.Jobs {
		if seen[j.Job.ID] {
			t.Fatalf("job %s duplicated in the merge", j.Job.ID)
		}
		seen[j.Job.ID] = true
	}
}

func TestGatewayReadyzReflectsBackends(t *testing.T) {
	b := newSolveBackend(t, "b1")
	g := newTestGateway(t, Config{Backends: []string{b.srv.URL}})
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz = %d with a healthy backend", rec.Code)
	}
	g.hlth.reportFailure(b.srv.URL)
	g.hlth.reportFailure(b.srv.URL)
	g.hlth.reportFailure(b.srv.URL)
	rec = httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d with every backend ejected, want 503", rec.Code)
	}
}

func TestGatewayStatzCountsPerBackend(t *testing.T) {
	b1, b2 := newSolveBackend(t, "b1"), newSolveBackend(t, "b2")
	g := newTestGateway(t, Config{Backends: []string{b1.srv.URL, b2.srv.URL}, Policy: PolicyRoundRobin})
	body := "hypergraph 3 1\n0 1 2\n"
	for i := 0; i < 4; i++ {
		postReduce(t, g, body)
	}
	st := g.Stats()
	if st.Requests != 4 || len(st.Backends) != 2 {
		t.Fatalf("stats = %+v", st)
	}
	var proxied uint64
	for _, row := range st.Backends {
		proxied += row.Proxied
		if row.InFlight != 0 {
			t.Fatalf("in-flight %d after requests completed", row.InFlight)
		}
	}
	if proxied != 4 {
		t.Fatalf("proxied sum = %d, want 4", proxied)
	}
}

func TestGatewayRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no backends must fail")
	}
	if _, err := New(Config{Backends: []string{"not-a-url"}}); err == nil {
		t.Error("non-http backend must fail")
	}
	if _, err := New(Config{Backends: []string{"http://a"}, Policy: "bogus"}); err == nil {
		t.Error("unknown policy must fail")
	}
}

func TestGatewayBadFormatParam(t *testing.T) {
	b := newSolveBackend(t, "b1")
	g := newTestGateway(t, Config{Backends: []string{b.srv.URL}})
	req := httptest.NewRequest(http.MethodPost, "/v1/reduce?format=bogus", strings.NewReader("x"))
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d for a bad format, want 400", rec.Code)
	}
	if b.hits.Load() != 0 {
		t.Fatal("bad request must not reach a backend")
	}
}

func TestLeastLoadedPrefersIdleBackend(t *testing.T) {
	lt := newLoadTracker([]string{"a", "b"})
	h := newHealth([]string{"a", "b"}, ProbeConfig{}, nil)
	ring := NewRing([]string{"a", "b"}, 0)
	bal := &balancer{ring: ring, health: h, loads: lt}
	release := lt.acquire("a")
	defer release()
	if plan := bal.plan("any", PolicyLeastLoaded); plan[0] != "b" {
		t.Fatalf("least-loaded picked %s with a busy, want b", plan[0])
	}
}

func TestAffinitySaturationSpills(t *testing.T) {
	lt := newLoadTracker([]string{"a", "b", "c"})
	h := newHealth([]string{"a", "b", "c"}, ProbeConfig{}, nil)
	ring := NewRing([]string{"a", "b", "c"}, 0)
	bal := &balancer{ring: ring, health: h, loads: lt, saturation: 2}
	key := "some-key"
	owner := ring.Owner(key)
	r1, r2 := lt.acquire(owner), lt.acquire(owner)
	defer r1()
	defer r2()
	plan := bal.plan(key, PolicyAffinity)
	if plan[0] == owner {
		t.Fatalf("saturated owner %s still planned first", owner)
	}
	// Below saturation the owner leads.
	r1()
	r2()
	if plan := bal.plan(key, PolicyAffinity); plan[0] != owner {
		t.Fatalf("idle owner %s not planned first: %v", owner, plan)
	}
}

// TestGatewayMethodNotAllowed checks that a known path hit with the
// wrong method surfaces the mux's 405 + Allow (not a blanket 404) in
// the JSON error envelope, and a truly unknown path stays a 404.
func TestGatewayMethodNotAllowed(t *testing.T) {
	b := newSolveBackend(t, "b1")
	g := newTestGateway(t, Config{Backends: []string{b.srv.URL}})

	req := httptest.NewRequest(http.MethodPut, "/v1/reduce", strings.NewReader("x"))
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("PUT /v1/reduce = %d, want 405", rec.Code)
	}
	if rec.Header().Get("Allow") == "" {
		t.Fatal("405 missing Allow header")
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("405 Content-Type %q, want the JSON envelope", ct)
	}
	var envelope struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil || envelope.Error == "" {
		t.Fatalf("405 body %q not the JSON error envelope (%v)", rec.Body, err)
	}

	rec = httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("GET /nope = %d, want 404", rec.Code)
	}
	if b.hits.Load() != 0 {
		t.Fatal("unroutable requests must not reach a backend")
	}
}

// TestGatewayForwardsClientHeaders checks the proxy hop is faithful:
// end-to-end headers (auth, accept) reach the backend, hop-by-hop
// headers and anything named by Connection are stripped, and a
// client-forged instance-key header never survives — the gateway's own
// derivation wins.
func TestGatewayForwardsClientHeaders(t *testing.T) {
	var seen atomic.Value // http.Header
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		seen.Store(r.Header.Clone())
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	}))
	t.Cleanup(backend.Close)
	g := newTestGateway(t, Config{Backends: []string{backend.URL}})

	body := "hypergraph 3 1\n0 1 2\n"
	req := httptest.NewRequest(http.MethodPost, "/v1/reduce?k=2", strings.NewReader(body))
	req.Header.Set("Authorization", "Bearer tok")
	req.Header.Set("Accept", "application/json")
	req.Header.Set("X-Custom-Conn", "dropme")
	req.Header.Set("Connection", "X-Custom-Conn")
	req.Header.Set(HeaderInstanceKey, strings.Repeat("a", 64)) // forged
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}

	got, _ := seen.Load().(http.Header)
	if got == nil {
		t.Fatal("backend never saw the request")
	}
	if got.Get("Authorization") != "Bearer tok" || got.Get("Accept") != "application/json" {
		t.Fatalf("end-to-end headers dropped: %v", got)
	}
	if got.Get("X-Custom-Conn") != "" || got.Get("Connection") != "" {
		t.Fatalf("hop-by-hop headers forwarded: %v", got)
	}
	wantKey := solver.InstanceKey(solver.KindHypergraph, graphio.FormatAuto.String(), []byte(body))
	if got.Get(HeaderInstanceKey) != wantKey {
		t.Fatalf("instance key %q reached the backend, want the gateway's %q", got.Get(HeaderInstanceKey), wantKey)
	}
}

package cluster

// health.go tracks per-backend availability: an active prober hits each
// backend's readiness endpoint on an interval and ejects it after
// FailAfter consecutive failures, with exponential backoff before
// re-probing an ejected backend; passive transport failures observed
// while proxying feed the same counter, so a dead backend stops taking
// traffic before the next probe tick. A draining backend answers its
// readiness probe 503 and is ejected the same way — that is the
// graceful-drain handoff.

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// ProbeConfig configures the health prober.
type ProbeConfig struct {
	// Interval between probe rounds (default 500ms).
	Interval time.Duration
	// Timeout of one probe request (default Interval).
	Timeout time.Duration
	// FailAfter is the consecutive-failure count that ejects a backend
	// (default 3). Passive failures reported by the proxy count too.
	FailAfter int
	// Path is the probed endpoint (default "/readyz").
	Path string
	// MaxBackoff caps the ejected-backend re-probe backoff (default 8s).
	MaxBackoff time.Duration
}

// withDefaults fills the zero fields.
func (c ProbeConfig) withDefaults() ProbeConfig {
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = c.Interval
	}
	if c.FailAfter < 1 {
		c.FailAfter = 3
	}
	if c.Path == "" {
		c.Path = "/readyz"
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 8 * time.Second
	}
	return c
}

// BackendHealth is one backend's availability snapshot (statz).
type BackendHealth struct {
	Backend string `json:"backend"`
	Healthy bool   `json:"healthy"`
	// Fails is the current consecutive-failure count.
	Fails int `json:"fails,omitempty"`
	// Ejections counts healthy→ejected transitions.
	Ejections uint64 `json:"ejections,omitempty"`
}

// backendState is the mutable health record of one backend.
type backendState struct {
	healthy   bool
	fails     int
	ejections uint64
	// backoff and nextProbe gate re-probing an ejected backend; healthy
	// backends probe every Interval.
	backoff   time.Duration
	nextProbe time.Time
}

// health tracks every backend's state under one lock (the state is tiny
// and the proxy touches it once per attempt).
type health struct {
	cfg    ProbeConfig
	client *http.Client

	mu     sync.Mutex
	states map[string]*backendState
}

// newHealth starts every backend healthy: the first probe round
// corrects optimism within one Interval, and refusing all traffic until
// then would turn a gateway restart into an outage.
func newHealth(backends []string, cfg ProbeConfig, transport http.RoundTripper) *health {
	cfg = cfg.withDefaults()
	h := &health{
		cfg:    cfg,
		client: &http.Client{Timeout: cfg.Timeout, Transport: transport},
		states: make(map[string]*backendState, len(backends)),
	}
	for _, b := range backends {
		h.states[b] = &backendState{healthy: true}
	}
	return h
}

// healthy reports whether the backend is currently admitted.
func (h *health) healthy(backend string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.states[backend]
	return ok && st.healthy
}

// reportFailure records one failed interaction (probe or passive proxy
// transport error) and ejects at the threshold.
func (h *health) reportFailure(backend string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.states[backend]
	if !ok {
		return
	}
	st.fails++
	if st.healthy && st.fails >= h.cfg.FailAfter {
		st.healthy = false
		st.ejections++
		st.backoff = h.cfg.Interval
		st.nextProbe = time.Now().Add(st.backoff)
	} else if !st.healthy {
		// Every failed re-probe doubles the backoff up to the cap.
		st.backoff *= 2
		if st.backoff > h.cfg.MaxBackoff {
			st.backoff = h.cfg.MaxBackoff
		}
		st.nextProbe = time.Now().Add(st.backoff)
	}
}

// reportSuccess records one successful interaction, re-admitting an
// ejected backend.
func (h *health) reportSuccess(backend string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.states[backend]
	if !ok {
		return
	}
	st.fails = 0
	st.backoff = 0
	st.nextProbe = time.Time{}
	st.healthy = true
}

// due returns the backends whose next probe is due now.
func (h *health) due(now time.Time) []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []string
	for b, st := range h.states {
		if st.healthy || !now.Before(st.nextProbe) {
			out = append(out, b)
		}
	}
	return out
}

// snapshot returns every backend's state, sorted by name upstream.
func (h *health) snapshot() map[string]BackendHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]BackendHealth, len(h.states))
	for b, st := range h.states {
		out[b] = BackendHealth{Backend: b, Healthy: st.healthy, Fails: st.fails, Ejections: st.ejections}
	}
	return out
}

// probe performs one readiness check: any 2xx is healthy.
func (h *health) probe(ctx context.Context, backend string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, backend+h.cfg.Path, nil)
	if err != nil {
		h.reportFailure(backend)
		return
	}
	resp, err := h.client.Do(req)
	if err != nil {
		h.reportFailure(backend)
		return
	}
	resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		h.reportSuccess(backend)
	} else {
		h.reportFailure(backend)
	}
}

// run probes until ctx is done: every Interval, all due backends are
// probed concurrently (ejected backends only when their backoff
// expires).
func (h *health) run(ctx context.Context) {
	tick := time.NewTicker(h.cfg.Interval)
	defer tick.Stop()
	for {
		var wg sync.WaitGroup
		for _, b := range h.due(time.Now()) {
			wg.Add(1)
			go func(b string) {
				defer wg.Done()
				h.probe(ctx, b)
			}(b)
		}
		wg.Wait()
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

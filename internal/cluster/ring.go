// Package cluster implements the cfgate gateway: consistent-hash
// cache-affinity routing of solve and job traffic across a set of
// cfserve backends, per-backend health probing with ejection and
// backoff re-admission, least-loaded fallback, and bounded retry of
// idempotent requests.
//
// The routing key is the solver's instance cache key (the sha256
// content hash of kind, format directive and body — solver.InstanceKey),
// so requests for the same instance land on the same backend and hit
// its parsed-instance cache; the gateway forwards the key in the
// X-Pslocal-Instance-Key header so the backend skips re-hashing, and
// reports which backend served in X-Pslocal-Backend. cmd/cfgate is the
// CLI wrapper and DESIGN.md ("Cluster mode") records the design.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over backend names with virtual nodes:
// each backend owns Replicas points, keys map to the first point
// clockwise, and adding or removing a backend moves only the keys of
// its own points. Immutable after construction.
type Ring struct {
	names  []string
	points []ringPoint // sorted by hash
}

// ringPoint is one virtual node: a position and the index of its
// backend in names.
type ringPoint struct {
	hash    uint64
	backend int
}

// DefaultReplicas is the virtual-node count per backend: enough that a
// 3-node ring splits key space within a few percent of evenly.
const DefaultReplicas = 128

// hashString is the ring's position function: FNV-1a 64 with a
// splitmix64 finalizer. The routing keys are already uniform sha256
// hex, but the vnode labels are short structured strings — without the
// finalizer their FNV values cluster enough to skew the key split tens
// of percent off fair share.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewRing builds a ring over the given backend names (order is
// irrelevant, duplicates collapse); replicas < 1 selects
// DefaultReplicas.
func NewRing(names []string, replicas int) *Ring {
	if replicas < 1 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(names))
	r := &Ring{}
	for _, name := range names {
		if name == "" || seen[name] {
			continue
		}
		seen[name] = true
		r.names = append(r.names, name)
	}
	sort.Strings(r.names)
	r.points = make([]ringPoint, 0, len(r.names)*replicas)
	for i, name := range r.names {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hashString(fmt.Sprintf("%s#%d", name, v)),
				backend: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].backend < r.points[b].backend
	})
	return r
}

// Backends returns the distinct backend names, sorted.
func (r *Ring) Backends() []string {
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// Owner returns the backend owning key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	c := r.Candidates(key)
	if len(c) == 0 {
		return ""
	}
	return c[0]
}

// Candidates returns every backend in ring order starting at key's
// owner: the affinity owner first, then the failover sequence a
// request walks when earlier candidates are ejected or saturated. The
// slice is freshly allocated and covers all backends.
func (r *Ring) Candidates(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hashString(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.names))
	seen := make(map[int]bool, len(r.names))
	for i := 0; len(out) < len(r.names) && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.backend] {
			continue
		}
		seen[p.backend] = true
		out = append(out, r.names[p.backend])
	}
	return out
}

package engine

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestGateBoundsAdmission(t *testing.T) {
	g := NewGate(2)
	if g.Capacity() != 2 {
		t.Fatalf("Capacity = %d, want 2", g.Capacity())
	}
	if err := g.Acquire(nil); err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	if !g.TryAcquire() {
		t.Fatal("second TryAcquire should succeed")
	}
	if g.TryAcquire() {
		t.Fatal("third TryAcquire should fail at capacity")
	}
	if g.InUse() != 2 {
		t.Fatalf("InUse = %d, want 2", g.InUse())
	}
	g.Release()
	if !g.TryAcquire() {
		t.Fatal("TryAcquire after Release should succeed")
	}
	g.Release()
	g.Release()
	if g.InUse() != 0 {
		t.Fatalf("InUse = %d, want 0", g.InUse())
	}
}

func TestGateAcquireHonoursCancellation(t *testing.T) {
	g := NewGate(1)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := g.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Acquire on a full gate = %v, want deadline exceeded", err)
	}
	// A pre-cancelled context must not consume a free slot.
	g.Release()
	done, cancelDone := context.WithCancel(context.Background())
	cancelDone()
	if err := g.Acquire(done); !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire with cancelled ctx = %v, want canceled", err)
	}
	if g.InUse() != 0 {
		t.Fatalf("InUse = %d after failed acquire, want 0", g.InUse())
	}
}

func TestGateReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release on an empty gate should panic")
		}
	}()
	NewGate(1).Release()
}

func TestGateDefaultCapacity(t *testing.T) {
	if got, want := NewGate(0).Capacity(), Parallel().WorkerCount(); got != want {
		t.Fatalf("NewGate(0).Capacity = %d, want GOMAXPROCS %d", got, want)
	}
}

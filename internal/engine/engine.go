// Package engine provides the shared execution-options layer of the
// repository: a single Options value — worker-pool width plus cancellation
// context — threaded through conflict-graph construction (core.BuildOpts),
// the Theorem 1.1 reduction (core.Reduce), the MaxIS oracle suite, and the
// experiment harness. DESIGN.md, "Execution engine", records the design.
//
// The package deliberately has no dependencies inside the repository so
// every layer (graph, core, maxis, experiments, cmd) can import it.
package engine

import (
	"context"
	"runtime"
	"sync"
)

// Options configures parallel execution. The zero value selects the serial
// fast path on one worker with no cancellation, so existing call sites keep
// their exact previous behaviour when they pass Options{}.
type Options struct {
	// Workers is the worker-pool width. Negative values select
	// runtime.GOMAXPROCS(0), i.e. "as wide as the hardware allows" (use
	// Parallel()). Zero and one are the serial fast path: shard loops run
	// inline on the calling goroutine with no pool.
	Workers int
	// Ctx cancels long-running construction between shards; nil means
	// context.Background() (never cancelled).
	Ctx context.Context
}

// Parallel returns Options selecting runtime.GOMAXPROCS(0) workers.
func Parallel() Options { return Options{Workers: -1} }

// FromWorkersFlag maps the CLI -workers convention shared by the cmds
// onto Options: 0 means "as wide as the hardware" (Parallel()), any
// other value is the literal pool width.
func FromWorkersFlag(workers int) Options {
	if workers == 0 {
		return Parallel()
	}
	return Options{Workers: workers}
}

// WorkerCount resolves Workers: itself when positive, 1 when zero (the
// serial zero value), GOMAXPROCS when negative.
func (o Options) WorkerCount() int {
	switch {
	case o.Workers > 0:
		return o.Workers
	case o.Workers == 0:
		return 1
	default:
		return runtime.GOMAXPROCS(0)
	}
}

// Context resolves Ctx, defaulting to context.Background().
func (o Options) Context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// Err reports the cancellation state of the configured context; it is the
// cheap between-shards check used by the construction loops.
func (o Options) Err() error {
	if o.Ctx != nil {
		return o.Ctx.Err()
	}
	return nil
}

// Serial reports whether execution resolves to a single worker.
func (o Options) Serial() bool { return o.WorkerCount() <= 1 }

// Shard is a half-open index range [Lo, Hi).
type Shard struct {
	Lo, Hi int
}

// Len returns Hi - Lo.
func (s Shard) Len() int { return s.Hi - s.Lo }

// Shards partitions [0, n) into at most `workers` contiguous near-equal
// ranges (sizes differ by at most one, larger shards first). It returns nil
// when n <= 0, and fewer than `workers` shards when n < workers so no shard
// is empty.
func Shards(n, workers int) []Shard {
	if n <= 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	out := make([]Shard, workers)
	size, rem := n/workers, n%workers
	lo := 0
	for i := range out {
		hi := lo + size
		if i < rem {
			hi++
		}
		out[i] = Shard{Lo: lo, Hi: hi}
		lo = hi
	}
	return out
}

// ForEachShard partitions [0, n) with Shards(n, o.WorkerCount()) and runs fn
// once per shard, concurrently on the pool (inline when serial). The shard
// index passed to fn is dense in [0, numShards) and each index runs exactly
// once, so fn may index per-shard state without locking. The first non-nil
// error wins; a cancelled context surfaces as its error and stops unstarted
// shards from doing work (fn is still invoked but should observe o.Err()).
func (o Options) ForEachShard(n int, fn func(shard int, s Shard) error) error {
	shards := Shards(n, o.WorkerCount())
	if len(shards) == 0 {
		return o.Err()
	}
	if len(shards) == 1 {
		if err := o.Err(); err != nil {
			return err
		}
		return fn(0, shards[0])
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		if err == nil {
			return
		}
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for i, s := range shards {
		wg.Add(1)
		go func(i int, s Shard) {
			defer wg.Done()
			if err := o.Err(); err != nil {
				setErr(err)
				return
			}
			setErr(fn(i, s))
		}(i, s)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return o.Err()
}

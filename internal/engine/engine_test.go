package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
)

func TestShardsPartition(t *testing.T) {
	for n := 0; n <= 40; n++ {
		for workers := -1; workers <= 12; workers++ {
			shards := Shards(n, workers)
			if n <= 0 {
				if shards != nil {
					t.Fatalf("Shards(%d,%d) = %v, want nil", n, workers, shards)
				}
				continue
			}
			covered := 0
			minLen, maxLen := n, 0
			for i, s := range shards {
				if s.Lo >= s.Hi {
					t.Fatalf("Shards(%d,%d)[%d] = %v empty", n, workers, i, s)
				}
				if i == 0 && s.Lo != 0 {
					t.Fatalf("Shards(%d,%d) starts at %d", n, workers, s.Lo)
				}
				if i > 0 && s.Lo != shards[i-1].Hi {
					t.Fatalf("Shards(%d,%d) gap before shard %d", n, workers, i)
				}
				covered += s.Len()
				if s.Len() < minLen {
					minLen = s.Len()
				}
				if s.Len() > maxLen {
					maxLen = s.Len()
				}
			}
			if covered != n || shards[len(shards)-1].Hi != n {
				t.Fatalf("Shards(%d,%d) covers %d", n, workers, covered)
			}
			if maxLen-minLen > 1 {
				t.Fatalf("Shards(%d,%d) imbalanced: min %d max %d", n, workers, minLen, maxLen)
			}
			if w := workers; w >= 1 && len(shards) > w {
				t.Fatalf("Shards(%d,%d) produced %d shards", n, workers, len(shards))
			}
		}
	}
}

func TestWorkerCountDefaults(t *testing.T) {
	if got := (Options{}).WorkerCount(); got != 1 {
		t.Errorf("zero Options WorkerCount = %d, want 1 (serial zero value)", got)
	}
	if !(Options{}).Serial() {
		t.Error("zero Options should be serial")
	}
	if got := Parallel().WorkerCount(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Parallel WorkerCount = %d, want GOMAXPROCS", got)
	}
	if got := (Options{Workers: -3}).WorkerCount(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("negative Workers WorkerCount = %d, want GOMAXPROCS", got)
	}
	if got := (Options{Workers: 3}).WorkerCount(); got != 3 {
		t.Errorf("WorkerCount = %d, want 3", got)
	}
	if !(Options{Workers: 1}).Serial() {
		t.Error("Workers=1 should be serial")
	}
}

func TestForEachShardVisitsEachIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7} {
		const n = 100
		seen := make([]int, n)
		var mu sync.Mutex
		err := Options{Workers: workers}.ForEachShard(n, func(shard int, s Shard) error {
			mu.Lock()
			defer mu.Unlock()
			for i := s.Lo; i < s.Hi; i++ {
				seen[i]++
			}
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachShardFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := Options{Workers: workers}.ForEachShard(10, func(shard int, s Shard) error {
			if s.Lo == 0 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: err = %v, want boom", workers, err)
		}
	}
}

func TestForEachShardCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := Options{Workers: 4, Ctx: ctx}
	if err := opts.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() = %v", err)
	}
	err := opts.ForEachShard(10, func(int, Shard) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("ForEachShard on cancelled ctx = %v, want Canceled", err)
	}
}

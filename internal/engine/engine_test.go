package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestShardsPartition(t *testing.T) {
	for n := 0; n <= 40; n++ {
		for workers := -1; workers <= 12; workers++ {
			shards := Shards(n, workers)
			if n <= 0 {
				if shards != nil {
					t.Fatalf("Shards(%d,%d) = %v, want nil", n, workers, shards)
				}
				continue
			}
			covered := 0
			minLen, maxLen := n, 0
			for i, s := range shards {
				if s.Lo >= s.Hi {
					t.Fatalf("Shards(%d,%d)[%d] = %v empty", n, workers, i, s)
				}
				if i == 0 && s.Lo != 0 {
					t.Fatalf("Shards(%d,%d) starts at %d", n, workers, s.Lo)
				}
				if i > 0 && s.Lo != shards[i-1].Hi {
					t.Fatalf("Shards(%d,%d) gap before shard %d", n, workers, i)
				}
				covered += s.Len()
				if s.Len() < minLen {
					minLen = s.Len()
				}
				if s.Len() > maxLen {
					maxLen = s.Len()
				}
			}
			if covered != n || shards[len(shards)-1].Hi != n {
				t.Fatalf("Shards(%d,%d) covers %d", n, workers, covered)
			}
			if maxLen-minLen > 1 {
				t.Fatalf("Shards(%d,%d) imbalanced: min %d max %d", n, workers, minLen, maxLen)
			}
			if w := workers; w >= 1 && len(shards) > w {
				t.Fatalf("Shards(%d,%d) produced %d shards", n, workers, len(shards))
			}
		}
	}
}

func TestWorkerCountDefaults(t *testing.T) {
	if got := (Options{}).WorkerCount(); got != 1 {
		t.Errorf("zero Options WorkerCount = %d, want 1 (serial zero value)", got)
	}
	if !(Options{}).Serial() {
		t.Error("zero Options should be serial")
	}
	if got := Parallel().WorkerCount(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Parallel WorkerCount = %d, want GOMAXPROCS", got)
	}
	if got := (Options{Workers: -3}).WorkerCount(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("negative Workers WorkerCount = %d, want GOMAXPROCS", got)
	}
	if got := (Options{Workers: 3}).WorkerCount(); got != 3 {
		t.Errorf("WorkerCount = %d, want 3", got)
	}
	if !(Options{Workers: 1}).Serial() {
		t.Error("Workers=1 should be serial")
	}
}

func TestFromWorkersFlagConvention(t *testing.T) {
	if got := FromWorkersFlag(0).WorkerCount(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("FromWorkersFlag(0) resolves to %d, want GOMAXPROCS", got)
	}
	if !FromWorkersFlag(1).Serial() {
		t.Error("FromWorkersFlag(1) should be serial")
	}
	if got := FromWorkersFlag(5).WorkerCount(); got != 5 {
		t.Errorf("FromWorkersFlag(5) resolves to %d, want 5", got)
	}
}

func TestForEachShardVisitsEachIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7} {
		const n = 100
		seen := make([]int, n)
		var mu sync.Mutex
		err := Options{Workers: workers}.ForEachShard(n, func(shard int, s Shard) error {
			mu.Lock()
			defer mu.Unlock()
			for i := s.Lo; i < s.Hi; i++ {
				seen[i]++
			}
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachShardFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := Options{Workers: workers}.ForEachShard(10, func(shard int, s Shard) error {
			if s.Lo == 0 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: err = %v, want boom", workers, err)
		}
	}
}

func TestForEachShardCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := Options{Workers: 4, Ctx: ctx}
	if err := opts.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() = %v", err)
	}
	err := opts.ForEachShard(10, func(int, Shard) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("ForEachShard on cancelled ctx = %v, want Canceled", err)
	}
}

func TestForEachShardPreCancelledSkipsWork(t *testing.T) {
	// On a pre-cancelled context no shard body runs: the serial single-
	// shard path checks first, and the pool path's goroutines observe the
	// error before calling fn.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var calls atomic.Int32
		err := Options{Workers: workers, Ctx: ctx}.ForEachShard(10, func(int, Shard) error {
			calls.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want Canceled", workers, err)
		}
		if got := calls.Load(); got != 0 {
			t.Errorf("workers=%d: fn ran %d times on a pre-cancelled context", workers, got)
		}
	}
}

func TestForEachShardMidRunCancel(t *testing.T) {
	// A cancellation raised while shards are running surfaces as the
	// context error even when every invoked fn returned nil.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := Options{Workers: 4, Ctx: ctx}.ForEachShard(8, func(shard int, s Shard) error {
		if shard == 0 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("mid-run cancel err = %v, want Canceled", err)
	}

	// A shard that observes the cancellation and returns o.Err() wins as
	// the first error.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	opts := Options{Workers: 3, Ctx: ctx2}
	err = opts.ForEachShard(9, func(shard int, s Shard) error {
		cancel2()
		return opts.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("observed-cancel err = %v, want Canceled", err)
	}
}

func TestForEachShardFewerItemsThanWorkers(t *testing.T) {
	// n < workers: Shards caps the shard count at n so no shard is empty,
	// and each index still runs exactly once.
	var mu sync.Mutex
	seen := make(map[int]int)
	shardIdx := make(map[int]bool)
	err := Options{Workers: 8}.ForEachShard(3, func(shard int, s Shard) error {
		mu.Lock()
		defer mu.Unlock()
		shardIdx[shard] = true
		for i := s.Lo; i < s.Hi; i++ {
			seen[i]++
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ForEachShard: %v", err)
	}
	if len(shardIdx) != 3 {
		t.Errorf("ran %d shards for n=3, want 3 (no empty shards)", len(shardIdx))
	}
	for i := 0; i < 3; i++ {
		if seen[i] != 1 {
			t.Errorf("index %d visited %d times", i, seen[i])
		}
	}
}

func TestForEachShardZeroItems(t *testing.T) {
	// n == 0: fn never runs; the result is the context state.
	ran := false
	if err := (Options{Workers: 4}).ForEachShard(0, func(int, Shard) error {
		ran = true
		return nil
	}); err != nil || ran {
		t.Errorf("n=0: err=%v ran=%v, want nil and no calls", err, ran)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := (Options{Workers: 4, Ctx: ctx}).ForEachShard(0, func(int, Shard) error {
		ran = true
		return nil
	}); !errors.Is(err, context.Canceled) || ran {
		t.Errorf("n=0 cancelled: err=%v ran=%v, want Canceled and no calls", err, ran)
	}
}

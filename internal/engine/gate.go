package engine

// gate.go provides Gate, the bounded-admission primitive of the serving
// layer: cmd/cfserve holds one Gate sized to its -max-inflight flag and
// admits each reduction request through it, so a traffic burst queues at
// the gate (respecting per-request cancellation) instead of oversubscribing
// the worker pools that Options.ForEachShard fans out on.

import "context"

// Gate bounds the number of concurrently admitted tasks. The zero value
// is not usable; construct with NewGate.
type Gate struct {
	slots chan struct{}
}

// NewGate returns a gate admitting at most n tasks at once; n < 1 selects
// runtime.GOMAXPROCS(0) via Options' worker convention.
func NewGate(n int) *Gate {
	if n < 1 {
		n = Options{Workers: -1}.WorkerCount()
	}
	return &Gate{slots: make(chan struct{}, n)}
}

// Acquire blocks until a slot is free or ctx is done, returning the
// context error in the latter case. A nil ctx never cancels.
func (g *Gate) Acquire(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a slot without blocking, reporting whether it did.
func (g *Gate) TryAcquire() bool {
	select {
	case g.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release frees a slot taken by Acquire or TryAcquire. Releasing more
// than was acquired is a programming error and panics.
func (g *Gate) Release() {
	select {
	case <-g.slots:
	default:
		panic("engine: Gate.Release without Acquire")
	}
}

// Capacity returns the admission bound.
func (g *Gate) Capacity() int { return cap(g.slots) }

// InUse returns the number of currently admitted tasks.
func (g *Gate) InUse() int { return len(g.slots) }

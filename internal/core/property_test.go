package core

// property_test.go drives the core invariants through testing/quick over
// randomly generated hypergraphs: index bijectivity, first-fit
// independence, and the Lemma 2.1 correspondences.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pslocal/internal/cfcolor"
	"pslocal/internal/hypergraph"
)

// randomInstance derives a small random hypergraph and palette from a
// quick-check seed.
func randomInstance(seed int64) (*hypergraph.Hypergraph, int, *rand.Rand, error) {
	rng := rand.New(rand.NewSource(seed))
	n := 4 + rng.Intn(14)
	m := 1 + rng.Intn(10)
	r := 2 + rng.Intn(3)
	if r > n {
		r = n
	}
	h, err := hypergraph.Uniform(n, m, r, rng)
	return h, 1 + rng.Intn(3), rng, err
}

func TestQuickIndexBijective(t *testing.T) {
	f := func(seed int64) bool {
		h, k, _, err := randomInstance(seed)
		if err != nil {
			return false
		}
		ix, err := NewIndex(h, k)
		if err != nil {
			return false
		}
		ok := true
		count := 0
		ix.ForEachTriple(func(id int32, tr Triple) bool {
			count++
			got, err := ix.ID(tr)
			if err != nil || got != id {
				ok = false
				return false
			}
			back, err := ix.TripleOf(id)
			if err != nil || back != tr {
				ok = false
				return false
			}
			return true
		})
		return ok && count == ix.NumNodes() && count == k*h.TotalEdgeSize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickFirstFitIndependentAndEdgeUnique(t *testing.T) {
	f := func(seed int64) bool {
		h, k, _, err := randomInstance(seed)
		if err != nil {
			return false
		}
		ix, err := NewIndex(h, k)
		if err != nil {
			return false
		}
		set := FirstFitTriples(ix)
		if len(set) == 0 && h.M() > 0 {
			return false // the first triple is always selectable
		}
		indep, err := IsIndependentTriples(ix, set)
		if err != nil || !indep {
			return false
		}
		// One triple per edge at most (E_edge), and the selection is
		// maximal: every unselected triple conflicts with a selected one.
		perEdge := map[int32]int{}
		for _, tr := range set {
			perEdge[tr.Edge]++
			if perEdge[tr.Edge] > 1 {
				return false
			}
		}
		maximal := true
		ix.ForEachTriple(func(_ int32, tr Triple) bool {
			for _, s := range set {
				if s == tr {
					return true
				}
			}
			conflicts := false
			for _, s := range set {
				adj, err := Adjacent(ix, tr, s)
				if err != nil {
					maximal = false
					return false
				}
				if adj {
					conflicts = true
					break
				}
			}
			if !conflicts {
				maximal = false
				return false
			}
			return true
		})
		return maximal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickLemma21bOnFirstFit(t *testing.T) {
	f := func(seed int64) bool {
		h, k, _, err := randomInstance(seed)
		if err != nil {
			return false
		}
		ix, err := NewIndex(h, k)
		if err != nil {
			return false
		}
		set := FirstFitTriples(ix)
		fI, err := ISToColoring(ix, set)
		if err != nil {
			return false
		}
		return len(cfcolor.HappyEdges(h, fI)) >= len(set)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickLemma21aOnRandomPartialColourings(t *testing.T) {
	f := func(seed int64) bool {
		h, k, rng, err := randomInstance(seed)
		if err != nil {
			return false
		}
		ix, err := NewIndex(h, k)
		if err != nil {
			return false
		}
		// A random partial colouring (not necessarily conflict-free).
		fc := make(cfcolor.Coloring, h.N())
		for v := range fc {
			if rng.Float64() < 0.7 {
				fc[v] = int32(1 + rng.Intn(k))
			}
		}
		is, err := ColoringToIS(ix, fc)
		if err != nil {
			return false
		}
		if len(is) != len(cfcolor.HappyEdges(h, fc)) {
			return false
		}
		indep, err := IsIndependentTriples(ix, is)
		return err == nil && indep
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

package core

// conflict.go constructs the conflict graph G_k of Section 2, in two
// forms. Build materialises it as an explicit graph for the MaxIS oracles.
// Implicit answers adjacency queries straight from H — mirroring the
// paper's observation that "the conflict graph G_k can be efficiently
// simulated in H in the LOCAL model": the neighbourhood of (e, v, c)
// depends only on the edges incident to v and to e's members, information
// within O(1) hops of v in the bipartite incidence structure of H.
//
// The edge set, for distinct triples t1 = (e, v, c), t2 = (g, u, d):
//
//	E_edge:   e == g                                  (per-edge cliques)
//	E_vertex: v == u and c != d                       (one colour per vertex)
//	E_color:  c == d, v != u, and {u,v} ⊆ e or {u,v} ⊆ g
//
// E_color requires u != v: with u == v allowed, two identical singleton
// edges {v} would make the corresponding picks adjacent and Lemma 2.1(a)
// false; the lemma's proof (case E_color) indeed derives its contradiction
// from a vertex u distinct from v. DESIGN.md records this reading.
//
// Construction is sharded by hyperedge block (E_edge, E_color) and by
// vertex block (E_vertex) across the worker pool of engine.Options, each
// shard emitting into a private buffer of a graph.ShardedBuilder. Node ids
// come from pure offset arithmetic over the Index tables — NewIndex
// validated the structure once, so the emission loops have no error paths.
// DESIGN.md, "Execution engine", records the design.

import (
	"fmt"
	"sort"

	"pslocal/internal/engine"
	"pslocal/internal/graph"
)

// Build materialises G_k for conflict-free k-colouring of h on the serial
// path; BuildOpts is the parallel variant.
func Build(ix *Index) (*graph.Graph, error) {
	return BuildOpts(ix, engine.Options{Workers: 1})
}

// BuildOpts materialises G_k on opts' worker pool. The resulting CSR is
// identical to the serial Build for every worker count (asserted by the
// equivalence tests).
func BuildOpts(ix *Index, opts engine.Options) (*graph.Graph, error) {
	h := ix.h
	sb := graph.NewShardedBuilder(ix.NumNodes(), opts.WorkerCount())
	// Phase A: E_edge cliques and E_color pairs, sharded by hyperedge
	// block. Phase B: E_vertex pairs, sharded by vertex block. The phases
	// run sequentially, so a shard buffer is never touched by two
	// goroutines at once.
	err := opts.ForEachShard(h.M(), func(shard int, s engine.Shard) error {
		emitEdgeShard(ix, sb.Shard(shard), s.Lo, s.Hi)
		return opts.Err()
	})
	if err != nil {
		return nil, err
	}
	err = opts.ForEachShard(h.N(), func(shard int, s engine.Shard) error {
		emitVertexShard(ix, sb.Shard(shard), s.Lo, s.Hi)
		return opts.Err()
	})
	if err != nil {
		return nil, err
	}
	g, err := sb.ParallelBuild(opts)
	if err != nil {
		return nil, fmt.Errorf("core: conflict graph assembly: %w", err)
	}
	if h.Weighted() {
		// Triple (e, v, c) inherits w_H(v), so a maximum-weight independent
		// set of G_k colours the heaviest vertices first — the weighted
		// conflict-free objective rides the unchanged reduction loop.
		ws := make([]int64, ix.NumNodes())
		ix.ForEachTriple(func(id int32, t Triple) bool {
			ws[id] = h.Weight(t.Vertex)
			return true
		})
		g, err = graph.WithWeights(g, ws)
		if err != nil {
			return nil, fmt.Errorf("core: conflict graph weights: %w", err)
		}
	}
	return g, nil
}

// emitEdgeShard emits the E_edge cliques and E_color pairs whose container
// edge lies in [lo, hi). Every id is derived by offset arithmetic; the two
// endpoints can never coincide (same container: positions differ, different
// containers: disjoint id blocks), so no equality guard is needed.
func emitEdgeShard(ix *Index, b *graph.Builder, lo, hi int) {
	h, k := ix.h, ix.k
	// Exact emission volume of the shard: Σ C(|e|k, 2) for the cliques
	// plus Σ_j Σ_{u ∈ e_j} (|e_j|-1)·deg(u)·k for E_color.
	hint := 0
	var edgeBuf, incBuf []int32
	for j := lo; j < hi; j++ {
		s := int(ix.edgeOffset[j+1] - ix.edgeOffset[j])
		hint += s * (s - 1) / 2
		edgeBuf = h.AppendEdge(edgeBuf[:0], j)
		for _, u := range edgeBuf {
			hint += (len(edgeBuf) - 1) * h.Degree(u) * int(k)
		}
	}
	b.EdgeCapacityHint(hint)
	for j := lo; j < hi; j++ {
		// E_edge: clique over the |e|·k contiguous triples of edge j.
		blo, bhi := ix.edgeOffset[j], ix.edgeOffset[j+1]
		for a := blo; a < bhi; a++ {
			for bb := a + 1; bb < bhi; bb++ {
				b.AddEdge(a, bb)
			}
		}
		// E_color, container j: for each ordered pair of distinct vertices
		// (v, u) of edge j and each edge g containing u, connect
		// (j, v, c) — (g, u, c) for every colour c. (The g = j pairs are
		// already in the E_edge clique; the builder deduplicates.)
		edgeBuf = h.AppendEdge(edgeBuf[:0], j)
		for pu, u := range edgeBuf {
			incBuf = h.AppendIncidentEdges(incBuf[:0], u)
			pos := ix.incPos[u]
			for pv := range edgeBuf {
				if pv == pu {
					continue
				}
				base1 := ix.idAt(int32(j), int32(pv), 1)
				for i, g := range incBuf {
					base2 := ix.idAt(g, pos[i], 1)
					for c := int32(0); c < k; c++ {
						b.AddEdge(base1+c, base2+c)
					}
				}
			}
		}
	}
}

// emitVertexShard emits the E_vertex pairs for vertices in [lo, hi): for
// each pair of distinct incident edges, connect differing colours. Pairs
// within a single incident edge are already inside its E_edge clique and
// are skipped here.
func emitVertexShard(ix *Index, b *graph.Builder, lo, hi int) {
	h, k := ix.h, ix.k
	hint := 0
	for v := lo; v < hi; v++ {
		d := h.Degree(int32(v))
		hint += d * (d - 1) / 2 * int(k) * int(k-1)
	}
	b.EdgeCapacityHint(hint)
	var incBuf []int32
	for v := lo; v < hi; v++ {
		incBuf = h.AppendIncidentEdges(incBuf[:0], int32(v))
		pos := ix.incPos[v]
		for i, e := range incBuf {
			baseE := ix.idAt(e, pos[i], 1)
			for i2 := i + 1; i2 < len(incBuf); i2++ {
				baseG := ix.idAt(incBuf[i2], pos[i2], 1)
				for c := int32(0); c < k; c++ {
					for d := int32(0); d < k; d++ {
						if c == d {
							continue
						}
						b.AddEdge(baseE+c, baseG+d)
					}
				}
			}
		}
	}
}

// Adjacent reports whether two triples are adjacent in G_k, directly from
// the definition (no materialisation).
func Adjacent(ix *Index, t1, t2 Triple) (bool, error) {
	if _, err := ix.ID(t1); err != nil {
		return false, err
	}
	if _, err := ix.ID(t2); err != nil {
		return false, err
	}
	if t1 == t2 {
		return false, nil
	}
	if t1.Edge == t2.Edge {
		return true, nil // E_edge
	}
	if t1.Vertex == t2.Vertex && t1.Color != t2.Color {
		return true, nil // E_vertex
	}
	if t1.Color == t2.Color && t1.Vertex != t2.Vertex {
		// E_color: {u, v} ⊆ e or {u, v} ⊆ g. t1.Vertex ∈ e and
		// t2.Vertex ∈ g hold by construction.
		if ix.h.EdgeContains(int(t1.Edge), t2.Vertex) || ix.h.EdgeContains(int(t2.Edge), t1.Vertex) {
			return true, nil
		}
	}
	return false, nil
}

// FirstFitTriples runs the first-fit greedy independent set directly on
// the implicit conflict graph: triples are scanned in dense id order —
// descending vertex weight (stable, so dense id order within equal
// weights) on weighted hypergraphs — and kept when compatible with
// everything kept so far. The blocking tests use only H-local
// information, so the scan runs in O(Σ_e |e| · k · (|e| + deg_H)) time
// without building G_k. On unweighted inputs the result equals first-fit
// greedy on the explicit graph (asserted by tests) and powers the
// reduction's large-instance mode. For repeated scans (one per reduction
// phase) use FirstFitScratch, which reuses its buffers across calls.
func FirstFitTriples(ix *Index) []Triple {
	var s FirstFitScratch
	return s.FirstFit(ix)
}

// FirstFitScratch is the batched variant of FirstFitTriples: it holds the
// per-scan state (edge choices, vertex colours, output) and reuses it
// across calls, so a multi-phase reduction allocates the buffers once
// instead of once per phase. The zero value is ready to use.
type FirstFitScratch struct {
	// edgeChoice[e] = chosen triple on edge e when hasChoice[e] (E_edge
	// allows at most one).
	edgeChoice []Triple
	hasChoice  []bool
	// vertexColor[v] = colour of v's chosen triples (E_vertex forces
	// uniqueness; 0 = none).
	vertexColor []int32
	out         []Triple
	order       []Triple // weighted-scan ordering buffer
}

// FirstFit runs the first-fit scan on ix, reusing the scratch buffers. On
// weighted hypergraphs the scan visits triples by descending vertex
// weight (stable within equal weights), so heavy vertices claim their
// colours first; first-fit over any order yields a maximal independent
// set of G_k, so the accept logic is unchanged. The returned slice is
// owned by the scratch and valid until the next call; callers that retain
// it across calls must copy it.
func (s *FirstFitScratch) FirstFit(ix *Index) []Triple {
	h := ix.h
	s.edgeChoice = resize(s.edgeChoice, h.M())
	s.hasChoice = resize(s.hasChoice, h.M())
	s.vertexColor = resize(s.vertexColor, h.N())
	s.out = s.out[:0]
	if h.Weighted() {
		s.order = s.order[:0]
		ix.ForEachTriple(func(_ int32, t Triple) bool {
			s.order = append(s.order, t)
			return true
		})
		sort.SliceStable(s.order, func(a, b int) bool {
			return h.Weight(s.order[a].Vertex) > h.Weight(s.order[b].Vertex)
		})
		for _, t := range s.order {
			s.tryAccept(ix, t)
		}
		return s.out
	}
	ix.ForEachTriple(func(_ int32, t Triple) bool {
		s.tryAccept(ix, t)
		return true
	})
	return s.out
}

// tryAccept adds t to the chosen set when no chosen triple blocks it.
func (s *FirstFitScratch) tryAccept(ix *Index, t Triple) {
	h := ix.h
	if s.hasChoice[t.Edge] {
		return // E_edge block
	}
	if vc := s.vertexColor[t.Vertex]; vc != 0 && vc != t.Color {
		return // E_vertex block
	}
	// E_color, container e: some chosen triple with colour t.Color at
	// another vertex of t.Edge.
	blocked := false
	h.ForEachEdgeVertex(int(t.Edge), func(u int32) bool {
		if u != t.Vertex && s.vertexColor[u] == t.Color {
			blocked = true
			return false
		}
		return true
	})
	if blocked {
		return
	}
	// E_color, container g: a chosen triple (g, u, t.Color) with u
	// different from t.Vertex on an edge g containing t.Vertex.
	h.ForEachIncidentEdge(t.Vertex, func(g int32) bool {
		if s.hasChoice[g] {
			if ch := s.edgeChoice[g]; ch.Color == t.Color && ch.Vertex != t.Vertex {
				blocked = true
				return false
			}
		}
		return true
	})
	if blocked {
		return
	}
	s.edgeChoice[t.Edge] = t
	s.hasChoice[t.Edge] = true
	s.vertexColor[t.Vertex] = t.Color
	s.out = append(s.out, t)
}

// resize returns buf with length n and every element zeroed, reallocating
// only when the capacity is insufficient.
func resize[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// IsIndependentTriples reports whether the given triples are pairwise
// non-adjacent in G_k (quadratic; intended for verification in tests and
// experiments).
func IsIndependentTriples(ix *Index, ts []Triple) (bool, error) {
	for i := 0; i < len(ts); i++ {
		for j := i + 1; j < len(ts); j++ {
			if ts[i] == ts[j] {
				return false, nil
			}
			adj, err := Adjacent(ix, ts[i], ts[j])
			if err != nil {
				return false, err
			}
			if adj {
				return false, nil
			}
		}
	}
	return true, nil
}

// IDsToTriples maps dense node ids to triples.
func IDsToTriples(ix *Index, ids []int32) ([]Triple, error) {
	out := make([]Triple, len(ids))
	for i, id := range ids {
		t, err := ix.TripleOf(id)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// TriplesToIDs maps triples to dense node ids.
func TriplesToIDs(ix *Index, ts []Triple) ([]int32, error) {
	out := make([]int32, len(ts))
	for i, t := range ts {
		id, err := ix.ID(t)
		if err != nil {
			return nil, err
		}
		out[i] = id
	}
	return out, nil
}

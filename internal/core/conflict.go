package core

// conflict.go constructs the conflict graph G_k of Section 2, in two
// forms. Build materialises it as an explicit graph for the MaxIS oracles.
// Implicit answers adjacency queries straight from H — mirroring the
// paper's observation that "the conflict graph G_k can be efficiently
// simulated in H in the LOCAL model": the neighbourhood of (e, v, c)
// depends only on the edges incident to v and to e's members, information
// within O(1) hops of v in the bipartite incidence structure of H.
//
// The edge set, for distinct triples t1 = (e, v, c), t2 = (g, u, d):
//
//	E_edge:   e == g                                  (per-edge cliques)
//	E_vertex: v == u and c != d                       (one colour per vertex)
//	E_color:  c == d, v != u, and {u,v} ⊆ e or {u,v} ⊆ g
//
// E_color requires u != v: with u == v allowed, two identical singleton
// edges {v} would make the corresponding picks adjacent and Lemma 2.1(a)
// false; the lemma's proof (case E_color) indeed derives its contradiction
// from a vertex u distinct from v. DESIGN.md records this reading.

import (
	"fmt"

	"pslocal/internal/graph"
)

// Build materialises G_k for conflict-free k-colouring of h.
func Build(ix *Index) (*graph.Graph, error) {
	h := ix.h
	k := ix.k
	b := graph.NewBuilder(ix.NumNodes())
	addPair := func(t1, t2 Triple) error {
		id1, err := ix.ID(t1)
		if err != nil {
			return err
		}
		id2, err := ix.ID(t2)
		if err != nil {
			return err
		}
		if id1 != id2 {
			b.AddEdge(id1, id2)
		}
		return nil
	}

	for j := 0; j < h.M(); j++ {
		// E_edge: clique over the |e|·k triples of edge j.
		lo, hi := ix.edgeOffset[j], ix.edgeOffset[j+1]
		for a := lo; a < hi; a++ {
			for bb := a + 1; bb < hi; bb++ {
				b.AddEdge(a, bb)
			}
		}
		// E_color, container j: for each ordered pair of distinct vertices
		// (v, u) of edge j and each edge g containing u, connect
		// (j, v, c) — (g, u, c) for every colour c. (The g = j pairs are
		// already in the E_edge clique; the builder deduplicates.)
		edge := h.Edge(j)
		for _, v := range edge {
			for _, u := range edge {
				if u == v {
					continue
				}
				var err error
				h.ForEachIncidentEdge(u, func(g int32) bool {
					for c := int32(1); c <= k; c++ {
						if e := addPair(
							Triple{Edge: int32(j), Vertex: v, Color: c},
							Triple{Edge: g, Vertex: u, Color: c},
						); e != nil {
							err = e
							return false
						}
					}
					return true
				})
				if err != nil {
					return nil, err
				}
			}
		}
	}
	// E_vertex: for each vertex v and pair of incident edges, connect
	// differing colours.
	for v := int32(0); int(v) < h.N(); v++ {
		inc := h.IncidentEdges(v)
		for i, e := range inc {
			for _, g := range inc[i:] {
				for c := int32(1); c <= k; c++ {
					for d := int32(1); d <= k; d++ {
						if c == d {
							continue
						}
						if err := addPair(
							Triple{Edge: e, Vertex: v, Color: c},
							Triple{Edge: g, Vertex: v, Color: d},
						); err != nil {
							return nil, err
						}
					}
				}
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("core: conflict graph assembly: %w", err)
	}
	return g, nil
}

// Adjacent reports whether two triples are adjacent in G_k, directly from
// the definition (no materialisation).
func Adjacent(ix *Index, t1, t2 Triple) (bool, error) {
	if _, err := ix.ID(t1); err != nil {
		return false, err
	}
	if _, err := ix.ID(t2); err != nil {
		return false, err
	}
	if t1 == t2 {
		return false, nil
	}
	if t1.Edge == t2.Edge {
		return true, nil // E_edge
	}
	if t1.Vertex == t2.Vertex && t1.Color != t2.Color {
		return true, nil // E_vertex
	}
	if t1.Color == t2.Color && t1.Vertex != t2.Vertex {
		// E_color: {u, v} ⊆ e or {u, v} ⊆ g. t1.Vertex ∈ e and
		// t2.Vertex ∈ g hold by construction.
		if ix.h.EdgeContains(int(t1.Edge), t2.Vertex) || ix.h.EdgeContains(int(t2.Edge), t1.Vertex) {
			return true, nil
		}
	}
	return false, nil
}

// FirstFitTriples runs the first-fit greedy independent set directly on
// the implicit conflict graph: triples are scanned in dense id order and
// kept when compatible with everything kept so far. The blocking tests use
// only H-local information, so the scan runs in O(Σ_e |e| · k · (|e| +
// deg_H)) time without building G_k. The result equals first-fit greedy on
// the explicit graph (asserted by tests) and powers the reduction's
// large-instance mode.
func FirstFitTriples(ix *Index) []Triple {
	h := ix.h
	// edgeChoice[e] = chosen triple on edge e, if any (E_edge allows at
	// most one).
	edgeChoice := make([]*Triple, h.M())
	// vertexColor[v] = colour of v's chosen triples (E_vertex forces
	// uniqueness; 0 = none).
	vertexColor := make([]int32, h.N())
	var out []Triple
	ix.ForEachTriple(func(_ int32, t Triple) bool {
		if edgeChoice[t.Edge] != nil {
			return true // E_edge block
		}
		if vc := vertexColor[t.Vertex]; vc != 0 && vc != t.Color {
			return true // E_vertex block
		}
		// E_color, container e: some chosen triple with colour t.Color at
		// another vertex of t.Edge.
		blocked := false
		h.ForEachEdgeVertex(int(t.Edge), func(u int32) bool {
			if u != t.Vertex && vertexColor[u] == t.Color {
				blocked = true
				return false
			}
			return true
		})
		if blocked {
			return true
		}
		// E_color, container g: a chosen triple (g, u, t.Color) with u
		// different from t.Vertex on an edge g containing t.Vertex.
		h.ForEachIncidentEdge(t.Vertex, func(g int32) bool {
			ch := edgeChoice[g]
			if ch != nil && ch.Color == t.Color && ch.Vertex != t.Vertex {
				blocked = true
				return false
			}
			return true
		})
		if blocked {
			return true
		}
		chosen := t
		edgeChoice[t.Edge] = &chosen
		vertexColor[t.Vertex] = t.Color
		out = append(out, t)
		return true
	})
	return out
}

// IsIndependentTriples reports whether the given triples are pairwise
// non-adjacent in G_k (quadratic; intended for verification in tests and
// experiments).
func IsIndependentTriples(ix *Index, ts []Triple) (bool, error) {
	for i := 0; i < len(ts); i++ {
		for j := i + 1; j < len(ts); j++ {
			if ts[i] == ts[j] {
				return false, nil
			}
			adj, err := Adjacent(ix, ts[i], ts[j])
			if err != nil {
				return false, err
			}
			if adj {
				return false, nil
			}
		}
	}
	return true, nil
}

// IDsToTriples maps dense node ids to triples.
func IDsToTriples(ix *Index, ids []int32) ([]Triple, error) {
	out := make([]Triple, len(ids))
	for i, id := range ids {
		t, err := ix.TripleOf(id)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// TriplesToIDs maps triples to dense node ids.
func TriplesToIDs(ix *Index, ts []Triple) ([]int32, error) {
	out := make([]int32, len(ts))
	for i, t := range ts {
		id, err := ix.ID(t)
		if err != nil {
			return nil, err
		}
		out[i] = id
	}
	return out, nil
}

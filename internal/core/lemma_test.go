package core

import (
	"errors"
	"math/rand"
	"testing"

	"pslocal/internal/cfcolor"
	"pslocal/internal/hypergraph"
	"pslocal/internal/maxis"
)

// TestLemma21aPlanted: a conflict-free k-colouring induces an independent
// set of size exactly m, and α(G_k) = m (Lemma 2.1(a) in both directions:
// the construction and the matching upper bound).
func TestLemma21aPlanted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 6; trial++ {
		k := 2 + rng.Intn(2)
		h, planted, err := hypergraph.PlantedCF(12+rng.Intn(8), 5+rng.Intn(6), k, 2, 4, rng)
		if err != nil {
			t.Fatalf("PlantedCF error: %v", err)
		}
		ix := mustIndex(t, h, k)
		is, err := ColoringToIS(ix, cfcolor.Coloring(planted))
		if err != nil {
			t.Fatalf("ColoringToIS error: %v", err)
		}
		if len(is) != h.M() {
			t.Fatalf("trial %d: |I_f| = %d, want m = %d", trial, len(is), h.M())
		}
		ok, err := IsIndependentTriples(ix, is)
		if err != nil {
			t.Fatalf("IsIndependentTriples error: %v", err)
		}
		if !ok {
			t.Fatalf("trial %d: I_f not independent", trial)
		}
		// α(G_k) = m exactly.
		g, err := Build(ix)
		if err != nil {
			t.Fatalf("Build error: %v", err)
		}
		opt, err := maxis.ExactOpts(g, maxis.ExactOptions{CliqueHint: ix.EdgeCliqueHint()})
		if err != nil {
			t.Fatalf("Exact error: %v", err)
		}
		if len(opt) != h.M() {
			t.Errorf("trial %d: α(G_k) = %d, want m = %d", trial, len(opt), h.M())
		}
	}
}

// TestLemma21aPartialColoring: with some vertices uncoloured, the
// construction still yields an independent set with one triple per happy
// edge (the proofs "consider colourings in which only some edges are
// happy").
func TestLemma21aPartialColoring(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		k := 2 + rng.Intn(2)
		h, planted, err := hypergraph.PlantedCF(14, 8, k, 2, 4, rng)
		if err != nil {
			t.Fatalf("PlantedCF error: %v", err)
		}
		partial := make(cfcolor.Coloring, len(planted))
		copy(partial, planted)
		for v := range partial {
			if rng.Float64() < 0.4 {
				partial[v] = cfcolor.Uncolored
			}
		}
		ix := mustIndex(t, h, k)
		is, err := ColoringToIS(ix, partial)
		if err != nil {
			t.Fatalf("ColoringToIS error: %v", err)
		}
		happy := cfcolor.HappyEdges(h, partial)
		if len(is) != len(happy) {
			t.Fatalf("trial %d: |I| = %d, want one per happy edge = %d", trial, len(is), len(happy))
		}
		ok, err := IsIndependentTriples(ix, is)
		if err != nil {
			t.Fatalf("IsIndependentTriples error: %v", err)
		}
		if !ok {
			t.Fatalf("trial %d: partial-colouring IS not independent", trial)
		}
	}
}

// TestLemma21b: for any independent set I of G_k, f_I is well defined and
// at least |I| edges are happy (the count is exactly |I| distinct edges by
// E_edge).
func TestLemma21b(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		var h *hypergraph.Hypergraph
		var err error
		if trial%2 == 0 {
			h, err = hypergraph.Uniform(14, 8, 3, rng)
		} else {
			h, _, err = hypergraph.PlantedCF(14, 8, 3, 2, 4, rng)
		}
		if err != nil {
			t.Fatalf("generator error: %v", err)
		}
		k := 1 + rng.Intn(3)
		ix := mustIndex(t, h, k)
		g, err := Build(ix)
		if err != nil {
			t.Fatalf("Build error: %v", err)
		}
		// Random maximal independent sets exercise many distinct IS shapes.
		ids := maxis.GreedyRandomOrder(g, rng)
		is, err := IDsToTriples(ix, ids)
		if err != nil {
			t.Fatalf("IDsToTriples error: %v", err)
		}
		f, err := ISToColoring(ix, is)
		if err != nil {
			t.Fatalf("trial %d: ISToColoring error: %v", trial, err)
		}
		happy := cfcolor.HappyEdges(h, f)
		if len(happy) < len(is) {
			t.Fatalf("trial %d: %d happy edges < |I| = %d", trial, len(happy), len(is))
		}
		if got := len(HappyFromIS(is)); got != len(is) {
			t.Fatalf("trial %d: HappyFromIS = %d distinct edges, want %d", trial, got, len(is))
		}
	}
}

func TestISToColoringIllDefined(t *testing.T) {
	h := hypergraph.MustNew(3, [][]int32{{0, 1}, {0, 2}})
	ix := mustIndex(t, h, 2)
	// Vertex 0 coloured 1 by edge 0 and 2 by edge 1 — not independent in
	// G_k (E_vertex), and ISToColoring must refuse it.
	_, err := ISToColoring(ix, []Triple{{0, 0, 1}, {1, 0, 2}})
	if !errors.Is(err, ErrIllDefined) {
		t.Errorf("error = %v, want ErrIllDefined", err)
	}
	// Same vertex, same colour: consistent.
	f, err := ISToColoring(ix, []Triple{{0, 0, 1}, {1, 0, 1}})
	if err != nil {
		t.Fatalf("consistent set rejected: %v", err)
	}
	if f[0] != 1 || f[1] != 0 || f[2] != 0 {
		t.Errorf("f = %v, want [1 0 0]", f)
	}
}

func TestISToColoringRejectsBadTriples(t *testing.T) {
	h := hypergraph.MustNew(2, [][]int32{{0, 1}})
	ix := mustIndex(t, h, 1)
	if _, err := ISToColoring(ix, []Triple{{3, 0, 1}}); !errors.Is(err, ErrBadTriple) {
		t.Errorf("error = %v, want ErrBadTriple", err)
	}
}

func TestColoringToISRejectsOverflowingColors(t *testing.T) {
	h := hypergraph.MustNew(2, [][]int32{{0, 1}})
	ix := mustIndex(t, h, 2)
	if _, err := ColoringToIS(ix, cfcolor.Coloring{3, 0}); err == nil {
		t.Error("colour 3 with k=2 accepted")
	}
	if _, err := ColoringToIS(ix, cfcolor.Coloring{1}); err == nil {
		t.Error("short colouring accepted")
	}
}

// TestLemmaRoundTrip: f conflict-free → I_f → f_{I_f} preserves the colour
// of every selected vertex and keeps every edge happy.
func TestLemmaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	k := 3
	h, planted, err := hypergraph.PlantedCF(16, 9, k, 2, 4, rng)
	if err != nil {
		t.Fatalf("PlantedCF error: %v", err)
	}
	ix := mustIndex(t, h, k)
	is, err := ColoringToIS(ix, cfcolor.Coloring(planted))
	if err != nil {
		t.Fatalf("ColoringToIS error: %v", err)
	}
	f2, err := ISToColoring(ix, is)
	if err != nil {
		t.Fatalf("ISToColoring error: %v", err)
	}
	for v, c := range f2 {
		if c != cfcolor.Uncolored && c != planted[v] {
			t.Errorf("vertex %d: round trip colour %d, planted %d", v, c, planted[v])
		}
	}
	if !cfcolor.IsConflictFree(h, f2) {
		t.Error("round-trip colouring lost conflict-freeness")
	}
}

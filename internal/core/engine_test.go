package core

// engine_test.go holds the equivalence tests of the parallel execution
// engine: sharded G_k construction must produce the identical CSR for
// every worker count, and the batched first-fit scratch must reproduce the
// plain scan — over randomized PlantedCF instances with fixed seeds.

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"pslocal/internal/engine"
	"pslocal/internal/hypergraph"
)

// requireSameGraph asserts the two graphs have identical CSR content via
// the exported surface (same node count, same adjacency everywhere).
func requireSameGraph(t *testing.T, got, want interface {
	N() int
	M() int
	AppendNeighbors([]int32, int32) []int32
}) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("graph shape (n=%d,m=%d), want (n=%d,m=%d)", got.N(), got.M(), want.N(), want.M())
	}
	var ga, wa []int32
	for v := int32(0); int(v) < want.N(); v++ {
		ga = got.AppendNeighbors(ga[:0], v)
		wa = want.AppendNeighbors(wa[:0], v)
		if len(ga) != len(wa) {
			t.Fatalf("node %d: degree %d, want %d", v, len(ga), len(wa))
		}
		for i := range wa {
			if ga[i] != wa[i] {
				t.Fatalf("node %d: neighbour[%d] = %d, want %d", v, i, ga[i], wa[i])
			}
		}
	}
}

func TestBuildOptsEquivalentToSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	grids := [][3]int{{20, 8, 2}, {35, 14, 3}, {60, 24, 3}, {25, 30, 2}}
	for _, grid := range grids {
		n, m, k := grid[0], grid[1], grid[2]
		h, _, err := hypergraph.PlantedCF(n, m, k, 3, 5, rng)
		if err != nil {
			t.Fatalf("generator: %v", err)
		}
		ix, err := NewIndex(h, k)
		if err != nil {
			t.Fatalf("index: %v", err)
		}
		want, err := Build(ix)
		if err != nil {
			t.Fatalf("serial build: %v", err)
		}
		for _, workers := range []int{2, 3, 5, 8} {
			got, err := BuildOpts(ix, engine.Options{Workers: workers})
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			requireSameGraph(t, got, want)
		}
	}
}

func TestBuildOptsEdgeCases(t *testing.T) {
	// Single edge, singleton edges, duplicate edges: the sharded path must
	// agree with the serial one on degenerate shapes too.
	cases := []struct {
		n     int
		edges [][]int32
	}{
		{1, [][]int32{{0}}},
		{3, [][]int32{{0, 1, 2}}},
		{4, [][]int32{{0, 1}, {0, 1}, {2, 3}}},
		{5, [][]int32{{0}, {0}, {0, 1, 2, 3, 4}}},
	}
	for i, c := range cases {
		h := hypergraph.MustNew(c.n, c.edges)
		for k := 1; k <= 3; k++ {
			ix, err := NewIndex(h, k)
			if err != nil {
				t.Fatalf("case %d k=%d: %v", i, k, err)
			}
			want, err := Build(ix)
			if err != nil {
				t.Fatalf("case %d k=%d serial: %v", i, k, err)
			}
			got, err := BuildOpts(ix, engine.Options{Workers: 4})
			if err != nil {
				t.Fatalf("case %d k=%d parallel: %v", i, k, err)
			}
			requireSameGraph(t, got, want)
		}
	}
}

func TestBuildOptsCancelledContext(t *testing.T) {
	h := hypergraph.MustNew(3, [][]int32{{0, 1, 2}})
	ix, err := NewIndex(h, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildOpts(ix, engine.Options{Workers: 2, Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestFirstFitScratchEquivalentToScan(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	var scratch FirstFitScratch // deliberately reused across all instances
	for trial := 0; trial < 12; trial++ {
		n := 10 + rng.Intn(40)
		m := 4 + rng.Intn(20)
		k := 2 + rng.Intn(3)
		h, _, err := hypergraph.PlantedCF(n, m, k, 3, 5, rng)
		if err != nil {
			t.Fatalf("generator: %v", err)
		}
		ix, err := NewIndex(h, k)
		if err != nil {
			t.Fatalf("index: %v", err)
		}
		want := FirstFitTriples(ix)
		got := scratch.FirstFit(ix)
		if len(got) != len(want) {
			t.Fatalf("trial %d: |I| = %d, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: triple %d = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestReduceEngineParityAndCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	h, _, err := hypergraph.PlantedCF(30, 18, 2, 3, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeImplicitFirstFit, ModeExactHinted} {
		serial, err := Reduce(nil, h, Options{K: 2, Mode: mode})
		if err != nil {
			t.Fatalf("mode %d serial: %v", mode, err)
		}
		parallel, err := Reduce(nil, h, Options{K: 2, Mode: mode, Engine: engine.Options{Workers: 4}})
		if err != nil {
			t.Fatalf("mode %d parallel: %v", mode, err)
		}
		if len(serial.Phases) != len(parallel.Phases) || serial.TotalColors != parallel.TotalColors {
			t.Fatalf("mode %d: parallel run diverged (%d phases/%d colours vs %d/%d)",
				mode, len(parallel.Phases), parallel.TotalColors, len(serial.Phases), serial.TotalColors)
		}
		for i := range serial.Phases {
			if serial.Phases[i] != parallel.Phases[i] {
				t.Fatalf("mode %d: phase %d stats diverged: %+v vs %+v",
					mode, i, parallel.Phases[i], serial.Phases[i])
			}
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = Reduce(nil, h, Options{K: 2, Mode: ModeImplicitFirstFit, Engine: engine.Options{Ctx: ctx}})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Reduce err = %v, want context.Canceled", err)
	}
}

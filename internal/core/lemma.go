package core

// lemma.go implements the two directions of Lemma 2.1 — the exact
// correspondence between independent sets of the conflict graph G_k and
// partial conflict-free colourings of H that drives the Theorem 1.1
// reduction.

import (
	"errors"
	"fmt"

	"pslocal/internal/cfcolor"
)

// ErrIllDefined reports an input set containing triples that give one
// vertex two different colours; by E_vertex such a set cannot be
// independent, so Lemma 2.1(b) never triggers this for genuine independent
// sets.
var ErrIllDefined = errors.New("core: triple set assigns two colours to one vertex")

// ColoringToIS implements Lemma 2.1(a) constructively: for every edge of H
// that is happy under f, add one triple (e, v, f(v)) where v is the
// (smallest, as the paper breaks ties arbitrarily) vertex of e whose
// colour is unique within e. For a conflict-free f the result has exactly
// |E(H)| triples and is a maximum independent set of G_k; for a partial f
// it has one triple per happy edge and is still independent.
func ColoringToIS(ix *Index, f cfcolor.Coloring) ([]Triple, error) {
	h := ix.h
	if err := f.Validate(h); err != nil {
		return nil, err
	}
	if mc := f.MaxColor(); mc > int32(ix.K()) {
		return nil, fmt.Errorf("%w: colouring uses colour %d > k=%d",
			cfcolor.ErrBadColor, mc, ix.K())
	}
	var out []Triple
	counts := map[int32]int{}
	for j := 0; j < h.M(); j++ {
		for c := range counts {
			delete(counts, c)
		}
		h.ForEachEdgeVertex(j, func(v int32) bool {
			if f[v] != cfcolor.Uncolored {
				counts[f[v]]++
			}
			return true
		})
		picked := false
		h.ForEachEdgeVertex(j, func(v int32) bool {
			if f[v] != cfcolor.Uncolored && counts[f[v]] == 1 {
				out = append(out, Triple{Edge: int32(j), Vertex: v, Color: f[v]})
				picked = true
				return false // smallest qualifying vertex; ties broken by order
			}
			return true
		})
		_ = picked // unhappy edges simply contribute no triple
	}
	return out, nil
}

// ISToColoring implements Lemma 2.1(b): the partial colouring f_I with
// f_I(v) = c when some (·, v, c) ∈ I and ⊥ otherwise. It verifies
// well-definedness (one colour per vertex) and returns ErrIllDefined
// otherwise. For an independent I, at least |I| edges of H are happy under
// the result (exactly |I| — one per triple, by E_edge).
func ISToColoring(ix *Index, is []Triple) (cfcolor.Coloring, error) {
	h := ix.h
	f := make(cfcolor.Coloring, h.N())
	for _, t := range is {
		if _, err := ix.ID(t); err != nil {
			return nil, err
		}
		switch f[t.Vertex] {
		case cfcolor.Uncolored:
			f[t.Vertex] = t.Color
		case t.Color:
			// Same vertex, same colour from another edge: consistent.
		default:
			return nil, fmt.Errorf("%w: vertex %d gets colours %d and %d",
				ErrIllDefined, t.Vertex, f[t.Vertex], t.Color)
		}
	}
	return f, nil
}

// HappyFromIS returns the edges of H guaranteed happy by the triples of an
// independent set (its distinct edge indices), implementing the counting
// step |E_{i+1}| <= |E_i| - |I_i| of the Theorem 1.1 proof.
func HappyFromIS(is []Triple) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, t := range is {
		if !seen[t.Edge] {
			seen[t.Edge] = true
			out = append(out, t.Edge)
		}
	}
	return out
}

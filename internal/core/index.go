// Package core implements the paper's contribution (Section 2): the
// conflict graph G_k of conflict-free k-colouring a hypergraph H, the
// Lemma 2.1 correspondence between independent sets of G_k and partial
// colourings of H, and the Theorem 1.1 reduction that solves conflict-free
// multicolouring with a λ-approximate maximum independent set oracle.
package core

import (
	"errors"
	"fmt"
	"sort"

	"pslocal/internal/hypergraph"
)

// Errors returned by the conflict-graph machinery.
var (
	// ErrBadK reports a non-positive palette size.
	ErrBadK = errors.New("core: palette size k must be >= 1")
	// ErrBadTriple reports a triple (e, v, c) with e not an edge of H,
	// v not a vertex of e, or c outside 1..k.
	ErrBadTriple = errors.New("core: invalid conflict-graph triple")
	// ErrBadNodeID reports a dense node id outside the conflict graph.
	ErrBadNodeID = errors.New("core: conflict-graph node id out of range")
)

// Triple identifies a node (e, v, c) of the conflict graph: hyperedge
// index e, vertex v ∈ e, and colour 1 <= c <= k.
type Triple struct {
	// Edge is the hyperedge index in H.
	Edge int32
	// Vertex is a vertex of that hyperedge.
	Vertex int32
	// Color is 1-based.
	Color int32
}

// String renders the triple in the paper's (e, v, c) form.
func (t Triple) String() string {
	return fmt.Sprintf("(e%d,v%d,c%d)", t.Edge, t.Vertex, t.Color)
}

// Index provides the dense numbering of V(G_k) = {(e, v, c)}: the triples
// of edge e occupy a contiguous block, ordered by the position of v within
// the sorted edge and then by colour.
type Index struct {
	h          *hypergraph.Hypergraph
	k          int32
	edgeOffset []int32 // per edge, starting node id; len M()+1
	// incPos[v][i] is the position of v within edge h.IncidentEdges(v)[i];
	// aligned with the incidence lists. Precomputed once so the graph
	// construction of conflict.go runs on pure offset arithmetic with no
	// per-edge error paths (DESIGN.md, "Execution engine").
	incPos [][]int32
}

// NewIndex builds the triple numbering for conflict-free k-colouring of h.
// All structural validation happens here, once: every triple the
// construction loops derive from the offsets below is valid by
// construction, which is what lets them skip the checked ID path.
func NewIndex(h *hypergraph.Hypergraph, k int) (*Index, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadK, k)
	}
	offsets := make([]int32, h.M()+1)
	for j := 0; j < h.M(); j++ {
		offsets[j+1] = offsets[j] + int32(h.EdgeSize(j)*k)
	}
	// Incidence lists hold ascending edge indices, so walking the edges in
	// ascending order appends each vertex's positions in incidence order.
	incPos := make([][]int32, h.N())
	for v := int32(0); int(v) < h.N(); v++ {
		incPos[v] = make([]int32, 0, h.Degree(v))
	}
	for j := 0; j < h.M(); j++ {
		pos := int32(0)
		h.ForEachEdgeVertex(j, func(v int32) bool {
			incPos[v] = append(incPos[v], pos)
			pos++
			return true
		})
	}
	return &Index{h: h, k: int32(k), edgeOffset: offsets, incPos: incPos}, nil
}

// idAt returns the dense node id of the triple whose vertex sits at
// position pos of edge e with colour c, by pure offset arithmetic. Callers
// guarantee validity (NewIndex validated the structure once).
func (ix *Index) idAt(e int32, pos int32, c int32) int32 {
	return ix.edgeOffset[e] + pos*ix.k + (c - 1)
}

// Hypergraph returns the underlying hypergraph H.
func (ix *Index) Hypergraph() *hypergraph.Hypergraph { return ix.h }

// K returns the palette size.
func (ix *Index) K() int { return int(ix.k) }

// NumNodes returns |V(G_k)| = k · Σ_e |e|.
func (ix *Index) NumNodes() int { return int(ix.edgeOffset[ix.h.M()]) }

// ID returns the dense node id of t.
func (ix *Index) ID(t Triple) (int32, error) {
	if t.Edge < 0 || int(t.Edge) >= ix.h.M() || t.Color < 1 || t.Color > ix.k {
		return 0, fmt.Errorf("%w: %v", ErrBadTriple, t)
	}
	pos := ix.vertexPos(t.Edge, t.Vertex)
	if pos < 0 {
		return 0, fmt.Errorf("%w: %v (vertex not in edge)", ErrBadTriple, t)
	}
	return ix.edgeOffset[t.Edge] + int32(pos)*ix.k + (t.Color - 1), nil
}

// TripleOf returns the triple with dense node id.
func (ix *Index) TripleOf(id int32) (Triple, error) {
	if id < 0 || int(id) >= ix.NumNodes() {
		return Triple{}, fmt.Errorf("%w: %d", ErrBadNodeID, id)
	}
	// Binary search for the owning edge block.
	j := sort.Search(ix.h.M(), func(j int) bool { return ix.edgeOffset[j+1] > id })
	rem := id - ix.edgeOffset[j]
	pos := rem / ix.k
	colour := rem%ix.k + 1
	return Triple{
		Edge:   int32(j),
		Vertex: ix.h.Edge(j)[pos],
		Color:  colour,
	}, nil
}

// vertexPos returns the position of v within sorted edge e, or -1.
func (ix *Index) vertexPos(e, v int32) int {
	edge := ix.h.Edge(int(e))
	i := sort.Search(len(edge), func(i int) bool { return edge[i] >= v })
	if i < len(edge) && edge[i] == v {
		return i
	}
	return -1
}

// ForEachTriple calls fn for every conflict-graph node in dense id order;
// it stops early if fn returns false.
func (ix *Index) ForEachTriple(fn func(id int32, t Triple) bool) {
	id := int32(0)
	for j := 0; j < ix.h.M(); j++ {
		edge := ix.h.Edge(j)
		for _, v := range edge {
			for c := int32(1); c <= ix.k; c++ {
				if !fn(id, Triple{Edge: int32(j), Vertex: v, Color: c}) {
					return
				}
				id++
			}
		}
	}
}

// EdgeCliqueHint returns the clique-partition hint for the exact MaxIS
// solver: every conflict-graph node is assigned its edge index, and E_edge
// makes each edge's block a clique (the source of the α(G_k) <= m bound in
// Lemma 2.1a).
func (ix *Index) EdgeCliqueHint() []int32 {
	hint := make([]int32, ix.NumNodes())
	for j := 0; j < ix.h.M(); j++ {
		for id := ix.edgeOffset[j]; id < ix.edgeOffset[j+1]; id++ {
			hint[id] = int32(j)
		}
	}
	return hint
}

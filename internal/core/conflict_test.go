package core

import (
	"math/rand"
	"testing"

	"pslocal/internal/hypergraph"
	"pslocal/internal/maxis"
)

// TestBuildMatchesAdjacentPredicate is the central structural check: the
// materialised G_k must agree edge-for-edge with the implicit definition.
func TestBuildMatchesAdjacentPredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		h, _, err := hypergraph.PlantedCF(8+rng.Intn(6), 3+rng.Intn(5), 2, 2, 4, rng)
		if err != nil {
			t.Fatalf("PlantedCF error: %v", err)
		}
		k := 1 + rng.Intn(3)
		ix := mustIndex(t, h, k)
		g, err := Build(ix)
		if err != nil {
			t.Fatalf("Build error: %v", err)
		}
		if g.N() != ix.NumNodes() {
			t.Fatalf("graph has %d nodes, want %d", g.N(), ix.NumNodes())
		}
		var all []Triple
		ix.ForEachTriple(func(_ int32, tr Triple) bool {
			all = append(all, tr)
			return true
		})
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				want, err := Adjacent(ix, all[i], all[j])
				if err != nil {
					t.Fatalf("Adjacent error: %v", err)
				}
				id1, _ := ix.ID(all[i])
				id2, _ := ix.ID(all[j])
				if got := g.HasEdge(id1, id2); got != want {
					t.Fatalf("trial %d: edge %v-%v: built=%v, definition=%v",
						trial, all[i], all[j], got, want)
				}
			}
		}
	}
}

func TestAdjacentCases(t *testing.T) {
	// H: e0 = {0,1}, e1 = {1,2}, e2 = {3}. k = 2.
	h := hypergraph.MustNew(4, [][]int32{{0, 1}, {1, 2}, {3}})
	ix := mustIndex(t, h, 2)
	tests := []struct {
		name   string
		t1, t2 Triple
		want   bool
	}{
		{"self", Triple{0, 0, 1}, Triple{0, 0, 1}, false},
		{"E_edge same edge any colours", Triple{0, 0, 1}, Triple{0, 1, 2}, true},
		{"E_edge same edge same vertex", Triple{0, 0, 1}, Triple{0, 0, 2}, true},
		{"E_vertex shared vertex diff colours", Triple{0, 1, 1}, Triple{1, 1, 2}, true},
		{"shared vertex same colour NOT adjacent", Triple{0, 1, 1}, Triple{1, 1, 1}, false},
		{"E_color u,v in e0", Triple{0, 0, 1}, Triple{1, 1, 1}, true}, // {0,1} ⊆ e0, colours equal
		{"E_color different colours not", Triple{0, 0, 1}, Triple{1, 1, 2}, false},
		{"no relation", Triple{0, 0, 1}, Triple{2, 3, 1}, false},
		{"no shared container", Triple{0, 0, 1}, Triple{1, 2, 1}, false}, // {0,2} ⊄ e0, ⊄ e1
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Adjacent(ix, tt.t1, tt.t2)
			if err != nil {
				t.Fatalf("Adjacent error: %v", err)
			}
			if got != tt.want {
				t.Errorf("Adjacent(%v, %v) = %v, want %v", tt.t1, tt.t2, got, tt.want)
			}
			// Symmetry.
			rev, err := Adjacent(ix, tt.t2, tt.t1)
			if err != nil {
				t.Fatalf("Adjacent error: %v", err)
			}
			if rev != got {
				t.Errorf("Adjacent not symmetric for %v, %v", tt.t1, tt.t2)
			}
		})
	}
}

func TestAdjacentRejectsBadTriples(t *testing.T) {
	h := hypergraph.MustNew(2, [][]int32{{0, 1}})
	ix := mustIndex(t, h, 1)
	if _, err := Adjacent(ix, Triple{0, 0, 1}, Triple{5, 0, 1}); err == nil {
		t.Error("bad triple accepted")
	}
	if _, err := Adjacent(ix, Triple{0, 0, 9}, Triple{0, 1, 1}); err == nil {
		t.Error("bad colour accepted")
	}
}

// TestFirstFitTriplesMatchesExplicitFirstFit: the implicit greedy must
// coincide exactly with first-fit greedy on the materialised graph.
func TestFirstFitTriplesMatchesExplicitFirstFit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 12; trial++ {
		var h *hypergraph.Hypergraph
		var err error
		if trial%3 == 0 {
			h, err = hypergraph.Uniform(12+rng.Intn(10), 4+rng.Intn(8), 3, rng)
		} else {
			h, _, err = hypergraph.PlantedCF(12+rng.Intn(10), 4+rng.Intn(8), 3, 2, 5, rng)
		}
		if err != nil {
			t.Fatalf("generator error: %v", err)
		}
		k := 1 + rng.Intn(3)
		ix := mustIndex(t, h, k)
		implicit := FirstFitTriples(ix)
		implicitIDs, err := TriplesToIDs(ix, implicit)
		if err != nil {
			t.Fatalf("TriplesToIDs error: %v", err)
		}

		g, err := Build(ix)
		if err != nil {
			t.Fatalf("Build error: %v", err)
		}
		explicitIDs, err := maxis.FirstFitOracle{}.Solve(g)
		if err != nil {
			t.Fatalf("explicit first fit error: %v", err)
		}
		if len(implicitIDs) != len(explicitIDs) {
			t.Fatalf("trial %d: implicit %d vs explicit %d nodes", trial, len(implicitIDs), len(explicitIDs))
		}
		for i := range implicitIDs {
			if implicitIDs[i] != explicitIDs[i] {
				t.Fatalf("trial %d: id %d differs: %d vs %d", trial, i, implicitIDs[i], explicitIDs[i])
			}
		}
		ok, err := IsIndependentTriples(ix, implicit)
		if err != nil {
			t.Fatalf("IsIndependentTriples error: %v", err)
		}
		if !ok {
			t.Fatalf("trial %d: implicit first fit not independent", trial)
		}
	}
}

func TestIsIndependentTriples(t *testing.T) {
	h := hypergraph.MustNew(3, [][]int32{{0, 1}, {1, 2}})
	ix := mustIndex(t, h, 2)
	ok, err := IsIndependentTriples(ix, []Triple{{0, 0, 1}, {1, 2, 1}})
	if err != nil {
		t.Fatalf("error: %v", err)
	}
	// (0,0,1) and (1,2,1): same colour, vertices 0 and 2, {0,2} not inside
	// either edge: independent.
	if !ok {
		t.Error("independent pair rejected")
	}
	ok, err = IsIndependentTriples(ix, []Triple{{0, 0, 1}, {0, 1, 1}})
	if err != nil {
		t.Fatalf("error: %v", err)
	}
	if ok {
		t.Error("same-edge pair accepted")
	}
	ok, err = IsIndependentTriples(ix, []Triple{{0, 0, 1}, {0, 0, 1}})
	if err != nil {
		t.Fatalf("error: %v", err)
	}
	if ok {
		t.Error("duplicate accepted")
	}
}

// TestConflictGraphCliquePartitionBound verifies the α(G_k) <= m argument
// of Lemma 2.1(a): the per-edge blocks are cliques, so any independent set
// has at most one triple per edge.
func TestConflictGraphCliquePartitionBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h, _, err := hypergraph.PlantedCF(15, 7, 3, 2, 4, rng)
	if err != nil {
		t.Fatalf("PlantedCF error: %v", err)
	}
	ix := mustIndex(t, h, 3)
	g, err := Build(ix)
	if err != nil {
		t.Fatalf("Build error: %v", err)
	}
	set, err := maxis.ExactOpts(g, maxis.ExactOptions{CliqueHint: ix.EdgeCliqueHint()})
	if err != nil {
		t.Fatalf("Exact error: %v", err)
	}
	if len(set) > h.M() {
		t.Errorf("α(G_k) = %d exceeds m = %d", len(set), h.M())
	}
}

func TestBuildValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h, err := hypergraph.Uniform(10, 6, 3, rng)
	if err != nil {
		t.Fatalf("Uniform error: %v", err)
	}
	ix := mustIndex(t, h, 2)
	g, err := Build(ix)
	if err != nil {
		t.Fatalf("Build error: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("built conflict graph invalid: %v", err)
	}
}

package core

// localsim.go makes the paper's remark "the conflict graph G_k can be
// efficiently simulated in H in the LOCAL model" executable. Triples
// (e, v, c) are hosted at their vertex v; every conflict-graph neighbour
// of a triple lives within two hops of v in the bipartite incidence
// structure of H (through e for E_edge/E_color, through v itself for
// E_vertex), so one synchronous round of any G_k algorithm costs O(1)
// rounds of H. VirtualLubyTriples runs Luby's randomized MIS over this
// virtual graph, and ReduceLocalRandomized chains it into the fully
// distributed (randomized) version of the Theorem 1.1 pipeline.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"pslocal/internal/cfcolor"
	"pslocal/internal/hypergraph"
)

// ErrTooManyPhases reports a Luby run that did not converge within the
// phase budget (vanishingly unlikely for correct inputs).
var ErrTooManyPhases = errors.New("core: virtual Luby phase budget exhausted")

// HostDilation is the number of H-incidence rounds needed to emulate one
// synchronous round of G_k: a request and a reply across the two-hop
// v–e–u paths of the incidence structure.
const HostDilation = 4

// ForEachNeighborTriple enumerates the G_k-neighbours of t directly from
// H. A neighbour reachable through several containment witnesses is
// visited once per witness (callers that need set semantics deduplicate
// by id); enumeration stops early when fn returns false.
func ForEachNeighborTriple(ix *Index, t Triple, fn func(Triple) bool) error {
	h := ix.h
	if _, err := ix.ID(t); err != nil {
		return err
	}
	stop := false
	emit := func(u Triple) bool {
		if u == t {
			return true
		}
		if !fn(u) {
			stop = true
			return false
		}
		return true
	}
	// E_edge: the clique block of t.Edge.
	h.ForEachEdgeVertex(int(t.Edge), func(u int32) bool {
		for c := int32(1); c <= ix.k; c++ {
			if !emit(Triple{Edge: t.Edge, Vertex: u, Color: c}) {
				return false
			}
		}
		return true
	})
	if stop {
		return nil
	}
	// E_vertex: same vertex, different colour, any other incident edge.
	h.ForEachIncidentEdge(t.Vertex, func(g int32) bool {
		if g == t.Edge {
			return true // inside the E_edge block, already emitted
		}
		for d := int32(1); d <= ix.k; d++ {
			if d == t.Color {
				continue
			}
			if !emit(Triple{Edge: g, Vertex: t.Vertex, Color: d}) {
				return false
			}
		}
		return true
	})
	if stop {
		return nil
	}
	// E_color with container t.Edge: (g, u, c) for u ∈ e \ {v}, g ∋ u.
	h.ForEachEdgeVertex(int(t.Edge), func(u int32) bool {
		if u == t.Vertex {
			return true
		}
		h.ForEachIncidentEdge(u, func(g int32) bool {
			if g == t.Edge {
				return true // already emitted via E_edge
			}
			return emit(Triple{Edge: g, Vertex: u, Color: t.Color})
		})
		return !stop
	})
	if stop {
		return nil
	}
	// E_color with container g: (g, u, c) for g ∋ v, u ∈ g \ {v}.
	h.ForEachIncidentEdge(t.Vertex, func(g int32) bool {
		if g == t.Edge {
			return true
		}
		h.ForEachEdgeVertex(int(g), func(u int32) bool {
			if u == t.Vertex {
				return true
			}
			return emit(Triple{Edge: g, Vertex: u, Color: t.Color})
		})
		return !stop
	})
	return nil
}

// LubyStats reports a virtual Luby run.
type LubyStats struct {
	// Phases is the number of bid/join phases executed.
	Phases int
	// VirtualRounds is 2·Phases, the synchronous rounds on G_k.
	VirtualRounds int
	// HostRounds is VirtualRounds·HostDilation, the cost after simulating
	// G_k on H's incidence structure.
	HostRounds int
}

// VirtualLubyTriples runs Luby's randomized MIS over the implicit
// conflict graph G_k, never materialising it. The result is a maximal
// independent set of G_k; with probability 1 the run converges, and the
// phase budget (0 = a generous default) only guards against broken
// randomness.
func VirtualLubyTriples(ix *Index, seed int64, maxPhases int) ([]Triple, *LubyStats, error) {
	n := ix.NumNodes()
	if maxPhases <= 0 {
		maxPhases = 8*bitsLen(n) + 32
	}
	rng := rand.New(rand.NewSource(seed))
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	activeCount := n
	var out []Triple
	stats := &LubyStats{}
	priorities := make([]uint64, n)
	for phase := 1; activeCount > 0; phase++ {
		if phase > maxPhases {
			return nil, stats, fmt.Errorf("%w: %d phases, %d triples still active", ErrTooManyPhases, maxPhases, activeCount)
		}
		stats.Phases = phase
		// Bid round: every active triple draws a priority.
		for id := 0; id < n; id++ {
			if active[id] {
				priorities[id] = rng.Uint64()
			}
		}
		// Join round: local minima join; (priority, id) breaks ties.
		var winners []int32
		for id := int32(0); int(id) < n; id++ {
			if !active[id] {
				continue
			}
			t, err := ix.TripleOf(id)
			if err != nil {
				return nil, stats, err
			}
			win := true
			err = ForEachNeighborTriple(ix, t, func(u Triple) bool {
				uid, idErr := ix.ID(u)
				if idErr != nil {
					err = idErr
					return false
				}
				if active[uid] && less(priorities[uid], uid, priorities[id], id) {
					win = false
					return false
				}
				return true
			})
			if err != nil {
				return nil, stats, err
			}
			if win {
				winners = append(winners, id)
			}
		}
		// Winners and their neighbourhoods retire.
		for _, id := range winners {
			if !active[id] {
				continue // a neighbour of an earlier winner this phase? impossible, but stay safe
			}
			t, err := ix.TripleOf(id)
			if err != nil {
				return nil, stats, err
			}
			out = append(out, t)
			active[id] = false
			activeCount--
			err = ForEachNeighborTriple(ix, t, func(u Triple) bool {
				uid, idErr := ix.ID(u)
				if idErr != nil {
					err = idErr
					return false
				}
				if active[uid] {
					active[uid] = false
					activeCount--
				}
				return true
			})
			if err != nil {
				return nil, stats, err
			}
		}
	}
	stats.VirtualRounds = 2 * stats.Phases
	stats.HostRounds = stats.VirtualRounds * HostDilation
	return out, stats, nil
}

// less orders (priority, id) pairs lexicographically.
func less(p1 uint64, id1 int32, p2 uint64, id2 int32) bool {
	if p1 != p2 {
		return p1 < p2
	}
	return id1 < id2
}

// bitsLen returns ceil(log2(n+1)), a crude log for phase budgets.
func bitsLen(n int) int {
	l := 0
	for v := n; v > 0; v >>= 1 {
		l++
	}
	return l
}

// LocalResult is the outcome of the distributed randomized reduction.
type LocalResult struct {
	// Multicoloring is the conflict-free multicolouring of the input.
	Multicoloring cfcolor.Multicoloring
	// Phases records the usual per-phase statistics.
	Phases []PhaseStat
	// TotalColors is K times the number of phases.
	TotalColors int
	// K echoes the palette size.
	K int
	// VirtualRounds sums the G_k rounds over all phases.
	VirtualRounds int
	// HostRounds sums the simulated H-incidence rounds over all phases.
	HostRounds int
}

// ReduceLocalRandomized is the fully distributed (LOCAL-model,
// randomized) variant of the Theorem 1.1 pipeline: each phase computes a
// maximal independent set of the implicit conflict graph with Luby's
// algorithm simulated on H. An MIS of G_k is an independent set, so
// Lemma 2.1(b) applies and every phase removes at least one edge; unlike
// the SLOCAL λ-oracle pipeline this randomized variant carries no
// polylog-phase guarantee (the paper's point: a LOCAL MIS is *not* known
// to give a MaxIS approximation), and the phase count is an empirical
// observation the experiments record.
// A non-nil ctx cancels cooperatively between phases.
func ReduceLocalRandomized(ctx context.Context, h *hypergraph.Hypergraph, k int, seed int64) (*LocalResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadK, k)
	}
	res := &LocalResult{
		Multicoloring: cfcolor.NewMulticoloring(h.N()),
		K:             k,
	}
	cur := h
	maxPhases := 4*h.M() + 16
	for phase := 1; cur.M() > 0; phase++ {
		if phase > maxPhases {
			return nil, fmt.Errorf("%w: %d phases", ErrPhaseBudget, maxPhases)
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: local phase %d: %w", phase, err)
			}
		}
		ix, err := NewIndex(cur, k)
		if err != nil {
			return nil, err
		}
		triples, stats, err := VirtualLubyTriples(ix, seed+int64(phase), 0)
		if err != nil {
			return nil, fmt.Errorf("core: local phase %d: %w", phase, err)
		}
		res.VirtualRounds += stats.VirtualRounds
		res.HostRounds += stats.HostRounds
		f, err := ISToColoring(ix, triples)
		if err != nil {
			return nil, fmt.Errorf("core: local phase %d: %w", phase, err)
		}
		unhappy := cfcolor.UnhappyEdges(cur, f)
		removed := cur.M() - len(unhappy)
		if removed < len(triples) {
			return nil, fmt.Errorf("core: local phase %d removed %d < |I| = %d, violating Lemma 2.1(b)",
				phase, removed, len(triples))
		}
		if removed == 0 {
			return nil, fmt.Errorf("%w: local phase %d", ErrNoProgress, phase)
		}
		offset := int32((phase - 1) * k)
		for v := int32(0); int(v) < cur.N(); v++ {
			if f[v] != cfcolor.Uncolored {
				res.Multicoloring.Add(v, f[v]+offset)
			}
		}
		res.Phases = append(res.Phases, PhaseStat{
			Phase:         phase,
			EdgesBefore:   cur.M(),
			ConflictNodes: ix.NumNodes(),
			ConflictEdges: -1,
			ISSize:        len(triples),
			HappyRemoved:  removed,
		})
		cur, err = cur.KeepEdges(unhappy)
		if err != nil {
			return nil, fmt.Errorf("core: local phase %d residual: %w", phase, err)
		}
	}
	res.TotalColors = k * len(res.Phases)
	return res, nil
}

package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"pslocal/internal/cfcolor"
	"pslocal/internal/engine"
	"pslocal/internal/graph"
	"pslocal/internal/hypergraph"
	"pslocal/internal/maxis"
)

func TestReduceExactSinglePhaseOnPlanted(t *testing.T) {
	// With the exact oracle (λ = 1) and a CF-k-colourable instance,
	// α(G_k) = |E| (Lemma 2.1a), so one phase colours everything:
	// ρ = 1·ln(m)+1 collapses because every edge turns happy at once.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		k := 2 + rng.Intn(2)
		h, _, err := hypergraph.PlantedCF(14+rng.Intn(6), 6+rng.Intn(5), k, 2, 4, rng)
		if err != nil {
			t.Fatalf("PlantedCF error: %v", err)
		}
		res, err := Reduce(nil, h, Options{K: k, Mode: ModeExactHinted})
		if err != nil {
			t.Fatalf("Reduce error: %v", err)
		}
		if len(res.Phases) != 1 {
			t.Errorf("trial %d: %d phases with exact oracle, want 1", trial, len(res.Phases))
		}
		if res.Phases[0].ISSize != h.M() {
			t.Errorf("trial %d: phase IS size %d, want m = %d", trial, res.Phases[0].ISSize, h.M())
		}
		if !cfcolor.IsConflictFreeMulti(h, res.Multicoloring) {
			t.Errorf("trial %d: result not conflict-free", trial)
		}
		if res.TotalColors != k {
			t.Errorf("trial %d: total colours %d, want k = %d", trial, res.TotalColors, k)
		}
	}
}

func TestReduceAllModesProduceConflictFreeMulticolorings(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	oracles := []Options{
		{Mode: ModeExactHinted},
		{Mode: ModeImplicitFirstFit},
		{Mode: ModeOracle, Oracle: maxis.MinDegreeOracle{}},
		{Mode: ModeOracle, Oracle: &maxis.RandomOrderOracle{Seed: 5}},
		{Mode: ModeOracle, Oracle: maxis.CliqueRemovalOracle{}},
	}
	for trial := 0; trial < 4; trial++ {
		k := 2 + rng.Intn(2)
		h, _, err := hypergraph.PlantedCF(15, 8, k, 2, 4, rng)
		if err != nil {
			t.Fatalf("PlantedCF error: %v", err)
		}
		for _, base := range oracles {
			opts := base
			opts.K = k
			res, err := Reduce(nil, h, opts)
			if err != nil {
				t.Fatalf("trial %d mode %d: %v", trial, opts.Mode, err)
			}
			if err := res.Multicoloring.Validate(h); err != nil {
				t.Fatalf("trial %d mode %d: invalid multicolouring: %v", trial, opts.Mode, err)
			}
			if !cfcolor.IsConflictFreeMulti(h, res.Multicoloring) {
				t.Errorf("trial %d mode %d: not conflict-free", trial, opts.Mode)
			}
			if res.TotalColors != k*len(res.Phases) {
				t.Errorf("trial %d mode %d: colours %d != k·phases %d",
					trial, opts.Mode, res.TotalColors, k*len(res.Phases))
			}
			if res.Multicoloring.NumDistinctColors() > res.TotalColors {
				t.Errorf("trial %d mode %d: more distinct colours than budget", trial, opts.Mode)
			}
		}
	}
}

func TestReducePhaseInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h, _, err := hypergraph.PlantedCF(25, 18, 3, 3, 5, rng)
	if err != nil {
		t.Fatalf("PlantedCF error: %v", err)
	}
	res, err := Reduce(nil, h, Options{K: 3, Mode: ModeImplicitFirstFit})
	if err != nil {
		t.Fatalf("Reduce error: %v", err)
	}
	edges := h.M()
	for i, ph := range res.Phases {
		if ph.Phase != i+1 {
			t.Errorf("phase numbering %d, want %d", ph.Phase, i+1)
		}
		if ph.EdgesBefore != edges {
			t.Errorf("phase %d: EdgesBefore %d, want %d", ph.Phase, ph.EdgesBefore, edges)
		}
		if ph.HappyRemoved < ph.ISSize {
			t.Errorf("phase %d: removed %d < |I| = %d (Lemma 2.1b)", ph.Phase, ph.HappyRemoved, ph.ISSize)
		}
		if ph.ISSize < 1 {
			t.Errorf("phase %d: empty independent set", ph.Phase)
		}
		// Conflict nodes = k·Σ|e| over residual edges; with edge sizes in
		// [3,5] and k=3 that is between 9·E and 15·E.
		if ph.ConflictNodes < 9*ph.EdgesBefore || ph.ConflictNodes > 15*ph.EdgesBefore {
			t.Errorf("phase %d: conflict nodes %d outside [9E,15E] for E=%d",
				ph.Phase, ph.ConflictNodes, ph.EdgesBefore)
		}
		edges -= ph.HappyRemoved
	}
	if edges != 0 {
		t.Errorf("phases end with %d edges, want 0", edges)
	}
}

func TestReduceGreedyPhaseBoundLooseEnvelope(t *testing.T) {
	// The paper's bound with a λ-approximate oracle is λ·ln(m)+1 phases.
	// First-fit greedy has no a-priori λ, but on planted instances its
	// empirical phase count should stay within the generous envelope
	// K·ln(m)+O(1) phases — and must never exceed m (one edge per phase).
	rng := rand.New(rand.NewSource(4))
	h, _, err := hypergraph.PlantedCF(30, 22, 3, 3, 5, rng)
	if err != nil {
		t.Fatalf("PlantedCF error: %v", err)
	}
	res, err := Reduce(nil, h, Options{K: 3, Mode: ModeImplicitFirstFit})
	if err != nil {
		t.Fatalf("Reduce error: %v", err)
	}
	if len(res.Phases) > h.M() {
		t.Errorf("%d phases exceed m = %d", len(res.Phases), h.M())
	}
	loose := int(10*math.Log(float64(h.M()))) + 5
	if len(res.Phases) > loose {
		t.Errorf("%d phases exceed loose envelope %d", len(res.Phases), loose)
	}
}

func TestReduceUniformNonPlanted(t *testing.T) {
	// Uniform random hypergraphs need not be CF k-colourable for small k;
	// the reduction still terminates (any non-empty conflict graph has a
	// non-empty independent set) and outputs a valid CF multicolouring.
	rng := rand.New(rand.NewSource(5))
	h, err := hypergraph.Uniform(20, 12, 4, rng)
	if err != nil {
		t.Fatalf("Uniform error: %v", err)
	}
	res, err := Reduce(nil, h, Options{K: 2, Mode: ModeImplicitFirstFit})
	if err != nil {
		t.Fatalf("Reduce error: %v", err)
	}
	if !cfcolor.IsConflictFreeMulti(h, res.Multicoloring) {
		t.Error("result not conflict-free")
	}
}

func TestReduceSingletonEdges(t *testing.T) {
	h := hypergraph.MustNew(2, [][]int32{{0}, {0}, {1}})
	res, err := Reduce(nil, h, Options{K: 1, Mode: ModeExactHinted})
	if err != nil {
		t.Fatalf("Reduce error: %v", err)
	}
	if len(res.Phases) != 1 {
		t.Errorf("%d phases, want 1 (singletons are happy once coloured)", len(res.Phases))
	}
	if !cfcolor.IsConflictFreeMulti(h, res.Multicoloring) {
		t.Error("result not conflict-free")
	}
}

func TestReduceEmptyHypergraph(t *testing.T) {
	h := hypergraph.MustNew(5, nil)
	res, err := Reduce(nil, h, Options{K: 2, Mode: ModeExactHinted})
	if err != nil {
		t.Fatalf("Reduce error: %v", err)
	}
	if len(res.Phases) != 0 || res.TotalColors != 0 {
		t.Errorf("empty hypergraph: %d phases, %d colours", len(res.Phases), res.TotalColors)
	}
}

func TestReduceOptionErrors(t *testing.T) {
	h := hypergraph.MustNew(2, [][]int32{{0, 1}})
	if _, err := Reduce(nil, h, Options{K: 0, Mode: ModeExactHinted}); !errors.Is(err, ErrBadK) {
		t.Errorf("K=0 error = %v, want ErrBadK", err)
	}
	if _, err := Reduce(nil, h, Options{K: 2, Mode: ModeOracle}); !errors.Is(err, ErrNoOracle) {
		t.Errorf("no oracle error = %v, want ErrNoOracle", err)
	}
	if _, err := Reduce(nil, h, Options{K: 2, Mode: 0}); !errors.Is(err, ErrNoOracle) {
		t.Errorf("bad mode error = %v, want ErrNoOracle", err)
	}
}

// emptyOracle always returns the empty set, violating progress.
type emptyOracle struct{}

func (emptyOracle) Name() string                        { return "empty" }
func (emptyOracle) Solve(*graph.Graph) ([]int32, error) { return nil, nil }

// brokenOracle returns a dependent set.
type brokenOracle struct{}

func (brokenOracle) Name() string { return "broken" }
func (brokenOracle) Solve(g *graph.Graph) ([]int32, error) {
	var out []int32
	for v := 0; v < g.N() && v < 4; v++ {
		out = append(out, int32(v))
	}
	return out, nil
}

func TestReduceBrokenOracles(t *testing.T) {
	h := hypergraph.MustNew(3, [][]int32{{0, 1}, {1, 2}})
	if _, err := Reduce(nil, h, Options{K: 2, Mode: ModeOracle, Oracle: emptyOracle{}}); !errors.Is(err, ErrNoProgress) {
		t.Errorf("empty oracle error = %v, want ErrNoProgress", err)
	}
	if _, err := Reduce(nil, h, Options{K: 2, Mode: ModeOracle, Oracle: brokenOracle{}}); !errors.Is(err, ErrOracleNotIndependent) {
		t.Errorf("broken oracle error = %v, want ErrOracleNotIndependent", err)
	}
}

// engineRecordingOracle records the engine options Reduce forwards to
// EngineSetter oracles.
type engineRecordingOracle struct {
	maxis.Oracle
	got      engine.Options
	received bool
}

func (o *engineRecordingOracle) SetEngine(opts engine.Options) {
	o.got = opts
	o.received = true
}

func TestReduceForwardsEngineToSetterOracles(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	h, _, err := hypergraph.PlantedCF(20, 8, 2, 3, 4, rng)
	if err != nil {
		t.Fatalf("PlantedCF error: %v", err)
	}
	rec := &engineRecordingOracle{Oracle: maxis.MinDegreeOracle{}}
	eng := engine.Options{Workers: 3}
	if _, err := Reduce(nil, h, Options{K: 2, Mode: ModeOracle, Oracle: rec, Engine: eng}); err != nil {
		t.Fatalf("Reduce error: %v", err)
	}
	if !rec.received || rec.got.Workers != 3 {
		t.Errorf("oracle engine = %+v (received %v), want Workers=3", rec.got, rec.received)
	}

	// The zero engine is NOT forwarded: a pre-configured oracle keeps its
	// own options instead of being downgraded to serial.
	rec2 := &engineRecordingOracle{Oracle: maxis.MinDegreeOracle{}}
	if _, err := Reduce(nil, h, Options{K: 2, Mode: ModeOracle, Oracle: rec2}); err != nil {
		t.Fatalf("Reduce error: %v", err)
	}
	if rec2.received {
		t.Errorf("zero Options.Engine forwarded %+v, want no SetEngine call", rec2.got)
	}
}

func TestReducePortfolioMatchesRegistryMembers(t *testing.T) {
	// A portfolio-driven reduction verifies end to end and its phase-1
	// independent set is at least every member's phase-1 set (same G_1).
	rng := rand.New(rand.NewSource(12))
	h, _, err := hypergraph.PlantedCF(15, 30, 2, 4, 6, rng)
	if err != nil {
		t.Fatalf("PlantedCF error: %v", err)
	}
	const spec = "portfolio:greedy-firstfit,greedy-mindeg,greedy-random"
	seed := int64(21)
	po, err := maxis.Lookup(spec, seed)
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	res, err := Reduce(nil, h, Options{K: 2, Mode: ModeOracle, Oracle: po, Engine: engine.Parallel()})
	if err != nil {
		t.Fatalf("portfolio Reduce error: %v", err)
	}
	if !cfcolor.IsConflictFreeMulti(h, res.Multicoloring) {
		t.Error("portfolio result not conflict-free")
	}
	for i, name := range []string{"greedy-firstfit", "greedy-mindeg", "greedy-random"} {
		// Same member-seed derivation as the registry portfolio.
		member, err := maxis.Lookup(name, seed+int64(i))
		if err != nil {
			t.Fatalf("lookup %s: %v", name, err)
		}
		mres, err := Reduce(nil, h, Options{K: 2, Mode: ModeOracle, Oracle: member})
		if err != nil {
			t.Fatalf("%s Reduce error: %v", name, err)
		}
		if res.Phases[0].ISSize < mres.Phases[0].ISSize {
			t.Errorf("portfolio |I_1| = %d < member %s |I_1| = %d",
				res.Phases[0].ISSize, name, mres.Phases[0].ISSize)
		}
	}
}

func TestPhaseBound(t *testing.T) {
	if got := PhaseBound(1, 1); got != 1 {
		t.Errorf("PhaseBound(1,1) = %d, want 1", got)
	}
	// λ=1, m=e^2 ≈ 7.39 → ceil(2)+1 = 3.
	if got := PhaseBound(1, 8); got != 4 {
		t.Errorf("PhaseBound(1,8) = %d, want 4", got)
	}
	if got := PhaseBound(2, 100); got != int(math.Ceil(2*math.Log(100)))+1 {
		t.Errorf("PhaseBound(2,100) = %d", got)
	}
}

package core

// reduction.go implements the proof of Theorem 1.1 as an executable
// pipeline: conflict-free multicolouring via iterated approximate maximum
// independent set. Phase i builds the conflict graph G_k of the residual
// hypergraph H_i, asks a MaxIS oracle for an independent set I_i, colours
// each vertex v with (v, ·, c) ∈ I_i using a fresh palette, and removes
// the happy edges. With a λ-approximate oracle on instances admitting a CF
// k-colouring, Lemma 2.1 gives |I_i| >= |E_i|/λ, hence
// |E_{i+1}| <= (1 − 1/λ)|E_i| and termination within ρ = λ·ln m + 1
// phases with k·ρ total colours.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"pslocal/internal/cfcolor"
	"pslocal/internal/engine"
	"pslocal/internal/hypergraph"
	"pslocal/internal/maxis"
	"pslocal/internal/obs"
)

// ffScratchPool recycles FirstFitScratch buffers across Reduce calls, so
// a solver serving many small implicit-mode reductions reaches steady
// state without per-call scratch growth. Each Reduce holds one scratch
// exclusively for its whole phase loop.
var ffScratchPool = sync.Pool{New: func() any { return new(FirstFitScratch) }}

// Reduction errors.
var (
	// ErrNoOracle reports that Options specify no solving mode.
	ErrNoOracle = errors.New("core: no oracle mode configured")
	// ErrOracleNotIndependent reports an oracle that returned a
	// non-independent set — a contract violation, surfaced rather than
	// silently miscoloured.
	ErrOracleNotIndependent = errors.New("core: oracle returned a non-independent set")
	// ErrNoProgress reports a phase that made no edge happy, which a
	// correct oracle can only cause on an empty conflict graph.
	ErrNoProgress = errors.New("core: reduction phase made no progress")
	// ErrPhaseBudget reports more phases than MaxPhases.
	ErrPhaseBudget = errors.New("core: phase budget exhausted")
)

// Mode selects how each phase solves MaxIS on the conflict graph.
type Mode int

const (
	// ModeOracle materialises G_k and runs Options.Oracle on it.
	ModeOracle Mode = iota + 1
	// ModeExactHinted materialises G_k and solves it exactly with the
	// per-edge clique hint (λ = 1).
	ModeExactHinted
	// ModeImplicitFirstFit runs first-fit greedy on the implicit conflict
	// graph without materialising it (the scalable mode).
	ModeImplicitFirstFit
)

// Options configures Reduce.
type Options struct {
	// K is the per-phase palette size (the k of Theorem 1.2). Required.
	K int
	// Mode selects the solving strategy; ModeOracle requires Oracle.
	Mode Mode
	// Oracle is the λ-approximate MaxIS oracle for ModeOracle.
	Oracle maxis.Oracle
	// MaxPhases bounds the loop defensively; 0 means 4·m + 16.
	MaxPhases int
	// Engine configures parallel G_k construction and cancellation of the
	// phase loop; the zero value is the serial path. A non-zero Engine is
	// forwarded to Oracle when the oracle implements maxis.EngineSetter
	// (the portfolio), so the per-phase solve fans out on the same pool;
	// the zero value leaves a pre-configured oracle untouched.
	Engine engine.Options
	// OracleName labels phase spans on traced calls ("implicit", "exact",
	// or the registry name behind Oracle). Informational only; it does not
	// affect solving.
	OracleName string
}

// PhaseStat records one phase of the reduction, the raw material of
// experiments E4/E5 and figure F1.
type PhaseStat struct {
	// Phase is 1-based.
	Phase int
	// EdgesBefore is |E_i|.
	EdgesBefore int
	// ConflictNodes is |V(G_k(H_i))|.
	ConflictNodes int
	// ConflictEdges is |E(G_k(H_i))|; -1 in implicit mode (not built).
	ConflictEdges int
	// ISSize is |I_i|.
	ISSize int
	// ISWeight is the total hypergraph-vertex weight of I_i (each triple
	// counts w_H(v)); 0 on unweighted inputs, where it carries no
	// information beyond ISSize.
	ISWeight int64
	// HappyRemoved is the number of edges removed after this phase; by
	// Lemma 2.1(b) it is at least ISSize. The lemma counts edges for any
	// independent set, so it holds unchanged under weighted objectives.
	HappyRemoved int
}

// Result is the outcome of the reduction.
type Result struct {
	// Multicoloring is the conflict-free multicolouring of the input.
	Multicoloring cfcolor.Multicoloring
	// Phases records per-phase statistics.
	Phases []PhaseStat
	// TotalColors is K times the number of phases (distinct palettes).
	TotalColors int
	// K echoes the palette size.
	K int
	// Weighted reports a vertex-weighted input; the weight fields below
	// are populated only when it is set.
	Weighted bool
	// TotalWeight is the total weight of vertices that received at least
	// one colour; 0 on unweighted inputs.
	TotalWeight int64
}

// PhaseBound returns the paper's phase bound ρ = λ·ln(m) + 1 (at least 1).
func PhaseBound(lambda float64, m int) int {
	if m <= 1 {
		return 1
	}
	return int(math.Ceil(lambda*math.Log(float64(m)))) + 1
}

// Reduce runs the Theorem 1.1 reduction on h. A non-nil ctx cancels
// cooperatively — between phases, between construction shards, and inside
// the exact and portfolio solvers — and takes precedence over
// opts.Engine.Ctx; a nil ctx leaves opts.Engine.Ctx in charge (never
// cancelled when that is nil too).
func Reduce(ctx context.Context, h *hypergraph.Hypergraph, opts Options) (*Result, error) {
	if ctx != nil {
		opts.Engine.Ctx = ctx
	}
	if opts.K < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadK, opts.K)
	}
	if opts.Mode == ModeOracle && opts.Oracle == nil {
		return nil, fmt.Errorf("%w: ModeOracle without Oracle", ErrNoOracle)
	}
	if opts.Mode < ModeOracle || opts.Mode > ModeImplicitFirstFit {
		return nil, fmt.Errorf("%w: mode %d", ErrNoOracle, opts.Mode)
	}
	// Fan-out oracles (the portfolio) inherit the reduction's engine, so
	// one Options.Engine configures G_k construction and solving alike.
	// Only a non-zero engine is forwarded: a caller who configured the
	// oracle directly (SetEngine before Reduce) must not be silently
	// downgraded to the serial zero value.
	if es, ok := opts.Oracle.(maxis.EngineSetter); ok && opts.Engine != (engine.Options{}) {
		es.SetEngine(opts.Engine)
	}
	maxPhases := opts.MaxPhases
	if maxPhases <= 0 {
		maxPhases = 4*h.M() + 16
	}

	res := &Result{
		Multicoloring: cfcolor.NewMulticoloring(h.N()),
		K:             opts.K,
		Weighted:      h.Weighted(),
	}
	var colored []bool // weighted inputs: vertices holding >= 1 colour
	if res.Weighted {
		colored = make([]bool, h.N())
	}
	cur := h
	ff := ffScratchPool.Get().(*FirstFitScratch) // shared across phases (implicit mode)
	defer ffScratchPool.Put(ff)
	// Phase spans land under the request trace when one rides the context;
	// a nil trace makes every span call a no-op.
	tr := obs.TraceFrom(opts.Engine.Ctx)
	for phase := 1; cur.M() > 0; phase++ {
		if phase > maxPhases {
			return nil, fmt.Errorf("%w: %d phases with %d edges left", ErrPhaseBudget, maxPhases, cur.M())
		}
		if err := opts.Engine.Err(); err != nil {
			return nil, fmt.Errorf("core: phase %d: %w", phase, err)
		}
		sp := tr.Start("phase")
		sp.SetPhase(phase)
		sp.SetOracle(opts.OracleName)
		ix, err := NewIndex(cur, opts.K)
		if err != nil {
			sp.End()
			return nil, err
		}
		stat := PhaseStat{
			Phase:         phase,
			EdgesBefore:   cur.M(),
			ConflictNodes: ix.NumNodes(),
			ConflictEdges: -1,
		}
		triples, conflictEdges, err := solvePhase(ix, opts, ff, sp)
		if err != nil {
			sp.End()
			return nil, fmt.Errorf("core: phase %d: %w", phase, err)
		}
		stat.ConflictEdges = conflictEdges
		stat.ISSize = len(triples)
		if res.Weighted {
			for _, t := range triples {
				stat.ISWeight += cur.Weight(t.Vertex)
			}
		}
		sp.SetDims(stat.ConflictNodes, stat.ConflictEdges)
		sp.SetIS(stat.ISSize, stat.ISWeight)

		f, err := ISToColoring(ix, triples)
		if err != nil {
			sp.End()
			return nil, fmt.Errorf("core: phase %d: %w", phase, err)
		}
		unhappy := cfcolor.UnhappyEdges(cur, f)
		stat.HappyRemoved = cur.M() - len(unhappy)
		if stat.HappyRemoved < stat.ISSize {
			// Lemma 2.1(b) guarantees >= |I| happy edges; anything less
			// means the oracle or the mapping is broken.
			sp.End()
			return nil, fmt.Errorf("core: phase %d removed %d < |I| = %d edges, violating Lemma 2.1(b)",
				phase, stat.HappyRemoved, stat.ISSize)
		}
		if stat.HappyRemoved == 0 {
			sp.End()
			return nil, fmt.Errorf("%w: phase %d", ErrNoProgress, phase)
		}
		// Commit the phase colouring with a fresh palette block.
		offset := int32((phase - 1) * opts.K)
		for v := int32(0); int(v) < cur.N(); v++ {
			if f[v] != cfcolor.Uncolored {
				res.Multicoloring.Add(v, f[v]+offset)
				if colored != nil {
					colored[v] = true
				}
			}
		}
		res.Phases = append(res.Phases, stat)
		cur, err = cur.KeepEdges(unhappy)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("core: phase %d residual: %w", phase, err)
		}
	}
	res.TotalColors = opts.K * len(res.Phases)
	for v, c := range colored {
		if c {
			res.TotalWeight += h.Weight(int32(v))
		}
	}
	return res, nil
}

// solvePhase produces the phase's independent set of triples and, when the
// conflict graph was materialised, its edge count. The implicit mode reuses
// ff's buffers across phases; its result is consumed within the phase.
// Child spans (csr_build, oracle_solve) attach under the phase span.
func solvePhase(ix *Index, opts Options, ff *FirstFitScratch, phaseSp obs.Span) ([]Triple, int, error) {
	if opts.Mode == ModeImplicitFirstFit {
		return ff.FirstFit(ix), -1, nil
	}
	build := phaseSp.Child("csr_build")
	g, err := BuildOpts(ix, opts.Engine)
	build.End()
	if err != nil {
		return nil, 0, err
	}
	build.SetDims(g.N(), g.M())
	solve := phaseSp.Child("oracle_solve")
	solve.SetOracle(opts.OracleName)
	var ids []int32
	switch opts.Mode {
	case ModeExactHinted:
		ids, err = maxis.ExactOpts(g, maxis.ExactOptions{CliqueHint: ix.EdgeCliqueHint(), Ctx: opts.Engine.Ctx})
	case ModeOracle:
		ids, err = maxis.OracleSolve(opts.Engine.Ctx, opts.Oracle, g)
	}
	solve.End()
	if err != nil {
		return nil, 0, err
	}
	solve.SetIS(len(ids), 0)
	if !maxis.IsIndependentSet(g, ids) {
		return nil, 0, ErrOracleNotIndependent
	}
	triples, err := IDsToTriples(ix, ids)
	if err != nil {
		return nil, 0, err
	}
	return triples, g.M(), nil
}

package core

import (
	"errors"
	"math/rand"
	"testing"

	"pslocal/internal/cfcolor"
	"pslocal/internal/hypergraph"
	"pslocal/internal/maxis"
)

// TestForEachNeighborTripleMatchesAdjacent: the implicit enumeration must
// visit exactly the triples the Adjacent predicate accepts (as a set —
// duplicates through multiple witnesses are allowed).
func TestForEachNeighborTripleMatchesAdjacent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 6; trial++ {
		var h *hypergraph.Hypergraph
		var err error
		if trial%2 == 0 {
			h, err = hypergraph.Uniform(8+rng.Intn(5), 3+rng.Intn(4), 3, rng)
		} else {
			h, _, err = hypergraph.PlantedCF(8+rng.Intn(5), 3+rng.Intn(4), 2, 2, 4, rng)
		}
		if err != nil {
			t.Fatalf("generator: %v", err)
		}
		k := 1 + rng.Intn(3)
		ix := mustIndex(t, h, k)
		ix.ForEachTriple(func(_ int32, tr Triple) bool {
			visited := map[Triple]bool{}
			if err := ForEachNeighborTriple(ix, tr, func(u Triple) bool {
				visited[u] = true
				return true
			}); err != nil {
				t.Fatalf("enumeration error: %v", err)
			}
			// Compare against the predicate over ALL triples.
			ix.ForEachTriple(func(_ int32, other Triple) bool {
				want, err := Adjacent(ix, tr, other)
				if err != nil {
					t.Fatalf("Adjacent error: %v", err)
				}
				if want != visited[other] {
					t.Fatalf("trial %d: neighbour sets disagree at %v vs %v: enumerated=%v, predicate=%v",
						trial, tr, other, visited[other], want)
				}
				return true
			})
			return true
		})
	}
}

func TestForEachNeighborTripleEarlyStop(t *testing.T) {
	h := hypergraph.MustNew(4, [][]int32{{0, 1, 2, 3}})
	ix := mustIndex(t, h, 2)
	count := 0
	if err := ForEachNeighborTriple(ix, Triple{0, 0, 1}, func(Triple) bool {
		count++
		return count < 3
	}); err != nil {
		t.Fatalf("error: %v", err)
	}
	if count != 3 {
		t.Errorf("early stop visited %d, want 3", count)
	}
	if err := ForEachNeighborTriple(ix, Triple{9, 0, 1}, func(Triple) bool { return true }); err == nil {
		t.Error("bad triple accepted")
	}
}

func TestVirtualLubyIsMaximalIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 6; trial++ {
		h, _, err := hypergraph.PlantedCF(12+rng.Intn(8), 5+rng.Intn(5), 2, 2, 4, rng)
		if err != nil {
			t.Fatalf("generator: %v", err)
		}
		k := 1 + rng.Intn(3)
		ix := mustIndex(t, h, k)
		triples, stats, err := VirtualLubyTriples(ix, int64(trial), 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if stats.Phases < 1 || stats.VirtualRounds != 2*stats.Phases ||
			stats.HostRounds != HostDilation*stats.VirtualRounds {
			t.Errorf("trial %d: inconsistent stats %+v", trial, stats)
		}
		// Independence and maximality, checked on the explicit graph.
		g, err := Build(ix)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		ids, err := TriplesToIDs(ix, triples)
		if err != nil {
			t.Fatalf("ids: %v", err)
		}
		if !maxis.IsMaximalIndependentSet(g, ids) {
			t.Fatalf("trial %d: virtual Luby output is not a maximal independent set of G_k", trial)
		}
	}
}

func TestVirtualLubyPhaseBudget(t *testing.T) {
	h := hypergraph.MustNew(4, [][]int32{{0, 1}, {1, 2}, {2, 3}})
	ix := mustIndex(t, h, 2)
	// maxPhases = 1 cannot finish a 3-edge instance... actually one phase
	// can finish if every block resolves; use a deterministic check: the
	// budget error must surface when the budget is absurdly small and the
	// run needs more phases. Run with budget 1 repeatedly; accept either
	// success (lucky single phase) or ErrTooManyPhases, never another
	// error.
	for seed := int64(0); seed < 10; seed++ {
		_, _, err := VirtualLubyTriples(ix, seed, 1)
		if err != nil && !errors.Is(err, ErrTooManyPhases) {
			t.Fatalf("seed %d: unexpected error %v", seed, err)
		}
	}
}

func TestReduceLocalRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 4; trial++ {
		h, _, err := hypergraph.PlantedCF(15, 30, 2, 3, 5, rng)
		if err != nil {
			t.Fatalf("generator: %v", err)
		}
		res, err := ReduceLocalRandomized(nil, h, 2, int64(trial))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !cfcolor.IsConflictFreeMulti(h, res.Multicoloring) {
			t.Fatalf("trial %d: result not conflict-free", trial)
		}
		if res.TotalColors != 2*len(res.Phases) {
			t.Errorf("trial %d: colours %d != 2·phases", trial, res.TotalColors)
		}
		if res.VirtualRounds <= 0 || res.HostRounds != HostDilation*res.VirtualRounds {
			t.Errorf("trial %d: round accounting broken: %+v", trial, res)
		}
		edges := h.M()
		for _, ph := range res.Phases {
			if ph.EdgesBefore != edges {
				t.Errorf("trial %d: phase chain broken", trial)
			}
			edges -= ph.HappyRemoved
		}
		if edges != 0 {
			t.Errorf("trial %d: %d edges left", trial, edges)
		}
	}
}

func TestReduceLocalRandomizedErrors(t *testing.T) {
	h := hypergraph.MustNew(2, [][]int32{{0, 1}})
	if _, err := ReduceLocalRandomized(nil, h, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestReduceLocalRandomizedEmptyHypergraph(t *testing.T) {
	h := hypergraph.MustNew(3, nil)
	res, err := ReduceLocalRandomized(nil, h, 2, 1)
	if err != nil {
		t.Fatalf("error: %v", err)
	}
	if len(res.Phases) != 0 || res.VirtualRounds != 0 {
		t.Errorf("empty hypergraph: %+v", res)
	}
}

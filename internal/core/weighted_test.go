package core

// weighted_test.go covers the weighted reduction path: conflict-graph
// weight inheritance, the weight-ordered implicit first fit, and the
// contract that unit weights are the same instance as no weights.

import (
	"math/rand"
	"reflect"
	"testing"

	"pslocal/internal/cfcolor"
	"pslocal/internal/hypergraph"
	"pslocal/internal/maxis"
)

// weightedPlanted returns a planted CF instance with skewed weights.
func weightedPlanted(t *testing.T, rng *rand.Rand, n, m, k int) *hypergraph.Hypergraph {
	t.Helper()
	h, _, err := hypergraph.PlantedCF(n, m, k, 2, 4, rng)
	if err != nil {
		t.Fatalf("PlantedCF: %v", err)
	}
	ws := make([]int64, h.N())
	for i := range ws {
		ws[i] = 1 + rng.Int63n(100)
	}
	wh, err := hypergraph.WithWeights(h, ws)
	if err != nil {
		t.Fatalf("WithWeights: %v", err)
	}
	return wh
}

// TestBuildOptsWeightedConflictGraph checks every conflict-graph node
// (e, v, c) inherits the hypergraph weight of v, so oracles maximising
// set weight on G_k maximise hypergraph vertex weight.
func TestBuildOptsWeightedConflictGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := weightedPlanted(t, rng, 16, 8, 2)
	ix, err := NewIndex(h, 2)
	if err != nil {
		t.Fatalf("NewIndex: %v", err)
	}
	g, err := Build(ix)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !g.Weighted() {
		t.Fatal("conflict graph of a weighted hypergraph is unweighted")
	}
	ix.ForEachTriple(func(id int32, tr Triple) bool {
		if got, want := g.Weight(id), h.Weight(tr.Vertex); got != want {
			t.Errorf("triple %d (v=%d): weight %d, want %d", id, tr.Vertex, got, want)
		}
		return true
	})
	// The unweighted projection of the same instance must stay unweighted.
	uh, err := hypergraph.WithWeights(h, nil)
	if err != nil {
		t.Fatalf("WithWeights(nil): %v", err)
	}
	uix, err := NewIndex(uh, 2)
	if err != nil {
		t.Fatalf("NewIndex: %v", err)
	}
	ug, err := Build(uix)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if ug.Weighted() {
		t.Error("conflict graph of an unweighted hypergraph carries weights")
	}
}

// TestFirstFitWeightedValid checks the weight-ordered implicit first fit
// still returns an independent set of triples on weighted instances.
func TestFirstFitWeightedValid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 8; trial++ {
		h := weightedPlanted(t, rng, 12+trial, 6+trial, 2+trial%2)
		ix, err := NewIndex(h, 2+trial%2)
		if err != nil {
			t.Fatalf("NewIndex: %v", err)
		}
		ts := FirstFitTriples(ix)
		if len(ts) == 0 && ix.NumNodes() > 0 {
			t.Fatalf("trial %d: empty first-fit set on %d nodes", trial, ix.NumNodes())
		}
		if ok, err := IsIndependentTriples(ix, ts); err != nil || !ok {
			t.Errorf("trial %d: first-fit set not independent (ok=%v err=%v)", trial, ok, err)
		}
	}
}

// TestFirstFitWeightedPrefersHeavyVertices pins the ordering: with one
// vertex vastly heavier than the rest, the first-fit set must colour it.
func TestFirstFitWeightedPrefersHeavyVertices(t *testing.T) {
	// Two overlapping edges over 4 vertices; vertex 3 is the heavy one.
	h, err := hypergraph.NewWeighted(4, [][]int32{{0, 1, 2}, {1, 2, 3}},
		[]int64{1, 1, 1, 1000})
	if err != nil {
		t.Fatalf("NewWeighted: %v", err)
	}
	ix, err := NewIndex(h, 2)
	if err != nil {
		t.Fatalf("NewIndex: %v", err)
	}
	ts := FirstFitTriples(ix)
	found := false
	for _, tr := range ts {
		if tr.Vertex == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("first fit skipped the weight-1000 vertex: %v", ts)
	}
}

// TestReduceWeighted runs all three modes on weighted instances and
// checks the result is conflict-free with consistent weight accounting.
func TestReduceWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	oracle, err := maxis.Lookup("greedy-mindeg", 1)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	modes := []Options{
		{K: 2, Mode: ModeImplicitFirstFit},
		{K: 2, Mode: ModeExactHinted},
		{K: 2, Mode: ModeOracle, Oracle: oracle},
	}
	for mi, opts := range modes {
		h := weightedPlanted(t, rng, 14, 7, 2)
		res, err := Reduce(nil, h, opts)
		if err != nil {
			t.Fatalf("mode %d: Reduce: %v", mi, err)
		}
		if !res.Weighted {
			t.Errorf("mode %d: result not marked weighted", mi)
		}
		if !cfcolor.IsConflictFreeMulti(h, res.Multicoloring) {
			t.Errorf("mode %d: result not conflict-free", mi)
		}
		// TotalWeight is the weight of coloured vertices, so it is bounded
		// by the instance total and positive whenever anything is coloured.
		if res.TotalWeight <= 0 || res.TotalWeight > h.TotalWeight() {
			t.Errorf("mode %d: TotalWeight %d outside (0, %d]", mi, res.TotalWeight, h.TotalWeight())
		}
		for _, ph := range res.Phases {
			// Each phase's IS weight counts ISSize vertices of weight >= 1.
			if ph.ISWeight < int64(ph.ISSize) {
				t.Errorf("mode %d phase %d: ISWeight %d < ISSize %d", mi, ph.Phase, ph.ISWeight, ph.ISSize)
			}
		}
	}
}

// TestReduceUnitWeightEquivalence pins the acceptance contract: reducing
// an instance with an explicit all-ones weight vector is bit-identical
// to reducing it with no weights at all.
func TestReduceUnitWeightEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	h, _, err := hypergraph.PlantedCF(16, 8, 2, 2, 4, rng)
	if err != nil {
		t.Fatalf("PlantedCF: %v", err)
	}
	ones := make([]int64, h.N())
	for i := range ones {
		ones[i] = 1
	}
	uh, err := hypergraph.WithWeights(h, ones)
	if err != nil {
		t.Fatalf("WithWeights: %v", err)
	}
	if uh.Weighted() {
		t.Fatal("all-ones weight vector left the hypergraph weighted")
	}
	for _, mode := range []Mode{ModeImplicitFirstFit, ModeExactHinted} {
		a, err := Reduce(nil, h, Options{K: 2, Mode: mode})
		if err != nil {
			t.Fatalf("mode %d: Reduce(plain): %v", mode, err)
		}
		b, err := Reduce(nil, uh, Options{K: 2, Mode: mode})
		if err != nil {
			t.Fatalf("mode %d: Reduce(unit): %v", mode, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("mode %d: unit-weight reduction diverged:\n%+v\nvs\n%+v", mode, a, b)
		}
	}
}

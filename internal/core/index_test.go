package core

import (
	"errors"
	"math/rand"
	"testing"

	"pslocal/internal/hypergraph"
)

func mustIndex(t *testing.T, h *hypergraph.Hypergraph, k int) *Index {
	t.Helper()
	ix, err := NewIndex(h, k)
	if err != nil {
		t.Fatalf("NewIndex error: %v", err)
	}
	return ix
}

func TestIndexSizeFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		h, _, err := hypergraph.PlantedCF(20, 10, 3, 2, 5, rng)
		if err != nil {
			t.Fatalf("PlantedCF error: %v", err)
		}
		for _, k := range []int{1, 2, 4} {
			ix := mustIndex(t, h, k)
			if got, want := ix.NumNodes(), k*h.TotalEdgeSize(); got != want {
				t.Errorf("NumNodes = %d, want k·Σ|e| = %d", got, want)
			}
		}
	}
}

func TestIndexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h, _, err := hypergraph.PlantedCF(15, 8, 2, 2, 4, rng)
	if err != nil {
		t.Fatalf("PlantedCF error: %v", err)
	}
	ix := mustIndex(t, h, 3)
	count := 0
	ix.ForEachTriple(func(id int32, tr Triple) bool {
		count++
		gotID, err := ix.ID(tr)
		if err != nil {
			t.Fatalf("ID(%v) error: %v", tr, err)
		}
		if gotID != id {
			t.Fatalf("ID(%v) = %d, want %d", tr, gotID, id)
		}
		back, err := ix.TripleOf(id)
		if err != nil {
			t.Fatalf("TripleOf(%d) error: %v", id, err)
		}
		if back != tr {
			t.Fatalf("TripleOf(%d) = %v, want %v", id, back, tr)
		}
		return true
	})
	if count != ix.NumNodes() {
		t.Errorf("ForEachTriple visited %d, want %d", count, ix.NumNodes())
	}
}

func TestIndexErrors(t *testing.T) {
	h := hypergraph.MustNew(4, [][]int32{{0, 1}, {2, 3}})
	if _, err := NewIndex(h, 0); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0 error = %v, want ErrBadK", err)
	}
	ix := mustIndex(t, h, 2)
	bad := []Triple{
		{Edge: -1, Vertex: 0, Color: 1},
		{Edge: 2, Vertex: 0, Color: 1},
		{Edge: 0, Vertex: 2, Color: 1}, // vertex 2 not in edge 0
		{Edge: 0, Vertex: 0, Color: 0},
		{Edge: 0, Vertex: 0, Color: 3},
	}
	for _, tr := range bad {
		if _, err := ix.ID(tr); !errors.Is(err, ErrBadTriple) {
			t.Errorf("ID(%v) error = %v, want ErrBadTriple", tr, err)
		}
	}
	if _, err := ix.TripleOf(-1); !errors.Is(err, ErrBadNodeID) {
		t.Errorf("TripleOf(-1) error = %v, want ErrBadNodeID", err)
	}
	if _, err := ix.TripleOf(int32(ix.NumNodes())); !errors.Is(err, ErrBadNodeID) {
		t.Errorf("TripleOf(max) error = %v, want ErrBadNodeID", err)
	}
}

func TestEdgeCliqueHintMatchesBlocks(t *testing.T) {
	h := hypergraph.MustNew(5, [][]int32{{0, 1, 2}, {2, 3}, {4}})
	ix := mustIndex(t, h, 2)
	hint := ix.EdgeCliqueHint()
	if len(hint) != ix.NumNodes() {
		t.Fatalf("hint length %d, want %d", len(hint), ix.NumNodes())
	}
	ix.ForEachTriple(func(id int32, tr Triple) bool {
		if hint[id] != tr.Edge {
			t.Fatalf("hint[%d] = %d, want edge %d", id, hint[id], tr.Edge)
		}
		return true
	})
}

// Package local simulates the LOCAL model of distributed computing
// (Linial 1992), as recalled in Section 1 of the paper: an n-node network
// computes in synchronous rounds, and per round each node sends one
// unbounded-size message to each neighbour. The simulator measures exactly
// the quantities the model's theory speaks about — round complexity and
// message count — and hosts the randomized baselines the paper contrasts
// with deterministic SLOCAL algorithms: Luby's MIS [Lub86] and randomized
// (deg+1)-list colouring.
package local

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"pslocal/internal/graph"
)

// ErrMaxRounds reports that the algorithm did not terminate within the
// configured round budget.
var ErrMaxRounds = errors.New("local: round budget exhausted before all nodes halted")

// NodeView is the static information a node knows at start-up: its id, the
// network size n (standard LOCAL assumption), and its immediate topology.
type NodeView struct {
	// ID is the node's identifier, 0..n-1.
	ID int32
	// NumNodes is n, known to all nodes.
	NumNodes int
	// Degree is the node's degree.
	Degree int
	// Neighbors is a private copy of the node's neighbour ids.
	Neighbors []int32
}

// Received is one inbound message.
type Received struct {
	// From is the sending neighbour.
	From int32
	// Payload is the message content; the LOCAL model places no bound on
	// its size.
	Payload any
}

// Outbox collects a node's sends for the current round. A directed send to
// a neighbour overrides the broadcast payload for that neighbour.
type Outbox struct {
	broadcast    any
	hasBroadcast bool
	directed     map[int32]any
}

// Broadcast queues payload for delivery to every neighbour next round.
func (o *Outbox) Broadcast(payload any) {
	o.broadcast = payload
	o.hasBroadcast = true
}

// Send queues payload for delivery to the single neighbour `to` next round.
func (o *Outbox) Send(to int32, payload any) {
	if o.directed == nil {
		o.directed = make(map[int32]any)
	}
	o.directed[to] = payload
}

// payloadFor resolves what, if anything, this outbox delivers to neighbour
// u.
func (o *Outbox) payloadFor(u int32) (any, bool) {
	if p, ok := o.directed[u]; ok {
		return p, true
	}
	if o.hasBroadcast {
		return o.broadcast, true
	}
	return nil, false
}

// Program is the per-node state machine of a LOCAL algorithm.
type Program interface {
	// Round executes synchronous round `round` (1-based). inbox holds the
	// messages sent to this node in the previous round, sorted by sender.
	// The node queues its own sends on out. Returning done=true halts the
	// node after this round's sends are delivered.
	Round(round int, inbox []Received, out *Outbox) (done bool)
	// Output returns the node's final output; it is read after the node
	// halts.
	Output() any
}

// Factory instantiates the program for node v.
type Factory func(v int32, view NodeView) Program

// Options configures a run.
type Options struct {
	// MaxRounds bounds the simulation; 0 means the default of 4·(n + 16).
	MaxRounds int
	// Ctx cancels the simulation cooperatively: it is checked between
	// synchronous rounds. Nil never cancels.
	Ctx context.Context
}

// Result reports a completed run.
type Result struct {
	// Rounds is the number of synchronous rounds executed until the last
	// node halted.
	Rounds int
	// Messages counts delivered messages over the whole run.
	Messages int64
	// Outputs holds each node's final output, indexed by node id.
	Outputs []any
}

// Run executes a LOCAL algorithm on g until every node halts.
func Run(g *graph.Graph, factory Factory, opts Options) (*Result, error) {
	n := g.N()
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 4 * (n + 16)
	}
	programs := make([]Program, n)
	for v := 0; v < n; v++ {
		programs[v] = factory(int32(v), NodeView{
			ID:        int32(v),
			NumNodes:  n,
			Degree:    g.Degree(int32(v)),
			Neighbors: g.Neighbors(int32(v)),
		})
	}
	halted := make([]bool, n)
	inboxes := make([][]Received, n)
	res := &Result{Outputs: make([]any, n)}
	remaining := n
	if remaining == 0 {
		return res, nil
	}
	for round := 1; round <= maxRounds; round++ {
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return res, fmt.Errorf("local: run cancelled at round %d: %w", round, err)
			}
		}
		res.Rounds = round
		outboxes := make([]*Outbox, n)
		for v := 0; v < n; v++ {
			if halted[v] {
				continue
			}
			inbox := inboxes[v]
			sort.Slice(inbox, func(i, j int) bool { return inbox[i].From < inbox[j].From })
			out := &Outbox{}
			outboxes[v] = out
			if programs[v].Round(round, inbox, out) {
				halted[v] = true
				res.Outputs[v] = programs[v].Output()
				remaining--
			}
		}
		// Deliver.
		inboxes = make([][]Received, n)
		for v := 0; v < n; v++ {
			out := outboxes[v]
			if out == nil {
				continue
			}
			g.ForEachNeighbor(int32(v), func(u int32) bool {
				if p, ok := out.payloadFor(u); ok && !halted[u] {
					inboxes[u] = append(inboxes[u], Received{From: int32(v), Payload: p})
					res.Messages++
				}
				return true
			})
		}
		if remaining == 0 {
			return res, nil
		}
	}
	return res, fmt.Errorf("%w: %d rounds, %d nodes still running", ErrMaxRounds, maxRounds, remaining)
}

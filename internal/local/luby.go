package local

// luby.go implements Luby's randomized maximal independent set algorithm
// [Lub86], the classic O(log n)-round LOCAL algorithm the paper contrasts
// with the exponentially slower deterministic state of the art. Each phase
// takes two rounds: active nodes exchange random priorities, local minima
// join the MIS and announce it, and announced neighbours retire.

import (
	"math/rand"

	"pslocal/internal/graph"
)

// lubyBid is the phase-A message: a random priority with the node id as a
// deterministic tie-break.
type lubyBid struct {
	value uint64
	id    int32
}

// less orders bids lexicographically by (value, id).
func (b lubyBid) less(o lubyBid) bool {
	if b.value != o.value {
		return b.value < o.value
	}
	return b.id < o.id
}

// lubyJoin is the phase-B message announcing MIS membership.
type lubyJoin struct{}

type lubyProgram struct {
	view  NodeView
	rng   *rand.Rand
	inMIS bool
	// lastBid remembers the bid sent in the previous (odd) round.
	lastBid lubyBid
	bidding bool
}

// LubyFactory returns a Factory running Luby's MIS with per-node random
// streams derived deterministically from seed. Node outputs are bool MIS
// membership.
func LubyFactory(seed int64) Factory {
	return func(v int32, view NodeView) Program {
		return &lubyProgram{
			view: view,
			rng:  rand.New(rand.NewSource(seed ^ (int64(v)+1)*0x5851F42D4C957F2D)),
		}
	}
}

// Round implements Program.
func (p *lubyProgram) Round(round int, inbox []Received, out *Outbox) bool {
	// A join announcement from any neighbour retires this node immediately,
	// whatever the phase.
	for _, msg := range inbox {
		if _, ok := msg.Payload.(lubyJoin); ok {
			p.inMIS = false
			return true
		}
	}
	if round%2 == 1 {
		// Phase A: bid.
		p.lastBid = lubyBid{value: p.rng.Uint64(), id: p.view.ID}
		p.bidding = true
		out.Broadcast(p.lastBid)
		return false
	}
	// Phase B: compare own bid with neighbour bids from phase A.
	if !p.bidding {
		return false
	}
	p.bidding = false
	win := true
	for _, msg := range inbox {
		if bid, ok := msg.Payload.(lubyBid); ok && bid.less(p.lastBid) {
			win = false
			break
		}
	}
	if win {
		p.inMIS = true
		out.Broadcast(lubyJoin{})
		return true
	}
	return false
}

// Output implements Program.
func (p *lubyProgram) Output() any { return p.inMIS }

// LubyMIS runs Luby's algorithm on g and returns the resulting maximal
// independent set together with the run statistics.
func LubyMIS(g *graph.Graph, seed int64, opts Options) ([]int32, *Result, error) {
	res, err := Run(g, LubyFactory(seed), opts)
	if err != nil {
		return nil, res, err
	}
	var mis []int32
	for v, out := range res.Outputs {
		if in, ok := out.(bool); ok && in {
			mis = append(mis, int32(v))
		}
	}
	return mis, res, nil
}

package local

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"pslocal/internal/graph"
	"pslocal/internal/maxis"
)

// echoProgram broadcasts its id once and records what it hears, halting
// after two rounds. It exercises the runner's delivery and accounting.
type echoProgram struct {
	view  NodeView
	heard []int32
}

func (p *echoProgram) Round(round int, inbox []Received, out *Outbox) bool {
	switch round {
	case 1:
		out.Broadcast(p.view.ID)
		return false
	default:
		for _, m := range inbox {
			p.heard = append(p.heard, m.Payload.(int32))
		}
		return true
	}
}

func (p *echoProgram) Output() any { return p.heard }

func TestRunnerDeliversBroadcasts(t *testing.T) {
	g := graph.Cycle(5)
	res, err := Run(g, func(v int32, view NodeView) Program {
		return &echoProgram{view: view}
	}, Options{})
	if err != nil {
		t.Fatalf("Run error: %v", err)
	}
	if res.Rounds != 2 {
		t.Errorf("Rounds = %d, want 2", res.Rounds)
	}
	if res.Messages != 10 { // 5 nodes x 2 neighbours, round 1 only
		t.Errorf("Messages = %d, want 10", res.Messages)
	}
	for v := 0; v < 5; v++ {
		heard := res.Outputs[v].([]int32)
		if len(heard) != 2 {
			t.Fatalf("node %d heard %v, want both neighbours", v, heard)
		}
		// Inbox is sorted by sender.
		if heard[0] >= heard[1] {
			t.Errorf("node %d inbox unsorted: %v", v, heard)
		}
	}
}

// directedProgram sends its id only to its smallest neighbour.
type directedProgram struct {
	view  NodeView
	heard int
}

func (p *directedProgram) Round(round int, inbox []Received, out *Outbox) bool {
	if round == 1 {
		if len(p.view.Neighbors) > 0 {
			out.Send(p.view.Neighbors[0], p.view.ID)
		}
		return false
	}
	p.heard = len(inbox)
	return true
}

func (p *directedProgram) Output() any { return p.heard }

func TestRunnerDirectedSends(t *testing.T) {
	g := graph.Path(3) // 0-1-2; node 1's smallest neighbour is 0
	res, err := Run(g, func(v int32, view NodeView) Program {
		return &directedProgram{view: view}
	}, Options{})
	if err != nil {
		t.Fatalf("Run error: %v", err)
	}
	if res.Messages != 3 {
		t.Errorf("Messages = %d, want 3 (one per node)", res.Messages)
	}
	// Sends: 0→1, 1→0, 2→1, so node 0 hears one message and node 1 two.
	if res.Outputs[0].(int) != 1 {
		t.Errorf("node 0 heard %d, want 1", res.Outputs[0].(int))
	}
	if res.Outputs[1].(int) != 2 {
		t.Errorf("node 1 heard %d, want 2", res.Outputs[1].(int))
	}
	if res.Outputs[2].(int) != 0 {
		t.Errorf("node 2 heard %d, want 0", res.Outputs[2].(int))
	}
}

// stubbornProgram never halts.
type stubbornProgram struct{}

func (stubbornProgram) Round(int, []Received, *Outbox) bool { return false }
func (stubbornProgram) Output() any                         { return nil }

func TestRunnerMaxRounds(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(g, func(int32, NodeView) Program { return stubbornProgram{} }, Options{MaxRounds: 7})
	if !errors.Is(err, ErrMaxRounds) {
		t.Errorf("error = %v, want ErrMaxRounds", err)
	}
}

func TestRunnerEmptyGraph(t *testing.T) {
	res, err := Run(graph.Empty(0), func(int32, NodeView) Program { return stubbornProgram{} }, Options{})
	if err != nil {
		t.Fatalf("Run error: %v", err)
	}
	if res.Rounds != 0 {
		t.Errorf("Rounds = %d, want 0", res.Rounds)
	}
}

func TestLubyMISCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gs := map[string]*graph.Graph{
		"cycle":    graph.Cycle(12),
		"complete": graph.Complete(9),
		"star":     graph.Star(10),
		"gnp":      graph.GnP(80, 0.1, rng),
		"grid":     graph.Grid(6, 7),
		"edgeless": graph.Empty(5),
	}
	for name, g := range gs {
		t.Run(name, func(t *testing.T) {
			mis, res, err := LubyMIS(g, 42, Options{})
			if err != nil {
				t.Fatalf("LubyMIS error: %v", err)
			}
			if !maxis.IsMaximalIndependentSet(g, mis) {
				t.Errorf("result %v is not a maximal independent set", mis)
			}
			if res.Rounds <= 0 && g.N() > 0 {
				t.Errorf("suspicious round count %d", res.Rounds)
			}
		})
	}
}

func TestLubyMISDeterministicPerSeed(t *testing.T) {
	g := graph.GnP(50, 0.15, rand.New(rand.NewSource(2)))
	a, _, err := LubyMIS(g, 7, Options{})
	if err != nil {
		t.Fatalf("LubyMIS error: %v", err)
	}
	b, _, err := LubyMIS(g, 7, Options{})
	if err != nil {
		t.Fatalf("LubyMIS error: %v", err)
	}
	if len(a) != len(b) {
		t.Fatalf("same seed gave different MIS sizes %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed gave different MIS at %d", i)
		}
	}
}

func TestLubyMISRoundsLogarithmic(t *testing.T) {
	// O(log n) w.h.p.; allow a generous constant. This is experiment E8's
	// assertion in test form.
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{50, 150, 400} {
		g := graph.GnP(n, 4.0/float64(n), rng)
		_, res, err := LubyMIS(g, 11, Options{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		bound := int(40*math.Log2(float64(n))) + 10
		if res.Rounds > bound {
			t.Errorf("n=%d: rounds %d exceed generous O(log n) bound %d", n, res.Rounds, bound)
		}
	}
}

func TestColouringProper(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	gs := map[string]*graph.Graph{
		"cycle":    graph.Cycle(11),
		"complete": graph.Complete(8),
		"gnp":      graph.GnP(70, 0.12, rng),
		"star":     graph.Star(9),
	}
	for name, g := range gs {
		t.Run(name, func(t *testing.T) {
			colours, _, err := Colouring(g, 13, Options{})
			if err != nil {
				t.Fatalf("Colouring error: %v", err)
			}
			bad := false
			g.ForEachEdge(func(u, v int32) bool {
				if colours[u] == colours[v] {
					t.Errorf("edge (%d,%d) monochromatic colour %d", u, v, colours[u])
					bad = true
				}
				return !bad
			})
			for v := int32(0); int(v) < g.N(); v++ {
				if colours[v] < 1 || int(colours[v]) > g.Degree(v)+1 {
					t.Errorf("node %d colour %d outside 1..deg+1=%d", v, colours[v], g.Degree(v)+1)
				}
			}
		})
	}
}

func TestColouringIsolatedNodesFinishFast(t *testing.T) {
	colours, res, err := Colouring(graph.Empty(6), 1, Options{})
	if err != nil {
		t.Fatalf("Colouring error: %v", err)
	}
	if res.Rounds != 2 {
		t.Errorf("Rounds = %d, want 2", res.Rounds)
	}
	for v, c := range colours {
		if c != 1 {
			t.Errorf("isolated node %d colour %d, want 1", v, c)
		}
	}
}

func TestOutboxPayloadResolution(t *testing.T) {
	var o Outbox
	if _, ok := o.payloadFor(3); ok {
		t.Error("empty outbox should deliver nothing")
	}
	o.Broadcast("b")
	if p, ok := o.payloadFor(3); !ok || p != "b" {
		t.Error("broadcast not delivered")
	}
	o.Send(3, "d")
	if p, _ := o.payloadFor(3); p != "d" {
		t.Error("directed send should override broadcast")
	}
	if p, _ := o.payloadFor(4); p != "b" {
		t.Error("other neighbours still get the broadcast")
	}
}

// TestRunCtxCancellation pins Options.Ctx: a cancelled context stops the
// synchronous-round loop between rounds.
func TestRunCtxCancellation(t *testing.T) {
	g := graph.Cycle(64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := LubyMIS(g, 1, Options{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

package local

// coloring.go implements the classic randomized (deg+1)-list vertex
// colouring algorithm in the LOCAL model: each phase, every uncoloured node
// proposes a random colour from its palette minus the colours its
// neighbours have already fixed; a proposal is kept when no neighbour
// proposed or fixed the same colour. This terminates in O(log n) rounds
// with high probability and is the randomized counterpart of the
// deterministic colouring problems discussed in the paper's introduction.

import (
	"math/rand"

	"pslocal/internal/graph"
)

// colourMsg carries a node's current proposal or final colour (1-based).
type colourMsg struct {
	colour int32
	final  bool
}

type colourProgram struct {
	view    NodeView
	rng     *rand.Rand
	palette int32 // colours 1..palette with palette = deg+1
	taken   map[int32]bool
	trial   int32
}

// ColouringFactory returns a Factory for randomized (deg+1)-colouring with
// per-node random streams derived deterministically from seed. Node
// outputs are int32 colours in 1..deg(v)+1.
func ColouringFactory(seed int64) Factory {
	return func(v int32, view NodeView) Program {
		return &colourProgram{
			view:    view,
			rng:     rand.New(rand.NewSource(seed ^ (int64(v)+1)*0x2545F4914F6CDD1D)),
			palette: int32(view.Degree) + 1,
			taken:   make(map[int32]bool),
		}
	}
}

// pickTrial draws a uniform colour from the palette minus taken colours.
// The palette size deg+1 guarantees a free colour exists.
func (p *colourProgram) pickTrial() int32 {
	free := make([]int32, 0, p.palette)
	for c := int32(1); c <= p.palette; c++ {
		if !p.taken[c] {
			free = append(free, c)
		}
	}
	return free[p.rng.Intn(len(free))]
}

// Round implements Program.
func (p *colourProgram) Round(round int, inbox []Received, out *Outbox) bool {
	conflict := false
	for _, msg := range inbox {
		cm, ok := msg.Payload.(colourMsg)
		if !ok {
			continue
		}
		if cm.final {
			p.taken[cm.colour] = true
			if cm.colour == p.trial {
				conflict = true
			}
		} else if cm.colour == p.trial {
			conflict = true
		}
	}
	if round > 1 && !conflict && !p.taken[p.trial] {
		out.Broadcast(colourMsg{colour: p.trial, final: true})
		return true
	}
	p.trial = p.pickTrial()
	out.Broadcast(colourMsg{colour: p.trial, final: false})
	return false
}

// Output implements Program.
func (p *colourProgram) Output() any { return p.trial }

// Colouring runs the randomized colouring on g and returns the per-node
// colours (1-based) together with run statistics.
func Colouring(g *graph.Graph, seed int64, opts Options) ([]int32, *Result, error) {
	res, err := Run(g, ColouringFactory(seed), opts)
	if err != nil {
		return nil, res, err
	}
	colours := make([]int32, g.N())
	for v, out := range res.Outputs {
		c, ok := out.(int32)
		if !ok {
			continue
		}
		colours[v] = c
	}
	return colours, res, nil
}

package cfcolor

// algorithms.go provides two direct conflict-free colouring algorithms that
// bracket the paper's reduction: the dyadic interval colouring (the [DN18]
// domain the paper adapted its technique from) and an exponential
// brute-force optimum for cross-checking colour counts on tiny instances.

import (
	"errors"
	"fmt"

	"pslocal/internal/hypergraph"
)

// ErrTooLarge reports a brute-force request beyond the guarded size.
var ErrTooLarge = errors.New("cfcolor: instance too large for brute force")

// ErrNoColoring reports that no conflict-free colouring exists within the
// allowed palette.
var ErrNoColoring = errors.New("cfcolor: no conflict-free colouring within maxK colours")

// DyadicIntervalColoring colours the n line vertices 0..n-1 by their level
// in a balanced binary recursion: the midpoint gets colour 1, the midpoints
// of the two halves colour 2, and so on. The result uses at most
// ceil(log2(n+1)) colours and is conflict-free for EVERY interval
// hypergraph on those vertices: descending the recursion, the first
// midpoint an interval contains is the interval's unique minimum-level
// vertex.
func DyadicIntervalColoring(n int) Coloring {
	c := make(Coloring, n)
	var assign func(lo, hi int, level int32)
	assign = func(lo, hi int, level int32) {
		if lo > hi {
			return
		}
		mid := lo + (hi-lo)/2
		c[mid] = level
		assign(lo, mid-1, level+1)
		assign(mid+1, hi, level+1)
	}
	assign(0, n-1, 1)
	return c
}

// BruteForceMinCF finds a conflict-free colouring of h with the fewest
// colours by exhaustive search over total colourings, trying palettes
// k = 1..maxK. Guarded to k^n <= 4^12-ish work; returns ErrTooLarge beyond
// that and ErrNoColoring when maxK colours do not suffice.
func BruteForceMinCF(h *hypergraph.Hypergraph, maxK int) (Coloring, int, error) {
	n := h.N()
	if n > 16 {
		return nil, 0, fmt.Errorf("%w: n=%d", ErrTooLarge, n)
	}
	for k := 1; k <= maxK; k++ {
		if pow := intPow(k, n); pow < 0 || pow > 20_000_000 {
			return nil, 0, fmt.Errorf("%w: k^n = %d^%d", ErrTooLarge, k, n)
		}
		c := make(Coloring, n)
		if searchColoring(h, c, 0, int32(k)) {
			return c, k, nil
		}
	}
	return nil, 0, fmt.Errorf("%w: maxK=%d", ErrNoColoring, maxK)
}

// searchColoring backtracks over total colourings of vertices v.. with k
// colours, pruning when an all-coloured edge is already unhappy.
func searchColoring(h *hypergraph.Hypergraph, c Coloring, v int, k int32) bool {
	if v == h.N() {
		return IsConflictFree(h, c)
	}
	for col := int32(1); col <= k; col++ {
		c[v] = col
		if partialFeasible(h, c, int32(v)) && searchColoring(h, c, v+1, k) {
			return true
		}
	}
	c[v] = Uncolored
	return false
}

// partialFeasible prunes: every edge whose vertices are all coloured (all
// indices <= v) must already be happy.
func partialFeasible(h *hypergraph.Hypergraph, c Coloring, v int32) bool {
	feasible := true
	h.ForEachIncidentEdge(v, func(j int32) bool {
		complete := true
		h.ForEachEdgeVertex(int(j), func(u int32) bool {
			if c[u] == Uncolored {
				complete = false
				return false
			}
			return true
		})
		if complete && !EdgeHappy(h, int(j), c) {
			feasible = false
			return false
		}
		return true
	})
	return feasible
}

func intPow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
		if out < 0 || out > 1<<40 {
			return -1
		}
	}
	return out
}

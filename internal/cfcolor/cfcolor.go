// Package cfcolor defines conflict-free (multi)colourings of hypergraphs —
// the source problem of the paper's reduction (Theorem 1.2, quoted from
// [GKM17]) — together with their verifiers.
//
// A colouring f: V → {1..k} ∪ {⊥} makes hyperedge e "happy" when some
// vertex of e carries a colour no other vertex of e carries; f is
// conflict-free when every edge is happy. A multicolouring assigns each
// vertex a set of colours with the same per-edge requirement.
package cfcolor

import (
	"errors"
	"fmt"

	"pslocal/internal/hypergraph"
)

// Uncolored is the ⊥ colour.
const Uncolored int32 = 0

// ErrBadColor reports a negative colour value.
var ErrBadColor = errors.New("cfcolor: colours must be >= 0 (0 = uncoloured)")

// Coloring is a (partial) vertex colouring: Coloring[v] is v's colour,
// 1-based, with 0 meaning uncoloured (the paper's ⊥).
type Coloring []int32

// Validate checks lengths and colour ranges against h.
func (c Coloring) Validate(h *hypergraph.Hypergraph) error {
	if len(c) != h.N() {
		return fmt.Errorf("cfcolor: colouring covers %d vertices, hypergraph has %d", len(c), h.N())
	}
	for v, col := range c {
		if col < 0 {
			return fmt.Errorf("%w: vertex %d has colour %d", ErrBadColor, v, col)
		}
	}
	return nil
}

// MaxColor returns the largest colour used, or 0 for an all-⊥ colouring.
func (c Coloring) MaxColor() int32 {
	max := int32(0)
	for _, col := range c {
		if col > max {
			max = col
		}
	}
	return max
}

// ColoredCount returns the number of non-⊥ vertices.
func (c Coloring) ColoredCount() int {
	count := 0
	for _, col := range c {
		if col != Uncolored {
			count++
		}
	}
	return count
}

// EdgeHappy reports whether edge j of h has a vertex with a unique non-⊥
// colour — the paper's happiness condition.
func EdgeHappy(h *hypergraph.Hypergraph, j int, c Coloring) bool {
	counts := map[int32]int{}
	h.ForEachEdgeVertex(j, func(v int32) bool {
		if c[v] != Uncolored {
			counts[c[v]]++
		}
		return true
	})
	for _, n := range counts {
		if n == 1 {
			return true
		}
	}
	return false
}

// HappyEdges returns the ascending indices of happy edges under c.
func HappyEdges(h *hypergraph.Hypergraph, c Coloring) []int32 {
	var out []int32
	for j := 0; j < h.M(); j++ {
		if EdgeHappy(h, j, c) {
			out = append(out, int32(j))
		}
	}
	return out
}

// UnhappyEdges returns the ascending indices of edges that are not happy
// under c — the edge set E_{i+1} of the next reduction phase.
func UnhappyEdges(h *hypergraph.Hypergraph, c Coloring) []int32 {
	var out []int32
	for j := 0; j < h.M(); j++ {
		if !EdgeHappy(h, j, c) {
			out = append(out, int32(j))
		}
	}
	return out
}

// IsConflictFree reports whether every edge of h is happy under c.
func IsConflictFree(h *hypergraph.Hypergraph, c Coloring) bool {
	for j := 0; j < h.M(); j++ {
		if !EdgeHappy(h, j, c) {
			return false
		}
	}
	return true
}

// Multicoloring assigns each vertex a (possibly empty) set of colours, the
// output shape of the paper's conflict-free multicolouring problem.
type Multicoloring [][]int32

// NewMulticoloring returns an empty multicolouring over n vertices.
func NewMulticoloring(n int) Multicoloring { return make(Multicoloring, n) }

// Add gives vertex v the extra colour c.
func (mc Multicoloring) Add(v, c int32) { mc[v] = append(mc[v], c) }

// Validate checks lengths and colour positivity against h.
func (mc Multicoloring) Validate(h *hypergraph.Hypergraph) error {
	if len(mc) != h.N() {
		return fmt.Errorf("cfcolor: multicolouring covers %d vertices, hypergraph has %d", len(mc), h.N())
	}
	for v, cols := range mc {
		for _, col := range cols {
			if col <= 0 {
				return fmt.Errorf("%w: vertex %d has colour %d", ErrBadColor, v, col)
			}
		}
	}
	return nil
}

// NumDistinctColors returns the number of distinct colours used anywhere.
func (mc Multicoloring) NumDistinctColors() int {
	seen := map[int32]bool{}
	for _, cols := range mc {
		for _, col := range cols {
			seen[col] = true
		}
	}
	return len(seen)
}

// MaxColorsPerVertex returns the largest per-vertex colour-set size.
func (mc Multicoloring) MaxColorsPerVertex() int {
	max := 0
	for _, cols := range mc {
		if len(cols) > max {
			max = len(cols)
		}
	}
	return max
}

// EdgeHappyMulti reports whether edge j has a vertex carrying a colour no
// other vertex of the edge carries (in any of its sets).
func EdgeHappyMulti(h *hypergraph.Hypergraph, j int, mc Multicoloring) bool {
	counts := map[int32]int{}
	h.ForEachEdgeVertex(j, func(v int32) bool {
		seen := map[int32]bool{}
		for _, col := range mc[v] {
			if !seen[col] { // a vertex listing a colour twice counts once
				seen[col] = true
				counts[col]++
			}
		}
		return true
	})
	for _, n := range counts {
		if n == 1 {
			return true
		}
	}
	return false
}

// IsConflictFreeMulti reports whether every edge of h is happy under mc.
func IsConflictFreeMulti(h *hypergraph.Hypergraph, mc Multicoloring) bool {
	for j := 0; j < h.M(); j++ {
		if !EdgeHappyMulti(h, j, mc) {
			return false
		}
	}
	return true
}

// SingleToMulti lifts a partial colouring to a multicolouring (⊥ becomes
// the empty set).
func SingleToMulti(c Coloring) Multicoloring {
	mc := NewMulticoloring(len(c))
	for v, col := range c {
		if col != Uncolored {
			mc.Add(int32(v), col)
		}
	}
	return mc
}

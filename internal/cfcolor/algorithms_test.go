package cfcolor

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"pslocal/internal/hypergraph"
)

func TestDyadicIntervalColoringIsConflictFreeForAllIntervals(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 16, 33} {
		c := DyadicIntervalColoring(n)
		bound := int32(math.Ceil(math.Log2(float64(n + 1))))
		if c.MaxColor() > bound {
			t.Errorf("n=%d: %d colours exceed ceil(log2(n+1)) = %d", n, c.MaxColor(), bound)
		}
		// Exhaustively check EVERY interval [a,b].
		var edges [][]int32
		for a := 0; a < n; a++ {
			for b := a; b < n; b++ {
				e := make([]int32, 0, b-a+1)
				for v := a; v <= b; v++ {
					e = append(e, int32(v))
				}
				edges = append(edges, e)
			}
		}
		h := hypergraph.MustNew(n, edges)
		if !IsConflictFree(h, c) {
			t.Errorf("n=%d: dyadic colouring not conflict-free for all intervals", n)
		}
	}
}

func TestDyadicOnRandomIntervalHypergraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(60)
		h, err := hypergraph.Interval(n, 5+rng.Intn(30), 1, n/2+1, rng)
		if err != nil {
			t.Fatalf("Interval error: %v", err)
		}
		if !IsConflictFree(h, DyadicIntervalColoring(n)) {
			t.Errorf("trial %d: not conflict-free", trial)
		}
	}
}

func TestBruteForceMinCFKnownInstances(t *testing.T) {
	tests := []struct {
		name  string
		h     *hypergraph.Hypergraph
		wantK int
	}{
		{
			// Colourings are total, so an all-same colouring of a 3-edge is
			// unhappy; two colours give a uniquely coloured vertex.
			"single 3-edge", hypergraph.MustNew(3, [][]int32{{0, 1, 2}}), 2,
		},
		{
			// Singleton edges are always happy once coloured.
			"singletons", hypergraph.MustNew(2, [][]int32{{0}, {1}}), 1,
		},
		{
			// 2-uniform conflict-free colouring = proper graph colouring:
			// a 2-edge is happy iff its endpoints differ.
			"disjoint pairs", hypergraph.MustNew(4, [][]int32{{0, 1}, {2, 3}}), 2,
		},
		{
			"triangle pairs need 3", hypergraph.MustNew(3, [][]int32{{0, 1}, {1, 2}, {0, 2}}), 3,
		},
		{
			"K4 pairs need 4", hypergraph.MustNew(4, [][]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}), 4,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c, k, err := BruteForceMinCF(tt.h, 6)
			if err != nil {
				t.Fatalf("BruteForceMinCF error: %v", err)
			}
			if k != tt.wantK {
				t.Errorf("min colours = %d, want %d", k, tt.wantK)
			}
			if !IsConflictFree(tt.h, c) {
				t.Error("returned colouring not conflict-free")
			}
			if c.MaxColor() > int32(k) {
				t.Errorf("colouring uses colour %d > reported k=%d", c.MaxColor(), k)
			}
		})
	}
}

func TestBruteForceGuards(t *testing.T) {
	big := hypergraph.MustNew(17, [][]int32{{0, 1}})
	if _, _, err := BruteForceMinCF(big, 2); !errors.Is(err, ErrTooLarge) {
		t.Errorf("error = %v, want ErrTooLarge", err)
	}
	// No CF colouring with k=1 for a triangle of pairs.
	tri := hypergraph.MustNew(3, [][]int32{{0, 1}, {1, 2}, {0, 2}})
	if _, _, err := BruteForceMinCF(tri, 1); !errors.Is(err, ErrNoColoring) {
		t.Errorf("error = %v, want ErrNoColoring", err)
	}
}

func TestBruteForceAgreesWithPlanted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		h, planted, err := hypergraph.PlantedCF(8, 4, 3, 2, 4, rng)
		if err != nil {
			t.Fatalf("PlantedCF error: %v", err)
		}
		if !IsConflictFree(h, Coloring(planted)) {
			t.Fatalf("trial %d: planted colouring not conflict-free", trial)
		}
		_, k, err := BruteForceMinCF(h, 3)
		if err != nil {
			t.Fatalf("trial %d: brute force error: %v", trial, err)
		}
		if k > 3 {
			t.Errorf("trial %d: brute force needs %d > 3 colours despite planted witness", trial, k)
		}
	}
}

package cfcolor

import (
	"testing"

	"pslocal/internal/hypergraph"
)

func TestEdgeHappy(t *testing.T) {
	h := hypergraph.MustNew(5, [][]int32{{0, 1, 2}, {2, 3, 4}, {0, 4}})
	tests := []struct {
		name string
		c    Coloring
		want []bool
	}{
		{"all uncoloured", Coloring{0, 0, 0, 0, 0}, []bool{false, false, false}},
		{"one unique", Coloring{1, 0, 0, 0, 0}, []bool{true, false, true}},
		{"pair cancels", Coloring{1, 1, 0, 0, 0}, []bool{false, false, true}},
		{"pair plus unique", Coloring{1, 1, 2, 0, 0}, []bool{true, true, true}},
		{"triple cancels", Coloring{1, 1, 1, 1, 1}, []bool{false, false, false}},
		{"distinct everywhere", Coloring{1, 2, 3, 4, 5}, []bool{true, true, true}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for j, want := range tt.want {
				if got := EdgeHappy(h, j, tt.c); got != want {
					t.Errorf("edge %d happy = %v, want %v", j, got, want)
				}
			}
		})
	}
}

func TestHappyAndUnhappyPartition(t *testing.T) {
	h := hypergraph.MustNew(4, [][]int32{{0, 1}, {1, 2}, {2, 3}})
	c := Coloring{1, 1, 0, 2}
	happy := HappyEdges(h, c)
	unhappy := UnhappyEdges(h, c)
	if len(happy)+len(unhappy) != h.M() {
		t.Fatalf("partition sizes %d+%d != %d", len(happy), len(unhappy), h.M())
	}
	// Edge 0 = {0,1} colours 1,1 -> unhappy; edge 1 = {1,2} colour 1,⊥ ->
	// happy; edge 2 = {2,3} ⊥,2 -> happy.
	if len(happy) != 2 || happy[0] != 1 || happy[1] != 2 {
		t.Errorf("happy = %v, want [1 2]", happy)
	}
	if len(unhappy) != 1 || unhappy[0] != 0 {
		t.Errorf("unhappy = %v, want [0]", unhappy)
	}
	if IsConflictFree(h, c) {
		t.Error("colouring should not be conflict-free")
	}
	if !IsConflictFree(h, Coloring{1, 2, 1, 2}) {
		t.Error("proper-style colouring should be conflict-free here")
	}
}

func TestColoringValidate(t *testing.T) {
	h := hypergraph.MustNew(3, [][]int32{{0, 1, 2}})
	if err := (Coloring{1, 0, 2}).Validate(h); err != nil {
		t.Errorf("valid colouring rejected: %v", err)
	}
	if err := (Coloring{1, 0}).Validate(h); err == nil {
		t.Error("short colouring accepted")
	}
	if err := (Coloring{1, -1, 0}).Validate(h); err == nil {
		t.Error("negative colour accepted")
	}
}

func TestColoringStats(t *testing.T) {
	c := Coloring{0, 3, 1, 0, 2}
	if c.MaxColor() != 3 {
		t.Errorf("MaxColor = %d, want 3", c.MaxColor())
	}
	if c.ColoredCount() != 3 {
		t.Errorf("ColoredCount = %d, want 3", c.ColoredCount())
	}
	var empty Coloring
	if empty.MaxColor() != 0 || empty.ColoredCount() != 0 {
		t.Error("empty colouring stats wrong")
	}
}

func TestMulticoloring(t *testing.T) {
	h := hypergraph.MustNew(4, [][]int32{{0, 1, 2, 3}})
	mc := NewMulticoloring(4)
	if EdgeHappyMulti(h, 0, mc) {
		t.Error("uncoloured edge should be unhappy")
	}
	mc.Add(0, 1)
	mc.Add(1, 1)
	if EdgeHappyMulti(h, 0, mc) {
		t.Error("colour 1 appears twice: unhappy")
	}
	mc.Add(0, 2)
	if !EdgeHappyMulti(h, 0, mc) {
		t.Error("colour 2 unique at vertex 0: happy")
	}
	if !IsConflictFreeMulti(h, mc) {
		t.Error("IsConflictFreeMulti disagrees with EdgeHappyMulti")
	}
	if mc.NumDistinctColors() != 2 {
		t.Errorf("NumDistinctColors = %d, want 2", mc.NumDistinctColors())
	}
	if mc.MaxColorsPerVertex() != 2 {
		t.Errorf("MaxColorsPerVertex = %d, want 2", mc.MaxColorsPerVertex())
	}
}

func TestMulticoloringDuplicateColorCountsOnce(t *testing.T) {
	h := hypergraph.MustNew(2, [][]int32{{0, 1}})
	mc := NewMulticoloring(2)
	mc.Add(0, 1)
	mc.Add(0, 1) // duplicate within one vertex
	if !EdgeHappyMulti(h, 0, mc) {
		t.Error("a colour listed twice at one vertex is still unique in the edge")
	}
}

func TestMulticoloringValidate(t *testing.T) {
	h := hypergraph.MustNew(2, [][]int32{{0, 1}})
	mc := NewMulticoloring(2)
	mc.Add(0, 1)
	if err := mc.Validate(h); err != nil {
		t.Errorf("valid multicolouring rejected: %v", err)
	}
	mc.Add(1, 0)
	if err := mc.Validate(h); err == nil {
		t.Error("non-positive colour accepted")
	}
	short := NewMulticoloring(1)
	if err := short.Validate(h); err == nil {
		t.Error("short multicolouring accepted")
	}
}

func TestSingleToMulti(t *testing.T) {
	h := hypergraph.MustNew(3, [][]int32{{0, 1, 2}})
	c := Coloring{1, 0, 2}
	mc := SingleToMulti(c)
	if len(mc[1]) != 0 {
		t.Error("⊥ should become empty set")
	}
	if EdgeHappy(h, 0, c) != EdgeHappyMulti(h, 0, mc) {
		t.Error("happiness must be preserved by lifting")
	}
}

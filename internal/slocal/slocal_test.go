package slocal

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"pslocal/internal/graph"
	"pslocal/internal/maxis"
)

func randomOrder(n int, rng *rand.Rand) []int32 {
	order := make([]int32, n)
	for i, p := range rng.Perm(n) {
		order[i] = int32(p)
	}
	return order
}

func TestRunOrderValidation(t *testing.T) {
	g := graph.Path(3)
	cases := [][]int32{
		{0, 1},          // short
		{0, 1, 1},       // repeat
		{0, 1, 5},       // out of range
		{0, 1, -1},      // negative
		{0, 1, 2, 2, 2}, // long
	}
	for _, order := range cases {
		if _, err := Run(g, order, func(int32, *View) any { return nil }); !errors.Is(err, ErrBadOrder) {
			t.Errorf("order %v: error = %v, want ErrBadOrder", order, err)
		}
	}
}

func TestViewBallGrowthAndLocality(t *testing.T) {
	g := graph.Path(7) // 0-1-2-3-4-5-6
	res, err := Run(g, IdentityOrder(7), func(v int32, view *View) any {
		if v == 3 {
			nodes := view.BallNodes(2)
			if len(nodes) != 5 {
				t.Errorf("B(3,2) has %d nodes, want 5", len(nodes))
			}
			return len(nodes)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run error: %v", err)
	}
	if res.PerNodeLocality[3] != 2 {
		t.Errorf("node 3 locality = %d, want 2", res.PerNodeLocality[3])
	}
	if res.PerNodeLocality[0] != 0 {
		t.Errorf("node 0 locality = %d, want 0 (never looked)", res.PerNodeLocality[0])
	}
	if res.Locality != 2 {
		t.Errorf("run locality = %d, want 2", res.Locality)
	}
}

func TestViewExhaustedComponentChargesEffectiveRadius(t *testing.T) {
	g := graph.Path(3) // eccentricity of node 0 is 2
	res, err := Run(g, IdentityOrder(3), func(v int32, view *View) any {
		if v == 0 {
			nodes := view.BallNodes(50) // far beyond the component
			return len(nodes)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run error: %v", err)
	}
	if got := res.Outputs[0].(int); got != 3 {
		t.Errorf("ball size = %d, want 3", got)
	}
	if res.PerNodeLocality[0] != 2 {
		t.Errorf("locality = %d, want effective 2", res.PerNodeLocality[0])
	}
}

func TestViewStateVisibility(t *testing.T) {
	g := graph.Path(4)
	_, err := Run(g, IdentityOrder(4), func(v int32, view *View) any {
		switch v {
		case 0:
			return "zero"
		case 1:
			// Node 0 is in B(1,1) and processed: state visible.
			view.BallNodes(1)
			if st, ok := view.State(0); !ok || st != "zero" {
				t.Errorf("node 1 cannot read node 0's state: %v %v", st, ok)
			}
			// Node 2 is in the ball but unprocessed: not visible.
			if _, ok := view.State(2); ok {
				t.Error("unprocessed node's state should be invisible")
			}
			return "one"
		case 3:
			// Node 0 is outside B(3,1): invisible until the ball grows.
			view.BallNodes(1)
			if _, ok := view.State(0); ok {
				t.Error("state outside explored ball should be invisible")
			}
			view.BallNodes(3)
			if st, ok := view.State(0); !ok || st != "zero" {
				t.Error("state should become visible after growing the ball")
			}
			return nil
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run error: %v", err)
	}
}

func TestViewDistAndBallGraph(t *testing.T) {
	g := graph.Cycle(6)
	_, err := Run(g, IdentityOrder(6), func(v int32, view *View) any {
		if v != 0 {
			return nil
		}
		sub, orig, err := view.BallGraph(2)
		if err != nil {
			t.Fatalf("BallGraph error: %v", err)
		}
		if sub.N() != 5 { // C6 ball of radius 2 misses the antipode
			t.Errorf("ball graph has %d nodes, want 5", sub.N())
		}
		if d, ok := view.Dist(2); !ok || d != 2 {
			t.Errorf("Dist(2) = %d,%v want 2,true", d, ok)
		}
		if _, ok := view.Dist(3); ok {
			t.Error("antipode should be undiscovered at radius 2")
		}
		if sub.M() != 4 {
			t.Errorf("ball graph has %d edges, want 4 (path around the cycle)", sub.M())
		}
		_ = orig
		return nil
	})
	if err != nil {
		t.Fatalf("Run error: %v", err)
	}
}

func TestViewNegativeRadius(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(g, IdentityOrder(2), func(v int32, view *View) any {
		if nodes := view.BallNodes(-1); nodes != nil {
			t.Errorf("BallNodes(-1) = %v, want nil", nodes)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run error: %v", err)
	}
}

// TestViewMatchesGlobalBFSOnRandomInstances is the flat-array rewrite's
// equivalence check: on random graphs with random per-node radius
// requests, every BallNodes result must equal the global BFS ball and the
// locality accounting (PerNodeLocality / Locality) must equal the
// map-based definition min(requested radius, eccentricity of the node's
// component).
func TestViewMatchesGlobalBFSOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		g := graph.GnP(1+rng.Intn(40), rng.Float64()*0.2, rng)
		n := g.N()
		req := make([]int, n)
		for i := range req {
			req[i] = rng.Intn(6)
		}
		res, err := Run(g, randomOrder(n, rng), func(v int32, view *View) any {
			got := view.BallNodes(req[v])
			dist := graph.BFS(g, v)
			var want []int32
			for u, d := range dist {
				if d >= 0 && int(d) <= req[v] {
					want = append(want, int32(u))
				}
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d node %d: ball(%d) has %d nodes, want %d", trial, v, req[v], len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d node %d: ball(%d) = %v, want %v", trial, v, req[v], got, want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("trial %d: Run error: %v", trial, err)
		}
		wantMax := 0
		for v := 0; v < n; v++ {
			ecc := 0
			for _, d := range graph.BFS(g, int32(v)) {
				if int(d) > ecc {
					ecc = int(d)
				}
			}
			want := req[v]
			if ecc < want {
				want = ecc
			}
			if res.PerNodeLocality[v] != want {
				t.Errorf("trial %d node %d: locality %d, want min(r=%d, ecc=%d) = %d",
					trial, v, res.PerNodeLocality[v], req[v], ecc, want)
			}
			if want > wantMax {
				wantMax = want
			}
		}
		if res.Locality != wantMax {
			t.Errorf("trial %d: run locality %d, want %d", trial, res.Locality, wantMax)
		}
	}
}

// TestViewShrinkingRadiusRequests covers re-reading a smaller ball after
// a larger one was explored (a prefix of the discovery order).
func TestViewShrinkingRadiusRequests(t *testing.T) {
	g := graph.Path(7) // 0-1-2-3-4-5-6
	_, err := Run(g, IdentityOrder(7), func(v int32, view *View) any {
		if v != 3 {
			return nil
		}
		if got := len(view.BallNodes(2)); got != 5 {
			t.Errorf("B(3,2) has %d nodes, want 5", got)
		}
		if got := view.BallNodes(1); len(got) != 3 || got[0] != 2 || got[1] != 3 || got[2] != 4 {
			t.Errorf("B(3,1) after B(3,2) = %v, want [2 3 4]", got)
		}
		if got := len(view.BallNodes(0)); got != 1 {
			t.Errorf("B(3,0) has %d nodes, want 1", got)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run error: %v", err)
	}
}

func TestMarkerEpochWrap(t *testing.T) {
	m := newMarker(4)
	m.next()
	m.mark(1) // stamp[1] = current epoch
	stale := m.stamp[1]
	m.epoch = ^uint32(0) // simulate ~2^32 generations passing
	m.next()             // wraps: stamps must be cleared, not aliased
	if m.epoch == 0 {
		t.Fatal("epoch 0 is reserved for the cleared state")
	}
	if m.marked(1) {
		t.Errorf("stale stamp %d aliases the post-wrap epoch %d", stale, m.epoch)
	}
	m.mark(2)
	if !m.marked(2) || m.marked(3) {
		t.Error("post-wrap marking broken")
	}
}

func TestGreedyMISLocalityOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 15; trial++ {
		g := graph.GnP(1+rng.Intn(60), rng.Float64()*0.3, rng)
		order := randomOrder(g.N(), rng)
		mis, res, err := GreedyMIS(g, order)
		if err != nil {
			t.Fatalf("GreedyMIS error: %v", err)
		}
		if !maxis.IsMaximalIndependentSet(g, mis) {
			t.Fatalf("trial %d: not a maximal independent set", trial)
		}
		if res.Locality > 1 {
			t.Errorf("trial %d: locality %d, want <= 1 (paper Section 1)", trial, res.Locality)
		}
	}
}

func TestGreedyMISAdversarialOrder(t *testing.T) {
	g := graph.Star(6)
	mis, _, err := GreedyMIS(g, []int32{0, 1, 2, 3, 4, 5})
	if err != nil {
		t.Fatalf("GreedyMIS error: %v", err)
	}
	if len(mis) != 1 || mis[0] != 0 {
		t.Errorf("centre-first MIS = %v, want [0]", mis)
	}
	mis, _, err = GreedyMIS(g, []int32{5, 4, 3, 2, 1, 0})
	if err != nil {
		t.Fatalf("GreedyMIS error: %v", err)
	}
	if len(mis) != 5 {
		t.Errorf("leaves-first MIS size = %d, want 5", len(mis))
	}
}

func TestGreedyColouringProperAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		g := graph.GnP(1+rng.Intn(50), rng.Float64()*0.4, rng)
		colours, res, err := GreedyColouring(g, randomOrder(g.N(), rng))
		if err != nil {
			t.Fatalf("GreedyColouring error: %v", err)
		}
		g.ForEachEdge(func(u, v int32) bool {
			if colours[u] == colours[v] {
				t.Errorf("trial %d: edge {%d,%d} monochromatic", trial, u, v)
			}
			return true
		})
		for v := int32(0); int(v) < g.N(); v++ {
			if colours[v] < 1 || int(colours[v]) > g.MaxDegree()+1 {
				t.Errorf("trial %d: node %d colour %d outside 1..Δ+1", trial, v, colours[v])
			}
		}
		if res.Locality > 1 {
			t.Errorf("trial %d: locality %d, want <= 1", trial, res.Locality)
		}
	}
}

// TestRunCtxCancellation pins the simulator's cooperative cancellation:
// a context cancelled mid-order stops the run at the next node, and a
// pre-cancelled context processes nothing.
func TestRunCtxCancellation(t *testing.T) {
	g := graph.Cycle(50)
	ctx, cancel := context.WithCancel(context.Background())
	processed := 0
	_, err := RunCtx(ctx, g, IdentityOrder(g.N()), func(v int32, view *View) any {
		processed++
		if processed == 10 {
			cancel()
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if processed != 10 {
		t.Errorf("processed %d nodes after cancellation, want 10", processed)
	}

	pre, precancel := context.WithCancel(context.Background())
	precancel()
	if _, err := RunCtx(pre, g, IdentityOrder(g.N()), func(int32, *View) any { return true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled error = %v, want context.Canceled", err)
	}
}

// TestCarvingCtxCancellation checks CarvingOptions.Ctx stops the carve
// loop between balls.
func TestCarvingCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BallCarvingMaxIS(graph.Cycle(20), CarvingOptions{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

package slocal

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"pslocal/internal/graph"
	"pslocal/internal/maxis"
)

func TestBallCarvingGuarantee(t *testing.T) {
	// On small graphs the result must be a (1+δ)-approximation of the true
	// optimum — the containment direction of Theorem 1.1 in test form.
	rng := rand.New(rand.NewSource(1))
	deltas := []float64{1.0, 0.5, 0.25}
	graphs := map[string]*graph.Graph{
		"path":     graph.Path(20),
		"cycle":    graph.Cycle(21),
		"star":     graph.Star(15),
		"grid":     graph.Grid(5, 6),
		"gnp":      graph.GnP(60, 0.08, rng),
		"complete": graph.Complete(12),
		"edgeless": graph.Empty(9),
		"disjoint": graph.Union(graph.Cycle(7), graph.GnP(25, 0.15, rng)),
	}
	for name, g := range graphs {
		opt, err := maxis.Exact(g)
		if err != nil {
			t.Fatalf("%s: exact error: %v", name, err)
		}
		for _, delta := range deltas {
			res, err := BallCarvingMaxIS(g, CarvingOptions{Delta: delta})
			if err != nil {
				t.Fatalf("%s δ=%v: %v", name, delta, err)
			}
			if !maxis.IsIndependentSet(g, res.Set) {
				t.Errorf("%s δ=%v: result not independent", name, delta)
			}
			if float64(len(res.Set))*(1+delta) < float64(len(opt))-1e-9 {
				t.Errorf("%s δ=%v: |IS|=%d below α/(1+δ) with α=%d", name, delta, len(res.Set), len(opt))
			}
			if res.Locality > res.RadiusBound {
				t.Errorf("%s δ=%v: locality %d exceeds bound %d", name, delta, res.Locality, res.RadiusBound)
			}
		}
	}
}

func TestBallCarvingLocalityBoundFormula(t *testing.T) {
	// ceil(log_{1+δ} n) + 1 sanity.
	if got := logBound(1, 1.0); got != 1 {
		t.Errorf("logBound(1) = %d, want 1", got)
	}
	if got := logBound(8, 1.0); got != 4 {
		t.Errorf("logBound(8, δ=1) = %d, want 4", got)
	}
	n := 100
	want := int(math.Ceil(math.Log(float64(n))/math.Log(1.5))) + 1
	if got := logBound(n, 0.5); got < want-1 || got > want+1 {
		t.Errorf("logBound(%d, 0.5) = %d, want about %d", n, got, want)
	}
}

func TestBallCarvingRegionsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.GnP(70, 0.06, rng)
	res, err := BallCarvingMaxIS(g, CarvingOptions{Delta: 1.0, Order: randomOrder(g.N(), rng)})
	if err != nil {
		t.Fatalf("BallCarvingMaxIS error: %v", err)
	}
	totalClaimed := 0
	for _, region := range res.Regions {
		totalClaimed += region.ClaimedSize
		if region.Chosen < 1 {
			t.Errorf("region at %d chose %d nodes, want >= 1", region.Center, region.Chosen)
		}
	}
	if totalClaimed != g.N() {
		t.Errorf("regions claim %d nodes, want all %d", totalClaimed, g.N())
	}
}

func TestBallCarvingGreedyInner(t *testing.T) {
	// With a heuristic inner solver the guarantee is void but the result
	// must still be independent.
	rng := rand.New(rand.NewSource(3))
	g := graph.GnP(150, 0.05, rng)
	res, err := BallCarvingMaxIS(g, CarvingOptions{
		Delta: 1.0,
		Inner: func(sub *graph.Graph) ([]int32, error) { return maxis.GreedyMinDegree(sub), nil },
	})
	if err != nil {
		t.Fatalf("BallCarvingMaxIS error: %v", err)
	}
	if !maxis.IsIndependentSet(g, res.Set) {
		t.Error("result not independent with greedy inner solver")
	}
	if len(res.Set) == 0 {
		t.Error("empty result on non-empty graph")
	}
}

func TestBallCarvingErrors(t *testing.T) {
	g := graph.Path(4)
	if _, err := BallCarvingMaxIS(g, CarvingOptions{Delta: -1}); !errors.Is(err, ErrBadDelta) {
		t.Errorf("negative delta error = %v, want ErrBadDelta", err)
	}
	if _, err := BallCarvingMaxIS(g, CarvingOptions{Order: []int32{0}}); !errors.Is(err, ErrBadOrder) {
		t.Errorf("bad order error = %v, want ErrBadOrder", err)
	}
	innerErr := errors.New("inner boom")
	if _, err := BallCarvingMaxIS(g, CarvingOptions{
		Inner: func(*graph.Graph) ([]int32, error) { return nil, innerErr },
	}); !errors.Is(err, innerErr) {
		t.Errorf("inner error = %v, want wrapped %v", err, innerErr)
	}
}

func TestBallCarvingEmptyGraph(t *testing.T) {
	res, err := BallCarvingMaxIS(graph.Empty(0), CarvingOptions{})
	if err != nil {
		t.Fatalf("BallCarvingMaxIS error: %v", err)
	}
	if len(res.Set) != 0 || len(res.Regions) != 0 {
		t.Errorf("empty graph produced %v", res)
	}
}

func TestBallCarvingDeterministicForOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.GnP(50, 0.1, rng)
	order := randomOrder(g.N(), rng)
	a, err := BallCarvingMaxIS(g, CarvingOptions{Order: order})
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := BallCarvingMaxIS(g, CarvingOptions{Order: order})
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if len(a.Set) != len(b.Set) {
		t.Fatalf("same order, different sizes %d vs %d", len(a.Set), len(b.Set))
	}
	for i := range a.Set {
		if a.Set[i] != b.Set[i] {
			t.Fatal("same order, different sets")
		}
	}
}

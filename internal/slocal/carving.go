package slocal

// carving.go implements the ball-carving SLOCAL algorithm for
// (1+δ)-approximate maximum independent set — the containment direction of
// Theorem 1.1 (cited by the paper from [GKM17, Theorem 7.1]).
//
// Processing nodes in an arbitrary order, an unclaimed node v grows a ball
// in the residual graph until the independence number stops growing
// geometrically: the carve radius is the smallest r with
//
//	α(G[B_avail(v, r+1)]) <= (1+δ) · α(G[B_avail(v, r)]).
//
// Since α(B(v, r)) >= (1+δ)^r until the rule fires and α <= n, the radius
// is at most log_{1+δ} n, so the locality (radius looked at, r+1) is
// O(log n / δ). The centre outputs an exact maximum independent set of
// G[B_avail(v, r)] and claims B_avail(v, r+1); every optimal-solution node
// falls into exactly one claimed region, and each region loses at most a
// (1+δ) factor, so the union is a (1+δ)-approximation. The SLOCAL model
// allows the unbounded local computation this needs (paper Section 1).
//
// The implementation is the sequential form of the algorithm with exact
// per-centre locality accounting. (The fully mechanical SLOCAL encoding —
// later nodes re-deriving region membership from centre states — costs an
// extra constant factor of locality via the composition lemma of [GKM17]
// and is documented in DESIGN.md.)

import (
	"context"
	"errors"
	"fmt"

	"pslocal/internal/graph"
	"pslocal/internal/maxis"
)

// ErrBadDelta reports a non-positive growth slack.
var ErrBadDelta = errors.New("slocal: carving delta must be > 0")

// InnerSolver computes an independent set of a (small) ball graph. The
// containment guarantee holds only for exact solvers; heuristic solvers
// trade the guarantee for scalability.
type InnerSolver func(g *graph.Graph) ([]int32, error)

// CarvingOptions configures BallCarvingMaxIS.
type CarvingOptions struct {
	// Delta is the growth slack δ; the result is a (1+δ)-approximation.
	// Zero selects the default 1.0 (a 2-approximation).
	Delta float64
	// Inner solves MaxIS inside balls; nil selects the exact solver.
	Inner InnerSolver
	// Order is the processing order; nil selects the identity order.
	Order []int32
	// Ctx cancels the run cooperatively: it is checked before every carve
	// and threaded into the default exact inner solver, so an abandoned
	// run stops within one ball. Nil never cancels.
	Ctx context.Context
}

// Region describes one carved region.
type Region struct {
	// Center is the node that initiated the carve.
	Center int32
	// Radius is the carve radius r.
	Radius int
	// ClaimedSize is |B_avail(center, r+1)|, the nodes removed from the
	// residual graph.
	ClaimedSize int
	// Chosen is the number of independent set nodes contributed.
	Chosen int
}

// CarvingResult reports a ball-carving run.
type CarvingResult struct {
	// Set is the independent set found, ascending.
	Set []int32
	// Regions lists the carved regions in processing order.
	Regions []Region
	// Locality is the maximum radius looked at (max over regions of r+1).
	Locality int
	// RadiusBound is the theoretical locality bound ceil(log_{1+δ} n) + 1
	// for this input, recorded for experiment E6.
	RadiusBound int
}

// BallCarvingMaxIS runs the ball-carving SLOCAL algorithm on g.
func BallCarvingMaxIS(g *graph.Graph, opts CarvingOptions) (*CarvingResult, error) {
	delta := opts.Delta
	if delta == 0 {
		delta = 1.0
	}
	if delta < 0 {
		return nil, fmt.Errorf("%w: %v", ErrBadDelta, opts.Delta)
	}
	inner := opts.Inner
	if inner == nil {
		if ctx := opts.Ctx; ctx != nil {
			inner = func(g *graph.Graph) ([]int32, error) {
				return maxis.ExactOpts(g, maxis.ExactOptions{Ctx: ctx})
			}
		} else {
			inner = maxis.Exact
		}
	}
	order := opts.Order
	if order == nil {
		order = IdentityOrder(g.N())
	}
	if err := checkPermutation(g.N(), order); err != nil {
		return nil, err
	}

	n := g.N()
	avail := make([]bool, n)
	for i := range avail {
		avail[i] = true
	}
	mk := newMarker(n) // shared BFS stamps: one allocation for all carves
	res := &CarvingResult{RadiusBound: logBound(n, delta)}
	for _, v := range order {
		if !avail[v] {
			continue
		}
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("slocal: carving cancelled: %w", err)
			}
		}
		region, err := carveOne(g, v, avail, mk, delta, inner)
		if err != nil {
			return nil, err
		}
		res.Set = append(res.Set, region.chosen...)
		res.Regions = append(res.Regions, Region{
			Center:      v,
			Radius:      region.radius,
			ClaimedSize: region.claimed,
			Chosen:      len(region.chosen),
		})
		if lookahead := region.radius + 1; lookahead > res.Locality {
			res.Locality = lookahead
		}
	}
	sortInt32(res.Set)
	return res, nil
}

type carved struct {
	radius  int
	claimed int
	chosen  []int32
}

// carveOne grows the residual ball around v, extracts the inner solution,
// and claims the (r+1)-ball.
func carveOne(g *graph.Graph, v int32, avail []bool, mk *marker, delta float64, inner InnerSolver) (*carved, error) {
	// Residual BFS layers: layers[d] = nodes at avail-distance d from v.
	layers := residualLayers(g, v, avail, mk)
	// cumulative[r] = nodes of B_avail(v, r).
	alphaAt := make([]int, 0, len(layers))
	setsAt := make([][]int32, 0, len(layers))
	var ballNodes []int32
	for r := 0; r < len(layers); r++ {
		ballNodes = append(ballNodes, layers[r]...)
		sub, orig, err := graph.Induced(g, ballNodes)
		if err != nil {
			return nil, fmt.Errorf("slocal: carving ball induction: %w", err)
		}
		set, err := inner(sub)
		if err != nil {
			return nil, fmt.Errorf("slocal: carving inner solver: %w", err)
		}
		mapped := make([]int32, len(set))
		for i, u := range set {
			mapped[i] = orig[u]
		}
		alphaAt = append(alphaAt, len(set))
		setsAt = append(setsAt, mapped)
		if r > 0 && float64(alphaAt[r]) <= (1+delta)*float64(alphaAt[r-1]) {
			// Rule fired at radius r-1: keep the inner solution of the
			// (r-1)-ball, claim the r-ball.
			claim(avail, ballNodes)
			return &carved{radius: r - 1, claimed: len(ballNodes), chosen: setsAt[r-1]}, nil
		}
	}
	// The component was exhausted before the rule fired: the final ball is
	// the whole residual component; claiming it loses nothing
	// (α(B(r+1)) = α(B(r)) once the ball stops growing).
	claim(avail, ballNodes)
	last := len(layers) - 1
	return &carved{radius: last, claimed: len(ballNodes), chosen: setsAt[last]}, nil
}

// residualLayers returns BFS layers from v inside the available subgraph.
// The visited set lives in mk's current-generation stamps, so repeated
// carves reuse one flat array instead of allocating a map per centre; the
// returned layer slices are fresh (callers retain them).
func residualLayers(g *graph.Graph, v int32, avail []bool, mk *marker) [][]int32 {
	mk.next()
	mk.mark(v)
	var layers [][]int32
	frontier := []int32{v}
	for len(frontier) > 0 {
		layers = append(layers, frontier)
		var next []int32
		for _, w := range frontier {
			g.ForEachNeighbor(w, func(u int32) bool {
				if avail[u] && !mk.marked(u) {
					mk.mark(u)
					next = append(next, u)
				}
				return true
			})
		}
		frontier = next
	}
	return layers
}

func claim(avail []bool, nodes []int32) {
	for _, u := range nodes {
		avail[u] = false
	}
}

// logBound returns ceil(log_{1+δ} n) + 1, the locality bound of the
// carving rule.
func logBound(n int, delta float64) int {
	if n <= 1 {
		return 1
	}
	bound := 1
	size := 1.0
	for size < float64(n) {
		size *= 1 + delta
		bound++
	}
	return bound
}

package slocal

// greedy.go implements the two locality-1 SLOCAL algorithms from the
// paper's introduction: greedy MIS ("iterating through the nodes in an
// arbitrary order and joining the independent set if none of the already
// processed neighbours is already contained in the set") and the analogous
// greedy (Δ+1)-colouring.

import (
	"pslocal/internal/graph"
)

// misState is the state a node stores after being processed by GreedyMIS.
type misState struct {
	inMIS bool
}

// GreedyMIS runs the locality-1 SLOCAL maximal independent set algorithm
// in the given processing order and returns the MIS with run statistics.
// The measured Locality of the result is always <= 1.
func GreedyMIS(g *graph.Graph, order []int32) ([]int32, *Result, error) {
	res, err := Run(g, order, func(v int32, view *View) any {
		blocked := false
		for _, u := range view.BallNodes(1) {
			if u == v {
				continue
			}
			if st, ok := view.State(u); ok {
				if ms, isMIS := st.(misState); isMIS && ms.inMIS {
					blocked = true
					break
				}
			}
		}
		return misState{inMIS: !blocked}
	})
	if err != nil {
		return nil, nil, err
	}
	var mis []int32
	for v, out := range res.Outputs {
		if ms, ok := out.(misState); ok && ms.inMIS {
			mis = append(mis, int32(v))
		}
	}
	return mis, res, nil
}

// colourState is the state a node stores after being processed by
// GreedyColouring.
type colourState struct {
	colour int32
}

// GreedyColouring runs the locality-1 SLOCAL greedy colouring: each node
// takes the smallest colour (1-based) unused by its already-processed
// neighbours, which needs at most Δ+1 colours. It returns per-node colours
// with run statistics.
func GreedyColouring(g *graph.Graph, order []int32) ([]int32, *Result, error) {
	res, err := Run(g, order, func(v int32, view *View) any {
		used := make(map[int32]bool)
		for _, u := range view.BallNodes(1) {
			if u == v {
				continue
			}
			if st, ok := view.State(u); ok {
				if cs, isCol := st.(colourState); isCol {
					used[cs.colour] = true
				}
			}
		}
		c := int32(1)
		for used[c] {
			c++
		}
		return colourState{colour: c}
	})
	if err != nil {
		return nil, nil, err
	}
	colours := make([]int32, g.N())
	for v, out := range res.Outputs {
		if cs, ok := out.(colourState); ok {
			colours[v] = cs.colour
		}
	}
	return colours, res, nil
}

// Package slocal simulates the SLOCAL model of Ghaffari, Kuhn and Maus
// [GKM17], the model in which the paper's completeness result lives. An
// SLOCAL algorithm with locality r processes the nodes in an arbitrary
// order; when node v is processed it sees the graph topology and the
// previously written states inside its r-hop ball B(v, r) and writes its
// own output/state, which later nodes may read.
//
// The simulator measures locality instead of assuming it: a node's view
// starts empty and grows only as the algorithm requests larger balls, and
// the runner reports the maximum effective radius any node used.
//
// The package hosts the SLOCAL algorithms the paper discusses: the
// locality-1 greedy MIS of the introduction, greedy (Δ+1)-colouring, the
// ball-carving (1+δ)-approximate MaxIS that realises the containment
// direction of Theorem 1.1, and the network decomposition underlying the
// class P-SLOCAL.
package slocal

import (
	"errors"
	"fmt"
	"sort"

	"pslocal/internal/graph"
)

// ErrBadOrder reports a processing order that is not a permutation of the
// node set.
var ErrBadOrder = errors.New("slocal: order is not a permutation of the nodes")

// View is what a node observes while being processed. All information
// access goes through the view so the runner can account for the locality
// actually used.
type View struct {
	g        *graph.Graph
	center   int32
	states   []any
	dist     map[int32]int32
	frontier []int32
	explored int  // levels fully explored so far
	finished bool // BFS exhausted the component
	maxUsed  int  // effective locality consumed
}

func newView(g *graph.Graph, center int32, states []any) *View {
	return &View{
		g:        g,
		center:   center,
		states:   states,
		dist:     map[int32]int32{center: 0},
		frontier: []int32{center},
	}
}

// Center returns the node being processed.
func (w *View) Center() int32 { return w.center }

// extend grows the explored ball to radius r (or until the component is
// exhausted) and charges the effective radius to the locality account.
func (w *View) extend(r int) {
	for w.explored < r && !w.finished {
		var next []int32
		d := int32(w.explored + 1)
		for _, v := range w.frontier {
			w.g.ForEachNeighbor(v, func(u int32) bool {
				if _, ok := w.dist[u]; !ok {
					w.dist[u] = d
					next = append(next, u)
				}
				return true
			})
		}
		w.frontier = next
		if len(next) == 0 {
			w.finished = true
			break
		}
		w.explored++
	}
	if w.explored > w.maxUsed {
		w.maxUsed = w.explored
	}
}

// BallNodes returns the nodes of B(center, r) in ascending order,
// extending the explored region as needed. Requesting a radius beyond the
// component's extent charges only the effective (exhausted) radius.
func (w *View) BallNodes(r int) []int32 {
	if r < 0 {
		return nil
	}
	w.extend(r)
	limit := int32(r)
	var nodes []int32
	for u, d := range w.dist {
		if d <= limit {
			nodes = append(nodes, u)
		}
	}
	sortInt32(nodes)
	return nodes
}

// BallGraph returns the subgraph induced by B(center, r) together with the
// mapping orig[newID] = oldID.
func (w *View) BallGraph(r int) (*graph.Graph, []int32, error) {
	nodes := w.BallNodes(r)
	return graph.Induced(w.g, nodes)
}

// State returns the state previously written by node u. ok is false when u
// lies outside the explored ball (the algorithm must request a larger ball
// first) or when u has not been processed yet.
func (w *View) State(u int32) (state any, ok bool) {
	if _, seen := w.dist[u]; !seen {
		return nil, false
	}
	if w.states[u] == nil {
		return nil, false
	}
	return w.states[u], true
}

// Dist returns the distance from the centre to u when u is inside the
// explored ball.
func (w *View) Dist(u int32) (int, bool) {
	d, ok := w.dist[u]
	return int(d), ok
}

// Radius returns the effective locality consumed so far.
func (w *View) Radius() int { return w.maxUsed }

// Process computes node v's output/state from its view. The returned value
// is stored as v's state, readable by later-processed nodes. A nil return
// stores nothing (indistinguishable from "unprocessed" to later readers).
type Process func(v int32, view *View) any

// Result reports a completed SLOCAL run.
type Result struct {
	// Outputs holds each node's stored state, indexed by node id.
	Outputs []any
	// PerNodeLocality is the effective radius each node consumed.
	PerNodeLocality []int
	// Locality is the maximum entry of PerNodeLocality — the algorithm's
	// measured SLOCAL locality on this input.
	Locality int
}

// Run processes the nodes of g in the given order.
func Run(g *graph.Graph, order []int32, proc Process) (*Result, error) {
	if err := checkPermutation(g.N(), order); err != nil {
		return nil, err
	}
	states := make([]any, g.N())
	res := &Result{
		Outputs:         states,
		PerNodeLocality: make([]int, g.N()),
	}
	for _, v := range order {
		view := newView(g, v, states)
		states[v] = proc(v, view)
		res.PerNodeLocality[v] = view.Radius()
		if view.Radius() > res.Locality {
			res.Locality = view.Radius()
		}
	}
	return res, nil
}

// IdentityOrder returns the order 0,1,...,n-1.
func IdentityOrder(n int) []int32 {
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	return order
}

// checkPermutation validates that order is a permutation of 0..n-1.
func checkPermutation(n int, order []int32) error {
	if len(order) != n {
		return fmt.Errorf("%w: length %d, want %d", ErrBadOrder, len(order), n)
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || int(v) >= n || seen[v] {
			return fmt.Errorf("%w: offending entry %d", ErrBadOrder, v)
		}
		seen[v] = true
	}
	return nil
}

// sortInt32 ascending-sorts a slice of node ids.
func sortInt32(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// Package slocal simulates the SLOCAL model of Ghaffari, Kuhn and Maus
// [GKM17], the model in which the paper's completeness result lives. An
// SLOCAL algorithm with locality r processes the nodes in an arbitrary
// order; when node v is processed it sees the graph topology and the
// previously written states inside its r-hop ball B(v, r) and writes its
// own output/state, which later nodes may read.
//
// The simulator measures locality instead of assuming it: a node's view
// starts empty and grows only as the algorithm requests larger balls, and
// the runner reports the maximum effective radius any node used.
//
// The package hosts the SLOCAL algorithms the paper discusses: the
// locality-1 greedy MIS of the introduction, greedy (Δ+1)-colouring, the
// ball-carving (1+δ)-approximate MaxIS that realises the containment
// direction of Theorem 1.1, and the network decomposition underlying the
// class P-SLOCAL.
package slocal

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"pslocal/internal/graph"
)

// ErrBadOrder reports a processing order that is not a permutation of the
// node set.
var ErrBadOrder = errors.New("slocal: order is not a permutation of the nodes")

// marker is an epoch-stamped membership set over a fixed node universe:
// bumping the generation invalidates every mark in O(1), so BFS passes
// reuse one stamp array instead of allocating a map per pass.
type marker struct {
	stamp []uint32
	epoch uint32
}

func newMarker(n int) *marker {
	// epoch starts at 1 so the zeroed stamp array marks nothing.
	return &marker{stamp: make([]uint32, n), epoch: 1}
}

// next starts a fresh generation; all previous marks become invisible.
func (m *marker) next() {
	m.epoch++
	if m.epoch == 0 { // uint32 wrap: clear stamps so stale marks cannot alias
		clear(m.stamp)
		m.epoch = 1
	}
}

func (m *marker) marked(v int32) bool { return m.stamp[v] == m.epoch }
func (m *marker) mark(v int32)        { m.stamp[v] = m.epoch }

// viewScratch is the reusable flat-array BFS state shared by every View
// of one Run: epoch-stamped distances, the discovery order and per-level
// offsets replace the per-node map[int32]int32 the original
// implementation allocated for each processed node.
type viewScratch struct {
	mk       *marker
	dist     []int32 // dist[u] is valid iff mk.marked(u)
	visited  []int32 // discovery order; distances are non-decreasing
	levelEnd []int   // levelEnd[d] = |{u in visited : dist[u] <= d}|
	frontier []int32
	next     []int32
}

func newViewScratch(n int) *viewScratch {
	return &viewScratch{mk: newMarker(n), dist: make([]int32, n)}
}

// View is what a node observes while being processed. All information
// access goes through the view so the runner can account for the locality
// actually used. A View is only valid during its Process call: the runner
// recycles the underlying scratch for the next node in the order.
type View struct {
	g        *graph.Graph
	center   int32
	states   []any
	s        *viewScratch
	explored int  // levels fully explored so far
	finished bool // BFS exhausted the component
	maxUsed  int  // effective locality consumed
}

func newView(g *graph.Graph, center int32, states []any, s *viewScratch) *View {
	w := &View{g: g, states: states, s: s}
	w.reset(center)
	return w
}

// reset re-centres the view on the next processed node, recycling the
// scratch arrays instead of allocating fresh BFS state.
func (w *View) reset(center int32) {
	s := w.s
	s.mk.next()
	s.visited = append(s.visited[:0], center)
	s.levelEnd = append(s.levelEnd[:0], 1)
	s.frontier = append(s.frontier[:0], center)
	s.mk.mark(center)
	s.dist[center] = 0
	w.center = center
	w.explored = 0
	w.finished = false
	w.maxUsed = 0
}

// Center returns the node being processed.
func (w *View) Center() int32 { return w.center }

// extend grows the explored ball to radius r (or until the component is
// exhausted) and charges the effective radius to the locality account.
func (w *View) extend(r int) {
	s := w.s
	for w.explored < r && !w.finished {
		d := int32(w.explored + 1)
		s.next = s.next[:0]
		for _, v := range s.frontier {
			w.g.ForEachNeighbor(v, func(u int32) bool {
				if !s.mk.marked(u) {
					s.mk.mark(u)
					s.dist[u] = d
					s.visited = append(s.visited, u)
					s.next = append(s.next, u)
				}
				return true
			})
		}
		s.frontier, s.next = s.next, s.frontier
		if len(s.frontier) == 0 {
			w.finished = true
			break
		}
		w.explored++
		s.levelEnd = append(s.levelEnd, len(s.visited))
	}
	if w.explored > w.maxUsed {
		w.maxUsed = w.explored
	}
}

// BallNodes returns the nodes of B(center, r) in ascending order,
// extending the explored region as needed. Requesting a radius beyond the
// component's extent charges only the effective (exhausted) radius.
func (w *View) BallNodes(r int) []int32 {
	if r < 0 {
		return nil
	}
	w.extend(r)
	eff := r
	if eff > w.explored {
		eff = w.explored
	}
	// Discovery order is sorted by distance, so B(center, eff) is a prefix.
	prefix := w.s.visited[:w.s.levelEnd[eff]]
	nodes := make([]int32, len(prefix))
	copy(nodes, prefix)
	sortInt32(nodes)
	return nodes
}

// BallGraph returns the subgraph induced by B(center, r) together with the
// mapping orig[newID] = oldID.
func (w *View) BallGraph(r int) (*graph.Graph, []int32, error) {
	nodes := w.BallNodes(r)
	return graph.Induced(w.g, nodes)
}

// State returns the state previously written by node u. ok is false when u
// lies outside the explored ball (the algorithm must request a larger ball
// first) or when u has not been processed yet.
func (w *View) State(u int32) (state any, ok bool) {
	if u < 0 || int(u) >= len(w.states) || !w.s.mk.marked(u) {
		return nil, false
	}
	if w.states[u] == nil {
		return nil, false
	}
	return w.states[u], true
}

// Dist returns the distance from the centre to u when u is inside the
// explored ball.
func (w *View) Dist(u int32) (int, bool) {
	if u < 0 || int(u) >= len(w.s.dist) || !w.s.mk.marked(u) {
		return 0, false
	}
	return int(w.s.dist[u]), true
}

// Radius returns the effective locality consumed so far.
func (w *View) Radius() int { return w.maxUsed }

// Process computes node v's output/state from its view. The returned value
// is stored as v's state, readable by later-processed nodes. A nil return
// stores nothing (indistinguishable from "unprocessed" to later readers).
type Process func(v int32, view *View) any

// Result reports a completed SLOCAL run.
type Result struct {
	// Outputs holds each node's stored state, indexed by node id.
	Outputs []any
	// PerNodeLocality is the effective radius each node consumed.
	PerNodeLocality []int
	// Locality is the maximum entry of PerNodeLocality — the algorithm's
	// measured SLOCAL locality on this input.
	Locality int
}

// Run processes the nodes of g in the given order. One flat-array scratch
// is shared across the whole order, so a full pass allocates O(n) once
// instead of a fresh BFS map per processed node; the *View handed to proc
// must not be retained past the call.
func Run(g *graph.Graph, order []int32, proc Process) (*Result, error) {
	return RunCtx(nil, g, order, proc)
}

// RunCtx is Run with cooperative cancellation: ctx is checked before every
// processed node, so an abandoned simulation stops within one Process
// call. A nil ctx never cancels.
func RunCtx(ctx context.Context, g *graph.Graph, order []int32, proc Process) (*Result, error) {
	if err := checkPermutation(g.N(), order); err != nil {
		return nil, err
	}
	states := make([]any, g.N())
	res := &Result{
		Outputs:         states,
		PerNodeLocality: make([]int, g.N()),
	}
	scratch := newViewScratch(g.N())
	var view *View
	for _, v := range order {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("slocal: run cancelled at node %d: %w", v, err)
			}
		}
		if view == nil {
			view = newView(g, v, states, scratch)
		} else {
			view.reset(v)
		}
		states[v] = proc(v, view)
		res.PerNodeLocality[v] = view.Radius()
		if view.Radius() > res.Locality {
			res.Locality = view.Radius()
		}
	}
	return res, nil
}

// IdentityOrder returns the order 0,1,...,n-1.
func IdentityOrder(n int) []int32 {
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	return order
}

// checkPermutation validates that order is a permutation of 0..n-1.
func checkPermutation(n int, order []int32) error {
	if len(order) != n {
		return fmt.Errorf("%w: length %d, want %d", ErrBadOrder, len(order), n)
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || int(v) >= n || seen[v] {
			return fmt.Errorf("%w: offending entry %d", ErrBadOrder, v)
		}
		seen[v] = true
	}
	return nil
}

// sortInt32 ascending-sorts a slice of node ids.
func sortInt32(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

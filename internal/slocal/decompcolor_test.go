package slocal

import (
	"math/rand"
	"testing"

	"pslocal/internal/graph"
)

func TestDecompositionColouringProper(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	graphs := map[string]*graph.Graph{
		"gnp":      graph.GnP(70, 0.08, rng),
		"grid":     graph.Grid(7, 7),
		"cycle":    graph.Cycle(30),
		"tree":     graph.RandomTree(50, rng),
		"complete": graph.Complete(12),
		"star":     graph.Star(15),
		"edgeless": graph.Empty(8),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			d, err := NetworkDecomposition(g, nil)
			if err != nil {
				t.Fatalf("decomposition: %v", err)
			}
			colours, err := DecompositionColouring(g, d)
			if err != nil {
				t.Fatalf("colouring: %v", err)
			}
			g.ForEachEdge(func(u, v int32) bool {
				if colours[u] == colours[v] {
					t.Errorf("edge {%d,%d} monochromatic (%d)", u, v, colours[u])
				}
				return true
			})
			for v := int32(0); int(v) < g.N(); v++ {
				if colours[v] < 1 || int(colours[v]) > g.Degree(v)+1 {
					t.Errorf("node %d colour %d outside 1..deg+1=%d", v, colours[v], g.Degree(v)+1)
				}
			}
		})
	}
}

func TestDecompositionColouringRandomOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.GnP(60, 0.1, rng)
	for trial := 0; trial < 5; trial++ {
		d, err := NetworkDecomposition(g, randomOrder(g.N(), rng))
		if err != nil {
			t.Fatalf("trial %d decomposition: %v", trial, err)
		}
		colours, err := DecompositionColouring(g, d)
		if err != nil {
			t.Fatalf("trial %d colouring: %v", trial, err)
		}
		bad := false
		g.ForEachEdge(func(u, v int32) bool {
			if colours[u] == colours[v] {
				bad = true
				return false
			}
			return true
		})
		if bad {
			t.Fatalf("trial %d: improper colouring", trial)
		}
	}
}

func TestDecompositionColouringRejectsMismatchedInput(t *testing.T) {
	g := graph.Path(5)
	d, err := NetworkDecomposition(graph.Path(3), nil)
	if err != nil {
		t.Fatalf("decomposition: %v", err)
	}
	if _, err := DecompositionColouring(g, d); err == nil {
		t.Error("mismatched decomposition accepted")
	}
	// Corrupted cluster ids must surface, not panic.
	d5, err := NetworkDecomposition(g, nil)
	if err != nil {
		t.Fatalf("decomposition: %v", err)
	}
	d5.Cluster[0] = 99
	if _, err := DecompositionColouring(g, d5); err == nil {
		t.Error("corrupt cluster id accepted")
	}
}

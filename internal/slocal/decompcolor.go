package slocal

// decompcolor.go implements deterministic (Δ+1)-colouring through network
// decomposition — the blueprint behind "if any P-SLOCAL-complete problem
// can be solved efficiently ... all problems in the class can" (paper
// Section 1): given a (C, D) decomposition, colour classes are processed
// in order and each cluster, being non-adjacent to every same-colour
// cluster, extends the partial colouring of its boundary greedily. The
// locality per cluster is O(D), so the whole algorithm is an
// SLOCAL(O(log n)) deterministic colouring.

import (
	"fmt"

	"pslocal/internal/graph"
)

// DecompositionColouring produces a proper (Δ+1)-colouring of g using the
// given decomposition: clusters of decomposition-colour 1, 2, ... fix
// their vertices' colours in turn, each vertex taking the smallest palette
// colour unused by its already-coloured neighbours. The palette never
// exceeds Δ+1 because at most deg(v) neighbours are coloured when v
// commits.
func DecompositionColouring(g *graph.Graph, d *Decomposition) ([]int32, error) {
	n := g.N()
	if len(d.Cluster) != n {
		return nil, fmt.Errorf("slocal: decomposition sized for %d nodes, graph has %d", len(d.Cluster), n)
	}
	members := make([][]int32, d.NumClusters)
	for v := 0; v < n; v++ {
		c := d.Cluster[v]
		if c < 0 || int(c) >= d.NumClusters {
			return nil, fmt.Errorf("slocal: node %d has cluster %d outside [0,%d)", v, c, d.NumClusters)
		}
		members[c] = append(members[c], int32(v))
	}
	colours := make([]int32, n)
	for phase := int32(1); int(phase) <= d.NumColors; phase++ {
		for k := 0; k < d.NumClusters; k++ {
			if len(members[k]) == 0 || d.Color[members[k][0]] != phase {
				continue
			}
			// Inside a cluster, colour in BFS order from the centre so
			// the assignment is the one a cluster-local computation with
			// radius D would produce.
			sub, orig, err := graph.Induced(g, members[k])
			if err != nil {
				return nil, fmt.Errorf("slocal: cluster %d induction: %w", k, err)
			}
			centreNew := int32(0)
			for newID, oldID := range orig {
				if oldID == d.Centers[k] {
					centreNew = int32(newID)
				}
			}
			order := bfsOrder(sub, centreNew)
			for _, newID := range order {
				v := orig[newID]
				used := map[int32]bool{}
				g.ForEachNeighbor(v, func(u int32) bool {
					if colours[u] != 0 {
						used[colours[u]] = true
					}
					return true
				})
				c := int32(1)
				for used[c] {
					c++
				}
				colours[v] = c
			}
		}
	}
	return colours, nil
}

// bfsOrder returns the nodes of g reachable from src in BFS order,
// followed by any unreachable nodes in id order (clusters are connected,
// so the fallback only defends against corrupted input).
func bfsOrder(g *graph.Graph, src int32) []int32 {
	n := g.N()
	seen := make([]bool, n)
	order := make([]int32, 0, n)
	queue := []int32{src}
	seen[src] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		g.ForEachNeighbor(v, func(u int32) bool {
			if !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
			return true
		})
	}
	for v := int32(0); int(v) < n; v++ {
		if !seen[v] {
			order = append(order, v)
		}
	}
	return order
}

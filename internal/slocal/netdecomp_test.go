package slocal

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"pslocal/internal/graph"
	"pslocal/internal/maxis"
)

func TestNetworkDecompositionValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	graphs := map[string]*graph.Graph{
		"path":     graph.Path(30),
		"cycle":    graph.Cycle(25),
		"grid":     graph.Grid(7, 8),
		"tree":     graph.RandomTree(60, rng),
		"gnp":      graph.GnP(80, 0.05, rng),
		"complete": graph.Complete(15),
		"edgeless": graph.Empty(10),
		"star":     graph.Star(20),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			d, err := NetworkDecomposition(g, nil)
			if err != nil {
				t.Fatalf("NetworkDecomposition error: %v", err)
			}
			if err := d.Validate(g); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if n := g.N(); n > 0 {
				colourBound := int(math.Ceil(math.Log2(float64(n)))) + 1
				if d.NumColors > colourBound {
					t.Errorf("colours %d exceed ceil(log2 n)+1 = %d", d.NumColors, colourBound)
				}
				radiusBound := int(math.Log2(float64(n))) + 1
				if d.MaxRadius > radiusBound {
					t.Errorf("max radius %d exceeds log2 n bound %d", d.MaxRadius, radiusBound)
				}
			}
		})
	}
}

func TestNetworkDecompositionEmptyGraph(t *testing.T) {
	d, err := NetworkDecomposition(graph.Empty(0), nil)
	if err != nil {
		t.Fatalf("error: %v", err)
	}
	if d.NumColors != 0 || d.NumClusters != 0 {
		t.Errorf("empty graph decomposition: %+v", d)
	}
	if err := d.Validate(graph.Empty(0)); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNetworkDecompositionBadOrder(t *testing.T) {
	if _, err := NetworkDecomposition(graph.Path(3), []int32{0}); !errors.Is(err, ErrBadOrder) {
		t.Errorf("error = %v, want ErrBadOrder", err)
	}
}

func TestNetworkDecompositionRandomOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.GnP(70, 0.08, rng)
	for trial := 0; trial < 5; trial++ {
		d, err := NetworkDecomposition(g, randomOrder(g.N(), rng))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := d.Validate(g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestNetworkDecompositionCliqueIsOneClusterPerPhase(t *testing.T) {
	g := graph.Complete(9)
	d, err := NetworkDecomposition(g, nil)
	if err != nil {
		t.Fatalf("error: %v", err)
	}
	// B(v,0) = {v}, B(v,1) = everything: 1 <= 2·... wait |B(1)| = 9 > 2
	// so r grows; |B(2)| = |B(1)| = 9 <= 18 fires at r=1: the whole clique
	// is one cluster of radius 1.
	if d.NumClusters != 1 {
		t.Errorf("K9 decomposed into %d clusters, want 1", d.NumClusters)
	}
	if d.NumColors != 1 {
		t.Errorf("K9 used %d colours, want 1", d.NumColors)
	}
}

func TestDecompositionMaxIS(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		g := graph.GnP(40+rng.Intn(30), 0.05+rng.Float64()*0.1, rng)
		d, err := NetworkDecomposition(g, nil)
		if err != nil {
			t.Fatalf("trial %d decomposition: %v", trial, err)
		}
		set, err := DecompositionMaxIS(g, d)
		if err != nil {
			t.Fatalf("trial %d solve: %v", trial, err)
		}
		if !maxis.IsIndependentSet(g, set) {
			t.Fatalf("trial %d: not independent", trial)
		}
		if g.N() > 0 && len(set) == 0 {
			t.Fatalf("trial %d: empty result", trial)
		}
	}
}

func TestDecompositionValidateCatchesCorruption(t *testing.T) {
	g := graph.Path(6)
	d, err := NetworkDecomposition(g, nil)
	if err != nil {
		t.Fatalf("error: %v", err)
	}
	// Corrupt: give two adjacent nodes in different clusters the same
	// colour, or break the cluster id range.
	bad := *d
	bad.Cluster = append([]int32(nil), d.Cluster...)
	bad.Cluster[0] = 99
	if err := bad.Validate(g); err == nil {
		t.Error("out-of-range cluster id not caught")
	}
	bad2 := *d
	bad2.Color = append([]int32(nil), d.Color...)
	bad2.Color[0] = 0
	if err := bad2.Validate(g); err == nil {
		t.Error("zero colour not caught")
	}
}

package slocal

// netdecomp.go implements a deterministic strong-diameter network
// decomposition by sparse-shell ball carving — the structure underlying
// the class P-SLOCAL ([AGLP89], [GKM17]; the paper lists
// (poly log n, poly log n)-network decomposition among the
// P-SLOCAL-complete problems).
//
// In phase c, the still-unclustered nodes are processed in order; an
// unclaimed node v grows a ball in the residual graph until the next shell
// stops doubling it (|B(v, r+1)| <= 2·|B(v, r)|), takes B(v, r) as a
// cluster of colour c, and removes B(v, r+1) from the phase's residual
// graph. The shell nodes stay unclustered until a later phase. Shells are
// no larger than their clusters, so at least half of the remaining nodes
// are clustered per phase, giving at most ceil(log2 n) + 1 colours; balls
// double per growth step, so cluster radii are at most log2 n.

import (
	"fmt"

	"pslocal/internal/graph"
	"pslocal/internal/maxis"
)

// Decomposition is a (C, D) network decomposition: a partition of the
// nodes into clusters, each cluster carrying a colour, such that clusters
// of the same colour are non-adjacent and every cluster has small radius.
type Decomposition struct {
	// Color assigns each node its cluster's colour, 1..NumColors.
	Color []int32
	// Cluster assigns each node a dense cluster id, 0..NumClusters-1.
	Cluster []int32
	// NumColors is the number of colour classes used.
	NumColors int
	// NumClusters is the number of clusters.
	NumClusters int
	// Centers[k] is the node whose carve created cluster k.
	Centers []int32
	// Radii[k] is the carve radius of cluster k (its radius in the
	// residual graph, an upper bound on its strong radius).
	Radii []int
	// MaxRadius is the largest entry of Radii.
	MaxRadius int
}

// NetworkDecomposition carves g into a (≤ ceil(log2 n)+1, ≤ 2·log2 n)
// decomposition, processing residual nodes in the given order each phase
// (nil selects the identity order).
func NetworkDecomposition(g *graph.Graph, order []int32) (*Decomposition, error) {
	n := g.N()
	if order == nil {
		order = IdentityOrder(n)
	}
	if err := checkPermutation(n, order); err != nil {
		return nil, err
	}
	d := &Decomposition{
		Color:   make([]int32, n),
		Cluster: make([]int32, n),
	}
	for i := range d.Cluster {
		d.Cluster[i] = -1
	}
	unclustered := n
	mk := newMarker(n) // shared BFS stamps across all phases' carves
	for phase := int32(1); unclustered > 0; phase++ {
		d.NumColors = int(phase)
		// avail: unclustered and not yet claimed as a shell this phase.
		avail := make([]bool, n)
		for v := 0; v < n; v++ {
			avail[v] = d.Cluster[v] < 0
		}
		for _, v := range order {
			if !avail[v] {
				continue
			}
			layers := residualLayers(g, v, avail, mk)
			// Smallest r with |B(r+1)| <= 2|B(r)|; sizes[r] = |B(v, r)|.
			size := 0
			var ballNodes []int32
			radius := len(layers) - 1 // fallback: component exhausted
			for r := 0; r < len(layers); r++ {
				prev := size
				size += len(layers[r])
				ballNodes = append(ballNodes, layers[r]...)
				if r > 0 && size <= 2*prev {
					radius = r - 1
					break
				}
			}
			// ballNodes currently holds B(radius+1) (or the full component).
			clusterID := int32(d.NumClusters)
			d.NumClusters++
			d.Centers = append(d.Centers, v)
			d.Radii = append(d.Radii, radius)
			if radius > d.MaxRadius {
				d.MaxRadius = radius
			}
			for r := 0; r <= radius && r < len(layers); r++ {
				for _, u := range layers[r] {
					d.Cluster[u] = clusterID
					d.Color[u] = phase
					unclustered--
				}
			}
			claim(avail, ballNodes) // cluster plus shell leave this phase
		}
	}
	return d, nil
}

// Validate checks the decomposition invariants against g: every node
// clustered exactly once with a colour, clusters internally connected
// with radius at most Radii from their centre, and same-colour clusters
// non-adjacent. It returns nil for every decomposition produced by
// NetworkDecomposition.
func (d *Decomposition) Validate(g *graph.Graph) error {
	n := g.N()
	if len(d.Color) != n || len(d.Cluster) != n {
		return fmt.Errorf("slocal: decomposition sized for %d nodes, graph has %d", len(d.Color), n)
	}
	members := make([][]int32, d.NumClusters)
	for v := 0; v < n; v++ {
		c := d.Cluster[v]
		if c < 0 || int(c) >= d.NumClusters {
			return fmt.Errorf("slocal: node %d has cluster %d outside [0,%d)", v, c, d.NumClusters)
		}
		if d.Color[v] < 1 || int(d.Color[v]) > d.NumColors {
			return fmt.Errorf("slocal: node %d has colour %d outside [1,%d]", v, d.Color[v], d.NumColors)
		}
		members[c] = append(members[c], int32(v))
	}
	for k := 0; k < d.NumClusters; k++ {
		if len(members[k]) == 0 {
			return fmt.Errorf("slocal: cluster %d empty", k)
		}
		sub, orig, err := graph.Induced(g, members[k])
		if err != nil {
			return fmt.Errorf("slocal: cluster %d induction: %w", k, err)
		}
		centreNew := int32(-1)
		for newID, oldID := range orig {
			if oldID == d.Centers[k] {
				centreNew = int32(newID)
			}
		}
		if centreNew < 0 {
			return fmt.Errorf("slocal: cluster %d does not contain its centre %d", k, d.Centers[k])
		}
		dist := graph.BFS(sub, centreNew)
		for newID, dd := range dist {
			if dd < 0 {
				return fmt.Errorf("slocal: cluster %d disconnected at node %d", k, orig[newID])
			}
			if int(dd) > d.Radii[k] {
				return fmt.Errorf("slocal: cluster %d node %d at radius %d > recorded %d", k, orig[newID], dd, d.Radii[k])
			}
		}
	}
	// Same-colour clusters must be non-adjacent.
	var err error
	g.ForEachEdge(func(u, v int32) bool {
		if d.Cluster[u] != d.Cluster[v] && d.Color[u] == d.Color[v] {
			err = fmt.Errorf("slocal: edge {%d,%d} joins distinct clusters of colour %d", u, v, d.Color[u])
			return false
		}
		return true
	})
	return err
}

// DecompositionMaxIS is the decomposition-based MaxIS heuristic used as an
// ablation against ball carving (experiment E6/E9 commentary): colour
// classes are processed in ascending order, and every cluster contributes
// an exact maximum independent set of its nodes minus the closed
// neighbourhood of the set chosen so far. Unlike ball carving it has no
// (1+δ) guarantee; its empirical ratio is what the ablation measures.
func DecompositionMaxIS(g *graph.Graph, d *Decomposition) ([]int32, error) {
	n := g.N()
	members := make([][]int32, d.NumClusters)
	for v := 0; v < n; v++ {
		members[d.Cluster[v]] = append(members[d.Cluster[v]], int32(v))
	}
	blocked := make([]bool, n)
	var out []int32
	for colour := int32(1); int(colour) <= d.NumColors; colour++ {
		for k := 0; k < d.NumClusters; k++ {
			if len(members[k]) == 0 || d.Color[members[k][0]] != colour {
				continue
			}
			var free []int32
			for _, v := range members[k] {
				if !blocked[v] {
					free = append(free, v)
				}
			}
			if len(free) == 0 {
				continue
			}
			sub, orig, err := graph.Induced(g, free)
			if err != nil {
				return nil, fmt.Errorf("slocal: decomposition MaxIS induction: %w", err)
			}
			set, err := maxis.Exact(sub)
			if err != nil {
				return nil, fmt.Errorf("slocal: decomposition MaxIS solve: %w", err)
			}
			for _, u := range set {
				v := orig[u]
				out = append(out, v)
				blocked[v] = true
				g.ForEachNeighbor(v, func(w int32) bool {
					blocked[w] = true
					return true
				})
			}
		}
	}
	sortInt32(out)
	return out, nil
}

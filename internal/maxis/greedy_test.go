package maxis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pslocal/internal/graph"
)

func TestGreedyMinDegreeKnown(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int // exact greedy outcome on these structured inputs
	}{
		{"edgeless", graph.Empty(5), 5},
		{"star picks leaves", graph.Star(9), 8},
		{"complete", graph.Complete(7), 1},
		{"path6", graph.Path(6), 3},
		{"two cliques", graph.Union(graph.Complete(3), graph.Complete(5)), 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := GreedyMinDegree(tt.g)
			if len(got) != tt.want {
				t.Errorf("size = %d, want %d (set %v)", len(got), tt.want, got)
			}
			if !IsMaximalIndependentSet(tt.g, got) {
				t.Errorf("result %v not a maximal independent set", got)
			}
		})
	}
}

func TestGreedyMinDegreeMeetsCaroWei(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.GnP(2+rng.Intn(60), rng.Float64()*0.5, rng)
		set := GreedyMinDegree(g)
		if !IsMaximalIndependentSet(g, set) {
			return false
		}
		return float64(len(set)) >= math.Floor(CaroWei(g))-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGreedyOrderAdversarial(t *testing.T) {
	// Processing the star centre first yields the worst possible MIS.
	g := graph.Star(6)
	order := []int32{0, 1, 2, 3, 4, 5}
	set, err := GreedyOrder(g, order)
	if err != nil {
		t.Fatalf("GreedyOrder error: %v", err)
	}
	if len(set) != 1 || set[0] != 0 {
		t.Errorf("centre-first greedy = %v, want [0]", set)
	}
	// Processing leaves first yields the optimum.
	order = []int32{1, 2, 3, 4, 5, 0}
	set, err = GreedyOrder(g, order)
	if err != nil {
		t.Fatalf("GreedyOrder error: %v", err)
	}
	if len(set) != 5 {
		t.Errorf("leaves-first greedy size = %d, want 5", len(set))
	}
}

func TestGreedyOrderErrors(t *testing.T) {
	g := graph.Path(3)
	if _, err := GreedyOrder(g, []int32{0, 1}); err == nil {
		t.Error("short order should error")
	}
	if _, err := GreedyOrder(g, []int32{0, 1, 1}); err == nil {
		t.Error("repeated node should error")
	}
	if _, err := GreedyOrder(g, []int32{0, 1, 5}); err == nil {
		t.Error("out-of-range node should error")
	}
}

func TestGreedyRandomOrderProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		g := graph.GnP(1+rng.Intn(50), rng.Float64()*0.4, rng)
		set := GreedyRandomOrder(g, rng)
		if !IsMaximalIndependentSet(g, set) {
			t.Fatalf("trial %d: %v not a maximal independent set", trial, set)
		}
	}
}

func TestOraclesReturnValidIndependentSets(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	graphs := []*graph.Graph{
		graph.Empty(4),
		graph.Path(9),
		graph.Cycle(8),
		graph.Star(7),
		graph.GnP(40, 0.15, rng),
		graph.Grid(4, 5),
	}
	oracles := []Oracle{
		MinDegreeOracle{},
		&RandomOrderOracle{Seed: 1},
		FirstFitOracle{},
		ExactOracle{},
		CliqueRemovalOracle{},
	}
	seen := map[string]bool{}
	for _, o := range oracles {
		if seen[o.Name()] {
			t.Errorf("duplicate oracle name %q", o.Name())
		}
		seen[o.Name()] = true
		for gi, g := range graphs {
			set, err := o.Solve(g)
			if err != nil {
				t.Errorf("%s on graph %d: %v", o.Name(), gi, err)
				continue
			}
			if !IsIndependentSet(g, set) {
				t.Errorf("%s on graph %d: result %v not independent", o.Name(), gi, set)
			}
			if g.N() > 0 && len(set) == 0 {
				t.Errorf("%s on graph %d: empty set on non-empty graph", o.Name(), gi)
			}
		}
	}
}

func TestIsIndependentSet(t *testing.T) {
	g := graph.Path(4)
	tests := []struct {
		name  string
		nodes []int32
		want  bool
	}{
		{"empty", nil, true},
		{"valid", []int32{0, 2}, true},
		{"adjacent", []int32{0, 1}, false},
		{"duplicate", []int32{0, 0}, false},
		{"out of range", []int32{0, 9}, false},
		{"negative", []int32{-1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IsIndependentSet(g, tt.nodes); got != tt.want {
				t.Errorf("IsIndependentSet(%v) = %v, want %v", tt.nodes, got, tt.want)
			}
		})
	}
}

func TestIsMaximalIndependentSet(t *testing.T) {
	g := graph.Path(5) // 0-1-2-3-4
	tests := []struct {
		name  string
		nodes []int32
		want  bool
	}{
		{"maximum", []int32{0, 2, 4}, true},
		{"maximal not maximum", []int32{1, 3}, true},
		{"maximal pair", []int32{0, 3}, true},
		{"independent not maximal", []int32{2}, false},
		{"not maximal singleton end", []int32{0}, false},
		{"not independent", []int32{0, 1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IsMaximalIndependentSet(g, tt.nodes); got != tt.want {
				t.Errorf("IsMaximalIndependentSet(%v) = %v, want %v", tt.nodes, got, tt.want)
			}
		})
	}
}

func TestCaroWei(t *testing.T) {
	// d-regular graph: bound = n/(d+1).
	if got := CaroWei(graph.Cycle(9)); math.Abs(got-3) > 1e-9 {
		t.Errorf("CaroWei(C9) = %v, want 3", got)
	}
	if got := CaroWei(graph.Complete(5)); math.Abs(got-1) > 1e-9 {
		t.Errorf("CaroWei(K5) = %v, want 1", got)
	}
	if got := CaroWei(graph.Empty(4)); math.Abs(got-4) > 1e-9 {
		t.Errorf("CaroWei(empty4) = %v, want 4", got)
	}
}

func TestRatio(t *testing.T) {
	if r, err := Ratio(10, 5); err != nil || r != 2 {
		t.Errorf("Ratio(10,5) = %v,%v want 2,nil", r, err)
	}
	if r, err := Ratio(0, 0); err != nil || r != 1 {
		t.Errorf("Ratio(0,0) = %v,%v want 1,nil", r, err)
	}
	if _, err := Ratio(3, 0); err == nil {
		t.Error("Ratio(3,0) should error")
	}
}

package maxis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pslocal/internal/graph"
)

// isClique reports whether nodes are pairwise adjacent in g.
func isClique(g *graph.Graph, nodes []int32) bool {
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if !g.HasEdge(nodes[i], nodes[j]) {
				return false
			}
		}
	}
	return true
}

func allNodes(g *graph.Graph) []int32 {
	out := make([]int32, g.N())
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

func TestRamseyReturnsCliqueAndIndependentSet(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.GnP(1+rng.Intn(40), rng.Float64(), rng)
		c, i := Ramsey(g, allNodes(g))
		if len(c) == 0 || len(i) == 0 {
			return false // non-empty input always yields both
		}
		return isClique(g, c) && IsIndependentSet(g, i)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRamseyExtremes(t *testing.T) {
	g := graph.Complete(6)
	c, i := Ramsey(g, allNodes(g))
	if len(c) != 6 {
		t.Errorf("clique in K6 = %d nodes, want 6", len(c))
	}
	if len(i) != 1 {
		t.Errorf("independent set in K6 = %d nodes, want 1", len(i))
	}
	g = graph.Empty(5)
	c, i = Ramsey(g, allNodes(g))
	if len(c) != 1 || len(i) != 5 {
		t.Errorf("edgeless: clique %d, is %d, want 1, 5", len(c), len(i))
	}
}

func TestRamseySubsetRespectsActive(t *testing.T) {
	g := graph.Complete(8)
	active := []int32{1, 3, 5}
	c, i := Ramsey(g, active)
	inActive := map[int32]bool{1: true, 3: true, 5: true}
	for _, v := range append(append([]int32{}, c...), i...) {
		if !inActive[v] {
			t.Errorf("node %d outside active set", v)
		}
	}
	if len(c) != 3 || len(i) != 1 {
		t.Errorf("clique %d, is %d, want 3, 1", len(c), len(i))
	}
}

func TestCliqueRemovalProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.GnP(1+rng.Intn(50), rng.Float64()*0.7, rng)
		set := CliqueRemoval(g)
		return IsIndependentSet(g, set) && (g.N() == 0 || len(set) > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCliqueRemovalBeatsTrivialOnCliquePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// 10 disjoint triangles: α = 10; clique removal should find it exactly
	// because each Ramsey run peels a triangle.
	sizes := make([]int, 10)
	for i := range sizes {
		sizes[i] = 3
	}
	g := graph.CliquePartitionGraph(sizes, 0, rng)
	set := CliqueRemoval(g)
	if len(set) != 10 {
		t.Errorf("clique removal on 10 triangles = %d, want 10", len(set))
	}
}

func TestCliqueRemovalEmptyGraph(t *testing.T) {
	if set := CliqueRemoval(graph.Empty(0)); len(set) != 0 {
		t.Errorf("empty graph result = %v", set)
	}
}

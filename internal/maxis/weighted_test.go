package maxis

import (
	"errors"
	"math/rand"
	"testing"

	"pslocal/internal/graph"
)

// weightedGrid returns random weighted graphs (plus weighted corner
// cases) for the oracle sweeps. Weights are skewed so that weight order
// and degree order disagree on most instances.
func weightedGrid(t *testing.T) []*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	var gs []*graph.Graph
	add := func(g *graph.Graph) {
		ws := make([]int64, g.N())
		for i := range ws {
			ws[i] = 1 + rng.Int63n(1000)*rng.Int63n(2) // half the vertices stay at weight 1
		}
		wg, err := graph.WithWeights(g, ws)
		if err != nil {
			t.Fatalf("WithWeights: %v", err)
		}
		gs = append(gs, wg)
	}
	add(graph.Cycle(9))
	add(graph.Grid(4, 5))
	add(graph.Complete(6))
	for i := 0; i < 8; i++ {
		add(graph.GnP(10+i*6, 0.05+0.04*float64(i), rng))
	}
	return gs
}

// bruteForceWeightedAlpha enumerates all subsets; usable for n <= ~20.
func bruteForceWeightedAlpha(g *graph.Graph) int64 {
	n := g.N()
	adjMask := make([]uint32, n)
	for v := 0; v < n; v++ {
		g.ForEachNeighbor(int32(v), func(u int32) bool {
			adjMask[v] |= 1 << uint(u)
			return true
		})
	}
	best := int64(0)
	for mask := uint32(0); mask < 1<<uint(n); mask++ {
		var w int64
		ok := true
		for v := 0; v < n && ok; v++ {
			if mask&(1<<uint(v)) == 0 {
				continue
			}
			if adjMask[v]&mask != 0 {
				ok = false
				break
			}
			w += g.Weight(int32(v))
		}
		if ok && w > best {
			best = w
		}
	}
	return best
}

func TestSetWeight(t *testing.T) {
	g := graph.Path(4)
	if got := SetWeight(g, []int32{0, 2}); got != 2 {
		t.Errorf("unweighted SetWeight = %d, want 2 (cardinality)", got)
	}
	wg, err := graph.WithWeights(g, []int64{10, 1, 7, 1})
	if err != nil {
		t.Fatalf("WithWeights: %v", err)
	}
	if got := SetWeight(wg, []int32{0, 2}); got != 17 {
		t.Errorf("weighted SetWeight = %d, want 17", got)
	}
	if got := SetWeight(wg, nil); got != 0 {
		t.Errorf("empty SetWeight = %d, want 0", got)
	}
}

func TestVerifyWeighted(t *testing.T) {
	wg, err := graph.WithWeights(graph.Path(4), []int64{10, 1, 7, 1})
	if err != nil {
		t.Fatalf("WithWeights: %v", err)
	}
	if err := VerifyWeighted(wg, []int32{0, 2}, 17); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	if err := VerifyWeighted(wg, []int32{0, 2}, 16); err == nil {
		t.Error("wrong reported weight accepted")
	}
	if err := VerifyWeighted(wg, []int32{0, 1}, 11); err == nil {
		t.Error("dependent set accepted")
	}
}

// TestGreedyWeightedPrefersHeavyVertices pins the objective switch: on a
// star, cardinality greedy takes the leaves, but with a heavy centre the
// weighted greedy must take the centre alone.
func TestGreedyWeightedPrefersHeavyVertices(t *testing.T) {
	b := graph.NewBuilder(5)
	for leaf := int32(1); leaf < 5; leaf++ {
		b.AddEdge(0, leaf)
	}
	star := b.MustBuild()
	if got := GreedyWeighted(star); len(got) != 4 {
		t.Errorf("unit-weight star greedy took %v, want the 4 leaves", got)
	}
	heavy, err := graph.WithWeights(star, []int64{100, 1, 1, 1, 1})
	if err != nil {
		t.Fatalf("WithWeights: %v", err)
	}
	if got := GreedyWeighted(heavy); len(got) != 1 || got[0] != 0 {
		t.Errorf("heavy-centre star greedy took %v, want [0]", got)
	}
}

// TestExactWeightedMatchesBruteForce checks the weighted branch-and-bound
// (all three weight-sum bounds, the gated degree-1 rule, the skipped
// cycle shortcut) against subset enumeration.
func TestExactWeightedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(15) // up to 18
		g := graph.GnP(n, 0.1+0.5*rng.Float64(), rng)
		ws := make([]int64, n)
		for i := range ws {
			ws[i] = 1 + rng.Int63n(50)
		}
		wg, err := graph.WithWeights(g, ws)
		if err != nil {
			t.Fatalf("WithWeights: %v", err)
		}
		set, err := Exact(wg)
		if err != nil {
			t.Fatalf("Exact: %v", err)
		}
		got := SetWeight(wg, set)
		if err := VerifyWeighted(wg, set, got); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if want := bruteForceWeightedAlpha(wg); got != want {
			t.Errorf("trial %d (n=%d): exact weight %d, want %d", trial, n, got, want)
		}
	}
}

// TestExactWeightedCycles covers the weighted mode on pure cycles, where
// the unweighted solver would take the ⌊n/2⌋ shortcut that is unsound
// under weights: on C4 with one heavy pair the optimum is the pair.
func TestExactWeightedCycles(t *testing.T) {
	for n := 3; n <= 9; n++ {
		g := graph.Cycle(n)
		ws := make([]int64, n)
		for i := range ws {
			ws[i] = int64(1 + (i*7)%5)
		}
		wg, err := graph.WithWeights(g, ws)
		if err != nil {
			t.Fatalf("WithWeights: %v", err)
		}
		set, err := Exact(wg)
		if err != nil {
			t.Fatalf("Exact(C%d): %v", n, err)
		}
		got := SetWeight(wg, set)
		if err := VerifyWeighted(wg, set, got); err != nil {
			t.Fatalf("C%d: %v", n, err)
		}
		if want := bruteForceWeightedAlpha(wg); got != want {
			t.Errorf("C%d: exact weight %d, want %d", n, got, want)
		}
	}
}

// TestExactWeightedHint exercises the weighted clique-hint bound through
// ExactOpts on conflict-graph-shaped instances (a clique partition).
func TestExactWeightedHint(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sizes := []int{3, 4, 2, 5}
	g := graph.CliquePartitionGraph(sizes, 0.2, rng)
	ws := make([]int64, g.N())
	for i := range ws {
		ws[i] = 1 + rng.Int63n(30)
	}
	wg, err := graph.WithWeights(g, ws)
	if err != nil {
		t.Fatalf("WithWeights: %v", err)
	}
	hint := make([]int32, 0, g.N()) // per-node clique id
	for c, s := range sizes {
		for i := 0; i < s; i++ {
			hint = append(hint, int32(c))
		}
	}
	set, err := ExactOpts(wg, ExactOptions{CliqueHint: hint})
	if err != nil {
		t.Fatalf("ExactOpts: %v", err)
	}
	got := SetWeight(wg, set)
	if err := VerifyWeighted(wg, set, got); err != nil {
		t.Fatal(err)
	}
	if want := bruteForceWeightedAlpha(wg); got != want {
		t.Errorf("hinted exact weight %d, want %d", got, want)
	}
}

// TestRegistryOraclesWeighted sweeps every registered oracle over random
// weighted graphs: outputs must verify as weighted independent sets, and
// bipartite-exact must decline weighted instances with ErrInapplicable.
func TestRegistryOraclesWeighted(t *testing.T) {
	gs := weightedGrid(t)
	for _, name := range Names() {
		o, err := Lookup(name, 3)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		for i, g := range gs {
			set, err := o.Solve(g)
			if name == "bipartite-exact" && g.Weighted() {
				if !errors.Is(err, ErrInapplicable) {
					t.Errorf("%s on weighted graph %d: err = %v, want ErrInapplicable", name, i, err)
				}
				continue
			}
			if err != nil {
				if errors.Is(err, ErrInapplicable) {
					continue // structural inapplicability (e.g. odd cycles) is fine
				}
				t.Errorf("%s graph %d: %v", name, i, err)
				continue
			}
			if err := VerifyWeighted(g, set, SetWeight(g, set)); err != nil {
				t.Errorf("%s graph %d: %v", name, i, err)
			}
		}
	}
}

// TestBipartiteExactWeightedInapplicable pins the sentinel chain: the
// weighted refusal must satisfy errors.Is for both sentinels.
func TestBipartiteExactWeightedInapplicable(t *testing.T) {
	wg, err := graph.WithWeights(graph.Path(4), []int64{2, 1, 1, 1})
	if err != nil {
		t.Fatalf("WithWeights: %v", err)
	}
	_, err = BipartiteExact(wg)
	if !errors.Is(err, ErrWeightedInstance) || !errors.Is(err, ErrInapplicable) {
		t.Errorf("BipartiteExact(weighted) err = %v, want ErrWeightedInstance wrapping ErrInapplicable", err)
	}
}

// TestUnitWeightsNormalizeToUnweighted pins the contract that weights are
// part of the instance, not a mode: an explicit all-ones vector is the
// same instance as no weights at all, so every oracle is bit-identical on
// the two spellings.
func TestUnitWeightsNormalizeToUnweighted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 6; trial++ {
		g := graph.GnP(20+trial*10, 0.1, rng)
		unit, err := graph.WithWeights(g, unitWeightVector(g.N()))
		if err != nil {
			t.Fatalf("WithWeights: %v", err)
		}
		if unit.Weighted() {
			t.Fatal("all-ones weight vector left the graph weighted")
		}
		for _, name := range Names() {
			a, errA := mustLookup(t, name).Solve(g)
			b, errB := mustLookup(t, name).Solve(unit)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("%s: error mismatch: %v vs %v", name, errA, errB)
			}
			if !equalSets(a, b) {
				t.Errorf("%s: unit-weight instance diverged: %v vs %v", name, a, b)
			}
		}
	}
}

func unitWeightVector(n int) []int64 {
	ws := make([]int64, n)
	for i := range ws {
		ws[i] = 1
	}
	return ws
}

func mustLookup(t *testing.T, name string) Oracle {
	t.Helper()
	o, err := Lookup(name, 7)
	if err != nil {
		t.Fatalf("Lookup(%q): %v", name, err)
	}
	return o
}

// TestPortfolioReturnsMaxWeightMember builds a portfolio whose members
// return sets of different weights and checks the heaviest wins even when
// a lighter set has more vertices.
func TestPortfolioReturnsMaxWeightMember(t *testing.T) {
	b := graph.NewBuilder(5)
	for leaf := int32(1); leaf < 5; leaf++ {
		b.AddEdge(0, leaf)
	}
	star := b.MustBuild()
	wg, err := graph.WithWeights(star, []int64{100, 1, 1, 1, 1})
	if err != nil {
		t.Fatalf("WithWeights: %v", err)
	}
	centre := fixedOracle{name: "centre", set: []int32{0}}
	leaves := fixedOracle{name: "leaves", set: []int32{1, 2, 3, 4}}
	p, err := NewPortfolio(leaves, centre)
	if err != nil {
		t.Fatalf("NewPortfolio: %v", err)
	}
	set, err := p.Solve(wg)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if len(set) != 1 || set[0] != 0 {
		t.Errorf("portfolio picked %v, want the weight-100 centre [0]", set)
	}
	// On the unweighted twin the same race is decided by cardinality.
	set, err = p.Solve(star)
	if err != nil {
		t.Fatalf("Solve(unweighted): %v", err)
	}
	if len(set) != 4 {
		t.Errorf("unweighted portfolio picked %v, want the 4 leaves", set)
	}
}

// TestPortfolioTieBreakLowestIndex pins the documented tie-break: on an
// equal-weight (here equal-size) race the lowest-index member's set wins,
// keeping portfolios deterministic across worker counts.
func TestPortfolioTieBreakLowestIndex(t *testing.T) {
	g := graph.Path(4) // {0,2}, {0,3} and {1,3} all have size 2
	first := fixedOracle{name: "first", set: []int32{0, 2}}
	second := fixedOracle{name: "second", set: []int32{1, 3}}
	p, err := NewPortfolio(first, second)
	if err != nil {
		t.Fatalf("NewPortfolio: %v", err)
	}
	for trial := 0; trial < 20; trial++ {
		set, err := p.Solve(g)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		if !equalSets(set, []int32{0, 2}) {
			t.Fatalf("trial %d: tie went to %v, want member 0's {0,2}", trial, set)
		}
	}
	// Same race on a weighted graph with equal set weights.
	wg, err := graph.WithWeights(g, []int64{3, 2, 4, 5})
	if err != nil {
		t.Fatalf("WithWeights: %v", err)
	}
	if SetWeight(wg, []int32{0, 2}) != SetWeight(wg, []int32{1, 3}) {
		t.Fatal("test setup: weights are not tied")
	}
	for trial := 0; trial < 20; trial++ {
		set, err := p.Solve(wg)
		if err != nil {
			t.Fatalf("Solve(weighted): %v", err)
		}
		if !equalSets(set, []int32{0, 2}) {
			t.Fatalf("weighted trial %d: tie went to %v, want member 0's {0,2}", trial, set)
		}
	}
}

// fixedOracle returns a canned set regardless of the input graph.
type fixedOracle struct {
	name string
	set  []int32
}

func (f fixedOracle) Name() string { return f.name }
func (f fixedOracle) Solve(*graph.Graph) ([]int32, error) {
	out := make([]int32, len(f.set))
	copy(out, f.set)
	return out, nil
}

// TestCliqueRemovalWeighted checks the Ramsey-based oracle keeps a valid
// set and never returns a lighter set than its best recursion level.
func TestCliqueRemovalWeighted(t *testing.T) {
	for i, g := range weightedGrid(t) {
		set := CliqueRemoval(g)
		if err := VerifyWeighted(g, set, SetWeight(g, set)); err != nil {
			t.Errorf("graph %d: %v", i, err)
		}
	}
}

// TestGreedyWeightedDenseMatchesList checks the bitset kernel path gives
// the same answer as the list path on dense weighted graphs (same static
// order, different scan kernels).
func TestGreedyWeightedDenseMatchesList(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		g := graph.GnP(40, 0.6, rng)
		ws := make([]int64, g.N())
		for i := range ws {
			ws[i] = 1 + rng.Int63n(100)
		}
		wg, err := graph.WithWeights(g, ws)
		if err != nil {
			t.Fatalf("WithWeights: %v", err)
		}
		d := NewDense(wg)
		if d == nil {
			t.Skip("instance below the density cutoff")
		}
		viaDense := greedyWeightedAuto(d, wg)
		order := weightedRatioOrder(wg, nil)
		viaList, err := GreedyOrder(wg, order)
		if err != nil {
			t.Fatalf("GreedyOrder: %v", err)
		}
		if !equalSets(viaDense, viaList) {
			t.Errorf("trial %d: dense %v != list %v", trial, viaDense, viaList)
		}
	}
}

package maxis

// bitset.go provides a minimal fixed-size bitset used by the exact solver
// and the Ramsey clique-removal algorithm. Unexported: the public API of
// this package speaks []int32 node lists.

import "math/bits"

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int32)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clear(i int32)    { b[i>>6] &^= 1 << (uint(i) & 63) }
func (b bitset) has(i int32) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b bitset) clone() bitset {
	out := make(bitset, len(b))
	copy(out, b)
	return out
}

func (b bitset) count() int {
	total := 0
	for _, w := range b {
		total += bits.OnesCount64(w)
	}
	return total
}

func (b bitset) any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// andNotInPlace removes all bits of x from b.
func (b bitset) andNotInPlace(x bitset) {
	for i := range b {
		b[i] &^= x[i]
	}
}

// intersects reports whether b and x share a set bit, with first-hit
// early exit; the dense greedy kernels use it as their blocking test.
func intersects(b, x bitset) bool {
	for i := range b {
		if b[i]&x[i] != 0 {
			return true
		}
	}
	return false
}

// countAnd returns |b ∩ x| without allocating.
func countAnd(b, x bitset) int {
	total := 0
	for i := range b {
		total += bits.OnesCount64(b[i] & x[i])
	}
	return total
}

// andInto writes a ∩ b into dst.
func andInto(dst, a, b bitset) {
	for i := range dst {
		dst[i] = a[i] & b[i]
	}
}

// first returns the smallest set bit, or -1 if empty.
func (b bitset) first() int32 {
	for i, w := range b {
		if w != 0 {
			return int32(i*64 + bits.TrailingZeros64(w))
		}
	}
	return -1
}

// forEach calls fn for each set bit in ascending order; stops early when fn
// returns false.
func (b bitset) forEach(fn func(i int32) bool) {
	for wi, w := range b {
		for w != 0 {
			i := int32(wi*64 + bits.TrailingZeros64(w))
			if !fn(i) {
				return
			}
			w &= w - 1
		}
	}
}

// firstAnd returns the smallest bit set in both b and x, or -1.
func firstAnd(b, x bitset) int32 {
	for i := range b {
		if w := b[i] & x[i]; w != 0 {
			return int32(i*64 + bits.TrailingZeros64(w))
		}
	}
	return -1
}

package maxis

// greedy.go implements the heuristic oracles: min-degree greedy (meets the
// Caro–Wei bound), fixed-order greedy (the locality-1 SLOCAL greedy of the
// paper's introduction, run centrally), and random-permutation greedy.

import (
	"context"
	"fmt"
	"math/rand"

	"pslocal/internal/graph"
)

// GreedyMinDegree repeatedly selects a minimum-degree vertex of the
// remaining graph, adds it to the independent set, and deletes its closed
// neighbourhood. The result always has size at least the Caro–Wei bound
// Σ 1/(deg+1).
func GreedyMinDegree(g *graph.Graph) []int32 {
	n := g.N()
	removed := make([]bool, n)
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(int32(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket queue over residual degrees with lazy deletion.
	buckets := make([][]int32, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], int32(v))
	}
	var out []int32
	remaining := n
	cursor := 0
	for remaining > 0 {
		// Find the lowest non-empty bucket entry whose recorded degree is
		// still current (lazy entries are skipped).
		var v int32 = -1
		for cursor <= maxDeg {
			b := buckets[cursor]
			if len(b) == 0 {
				cursor++
				continue
			}
			cand := b[len(b)-1]
			buckets[cursor] = b[:len(b)-1]
			if !removed[cand] && deg[cand] == cursor {
				v = cand
				break
			}
		}
		if v < 0 {
			break // only lazy entries left; cannot happen with consistent state
		}
		out = append(out, v)
		removed[v] = true
		remaining--
		// Delete N(v); decrement degrees of their still-present neighbours.
		g.ForEachNeighbor(v, func(u int32) bool {
			if removed[u] {
				return true
			}
			removed[u] = true
			remaining--
			g.ForEachNeighbor(u, func(w int32) bool {
				if !removed[w] {
					deg[w]--
					buckets[deg[w]] = append(buckets[deg[w]], w)
					if deg[w] < cursor {
						cursor = deg[w]
					}
				}
				return true
			})
			return true
		})
	}
	sortNodes(out)
	return out
}

// GreedyOrder scans vertices in the given order and adds each vertex whose
// neighbours have not been added yet — exactly the locality-1 SLOCAL
// algorithm for MIS described in the paper's introduction. The order must
// be a permutation of 0..n-1; violations are reported via error.
func GreedyOrder(g *graph.Graph, order []int32) ([]int32, error) {
	return greedyOrderAuto(nil, g, order)
}

// greedyOrderAuto validates the order and scans it with the dense kernel
// when the graph clears the density cutoff (or a pack was injected), the
// CSR walk otherwise. Both paths produce the identical set for any order.
func greedyOrderAuto(injected *Dense, g *graph.Graph, order []int32) ([]int32, error) {
	if err := validateOrder(g, order); err != nil {
		return nil, err
	}
	if d := denseFor(injected, g); d != nil {
		return greedyOrderDense(d, order), nil
	}
	return greedyOrderList(g, order), nil
}

// greedyOrderList is the CSR-walking order scan; callers have validated
// the order.
func greedyOrderList(g *graph.Graph, order []int32) []int32 {
	inSet := make([]bool, g.N())
	var out []int32
	for _, v := range order {
		blocked := false
		g.ForEachNeighbor(v, func(u int32) bool {
			if inSet[u] {
				blocked = true
				return false
			}
			return true
		})
		if !blocked {
			inSet[v] = true
			out = append(out, v)
		}
	}
	sortNodes(out)
	return out
}

// validateOrder checks that order is a permutation of 0..n-1.
func validateOrder(g *graph.Graph, order []int32) error {
	n := g.N()
	if len(order) != n {
		return fmt.Errorf("maxis: order length %d, graph has %d nodes", len(order), n)
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || int(v) >= n || seen[v] {
			return fmt.Errorf("maxis: order is not a permutation (offender %d)", v)
		}
		seen[v] = true
	}
	return nil
}

// GreedyRandomOrder runs GreedyOrder on a uniformly random permutation.
func GreedyRandomOrder(g *graph.Graph, rng *rand.Rand) []int32 {
	order := make([]int32, g.N())
	for i, p := range rng.Perm(g.N()) {
		order[i] = int32(p)
	}
	out, err := GreedyOrder(g, order)
	if err != nil {
		// A permutation from rng.Perm is always valid; reaching this is a
		// programming bug, not an input error.
		panic(err)
	}
	return out
}

// MinDegreeOracle adapts GreedyMinDegree to the Oracle interface.
type MinDegreeOracle struct{}

// Name implements Oracle.
func (MinDegreeOracle) Name() string { return "greedy-mindeg" }

// Solve implements Oracle. Weighted instances route to the weighted
// greedy (descending weight/(deg+1) order); unweighted ones keep the
// adaptive bucket-queue greedy unchanged.
func (MinDegreeOracle) Solve(g *graph.Graph) ([]int32, error) {
	if g.Weighted() {
		return GreedyWeighted(g), nil
	}
	return GreedyMinDegree(g), nil
}

// RandomOrderOracle adapts GreedyRandomOrder to the Oracle interface with a
// deterministic per-call seed sequence.
type RandomOrderOracle struct {
	// Seed initialises the oracle's private random stream.
	Seed  int64
	rng   *rand.Rand
	dense *Dense
}

// Name implements Oracle.
func (o *RandomOrderOracle) Name() string { return "greedy-random" }

// SetDense implements DenseSetter.
func (o *RandomOrderOracle) SetDense(d *Dense) { o.dense = d }

// Solve implements Oracle. On weighted instances the random permutation
// only breaks weight/(deg+1) ratio ties, so the scan still follows the
// weighted Caro–Wei order.
func (o *RandomOrderOracle) Solve(g *graph.Graph) ([]int32, error) {
	if o.rng == nil {
		o.rng = rand.New(rand.NewSource(o.Seed))
	}
	if g.Weighted() {
		pos := make([]int32, g.N())
		for i, p := range o.rng.Perm(g.N()) {
			pos[p] = int32(i)
		}
		return greedyOrderAuto(o.dense, g, weightedRatioOrder(g, pos))
	}
	order := make([]int32, g.N())
	for i, p := range o.rng.Perm(g.N()) {
		order[i] = int32(p)
	}
	return greedyOrderAuto(o.dense, g, order)
}

// FirstFitOracle runs GreedyOrder on the identity permutation; it is the
// weakest reasonable oracle and a useful adversarial baseline.
type FirstFitOracle struct {
	dense *Dense
}

// Name implements Oracle.
func (FirstFitOracle) Name() string { return "greedy-firstfit" }

// SetDense implements DenseSetter.
func (o *FirstFitOracle) SetDense(d *Dense) { o.dense = d }

// Solve implements Oracle. Weighted instances scan in the weighted
// Caro–Wei order instead of the identity permutation — first-fit over an
// arbitrary order forfeits the weighted guarantee entirely.
func (o FirstFitOracle) Solve(g *graph.Graph) ([]int32, error) {
	if g.Weighted() {
		return greedyWeightedAuto(o.dense, g), nil
	}
	order := make([]int32, g.N())
	for i := range order {
		order[i] = int32(i)
	}
	return greedyOrderAuto(o.dense, g, order)
}

// MinDegreeBitsetOracle adapts the dense min-degree kernel to the Oracle
// interface; it is registered as "greedy-mindeg-bitset". Its selection
// tie-break (smallest id among minimum-residual-degree vertices) differs
// from MinDegreeOracle's bucket queue, so the two are distinct registry
// members rather than one auto-routing oracle — both meet the Caro–Wei
// bound, and racing them in a portfolio is free diversity.
type MinDegreeBitsetOracle struct {
	dense *Dense
}

// Name implements Oracle.
func (MinDegreeBitsetOracle) Name() string { return "greedy-mindeg-bitset" }

// SetDense implements DenseSetter.
func (o *MinDegreeBitsetOracle) SetDense(d *Dense) { o.dense = d }

// Solve implements Oracle. Weighted instances route to the weighted
// greedy on the packed adjacency.
func (o MinDegreeBitsetOracle) Solve(g *graph.Graph) ([]int32, error) {
	if g.Weighted() {
		return greedyWeightedAuto(o.dense, g), nil
	}
	return greedyMinDegreeAuto(o.dense, g), nil
}

// ExactOracle adapts the exact solver to the Oracle interface (λ = 1).
type ExactOracle struct {
	// Options forwards solver options, e.g. a clique hint or budget.
	Options ExactOptions
	dense   *Dense
}

// Name implements Oracle.
func (ExactOracle) Name() string { return "exact" }

// SetDense implements DenseSetter.
func (o *ExactOracle) SetDense(d *Dense) { o.dense = d }

// Solve implements Oracle.
func (o ExactOracle) Solve(g *graph.Graph) ([]int32, error) {
	opts := o.Options
	if opts.Dense == nil {
		opts.Dense = o.dense
	}
	return ExactOpts(g, opts)
}

// SolveContext implements ContextSolver: the branch-and-bound polls ctx
// and returns its error (with the best set so far) soon after
// cancellation. An explicit Options.Ctx wins over ctx.
func (o ExactOracle) SolveContext(ctx context.Context, g *graph.Graph) ([]int32, error) {
	opts := o.Options
	if opts.Ctx == nil {
		opts.Ctx = ctx
	}
	if opts.Dense == nil {
		opts.Dense = o.dense
	}
	return ExactOpts(g, opts)
}

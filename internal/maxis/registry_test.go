package maxis

import (
	"testing"

	"pslocal/internal/graph"
)

func TestRegistryBuiltins(t *testing.T) {
	want := []string{"clique-removal", "exact", "greedy-firstfit", "greedy-mindeg", "greedy-random"}
	names := Names()
	got := map[string]bool{}
	for _, n := range names {
		got[n] = true
	}
	for _, n := range want {
		if !got[n] {
			t.Errorf("built-in %q missing from Names() = %v", n, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not strictly sorted: %v", names)
		}
	}
}

func TestLookupReturnsWorkingOracles(t *testing.T) {
	g := graph.Cycle(7)
	for _, name := range Names() {
		o, err := Lookup(name, 42)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if o.Name() == "" {
			t.Errorf("oracle %q has empty Name()", name)
		}
		set, err := o.Solve(g)
		if err != nil {
			t.Fatalf("oracle %q Solve: %v", name, err)
		}
		if !IsIndependentSet(g, set) {
			t.Errorf("oracle %q returned a dependent set %v", name, set)
		}
		if len(set) == 0 {
			t.Errorf("oracle %q returned an empty set on C7", name)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("no-such-oracle", 0); err == nil {
		t.Error("Lookup of unknown name succeeded")
	}
}

func TestRegisterRejectsDuplicatesAndEmpty(t *testing.T) {
	if err := Register("", func(int64) Oracle { return FirstFitOracle{} }); err == nil {
		t.Error("Register with empty name succeeded")
	}
	if err := Register("exact", func(int64) Oracle { return ExactOracle{} }); err == nil {
		t.Error("duplicate Register succeeded")
	}
	if err := Register("test-only-oracle", nil); err == nil {
		t.Error("Register with nil factory succeeded")
	}
	if err := Register("test-only-oracle", func(int64) Oracle { return FirstFitOracle{} }); err != nil {
		t.Errorf("fresh Register failed: %v", err)
	}
	o, err := Lookup("test-only-oracle", 0)
	if err != nil || o.Name() != "greedy-firstfit" {
		t.Errorf("Lookup of fresh registration: %v, %v", o, err)
	}
}

package maxis

import (
	"errors"
	"testing"

	"pslocal/internal/graph"
)

func TestRegistryBuiltins(t *testing.T) {
	want := []string{"bipartite-exact", "clique-removal", "exact", "greedy-firstfit",
		"greedy-mindeg", "greedy-mindeg-bitset", "greedy-random"}
	names := Names()
	got := map[string]bool{}
	for _, n := range names {
		got[n] = true
	}
	for _, n := range want {
		if !got[n] {
			t.Errorf("built-in %q missing from Names() = %v", n, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not strictly sorted: %v", names)
		}
	}
}

func TestLookupReturnsWorkingOracles(t *testing.T) {
	g := graph.Cycle(7)
	for _, name := range Names() {
		o, err := Lookup(name, 42)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if o.Name() == "" {
			t.Errorf("oracle %q has empty Name()", name)
		}
		set, err := o.Solve(g)
		if errors.Is(err, ErrInapplicable) {
			// Conditional oracles (bipartite-exact on the odd cycle C7) may
			// decline the instance; that is their contract, not a failure.
			continue
		}
		if err != nil {
			t.Fatalf("oracle %q Solve: %v", name, err)
		}
		if !IsIndependentSet(g, set) {
			t.Errorf("oracle %q returned a dependent set %v", name, set)
		}
		if len(set) == 0 {
			t.Errorf("oracle %q returned an empty set on C7", name)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("no-such-oracle", 0); err == nil {
		t.Error("Lookup of unknown name succeeded")
	}
}

func TestLookupPortfolioNames(t *testing.T) {
	o, err := Lookup("portfolio:greedy-mindeg, greedy-random ,clique-removal", 9)
	if err != nil {
		t.Fatalf("portfolio lookup: %v", err)
	}
	p, ok := o.(*Portfolio)
	if !ok {
		t.Fatalf("portfolio lookup returned %T", o)
	}
	if got, want := p.Name(), "portfolio:greedy-mindeg,greedy-random,clique-removal"; got != want {
		t.Errorf("Name = %q, want %q", got, want)
	}
	if len(p.Members()) != 3 {
		t.Errorf("members = %d, want 3", len(p.Members()))
	}
	set, err := o.Solve(graph.Cycle(7))
	if err != nil {
		t.Fatalf("portfolio Solve: %v", err)
	}
	if !IsIndependentSet(graph.Cycle(7), set) || len(set) != 3 {
		t.Errorf("portfolio on C7 returned %v, want a maximum IS of size 3", set)
	}
}

func TestLookupPortfolioRejectsBadSpecs(t *testing.T) {
	for _, name := range []string{
		"portfolio:",                        // no members
		"portfolio:greedy-mindeg,,exact",    // empty member
		"portfolio:no-such-oracle",          // unknown member
		"portfolio:portfolio:greedy-mindeg", // nesting
	} {
		if _, err := Lookup(name, 0); err == nil {
			t.Errorf("Lookup(%q) succeeded, want error", name)
		}
	}
}

func TestRegisterRejectsPortfolioCollisions(t *testing.T) {
	f := func(int64) Oracle { return FirstFitOracle{} }
	if err := Register("portfolio:sneaky", f); err == nil {
		t.Error("Register with portfolio: prefix succeeded")
	}
	if err := Register("a,b", f); err == nil {
		t.Error("Register with comma succeeded")
	}
}

func TestRegisterRejectsDuplicatesAndEmpty(t *testing.T) {
	if err := Register("", func(int64) Oracle { return FirstFitOracle{} }); err == nil {
		t.Error("Register with empty name succeeded")
	}
	if err := Register("exact", func(int64) Oracle { return ExactOracle{} }); err == nil {
		t.Error("duplicate Register succeeded")
	}
	if err := Register("test-only-oracle", nil); err == nil {
		t.Error("Register with nil factory succeeded")
	}
	if err := Register("test-only-oracle", func(int64) Oracle { return FirstFitOracle{} }); err != nil {
		t.Errorf("fresh Register failed: %v", err)
	}
	o, err := Lookup("test-only-oracle", 0)
	if err != nil || o.Name() != "greedy-firstfit" {
		t.Errorf("Lookup of fresh registration: %v, %v", o, err)
	}
}

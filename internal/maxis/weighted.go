package maxis

// weighted.go implements the vertex-weighted MaxIS objective across the
// oracle suite. Weights arrive on the graph itself (graph.Weighted());
// there is no weighted "mode" — every oracle branches on the instance, and
// unweighted instances take exactly the pre-weights code paths, so the
// nil-weights contract of internal/graph/weights.go holds end to end.
//
// The weighted greedy replaces the degree orderings with one static order
// by descending weight/(degree+1) — the weighted Caro–Wei order, which
// guarantees Σ_v w(v)/(deg(v)+1) in total weight by the same argument as
// the unweighted bound. Comparisons use the integer cross-product
// w(u)·(deg(v)+1) vs w(v)·(deg(u)+1); with weights capped at
// graph.MaxWeight both sides stay below 2^62, so the order needs no
// floating point and no overflow checks.

import (
	"fmt"
	"sort"

	"pslocal/internal/graph"
)

// SetWeight returns the total weight of nodes under g's vertex weights:
// Σ_v w(v), which equals len(nodes) on unweighted graphs. It never
// allocates, so weight reporting rides the zero-allocation serve path.
func SetWeight(g *graph.Graph, nodes []int32) int64 {
	if !g.Weighted() {
		return int64(len(nodes))
	}
	total := int64(0)
	for _, v := range nodes {
		total += g.Weight(v)
	}
	return total
}

// VerifyWeighted asserts that nodes is an independent set of g whose total
// weight equals reported — the invariant every weight-aware oracle result
// must satisfy. It returns nil when both hold; tests use it as the single
// checker for weighted solver output.
func VerifyWeighted(g *graph.Graph, nodes []int32, reported int64) error {
	if !IsIndependentSet(g, nodes) {
		return fmt.Errorf("maxis: set of %d nodes is not independent", len(nodes))
	}
	if w := SetWeight(g, nodes); w != reported {
		return fmt.Errorf("maxis: set weight %d, reported %d", w, reported)
	}
	return nil
}

// GreedyWeighted runs the weighted greedy: scan vertices in descending
// weight/(degree+1) order (ties to the smaller id) and keep each vertex
// none of whose neighbours was kept. The resulting independent set has
// total weight at least the weighted Caro–Wei bound Σ w(v)/(deg(v)+1).
// Dense graphs use the packed bitset scan.
func GreedyWeighted(g *graph.Graph) []int32 {
	return greedyWeightedAuto(nil, g)
}

// greedyWeightedAuto is GreedyWeighted with an optionally injected packed
// adjacency (instance caches inject via DenseSetter oracles).
func greedyWeightedAuto(injected *Dense, g *graph.Graph) []int32 {
	order := weightedRatioOrder(g, nil)
	if d := denseFor(injected, g); d != nil {
		return greedyOrderDense(d, order)
	}
	return greedyOrderList(g, order)
}

// weightedRatioOrder returns the vertices sorted by descending
// weight/(deg+1). Ties break by ascending tie[v] when tie is non-nil
// (greedy-random passes its permutation positions), ascending id
// otherwise, so the order — and with it every weighted greedy result —
// is deterministic.
func weightedRatioOrder(g *graph.Graph, tie []int32) []int32 {
	n := g.N()
	order := make([]int32, n)
	w := g.AppendWeights(make([]int64, 0, n))
	deg := make([]int64, n)
	for v := 0; v < n; v++ {
		order[v] = int32(v)
		deg[v] = int64(g.Degree(int32(v))) + 1
	}
	sort.Slice(order, func(a, b int) bool {
		u, v := order[a], order[b]
		lhs, rhs := w[u]*deg[v], w[v]*deg[u]
		if lhs != rhs {
			return lhs > rhs
		}
		if tie != nil && tie[u] != tie[v] {
			return tie[u] < tie[v]
		}
		return u < v
	})
	return order
}

// bitsetWeight sums w over the set bits of b.
func bitsetWeight(b bitset, w []int64) int64 {
	total := int64(0)
	b.forEach(func(v int32) bool {
		total += w[v]
		return true
	})
	return total
}

package maxis

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"pslocal/internal/engine"
	"pslocal/internal/graph"
)

// testGrid returns the randomized instance grid shared by the portfolio
// equivalence tests.
func testGrid(t *testing.T) []*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	empty, err := graph.NewBuilder(0).Build()
	if err != nil {
		t.Fatalf("empty graph: %v", err)
	}
	lone, err := graph.NewBuilder(1).Build()
	if err != nil {
		t.Fatalf("single-node graph: %v", err)
	}
	gs := []*graph.Graph{
		empty,
		lone,
		graph.Cycle(9),
		graph.Grid(4, 5),
		graph.Complete(6),
	}
	for i := 0; i < 8; i++ {
		gs = append(gs, graph.GnP(10+i*7, 0.05+0.03*float64(i), rng))
	}
	return gs
}

func TestPortfolioSingleMemberBitIdentical(t *testing.T) {
	for _, name := range []string{"greedy-mindeg", "greedy-firstfit", "greedy-random", "clique-removal"} {
		lone, err := Lookup(name, 5)
		if err != nil {
			t.Fatalf("lookup %s: %v", name, err)
		}
		port, err := Lookup("portfolio:"+name, 5)
		if err != nil {
			t.Fatalf("lookup portfolio:%s: %v", name, err)
		}
		for gi, g := range testGrid(t) {
			want, err := lone.Solve(g)
			if err != nil {
				t.Fatalf("%s solve: %v", name, err)
			}
			got, err := port.Solve(g)
			if err != nil {
				t.Fatalf("portfolio:%s solve: %v", name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("graph %d: portfolio:%s = %v, member alone = %v", gi, name, got, want)
			}
		}
	}
}

// TestPortfolioAtLeastBestMember checks the defining guarantee: on every
// instance the portfolio's set is at least as large as every member's,
// for every worker count, and still independent.
func TestPortfolioAtLeastBestMember(t *testing.T) {
	names := []string{"greedy-firstfit", "greedy-mindeg", "greedy-random", "clique-removal"}
	for _, workers := range []int{0, 1, 2, -1} {
		// Fresh instances per worker count so randomized members see the
		// same rng stream in the member runs and the portfolio runs.
		members := make([]Oracle, len(names))
		solo := make([]Oracle, len(names))
		for i, n := range names {
			var err error
			if members[i], err = Lookup(n, 5+int64(i)); err != nil {
				t.Fatalf("lookup: %v", err)
			}
			if solo[i], err = Lookup(n, 5+int64(i)); err != nil {
				t.Fatalf("lookup: %v", err)
			}
		}
		p, err := NewPortfolio(members...)
		if err != nil {
			t.Fatalf("NewPortfolio: %v", err)
		}
		p.SetEngine(engine.Options{Workers: workers})
		for gi, g := range testGrid(t) {
			got, err := p.Solve(g)
			if err != nil {
				t.Fatalf("workers=%d graph %d: %v", workers, gi, err)
			}
			if !IsIndependentSet(g, got) {
				t.Fatalf("workers=%d graph %d: portfolio set %v not independent", workers, gi, got)
			}
			for i, s := range solo {
				set, err := s.Solve(g)
				if err != nil {
					t.Fatalf("member %s: %v", names[i], err)
				}
				if len(got) < len(set) {
					t.Errorf("workers=%d graph %d: portfolio |I|=%d < member %s |I|=%d",
						workers, gi, len(got), names[i], len(set))
				}
			}
		}
	}
}

func TestPortfolioDeterministicAcrossWorkerCounts(t *testing.T) {
	build := func() Oracle {
		o, err := Lookup("portfolio:greedy-mindeg,greedy-firstfit,clique-removal", 3)
		if err != nil {
			t.Fatalf("lookup: %v", err)
		}
		return o
	}
	for gi, g := range testGrid(t) {
		var want []int32
		for _, workers := range []int{1, 2, 3, -1} {
			o := build()
			o.(*Portfolio).SetEngine(engine.Options{Workers: workers})
			got, err := o.Solve(g)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if workers == 1 {
				want = got
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("graph %d workers=%d: %v, serial gave %v", gi, workers, got, want)
			}
		}
	}
}

type failingOracle struct{ err error }

func (f failingOracle) Name() string                        { return "failing" }
func (f failingOracle) Solve(*graph.Graph) ([]int32, error) { return nil, f.err }

func TestPortfolioPropagatesMemberError(t *testing.T) {
	boom := errors.New("boom")
	p, err := NewPortfolio(MinDegreeOracle{}, failingOracle{err: boom})
	if err != nil {
		t.Fatalf("NewPortfolio: %v", err)
	}
	for _, workers := range []int{1, 2} {
		p.SetEngine(engine.Options{Workers: workers})
		if _, err := p.Solve(graph.Cycle(5)); !errors.Is(err, boom) {
			t.Errorf("workers=%d: err = %v, want boom", workers, err)
		}
	}
}

func TestPortfolioCancellation(t *testing.T) {
	p, err := NewPortfolio(MinDegreeOracle{}, FirstFitOracle{})
	if err != nil {
		t.Fatalf("NewPortfolio: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p.SetEngine(engine.Options{Workers: 2, Ctx: ctx})
	if _, err := p.Solve(graph.Cycle(5)); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestPortfolioName(t *testing.T) {
	p, err := NewPortfolio(MinDegreeOracle{}, FirstFitOracle{})
	if err != nil {
		t.Fatalf("NewPortfolio: %v", err)
	}
	if got, want := p.Name(), "portfolio:greedy-mindeg,greedy-firstfit"; got != want {
		t.Errorf("Name = %q, want %q", got, want)
	}
}

func TestNewPortfolioValidation(t *testing.T) {
	if _, err := NewPortfolio(); err == nil {
		t.Error("empty portfolio accepted")
	}
	if _, err := NewPortfolio(MinDegreeOracle{}, nil); err == nil {
		t.Error("nil member accepted")
	}
}

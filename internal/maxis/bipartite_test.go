package maxis

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"pslocal/internal/graph"
)

// randomBipartite builds a random bipartite graph: vertices with even ids
// on the left, odd on the right, random left–right edges.
func randomBipartite(n int, p float64, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if (u+v)%2 == 1 && rng.Float64() < p {
				b.AddEdge(int32(u), int32(v))
			}
		}
	}
	return b.MustBuild()
}

func TestBipartiteExactOddCycle(t *testing.T) {
	for _, n := range []int{3, 5, 7, 21} {
		_, err := BipartiteExact(graph.Cycle(n))
		if !errors.Is(err, ErrNotBipartite) {
			t.Errorf("C%d: err = %v, want ErrNotBipartite", n, err)
		}
		if !errors.Is(err, ErrInapplicable) {
			t.Errorf("C%d: ErrNotBipartite must wrap ErrInapplicable", n)
		}
	}
}

func TestBipartiteExactEvenCyclesAndPaths(t *testing.T) {
	for _, n := range []int{2, 4, 6, 30} {
		g := graph.Cycle(n)
		set, err := BipartiteExact(g)
		if err != nil {
			t.Fatalf("C%d: %v", n, err)
		}
		if !IsIndependentSet(g, set) || len(set) != n/2 {
			t.Errorf("C%d: got %d, want α = %d (set %v)", n, len(set), n/2, set)
		}
	}
	// Path P5: 0-1-2-3-4, α = 3.
	b := graph.NewBuilder(5)
	for i := int32(0); i < 4; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.MustBuild()
	set, err := BipartiteExact(g)
	if err != nil {
		t.Fatal(err)
	}
	if !IsIndependentSet(g, set) || len(set) != 3 {
		t.Errorf("P5: got %v, want a maximum IS of size 3", set)
	}
}

func TestBipartiteExactCompleteBipartite(t *testing.T) {
	// K_{3,5}: left = 0..2, right = 3..7, α = 5 (the larger side).
	b := graph.NewBuilder(8)
	for l := int32(0); l < 3; l++ {
		for r := int32(3); r < 8; r++ {
			b.AddEdge(l, r)
		}
	}
	g := b.MustBuild()
	set, err := BipartiteExact(g)
	if err != nil {
		t.Fatal(err)
	}
	if !IsIndependentSet(g, set) || len(set) != 5 {
		t.Errorf("K_{3,5}: got %v, want the size-5 side", set)
	}
}

// TestBipartiteExactMixedComponents covers a graph whose components are a
// path, an even cycle, and isolated vertices — α adds up per component.
func TestBipartiteExactMixedComponents(t *testing.T) {
	// 0-1-2 (path, α=2) | 3-4-5-6-3 (C4, α=2) | 7, 8 isolated (α=2).
	b := graph.NewBuilder(9)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	b.AddEdge(6, 3)
	g := b.MustBuild()
	set, err := BipartiteExact(g)
	if err != nil {
		t.Fatal(err)
	}
	if !IsIndependentSet(g, set) || len(set) != 6 {
		t.Errorf("mixed components: got %d (%v), want 6", len(set), set)
	}
	// One odd-cycle component poisons the whole instance.
	b2 := graph.NewBuilder(8)
	b2.AddEdge(0, 1)
	b2.AddEdge(5, 6)
	b2.AddEdge(6, 7)
	b2.AddEdge(7, 5) // triangle
	if _, err := BipartiteExact(b2.MustBuild()); !errors.Is(err, ErrInapplicable) {
		t.Errorf("triangle component: err = %v, want ErrInapplicable", err)
	}
}

// TestBipartiteExactMatchesExact pins König against branch-and-bound on
// random bipartite graphs: same α, and the output verifies.
func TestBipartiteExactMatchesExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomBipartite(n, 0.05+0.4*rng.Float64(), rng)
		set, err := BipartiteExact(g)
		if err != nil {
			return false
		}
		exact, err := Exact(g)
		if err != nil {
			return false
		}
		return IsIndependentSet(g, set) && len(set) == len(exact)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBipartiteExactEmpty(t *testing.T) {
	set, err := BipartiteExact(graph.NewBuilder(0).MustBuild())
	if err != nil || len(set) != 0 {
		t.Errorf("empty graph: set %v, err %v", set, err)
	}
}

// TestPortfolioDropsInapplicableMembers is the racer contract: a member
// declining via ErrInapplicable silently leaves the race, any other error
// still aborts, and a race with no survivors is an error.
func TestPortfolioDropsInapplicableMembers(t *testing.T) {
	odd := graph.Cycle(7)
	p, err := NewPortfolio(BipartiteOracle{}, MinDegreeOracle{})
	if err != nil {
		t.Fatal(err)
	}
	set, err := p.Solve(odd)
	if err != nil {
		t.Fatalf("portfolio with one inapplicable member: %v", err)
	}
	if !IsIndependentSet(odd, set) || len(set) == 0 {
		t.Errorf("portfolio on C7 returned %v", set)
	}
	// On a bipartite instance the exact member must win the race outright.
	even := graph.Cycle(8)
	set, err = p.Solve(even)
	if err != nil {
		t.Fatalf("portfolio on C8: %v", err)
	}
	if len(set) != 4 {
		t.Errorf("portfolio on C8 returned size %d, want the exact member's 4", len(set))
	}
	// Every member inapplicable -> error.
	all, err := NewPortfolio(BipartiteOracle{}, BipartiteOracle{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := all.Solve(odd); err == nil {
		t.Error("all-dropped portfolio succeeded, want error")
	}
}

package maxis

// registry.go implements the named oracle registry (DESIGN.md, "Execution
// engine"): solvers self-register under stable string names so commands,
// experiments and future multi-backend deployments select oracles by
// configuration instead of compile-time wiring.

import (
	"fmt"
	"sort"
	"sync"
)

// Factory constructs an Oracle. Deterministic oracles ignore seed;
// randomized oracles use it to initialise their private stream.
type Factory func(seed int64) Oracle

var registry = struct {
	sync.RWMutex
	factories map[string]Factory
}{factories: make(map[string]Factory)}

// Register adds a named oracle factory. Empty names and duplicate
// registrations are errors.
func Register(name string, f Factory) error {
	if name == "" {
		return fmt.Errorf("maxis: Register with empty oracle name")
	}
	if f == nil {
		return fmt.Errorf("maxis: Register(%q) with nil factory", name)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.factories[name]; dup {
		return fmt.Errorf("maxis: oracle %q registered twice", name)
	}
	registry.factories[name] = f
	return nil
}

// MustRegister is Register for init-time wiring; it panics on error.
func MustRegister(name string, f Factory) {
	if err := Register(name, f); err != nil {
		panic(err)
	}
}

// Lookup constructs the named oracle, passing seed to its factory. Unknown
// names report the registered alternatives.
func Lookup(name string, seed int64) (Oracle, error) {
	registry.RLock()
	f, ok := registry.factories[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("maxis: unknown oracle %q (registered: %v)", name, Names())
	}
	return f(seed), nil
}

// Names returns the registered oracle names in ascending order.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.factories))
	for name := range registry.factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// The built-in suite registers under the Name() strings of its oracles.
func init() {
	MustRegister("exact", func(int64) Oracle { return ExactOracle{} })
	MustRegister("greedy-mindeg", func(int64) Oracle { return MinDegreeOracle{} })
	MustRegister("greedy-firstfit", func(int64) Oracle { return FirstFitOracle{} })
	MustRegister("greedy-random", func(seed int64) Oracle { return &RandomOrderOracle{Seed: seed} })
	MustRegister("clique-removal", func(int64) Oracle { return CliqueRemovalOracle{} })
}

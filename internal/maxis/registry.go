package maxis

// registry.go implements the named oracle registry (DESIGN.md, "Execution
// engine"): solvers self-register under stable string names so commands,
// experiments and future multi-backend deployments select oracles by
// configuration instead of compile-time wiring.

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ErrUnknownOracle reports a Lookup name with no registered factory;
// callers branch on it with errors.Is instead of matching the message
// (cmd/cfserve maps it to HTTP 400).
var ErrUnknownOracle = errors.New("maxis: unknown oracle")

// portfolioPrefix introduces composite oracle names: "portfolio:<a>,<b>"
// resolves to a Portfolio racing the named members.
const portfolioPrefix = "portfolio:"

// Factory constructs an Oracle. Deterministic oracles ignore seed;
// randomized oracles use it to initialise their private stream.
type Factory func(seed int64) Oracle

var registry = struct {
	sync.RWMutex
	factories map[string]Factory
}{factories: make(map[string]Factory)}

// Register adds a named oracle factory. Empty names, duplicate
// registrations, and names that collide with the portfolio syntax
// (a "portfolio:" prefix or a comma) are errors.
func Register(name string, f Factory) error {
	if name == "" {
		return fmt.Errorf("maxis: Register with empty oracle name")
	}
	if strings.HasPrefix(name, portfolioPrefix) || strings.Contains(name, ",") {
		return fmt.Errorf("maxis: oracle name %q collides with the portfolio syntax", name)
	}
	if f == nil {
		return fmt.Errorf("maxis: Register(%q) with nil factory", name)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.factories[name]; dup {
		return fmt.Errorf("maxis: oracle %q registered twice", name)
	}
	registry.factories[name] = f
	return nil
}

// MustRegister is Register for init-time wiring; it panics on error.
func MustRegister(name string, f Factory) {
	if err := Register(name, f); err != nil {
		panic(err)
	}
}

// Lookup constructs the named oracle, passing seed to its factory. Names
// of the form "portfolio:<a>,<b>,..." resolve to a Portfolio over the
// named members, member i seeded seed+i so identically-named randomized
// members decorrelate (member 0 keeps seed, so a single-member portfolio
// is bit-identical to that member). Unknown names report the registered
// alternatives.
func Lookup(name string, seed int64) (Oracle, error) {
	if strings.HasPrefix(name, portfolioPrefix) {
		return lookupPortfolio(name, seed)
	}
	registry.RLock()
	f, ok := registry.factories[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (registered: %v)", ErrUnknownOracle, name, Names())
	}
	return f(seed), nil
}

// lookupPortfolio resolves a "portfolio:<a>,<b>,..." name. Portfolios do
// not nest.
func lookupPortfolio(name string, seed int64) (Oracle, error) {
	spec := strings.TrimPrefix(name, portfolioPrefix)
	parts := strings.Split(spec, ",")
	members := make([]Oracle, 0, len(parts))
	for i, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("maxis: portfolio %q has an empty member", name)
		}
		if strings.HasPrefix(part, portfolioPrefix) {
			return nil, fmt.Errorf("maxis: portfolios do not nest (%q)", name)
		}
		o, err := Lookup(part, seed+int64(i))
		if err != nil {
			return nil, err
		}
		members = append(members, o)
	}
	return NewPortfolio(members...)
}

// Names returns the registered oracle names in ascending order.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.factories))
	for name := range registry.factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// The built-in suite registers under the Name() strings of its oracles.
// Factories construct pointers so owners can inject a cached packed
// adjacency through the DenseSetter interface where the oracle supports
// it; the zero values stay valid oracles for direct literal use.
func init() {
	MustRegister("exact", func(int64) Oracle { return &ExactOracle{} })
	MustRegister("greedy-mindeg", func(int64) Oracle { return MinDegreeOracle{} })
	MustRegister("greedy-mindeg-bitset", func(int64) Oracle { return &MinDegreeBitsetOracle{} })
	MustRegister("greedy-firstfit", func(int64) Oracle { return &FirstFitOracle{} })
	MustRegister("greedy-random", func(seed int64) Oracle { return &RandomOrderOracle{Seed: seed} })
	MustRegister("clique-removal", func(int64) Oracle { return CliqueRemovalOracle{} })
	MustRegister("bipartite-exact", func(int64) Oracle { return BipartiteOracle{} })
}

package maxis

// dense.go packs a conflict graph into word-parallel bitset rows — one
// contiguous uint64 backing array, row v occupying words [v·w, (v+1)·w) —
// so the hot oracle inner loops (greedy neighbour exclusion, exact
// candidate pruning) run as AND-NOT/popcount sweeps over 64 vertices per
// word instead of walking []int32 adjacency lists vertex by vertex.
//
// Packing is gated by a density cutoff: a row sweep costs O(n/64) words
// regardless of degree, so on sparse rows the CSR walk wins and the
// kernels fall back to it (NewDense returns nil and the oracles keep
// their list paths). Owners that cache parsed instances (internal/solver)
// build the Dense form once per instance and inject it into oracles
// through DenseSetter, so repeated solves on a hot instance skip packing
// entirely. DESIGN.md ("Bitset kernels") records the layout and cutoff.

import (
	"sync"

	"pslocal/internal/graph"
)

// denseRatio is the density cutoff: rows are packed only when
// 2m·denseRatio ≥ n², i.e. the average degree is at least n/denseRatio.
// Below that the CSR walk touches fewer words than the packed sweep and
// sparse instances would regress.
const denseRatio = 16

// maxDenseWords caps the packed form's footprint (words, 8 bytes each) so
// a huge instance cannot balloon into an O(n²/8)-byte allocation: 1<<24
// words is 128 MiB, reached around n ≈ 32k.
const maxDenseWords = 1 << 24

// denseGraph is the packed adjacency: n rows of `words` uint64 each in
// one contiguous backing slice.
type denseGraph struct {
	n     int
	words int
	bits  bitset
}

// row returns v's adjacency as a bitset view into the backing array.
func (d *denseGraph) row(v int32) bitset {
	w := int(v) * d.words
	return d.bits[w : w+d.words : w+d.words]
}

// packDense builds the packed form from the CSR unconditionally.
func packDense(g *graph.Graph) *denseGraph {
	n := g.N()
	words := (n + 63) / 64
	d := &denseGraph{n: n, words: words, bits: make(bitset, n*words)}
	for v := 0; v < n; v++ {
		row := d.bits[v*words : (v+1)*words]
		g.ForEachNeighbor(int32(v), func(u int32) bool {
			row[u>>6] |= 1 << (uint(u) & 63)
			return true
		})
	}
	return d
}

// denseEligible reports whether g clears the density cutoff and the
// memory cap; the kernels use the CSR walk otherwise.
func denseEligible(g *graph.Graph) bool {
	n := g.N()
	if n < 2 {
		return false
	}
	words := (n + 63) / 64
	if n*words > maxDenseWords {
		return false
	}
	return 2*g.M()*denseRatio >= n*n
}

// Dense is the cacheable handle to a graph's packed adjacency. Owners
// with an instance cache (internal/solver) build it once per parsed graph
// via NewDense and hand it to oracles through DenseSetter; oracles
// without an injected Dense pack eligible graphs themselves, once per
// Solve.
type Dense struct {
	dg *denseGraph
}

// NewDense packs g, or returns nil when g fails the density cutoff (the
// oracles then keep their CSR paths). A nil return is not an error: it is
// the cutoff saying the list walk is the faster kernel for this graph.
func NewDense(g *graph.Graph) *Dense {
	if !denseEligible(g) {
		return nil
	}
	return &Dense{dg: packDense(g)}
}

// DenseSetter is implemented by oracles whose Solve can run on a
// pre-packed adjacency. Solver.MaxISReader injects the instance-cached
// Dense so cache-hit requests skip packing; SetDense(nil) is a no-op.
type DenseSetter interface {
	// SetDense installs the packed adjacency used by the next Solve. The
	// Dense must describe the same graph Solve receives.
	SetDense(*Dense)
}

// denseFor resolves the packed form for one Solve: the injected handle
// when present, a fresh pack when g clears the cutoff, nil otherwise.
func denseFor(injected *Dense, g *graph.Graph) *denseGraph {
	if injected != nil && injected.dg != nil && injected.dg.n == g.N() {
		return injected.dg
	}
	if !denseEligible(g) {
		return nil
	}
	return packDense(g)
}

// kernelScratch holds the per-solve bitset state of the dense kernels;
// pooled so steady-state solves allocate nothing.
type kernelScratch struct {
	a, b, c bitset
	deg     []int32
	out     []int32
}

var kernelPool = sync.Pool{New: func() any { return new(kernelScratch) }}

// grab returns pooled scratch with the three bitsets sized to `words`
// zeroed words and deg sized to n zeroed entries.
func grabKernelScratch(words, n int) *kernelScratch {
	s := kernelPool.Get().(*kernelScratch)
	s.a = resizeBits(s.a, words)
	s.b = resizeBits(s.b, words)
	s.c = resizeBits(s.c, words)
	if cap(s.deg) < n {
		s.deg = make([]int32, n)
	} else {
		s.deg = s.deg[:n]
		clear(s.deg)
	}
	s.out = s.out[:0]
	return s
}

func releaseKernelScratch(s *kernelScratch) { kernelPool.Put(s) }

// resizeBits returns b with exactly n zeroed words, reallocating only
// when the capacity is insufficient.
func resizeBits(b bitset, n int) bitset {
	if cap(b) < n {
		return make(bitset, n)
	}
	b = b[:n]
	clear(b)
	return b
}

// greedyOrderDense is the word-parallel twin of the GreedyOrder scan:
// vertex v joins when its row has no bit in common with the chosen set —
// an AND sweep with first-hit early exit instead of a per-neighbour CSR
// callback. The output is identical to the list scan for any order
// (asserted by the equivalence tests).
func greedyOrderDense(d *denseGraph, order []int32) []int32 {
	s := grabKernelScratch(d.words, 0)
	inSet := s.a
	var out []int32
	for _, v := range order {
		if !intersects(d.row(v), inSet) {
			inSet.set(v)
			out = append(out, v)
		}
	}
	releaseKernelScratch(s)
	sortNodes(out)
	return out
}

// GreedyMinDegreeBitset selects a minimum-residual-degree vertex (ties to
// the smallest id), removes its closed neighbourhood with AND-NOT sweeps,
// and repeats — the Caro–Wei greedy on the packed adjacency. Ineligible
// graphs fall back to the list-based GreedyMinDegree, which meets the
// same bound.
func GreedyMinDegreeBitset(g *graph.Graph) []int32 {
	return greedyMinDegreeAuto(nil, g)
}

// greedyMinDegreeAuto routes between the dense kernel and the list
// fallback.
func greedyMinDegreeAuto(injected *Dense, g *graph.Graph) []int32 {
	d := denseFor(injected, g)
	if d == nil {
		return GreedyMinDegree(g)
	}
	return greedyMinDegreeDense(d)
}

// greedyMinDegreeDense is the packed Caro–Wei greedy. alive tracks the
// residual graph; degrees start from row popcounts and are decremented as
// closed neighbourhoods leave. Selection scans the alive bits for the
// lexicographically smallest (degree, id) pair, so the kernel is fully
// deterministic — the property tests pin it against a list-based twin
// with the same tie-break.
func greedyMinDegreeDense(d *denseGraph) []int32 {
	s := grabKernelScratch(d.words, d.n)
	alive, removed, scratch, deg := s.a, s.b, s.c, s.deg
	for v := 0; v < d.n; v++ {
		alive.set(int32(v))
		deg[v] = int32(d.row(int32(v)).count())
	}
	var out []int32
	for {
		// Smallest (residual degree, id) among alive vertices.
		best, bestDeg := int32(-1), int32(0)
		alive.forEach(func(v int32) bool {
			if best < 0 || deg[v] < bestDeg {
				best, bestDeg = v, deg[v]
			}
			return true
		})
		if best < 0 {
			break
		}
		out = append(out, best)
		// removed = ({best} ∪ N(best)) ∩ alive, then alive &^= removed.
		andInto(removed, d.row(best), alive)
		removed.set(best)
		alive.andNotInPlace(removed)
		// Vertices adjacent to a removed vertex lose that residual degree.
		removed.forEach(func(u int32) bool {
			andInto(scratch, d.row(u), alive)
			scratch.forEach(func(w int32) bool {
				deg[w]--
				return true
			})
			return true
		})
	}
	releaseKernelScratch(s)
	sortNodes(out)
	return out
}

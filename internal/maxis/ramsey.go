package maxis

// ramsey.go implements the Ramsey-based CliqueRemoval algorithm of Boppana
// and Halldórsson ("Approximating maximum independent sets by excluding
// subgraphs", 1992): repeatedly run the Ramsey procedure, which returns a
// clique and an independent set, keep the best independent set seen, and
// remove the clique. It guarantees an O(n / log² n) approximation — the
// strongest general-graph guarantee among the heuristic oracles in this
// package — and serves as the intermediate-quality oracle between greedy
// and exact in experiment E7.

import (
	"pslocal/internal/graph"
)

// Ramsey returns a clique and an independent set of the subgraph induced by
// the active set, following the classic recursion: for a pivot v, the
// clique side recurses into N(v) and the independent side into the
// non-neighbours.
func Ramsey(g *graph.Graph, active []int32) (clique, independent []int32) {
	n := g.N()
	adj := adjacencyBitsets(g)
	act := newBitset(n)
	for _, v := range active {
		act.set(v)
	}
	c, i := ramseyRec(adj, act)
	var cs, is []int32
	c.forEach(func(v int32) bool { cs = append(cs, v); return true })
	i.forEach(func(v int32) bool { is = append(is, v); return true })
	return cs, is
}

func ramseyRec(adj []bitset, active bitset) (clique, independent bitset) {
	v := active.first()
	if v < 0 {
		return newBitset(len(active) * 64), newBitset(len(active) * 64)
	}
	nbrs := active.clone()
	for i := range nbrs {
		nbrs[i] &= adj[v][i]
	}
	nonNbrs := active.clone()
	nonNbrs.andNotInPlace(adj[v])
	nonNbrs.clear(v)

	c1, i1 := ramseyRec(adj, nbrs)
	c2, i2 := ramseyRec(adj, nonNbrs)

	c1.set(v) // v extends the clique found among its neighbours
	i2.set(v) // v extends the independent set found among its non-neighbours

	clique = c1
	if c2.count() > c1.count() {
		clique = c2
	}
	independent = i1
	if i2.count() > i1.count() {
		independent = i2
	}
	return clique, independent
}

// CliqueRemoval runs the Boppana–Halldórsson outer loop and returns the
// best independent set any Ramsey call produced — heaviest total weight
// on weighted instances, largest otherwise. The Ramsey recursion itself
// stays cardinality-driven either way; only the keeper compares weights.
func CliqueRemoval(g *graph.Graph) []int32 {
	n := g.N()
	adj := adjacencyBitsets(g)
	var w []int64
	if g.Weighted() {
		w = g.AppendWeights(make([]int64, 0, n))
	}
	active := newBitset(n)
	for v := 0; v < n; v++ {
		active.set(int32(v))
	}
	var best bitset
	bestW := int64(-1)
	for active.any() {
		c, i := ramseyRec(adj, active)
		if w != nil {
			if iw := bitsetWeight(i, w); iw > bestW {
				best, bestW = i, iw
			}
		} else if best == nil || i.count() > best.count() {
			best = i
		}
		if !c.any() {
			break // defensive: Ramsey on a non-empty set always returns a non-empty clique
		}
		active.andNotInPlace(c)
	}
	var out []int32
	if best != nil {
		best.forEach(func(v int32) bool { out = append(out, v); return true })
	}
	return out
}

// CliqueRemovalOracle adapts CliqueRemoval to the Oracle interface.
type CliqueRemovalOracle struct{}

// Name implements Oracle.
func (CliqueRemovalOracle) Name() string { return "clique-removal" }

// Solve implements Oracle.
func (CliqueRemovalOracle) Solve(g *graph.Graph) ([]int32, error) {
	return CliqueRemoval(g), nil
}

// adjacencyBitsets converts g's adjacency to bitset rows.
func adjacencyBitsets(g *graph.Graph) []bitset {
	n := g.N()
	adj := make([]bitset, n)
	for v := 0; v < n; v++ {
		row := newBitset(n)
		g.ForEachNeighbor(int32(v), func(u int32) bool {
			row.set(u)
			return true
		})
		adj[v] = row
	}
	return adj
}

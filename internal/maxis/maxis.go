// Package maxis implements the maximum-independent-set solver suite that
// instantiates the λ-approximation oracle of Theorem 1.1: an exact
// branch-and-bound solver (λ = 1), several greedy heuristics, and the
// Ramsey-based clique-removal algorithm of Boppana and Halldórsson.
//
// All solvers consume the immutable graphs of internal/graph and return
// independent sets as ascending []int32 node lists. Vertex-weighted
// instances (graph.Weighted()) are first-class: every oracle maximises
// total set weight on them (see weighted.go), while unweighted instances
// take exactly the cardinality code paths.
package maxis

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"pslocal/internal/graph"
)

// Errors returned by solvers.
var (
	// ErrBudgetExceeded reports that the exact solver ran out of its branch
	// budget; the returned set is the best found so far (an anytime result),
	// not necessarily optimal.
	ErrBudgetExceeded = errors.New("maxis: branch budget exceeded")
	// ErrBadHint reports a CliqueHint that is not a clique partition.
	ErrBadHint = errors.New("maxis: clique hint is not a clique partition")
)

// Oracle is a maximum-independent-set approximation algorithm, the
// abstraction the Theorem 1.1 reduction is parameterised by. Solve must
// return an independent set of g (verified by callers in tests); it should
// return a non-empty set whenever g has at least one node.
type Oracle interface {
	// Name identifies the oracle in experiment tables.
	Name() string
	// Solve returns an independent set of g.
	Solve(g *graph.Graph) ([]int32, error)
}

// ContextSolver is implemented by oracles whose Solve supports cooperative
// cancellation (the exact branch-and-bound, the portfolio). OracleSolve
// prefers this interface when the caller carries a context.
type ContextSolver interface {
	// SolveContext is Solve observing ctx: a long-running search returns
	// ctx.Err() (possibly wrapped) soon after cancellation.
	SolveContext(ctx context.Context, g *graph.Graph) ([]int32, error)
}

// OracleSolve runs o on g under ctx: a ContextSolver solves with
// cooperative cancellation, any other oracle gets a cancellation check
// before it starts. A nil ctx never cancels.
func OracleSolve(ctx context.Context, o Oracle, g *graph.Graph) ([]int32, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cs, ok := o.(ContextSolver); ok {
		return cs.SolveContext(ctx, g)
	}
	return o.Solve(g)
}

// IsIndependentSet reports whether nodes is an independent set of g
// (pairwise non-adjacent, in range, duplicate-free).
func IsIndependentSet(g *graph.Graph, nodes []int32) bool {
	seen := make(map[int32]bool, len(nodes))
	for _, v := range nodes {
		if v < 0 || int(v) >= g.N() || seen[v] {
			return false
		}
		seen[v] = true
	}
	for _, v := range nodes {
		bad := false
		g.ForEachNeighbor(v, func(u int32) bool {
			if seen[u] {
				bad = true
				return false
			}
			return true
		})
		if bad {
			return false
		}
	}
	return true
}

// IsMaximalIndependentSet reports whether nodes is an inclusion-maximal
// independent set (an MIS in the paper's terminology): independent, and
// every node outside has a neighbour inside.
func IsMaximalIndependentSet(g *graph.Graph, nodes []int32) bool {
	if !IsIndependentSet(g, nodes) {
		return false
	}
	inSet := make([]bool, g.N())
	for _, v := range nodes {
		inSet[v] = true
	}
	for v := int32(0); int(v) < g.N(); v++ {
		if inSet[v] {
			continue
		}
		dominated := false
		g.ForEachNeighbor(v, func(u int32) bool {
			if inSet[u] {
				dominated = true
				return false
			}
			return true
		})
		if !dominated {
			return false
		}
	}
	return true
}

// CaroWei returns the Caro–Wei lower bound Σ_v 1/(deg(v)+1) on the
// independence number; the min-degree greedy solver always meets it.
func CaroWei(g *graph.Graph) float64 {
	total := 0.0
	for v := 0; v < g.N(); v++ {
		total += 1.0 / float64(g.Degree(int32(v))+1)
	}
	return total
}

// Ratio returns |optimal| / |approx| as the empirical approximation factor
// λ; it returns an error when approx is empty while optimal is not.
func Ratio(optimalSize, approxSize int) (float64, error) {
	if approxSize == 0 {
		if optimalSize == 0 {
			return 1, nil
		}
		return 0, fmt.Errorf("maxis: empty approximate solution for non-empty optimum %d", optimalSize)
	}
	return float64(optimalSize) / float64(approxSize), nil
}

// sortNodes ascending-sorts an independent set for canonical output.
func sortNodes(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

package maxis

// exact.go implements the exact branch-and-bound maximum independent set
// solver (the λ = 1 oracle of Theorem 1.1). It combines
//
//   - degree-0/1 reduction rules (always-safe inclusions),
//   - a direct solver for the degree-2 residue (disjoint cycles),
//   - a matching-based upper bound α ≤ |V| − |M| for any matching M, and
//   - an optional clique-partition bound: conflict graphs G_k come with the
//     per-edge cliques of E_edge (Section 2 of the paper), which bound α by
//     the number of remaining cliques and make the solver fast exactly on
//     the graphs the reduction produces.
//
// On weighted instances (g.Weighted()) the same search maximises total
// vertex weight: the incumbent comparison, the prune test, and all three
// upper bounds switch to their weight-sum forms (Σ max weight per clique,
// active weight minus Σ min endpoint weight per matching edge, Σ max
// active weight per hint clique), the degree-1 rule only fires when the
// degree-1 vertex outweighs its neighbour, and the cycle shortcut is
// skipped — the search branches all the way down. Unweighted instances
// take exactly the original code paths.

import (
	"context"
	"fmt"

	"pslocal/internal/graph"
)

// ExactOptions tunes the exact solver.
type ExactOptions struct {
	// CliqueHint optionally assigns every node to a clique id (any dense or
	// sparse int32 ids). When set, the solver verifies the partition and
	// uses "number of distinct active cliques" as an additional upper
	// bound. The per-edge cliques of a conflict graph are the intended use.
	CliqueHint []int32
	// MaxBranchNodes bounds the search-tree size; 0 means unlimited. When
	// exceeded, Solve returns the best set found so far together with
	// ErrBudgetExceeded.
	MaxBranchNodes int64
	// Ctx cancels the search cooperatively: it is polled every
	// ctxPollInterval branch nodes and the search returns ctx's error with
	// the best set found so far. Nil never cancels.
	Ctx context.Context
	// Dense optionally supplies a pre-packed adjacency (NewDense) for the
	// same graph, saving the solver its packing pass; owners with an
	// instance cache inject it via ExactOracle.SetDense. A Dense for a
	// different graph is ignored.
	Dense *Dense
}

// ctxPollInterval is how many branch nodes pass between context polls: a
// power of two so the check compiles to a mask, frequent enough that
// cancellation lands within microseconds on dense inputs.
const ctxPollInterval = 1024

// Exact returns a maximum independent set of g using default options.
func Exact(g *graph.Graph) ([]int32, error) {
	return ExactOpts(g, ExactOptions{})
}

// Alpha returns the independence number α(g).
func Alpha(g *graph.Graph) (int, error) {
	set, err := Exact(g)
	if err != nil {
		return 0, err
	}
	return len(set), nil
}

// ExactOpts returns a maximum independent set of g under the given options.
// With a budget, the returned set is the best found when the budget runs
// out and the error is ErrBudgetExceeded.
func ExactOpts(g *graph.Graph, opts ExactOptions) ([]int32, error) {
	n := g.N()
	if n == 0 {
		return nil, nil
	}
	s := &exactState{
		n:      n,
		adj:    make([]bitset, n),
		budget: opts.MaxBranchNodes,
		ctx:    opts.Ctx,
	}
	if g.Weighted() {
		s.weighted = true
		s.w = g.AppendWeights(make([]int64, 0, n))
	}
	// Row bitsets are views into one contiguous pack — one backing
	// allocation instead of n, reused outright when the caller injected the
	// instance-cached Dense for this graph.
	d := denseFor(opts.Dense, g)
	if d == nil {
		d = packDense(g)
	}
	for v := 0; v < n; v++ {
		s.adj[v] = d.row(int32(v))
	}
	if opts.CliqueHint != nil {
		if len(opts.CliqueHint) != n {
			return nil, fmt.Errorf("%w: hint length %d, graph has %d nodes", ErrBadHint, len(opts.CliqueHint), n)
		}
		if err := validateCliqueHint(g, opts.CliqueHint); err != nil {
			return nil, err
		}
		s.hint, s.hintStamp = compressHint(opts.CliqueHint)
		if s.weighted {
			s.hintMax = make([]int64, len(s.hintStamp))
		}
	}
	active := newBitset(n)
	for v := 0; v < n; v++ {
		active.set(int32(v))
	}
	s.scratch = newBitset(n)
	s.solve(active)
	sortNodes(s.best)
	if s.ctxErr != nil {
		return s.best, s.ctxErr
	}
	if s.exceeded {
		return s.best, ErrBudgetExceeded
	}
	return s.best, nil
}

// validateCliqueHint checks that nodes sharing a hint id are pairwise
// adjacent.
func validateCliqueHint(g *graph.Graph, hint []int32) error {
	byID := map[int32][]int32{}
	for v, id := range hint {
		byID[id] = append(byID[id], int32(v))
	}
	for id, members := range byID {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if !g.HasEdge(members[i], members[j]) {
					return fmt.Errorf("%w: nodes %d and %d share id %d but are not adjacent",
						ErrBadHint, members[i], members[j], id)
				}
			}
		}
	}
	return nil
}

// compressHint renumbers arbitrary clique ids to 0..k-1 and allocates the
// generation-stamp array used for O(1)-amortised distinct counting.
func compressHint(hint []int32) (compressed []int32, stamp []int64) {
	next := int32(0)
	remap := map[int32]int32{}
	compressed = make([]int32, len(hint))
	for v, id := range hint {
		c, ok := remap[id]
		if !ok {
			c = next
			remap[id] = c
			next++
		}
		compressed[v] = c
	}
	return compressed, make([]int64, next)
}

type exactState struct {
	n         int
	adj       []bitset
	best      []int32
	cur       []int32
	weighted  bool    // maximise Σ w over cur/best instead of cardinality
	w         []int64 // effective vertex weights; nil when !weighted
	curW      int64   // Σ w over s.cur, maintained incrementally
	bestW     int64   // Σ w over s.best
	budget    int64   // remaining branch nodes; <= 0 with budgeted=true means stop
	exceeded  bool
	ctx       context.Context
	ctxTick   int64 // branch nodes since the last context poll
	ctxErr    error
	hint      []int32
	hintStamp []int64
	hintMax   []int64 // per-clique max active weight; parallel to hintStamp
	hintGen   int64
	scratch   bitset
	scratch2  bitset
	scratch3  bitset
}

// borrowCopy copies src into the reusable scratch3 buffer and returns it.
// The bound helpers consume the copy fully before the next borrowCopy, so
// one buffer serves them all — they used to clone() per branch node.
func (s *exactState) borrowCopy(src bitset) bitset {
	if s.scratch3 == nil {
		s.scratch3 = newBitset(s.n)
	}
	copy(s.scratch3, src)
	return s.scratch3
}

// solve explores the branch rooted at the given active set. It owns
// `active` (callers pass clones) and restores s.cur before returning.
func (s *exactState) solve(active bitset) {
	if s.exceeded || s.ctxErr != nil {
		return
	}
	if s.ctx != nil {
		s.ctxTick++
		if s.ctxTick&(ctxPollInterval-1) == 0 {
			if err := s.ctx.Err(); err != nil {
				s.ctxErr = err
				return
			}
		}
	}
	if s.budget != 0 {
		s.budget--
		if s.budget == 0 {
			s.exceeded = true
			return
		}
	}
	curMark := len(s.cur)
	curWMark := s.curW
	defer func() { s.cur, s.curW = s.cur[:curMark], curWMark }()

	maxV, maxDeg := s.reduceAndMaxDegree(active)

	if !active.any() {
		s.maybeRecord()
		return
	}

	// After reduction every active node has active-degree >= 2. If the max
	// active degree is 2 the residue is a disjoint union of cycles; solve
	// it directly. Weighted searches skip the shortcut (alternate vertices
	// are not weight-optimal and degree-1 vertices can survive the gated
	// reduction) and branch all the way down instead.
	if !s.weighted && maxDeg <= 2 {
		s.solveCycles(active)
		s.maybeRecord()
		return
	}

	// Bound: α(active) is at most the size of any clique cover of the
	// active subgraph, and at most |active| − |matching| for any matching.
	// The greedy clique cover discovers the per-edge cliques of conflict
	// graphs (Section 2, E_edge) because their blocks are contiguous in id
	// order; the matching bound is stronger on sparse residues. Weighted
	// searches use the weight-sum forms of the same three bounds.
	if s.weighted {
		ub := s.weightedCliqueCoverBound(active)
		if mb := s.weightedMatchingBound(active); mb < ub {
			ub = mb
		}
		if s.hint != nil {
			if hb := s.weightedHintBound(active); hb < ub {
				ub = hb
			}
		}
		if s.curW+ub <= s.bestW {
			return
		}
	} else {
		ub := s.greedyCliqueCoverSize(active)
		if mb := active.count() - s.greedyMatchingSize(active); mb < ub {
			ub = mb
		}
		if s.hint != nil {
			if hb := s.distinctActiveCliques(active); hb < ub {
				ub = hb
			}
		}
		if len(s.cur)+ub <= len(s.best) {
			return
		}
	}

	// Branch on the max-degree vertex; include first for earlier strong
	// incumbents.
	include := active.clone()
	include.andNotInPlace(s.adj[maxV])
	include.clear(maxV)
	s.cur = append(s.cur, maxV)
	if s.weighted {
		s.curW += s.w[maxV]
	}
	s.solve(include)
	s.cur = s.cur[:len(s.cur)-1]
	if s.weighted {
		s.curW -= s.w[maxV]
	}

	exclude := active // safe: we own it and no longer need the original
	exclude.clear(maxV)
	s.solve(exclude)
}

// reduceAndMaxDegree applies the degree-0 and degree-1 rules until none
// fires, extending s.cur with the forced inclusions and shrinking active
// in place. On weighted searches the degree-1 rule is gated on the
// degree-1 vertex outweighing its neighbour — the exchange argument
// (swap u for v) needs w(v) ≥ w(u); an outweighed degree-1 vertex stays
// active and is resolved by branching. The returned vertex and degree are
// the active maximum, taken from the final sweep — the one where no rule
// fired, so every degree it computed is still current. Fusing the two
// saves a whole popcount sweep per branch node over separate reduce +
// maxDegree passes.
func (s *exactState) reduceAndMaxDegree(active bitset) (maxV int32, maxDeg int) {
	for {
		changed := false
		maxV, maxDeg = -1, -1
		active.forEach(func(v int32) bool {
			if !active.has(v) {
				// forEach snapshots one word at a time; v may have been
				// cleared by an earlier rule firing in the same word.
				return true
			}
			d := countAnd(s.adj[v], active)
			switch d {
			case 0:
				s.cur = append(s.cur, v)
				if s.weighted {
					s.curW += s.w[v]
				}
				active.clear(v)
				changed = true
			case 1:
				u := firstAnd(s.adj[v], active)
				if s.weighted && s.w[v] < s.w[u] {
					if d > maxDeg {
						maxDeg, maxV = d, v
					}
					return true
				}
				s.cur = append(s.cur, v)
				if s.weighted {
					s.curW += s.w[v]
				}
				active.clear(v)
				active.clear(u)
				changed = true
			default:
				if d > maxDeg {
					maxDeg, maxV = d, v
				}
			}
			return true
		})
		if !changed {
			return maxV, maxDeg
		}
	}
}

// solveCycles optimally solves the all-degrees-2 residue (disjoint cycles):
// a cycle of length L contributes floor(L/2) alternate vertices.
func (s *exactState) solveCycles(active bitset) {
	remaining := s.borrowCopy(active)
	for {
		start := remaining.first()
		if start < 0 {
			return
		}
		// Walk the cycle from start, picking every other vertex but never
		// the last one if the length is odd (positions 0,2,...,2⌊L/2⌋−2).
		var cycle []int32
		prev := int32(-1)
		v := start
		for {
			cycle = append(cycle, v)
			remaining.clear(v)
			next := int32(-1)
			andInto(s.scratch, s.adj[v], active)
			s.scratch.forEach(func(u int32) bool {
				if u != prev && remaining.has(u) {
					next = u
					return false
				}
				return true
			})
			if next < 0 {
				break
			}
			prev = v
			v = next
		}
		take := len(cycle) / 2
		for i := 0; i < take; i++ {
			s.cur = append(s.cur, cycle[2*i])
		}
	}
}

// greedyMatchingSize returns the size of a maximal matching of the active
// subgraph; α ≤ |active| − matching size.
func (s *exactState) greedyMatchingSize(active bitset) int {
	unmatched := s.borrowCopy(active)
	size := 0
	for {
		v := unmatched.first()
		if v < 0 {
			return size
		}
		unmatched.clear(v)
		u := firstAnd(s.adj[v], unmatched)
		if u >= 0 {
			unmatched.clear(u)
			size++
		}
	}
}

// greedyCliqueCoverSize covers the active nodes with greedily grown
// cliques and returns their count, an upper bound on α(active): an
// independent set takes at most one node per clique. Each node is
// processed exactly once, so the cost is O(n) bitset operations.
func (s *exactState) greedyCliqueCoverSize(active bitset) int {
	remaining := s.borrowCopy(active)
	cand := s.scratch2
	if cand == nil {
		cand = newBitset(s.n)
		s.scratch2 = cand
	}
	cover := 0
	for {
		v := remaining.first()
		if v < 0 {
			return cover
		}
		cover++
		remaining.clear(v)
		// cand = remaining nodes adjacent to every clique member so far.
		andInto(cand, remaining, s.adj[v])
		for {
			u := cand.first()
			if u < 0 {
				break
			}
			remaining.clear(u)
			cand.clear(u)
			for i := range cand {
				cand[i] &= s.adj[u][i]
			}
		}
	}
}

// distinctActiveCliques counts distinct clique-hint ids among active nodes
// using a generation stamp to avoid clearing.
func (s *exactState) distinctActiveCliques(active bitset) int {
	s.hintGen++
	count := 0
	active.forEach(func(v int32) bool {
		id := s.hint[v]
		if s.hintStamp[id] != s.hintGen {
			s.hintStamp[id] = s.hintGen
			count++
		}
		return true
	})
	return count
}

// weightedCliqueCoverBound covers the active nodes with greedily grown
// cliques and returns Σ (max weight per clique), an upper bound on the
// max weight independent set: an independent set takes at most one node
// per clique, worth at most that clique's heaviest member.
func (s *exactState) weightedCliqueCoverBound(active bitset) int64 {
	remaining := s.borrowCopy(active)
	cand := s.scratch2
	if cand == nil {
		cand = newBitset(s.n)
		s.scratch2 = cand
	}
	bound := int64(0)
	for {
		v := remaining.first()
		if v < 0 {
			return bound
		}
		maxW := s.w[v]
		remaining.clear(v)
		andInto(cand, remaining, s.adj[v])
		for {
			u := cand.first()
			if u < 0 {
				break
			}
			if s.w[u] > maxW {
				maxW = s.w[u]
			}
			remaining.clear(u)
			cand.clear(u)
			for i := range cand {
				cand[i] &= s.adj[u][i]
			}
		}
		bound += maxW
	}
}

// weightedMatchingBound returns w(active) − Σ min(w_u, w_v) over a maximal
// matching: every matching edge loses at least its lighter endpoint from
// any independent set, and matching edges are disjoint.
func (s *exactState) weightedMatchingBound(active bitset) int64 {
	total := int64(0)
	active.forEach(func(v int32) bool {
		total += s.w[v]
		return true
	})
	unmatched := s.borrowCopy(active)
	for {
		v := unmatched.first()
		if v < 0 {
			return total
		}
		unmatched.clear(v)
		u := firstAnd(s.adj[v], unmatched)
		if u >= 0 {
			unmatched.clear(u)
			if s.w[v] < s.w[u] {
				total -= s.w[v]
			} else {
				total -= s.w[u]
			}
		}
	}
}

// weightedHintBound returns Σ (max active weight per hint clique), the
// weight-sum form of distinctActiveCliques, sharing its generation stamp.
func (s *exactState) weightedHintBound(active bitset) int64 {
	s.hintGen++
	bound := int64(0)
	active.forEach(func(v int32) bool {
		id, w := s.hint[v], s.w[v]
		if s.hintStamp[id] != s.hintGen {
			s.hintStamp[id] = s.hintGen
			s.hintMax[id] = w
			bound += w
		} else if w > s.hintMax[id] {
			bound += w - s.hintMax[id]
			s.hintMax[id] = w
		}
		return true
	})
	return bound
}

// maybeRecord promotes the current selection to the incumbent if better:
// heavier on weighted searches, larger otherwise.
func (s *exactState) maybeRecord() {
	if s.weighted {
		if s.curW > s.bestW {
			s.bestW = s.curW
			s.best = append(s.best[:0], s.cur...)
		}
		return
	}
	if len(s.cur) > len(s.best) {
		s.best = append(s.best[:0], s.cur...)
	}
}

package maxis

import (
	"errors"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"pslocal/internal/graph"
)

// bruteForceAlpha enumerates all subsets; usable for n <= ~20.
func bruteForceAlpha(g *graph.Graph) int {
	n := g.N()
	adjMask := make([]uint32, n)
	for v := 0; v < n; v++ {
		g.ForEachNeighbor(int32(v), func(u int32) bool {
			adjMask[v] |= 1 << uint(u)
			return true
		})
	}
	best := 0
	for mask := uint32(0); mask < 1<<uint(n); mask++ {
		if bits.OnesCount32(mask) <= best {
			continue
		}
		ok := true
		for v := 0; v < n && ok; v++ {
			if mask&(1<<uint(v)) != 0 && adjMask[v]&mask != 0 {
				ok = false
			}
		}
		if ok {
			best = bits.OnesCount32(mask)
		}
	}
	return best
}

func petersen() *graph.Graph {
	b := graph.NewBuilder(10)
	for i := int32(0); i < 5; i++ {
		b.AddEdge(i, (i+1)%5)     // outer cycle
		b.AddEdge(i, i+5)         // spokes
		b.AddEdge(5+i, 5+(i+2)%5) // inner pentagram
	}
	return b.MustBuild()
}

func TestExactKnownGraphs(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"empty graph", graph.Empty(0), 0},
		{"edgeless", graph.Empty(7), 7},
		{"single node", graph.Empty(1), 1},
		{"path4", graph.Path(4), 2},
		{"path5", graph.Path(5), 3},
		{"cycle5", graph.Cycle(5), 2},
		{"cycle6", graph.Cycle(6), 3},
		{"cycle7", graph.Cycle(7), 3},
		{"complete6", graph.Complete(6), 1},
		{"star8", graph.Star(8), 7},
		{"bipartite", graph.CompleteBipartite(3, 5), 5},
		{"grid3x3", graph.Grid(3, 3), 5},
		{"grid4x4", graph.Grid(4, 4), 8},
		{"petersen", petersen(), 4},
		{"two cliques", graph.Union(graph.Complete(4), graph.Complete(3)), 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			set, err := Exact(tt.g)
			if err != nil {
				t.Fatalf("Exact error: %v", err)
			}
			if len(set) != tt.want {
				t.Errorf("α = %d, want %d (set %v)", len(set), tt.want, set)
			}
			if !IsIndependentSet(tt.g, set) {
				t.Errorf("returned set %v is not independent", set)
			}
		})
	}
}

func TestExactMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(14)
		g := graph.GnP(n, 0.1+0.6*rng.Float64(), rng)
		set, err := Exact(g)
		if err != nil {
			return false
		}
		return IsIndependentSet(g, set) && len(set) == bruteForceAlpha(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestExactOnLargerSparseGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := graph.GnP(90, 0.05, rng)
	set, err := Exact(g)
	if err != nil {
		t.Fatalf("Exact error: %v", err)
	}
	if !IsIndependentSet(g, set) {
		t.Fatal("not independent")
	}
	greedy := GreedyMinDegree(g)
	if len(set) < len(greedy) {
		t.Errorf("exact %d smaller than greedy %d", len(set), len(greedy))
	}
}

func TestExactCliqueHint(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizes := []int{4, 3, 5, 2, 4}
	g := graph.CliquePartitionGraph(sizes, 0.2, rng)
	hint := make([]int32, g.N())
	idx := 0
	for cliqueID, s := range sizes {
		for i := 0; i < s; i++ {
			hint[idx] = int32(cliqueID)
			idx++
		}
	}
	plain, err := Exact(g)
	if err != nil {
		t.Fatalf("Exact error: %v", err)
	}
	hinted, err := ExactOpts(g, ExactOptions{CliqueHint: hint})
	if err != nil {
		t.Fatalf("ExactOpts error: %v", err)
	}
	if len(plain) != len(hinted) {
		t.Errorf("hint changed α: %d vs %d", len(plain), len(hinted))
	}
	if !IsIndependentSet(g, hinted) {
		t.Error("hinted result not independent")
	}
}

func TestExactCliqueHintErrors(t *testing.T) {
	g := graph.Path(4)
	if _, err := ExactOpts(g, ExactOptions{CliqueHint: []int32{0, 0}}); !errors.Is(err, ErrBadHint) {
		t.Errorf("short hint error = %v, want ErrBadHint", err)
	}
	// Nodes 0 and 2 are not adjacent in P4, so they cannot share a clique.
	if _, err := ExactOpts(g, ExactOptions{CliqueHint: []int32{1, 2, 1, 3}}); !errors.Is(err, ErrBadHint) {
		t.Errorf("non-clique hint error = %v, want ErrBadHint", err)
	}
	// A valid partition: {0,1} and {2,3} are edges of P4.
	if _, err := ExactOpts(g, ExactOptions{CliqueHint: []int32{5, 5, 9, 9}}); err != nil {
		t.Errorf("valid hint rejected: %v", err)
	}
}

func TestExactBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.GnP(120, 0.3, rng)
	set, err := ExactOpts(g, ExactOptions{MaxBranchNodes: 10})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("error = %v, want ErrBudgetExceeded", err)
	}
	if !IsIndependentSet(g, set) {
		t.Error("anytime result not independent")
	}
}

func TestExactResultIsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := graph.GnP(30, 0.2, rng)
	set, err := Exact(g)
	if err != nil {
		t.Fatalf("Exact error: %v", err)
	}
	for i := 1; i < len(set); i++ {
		if set[i-1] >= set[i] {
			t.Fatalf("result %v not strictly ascending", set)
		}
	}
}

func TestAlpha(t *testing.T) {
	a, err := Alpha(graph.Cycle(9))
	if err != nil {
		t.Fatalf("Alpha error: %v", err)
	}
	if a != 4 {
		t.Errorf("Alpha(C9) = %d, want 4", a)
	}
}

func TestExactPureCyclesResidue(t *testing.T) {
	// A graph that reduces immediately to the degree-2 residue: disjoint
	// cycles exercise solveCycles directly.
	g := graph.Union(graph.Cycle(5), graph.Union(graph.Cycle(4), graph.Cycle(7)))
	set, err := Exact(g)
	if err != nil {
		t.Fatalf("Exact error: %v", err)
	}
	want := 2 + 2 + 3
	if len(set) != want {
		t.Errorf("α = %d, want %d", len(set), want)
	}
	if !IsIndependentSet(g, set) {
		t.Error("not independent")
	}
}

func TestBitsetOps(t *testing.T) {
	b := newBitset(130)
	for _, i := range []int32{0, 63, 64, 129} {
		b.set(i)
	}
	if b.count() != 4 {
		t.Fatalf("count = %d, want 4", b.count())
	}
	if !b.has(63) || b.has(62) {
		t.Error("has() wrong")
	}
	b.clear(63)
	if b.has(63) || b.count() != 3 {
		t.Error("clear() wrong")
	}
	if b.first() != 0 {
		t.Errorf("first = %d, want 0", b.first())
	}
	var got []int32
	b.forEach(func(i int32) bool { got = append(got, i); return true })
	if len(got) != 3 || got[0] != 0 || got[1] != 64 || got[2] != 129 {
		t.Errorf("forEach = %v", got)
	}
	other := newBitset(130)
	other.set(64)
	if countAnd(b, other) != 1 {
		t.Error("countAnd wrong")
	}
	if firstAnd(b, other) != 64 {
		t.Error("firstAnd wrong")
	}
	empty := newBitset(130)
	if empty.any() || empty.first() != -1 || firstAnd(empty, b) != -1 {
		t.Error("empty bitset behaviour wrong")
	}
}

package maxis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pslocal/internal/graph"
)

// refGreedyMinDegreeDeterministic is the list-based twin of the dense
// min-degree kernel: it selects the smallest (residual degree, id) pair by
// a plain scan, the same tie-break greedyMinDegreeDense uses, so the two
// must match element for element on every graph.
func refGreedyMinDegreeDeterministic(g *graph.Graph) []int32 {
	n := g.N()
	removed := make([]bool, n)
	deg := make([]int32, n)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(int32(v)))
	}
	var out []int32
	for {
		best, bestDeg := int32(-1), int32(0)
		for v := int32(0); int(v) < n; v++ {
			if !removed[v] && (best < 0 || deg[v] < bestDeg) {
				best, bestDeg = v, deg[v]
			}
		}
		if best < 0 {
			break
		}
		out = append(out, best)
		drop := []int32{best}
		removed[best] = true
		g.ForEachNeighbor(best, func(u int32) bool {
			if !removed[u] {
				removed[u] = true
				drop = append(drop, u)
			}
			return true
		})
		for _, u := range drop {
			g.ForEachNeighbor(u, func(w int32) bool {
				if !removed[w] {
					deg[w]--
				}
				return true
			})
		}
	}
	sortNodes(out)
	return out
}

func equalSets(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestGreedyOrderDenseMatchesList(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		g := graph.GnP(n, rng.Float64(), rng)
		order := make([]int32, n)
		for i, p := range rng.Perm(n) {
			order[i] = int32(p)
		}
		dense := greedyOrderDense(packDense(g), order)
		list := greedyOrderList(g, order)
		return equalSets(dense, list) && IsIndependentSet(g, dense)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestGreedyMinDegreeDenseMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		g := graph.GnP(n, rng.Float64(), rng)
		dense := greedyMinDegreeDense(packDense(g))
		ref := refGreedyMinDegreeDeterministic(g)
		return equalSets(dense, ref) && IsIndependentSet(g, dense)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestGreedyMinDegreeBitsetMeetsListOnFallback(t *testing.T) {
	// Below the density cutoff the bitset oracle IS GreedyMinDegree; the
	// outputs must be bit-identical.
	rng := rand.New(rand.NewSource(11))
	g := graph.GnP(400, 0.005, rng)
	if NewDense(g) != nil {
		t.Fatalf("G(400, 0.005) unexpectedly cleared the density cutoff")
	}
	if !equalSets(GreedyMinDegreeBitset(g), GreedyMinDegree(g)) {
		t.Error("sparse fallback diverged from GreedyMinDegree")
	}
}

func TestDenseEligibility(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dense := graph.GnP(128, 0.5, rng)
	if NewDense(dense) == nil {
		t.Error("G(128, 0.5) should clear the density cutoff")
	}
	sparse := graph.GnP(512, 0.002, rng)
	if NewDense(sparse) != nil {
		t.Error("G(512, 0.002) should fall below the density cutoff")
	}
	if NewDense(graph.GnP(1, 0, rng)) != nil {
		t.Error("a single vertex should never pack")
	}
}

// TestDenseInjectionMatchesSelfPack pins the DenseSetter contract: an
// oracle given the pre-packed adjacency returns exactly what it returns
// when packing (or CSR-walking) on its own.
func TestDenseInjectionMatchesSelfPack(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := graph.GnP(96, 0.4, rng)
	d := NewDense(g)
	if d == nil {
		t.Fatalf("G(96, 0.4) should pack")
	}
	oracles := []struct {
		name            string
		plain, injected Oracle
	}{
		{"greedy-firstfit", &FirstFitOracle{}, &FirstFitOracle{}},
		{"greedy-mindeg-bitset", &MinDegreeBitsetOracle{}, &MinDegreeBitsetOracle{}},
		{"greedy-random", &RandomOrderOracle{Seed: 5}, &RandomOrderOracle{Seed: 5}},
		{"exact", &ExactOracle{}, &ExactOracle{}},
	}
	for _, tt := range oracles {
		tt.injected.(DenseSetter).SetDense(d)
		want, err1 := tt.plain.Solve(g)
		got, err2 := tt.injected.Solve(g)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: errors %v / %v", tt.name, err1, err2)
		}
		if !equalSets(want, got) {
			t.Errorf("%s: injected dense changed the output: %v vs %v", tt.name, got, want)
		}
	}
}

// TestPortfolioForwardsDense covers the Portfolio fan-out of SetDense.
func TestPortfolioForwardsDense(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := graph.GnP(64, 0.5, rng)
	p, err := NewPortfolio(&FirstFitOracle{}, &MinDegreeBitsetOracle{})
	if err != nil {
		t.Fatal(err)
	}
	p.SetDense(NewDense(g))
	set, err := p.Solve(g)
	if err != nil {
		t.Fatalf("portfolio Solve: %v", err)
	}
	if !IsIndependentSet(g, set) {
		t.Errorf("portfolio returned a dependent set %v", set)
	}
}

func TestExactWithDenseOption(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(13)
		g := graph.GnP(n, 0.1+0.7*rng.Float64(), rng)
		set, err := ExactOpts(g, ExactOptions{Dense: &Dense{dg: packDense(g)}})
		if err != nil {
			return false
		}
		return IsIndependentSet(g, set) && len(set) == bruteForceAlpha(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

package maxis

// bipartite.go implements the exact-on-bipartite oracle: 2-colour every
// component; when the whole graph is bipartite, a maximum independent set
// follows from König's theorem — max matching (Hopcroft–Karp) → minimum
// vertex cover → complement. Non-bipartite inputs are not approximated:
// the oracle reports ErrNotBipartite, which wraps ErrInapplicable so a
// Portfolio racing it simply drops the member and keeps the best of the
// rest. The construction follows the independence-system literature
// (König/Hopcroft–Karp per component, cf. SNIPPETS.md); conflict graphs
// G_k contain per-edge cliques and are essentially never bipartite, so
// inside the reduction loop this member only ever contributes through a
// portfolio on degenerate instances — its real workload is the /v1/maxis
// serve path on structurally bipartite graphs, where it is exact (λ = 1)
// at matching cost instead of branch-and-bound cost.

import (
	"errors"
	"fmt"

	"pslocal/internal/graph"
)

// ErrInapplicable reports an oracle that cannot run on the given instance
// at all (as opposed to failing while running). Portfolio drops members
// whose error wraps ErrInapplicable instead of aborting the race.
var ErrInapplicable = errors.New("maxis: oracle inapplicable to this instance")

// ErrNotBipartite reports a BipartiteExact input with an odd cycle; it
// wraps ErrInapplicable, so portfolios drop the member silently.
var ErrNotBipartite = fmt.Errorf("%w: graph is not bipartite", ErrInapplicable)

// ErrWeightedInstance reports a weighted BipartiteExact input. König's
// matching argument is cardinality-only; the weighted bipartite optimum
// needs a min-cut (flow-based König), which has not landed yet. It wraps
// ErrInapplicable, so portfolios drop the member silently.
var ErrWeightedInstance = fmt.Errorf("%w: weighted instance (flow-based König not implemented)", ErrInapplicable)

// hkInfinity is the unreached BFS distance of the Hopcroft–Karp phase.
const hkInfinity = int32(1 << 30)

// BipartiteExact returns a maximum independent set of g when g is
// bipartite (every component 2-colourable) and ErrNotBipartite otherwise.
//
// The construction is König's theorem end to end: a maximum matching M of
// a bipartite graph has a vertex cover of size |M| (the minimum), and the
// complement of a minimum vertex cover is a maximum independent set, so
// α(g) = n − |M|. The matching is Hopcroft–Karp (O(E·√V)); the cover is
// recovered from the alternating-reachability set Z of the final matching
// as (L \ Z) ∪ (R ∩ Z), giving the independent set (L ∩ Z) ∪ (R \ Z).
func BipartiteExact(g *graph.Graph) ([]int32, error) {
	if g.Weighted() {
		return nil, ErrWeightedInstance
	}
	n := g.N()
	if n == 0 {
		return nil, nil
	}
	side, err := twoColor(g)
	if err != nil {
		return nil, err
	}
	pairU, pairV := hopcroftKarp(g, side)
	// Z: vertices reachable from unmatched left vertices by alternating
	// paths (left→right over non-matching edges, right→left over matching
	// edges). BFS over the whole graph at once — components do not mix.
	inZ := make([]bool, n)
	queue := make([]int32, 0, n)
	for v := int32(0); int(v) < n; v++ {
		if side[v] == 0 && pairU[v] < 0 {
			inZ[v] = true
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if side[v] == 0 {
			// Left: every edge except the matching edge is non-matching;
			// the matching partner (if any) is only reachable over the
			// matching edge from the right side, handled below.
			g.ForEachNeighbor(v, func(u int32) bool {
				if u != pairU[v] && !inZ[u] {
					inZ[u] = true
					queue = append(queue, u)
				}
				return true
			})
		} else if w := pairV[v]; w >= 0 && !inZ[w] {
			inZ[w] = true
			queue = append(queue, w)
		}
	}
	// Independent set = (L ∩ Z) ∪ (R \ Z).
	var out []int32
	for v := int32(0); int(v) < n; v++ {
		if (side[v] == 0) == inZ[v] {
			out = append(out, v)
		}
	}
	return out, nil
}

// twoColor BFS-2-colours every component, returning side ∈ {0, 1} per
// vertex or ErrNotBipartite (with the offending edge) on an odd cycle.
func twoColor(g *graph.Graph) ([]int8, error) {
	n := g.N()
	side := make([]int8, n)
	for i := range side {
		side[i] = -1
	}
	queue := make([]int32, 0, n)
	for start := int32(0); int(start) < n; start++ {
		if side[start] >= 0 {
			continue
		}
		side[start] = 0
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			var oddU int32 = -1
			g.ForEachNeighbor(v, func(u int32) bool {
				switch side[u] {
				case -1:
					side[u] = 1 - side[v]
					queue = append(queue, u)
				case side[v]:
					oddU = u
					return false
				}
				return true
			})
			if oddU >= 0 {
				return nil, fmt.Errorf("%w (odd cycle through edge {%d,%d})", ErrNotBipartite, v, oddU)
			}
		}
	}
	return side, nil
}

// hopcroftKarp computes a maximum matching of the 2-coloured graph:
// pairU[v] is the partner of left vertex v, pairV[u] of right vertex u,
// −1 when unmatched (and for vertices of the other side). Phases of
// shortest augmenting paths double the matched size logarithmically,
// giving the O(E·√V) bound.
func hopcroftKarp(g *graph.Graph, side []int8) (pairU, pairV []int32) {
	n := g.N()
	pairU = make([]int32, n)
	pairV = make([]int32, n)
	dist := make([]int32, n)
	for i := range pairU {
		pairU[i], pairV[i] = -1, -1
	}
	queue := make([]int32, 0, n)
	// distFree is the shortest-path layer at which this phase first
	// reaches a free right vertex; the DFS only accepts free vertices at
	// exactly that layer, keeping augmenting paths phase-shortest.
	var distFree int32
	var augment func(v int32) bool
	augment = func(v int32) bool {
		found := false
		g.ForEachNeighbor(v, func(u int32) bool {
			w := pairV[u]
			if w < 0 {
				if dist[v]+1 != distFree {
					return true
				}
			} else if dist[w] != dist[v]+1 || !augment(w) {
				return true
			}
			pairV[u] = v
			pairU[v] = u
			found = true
			return false
		})
		if !found {
			dist[v] = hkInfinity // dead end for the rest of this phase
		}
		return found
	}
	for {
		// BFS layering from unmatched left vertices.
		queue = queue[:0]
		for v := int32(0); int(v) < n; v++ {
			if side[v] != 0 {
				continue
			}
			if pairU[v] < 0 {
				dist[v] = 0
				queue = append(queue, v)
			} else {
				dist[v] = hkInfinity
			}
		}
		distFree = hkInfinity
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			if dist[v]+1 >= distFree {
				continue // deeper layers cannot shorten the phase
			}
			g.ForEachNeighbor(v, func(u int32) bool {
				w := pairV[u]
				if w < 0 {
					distFree = dist[v] + 1 // first free right vertex: phase length
				} else if dist[w] == hkInfinity {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				return true
			})
		}
		if distFree == hkInfinity {
			return pairU, pairV
		}
		// DFS phase: vertex-disjoint shortest augmenting paths.
		for v := int32(0); int(v) < n; v++ {
			if side[v] == 0 && pairU[v] < 0 && dist[v] == 0 {
				augment(v)
			}
		}
	}
}

// BipartiteOracle adapts BipartiteExact to the Oracle interface; it is
// registered as "bipartite-exact" and portfolio-eligible (non-bipartite
// instances drop it from the race via ErrInapplicable).
type BipartiteOracle struct{}

// Name implements Oracle.
func (BipartiteOracle) Name() string { return "bipartite-exact" }

// Solve implements Oracle.
func (BipartiteOracle) Solve(g *graph.Graph) ([]int32, error) {
	return BipartiteExact(g)
}

package maxis

// bench_kernels_test.go measures the word-parallel bitset kernels against
// their adjacency-list counterparts on a dense conflict-like graph — the
// regime the density cutoff routes to the kernels. scripts/bench.sh
// records BenchmarkOracleKernels into BENCH_gk.json; the ISSUE 6
// acceptance bar is ≥2x for bitset over list on this input.

import (
	"math/rand"
	"testing"

	"pslocal/internal/graph"
)

// benchDenseGraph returns the shared dense benchmark instance: G(n, p)
// far above the density cutoff, the shape of the per-edge-clique conflict
// graphs G_k the reduction produces on dense hypergraphs.
func benchDenseGraph(tb testing.TB) *graph.Graph {
	tb.Helper()
	rng := rand.New(rand.NewSource(42))
	g := graph.GnP(2048, 0.5, rng)
	if !denseEligible(g) {
		tb.Fatalf("benchmark graph fell below the density cutoff")
	}
	return g
}

func BenchmarkOracleKernels(b *testing.B) {
	g := benchDenseGraph(b)
	d := packDense(g)
	order := make([]int32, g.N())
	for i := range order {
		order[i] = int32(i)
	}

	b.Run("mindeg/list", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink = GreedyMinDegree(g)
		}
	})
	b.Run("mindeg/bitset", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink = greedyMinDegreeDense(d)
		}
	})
	b.Run("order/list", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink = greedyOrderList(g, order)
		}
	})
	b.Run("order/bitset", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink = greedyOrderDense(d, order)
		}
	})
	// The exact solver always runs on bitset rows; the pair below isolates
	// what injecting the instance-cached pack saves per call.
	exactG := graph.GnP(140, 0.4, rand.New(rand.NewSource(7)))
	exactD := &Dense{dg: packDense(exactG)}
	b.Run("exact/repack", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ExactOpts(exactG, ExactOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact/injected", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ExactOpts(exactG, ExactOptions{Dense: exactD}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGreedyWeightedDense measures the weighted greedy (static
// weight/(deg+1) order + scan kernel) on the dense benchmark instance,
// against the unweighted min-degree greedy as the baseline the weighted
// path must stay comparable to.
func BenchmarkGreedyWeightedDense(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	base := benchDenseGraph(b)
	ws := make([]int64, base.N())
	for i := range ws {
		ws[i] = 1 + rng.Int63n(1<<20)
	}
	g, err := graph.WithWeights(base, ws)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("weighted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink = GreedyWeighted(g)
		}
	})
	b.Run("unweighted-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink = GreedyMinDegree(base)
		}
	})
}

// BenchmarkBipartiteExact sizes the König path against branch-and-bound
// on a bipartite instance where both are exact.
func BenchmarkBipartiteExact(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := randomBipartite(1024, 0.02, rng)
	b.Run("koenig", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			set, err := BipartiteExact(g)
			if err != nil {
				b.Fatal(err)
			}
			sink = set
		}
	})
}

// sink defeats dead-code elimination of the benchmarked results.
var sink []int32

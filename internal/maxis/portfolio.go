package maxis

// portfolio.go implements the oracle execution layer of DESIGN.md,
// "Execution engine": a Portfolio races several oracles on the same
// conflict graph over the engine worker pool and keeps the largest
// independent set found. Racing diverse greedy strategies per phase is
// the cheap way to tighten the empirical λ of the Theorem 1.1 loop —
// the per-phase |I| is the max over members, so the residual shrinks at
// the best member's rate on every phase.

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"pslocal/internal/engine"
	"pslocal/internal/graph"
)

// EngineSetter is implemented by oracles whose Solve fans work out over a
// worker pool (Portfolio). core.Reduce forwards its engine options to any
// such oracle, so a single -workers flag configures conflict-graph
// construction and per-phase solving alike.
type EngineSetter interface {
	// SetEngine installs the execution options used by Solve.
	SetEngine(opts engine.Options)
}

// Portfolio is an Oracle that runs every member on the input and returns
// the best independent set found: the maximum total weight on weighted
// instances, the maximum cardinality otherwise (on unweighted graphs the
// two orderings coincide, so pre-weights behaviour is unchanged). Ties —
// equal size, or equal weight on weighted instances — deterministically
// keep the lowest-index member, so the result is identical for any worker
// count or completion order. A single-member portfolio delegates directly
// and is bit-identical to that member.
type Portfolio struct {
	members []Oracle
	eng     engine.Options
}

var _ EngineSetter = (*Portfolio)(nil)

// NewPortfolio builds a portfolio over the given members. At least one
// non-nil member is required. Members run concurrently under SetEngine
// options, so they must not share mutable state.
func NewPortfolio(members ...Oracle) (*Portfolio, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("maxis: portfolio needs at least one member")
	}
	owned := make([]Oracle, len(members))
	for i, m := range members {
		if m == nil {
			return nil, fmt.Errorf("maxis: portfolio member %d is nil", i)
		}
		owned[i] = m
	}
	return &Portfolio{members: owned}, nil
}

// Name implements Oracle; it is the registry spelling
// "portfolio:<member>,<member>,...".
func (p *Portfolio) Name() string {
	names := make([]string, len(p.members))
	for i, m := range p.members {
		names[i] = m.Name()
	}
	return portfolioPrefix + strings.Join(names, ",")
}

// Members returns the member oracles in racing order (shared slice; do
// not mutate).
func (p *Portfolio) Members() []Oracle { return p.members }

// SetEngine implements EngineSetter. The zero value runs the members
// serially in order, which yields the same result as any parallel run.
func (p *Portfolio) SetEngine(opts engine.Options) { p.eng = opts }

// SetDense implements DenseSetter by forwarding the packed adjacency to
// every member that can use it, so a portfolio race on a cached instance
// packs zero times.
func (p *Portfolio) SetDense(d *Dense) {
	for _, m := range p.members {
		if ds, ok := m.(DenseSetter); ok {
			ds.SetDense(d)
		}
	}
}

// Solve implements Oracle: every member solves g (concurrently when the
// engine options select more than one worker), and the heaviest returned
// set wins (SetWeight — cardinality on unweighted instances). Members
// whose error wraps ErrInapplicable (e.g. bipartite-exact on a
// non-bipartite or weighted instance) are dropped from the race; any
// other member error aborts the portfolio. A race in which every member
// was dropped is an error.
func (p *Portfolio) Solve(g *graph.Graph) ([]int32, error) {
	return p.solve(p.eng, g)
}

// SolveContext implements ContextSolver: the race runs under ctx (an
// explicit SetEngine context wins) and ctx-aware members cancel
// cooperatively mid-solve.
func (p *Portfolio) SolveContext(ctx context.Context, g *graph.Graph) ([]int32, error) {
	eng := p.eng
	if eng.Ctx == nil {
		eng.Ctx = ctx
	}
	return p.solve(eng, g)
}

// solve races the members on eng's pool.
func (p *Portfolio) solve(eng engine.Options, g *graph.Graph) ([]int32, error) {
	if len(p.members) == 1 {
		return OracleSolve(eng.Ctx, p.members[0], g)
	}
	results := make([][]int32, len(p.members))
	dropped := make([]error, len(p.members))
	err := eng.ForEachShard(len(p.members), func(_ int, s engine.Shard) error {
		for i := s.Lo; i < s.Hi; i++ {
			if err := eng.Err(); err != nil {
				return err
			}
			set, err := OracleSolve(eng.Ctx, p.members[i], g)
			if err != nil {
				if errors.Is(err, ErrInapplicable) {
					dropped[i] = err
					continue
				}
				return fmt.Errorf("maxis: portfolio member %s: %w", p.members[i].Name(), err)
			}
			results[i] = set
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Winner: strictly greater weight only, so equal-weight (and on
	// unweighted graphs equal-size) races keep the lowest-index member —
	// the pinned deterministic tie-break.
	best, bestW := -1, int64(-1)
	for i := range results {
		if dropped[i] != nil {
			continue
		}
		if w := SetWeight(g, results[i]); w > bestW {
			best, bestW = i, w
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("maxis: every portfolio member was inapplicable: %w", dropped[0])
	}
	return results[best], nil
}

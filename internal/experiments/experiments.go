package experiments

// experiments.go implements E1–E10 of DESIGN.md Section 4. Each function
// returns its table and a nil error only when the paper's claim held on
// every instance of the grid.

import (
	"fmt"
	"math"
	"math/rand"

	"pslocal/internal/cfcolor"
	"pslocal/internal/core"
	"pslocal/internal/graph"
	"pslocal/internal/hypergraph"
	"pslocal/internal/local"
	"pslocal/internal/maxis"
	"pslocal/internal/slocal"
	"pslocal/internal/verify"
)

// plantedGrid returns the (n, m, k) grid used by the conflict-graph
// experiments.
func plantedGrid(cfg Config) [][3]int {
	if cfg.Quick {
		return [][3]int{{20, 8, 2}, {30, 12, 3}}
	}
	return [][3]int{
		{20, 8, 2},
		{30, 12, 3},
		{40, 16, 3},
		{50, 20, 4},
		{60, 24, 4},
	}
}

// E1ConflictGraphSize checks |V(G_k)| = k·Σ_e |e| and reports the edge
// volume of the materialised G_k (Section 2 definitions).
func E1ConflictGraphSize(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "conflict graph size",
		Claim:   "|V(G_k)| = k·Σ_e |e| for the Section 2 construction",
		Columns: []string{"n", "m", "k", "Σ|e|", "V=kΣ|e|", "V built", "E built", "ok"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var firstErr error
	for _, g := range plantedGrid(cfg) {
		n, m, k := g[0], g[1], g[2]
		h, _, err := hypergraph.PlantedCF(n, m, k, 3, 5, rng)
		if err != nil {
			return nil, fmt.Errorf("experiments: E1 generator: %w", err)
		}
		ix, err := core.NewIndex(h, k)
		if err != nil {
			return nil, fmt.Errorf("experiments: E1 index: %w", err)
		}
		built, err := core.BuildOpts(ix, cfg.Engine)
		if err != nil {
			return nil, fmt.Errorf("experiments: E1 build: %w", err)
		}
		want := k * h.TotalEdgeSize()
		ok := built.N() == want && ix.NumNodes() == want
		if !ok && firstErr == nil {
			firstErr = fmt.Errorf("experiments: E1 size mismatch: built %d, want %d", built.N(), want)
		}
		t.AddRow(itoa(n), itoa(m), itoa(k), itoa(h.TotalEdgeSize()),
			itoa(want), itoa(built.N()), itoa(built.M()), btoa(ok))
	}
	return t, firstErr
}

// E2Lemma21a checks Lemma 2.1(a): a planted conflict-free k-colouring
// induces an independent set of size m and α(G_k) = m exactly.
func E2Lemma21a(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "Lemma 2.1(a): colourings induce maximum independent sets",
		Claim:   "|I_f| = m and α(G_k) = m on CF-k-colourable instances",
		Columns: []string{"n", "m", "k", "|I_f|", "independent", "α(G_k)", "ok"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	var firstErr error
	for _, g := range plantedGrid(cfg) {
		n, m, k := g[0], g[1], g[2]
		h, planted, err := hypergraph.PlantedCF(n, m, k, 3, 5, rng)
		if err != nil {
			return nil, fmt.Errorf("experiments: E2 generator: %w", err)
		}
		ix, err := core.NewIndex(h, k)
		if err != nil {
			return nil, fmt.Errorf("experiments: E2 index: %w", err)
		}
		isSet, err := core.ColoringToIS(ix, cfcolor.Coloring(planted))
		if err != nil {
			return nil, fmt.Errorf("experiments: E2 mapping: %w", err)
		}
		indep := verify.IndependentTriples(ix, isSet) == nil
		built, err := core.BuildOpts(ix, cfg.Engine)
		if err != nil {
			return nil, fmt.Errorf("experiments: E2 build: %w", err)
		}
		opt, err := maxis.ExactOpts(built, maxis.ExactOptions{CliqueHint: ix.EdgeCliqueHint()})
		if err != nil {
			return nil, fmt.Errorf("experiments: E2 exact: %w", err)
		}
		ok := len(isSet) == m && indep && len(opt) == m
		if !ok && firstErr == nil {
			firstErr = fmt.Errorf("experiments: E2 failed at n=%d m=%d k=%d", n, m, k)
		}
		t.AddRow(itoa(n), itoa(m), itoa(k), itoa(len(isSet)), btoa(indep), itoa(len(opt)), btoa(ok))
	}
	return t, firstErr
}

// E3Lemma21b checks Lemma 2.1(b): every oracle-produced independent set
// induces a well-defined colouring with at least |I| happy edges.
func E3Lemma21b(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Lemma 2.1(b): independent sets induce partial colourings",
		Claim:   "f_I well defined and happy(f_I) >= |I| for every independent I",
		Columns: []string{"n", "m", "k", "oracle", "|I|", "happy", "ok"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	oracles, err := lookupOracles(cfg.Seed+77, "greedy-firstfit", "greedy-mindeg", "greedy-random")
	if err != nil {
		return nil, fmt.Errorf("experiments: E3: %w", err)
	}
	var firstErr error
	for _, g := range plantedGrid(cfg) {
		n, m, k := g[0], g[1], g[2]
		h, _, err := hypergraph.PlantedCF(n, m, k, 3, 5, rng)
		if err != nil {
			return nil, fmt.Errorf("experiments: E3 generator: %w", err)
		}
		ix, err := core.NewIndex(h, k)
		if err != nil {
			return nil, fmt.Errorf("experiments: E3 index: %w", err)
		}
		built, err := core.BuildOpts(ix, cfg.Engine)
		if err != nil {
			return nil, fmt.Errorf("experiments: E3 build: %w", err)
		}
		for _, o := range oracles {
			ids, err := o.Solve(built)
			if err != nil {
				return nil, fmt.Errorf("experiments: E3 oracle %s: %w", o.Name(), err)
			}
			triples, err := core.IDsToTriples(ix, ids)
			if err != nil {
				return nil, fmt.Errorf("experiments: E3 ids: %w", err)
			}
			f, err := core.ISToColoring(ix, triples)
			if err != nil {
				return nil, fmt.Errorf("experiments: E3 f_I: %w", err)
			}
			happy := len(cfcolor.HappyEdges(h, f))
			ok := happy >= len(triples)
			if !ok && firstErr == nil {
				firstErr = fmt.Errorf("experiments: E3: %d happy < |I| = %d", happy, len(triples))
			}
			t.AddRow(itoa(n), itoa(m), itoa(k), o.Name(), itoa(len(triples)), itoa(happy), btoa(ok))
		}
	}
	return t, firstErr
}

// lookupOracles resolves registry names to oracle instances, seeding the
// randomized ones deterministically.
func lookupOracles(seed int64, names ...string) ([]maxis.Oracle, error) {
	out := make([]maxis.Oracle, len(names))
	for i, name := range names {
		o, err := maxis.Lookup(name, seed)
		if err != nil {
			return nil, err
		}
		out[i] = o
	}
	return out, nil
}

// reductionModes is the oracle grid shared by E4/E5; the named oracles are
// resolved through the maxis registry and every mode carries cfg.Engine.
func reductionModes(cfg Config, seed int64) ([]struct {
	name string
	opts core.Options
}, error) {
	oracles, err := lookupOracles(seed, "greedy-mindeg", "greedy-random")
	if err != nil {
		return nil, err
	}
	return []struct {
		name string
		opts core.Options
	}{
		{"exact(λ=1)", core.Options{Mode: core.ModeExactHinted, Engine: cfg.Engine}},
		{"first-fit", core.Options{Mode: core.ModeImplicitFirstFit, Engine: cfg.Engine}},
		{"greedy-mindeg", core.Options{Mode: core.ModeOracle, Oracle: oracles[0], Engine: cfg.Engine}},
		{"greedy-random", core.Options{Mode: core.ModeOracle, Oracle: oracles[1], Engine: cfg.Engine}},
	}, nil
}

// E4PhaseDecay runs the Theorem 1.1 loop and checks the per-phase decay
// |E_{i+1}| <= |E_i| − |I_i| plus single-phase termination for the exact
// oracle.
func E4PhaseDecay(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Theorem 1.1 phase decay",
		Claim:   "|E_{i+1}| <= |E_i| − |I_i| every phase; exact oracle needs 1 phase",
		Columns: []string{"m", "k", "oracle", "phases", "max λ_i", "decay ok"},
		Notes: []string{
			"λ_i = |E_i|/|I_i| is the genuine per-phase ratio because α(G_k(H_i)) = |E_i| on planted instances (Lemma 2.1a)",
		},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	m := 60
	if cfg.Quick {
		m = 24
	}
	k := 2
	// Crowded planted instance: 15 vertices force heavy edge overlap, so
	// heuristic oracles land below α = m and need several phases, while
	// the exact oracle still finishes in one.
	h, _, err := hypergraph.PlantedCF(15, m, k, 4, 6, rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: E4 generator: %w", err)
	}
	modes, err := reductionModes(cfg, cfg.Seed+13)
	if err != nil {
		return nil, fmt.Errorf("experiments: E4: %w", err)
	}
	var firstErr error
	for _, mode := range modes {
		opts := mode.opts
		opts.K = k
		res, err := core.Reduce(nil, h, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: E4 %s: %w", mode.name, err)
		}
		if err := verify.ReductionResult(h, res); err != nil {
			return nil, fmt.Errorf("experiments: E4 %s verification: %w", mode.name, err)
		}
		maxLambda := 1.0
		decayOK := true
		for _, ph := range res.Phases {
			if ph.HappyRemoved < ph.ISSize {
				decayOK = false
			}
			if l := float64(ph.EdgesBefore) / float64(ph.ISSize); l > maxLambda {
				maxLambda = l
			}
		}
		if mode.name == "exact(λ=1)" && len(res.Phases) != 1 {
			decayOK = false
		}
		if !decayOK && firstErr == nil {
			firstErr = fmt.Errorf("experiments: E4 decay violated for %s", mode.name)
		}
		t.AddRow(itoa(m), itoa(k), mode.name, itoa(len(res.Phases)), ftoa(maxLambda), btoa(decayOK))
	}
	return t, firstErr
}

// E5ColorBudget checks the colour budget: total colours = k·phases and
// phases <= ρ = λ̂·ln(m) + 1 with λ̂ the worst per-phase ratio.
func E5ColorBudget(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Theorem 1.1 colour budget",
		Claim:   "total colours = k·phases and phases <= λ̂·ln(m)+1",
		Columns: []string{"m", "k", "oracle", "phases", "ρ bound", "colours", "CF", "ok"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 4))
	m := 60
	if cfg.Quick {
		m = 24
	}
	k := 2
	h, _, err := hypergraph.PlantedCF(15, m, k, 4, 6, rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: E5 generator: %w", err)
	}
	modes, err := reductionModes(cfg, cfg.Seed+14)
	if err != nil {
		return nil, fmt.Errorf("experiments: E5: %w", err)
	}
	var firstErr error
	for _, mode := range modes {
		opts := mode.opts
		opts.K = k
		res, err := core.Reduce(nil, h, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: E5 %s: %w", mode.name, err)
		}
		maxLambda := 1.0
		for _, ph := range res.Phases {
			if l := float64(ph.EdgesBefore) / float64(ph.ISSize); l > maxLambda {
				maxLambda = l
			}
		}
		bound := core.PhaseBound(maxLambda, h.M())
		cf := verify.ConflictFreeMulti(h, res.Multicoloring) == nil
		ok := res.TotalColors == k*len(res.Phases) && len(res.Phases) <= bound && cf
		if !ok && firstErr == nil {
			firstErr = fmt.Errorf("experiments: E5 budget violated for %s", mode.name)
		}
		t.AddRow(itoa(m), itoa(k), mode.name, itoa(len(res.Phases)), itoa(bound),
			itoa(res.TotalColors), btoa(cf), btoa(ok))
	}
	return t, firstErr
}

// E6Containment checks the SLOCAL containment direction: ball carving is a
// (1+δ)-approximation with locality <= ceil(log_{1+δ} n)+1.
func E6Containment(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "containment: SLOCAL ball-carving MaxIS",
		Claim:   "(1+δ)·|IS| >= α and locality <= ceil(log_{1+δ} n)+1",
		Columns: []string{"graph", "n", "δ", "α", "|IS|", "(1+δ)|IS|>=α", "locality", "bound", "ok"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	type inst struct {
		name string
		g    *graph.Graph
	}
	insts := []inst{
		{"grid", graph.Grid(5, 6)},
		{"cycle", graph.Cycle(24)},
		{"gnp", graph.GnP(50, 0.08, rng)},
	}
	if !cfg.Quick {
		insts = append(insts,
			inst{"tree", graph.RandomTree(40, rng)},
			inst{"star", graph.Star(20)},
			inst{"gnp-dense", graph.GnP(40, 0.2, rng)},
		)
	}
	deltas := []float64{1.0, 0.5}
	if !cfg.Quick {
		deltas = append(deltas, 0.25)
	}
	var firstErr error
	for _, in := range insts {
		opt, err := maxis.Exact(in.g)
		if err != nil {
			return nil, fmt.Errorf("experiments: E6 exact on %s: %w", in.name, err)
		}
		for _, d := range deltas {
			res, err := slocal.BallCarvingMaxIS(in.g, slocal.CarvingOptions{Delta: d})
			if err != nil {
				return nil, fmt.Errorf("experiments: E6 carving on %s: %w", in.name, err)
			}
			approx := float64(len(res.Set))*(1+d) >= float64(len(opt))-1e-9
			localityOK := res.Locality <= res.RadiusBound
			indep := verify.IndependentSet(in.g, res.Set) == nil
			ok := approx && localityOK && indep
			if !ok && firstErr == nil {
				firstErr = fmt.Errorf("experiments: E6 failed on %s δ=%v", in.name, d)
			}
			t.AddRow(in.name, itoa(in.g.N()), ftoa(d), itoa(len(opt)), itoa(len(res.Set)),
				btoa(approx), itoa(res.Locality), itoa(res.RadiusBound), btoa(ok))
		}
	}
	return t, firstErr
}

// E7OracleQuality measures the empirical λ of every oracle on conflict
// graphs and random graphs (figure F3 uses the same machinery).
func E7OracleQuality(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "oracle quality (empirical λ)",
		Claim:   "λ = α/|IS| >= 1 for all oracles and λ = 1 for exact",
		Columns: []string{"instance", "oracle", "α", "|IS|", "λ", "ok"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 6))
	h, _, err := hypergraph.PlantedCF(30, 12, 3, 3, 5, rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: E7 generator: %w", err)
	}
	ix, err := core.NewIndex(h, 3)
	if err != nil {
		return nil, fmt.Errorf("experiments: E7 index: %w", err)
	}
	conflict, err := core.BuildOpts(ix, cfg.Engine)
	if err != nil {
		return nil, fmt.Errorf("experiments: E7 build: %w", err)
	}
	type inst struct {
		name string
		g    *graph.Graph
		hint []int32
	}
	insts := []inst{
		{"conflict(m=12,k=3)", conflict, ix.EdgeCliqueHint()},
		{"gnp(60,0.1)", graph.GnP(60, 0.1, rng), nil},
	}
	if !cfg.Quick {
		insts = append(insts, inst{"grid(6x6)", graph.Grid(6, 6), nil})
	}
	oracles, err := lookupOracles(cfg.Seed+99,
		"greedy-mindeg", "greedy-firstfit", "greedy-random", "clique-removal")
	if err != nil {
		return nil, fmt.Errorf("experiments: E7: %w", err)
	}
	var firstErr error
	for _, in := range insts {
		opt, err := maxis.ExactOpts(in.g, maxis.ExactOptions{CliqueHint: in.hint})
		if err != nil {
			return nil, fmt.Errorf("experiments: E7 exact on %s: %w", in.name, err)
		}
		t.AddRow(in.name, "exact", itoa(len(opt)), itoa(len(opt)), ftoa(1), btoa(true))
		for _, o := range oracles {
			set, err := o.Solve(in.g)
			if err != nil {
				return nil, fmt.Errorf("experiments: E7 %s on %s: %w", o.Name(), in.name, err)
			}
			lambda, err := maxis.Ratio(len(opt), len(set))
			if err != nil {
				return nil, fmt.Errorf("experiments: E7 ratio: %w", err)
			}
			ok := lambda >= 1-1e-9 && verify.IndependentSet(in.g, set) == nil
			if !ok && firstErr == nil {
				firstErr = fmt.Errorf("experiments: E7 oracle %s invalid on %s", o.Name(), in.name)
			}
			t.AddRow(in.name, o.Name(), itoa(len(opt)), itoa(len(set)), ftoa(lambda), btoa(ok))
		}
	}
	return t, firstErr
}

// E8ModelBaselines reproduces the Section 1 narrative: Luby's randomized
// MIS runs in O(log n) LOCAL rounds while the greedy SLOCAL MIS has
// locality 1.
func E8ModelBaselines(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "model baselines (Section 1)",
		Claim:   "Luby rounds = O(log n); greedy SLOCAL MIS locality = 1",
		Columns: []string{"graph", "n", "algorithm", "rounds/locality", "|MIS|", "bound", "ok"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	sizes := []int{64, 256}
	if !cfg.Quick {
		sizes = append(sizes, 1024)
	}
	var firstErr error
	for _, n := range sizes {
		g := graph.GnP(n, 4/float64(n), rng)
		mis, res, err := local.LubyMIS(g, cfg.Seed+8, local.Options{})
		if err != nil {
			return nil, fmt.Errorf("experiments: E8 luby n=%d: %w", n, err)
		}
		bound := int(40*math.Log2(float64(n))) + 10
		ok := res.Rounds <= bound && verify.MaximalIndependentSet(g, mis) == nil
		if !ok && firstErr == nil {
			firstErr = fmt.Errorf("experiments: E8 luby failed at n=%d", n)
		}
		t.AddRow("gnp", itoa(n), "LOCAL Luby", itoa(res.Rounds), itoa(len(mis)), itoa(bound), btoa(ok))

		order := slocal.IdentityOrder(g.N())
		smis, sres, err := slocal.GreedyMIS(g, order)
		if err != nil {
			return nil, fmt.Errorf("experiments: E8 greedy n=%d: %w", n, err)
		}
		ok = sres.Locality <= 1 && verify.MaximalIndependentSet(g, smis) == nil
		if !ok && firstErr == nil {
			firstErr = fmt.Errorf("experiments: E8 greedy failed at n=%d", n)
		}
		t.AddRow("gnp", itoa(n), "SLOCAL greedy", itoa(sres.Locality), itoa(len(smis)), itoa(1), btoa(ok))
	}
	return t, firstErr
}

// E9NetDecomp checks the network decomposition bounds: colours <=
// ceil(log2 n)+1, radii <= log2 n, validity on every instance.
func E9NetDecomp(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "network decomposition (P-SLOCAL substrate)",
		Claim:   "colours <= ceil(log2 n)+1, cluster radius <= log2 n, same-colour clusters non-adjacent",
		Columns: []string{"graph", "n", "colours", "colour bound", "max radius", "radius bound", "clusters", "ok"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 9))
	type inst struct {
		name string
		g    *graph.Graph
	}
	insts := []inst{
		{"gnp", graph.GnP(80, 0.05, rng)},
		{"grid", graph.Grid(8, 8)},
	}
	if !cfg.Quick {
		insts = append(insts,
			inst{"tree", graph.RandomTree(100, rng)},
			inst{"cycle", graph.Cycle(64)},
			inst{"complete", graph.Complete(20)},
		)
	}
	var firstErr error
	for _, in := range insts {
		d, err := slocal.NetworkDecomposition(in.g, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: E9 %s: %w", in.name, err)
		}
		n := in.g.N()
		colourBound := int(math.Ceil(math.Log2(float64(n)))) + 1
		radiusBound := int(math.Log2(float64(n))) + 1
		valid := d.Validate(in.g) == nil
		ok := valid && d.NumColors <= colourBound && d.MaxRadius <= radiusBound
		if !ok && firstErr == nil {
			firstErr = fmt.Errorf("experiments: E9 failed on %s", in.name)
		}
		t.AddRow(in.name, itoa(n), itoa(d.NumColors), itoa(colourBound),
			itoa(d.MaxRadius), itoa(radiusBound), itoa(d.NumClusters), btoa(ok))
	}
	return t, firstErr
}

// E10IntervalCF compares the [DN18]-domain dyadic colouring against the
// paper's reduction on interval hypergraphs.
func E10IntervalCF(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "interval hypergraphs: dyadic colouring vs reduction",
		Claim:   "dyadic uses <= ceil(log2(n+1)) colours and both outputs are conflict-free",
		Columns: []string{"n", "m", "dyadic colours", "log bound", "reduction colours", "both CF", "ok"},
		Notes: []string{
			"reduction runs in implicit first-fit mode with k=2 per phase",
		},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 10))
	grid := [][2]int{{24, 15}, {48, 30}}
	if !cfg.Quick {
		grid = append(grid, [2]int{96, 50})
	}
	var firstErr error
	for _, gm := range grid {
		n, m := gm[0], gm[1]
		h, err := hypergraph.Interval(n, m, 2, n/3+1, rng)
		if err != nil {
			return nil, fmt.Errorf("experiments: E10 generator: %w", err)
		}
		dyadic := cfcolor.DyadicIntervalColoring(n)
		dyadicOK := verify.ConflictFree(h, dyadic) == nil
		logBound := int(math.Ceil(math.Log2(float64(n + 1))))

		res, err := core.Reduce(nil, h, core.Options{K: 2, Mode: core.ModeImplicitFirstFit, Engine: cfg.Engine})
		if err != nil {
			return nil, fmt.Errorf("experiments: E10 reduce: %w", err)
		}
		redOK := verify.ConflictFreeMulti(h, res.Multicoloring) == nil
		ok := dyadicOK && redOK && int(dyadic.MaxColor()) <= logBound
		if !ok && firstErr == nil {
			firstErr = fmt.Errorf("experiments: E10 failed at n=%d", n)
		}
		t.AddRow(itoa(n), itoa(m), itoa(int(dyadic.MaxColor())), itoa(logBound),
			itoa(res.TotalColors), btoa(dyadicOK && redOK), btoa(ok))
	}
	return t, firstErr
}

// AllTables runs E1..E15 in order.
func AllTables(cfg Config) ([]*Table, error) {
	funcs := []func(Config) (*Table, error){
		E1ConflictGraphSize, E2Lemma21a, E3Lemma21b, E4PhaseDecay, E5ColorBudget,
		E6Containment, E7OracleQuality, E8ModelBaselines, E9NetDecomp, E10IntervalCF,
		E11DistributedPipeline, E12CompleteSiblings, E13PortfolioPhases, E14BitsetKernels,
		E15WeightedOracles,
	}
	tables := make([]*Table, 0, len(funcs))
	for _, f := range funcs {
		tab, err := f(cfg)
		if err != nil {
			return tables, err
		}
		tables = append(tables, tab)
	}
	return tables, nil
}

// Package experiments regenerates the paper's quantitative claims. The
// paper (a theory paper) has no tables or figures, so DESIGN.md Section 4
// defines the experiment suite E1–E15 and figure-equivalents F1–F3 from
// the numbered lemmas and theorems; every function here both produces a
// human-readable table and verifies the underlying claim, returning an
// error when the measured behaviour contradicts the paper.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"pslocal/internal/engine"
)

// Config controls instance sizes and determinism.
type Config struct {
	// Seed drives every generator; equal seeds give identical tables.
	Seed int64
	// Quick shrinks the grids for use inside benchmarks and CI.
	Quick bool
	// Engine configures parallel conflict-graph construction and
	// cancellation for every experiment; the zero value is serial. The
	// tables themselves are identical for every worker count.
	Engine engine.Options
	// Oracle names the portfolio E13 races against its members
	// ("portfolio:<a>,<b>,..."); empty selects the E13 default.
	Oracle string
}

// Table is a rendered experiment: a claim, measurements, and notes.
type Table struct {
	// ID is the experiment identifier, e.g. "E4".
	ID string
	// Title is a one-line description.
	Title string
	// Claim states what the paper asserts and this table checks.
	Claim string
	// Columns names the columns.
	Columns []string
	// Rows holds the measurements, one string per column.
	Rows [][]string
	// Notes carries caveats and substitutions.
	Notes []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// itoa and ftoa keep row building terse.
func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func ftoa(v float64) string { return fmt.Sprintf("%.3f", v) }
func btoa(ok bool) string   { return map[bool]string{true: "yes", false: "NO"}[ok] }

package experiments

// portfolio.go implements E13, the oracle-portfolio experiment: racing
// several registered oracles per phase (maxis.Portfolio) against each
// member run alone, on the crowded planted instance of E4/E5. Phase 1 of
// every run solves the same conflict graph G_1, so the portfolio's |I_1|
// is provably at least every member's; later phases diverge with the
// residuals and the phase counts are recorded as empirical data.

import (
	"fmt"
	"math/rand"
	"strings"

	"pslocal/internal/core"
	"pslocal/internal/hypergraph"
	"pslocal/internal/maxis"
	"pslocal/internal/verify"
)

// DefaultPortfolio is the portfolio E13 uses when Config.Oracle is empty.
const DefaultPortfolio = "portfolio:greedy-firstfit,greedy-mindeg,greedy-random"

// E13PortfolioPhases compares the portfolio oracle against its members on
// the Theorem 1.1 loop: every run must verify end to end, and the
// portfolio's first-phase independent set must be at least as large as
// each member's (they solve the same G_1; the portfolio takes the max).
func E13PortfolioPhases(cfg Config) (*Table, error) {
	name := cfg.Oracle
	if name == "" {
		name = DefaultPortfolio
	}
	if !strings.HasPrefix(name, "portfolio:") {
		return nil, fmt.Errorf("experiments: E13 oracle %q is not a portfolio:<a>,<b>,... name", name)
	}
	memberNames := strings.Split(strings.TrimPrefix(name, "portfolio:"), ",")
	for i := range memberNames {
		memberNames[i] = strings.TrimSpace(memberNames[i])
	}

	t := &Table{
		ID:      "E13",
		Title:   "oracle portfolio vs single oracles",
		Claim:   "portfolio |I_1| >= every member's |I_1| and all runs verify",
		Columns: []string{"m", "k", "oracle", "phases", "|I_1|", "colours", "ok"},
		Notes: []string{
			"phase counts beyond phase 1 are empirical: residuals diverge once the portfolio removes more edges",
			"member i runs with seed+i, the registry portfolio's own member-seed derivation",
		},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 50))
	m := 60
	if cfg.Quick {
		m = 24
	}
	k := 2
	// The crowded instance of E4: 15 vertices force heavy edge overlap, so
	// heuristic oracles land well below α = m and the members spread out.
	h, _, err := hypergraph.PlantedCF(15, m, k, 4, 6, rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: E13 generator: %w", err)
	}

	seed := cfg.Seed + 51
	var firstErr error
	bestFirst := 0
	for i, mn := range memberNames {
		o, err := maxis.Lookup(mn, seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("experiments: E13 member %q: %w", mn, err)
		}
		res, err := core.Reduce(nil, h, core.Options{K: k, Mode: core.ModeOracle, Oracle: o, Engine: cfg.Engine})
		if err != nil {
			return nil, fmt.Errorf("experiments: E13 %s: %w", mn, err)
		}
		ok := verify.ReductionResult(h, res) == nil
		if !ok && firstErr == nil {
			firstErr = fmt.Errorf("experiments: E13 member %s failed verification", mn)
		}
		if res.Phases[0].ISSize > bestFirst {
			bestFirst = res.Phases[0].ISSize
		}
		t.AddRow(itoa(m), itoa(k), mn, itoa(len(res.Phases)),
			itoa(res.Phases[0].ISSize), itoa(res.TotalColors), btoa(ok))
	}

	po, err := maxis.Lookup(name, seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: E13 portfolio: %w", err)
	}
	res, err := core.Reduce(nil, h, core.Options{K: k, Mode: core.ModeOracle, Oracle: po, Engine: cfg.Engine})
	if err != nil {
		return nil, fmt.Errorf("experiments: E13 portfolio run: %w", err)
	}
	ok := verify.ReductionResult(h, res) == nil && res.Phases[0].ISSize >= bestFirst
	if !ok && firstErr == nil {
		firstErr = fmt.Errorf("experiments: E13 portfolio |I_1| = %d below best member %d",
			res.Phases[0].ISSize, bestFirst)
	}
	t.AddRow(itoa(m), itoa(k), name, itoa(len(res.Phases)),
		itoa(res.Phases[0].ISSize), itoa(res.TotalColors), btoa(ok))
	return t, firstErr
}

package experiments

// weighted.go implements E15, the vertex-weighted oracle experiment:
// weighted greedy against the exact weighted branch-and-bound on random
// graphs with power-law (Pareto) weight distributions — the regime where
// cardinality-greedy and weight-greedy disagree most, because a few heavy
// vertices dominate the objective. Each grid point also runs the
// unweighted twin of the instance as a control: there the weighted and
// cardinality code paths must coincide exactly.

import (
	"fmt"
	"math"
	"math/rand"

	"pslocal/internal/graph"
	"pslocal/internal/maxis"
)

// paretoWeights draws n integer weights from a Pareto(alpha) tail, clamped
// to [1, graph.MaxWeight]. Small alpha gives heavier tails.
func paretoWeights(n int, alpha float64, rng *rand.Rand) []int64 {
	ws := make([]int64, n)
	for i := range ws {
		u := rng.Float64()
		if u < 1e-12 {
			u = 1e-12
		}
		w := int64(math.Ceil(math.Pow(u, -1/alpha)))
		if w < 1 {
			w = 1
		}
		if w > graph.MaxWeight {
			w = graph.MaxWeight
		}
		ws[i] = w
	}
	return ws
}

// E15WeightedOracles runs the weighted greedy oracle against the exact
// weighted branch-and-bound on G(n,p) instances with Pareto-distributed
// vertex weights, reporting the empirical weight ratio w(exact)/w(greedy).
// Every set must verify via VerifyWeighted, greedy must never beat the
// optimum, and on the unweighted control rows the weighted ratio must
// equal the cardinality ratio (unit weights take the cardinality paths).
func E15WeightedOracles(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   "weighted greedy vs exact on power-law weights",
		Claim:   "weighted greedy verifies and stays within the exact weighted optimum; unit weights reproduce the cardinality objective",
		Columns: []string{"n", "p", "alpha", "weighted", "w(greedy)", "w(exact)", "ratio", "ok"},
		Notes: []string{
			"alpha: Pareto tail exponent of the weight distribution (\"-\" = unweighted control row)",
			"ratio: w(exact)/w(greedy), the empirical weighted approximation factor",
		},
	}
	type point struct {
		n     int
		p     float64
		alpha float64
	}
	grid := []point{
		{14, 0.2, 1.1}, {14, 0.4, 1.1},
		{16, 0.3, 1.5}, {18, 0.2, 2.0},
	}
	if cfg.Quick {
		grid = []point{{12, 0.3, 1.1}, {14, 0.2, 2.0}}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 70))
	var firstErr error
	fail := func(format string, args ...any) {
		if firstErr == nil {
			firstErr = fmt.Errorf("experiments: E15 "+format, args...)
		}
	}
	for _, pt := range grid {
		base := graph.GnP(pt.n, pt.p, rng)
		wg, err := graph.WithWeights(base, paretoWeights(pt.n, pt.alpha, rng))
		if err != nil {
			return nil, fmt.Errorf("experiments: E15 weights: %w", err)
		}
		// One unweighted control row, then the weighted row proper.
		for _, g := range []*graph.Graph{base, wg} {
			greedy := maxis.GreedyWeighted(g)
			exact, err := maxis.Exact(g)
			if err != nil {
				return nil, fmt.Errorf("experiments: E15 exact at n=%d p=%.2f: %w", pt.n, pt.p, err)
			}
			gw := maxis.SetWeight(g, greedy)
			ew := maxis.SetWeight(g, exact)
			ok := maxis.VerifyWeighted(g, greedy, gw) == nil &&
				maxis.VerifyWeighted(g, exact, ew) == nil &&
				gw <= ew
			if !g.Weighted() && int64(len(exact)) != ew {
				ok = false // unit weights must reduce to cardinality
			}
			if !ok {
				fail("failed at n=%d p=%.2f weighted=%v", pt.n, pt.p, g.Weighted())
			}
			alpha := "-"
			if g.Weighted() {
				alpha = ftoa(pt.alpha)
			}
			t.AddRow(itoa(pt.n), ftoa(pt.p), alpha, btoa(g.Weighted()),
				itoa(int(gw)), itoa(int(ew)), ftoa(float64(ew)/float64(gw)), btoa(ok))
		}
	}
	return t, firstErr
}

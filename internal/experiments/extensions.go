package experiments

// extensions.go covers the extension systems beyond the paper's minimal
// statement: the fully distributed (LOCAL, randomized) reduction pipeline
// built on the "G_k can be simulated in H" remark, and the sibling
// P-SLOCAL-complete problems the paper lists (dominating set / set cover
// approximation, weak splitting) plus the decomposition-derandomized
// colouring.

import (
	"fmt"
	"math/rand"

	"pslocal/internal/core"
	"pslocal/internal/domset"
	"pslocal/internal/graph"
	"pslocal/internal/hypergraph"
	"pslocal/internal/slocal"
	"pslocal/internal/splitting"
	"pslocal/internal/verify"
)

// E11DistributedPipeline runs the randomized LOCAL-model reduction: Luby
// MIS over the implicit conflict graph, simulated on H's incidence
// structure, per phase.
func E11DistributedPipeline(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "distributed pipeline: virtual Luby over the implicit G_k",
		Claim:   "the LOCAL-simulated pipeline outputs conflict-free multicolourings with O(m) host rounds",
		Columns: []string{"n", "m", "k", "phases", "virtual rounds", "host rounds", "CF", "ok"},
		Notes: []string{
			"an MIS of G_k is an independent set but not a MaxIS approximation — the paper's point; phase counts here are empirical",
		},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 40))
	grid := [][3]int{{15, 30, 2}, {20, 50, 3}}
	if cfg.Quick {
		grid = grid[:1]
	}
	var firstErr error
	for _, gmk := range grid {
		n, m, k := gmk[0], gmk[1], gmk[2]
		h, _, err := hypergraph.PlantedCF(n, m, k, 3, 5, rng)
		if err != nil {
			return nil, fmt.Errorf("experiments: E11 generator: %w", err)
		}
		res, err := core.ReduceLocalRandomized(cfg.Engine.Ctx, h, k, cfg.Seed+int64(m))
		if err != nil {
			return nil, fmt.Errorf("experiments: E11 pipeline: %w", err)
		}
		cf := verify.ConflictFreeMulti(h, res.Multicoloring) == nil
		roundsOK := res.HostRounds == core.HostDilation*res.VirtualRounds && res.VirtualRounds > 0
		ok := cf && roundsOK
		if !ok && firstErr == nil {
			firstErr = fmt.Errorf("experiments: E11 failed at m=%d", m)
		}
		t.AddRow(itoa(n), itoa(m), itoa(k), itoa(len(res.Phases)),
			itoa(res.VirtualRounds), itoa(res.HostRounds), btoa(cf), btoa(ok))
	}
	return t, firstErr
}

// E12CompleteSiblings exercises the other P-SLOCAL-complete problems the
// paper lists: greedy dominating set within the ln-bound of the true
// optimum, weak splitting via Moser–Tardos, and decomposition-
// derandomized (Δ+1)-colouring.
func E12CompleteSiblings(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "P-SLOCAL-complete siblings (paper Section 1 list)",
		Claim:   "greedy DS <= (ln(Δ+1)+1)·γ; Moser–Tardos splits; decomposition colouring proper with <= Δ+1 colours",
		Columns: []string{"problem", "instance", "result", "bound", "ok"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 41))
	var firstErr error
	fail := func(format string, args ...any) {
		if firstErr == nil {
			firstErr = fmt.Errorf("experiments: E12 "+format, args...)
		}
	}

	// Dominating set: greedy vs exact (via the set-cover view) on small
	// graphs where the exact solver is feasible. A slice, not a map: row
	// order must be deterministic for the rendered table.
	dsGraphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp(24,.15)", graph.GnP(24, 0.15, rng)},
		{"grid(4x5)", graph.Grid(4, 5)},
	}
	for _, in := range dsGraphs {
		name, g := in.name, in.g
		greedy, err := domset.GreedyDominatingSet(g)
		if err != nil {
			return nil, fmt.Errorf("experiments: E12 greedy DS: %w", err)
		}
		if err := domset.VerifyDominating(g, greedy); err != nil {
			fail("greedy DS invalid on %s: %v", name, err)
		}
		exact, err := domset.ExactSetCover(domset.DominationInstance(g))
		if err != nil {
			return nil, fmt.Errorf("experiments: E12 exact DS: %w", err)
		}
		bound := domset.LnBound(g.MaxDegree()) * float64(len(exact))
		ok := float64(len(greedy)) <= bound+1e-9
		if !ok {
			fail("greedy DS ratio broken on %s", name)
		}
		t.AddRow("dominating set", name,
			fmt.Sprintf("greedy %d vs γ=%d", len(greedy), len(exact)), ftoa(bound), btoa(ok))
	}

	// Weak splitting in the LLL regime.
	hs, err := hypergraph.Uniform(40, 30, 4, rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: E12 splitting generator: %w", err)
	}
	colours, err := splitting.MoserTardos(hs, rng, 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: E12 splitting: %w", err)
	}
	splitOK := splitting.Verify(hs, colours) == nil
	if !splitOK {
		fail("splitting invalid")
	}
	t.AddRow("weak splitting", "uniform(40,30,4)", "split found", "no mono edge", btoa(splitOK))

	// Decomposition-derandomized colouring.
	g := graph.GnP(60, 0.1, rng)
	d, err := slocal.NetworkDecomposition(g, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: E12 decomposition: %w", err)
	}
	cols, err := slocal.DecompositionColouring(g, d)
	if err != nil {
		return nil, fmt.Errorf("experiments: E12 colouring: %w", err)
	}
	colourOK := verify.ProperColoring(g, cols) == nil
	maxC := int32(0)
	for _, c := range cols {
		if c > maxC {
			maxC = c
		}
	}
	if int(maxC) > g.MaxDegree()+1 {
		colourOK = false
	}
	if !colourOK {
		fail("decomposition colouring broken")
	}
	t.AddRow("(Δ+1)-colouring", "gnp(60,.1)",
		fmt.Sprintf("%d colours", maxC), fmt.Sprintf("Δ+1=%d", g.MaxDegree()+1), btoa(colourOK))

	return t, firstErr
}

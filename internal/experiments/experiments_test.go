package experiments

import (
	"strings"
	"testing"
)

// quickCfg keeps the grids small; the full grids run in the benchmark
// suite and via cmd/psctab.
var quickCfg = Config{Seed: 42, Quick: true}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:      "T",
		Title:   "demo",
		Claim:   "demo claim",
		Columns: []string{"a", "long-column"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatalf("Render error: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"T — demo", "claim: demo claim", "long-column", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAllExperimentsHoldOnQuickGrid(t *testing.T) {
	tables, err := AllTables(quickCfg)
	if err != nil {
		t.Fatalf("a paper claim failed: %v", err)
	}
	if len(tables) != 15 {
		t.Fatalf("got %d tables, want 15", len(tables))
	}
	ids := map[string]bool{}
	for _, tab := range tables {
		if tab.ID == "" || len(tab.Columns) == 0 || len(tab.Rows) == 0 {
			t.Errorf("table %q is empty", tab.ID)
		}
		if ids[tab.ID] {
			t.Errorf("duplicate table id %q", tab.ID)
		}
		ids[tab.ID] = true
		for _, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Errorf("table %s: row width %d != %d columns", tab.ID, len(row), len(tab.Columns))
			}
		}
	}
}

func TestAllFiguresHoldOnQuickGrid(t *testing.T) {
	figs, err := AllFigures(quickCfg)
	if err != nil {
		t.Fatalf("a figure claim failed: %v", err)
	}
	if len(figs) != 3 {
		t.Fatalf("got %d figures, want 3", len(figs))
	}
}

func TestAllAblationsHoldOnQuickGrid(t *testing.T) {
	abl, err := AllAblations(quickCfg)
	if err != nil {
		t.Fatalf("an ablation claim failed: %v", err)
	}
	if len(abl) != 3 {
		t.Fatalf("got %d ablations, want 3", len(abl))
	}
}

func TestE13RespectsConfigOracle(t *testing.T) {
	cfg := quickCfg
	cfg.Oracle = "portfolio:greedy-mindeg,clique-removal"
	tab, err := E13PortfolioPhases(cfg)
	if err != nil {
		t.Fatalf("E13 with custom portfolio: %v", err)
	}
	if got := len(tab.Rows); got != 3 { // two members + the portfolio
		t.Fatalf("got %d rows, want 3", got)
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[2] != cfg.Oracle {
		t.Errorf("portfolio row names %q, want %q", last[2], cfg.Oracle)
	}
	cfg.Oracle = "greedy-mindeg" // not a portfolio name
	if _, err := E13PortfolioPhases(cfg); err == nil {
		t.Error("non-portfolio Config.Oracle accepted")
	}
}

func TestExperimentsAreDeterministicPerSeed(t *testing.T) {
	a, err := E4PhaseDecay(quickCfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := E4PhaseDecay(quickCfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Errorf("row %d col %d differs: %q vs %q", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}

package experiments

// kernels.go implements E14, the bitset-kernel experiment: the
// word-parallel oracle kernels against their adjacency-list twins on
// conflict graphs from both sides of the density cutoff. Crowded planted
// instances (few vertices, heavy edge overlap) produce dense G_k where
// the kernels engage; spread instances stay below the cutoff, where the
// bitset oracle must be bit-identical to the list oracle it falls back
// to.

import (
	"fmt"
	"math/rand"

	"pslocal/internal/core"
	"pslocal/internal/hypergraph"
	"pslocal/internal/maxis"
)

// E14BitsetKernels runs the min-degree list oracle and its bitset twin on
// a grid of conflict graphs spanning the density cutoff. Every output
// must verify; on sub-cutoff instances the twin oracles must agree
// element for element (the bitset oracle routes to the list kernel
// there), and the grid must exercise both regimes.
func E14BitsetKernels(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "bitset kernels vs adjacency-list oracles",
		Claim:   "kernel outputs verify on both sides of the density cutoff; below it the bitset oracle equals greedy-mindeg",
		Columns: []string{"n", "m", "k", "|V(G_k)|", "kernel", "oracle", "|I|", "ok"},
		Notes: []string{
			"kernel=yes: G_k cleared the density cutoff and the bitset rows are in use",
			"above the cutoff |I| may differ between the twins: the dense kernel breaks degree ties by id",
		},
	}
	// Crowded instances (15 vertices, long edges) put G_k above the
	// cutoff; the spread instances (short edges over many vertices, so
	// cliques are small and overlaps rare) stay below it.
	grid := [][5]int{
		{15, 40, 2, 4, 6},  // dense: heavy overlap on few vertices
		{15, 60, 2, 4, 6},  // dense, larger
		{120, 24, 2, 3, 4}, // sparse spread instance
		{300, 40, 3, 3, 4}, // sparse, larger
	}
	if cfg.Quick {
		grid = [][5]int{{15, 24, 2, 4, 6}, {120, 24, 2, 3, 4}}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 60))
	var firstErr error
	fail := func(format string, args ...any) {
		if firstErr == nil {
			firstErr = fmt.Errorf("experiments: E14 "+format, args...)
		}
	}
	sawDense, sawSparse := false, false
	for _, gr := range grid {
		n, m, k := gr[0], gr[1], gr[2]
		h, _, err := hypergraph.PlantedCF(n, m, k, gr[3], gr[4], rng)
		if err != nil {
			return nil, fmt.Errorf("experiments: E14 generator: %w", err)
		}
		ix, err := core.NewIndex(h, k)
		if err != nil {
			return nil, fmt.Errorf("experiments: E14 index: %w", err)
		}
		g, err := core.BuildOpts(ix, cfg.Engine)
		if err != nil {
			return nil, fmt.Errorf("experiments: E14 build: %w", err)
		}
		dense := maxis.NewDense(g) != nil
		if dense {
			sawDense = true
		} else {
			sawSparse = true
		}

		list := maxis.GreedyMinDegree(g)
		bitset := maxis.GreedyMinDegreeBitset(g)
		listOK := maxis.IsIndependentSet(g, list)
		bitsetOK := maxis.IsIndependentSet(g, bitset)
		agree := true
		if !dense {
			agree = len(list) == len(bitset)
			for i := 0; agree && i < len(list); i++ {
				agree = list[i] == bitset[i]
			}
		}
		if !listOK || !bitsetOK {
			fail("oracle output failed verification at n=%d m=%d k=%d", n, m, k)
		}
		if !agree {
			fail("sparse fallback diverged from greedy-mindeg at n=%d m=%d k=%d", n, m, k)
		}
		kernel := btoa(dense)
		t.AddRow(itoa(n), itoa(m), itoa(k), itoa(g.N()), kernel,
			"greedy-mindeg", itoa(len(list)), btoa(listOK))
		t.AddRow(itoa(n), itoa(m), itoa(k), itoa(g.N()), kernel,
			"greedy-mindeg-bitset", itoa(len(bitset)), btoa(bitsetOK && agree))
	}
	if !sawDense || !sawSparse {
		fail("grid missed a density regime: dense=%v sparse=%v", sawDense, sawSparse)
	}
	return t, firstErr
}

package experiments

// figures.go renders the figure-equivalent value series F1–F3 of DESIGN.md
// Section 4 as tables (one row per x-value).

import (
	"fmt"
	"math"
	"math/rand"

	"pslocal/internal/core"
	"pslocal/internal/graph"
	"pslocal/internal/hypergraph"
	"pslocal/internal/maxis"
	"pslocal/internal/slocal"
)

// F1DecayCurve plots |E_i| per phase against the paper's geometric
// envelope m·(1−1/λ̂)^{i−1}.
func F1DecayCurve(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "F1",
		Title:   "residual edges per reduction phase (random-order greedy oracle)",
		Claim:   "|E_i| stays below the m·(1−1/λ̂)^{i−1} envelope of Theorem 1.1",
		Columns: []string{"phase", "|E_i|", "|I_i|", "removed", "envelope", "below"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 20))
	m := 80
	if cfg.Quick {
		m = 30
	}
	// A crowded instance — many edges over few vertices — forces the
	// oracle below α and produces a multi-phase decay curve; the planted
	// colouring keeps α(G_k(H_i)) = |E_i| so λ̂ is a genuine ratio.
	h, _, err := hypergraph.PlantedCF(15, m, 2, 4, 6, rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: F1 generator: %w", err)
	}
	res, err := core.Reduce(nil, h, core.Options{
		K:    2,
		Mode: core.ModeOracle, Oracle: &maxis.RandomOrderOracle{Seed: cfg.Seed + 5},
		Engine: cfg.Engine,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: F1 reduce: %w", err)
	}
	maxLambda := 1.0
	for _, ph := range res.Phases {
		if l := float64(ph.EdgesBefore) / float64(ph.ISSize); l > maxLambda {
			maxLambda = l
		}
	}
	var firstErr error
	for i, ph := range res.Phases {
		envelope := float64(h.M()) * math.Pow(1-1/maxLambda, float64(i))
		below := float64(ph.EdgesBefore) <= envelope+1e-9
		if !below && firstErr == nil {
			firstErr = fmt.Errorf("experiments: F1 envelope broken at phase %d", ph.Phase)
		}
		t.AddRow(itoa(ph.Phase), itoa(ph.EdgesBefore), itoa(ph.ISSize),
			itoa(ph.HappyRemoved), ftoa(envelope), btoa(below))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("λ̂ = %.3f (worst per-phase ratio)", maxLambda))
	return t, firstErr
}

// F2LocalityHistogram shows the distribution of carve radii used by the
// containment algorithm (experiment E6's locality, disaggregated).
func F2LocalityHistogram(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "F2",
		Title:   "ball-carving radius histogram (δ = 0.5)",
		Claim:   "all radii stay below ceil(log_{1+δ} n)+1",
		Columns: []string{"radius", "regions", "within bound"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 21))
	n := 120
	if cfg.Quick {
		n = 50
	}
	g := graph.GnP(n, 3.0/float64(n), rng)
	res, err := slocal.BallCarvingMaxIS(g, slocal.CarvingOptions{Delta: 0.5})
	if err != nil {
		return nil, fmt.Errorf("experiments: F2 carving: %w", err)
	}
	hist := map[int]int{}
	maxR := 0
	for _, region := range res.Regions {
		hist[region.Radius]++
		if region.Radius > maxR {
			maxR = region.Radius
		}
	}
	var firstErr error
	for r := 0; r <= maxR; r++ {
		if hist[r] == 0 {
			continue
		}
		within := r+1 <= res.RadiusBound
		if !within && firstErr == nil {
			firstErr = fmt.Errorf("experiments: F2 radius %d beyond bound %d", r, res.RadiusBound)
		}
		t.AddRow(itoa(r), itoa(hist[r]), btoa(within))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("n=%d regions=%d locality=%d bound=%d", n, len(res.Regions), res.Locality, res.RadiusBound))
	return t, firstErr
}

// F3LambdaVsDensity sweeps G(n,p) density and reports each heuristic
// oracle's empirical λ, the series behind experiment E7.
func F3LambdaVsDensity(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "F3",
		Title:   "empirical λ vs edge density (G(50, p))",
		Claim:   "heuristic λ grows mildly with density and stays >= 1",
		Columns: []string{"p", "α", "λ mindeg", "λ firstfit", "λ clique-removal"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 22))
	ps := []float64{0.05, 0.1, 0.2, 0.3}
	if cfg.Quick {
		ps = []float64{0.05, 0.2}
	}
	n := 50
	var firstErr error
	for _, p := range ps {
		g := graph.GnP(n, p, rng)
		opt, err := maxis.Exact(g)
		if err != nil {
			return nil, fmt.Errorf("experiments: F3 exact p=%v: %w", p, err)
		}
		row := []string{ftoa(p), itoa(len(opt))}
		for _, o := range []maxis.Oracle{
			maxis.MinDegreeOracle{}, maxis.FirstFitOracle{}, maxis.CliqueRemovalOracle{},
		} {
			set, err := o.Solve(g)
			if err != nil {
				return nil, fmt.Errorf("experiments: F3 %s: %w", o.Name(), err)
			}
			lambda, err := maxis.Ratio(len(opt), len(set))
			if err != nil {
				return nil, fmt.Errorf("experiments: F3 ratio: %w", err)
			}
			if lambda < 1-1e-9 && firstErr == nil {
				firstErr = fmt.Errorf("experiments: F3 λ < 1 for %s", o.Name())
			}
			row = append(row, ftoa(lambda))
		}
		t.AddRow(row...)
	}
	return t, firstErr
}

// AllFigures runs F1..F3 in order.
func AllFigures(cfg Config) ([]*Table, error) {
	funcs := []func(Config) (*Table, error){F1DecayCurve, F2LocalityHistogram, F3LambdaVsDensity}
	tables := make([]*Table, 0, len(funcs))
	for _, f := range funcs {
		tab, err := f(cfg)
		if err != nil {
			return tables, err
		}
		tables = append(tables, tab)
	}
	return tables, nil
}

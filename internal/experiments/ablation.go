package experiments

// ablation.go measures the design choices DESIGN.md Section 5 calls out:
// implicit vs explicit conflict-graph solving, the clique-partition bound,
// and processing-order sensitivity of the first-fit reduction.

import (
	"fmt"
	"math/rand"

	"pslocal/internal/core"
	"pslocal/internal/hypergraph"
	"pslocal/internal/maxis"
)

// A1ImplicitVsExplicit checks that the implicit first-fit reduction and
// the explicit-graph first-fit reduction produce identical phase
// structures (they run the same greedy; the modes differ only in where
// adjacency comes from).
func A1ImplicitVsExplicit(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "A1",
		Title:   "ablation: implicit vs explicit conflict graph",
		Claim:   "first-fit over the implicit G_k equals first-fit over the materialised G_k",
		Columns: []string{"m", "k", "phases impl", "phases expl", "colours impl", "colours expl", "ok"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 30))
	grid := [][2]int{{10, 2}, {18, 3}}
	if !cfg.Quick {
		grid = append(grid, [2]int{26, 3})
	}
	var firstErr error
	for _, gm := range grid {
		m, k := gm[0], gm[1]
		h, _, err := hypergraph.PlantedCF(3*m, m, k, 3, 5, rng)
		if err != nil {
			return nil, fmt.Errorf("experiments: A1 generator: %w", err)
		}
		impl, err := core.Reduce(nil, h, core.Options{K: k, Mode: core.ModeImplicitFirstFit, Engine: cfg.Engine})
		if err != nil {
			return nil, fmt.Errorf("experiments: A1 implicit: %w", err)
		}
		expl, err := core.Reduce(nil, h, core.Options{K: k, Mode: core.ModeOracle, Oracle: maxis.FirstFitOracle{}, Engine: cfg.Engine})
		if err != nil {
			return nil, fmt.Errorf("experiments: A1 explicit: %w", err)
		}
		ok := len(impl.Phases) == len(expl.Phases) && impl.TotalColors == expl.TotalColors
		for i := range impl.Phases {
			if ok && (impl.Phases[i].ISSize != expl.Phases[i].ISSize ||
				impl.Phases[i].HappyRemoved != expl.Phases[i].HappyRemoved) {
				ok = false
			}
		}
		if !ok && firstErr == nil {
			firstErr = fmt.Errorf("experiments: A1 divergence at m=%d k=%d", m, k)
		}
		t.AddRow(itoa(m), itoa(k), itoa(len(impl.Phases)), itoa(len(expl.Phases)),
			itoa(impl.TotalColors), itoa(expl.TotalColors), btoa(ok))
	}
	return t, firstErr
}

// A2CliqueBound checks that the per-edge clique hint never changes the
// exact optimum (it only prunes the search).
func A2CliqueBound(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "A2",
		Title:   "ablation: exact solver clique-partition bound",
		Claim:   "the E_edge clique hint changes running time, never α",
		Columns: []string{"m", "k", "α hinted", "α plain", "ok"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 31))
	grid := [][2]int{{8, 2}, {12, 3}}
	if !cfg.Quick {
		grid = append(grid, [2]int{16, 3})
	}
	var firstErr error
	for _, gm := range grid {
		m, k := gm[0], gm[1]
		h, _, err := hypergraph.PlantedCF(3*m, m, k, 3, 5, rng)
		if err != nil {
			return nil, fmt.Errorf("experiments: A2 generator: %w", err)
		}
		ix, err := core.NewIndex(h, k)
		if err != nil {
			return nil, fmt.Errorf("experiments: A2 index: %w", err)
		}
		g, err := core.BuildOpts(ix, cfg.Engine)
		if err != nil {
			return nil, fmt.Errorf("experiments: A2 build: %w", err)
		}
		hinted, err := maxis.ExactOpts(g, maxis.ExactOptions{CliqueHint: ix.EdgeCliqueHint()})
		if err != nil {
			return nil, fmt.Errorf("experiments: A2 hinted: %w", err)
		}
		plain, err := maxis.Exact(g)
		if err != nil {
			return nil, fmt.Errorf("experiments: A2 plain: %w", err)
		}
		ok := len(hinted) == len(plain)
		if !ok && firstErr == nil {
			firstErr = fmt.Errorf("experiments: A2 α differs: %d vs %d", len(hinted), len(plain))
		}
		t.AddRow(itoa(m), itoa(k), itoa(len(hinted)), itoa(len(plain)), btoa(ok))
	}
	return t, firstErr
}

// A3OrderSensitivity measures how the processing order changes the phase
// count of the first-fit reduction (the SLOCAL model allows an arbitrary,
// even adversarial, order).
func A3OrderSensitivity(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "A3",
		Title:   "ablation: reduction sensitivity to oracle randomisation",
		Claim:   "phase counts vary across random greedy orders but all outputs are conflict-free",
		Columns: []string{"trial", "phases", "colours", "CF"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 32))
	m := 20
	if cfg.Quick {
		m = 10
	}
	h, _, err := hypergraph.PlantedCF(3*m, m, 3, 3, 5, rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: A3 generator: %w", err)
	}
	trials := 4
	if cfg.Quick {
		trials = 2
	}
	var firstErr error
	for trial := 0; trial < trials; trial++ {
		res, err := core.Reduce(nil, h, core.Options{
			K:    3,
			Mode: core.ModeOracle, Oracle: &maxis.RandomOrderOracle{Seed: cfg.Seed + int64(trial)},
			Engine: cfg.Engine,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: A3 trial %d: %w", trial, err)
		}
		cf := res.Multicoloring.NumDistinctColors() <= res.TotalColors
		if !cf && firstErr == nil {
			firstErr = fmt.Errorf("experiments: A3 trial %d inconsistent", trial)
		}
		t.AddRow(itoa(trial), itoa(len(res.Phases)), itoa(res.TotalColors), btoa(cf))
	}
	return t, firstErr
}

// AllAblations runs A1..A3 in order.
func AllAblations(cfg Config) ([]*Table, error) {
	funcs := []func(Config) (*Table, error){A1ImplicitVsExplicit, A2CliqueBound, A3OrderSensitivity}
	tables := make([]*Table, 0, len(funcs))
	for _, f := range funcs {
		tab, err := f(cfg)
		if err != nil {
			return tables, err
		}
		tables = append(tables, tab)
	}
	return tables, nil
}

package solver

// bench_test.go proves the zero-allocation serve path: a cache-hit
// read — body buffering, content hashing, key lookup, Instance fill —
// allocates nothing. BenchmarkSolverCacheHitAllocs is recorded into
// BENCH_gk.json by scripts/bench.sh and guarded by the benchmerge
// allocation gate; TestCacheHitReadAllocatesNothing enforces the same
// line in every `go test` run.

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"pslocal/internal/graph"
	"pslocal/internal/graphio"
	"pslocal/internal/obs"
)

// benchGraphBody serialises a moderately dense graph as edge-list bytes.
func benchGraphBody(tb testing.TB, n int, p float64) []byte {
	tb.Helper()
	rng := rand.New(rand.NewSource(9))
	var buf bytes.Buffer
	if err := graphio.WriteGraph(&buf, graph.GnP(n, p, rng), graphio.FormatEdgeList); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func BenchmarkSolverCacheHitAllocs(b *testing.B) {
	s := New(WithCache(8))
	body := benchGraphBody(b, 256, 0.3)
	r := bytes.NewReader(body)
	var inst Instance
	if _, _, err := s.readGraphInto(context.Background(), r, graphio.FormatEdgeList, &inst, ""); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(body)
		if _, _, err := s.readGraphInto(context.Background(), r, graphio.FormatEdgeList, &inst, ""); err != nil {
			b.Fatal(err)
		}
	}
	if !inst.CacheHit {
		b.Fatal("expected a cache hit")
	}
}

// benchWeightedGraphBody is benchGraphBody with a skewed weight vector,
// so the cache-hit and serve-path lines are also held on weighted bodies
// (weights live in the body bytes, so the sha256 key covers them for
// free — the read path must stay allocation-identical).
func benchWeightedGraphBody(tb testing.TB, n int, p float64) []byte {
	tb.Helper()
	rng := rand.New(rand.NewSource(9))
	ws := make([]int64, n)
	for i := range ws {
		ws[i] = 1 + rng.Int63n(1<<20)
	}
	g, err := graph.WithWeights(graph.GnP(n, p, rng), ws)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := graphio.WriteGraph(&buf, g, graphio.FormatEdgeList); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkSolverCacheHitAllocsWeighted holds the zero-allocation line on
// weighted bodies; the bench.sh alloc gate matches it by substring.
func BenchmarkSolverCacheHitAllocsWeighted(b *testing.B) {
	s := New(WithCache(8))
	body := benchWeightedGraphBody(b, 256, 0.3)
	r := bytes.NewReader(body)
	var inst Instance
	if _, _, err := s.readGraphInto(context.Background(), r, graphio.FormatEdgeList, &inst, ""); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(body)
		if _, _, err := s.readGraphInto(context.Background(), r, graphio.FormatEdgeList, &inst, ""); err != nil {
			b.Fatal(err)
		}
	}
	if !inst.CacheHit {
		b.Fatal("expected a cache hit")
	}
	if !inst.Weighted() {
		b.Fatal("expected a weighted instance")
	}
}

// BenchmarkSolverMaxISReaderHot is the end-to-end serve path on a hot
// instance — read, hash, hit, inject the cached dense pack, solve. The
// solve itself allocates (the result set), so this tracks total per-hit
// cost rather than the zero line.
func BenchmarkSolverMaxISReaderHot(b *testing.B) {
	s := New(WithCache(8), WithOracle("greedy-mindeg-bitset"))
	body := benchGraphBody(b, 256, 0.3)
	ctx := context.Background()
	if _, _, err := s.MaxISReader(ctx, bytes.NewReader(body), graphio.FormatEdgeList); err != nil {
		b.Fatal(err)
	}
	r := bytes.NewReader(body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(body)
		if _, _, err := s.MaxISReader(ctx, r, graphio.FormatEdgeList); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverMaxISReaderHotWeighted is the serve path on a hot
// weighted instance: same read/hash/hit pipeline, weighted greedy solve.
func BenchmarkSolverMaxISReaderHotWeighted(b *testing.B) {
	s := New(WithCache(8), WithOracle("greedy-mindeg-bitset"))
	body := benchWeightedGraphBody(b, 256, 0.3)
	ctx := context.Background()
	if _, _, err := s.MaxISReader(ctx, bytes.NewReader(body), graphio.FormatEdgeList); err != nil {
		b.Fatal(err)
	}
	r := bytes.NewReader(body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(body)
		if _, _, err := s.MaxISReader(ctx, r, graphio.FormatEdgeList); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCacheHitReadAllocatesNothing pins the zero-alloc contract with
// AllocsPerRun, so a regression fails `go test` rather than waiting for a
// benchmark diff.
func TestCacheHitReadAllocatesNothing(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the zero line is checked in the non-race run")
	}
	s := New(WithCache(8))
	body := benchGraphBody(t, 64, 0.3)
	r := bytes.NewReader(body)
	var inst Instance
	if _, _, err := s.readGraphInto(context.Background(), r, graphio.FormatEdgeList, &inst, ""); err != nil {
		t.Fatal(err)
	}
	// Warm the scratch pool so steady state, not first touch, is measured.
	for i := 0; i < 4; i++ {
		r.Reset(body)
		if _, _, err := s.readGraphInto(context.Background(), r, graphio.FormatEdgeList, &inst, ""); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		r.Reset(body)
		if _, _, err := s.readGraphInto(context.Background(), r, graphio.FormatEdgeList, &inst, ""); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("cache-hit read allocates %.1f objects per op, want 0", allocs)
	}
	if !inst.CacheHit {
		t.Error("expected a cache hit")
	}
}

// TestWeightedCacheHitReadAllocatesNothing holds the same zero line on a
// weighted body: weights ride in the body bytes, so the hit path must not
// grow an allocation for them.
func TestWeightedCacheHitReadAllocatesNothing(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the zero line is checked in the non-race run")
	}
	s := New(WithCache(8))
	body := benchWeightedGraphBody(t, 64, 0.3)
	r := bytes.NewReader(body)
	var inst Instance
	if _, _, err := s.readGraphInto(context.Background(), r, graphio.FormatEdgeList, &inst, ""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		r.Reset(body)
		if _, _, err := s.readGraphInto(context.Background(), r, graphio.FormatEdgeList, &inst, ""); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		r.Reset(body)
		if _, _, err := s.readGraphInto(context.Background(), r, graphio.FormatEdgeList, &inst, ""); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("weighted cache-hit read allocates %.1f objects per op, want 0", allocs)
	}
	if !inst.CacheHit || !inst.Weighted() {
		t.Errorf("expected a weighted cache hit (hit=%v weighted=%v)", inst.CacheHit, inst.Weighted())
	}
}

// BenchmarkSolverCacheHitAllocsTraced is the cache-hit read with a live
// trace on the context: span recording rides the same zero line, so the
// bench.sh alloc gate (matching SolverCacheHitAllocs by substring) holds
// tracing to 0 allocs/op on the hot path.
func BenchmarkSolverCacheHitAllocsTraced(b *testing.B) {
	s := New(WithCache(8))
	body := benchGraphBody(b, 256, 0.3)
	r := bytes.NewReader(body)
	var inst Instance
	tr := obs.NewTrace("bench", "bench-req-id")
	ctx := obs.ContextWithTrace(context.Background(), tr)
	if _, _, err := s.readGraphInto(ctx, r, graphio.FormatEdgeList, &inst, ""); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Reset("bench", "bench-req-id")
		r.Reset(body)
		if _, _, err := s.readGraphInto(ctx, r, graphio.FormatEdgeList, &inst, ""); err != nil {
			b.Fatal(err)
		}
	}
	if !inst.CacheHit {
		b.Fatal("expected a cache hit")
	}
}

// TestTracedCacheHitReadAllocatesNothing pins the traced zero line with
// AllocsPerRun: recording read_hash/cache_lookup spans must not add an
// allocation over the untraced hit path.
func TestTracedCacheHitReadAllocatesNothing(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the zero line is checked in the non-race run")
	}
	s := New(WithCache(8))
	body := benchGraphBody(t, 64, 0.3)
	r := bytes.NewReader(body)
	var inst Instance
	tr := obs.NewTrace("alloc", "alloc-req-id")
	ctx := obs.ContextWithTrace(context.Background(), tr)
	if _, _, err := s.readGraphInto(ctx, r, graphio.FormatEdgeList, &inst, ""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		tr.Reset("alloc", "alloc-req-id")
		r.Reset(body)
		if _, _, err := s.readGraphInto(ctx, r, graphio.FormatEdgeList, &inst, ""); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		tr.Reset("alloc", "alloc-req-id")
		r.Reset(body)
		if _, _, err := s.readGraphInto(ctx, r, graphio.FormatEdgeList, &inst, ""); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("traced cache-hit read allocates %.1f objects per op, want 0", allocs)
	}
	if !inst.CacheHit {
		t.Error("expected a cache hit")
	}
	if snap := tr.Snapshot(); len(snap.Spans) == 0 {
		t.Error("trace recorded no spans on the hit path")
	}
}

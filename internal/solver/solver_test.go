package solver

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"pslocal/internal/core"
	"pslocal/internal/engine"
	"pslocal/internal/graph"
	"pslocal/internal/graphio"
	"pslocal/internal/hypergraph"
	"pslocal/internal/maxis"
	"pslocal/internal/verify"
)

// testInstance returns a small planted hypergraph and its serialized
// edge-list form.
func testInstance(t *testing.T, seed int64) (*hypergraph.Hypergraph, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	h, _, err := hypergraph.PlantedCF(24, 10, 2, 2, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := graphio.WriteHypergraph(&buf, h, graphio.FormatEdgeList); err != nil {
		t.Fatal(err)
	}
	return h, buf.Bytes()
}

func TestSolveModes(t *testing.T) {
	h, _ := testInstance(t, 1)
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"default implicit", nil},
		{"explicit mode", []Option{WithMode(core.ModeExactHinted)}},
		{"oracle exact spelling", []Option{WithOracle("exact")}},
		{"oracle implicit spelling", []Option{WithOracle("implicit")}},
		{"registry oracle", []Option{WithOracle("greedy-mindeg")}},
		{"portfolio", []Option{WithPortfolio("greedy-mindeg", "greedy-random"), WithWorkers(0)}},
	} {
		sv := New(append([]Option{WithK(2)}, tc.opts...)...)
		res, err := sv.Solve(context.Background(), h)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := verify.ReductionResult(h, res); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
		if err := verify.ConflictFreeMulti(h, res.Multicoloring); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

func TestSolveUnknownOracle(t *testing.T) {
	h, _ := testInstance(t, 1)
	if _, err := New(WithOracle("nonesuch")).Solve(context.Background(), h); !errors.Is(err, maxis.ErrUnknownOracle) {
		t.Errorf("error = %v, want ErrUnknownOracle", err)
	}
	if _, err := New(WithOracle("nonesuch")).MaxIS(context.Background(), graph.Cycle(5)); !errors.Is(err, maxis.ErrUnknownOracle) {
		t.Errorf("MaxIS error = %v, want ErrUnknownOracle", err)
	}
}

func TestMaxISOracleAndCarving(t *testing.T) {
	g := graph.Cycle(24)
	res, err := New().MaxIS(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Oracle != "greedy-mindeg" || len(res.Set) == 0 {
		t.Errorf("oracle result %+v", res)
	}
	if err := verify.IndependentSet(g, res.Set); err != nil {
		t.Error(err)
	}

	carved, err := New(WithCarving(1.0)).MaxIS(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if carved.Locality < 1 || carved.RadiusBound < carved.Locality {
		t.Errorf("carving locality %d outside [1, %d]", carved.Locality, carved.RadiusBound)
	}
	if err := verify.IndependentSet(g, carved.Set); err != nil {
		t.Error(err)
	}
}

// TestParallelSolveSharedSolver hammers one Solver from many goroutines —
// the race detector (make race / CI) proves per-call oracle instantiation
// keeps concurrent solves independent even for the stateful portfolio.
func TestParallelSolveSharedSolver(t *testing.T) {
	h, body := testInstance(t, 2)
	sv := New(
		WithK(2),
		WithPortfolio("greedy-mindeg", "greedy-random", "clique-removal"),
		WithWorkers(0),
		WithCache(8),
		WithMaxInflight(4),
	)
	const callers = 8
	var wg sync.WaitGroup
	errs := make(chan error, 2*callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := sv.Solve(context.Background(), h)
			if err != nil {
				errs <- err
				return
			}
			if err := verify.ConflictFreeMulti(h, res.Multicoloring); err != nil {
				errs <- err
			}
			if _, _, err := sv.SolveReader(context.Background(), bytes.NewReader(body), graphio.FormatAuto); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := sv.InFlight(); got != 0 {
		t.Errorf("InFlight after quiescence = %d, want 0", got)
	}
}

// TestCacheCountersExact pins the cache bookkeeping: N submissions of one
// body are exactly 1 miss and N-1 hits, and a second body occupies a
// second entry.
func TestCacheCountersExact(t *testing.T) {
	_, body := testInstance(t, 3)
	_, body2 := testInstance(t, 4)
	sv := New(WithK(2), WithCache(4))
	const n = 5
	for i := 0; i < n; i++ {
		res, inst, err := sv.SolveReader(context.Background(), bytes.NewReader(body), graphio.FormatAuto)
		if err != nil {
			t.Fatal(err)
		}
		if res == nil || inst.Kind != "hypergraph" {
			t.Fatalf("submission %d: result %v instance %+v", i, res, inst)
		}
		if wantHit := i > 0; inst.CacheHit != wantHit {
			t.Errorf("submission %d: CacheHit = %v, want %v", i, inst.CacheHit, wantHit)
		}
	}
	if _, _, err := sv.SolveReader(context.Background(), bytes.NewReader(body2), graphio.FormatAuto); err != nil {
		t.Fatal(err)
	}
	stats := sv.CacheStats()
	if stats.Hits != n-1 || stats.Misses != 2 || stats.Entries != 2 || stats.Evictions != 0 {
		t.Errorf("stats = %+v, want %d hits, 2 misses, 2 entries, 0 evictions", stats, n-1)
	}
}

// TestWithSharesCacheAndGate pins the With contract: derived solvers hit
// the originating solver's cache and occupy its gate.
func TestWithSharesCacheAndGate(t *testing.T) {
	_, body := testInstance(t, 5)
	base := New(WithK(2), WithCache(4), WithMaxInflight(3))
	if _, _, err := base.SolveReader(context.Background(), bytes.NewReader(body), graphio.FormatAuto); err != nil {
		t.Fatal(err)
	}
	derived := base.With(WithOracle("greedy-mindeg"), WithSeed(9), WithCache(999), WithMaxInflight(999))
	_, inst, err := derived.SolveReader(context.Background(), bytes.NewReader(body), graphio.FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.CacheHit {
		t.Error("derived solver missed the shared cache")
	}
	if derived.MaxInFlight() != 3 {
		t.Errorf("derived MaxInFlight = %d, want the base gate's 3", derived.MaxInFlight())
	}
	if base.CacheStats().Hits != 1 {
		t.Errorf("base cache stats = %+v, want the derived hit recorded", base.CacheStats())
	}

	// Gate slots are counted jointly: a solve held open on the derived
	// solver occupies the base solver's gate (and vice versa), which is
	// what lets one server-wide admission bound govern every per-request
	// derivation.
	h, _ := testInstance(t, 5)
	blocked := base.With(WithOracle(blockingName()), WithWorkers(2))
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := blocked.Solve(ctx, h)
		errc <- err
	}()
	select {
	case <-blockInstance.started:
	case <-time.After(5 * time.Second):
		t.Fatal("derived solve never started")
	}
	if base.InFlight() != 1 || derived.InFlight() != 1 || blocked.InFlight() != 1 {
		t.Errorf("in-flight counts base=%d derived=%d blocked=%d, want 1 everywhere (one shared gate)",
			base.InFlight(), derived.InFlight(), blocked.InFlight())
	}
	cancel()
	if err := <-errc; !errors.Is(err, ErrCancelled) {
		t.Errorf("blocked solve error = %v, want ErrCancelled", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for base.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("gate slot never released after cancellation")
		}
		time.Sleep(time.Millisecond)
	}
}

// blockingOracle parks Solve until its context (delivered through
// SetEngine by the reduction) is cancelled.
type blockingOracle struct {
	mu      sync.Mutex
	eng     engine.Options
	started chan struct{}
}

func (o *blockingOracle) Name() string { return "solver-test-block" }

func (o *blockingOracle) SetEngine(e engine.Options) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.eng = e
}

func (o *blockingOracle) Solve(*graph.Graph) ([]int32, error) {
	o.mu.Lock()
	ctx := o.eng.Context()
	o.mu.Unlock()
	select {
	case o.started <- struct{}{}:
	default:
	}
	<-ctx.Done()
	return nil, ctx.Err()
}

var (
	registerBlocking sync.Once
	blockInstance    = &blockingOracle{started: make(chan struct{}, 16)}
)

func blockingName() string {
	registerBlocking.Do(func() {
		maxis.MustRegister(blockInstance.Name(), func(int64) maxis.Oracle { return blockInstance })
	})
	return blockInstance.Name()
}

// TestCancellationMidSolve cancels a Solve while its phase oracle is
// running: the call must return ErrCancelled (also matching
// context.Canceled) and leave no goroutine behind.
func TestCancellationMidSolve(t *testing.T) {
	h, _ := testInstance(t, 6)
	sv := New(WithK(2), WithOracle(blockingName()), WithWorkers(2))
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := sv.Solve(ctx, h)
		errc <- err
	}()
	select {
	case <-blockInstance.started:
	case <-time.After(5 * time.Second):
		t.Fatal("oracle never started solving")
	}
	cancel()
	var err error
	select {
	case err = <-errc:
	case <-time.After(5 * time.Second):
		t.Fatal("Solve never returned after cancellation")
	}
	if !errors.Is(err, ErrCancelled) {
		t.Errorf("error = %v, want ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error = %v, want to also match context.Canceled", err)
	}

	// The solve goroutine and any engine workers must wind down; poll
	// because goroutine exit is asynchronous.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCancellationExactSolver cancels mid-branch-and-bound: the exact
// solver polls the context inside the search tree, so even a single
// long phase solve unblocks.
func TestCancellationExactSolver(t *testing.T) {
	// A dense random graph keeps the exact solver branching long enough
	// to observe the cancellation.
	rng := rand.New(rand.NewSource(7))
	g := graph.GnP(140, 0.5, rng)
	ctx, cancel := context.WithCancel(context.Background())
	sv := New(WithOracle("exact"))
	errc := make(chan error, 1)
	go func() {
		_, err := sv.MaxIS(ctx, g)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, ErrCancelled) {
			t.Errorf("error = %v, want nil (finished first) or ErrCancelled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("exact solve ignored cancellation")
	}
}

func TestPreCancelledContext(t *testing.T) {
	h, _ := testInstance(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, call := range map[string]func(*Solver) error{
		"Solve":      func(s *Solver) error { _, err := s.Solve(ctx, h); return err },
		"MaxIS":      func(s *Solver) error { _, err := s.MaxIS(ctx, graph.Cycle(4)); return err },
		"SolveBatch": func(s *Solver) error { _, err := s.SolveBatch(ctx, []*hypergraph.Hypergraph{h}); return err },
		"SolveReader": func(s *Solver) error {
			_, _, err := s.SolveReader(ctx, strings.NewReader("hypergraph 2 1\n0 1\n"), graphio.FormatAuto)
			return err
		},
	} {
		// Once without a gate, once with: both admission paths must
		// surface ErrCancelled.
		for _, sv := range []*Solver{New(), New(WithMaxInflight(2))} {
			if err := call(sv); !errors.Is(err, ErrCancelled) {
				t.Errorf("%s (gate=%v): error = %v, want ErrCancelled", name, sv.MaxInFlight() > 0, err)
			}
		}
	}
}

func TestSolveBatch(t *testing.T) {
	var hs []*hypergraph.Hypergraph
	for i := 0; i < 6; i++ {
		h, _ := testInstance(t, 10+int64(i))
		hs = append(hs, h)
	}
	for _, workers := range []int{1, 0} {
		sv := New(WithK(2), WithWorkers(workers))
		results, err := sv.SolveBatch(context.Background(), hs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(results) != len(hs) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(results), len(hs))
		}
		for i, res := range results {
			if res == nil {
				t.Fatalf("workers=%d: instance %d has no result", workers, i)
			}
			if err := verify.ConflictFreeMulti(hs[i], res.Multicoloring); err != nil {
				t.Errorf("workers=%d instance %d: %v", workers, i, err)
			}
		}
	}
}

func TestSolveBatchAbortsOnError(t *testing.T) {
	good, _ := testInstance(t, 20)
	sv := New(WithK(2), WithOracle("nonesuch"))
	if _, err := sv.SolveBatch(context.Background(), []*hypergraph.Hypergraph{good}); !errors.Is(err, maxis.ErrUnknownOracle) {
		t.Errorf("batch error = %v, want ErrUnknownOracle", err)
	}
}

func TestReaderErrorsAreTyped(t *testing.T) {
	sv := New(WithK(2), WithCache(2))
	if _, _, err := sv.SolveReader(context.Background(),
		strings.NewReader("hypergraph 2 notanumber\n"), graphio.FormatAuto); !errors.Is(err, graphio.ErrFormat) {
		t.Errorf("malformed: error = %v, want ErrFormat", err)
	}
	if _, _, err := sv.MaxISReader(context.Background(),
		strings.NewReader("graph 3 2\n0 1\n0 1\n"), graphio.FormatAuto); !errors.Is(err, graphio.ErrDuplicateEdge) {
		t.Errorf("duplicate edge: error = %v, want ErrDuplicateEdge", err)
	}
	// Failed parses must not poison the cache.
	if stats := sv.CacheStats(); stats.Entries != 0 {
		t.Errorf("cache entries after failed parses = %d, want 0", stats.Entries)
	}
}

// failingReader errors after its prefix is consumed.
type failingReader struct{ err error }

func (r *failingReader) Read([]byte) (int, error) { return 0, r.err }

// TestReadInstanceErrorTyped pins the read/parse error distinction: a
// body that fails to *read* surfaces ErrReadInstance with the cause
// reachable, which cfserve maps to a client-side status.
func TestReadInstanceErrorTyped(t *testing.T) {
	cause := fmt.Errorf("connection torn down")
	sv := New(WithCache(2))
	_, _, err := sv.SolveReader(context.Background(), &failingReader{err: cause}, graphio.FormatAuto)
	if !errors.Is(err, ErrReadInstance) {
		t.Errorf("error = %v, want ErrReadInstance", err)
	}
	if !errors.Is(err, cause) {
		t.Errorf("error = %v, cause not reachable", err)
	}
}

// TestCachelessReaderStreams pins the no-cache path: the instance parses
// straight from the reader (no hash key) and still solves.
func TestCachelessReaderStreams(t *testing.T) {
	_, body := testInstance(t, 40)
	sv := New(WithK(2)) // no WithCache: streaming path
	res, inst, err := sv.SolveReader(context.Background(), bytes.NewReader(body), graphio.FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Key != "" || inst.CacheHit {
		t.Errorf("cacheless instance = %+v, want empty key and no hit", inst)
	}
	if res.TotalColors == 0 || inst.Hypergraph() == nil {
		t.Errorf("cacheless solve degenerate: colours %d", res.TotalColors)
	}
}

func TestMaxISReaderFormats(t *testing.T) {
	g := graph.Grid(4, 5)
	sv := New(WithCache(8))
	for _, f := range []graphio.Format{graphio.FormatEdgeList, graphio.FormatDIMACS, graphio.FormatJSON} {
		var buf bytes.Buffer
		if err := graphio.WriteGraph(&buf, g, f); err != nil {
			t.Fatal(err)
		}
		res, inst, err := sv.MaxISReader(context.Background(), bytes.NewReader(buf.Bytes()), graphio.FormatAuto)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if inst.Kind != "graph" || inst.N != 20 || inst.Graph() == nil {
			t.Errorf("%v: instance %+v", f, inst)
		}
		if len(res.Set) != 10 { // the 4x5 grid's maximum, found by greedy
			t.Errorf("%v: |IS| = %d, want 10", f, len(res.Set))
		}
	}
}

func TestCacheEviction(t *testing.T) {
	c := newInstanceCache(2)
	c.put("a", 1)
	c.put("b", 2)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should be cached")
	}
	c.put("c", 3) // evicts b, the least recently used
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	st := c.snapshot()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("snapshot = %+v", st)
	}
}

func TestCacheKeySeparatesKindAndFormat(t *testing.T) {
	body := []byte("graph 2 1\n0 1\n")
	keys := map[string]bool{
		cacheKey("graph", "edgelist", body):                        true,
		cacheKey("hypergraph", "edgelist", body):                   true,
		cacheKey("graph", "auto", body):                            true,
		cacheKey("graph", "edgelist", []byte("graph 2 1\n0 1\n ")): true,
	}
	if len(keys) != 4 {
		t.Errorf("cache keys collide: %d distinct, want 4", len(keys))
	}
}

// TestGateBounds checks that the admission gate really serialises
// in-flight solves at its capacity.
func TestGateBounds(t *testing.T) {
	h, _ := testInstance(t, 30)
	sv := New(WithK(2), WithOracle(blockingName()), WithMaxInflight(1), WithWorkers(2))
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	errc := make(chan error, 1)
	go func() {
		_, err := sv.Solve(ctx1, h)
		errc <- err
	}()
	select {
	case <-blockInstance.started:
	case <-time.After(5 * time.Second):
		t.Fatal("first solve never started")
	}
	if sv.InFlight() != 1 || sv.MaxInFlight() != 1 {
		t.Fatalf("gate state = %d/%d, want 1/1", sv.InFlight(), sv.MaxInFlight())
	}
	// A second solve cannot be admitted; its own deadline must release it
	// with ErrCancelled while the first still holds the slot.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	if _, err := sv.Solve(ctx2, h); !errors.Is(err, ErrCancelled) {
		t.Errorf("queued solve error = %v, want ErrCancelled", err)
	}
	cancel1()
	if err := <-errc; !errors.Is(err, ErrCancelled) {
		t.Errorf("first solve error = %v, want ErrCancelled", err)
	}
}

func TestWrapCancelledPassthrough(t *testing.T) {
	plain := fmt.Errorf("some failure")
	if got := wrapCancelled(context.Background(), plain); got != plain {
		t.Errorf("non-cancellation error rewrapped: %v", got)
	}
	if got := wrapCancelled(nil, nil); got != nil {
		t.Errorf("nil error rewrapped: %v", got)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := wrapCancelled(ctx, ctx.Err())
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Errorf("wrapped error %v misses ErrCancelled or context.Canceled", err)
	}
	if doubled := wrapCancelled(ctx, err); doubled != err {
		t.Errorf("already-wrapped error rewrapped: %v", doubled)
	}
}

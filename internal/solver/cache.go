package solver

// cache.go implements the Solver's instance cache: parsed graphs and
// hypergraphs keyed by a content hash of the raw instance bytes, so
// repeated submissions of a hot instance skip parsing and CSR
// construction entirely. The cache moved here from cmd/cfserve so every
// Solver owner — the HTTP service, the CLIs, library callers — shares one
// implementation. Instances are immutable after construction (see
// internal/graph and internal/hypergraph), which is what makes handing
// the same parsed value to concurrent requests safe. Eviction is plain
// LRU over an entry-count bound; DESIGN.md ("Solver and instance cache")
// records the keying and eviction rationale.

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// cacheKey derives the cache key for an instance body: the substrate kind
// and requested format are part of the key because the same bytes could
// in principle parse differently under different format directives.
func cacheKey(kind, format string, body []byte) string {
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write([]byte(format))
	h.Write([]byte{0})
	h.Write(body)
	return hex.EncodeToString(h.Sum(nil))
}

// InstanceKey derives the instance-cache key SolveReader and MaxISReader
// would compute for body: the hex sha256 over the substrate kind
// (KindHypergraph for the reduction endpoints, KindGraph for MaxIS), the
// canonical format directive (graphio.Format.String()), and the raw
// bytes. A gateway that buffers request bodies anyway computes it once
// and forwards it, so the backend's keyed readers skip re-hashing.
func InstanceKey(kind, format string, body []byte) string {
	return cacheKey(kind, format, body)
}

// The Instance.Kind spellings, which are also the kind argument of
// InstanceKey.
const (
	KindHypergraph = "hypergraph"
	KindGraph      = "graph"
)

// validInstanceKey reports whether s has the shape of an instance key:
// 64 lowercase hex digits. Keyed readers silently ignore anything else.
func validInstanceKey(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// instanceCache is a mutex-guarded LRU from content hash to parsed
// instance (*graph.Graph or *hypergraph.Hypergraph).
type instanceCache struct {
	mu        sync.Mutex
	capacity  int
	order     *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

// cacheEntry is one LRU slot.
type cacheEntry struct {
	key string
	val any
}

// newInstanceCache returns a cache bounded to capacity entries (minimum 1).
func newInstanceCache(capacity int) *instanceCache {
	if capacity < 1 {
		capacity = 1
	}
	return &instanceCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// get returns the cached instance for key, promoting it to
// most-recently-used, and records the hit or miss.
func (c *instanceCache) get(key string) (any, bool) {
	v, _, ok := c.getBytes([]byte(key))
	return v, ok
}

// getBytes is get keyed by raw bytes: the map access compiles without
// materialising a key string, and a hit returns the entry's canonical key
// so the caller never allocates one either — the cache-hit serve path
// stays at 0 allocs/op.
func (c *instanceCache) getBytes(key []byte) (val any, canonical string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[string(key)]
	if !ok {
		c.misses++
		return nil, "", false
	}
	c.hits++
	c.order.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.val, e.key, true
}

// put inserts (or refreshes) key → val and evicts the least recently
// used entries beyond capacity.
func (c *instanceCache) put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	for c.order.Len() > c.capacity {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// CacheStats is a point-in-time snapshot of the Solver's instance cache;
// cmd/cfserve embeds it verbatim in its /statz response, hence the JSON
// tags.
type CacheStats struct {
	Capacity  int    `json:"capacity"`
	Entries   int    `json:"entries"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// snapshot returns a consistent view of the cache counters.
func (c *instanceCache) snapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Capacity:  c.capacity,
		Entries:   c.order.Len(),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

package solver

// weighted_test.go covers weighted instances through the Solver facade:
// TotalWeight reporting on both MaxIS paths, the Instance.Weighted flag,
// and weight propagation through the reduction.

import (
	"bytes"
	"context"
	"testing"

	"pslocal/internal/graphio"
	"pslocal/internal/hypergraph"
	"pslocal/internal/maxis"
)

func TestMaxISReaderWeighted(t *testing.T) {
	ctx := context.Background()
	s := New(WithCache(4), WithOracle("greedy-mindeg"))
	body := benchWeightedGraphBody(t, 64, 0.2)
	res, inst, err := s.MaxISReader(ctx, bytes.NewReader(body), graphio.FormatEdgeList)
	if err != nil {
		t.Fatalf("MaxISReader: %v", err)
	}
	if !inst.Weighted() {
		t.Error("instance not reported weighted")
	}
	g := inst.Graph()
	if g == nil || !g.Weighted() {
		t.Fatal("cached graph lost its weights")
	}
	if err := maxis.VerifyWeighted(g, res.Set, res.TotalWeight); err != nil {
		t.Errorf("reported TotalWeight inconsistent: %v", err)
	}
	if res.TotalWeight <= int64(len(res.Set)) {
		t.Errorf("TotalWeight %d not above cardinality %d on a skewed instance", res.TotalWeight, len(res.Set))
	}

	// Unweighted body: TotalWeight equals the cardinality.
	ubody := benchGraphBody(t, 64, 0.2)
	ures, uinst, err := s.MaxISReader(ctx, bytes.NewReader(ubody), graphio.FormatEdgeList)
	if err != nil {
		t.Fatalf("MaxISReader: %v", err)
	}
	if uinst.Weighted() {
		t.Error("unweighted instance reported weighted")
	}
	if ures.TotalWeight != int64(len(ures.Set)) {
		t.Errorf("unweighted TotalWeight %d != |Set| %d", ures.TotalWeight, len(ures.Set))
	}
}

func TestMaxISCarvingReportsWeight(t *testing.T) {
	ctx := context.Background()
	s := New(WithCache(4), WithCarving(1.0))
	body := benchGraphBody(t, 48, 0.1)
	res, _, err := s.MaxISReader(ctx, bytes.NewReader(body), graphio.FormatEdgeList)
	if err != nil {
		t.Fatalf("MaxISReader: %v", err)
	}
	if res.TotalWeight != int64(len(res.Set)) {
		t.Errorf("carving TotalWeight %d != |Set| %d on unweighted input", res.TotalWeight, len(res.Set))
	}
}

func TestSolveWeightedHypergraph(t *testing.T) {
	ctx := context.Background()
	h, err := hypergraph.NewWeighted(6,
		[][]int32{{0, 1, 2}, {2, 3, 4}, {4, 5, 0}},
		[]int64{10, 1, 1, 20, 1, 1})
	if err != nil {
		t.Fatalf("NewWeighted: %v", err)
	}
	s := New(WithK(2))
	res, err := s.Solve(ctx, h)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !res.Weighted {
		t.Error("reduction result not marked weighted")
	}
	if res.TotalWeight <= 0 || res.TotalWeight > h.TotalWeight() {
		t.Errorf("TotalWeight %d outside (0, %d]", res.TotalWeight, h.TotalWeight())
	}
}

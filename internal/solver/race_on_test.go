//go:build race

package solver

// The race detector instruments allocations and sync.Pool, so the strict
// zero-alloc assertions cannot hold under -race and are skipped there.
const raceEnabled = true

// Package solver implements the context-first entry point of the
// repository: a Solver constructed once via functional options that owns
// the execution engine configuration, the oracle selection, a bounded
// admission gate, and a content-hash-keyed cache of parsed instances.
// Every method takes a per-call context.Context and cancels
// cooperatively; cancellation surfaces as ErrCancelled.
//
// The Solver is what the public facade re-exports as pslocal.Solver and
// what cmd/cfserve serves requests through; the previous flat facade
// functions remain as deprecated wrappers. DESIGN.md ("Solver and
// instance cache") records the design.
package solver

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"

	"pslocal/internal/core"
	"pslocal/internal/engine"
	"pslocal/internal/graph"
	"pslocal/internal/graphio"
	"pslocal/internal/hypergraph"
	"pslocal/internal/maxis"
	"pslocal/internal/obs"
	"pslocal/internal/slocal"
)

// ErrCancelled reports a solve abandoned through its context. Errors
// returned by Solver methods after a cancellation match both ErrCancelled
// and the underlying context error under errors.Is.
var ErrCancelled = errors.New("solver: solve cancelled")

// ErrReadInstance reports that SolveReader/MaxISReader failed reading the
// instance bytes (as opposed to parsing them): the cause — an
// http.MaxBytesError, a broken pipe — stays reachable through
// errors.As/Is, and cmd/cfserve maps it to a client-side status.
var ErrReadInstance = errors.New("solver: reading instance")

// cancelledError tags a context failure with ErrCancelled while keeping
// the original cause (context.Canceled or context.DeadlineExceeded)
// reachable for errors.Is.
type cancelledError struct{ cause error }

func (e *cancelledError) Error() string {
	return ErrCancelled.Error() + ": " + e.cause.Error()
}

func (e *cancelledError) Unwrap() []error { return []error{ErrCancelled, e.cause} }

// wrapCancelled converts a context-driven failure into ErrCancelled and
// passes every other error through unchanged.
func wrapCancelled(ctx context.Context, err error) error {
	if err == nil || errors.Is(err, ErrCancelled) {
		return err
	}
	if (ctx != nil && ctx.Err() != nil) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &cancelledError{cause: err}
	}
	return err
}

// carvingBranchBudget bounds the exact solve inside each carved ball of
// the MaxIS carving path. A dense instance would otherwise pin its
// admission slot on an unbounded branch-and-bound; when the budget trips,
// the solver's anytime set is used instead — the output is still a
// verified independent set, only the (1+δ) quality bound degrades.
const carvingBranchBudget = 1 << 20

// config is the immutable option set of a Solver.
type config struct {
	// workers follows the shared -workers CLI convention: 0 selects
	// GOMAXPROCS, any other value is the literal pool width (1 = serial).
	workers int
	// oracleName selects the per-phase MaxIS strategy by registry name;
	// the spellings "exact" and "implicit" select the built-in
	// ModeExactHinted / ModeImplicitFirstFit reduction modes. Empty defers
	// to mode.
	oracleName string
	// mode is the explicit built-in reduction mode; 0 means
	// ModeImplicitFirstFit (the scalable default).
	mode core.Mode
	// k is the per-phase palette size of Solve.
	k int
	// seed feeds randomized oracles; deterministic oracles ignore it.
	seed int64
	// maxPhases bounds the reduction loop; 0 keeps the core default.
	maxPhases int
	// carving switches MaxIS onto the SLOCAL ball-carving
	// (1+δ)-approximation instead of a registry oracle.
	carving bool
	// delta is the carving growth slack; 0 selects the slocal default 1.0.
	delta float64
	// cacheEntries bounds the parsed-instance LRU; 0 disables caching.
	cacheEntries int
	// maxInflight bounds concurrently admitted solves; 0 means unbounded,
	// negative selects GOMAXPROCS.
	maxInflight int
}

// defaults returns the zero-configuration Solver: serial, implicit
// first-fit, k=3, seed 1, no cache, no admission bound.
func defaults() config {
	return config{workers: 1, k: 3, seed: 1}
}

// Option configures a Solver at construction (New) or derivation (With).
type Option func(*config)

// WithWorkers sets the worker-pool width shared by conflict-graph
// construction, portfolio racing and SolveBatch fan-out, following the
// CLI -workers convention: 0 selects GOMAXPROCS, 1 is serial, any other
// positive value is the literal width.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithOracle selects the per-phase MaxIS strategy by name: "implicit"
// (first-fit on the implicit conflict graph), "exact" (the hinted exact
// solver, λ = 1), any registered oracle name, or a
// "portfolio:<a>,<b>,..." composite. Resolution happens per call, so an
// unknown name surfaces from Solve/MaxIS as maxis.ErrUnknownOracle.
func WithOracle(name string) Option { return func(c *config) { c.oracleName = name } }

// WithPortfolio selects a portfolio racing the named registry oracles
// per phase; it is shorthand for WithOracle("portfolio:<a>,<b>,...").
func WithPortfolio(members ...string) Option {
	name := "portfolio:"
	for i, m := range members {
		if i > 0 {
			name += ","
		}
		name += m
	}
	return func(c *config) { c.oracleName = name }
}

// WithMode selects a built-in reduction mode explicitly; WithOracle wins
// when both are set.
func WithMode(m core.Mode) Option { return func(c *config) { c.mode = m } }

// WithK sets the per-phase palette size of Solve (default 3).
func WithK(k int) Option { return func(c *config) { c.k = k } }

// WithSeed seeds randomized oracles (default 1); deterministic oracles
// ignore it.
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithMaxPhases bounds the reduction loop defensively; 0 keeps the core
// default of 4·m + 16.
func WithMaxPhases(n int) Option { return func(c *config) { c.maxPhases = n } }

// WithCarving switches MaxIS onto the SLOCAL ball-carving
// (1+δ)-approximation (the containment direction of Theorem 1.1); delta
// is the growth slack, 0 selecting the default 1.0. The per-ball exact
// solves are branch-budgeted and observe the call context.
func WithCarving(delta float64) Option {
	return func(c *config) {
		c.carving = true
		c.delta = delta
	}
}

// WithCache bounds the parsed-instance LRU used by SolveReader and
// MaxISReader to n entries; 0 (the default) disables caching. The cache
// is created at New and shared by every solver derived through With.
func WithCache(n int) Option { return func(c *config) { c.cacheEntries = n } }

// WithMaxInflight bounds the number of concurrently admitted solves;
// excess calls queue at the gate, honouring their contexts. 0 (the
// default) means unbounded, negative selects GOMAXPROCS. Like the cache,
// the gate is created at New and shared by derived solvers.
func WithMaxInflight(n int) Option { return func(c *config) { c.maxInflight = n } }

// Solver is the configurable entry point to the reduction pipeline. It is
// safe for concurrent use: configuration is immutable after New, oracles
// are instantiated per call, and the cache and gate are internally
// synchronised.
type Solver struct {
	cfg   config
	cache *instanceCache // nil when caching is disabled
	gate  *engine.Gate   // nil when admission is unbounded
}

// New constructs a Solver from the given options over the serial,
// implicit-first-fit defaults.
func New(opts ...Option) *Solver {
	cfg := defaults()
	for _, o := range opts {
		o(&cfg)
	}
	s := &Solver{cfg: cfg}
	if cfg.cacheEntries > 0 {
		s.cache = newInstanceCache(cfg.cacheEntries)
	}
	if cfg.maxInflight != 0 {
		n := cfg.maxInflight
		if n < 0 {
			n = engine.Parallel().WorkerCount()
		}
		s.gate = engine.NewGate(n)
	}
	return s
}

// With returns a Solver with the given options applied over s's
// configuration. The derived solver shares s's instance cache and
// admission gate — WithCache and WithMaxInflight are construction-time
// options and have no effect here — which is how one server-wide Solver
// serves per-request oracle, seed, palette and worker choices.
func (s *Solver) With(opts ...Option) *Solver {
	cfg := s.cfg
	for _, o := range opts {
		o(&cfg)
	}
	cfg.cacheEntries = s.cfg.cacheEntries
	cfg.maxInflight = s.cfg.maxInflight
	return &Solver{cfg: cfg, cache: s.cache, gate: s.gate}
}

// CacheStats snapshots the shared instance cache (zero when caching is
// disabled).
func (s *Solver) CacheStats() CacheStats {
	if s.cache == nil {
		return CacheStats{}
	}
	return s.cache.snapshot()
}

// InFlight returns the number of currently admitted solves (0 when
// admission is unbounded).
func (s *Solver) InFlight() int {
	if s.gate == nil {
		return 0
	}
	return s.gate.InUse()
}

// MaxInFlight returns the admission bound (0 when unbounded).
func (s *Solver) MaxInFlight() int {
	if s.gate == nil {
		return 0
	}
	return s.gate.Capacity()
}

// acquire admits one solve, queueing at the gate when one is configured.
// Time spent queueing shows up as a gate_wait span on a traced call.
func (s *Solver) acquire(ctx context.Context) error {
	if s.gate == nil {
		if ctx != nil {
			return wrapCancelled(ctx, ctx.Err())
		}
		return nil
	}
	sp := obs.TraceFrom(ctx).Start("gate_wait")
	err := s.gate.Acquire(ctx)
	sp.End()
	return wrapCancelled(ctx, err)
}

// release frees the slot taken by acquire.
func (s *Solver) release() {
	if s.gate != nil {
		s.gate.Release()
	}
}

// engineOpts resolves the execution options for one call under ctx.
func (s *Solver) engineOpts(ctx context.Context) engine.Options {
	eng := engine.FromWorkersFlag(s.cfg.workers)
	eng.Ctx = ctx
	return eng
}

// reduceOptions resolves the configured strategy into core options,
// instantiating the oracle fresh per call so concurrent Solves never
// share oracle state.
func (s *Solver) reduceOptions(ctx context.Context) (core.Options, error) {
	opts := core.Options{K: s.cfg.k, MaxPhases: s.cfg.maxPhases, Engine: s.engineOpts(ctx)}
	switch s.cfg.oracleName {
	case "":
		if s.cfg.mode != 0 {
			opts.Mode = s.cfg.mode
		} else {
			opts.Mode = core.ModeImplicitFirstFit
		}
	case "implicit":
		opts.Mode = core.ModeImplicitFirstFit
	case "exact":
		opts.Mode = core.ModeExactHinted
	default:
		oracle, err := maxis.Lookup(s.cfg.oracleName, s.cfg.seed)
		if err != nil {
			return opts, err
		}
		opts.Mode = core.ModeOracle
		opts.Oracle = oracle
		opts.OracleName = s.cfg.oracleName
	}
	if opts.OracleName == "" {
		if opts.Mode == core.ModeExactHinted {
			opts.OracleName = "exact"
		} else {
			opts.OracleName = "implicit"
		}
	}
	return opts, nil
}

// Solve runs the Theorem 1.1 reduction — conflict-free multicolouring via
// iterated approximate MaxIS — on h under the configured strategy. ctx
// cancels cooperatively; an abandoned call returns ErrCancelled.
func (s *Solver) Solve(ctx context.Context, h *hypergraph.Hypergraph) (*core.Result, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	return s.solve(ctx, h)
}

// solve is Solve past the admission gate (SolveReader and SolveBatch hold
// their own slot).
func (s *Solver) solve(ctx context.Context, h *hypergraph.Hypergraph) (*core.Result, error) {
	opts, err := s.reduceOptions(ctx)
	if err != nil {
		return nil, err
	}
	res, err := core.Reduce(ctx, h, opts)
	return res, wrapCancelled(ctx, err)
}

// SolveBatch reduces every hypergraph of hs, fanning the instances out
// over the configured worker pool (engine.ForEachShard); each instance
// solves serially so the batch does not oversubscribe the pool. The
// result slice is index-aligned with hs. The first failing instance
// aborts the batch.
func (s *Solver) SolveBatch(ctx context.Context, hs []*hypergraph.Hypergraph) ([]*core.Result, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	results := make([]*core.Result, len(hs))
	inner := s.With(WithWorkers(1))
	err := s.engineOpts(ctx).ForEachShard(len(hs), func(_ int, sh engine.Shard) error {
		for i := sh.Lo; i < sh.Hi; i++ {
			res, err := inner.solve(ctx, hs[i])
			if err != nil {
				return fmt.Errorf("solver: batch instance %d: %w", i, err)
			}
			results[i] = res
		}
		return nil
	})
	if err != nil {
		return nil, wrapCancelled(ctx, err)
	}
	return results, nil
}

// ISResult is the outcome of MaxIS.
type ISResult struct {
	// Set is the independent set found, ascending.
	Set []int32
	// TotalWeight is the total vertex weight of Set: Σ w(v) on weighted
	// instances, |Set| otherwise (unit weights).
	TotalWeight int64
	// Oracle is the registry name that solved ("" on the carving path).
	Oracle string
	// Locality and RadiusBound report the carving path's measured and
	// theoretical locality; both are 0 on the oracle path.
	Locality    int
	RadiusBound int
}

// MaxIS solves maximum independent set on g through the configured
// registry oracle (default "greedy-mindeg"), or through the SLOCAL
// ball-carving (1+δ)-approximation when WithCarving is set.
func (s *Solver) MaxIS(ctx context.Context, g *graph.Graph) (*ISResult, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	return s.maxIS(ctx, g, nil)
}

// maxIS is MaxIS past the admission gate. A non-nil cg supplies the
// cached instance's lazily packed bitset adjacency, injected into
// kernel-capable oracles so cache-hit requests never re-pack.
func (s *Solver) maxIS(ctx context.Context, g *graph.Graph, cg *cachedGraph) (*ISResult, error) {
	if s.cfg.carving {
		sp := obs.TraceFrom(ctx).Start("carving_solve")
		sp.SetDims(g.N(), g.M())
		sp.SetOracle("carving")
		defer sp.End()
		res, err := slocal.BallCarvingMaxIS(g, slocal.CarvingOptions{
			Delta: s.cfg.delta,
			Ctx:   ctx,
			Inner: func(ball *graph.Graph) ([]int32, error) {
				set, err := maxis.ExactOpts(ball, maxis.ExactOptions{
					MaxBranchNodes: carvingBranchBudget,
					Ctx:            ctx,
				})
				if errors.Is(err, maxis.ErrBudgetExceeded) {
					return set, nil
				}
				return set, err
			},
		})
		if err != nil {
			return nil, wrapCancelled(ctx, err)
		}
		sp.SetIS(len(res.Set), maxis.SetWeight(g, res.Set))
		return &ISResult{
			Set:         res.Set,
			TotalWeight: maxis.SetWeight(g, res.Set),
			Locality:    res.Locality,
			RadiusBound: res.RadiusBound,
		}, nil
	}
	name := s.cfg.oracleName
	if name == "" {
		name = "greedy-mindeg"
	}
	oracle, err := maxis.Lookup(name, s.cfg.seed)
	if err != nil {
		return nil, err
	}
	if es, ok := oracle.(maxis.EngineSetter); ok {
		es.SetEngine(s.engineOpts(ctx))
	}
	if cg != nil {
		if ds, ok := oracle.(maxis.DenseSetter); ok {
			if d := cg.densePack(); d != nil {
				ds.SetDense(d)
			}
		}
	}
	sp := obs.TraceFrom(ctx).Start("oracle_solve")
	sp.SetDims(g.N(), g.M())
	sp.SetOracle(name)
	set, err := maxis.OracleSolve(ctx, oracle, g)
	if err != nil {
		sp.End()
		return nil, wrapCancelled(ctx, err)
	}
	sp.SetIS(len(set), maxis.SetWeight(g, set))
	sp.End()
	return &ISResult{Set: set, TotalWeight: maxis.SetWeight(g, set), Oracle: name}, nil
}

// Instance describes a parsed instance and its cache disposition.
type Instance struct {
	// Kind is "graph" or "hypergraph".
	Kind string
	// Key is the full sha256 content hash (hex) keying the cache; empty
	// when caching is disabled (the body then streams straight into the
	// parser, unbuffered and unhashed).
	Key string
	// CacheHit reports whether parsing was skipped.
	CacheHit bool
	// N and M are the instance's vertex and (hyper)edge counts.
	N, M int

	// value is the parsed instance, exposed through Hypergraph/Graph so
	// callers (cfserve's verification pass) reach it without a re-parse.
	value any
}

// Hypergraph returns the parsed hypergraph behind a SolveReader instance
// (nil for graph instances).
func (i *Instance) Hypergraph() *hypergraph.Hypergraph {
	h, _ := i.value.(*hypergraph.Hypergraph)
	return h
}

// Graph returns the parsed graph behind a MaxISReader instance (nil for
// hypergraph instances).
func (i *Instance) Graph() *graph.Graph {
	cg, _ := i.value.(*cachedGraph)
	if cg == nil {
		return nil
	}
	return cg.g
}

// Weighted reports whether the parsed instance carries vertex weights.
func (i *Instance) Weighted() bool {
	switch v := i.value.(type) {
	case *cachedGraph:
		return v.g.Weighted()
	case *hypergraph.Hypergraph:
		return v.Weighted()
	}
	return false
}

// SolveReader reads a hypergraph from r in the given graphio format
// (FormatAuto sniffs), consults the instance cache by content hash, and
// runs Solve on the result. Admission happens before the body is read, so
// parsing and CSR construction are bounded by the gate too.
func (s *Solver) SolveReader(ctx context.Context, r io.Reader, f graphio.Format) (*core.Result, *Instance, error) {
	return s.SolveReaderKeyed(ctx, r, f, "")
}

// SolveReaderKeyed is SolveReader with a precomputed instance key (see
// InstanceKey). A valid key spares the backend the body hash; a key
// already in the cache spares it the body buffering too (the reader is
// drained, never parsed). Keys are trusted to match the body — the
// caller is a gateway that derived them from the same bytes — and
// anything not shaped like a key is ignored. Empty means "compute here".
func (s *Solver) SolveReaderKeyed(ctx context.Context, r io.Reader, f graphio.Format, key string) (*core.Result, *Instance, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, nil, err
	}
	defer s.release()
	inst := new(Instance)
	h, err := s.readHypergraphInto(ctx, r, f, inst, key)
	if err != nil {
		return nil, nil, wrapCancelled(ctx, err)
	}
	res, err := s.solve(ctx, h)
	if err != nil {
		return nil, inst, err
	}
	return res, inst, nil
}

// MaxISReader is MaxIS over a serialized graph, with the same caching and
// admission behaviour as SolveReader.
func (s *Solver) MaxISReader(ctx context.Context, r io.Reader, f graphio.Format) (*ISResult, *Instance, error) {
	return s.MaxISReaderKeyed(ctx, r, f, "")
}

// MaxISReaderKeyed is MaxISReader with a precomputed instance key,
// under SolveReaderKeyed's contract.
func (s *Solver) MaxISReaderKeyed(ctx context.Context, r io.Reader, f graphio.Format, key string) (*ISResult, *Instance, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, nil, err
	}
	defer s.release()
	inst := new(Instance)
	g, cg, err := s.readGraphInto(ctx, r, f, inst, key)
	if err != nil {
		return nil, nil, wrapCancelled(ctx, err)
	}
	res, err := s.maxIS(ctx, g, cg)
	if err != nil {
		return nil, inst, err
	}
	return res, inst, nil
}

// parseGraphEntry/dimsGraphEntry and their hypergraph twins are the
// readInstance plumbing, named (not closures) so the cache-hit path
// carries no per-call closure values.

func parseGraphEntry(r io.Reader, f graphio.Format) (any, error) {
	g, err := graphio.ReadGraph(r, f)
	if err != nil {
		return nil, err
	}
	return &cachedGraph{g: g}, nil
}

func dimsGraphEntry(v any) (int, int) {
	cg := v.(*cachedGraph)
	return cg.g.N(), cg.g.M()
}

func parseHypergraphEntry(r io.Reader, f graphio.Format) (any, error) {
	return graphio.ReadHypergraph(r, f)
}

func dimsHypergraphEntry(v any) (int, int) {
	h := v.(*hypergraph.Hypergraph)
	return h.N(), h.M()
}

// kindMatches reports whether a cached value is of the substrate a
// preset-keyed lookup expects. Keys embed the kind at hash time, but a
// preset key is caller-supplied — without this check a forged key cached
// under the other substrate would cross endpoints.
func kindMatches(kind string, v any) bool {
	switch v.(type) {
	case *hypergraph.Hypergraph:
		return kind == KindHypergraph
	case *cachedGraph:
		return kind == KindGraph
	}
	return false
}

// readInstance funnels both substrates through one cache flow, filling
// the caller-owned inst in place. With a cache the body lands in pooled
// scratch and is hashed through pooled sha256 state (the key is the whole
// point), and a hit borrows the entry's canonical key string — the whole
// hit path allocates nothing. Without a cache the reader streams straight
// into graphio and Instance.Key stays empty — no buffering, no hashing.
//
// A valid presetKey shortcuts only on a cache hit: the body is drained
// without buffering or hashing and the entry's canonical key is
// borrowed. On a miss (or a wrong-substrate entry) the request falls
// through to the hashing flow — the preset key is never used as a cache
// write key, because caching a body under a caller-supplied key without
// verifying they match would let one forged request (body A sent with
// key(B)) poison the cache for every later honest request for B. An
// honest gateway's preset key equals the computed hash, so the entry
// still lands under the forwarded key; a forged key merely costs its
// sender the sha256 it tried to skip.
func (s *Solver) readInstance(ctx context.Context, r io.Reader, f graphio.Format, kind string, inst *Instance, presetKey string,
	parse func(io.Reader, graphio.Format) (any, error),
	dims func(any) (int, int)) (any, error) {
	tr := obs.TraceFrom(ctx)
	*inst = Instance{Kind: kind}
	if s.cache == nil {
		sp := tr.Start("parse")
		v, err := parse(r, f)
		sp.End()
		if err != nil {
			return nil, err
		}
		inst.N, inst.M = dims(v)
		inst.value = v
		sp.SetDims(inst.N, inst.M)
		return v, nil
	}
	if presetKey != "" && validInstanceKey(presetKey) {
		if cached, ok := s.cache.get(presetKey); ok && kindMatches(kind, cached) {
			sp := tr.Start("read_body")
			sp.SetDetail("drain")
			// The body is never parsed; drain it so the connection
			// stays reusable.
			_, err := io.Copy(io.Discard, r)
			sp.End()
			if err != nil {
				return nil, fmt.Errorf("%w: %w", ErrReadInstance, err)
			}
			inst.Key = presetKey
			inst.CacheHit = true
			inst.N, inst.M = dims(cached)
			inst.value = cached
			hit := tr.Start("cache_lookup")
			hit.SetDetail("hit")
			hit.SetDims(inst.N, inst.M)
			hit.End()
			return cached, nil
		}
	}
	sc := grabServeScratch()
	defer releaseServeScratch(sc)
	sp := tr.Start("read_hash")
	body, err := sc.readAll(r)
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("%w: %w", ErrReadInstance, err)
	}
	keyHex := sc.key(kind, f.String(), body)
	sp.End()
	lookup := tr.Start("cache_lookup")
	if cached, canonical, ok := s.cache.getBytes(keyHex); ok {
		inst.Key = canonical
		inst.CacheHit = true
		inst.N, inst.M = dims(cached)
		inst.value = cached
		lookup.SetDetail("hit")
		lookup.SetDims(inst.N, inst.M)
		lookup.End()
		return cached, nil
	}
	lookup.SetDetail("miss")
	lookup.End()
	inst.Key = string(keyHex)
	parseSp := tr.Start("parse")
	v, err := parse(bytes.NewReader(body), f)
	parseSp.End()
	if err != nil {
		return nil, err
	}
	s.cache.put(inst.Key, v)
	inst.N, inst.M = dims(v)
	inst.value = v
	parseSp.SetDims(inst.N, inst.M)
	return v, nil
}

// readHypergraphInto parses a hypergraph through the cache.
func (s *Solver) readHypergraphInto(ctx context.Context, r io.Reader, f graphio.Format, inst *Instance, presetKey string) (*hypergraph.Hypergraph, error) {
	v, err := s.readInstance(ctx, r, f, KindHypergraph, inst, presetKey, parseHypergraphEntry, dimsHypergraphEntry)
	if err != nil {
		return nil, err
	}
	return v.(*hypergraph.Hypergraph), nil
}

// readGraphInto parses a graph through the cache, returning both the CSR
// and the cache entry that lazily owns its packed bitset adjacency.
func (s *Solver) readGraphInto(ctx context.Context, r io.Reader, f graphio.Format, inst *Instance, presetKey string) (*graph.Graph, *cachedGraph, error) {
	v, err := s.readInstance(ctx, r, f, KindGraph, inst, presetKey, parseGraphEntry, dimsGraphEntry)
	if err != nil {
		return nil, nil, err
	}
	cg := v.(*cachedGraph)
	return cg.g, cg, nil
}

package solver

// keyed_test.go covers the gateway fast path: InstanceKey matching the
// internal cache keying, and the Keyed readers skipping the hash (and on
// a hit, the body buffering) when handed a precomputed key.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"pslocal/internal/graph"
	"pslocal/internal/graphio"
)

func TestInstanceKeyMatchesReaderKey(t *testing.T) {
	_, body := testInstance(t, 7)
	sv := New(WithK(2), WithCache(4))
	_, inst, err := sv.SolveReader(context.Background(), bytes.NewReader(body), graphio.FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	want := InstanceKey(KindHypergraph, graphio.FormatAuto.String(), body)
	if inst.Key != want {
		t.Fatalf("InstanceKey = %s, reader computed %s", want, inst.Key)
	}
}

// countingReader counts bytes actually consumed, distinguishing a parse
// (reads everything eagerly into scratch) from a drain.
type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

func TestKeyedReaderHitAndMiss(t *testing.T) {
	_, body := testInstance(t, 8)
	key := InstanceKey(KindHypergraph, graphio.FormatAuto.String(), body)
	sv := New(WithK(2), WithCache(4))

	// First keyed call misses: the body is read and cached under the
	// preset key without hashing.
	res, inst, err := sv.SolveReaderKeyed(context.Background(), bytes.NewReader(body), graphio.FormatAuto, key)
	if err != nil {
		t.Fatal(err)
	}
	if inst.CacheHit || inst.Key != key {
		t.Fatalf("first keyed call: hit=%t key=%s", inst.CacheHit, inst.Key)
	}
	if res.TotalColors < 1 {
		t.Fatal("degenerate result")
	}

	// Second keyed call hits; the body is drained, not parsed, and the
	// result matches the unkeyed path.
	cr := &countingReader{r: bytes.NewReader(body)}
	res2, inst2, err := sv.SolveReaderKeyed(context.Background(), cr, graphio.FormatAuto, key)
	if err != nil {
		t.Fatal(err)
	}
	if !inst2.CacheHit || inst2.Key != key {
		t.Fatalf("second keyed call: hit=%t key=%s", inst2.CacheHit, inst2.Key)
	}
	if cr.n != len(body) {
		t.Fatalf("hit drained %d of %d body bytes; keep-alive needs a full drain", cr.n, len(body))
	}
	if res2.TotalColors != res.TotalColors {
		t.Fatalf("keyed hit colours %d != miss colours %d", res2.TotalColors, res.TotalColors)
	}

	// An unkeyed call over the same body also hits: the preset key IS the
	// cache key, so gateway and direct traffic share entries.
	_, inst3, err := sv.SolveReader(context.Background(), bytes.NewReader(body), graphio.FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	if !inst3.CacheHit {
		t.Fatal("unkeyed call after keyed insert missed the shared entry")
	}
}

func TestKeyedReaderIgnoresMalformedKeys(t *testing.T) {
	_, body := testInstance(t, 9)
	sv := New(WithK(2), WithCache(4))
	for _, bad := range []string{"nope", strings.Repeat("Z", 64), strings.Repeat("a", 63)} {
		_, inst, err := sv.SolveReaderKeyed(context.Background(), bytes.NewReader(body), graphio.FormatAuto, bad)
		if err != nil {
			t.Fatalf("key %q: %v", bad, err)
		}
		if inst.Key == bad {
			t.Fatalf("malformed key %q was honoured", bad)
		}
		if !validInstanceKey(inst.Key) {
			t.Fatalf("fallback key %q not a sha256 hex", inst.Key)
		}
	}
}

func TestKeyedReaderRejectsCrossKindKeys(t *testing.T) {
	// Cache a GRAPH under its key, then present that key to the
	// hypergraph endpoint: the entry must not cross substrates — the
	// request falls back to hashing its own body.
	g := graph.Grid(3, 3)
	var gbuf bytes.Buffer
	if err := graphio.WriteGraph(&gbuf, g, graphio.FormatEdgeList); err != nil {
		t.Fatal(err)
	}
	sv := New(WithK(2), WithCache(4))
	graphKey := InstanceKey(KindGraph, graphio.FormatAuto.String(), gbuf.Bytes())
	if _, _, err := sv.MaxISReaderKeyed(context.Background(), bytes.NewReader(gbuf.Bytes()), graphio.FormatAuto, graphKey); err != nil {
		t.Fatal(err)
	}

	_, body := testInstance(t, 10)
	res, inst, err := sv.SolveReaderKeyed(context.Background(), bytes.NewReader(body), graphio.FormatAuto, graphKey)
	if err != nil {
		t.Fatal(err)
	}
	if inst.CacheHit || inst.Key == graphKey {
		t.Fatalf("graph entry crossed to the hypergraph endpoint: %+v", inst)
	}
	if res.TotalColors < 1 || inst.Hypergraph() == nil {
		t.Fatal("fallback solve degenerate")
	}
}

func TestKeyedReaderForgedKeyDoesNotPoisonCache(t *testing.T) {
	// Present body B under key(A): the forged key must not become B's
	// cache key, or a later honest request for A would silently be served
	// instance B.
	_, bodyA := testInstance(t, 13)
	_, bodyB := testInstance(t, 14)
	keyA := InstanceKey(KindHypergraph, graphio.FormatAuto.String(), bodyA)
	keyB := InstanceKey(KindHypergraph, graphio.FormatAuto.String(), bodyB)
	if keyA == keyB {
		t.Fatal("test instances collided")
	}
	sv := New(WithK(2), WithCache(4))

	_, inst, err := sv.SolveReaderKeyed(context.Background(), bytes.NewReader(bodyB), graphio.FormatAuto, keyA)
	if err != nil {
		t.Fatal(err)
	}
	if inst.CacheHit || inst.Key != keyB {
		t.Fatalf("forged key: hit=%t key=%s, want a miss keyed by the body hash %s", inst.CacheHit, inst.Key, keyB)
	}

	// An honest request for A must miss (nothing legitimate cached it),
	// not hit B's instance under A's key.
	_, instA, err := sv.SolveReaderKeyed(context.Background(), bytes.NewReader(bodyA), graphio.FormatAuto, keyA)
	if err != nil {
		t.Fatal(err)
	}
	if instA.CacheHit {
		t.Fatal("honest request hit an entry it never inserted: the forged key poisoned the cache")
	}
	if instA.Key != keyA {
		t.Fatalf("honest request keyed as %s, want %s", instA.Key, keyA)
	}
}

func TestKeyedReaderCacheless(t *testing.T) {
	// Without a cache the key is ignored entirely and the body streams.
	_, body := testInstance(t, 11)
	key := InstanceKey(KindHypergraph, graphio.FormatAuto.String(), body)
	sv := New(WithK(2))
	_, inst, err := sv.SolveReaderKeyed(context.Background(), bytes.NewReader(body), graphio.FormatAuto, key)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Key != "" || inst.CacheHit {
		t.Fatalf("cacheless keyed call: %+v, want empty key", inst)
	}
}

func TestKeyedReaderHitDrainError(t *testing.T) {
	_, body := testInstance(t, 12)
	key := InstanceKey(KindHypergraph, graphio.FormatAuto.String(), body)
	sv := New(WithK(2), WithCache(4))
	if _, _, err := sv.SolveReaderKeyed(context.Background(), bytes.NewReader(body), graphio.FormatAuto, key); err != nil {
		t.Fatal(err)
	}
	broken := io.MultiReader(bytes.NewReader(body[:4]), errReader{})
	_, _, err := sv.SolveReaderKeyed(context.Background(), broken, graphio.FormatAuto, key)
	if !errors.Is(err, ErrReadInstance) {
		t.Fatalf("drain failure surfaced as %v, want ErrReadInstance", err)
	}
}

type errReader struct{}

func (errReader) Read([]byte) (int, error) { return 0, errors.New("boom") }

package solver

// scratch.go owns the per-worker serve scratch: a sync.Pool of reusable
// read buffers plus hashing state, so a cache-hit SolveReader/MaxISReader
// request allocates nothing — the body lands in a pooled buffer, the
// content hash runs through a pooled sha256 state into fixed arrays, and
// the cache lookup borrows the entry's canonical key string instead of
// materialising a new one. BenchmarkSolverCacheHitAllocs holds the line
// at 0 allocs/op; the bench CI allocation gate keeps it there.

import (
	"crypto/sha256"
	"encoding/hex"
	"hash"
	"io"
	"sync"

	"pslocal/internal/graph"
	"pslocal/internal/maxis"
)

// maxRetainedBody caps the read buffer a pooled scratch keeps between
// requests (1 MiB); a one-off giant instance must not pin its buffer in
// the pool forever.
const maxRetainedBody = 1 << 20

// serveScratch is one worker's reusable read/hash state.
type serveScratch struct {
	body []byte                // instance bytes, grown in place and retained
	hash hash.Hash             // sha256 state, Reset per request
	pre  [64]byte              // kind/format key prefix staging
	sum  [sha256.Size]byte     // digest output
	hex  [2 * sha256.Size]byte // hex-encoded cache key
}

var servePool = sync.Pool{New: func() any { return new(serveScratch) }}

func grabServeScratch() *serveScratch { return servePool.Get().(*serveScratch) }

func releaseServeScratch(sc *serveScratch) {
	if cap(sc.body) > maxRetainedBody {
		sc.body = nil
	}
	servePool.Put(sc)
}

// readAll drains r into the scratch's retained buffer — io.ReadAll
// without the per-call allocation once the buffer has grown to the
// working-set body size. The returned slice aliases the scratch; callers
// finish with it before releasing.
func (sc *serveScratch) readAll(r io.Reader) ([]byte, error) {
	buf := sc.body[:0]
	for {
		if len(buf) == cap(buf) {
			// Grow via append's amortised doubling, then back off to the
			// read position.
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err != nil {
			sc.body = buf
			if err == io.EOF {
				return buf, nil
			}
			return nil, err
		}
	}
}

// key computes the instance cache key — hex sha256 of
// kind\0format\0body, matching cacheKey — into the scratch's fixed
// arrays and returns the hex bytes.
func (sc *serveScratch) key(kind, format string, body []byte) []byte {
	if sc.hash == nil {
		sc.hash = sha256.New()
	}
	sc.hash.Reset()
	if len(kind)+len(format)+2 <= len(sc.pre) {
		// Stage the kind/format prefix in the scratch so the writes carry
		// no per-call []byte conversions.
		n := copy(sc.pre[:], kind)
		sc.pre[n] = 0
		n++
		n += copy(sc.pre[n:], format)
		sc.pre[n] = 0
		n++
		sc.hash.Write(sc.pre[:n])
	} else {
		sc.hash.Write([]byte(kind))
		sc.hash.Write([]byte{0})
		sc.hash.Write([]byte(format))
		sc.hash.Write([]byte{0})
	}
	sc.hash.Write(body)
	sum := sc.hash.Sum(sc.sum[:0])
	hex.Encode(sc.hex[:], sum)
	return sc.hex[:]
}

// cachedGraph is the instance-cache value for graph instances: the parsed
// CSR plus its packed bitset adjacency, built lazily on the first solve
// that can use it and shared by every later cache hit. dense stays nil
// for graphs below the density cutoff (maxis.NewDense declines them).
type cachedGraph struct {
	g     *graph.Graph
	once  sync.Once
	dense *maxis.Dense
}

// densePack returns the packed adjacency, building it on first use.
func (cg *cachedGraph) densePack() *maxis.Dense {
	cg.once.Do(func() { cg.dense = maxis.NewDense(cg.g) })
	return cg.dense
}

package obs

// hist_test.go pins the histogram's edge cases: empty snapshots,
// sub-microsecond samples landing in bucket 0, negative durations
// clamping instead of wrapping into the top bucket, the saturating top
// bucket, the upper-bound quantile semantics, and concurrent
// observe/snapshot safety under -race.

import (
	"math"
	"math/bits"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	snap := h.Snapshot()
	if snap != (HistSnapshot{}) {
		t.Fatalf("empty histogram snapshot not zero: %+v", snap)
	}
	counts, total, sumUS := h.expo()
	if total != 0 || sumUS != 0 {
		t.Fatalf("empty expo: total %d sum %d", total, sumUS)
	}
	for i, c := range counts {
		if c != 0 {
			t.Fatalf("bucket %d nonzero on empty histogram", i)
		}
	}
}

func TestHistogramSubMicrosecondBucketZero(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(500 * time.Nanosecond) // truncates to 0 µs
	snap := h.Snapshot()
	if snap.Count != 2 || snap.P50MS != 0 || snap.P99MS != 0 || snap.MaxMS != 0 || snap.MeanMS != 0 {
		t.Fatalf("sub-microsecond samples mishandled: %+v", snap)
	}
	counts, total, _ := h.expo()
	if total != 2 || counts[0] != 2 {
		t.Fatalf("sub-microsecond samples landed outside bucket 0: total %d, bucket0 %d", total, counts[0])
	}
}

func TestHistogramNegativeDurationClamps(t *testing.T) {
	var h Histogram
	// Before the clamp this wrapped to a huge uint64, bits.Len64 = 64,
	// and indexed out of the 64-bucket array.
	h.Observe(-time.Second)
	counts, total, sumUS := h.expo()
	if total != 1 || counts[0] != 1 || sumUS != 0 {
		t.Fatalf("negative duration not clamped to bucket 0: total %d bucket0 %d sum %d", total, counts[0], sumUS)
	}
}

func TestHistogramTopBucketSaturates(t *testing.T) {
	var h Histogram
	// The largest representable duration (~292 years) must land in its
	// log2 bucket without indexing out of the array; the explicit clamp
	// to bucket 63 is defensive headroom beyond what time.Duration can
	// express.
	huge := time.Duration(math.MaxInt64)
	h.Observe(huge)
	want := bits.Len64(uint64(huge.Microseconds()))
	counts, total, _ := h.expo()
	if total != 1 || counts[want] != 1 {
		t.Fatalf("huge duration missed bucket %d: total %d counts[%d]=%d", want, total, want, counts[want])
	}
	snap := h.Snapshot()
	if snap.Count != 1 || snap.MaxMS <= 0 {
		t.Fatalf("saturated snapshot implausible: %+v", snap)
	}
}

func TestHistogramQuantileUpperBounds(t *testing.T) {
	var h Histogram
	// 90 samples at ~1ms, 10 at ~100ms: p50 reports the 1ms bucket's
	// upper bound, p99 the 100ms bucket's, max is exact.
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	snap := h.Snapshot()
	if snap.Count != 100 {
		t.Fatalf("count = %d", snap.Count)
	}
	if snap.MaxMS != 100 {
		t.Fatalf("max = %v, want 100", snap.MaxMS)
	}
	// 1000 µs lands in bucket 10 ([512, 1024)), upper bound 1023 µs.
	if snap.P50MS != float64(bucketUpperUS(10))/1000 {
		t.Fatalf("p50 = %vms, want the 1ms bucket's upper bound", snap.P50MS)
	}
	// 100000 µs lands in bucket 17 ([65536, 131072)), upper bound 131071 µs.
	if snap.P99MS != float64(bucketUpperUS(17))/1000 {
		t.Fatalf("p99 = %vms, want the 100ms bucket's upper bound", snap.P99MS)
	}
	if snap.MeanMS < 10 || snap.MeanMS > 12 {
		t.Fatalf("mean = %vms, want ~10.9", snap.MeanMS)
	}
	if snap.P50MS > snap.P95MS || snap.P95MS > snap.P99MS {
		t.Fatalf("quantiles not monotone: %+v", snap)
	}
}

func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	var h Histogram
	const (
		writers = 8
		perG    = 2000
	)
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() { // concurrent reader: -race plus the snapshot invariants
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := h.Snapshot()
			if snap.P50MS > snap.P95MS || snap.P95MS > snap.P99MS {
				t.Error("torn snapshot: non-monotone quantiles")
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(g*i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	reader.Wait()
	snap := h.Snapshot()
	if snap.Count != writers*perG {
		t.Fatalf("count = %d, want %d", snap.Count, writers*perG)
	}
}

// Package obs is the dependency-free observability substrate shared by
// every binary: a metrics registry (counters, gauges, log2 latency
// histograms) with a Prometheus text-format exposition handler, a
// lightweight span-tracing API threaded through the solver, and the
// request-id propagation contract of the cluster. It imports nothing
// outside the standard library and nothing from the rest of the module,
// so every layer — core, solver, jobs, cluster, the commands — can
// depend on it without cycles.
//
// The registry is registration-then-serve: families and series are
// registered once at construction time (misuse panics — a duplicate
// series or a kind clash is a programmer error, not a runtime
// condition), and afterwards Counter/Gauge/Histogram handles are
// lock-free on the hot path. /statz JSON and GET /metrics render from
// the same handles, so the two surfaces can never disagree.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension, e.g. {Key: "endpoint", Value: "reduce"}.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// seriesKind discriminates what one registered series renders as.
type seriesKind int

const (
	kindCounter seriesKind = iota + 1
	kindGauge
	kindHistogram
)

// promType is the TYPE line spelling per kind.
func (k seriesKind) promType() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labeled instance inside a family; exactly one of the
// value fields is set.
type series struct {
	labels string // pre-rendered `k1="v1",k2="v2"`, "" when unlabeled
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// family groups the series sharing one metric name: the unit of HELP and
// TYPE in the exposition.
type family struct {
	name   string
	help   string
	kind   seriesKind
	series []*series
}

// Registry holds metric families in registration order. Registration
// (the Counter/Gauge/Histogram constructors) locks; reading handles and
// observing into them is lock-free.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
	bySeries map[string]bool // name + rendered labels, duplicate guard
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family), bySeries: make(map[string]bool)}
}

// validMetricName follows the Prometheus data model: [a-zA-Z_:] first,
// [a-zA-Z0-9_:] after.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName is validMetricName without the colon.
func validLabelName(s string) bool {
	if s == "" || strings.ContainsRune(s, ':') {
		return false
	}
	return validMetricName(s)
}

// escapeLabelValue escapes backslash, double-quote and newline per the
// exposition format.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, `\"`+"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// renderLabels canonicalizes a label set: sorted by key, escaped, joined
// with commas. Registration-time only.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if !validLabelName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q", l.Key))
		}
		if l.Key == "le" {
			panic(`obs: label name "le" is reserved for histogram buckets`)
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// register adds a series under name, creating the family on first use.
// Panics on an invalid name, a kind clash with an existing family, a
// help clash, or a duplicate (name, labels) series.
func (r *Registry) register(name, help string, kind seriesKind, s *series, labels []Label) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	s.labels = renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.kind.promType(), kind.promType()))
	}
	key := name + "{" + s.labels + "}"
	if r.bySeries[key] {
		panic(fmt.Sprintf("obs: duplicate series %s", key))
	}
	r.bySeries[key] = true
	f.series = append(f.series, s)
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := new(Counter)
	r.register(name, help, kindCounter, &series{c: c}, labels)
	return c
}

// CounterFunc registers a counter series rendered by calling fn at
// exposition time — the bridge for monotonic counts that already live
// elsewhere (cache stats, job lifecycle counters). fn must be safe for
// concurrent use and monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindCounter, &series{fn: fn}, labels)
}

// Gauge registers and returns a settable gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := new(Gauge)
	r.register(name, help, kindGauge, &series{g: g}, labels)
	return g
}

// GaugeFunc registers a gauge series rendered by calling fn at
// exposition time (in-flight counts, queue depths). fn must be safe for
// concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGauge, &series{fn: fn}, labels)
}

// Histogram registers and returns a log2 latency histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	h := new(Histogram)
	r.register(name, help, kindHistogram, &series{h: h}, labels)
	return h
}

// formatFloat renders a sample value: integers stay integral, everything
// else is shortest-round-trip.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeSample emits one `name{labels} value` line; extra is appended to
// the series labels (the histogram's le pair).
func writeSample(w io.Writer, name, labels, extra, value string) error {
	var err error
	switch {
	case labels == "" && extra == "":
		_, err = fmt.Fprintf(w, "%s %s\n", name, value)
	case labels == "":
		_, err = fmt.Fprintf(w, "%s{%s} %s\n", name, extra, value)
	case extra == "":
		_, err = fmt.Fprintf(w, "%s{%s} %s\n", name, labels, value)
	default:
		_, err = fmt.Fprintf(w, "%s{%s,%s} %s\n", name, labels, extra, value)
	}
	return err
}

// writeHistogram renders one histogram series: cumulative _bucket lines
// with le in seconds (the log2 bucket upper bounds, trimmed past the
// highest occupied bucket), then _sum and _count. The bucket total, not
// the racy sample counter, feeds _count so the cumulative invariant
// holds under concurrent observes.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) error {
	counts, total, sumUS := h.expo()
	hi := 0
	for i, c := range counts {
		if c > 0 {
			hi = i
		}
	}
	var cum uint64
	if total > 0 {
		for i := 0; i <= hi; i++ {
			cum += counts[i]
			le := formatFloat(float64(bucketUpperUS(i)) / 1e6)
			if err := writeSample(w, name+"_bucket", labels, `le="`+le+`"`, strconv.FormatUint(cum, 10)); err != nil {
				return err
			}
		}
	}
	if err := writeSample(w, name+"_bucket", labels, `le="+Inf"`, strconv.FormatUint(total, 10)); err != nil {
		return err
	}
	if err := writeSample(w, name+"_sum", labels, "", formatFloat(float64(sumUS)/1e6)); err != nil {
		return err
	}
	return writeSample(w, name+"_count", labels, "", strconv.FormatUint(total, 10))
}

// WritePrometheus renders every family in registration order as
// Prometheus text exposition format 0.0.4.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	families := make([]*family, len(r.families))
	copy(families, r.families)
	r.mu.Unlock()
	for _, f := range families {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind.promType()); err != nil {
			return err
		}
		for _, s := range f.series {
			var err error
			switch {
			case s.h != nil:
				err = writeHistogram(w, f.name, s.labels, s.h)
			case s.c != nil:
				err = writeSample(w, f.name, s.labels, "", strconv.FormatUint(s.c.Value(), 10))
			case s.g != nil:
				err = writeSample(w, f.name, s.labels, "", formatFloat(s.g.Value()))
			case s.fn != nil:
				err = writeSample(w, f.name, s.labels, "", formatFloat(s.fn()))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// expositionContentType is the text exposition format version the
// handler advertises (what Prometheus scrapers negotiate on).
const expositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns the GET /metrics handler serving the registry in
// Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", expositionContentType)
		_ = r.WritePrometheus(w)
	})
}

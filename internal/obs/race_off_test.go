//go:build !race

package obs

// raceEnabled mirrors the -race flag so alloc-count tests can skip under
// instrumentation (the race runtime allocates on paths that are clean in
// a normal build).
const raceEnabled = false

package obs

// bench_test.go holds the span-recording cost benchmarks backing the
// bench.sh alloc gate: recording a span (start, attributes, end) on a
// live trace must not allocate, or tracing would tax the cache-hit serve
// path it instruments.

import (
	"testing"
	"time"
)

// BenchmarkSpanRecord is one traced pipeline step: open a span, tag it,
// close it. The trace is Reset-reused the way the solver reuses one per
// request, so steady-state recording — not trace construction — is what
// the alloc gate sees.
func BenchmarkSpanRecord(b *testing.B) {
	tr := NewTrace("bench", "bench-req-id")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%defaultTraceSpans == 0 {
			tr.Reset("bench", "bench-req-id")
		}
		sp := tr.Start("phase")
		sp.SetPhase(1)
		sp.SetDims(1024, 4096)
		sp.SetDetail("hit")
		sp.End()
	}
}

// BenchmarkSpanRecordUntraced is the no-trace fast path: every recording
// call against a nil trace, which is what untraced requests pay.
func BenchmarkSpanRecordUntraced(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("phase")
		sp.SetPhase(1)
		sp.Child("csr_build").End()
		sp.End()
	}
}

// TestSpanRecordAllocatesNothing pins the zero-alloc contract with
// AllocsPerRun, so a regression fails `go test` rather than waiting for a
// benchmark diff.
func TestSpanRecordAllocatesNothing(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the zero line is checked in the non-race run")
	}
	tr := NewTrace("alloc", "alloc-req-id", 8)
	allocs := testing.AllocsPerRun(100, func() {
		tr.Reset("alloc", "alloc-req-id")
		sp := tr.Start("cache_lookup")
		sp.SetDetail("hit")
		sp.SetDims(64, 512)
		sp.End()
		tr.Finish()
	})
	if allocs != 0 {
		t.Errorf("span recording allocates %.1f objects per op, want 0", allocs)
	}
}

// TestHistogramObserveAllocatesNothing holds the same zero line on the
// metrics side: Observe on the request-latency histograms sits on every
// response path.
func TestHistogramObserveAllocatesNothing(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the zero line is checked in the non-race run")
	}
	var h Histogram
	allocs := testing.AllocsPerRun(100, func() {
		h.Observe(3 * time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("histogram observe allocates %.1f objects per op, want 0", allocs)
	}
}

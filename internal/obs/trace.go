package obs

// trace.go is the per-solve span tracer: one Trace per request (or job)
// with flat, preallocated span storage, so recording a span on the hot
// path costs a mutex hop and zero allocations. Spans carry the
// reduction-specific attributes the phase loop produces — phase index,
// conflict-graph dimensions, oracle name, independent-set size and
// weight — and snapshots render the flat array back into the nested
// root/children JSON that /v1/traces and ?trace=1 expose. All Trace and
// Span methods are nil-safe no-ops, which is what lets the solver thread
// tracing through unconditionally: untraced calls pay one context lookup
// and nothing else.

import (
	"context"
	"sync"
	"time"
)

// defaultTraceSpans is the per-trace span capacity when NewTrace is
// asked for none: enough for the fixed pipeline spans plus the O(log n)
// phase spans of any realistic reduction.
const defaultTraceSpans = 192

// span is one recorded interval, stored flat; parent indexes the
// enclosing span (-1 = child of the root).
type span struct {
	name   string
	parent int32
	start  time.Time
	dur    time.Duration

	phase    int
	n, m     int
	oracle   string
	isSize   int
	isWeight int64
	detail   string
}

// Trace is one request's span collection. Construct with NewTrace,
// record through Start/Span.Child, close with Finish, and render with
// Snapshot. A nil *Trace is a valid no-op receiver. Safe for concurrent
// use; span storage is fixed at construction and spans past the capacity
// are counted as dropped rather than grown.
type Trace struct {
	mu        sync.Mutex
	op        string
	requestID string
	start     time.Time
	end       time.Time
	spans     []span
	dropped   int
}

// NewTrace starts a trace for one operation (the root span's name) tagged
// with a request id ("" when none). maxSpans bounds the flat span store;
// <= 0 selects the default.
func NewTrace(op, requestID string, maxSpans ...int) *Trace {
	capacity := defaultTraceSpans
	if len(maxSpans) > 0 && maxSpans[0] > 0 {
		capacity = maxSpans[0]
	}
	return &Trace{op: op, requestID: requestID, start: time.Now(), spans: make([]span, 0, capacity)}
}

// Reset rewinds the trace for reuse under a new operation and request id
// without reallocating span storage (the traced-path benchmarks lean on
// this).
func (t *Trace) Reset(op, requestID string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.op = op
	t.requestID = requestID
	t.start = time.Now()
	t.end = time.Time{}
	t.spans = t.spans[:0]
	t.dropped = 0
	t.mu.Unlock()
}

// RequestID returns the trace's request id.
func (t *Trace) RequestID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.requestID
}

// Finish closes the root span. Idempotent; Snapshot on an unfinished
// trace uses the current time instead.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.end.IsZero() {
		t.end = time.Now()
	}
	t.mu.Unlock()
}

// Span is a value handle onto one recorded span. The zero Span (and any
// handle from a nil Trace or a saturated one) no-ops, so callers never
// branch on whether tracing is live.
type Span struct {
	t *Trace
	i int32
}

// Start opens a span directly under the root.
func (t *Trace) Start(name string) Span { return t.startSpan(name, -1) }

// Child opens a span nested under sp.
func (sp Span) Child(name string) Span {
	if sp.t == nil {
		return Span{}
	}
	return sp.t.startSpan(name, sp.i)
}

// startSpan appends into the preallocated store; at capacity the span is
// dropped (counted) instead of grown, keeping recording allocation-free.
func (t *Trace) startSpan(name string, parent int32) Span {
	if t == nil {
		return Span{}
	}
	t.mu.Lock()
	if len(t.spans) == cap(t.spans) {
		t.dropped++
		t.mu.Unlock()
		return Span{}
	}
	i := int32(len(t.spans))
	t.spans = append(t.spans, span{name: name, parent: parent, start: time.Now()})
	t.mu.Unlock()
	return Span{t: t, i: i}
}

// End closes the span. Idempotent; a span never ended (an error unwound
// past it) is clamped to the trace end at snapshot time.
func (sp Span) End() {
	if sp.t == nil {
		return
	}
	sp.t.mu.Lock()
	s := &sp.t.spans[sp.i]
	if s.dur == 0 {
		s.dur = time.Since(s.start)
	}
	sp.t.mu.Unlock()
}

// set mutates the span's record under the trace lock.
func (sp Span) set(f func(*span)) {
	if sp.t == nil {
		return
	}
	sp.t.mu.Lock()
	f(&sp.t.spans[sp.i])
	sp.t.mu.Unlock()
}

// SetPhase tags the span with its 1-based reduction phase index.
func (sp Span) SetPhase(phase int) { sp.set(func(s *span) { s.phase = phase }) }

// SetDims tags the span with instance or conflict-graph dimensions
// (n vertices, m edges; m = -1 means "not materialised").
func (sp Span) SetDims(n, m int) { sp.set(func(s *span) { s.n, s.m = n, m }) }

// SetOracle tags the span with the oracle or mode name that solved it.
func (sp Span) SetOracle(name string) { sp.set(func(s *span) { s.oracle = name }) }

// SetIS tags the span with the phase's independent-set size and weight.
func (sp Span) SetIS(size int, weight int64) {
	sp.set(func(s *span) { s.isSize, s.isWeight = size, weight })
}

// SetDetail tags the span with a free-form disposition ("hit", "miss").
func (sp Span) SetDetail(d string) { sp.set(func(s *span) { s.detail = d }) }

// SpanSnapshot is the JSON rendering of one span, nested.
type SpanSnapshot struct {
	Name string `json:"name"`
	// StartUS is the span's offset from the trace start, microseconds.
	StartUS int64 `json:"start_us"`
	DurUS   int64 `json:"dur_us"`

	Phase    int    `json:"phase,omitempty"`
	N        int    `json:"n,omitempty"`
	M        int    `json:"m,omitempty"`
	Oracle   string `json:"oracle,omitempty"`
	ISSize   int    `json:"is_size,omitempty"`
	ISWeight int64  `json:"is_weight,omitempty"`
	Detail   string `json:"detail,omitempty"`

	Children []SpanSnapshot `json:"children,omitempty"`
}

// TraceSnapshot is the JSON rendering of a whole trace: the root span
// (Op, the full duration) plus its nested children. Snapshots are
// immutable — the ring buffer and the ?trace=1 responses share them
// freely.
type TraceSnapshot struct {
	Op        string    `json:"op"`
	RequestID string    `json:"request_id,omitempty"`
	Start     time.Time `json:"start"`
	DurUS     int64     `json:"dur_us"`
	// Dropped counts spans lost to the capacity bound.
	Dropped int            `json:"dropped,omitempty"`
	Spans   []SpanSnapshot `json:"spans,omitempty"`
}

// Snapshot renders the trace. Unended spans are clamped to the trace
// end, so an error that unwound mid-span still yields a consistent tree.
func (t *Trace) Snapshot() *TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.end
	if end.IsZero() {
		end = time.Now()
	}
	snap := &TraceSnapshot{
		Op:        t.op,
		RequestID: t.requestID,
		Start:     t.start,
		DurUS:     end.Sub(t.start).Microseconds(),
		Dropped:   t.dropped,
	}
	if len(t.spans) == 0 {
		return snap
	}
	// Flat spans → nested snapshots. Children always follow their parent
	// in the flat array (spans open in call order), so one forward pass
	// with an index map suffices.
	nodes := make([]SpanSnapshot, len(t.spans))
	for i, s := range t.spans {
		dur := s.dur
		if dur == 0 {
			if dur = end.Sub(s.start); dur < 0 {
				dur = 0
			}
		}
		nodes[i] = SpanSnapshot{
			Name:     s.name,
			StartUS:  s.start.Sub(t.start).Microseconds(),
			DurUS:    dur.Microseconds(),
			Phase:    s.phase,
			N:        s.n,
			M:        s.m,
			Oracle:   s.oracle,
			ISSize:   s.isSize,
			ISWeight: s.isWeight,
			Detail:   s.detail,
		}
	}
	// Attach bottom-up: walking backwards, each span lands in its parent
	// after its own children are already attached.
	for i := len(t.spans) - 1; i >= 0; i-- {
		p := t.spans[i].parent
		if p < 0 {
			continue
		}
		nodes[p].Children = append([]SpanSnapshot{nodes[i]}, nodes[p].Children...)
	}
	for i, s := range t.spans {
		if s.parent < 0 {
			snap.Spans = append(snap.Spans, nodes[i])
		}
	}
	return snap
}

// Ring is a bounded in-memory buffer of finished trace snapshots — what
// GET /v1/traces serves. Pushing overwrites the oldest entry; snapshots
// are immutable so readers never race writers.
type Ring struct {
	mu    sync.Mutex
	buf   []*TraceSnapshot
	next  int
	total uint64
}

// NewRing builds a ring holding the last n traces (n < 1 selects 128).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 128
	}
	return &Ring{buf: make([]*TraceSnapshot, n)}
}

// Push records one finished trace (nil snapshots and nil rings no-op).
func (r *Ring) Push(s *TraceSnapshot) {
	if r == nil || s == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	r.total++
	r.mu.Unlock()
}

// Total returns how many traces have ever been pushed.
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns up to limit retained traces, newest first (limit <= 0
// returns everything retained).
func (r *Ring) Snapshot(limit int) []*TraceSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.buf)
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]*TraceSnapshot, 0, limit)
	for i := 1; i <= n && len(out) < limit; i++ {
		s := r.buf[(r.next-i+n)%n]
		if s == nil {
			break
		}
		out = append(out, s)
	}
	return out
}

// traceCtxKey keys the active trace in a context.
type traceCtxKey struct{}

// ContextWithTrace attaches t to ctx; the solver and the reduction core
// pick it up through TraceFrom.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFrom returns the trace attached to ctx, nil when there is none
// (or ctx itself is nil). The nil result is a valid no-op receiver.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

package obs

// hist.go is the log2 latency histogram, generalized out of
// cmd/cfserve's private latency.go so every binary shares one
// implementation. Buckets are powers of two over microseconds (bucket i
// holds samples in [2^(i-1), 2^i) µs), which covers sub-millisecond
// cache hits through multi-minute solves in 64 fixed counters; the
// quantiles a snapshot reports are therefore upper bucket bounds, good
// to a factor of two, which is plenty for spotting a p99 collapse.
// Observe and Snapshot are lock-free and safe to race.

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count: bucket 0 holds zero-microsecond
// samples, bucket 63 saturates (anything >= 2^62 µs, ~146 years).
const histBuckets = 64

// Histogram is a fixed log2 histogram over microseconds, safe for
// concurrent Observe and Snapshot.
type Histogram struct {
	count   atomic.Uint64
	sumUS   atomic.Uint64
	maxUS   atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one latency sample. Negative durations clamp to zero
// (a sample from a clock step must not wrap into the top bucket), and
// the top bucket saturates rather than indexing out of range.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := uint64(d.Microseconds())
	h.count.Add(1)
	h.sumUS.Add(us)
	for {
		cur := h.maxUS.Load()
		if us <= cur || h.maxUS.CompareAndSwap(cur, us) {
			break
		}
	}
	i := bits.Len64(us)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
}

// HistSnapshot is the JSON rendering of one histogram, the shape the
// /statz latency tracks have always carried.
type HistSnapshot struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// bucketUpperUS is bucket i's inclusive upper bound in microseconds:
// 2^i - 1 (bucket 0 is the zero-microsecond samples). The top bucket is
// open-ended; its bound stands in for +Inf in quantile reporting.
func bucketUpperUS(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return uint64(1)<<i - 1
}

// Snapshot renders the histogram. Concurrent observes can tear between
// count and buckets; quantiles use the bucket total so the snapshot is
// always internally consistent.
func (h *Histogram) Snapshot() HistSnapshot {
	var counts [histBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistSnapshot{
		Count: h.count.Load(),
		MaxMS: float64(h.maxUS.Load()) / 1000,
	}
	if total == 0 {
		return s
	}
	s.MeanMS = float64(h.sumUS.Load()) / float64(total) / 1000
	quantile := func(q float64) float64 {
		target := uint64(math.Ceil(q * float64(total))) // nearest rank
		if target == 0 {
			target = 1
		}
		var seen uint64
		for i, c := range counts {
			seen += c
			if seen >= target {
				return float64(bucketUpperUS(i)) / 1000
			}
		}
		return s.MaxMS
	}
	s.P50MS = quantile(0.50)
	s.P95MS = quantile(0.95)
	s.P99MS = quantile(0.99)
	return s
}

// expo loads the raw bucket counts, the sample total and the sum for the
// Prometheus renderer (cumulative buckets, _sum, _count).
func (h *Histogram) expo() (counts [histBuckets]uint64, total, sumUS uint64) {
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	return counts, total, h.sumUS.Load()
}
